// Quickstart: the paper's §3.3 example in a few dozen lines.
//
// A leaf-linked binary tree is described by four aliasing axioms
// (Figure 3).  The program writes p->d where p = root.LLN and then reads
// q->d where q = root.LRN.  APT proves the two accesses can never touch the
// same vertex, so the statements are independent — a proof the
// Larus-Hilfinger intersection test cannot make (§2.4).
package main

import (
	"fmt"

	"repro/internal/axiom"
	"repro/internal/core"
	"repro/internal/pathexpr"
	"repro/internal/prover"
)

func main() {
	// 1. Describe the data structure with aliasing axioms.  These are
	//    Figure 3's axioms, verbatim.
	tree := axiom.MustParseSet("LLBinaryTree", `
		A1: forall p, p.L <> p.R
		A2: forall p <> q, p.(L|R) <> q.(L|R)
		A3: forall p <> q, p.N <> q.N
		A4: forall p, p.(L|R|N)+ <> p.ε
	`)
	fmt.Print(tree)

	// 2. State the two accesses: both anchored at the handle _hroot, with
	//    the access paths the flow analysis collected (see cmd/aptdep for
	//    the automatic version).
	q := core.Query{
		S: core.Access{
			Handle: "_hroot", Path: pathexpr.MustParse("L.L.N"),
			Field: "d", IsWrite: true, Type: "LLBinaryTree",
		},
		T: core.Access{
			Handle: "_hroot", Path: pathexpr.MustParse("L.R.N"),
			Field: "d", IsWrite: false, Type: "LLBinaryTree",
		},
	}

	// 3. Run deptest.
	tester := core.NewTester(tree, prover.Options{})
	out := tester.DepTest(q)
	fmt.Printf("\nIs T dependent on S?  %v (%s, %s dependence)\n\n", out.Result, out.Reason, out.Kind)

	// 4. Inspect the machine-found proof — compare with the paper's
	//    paraphrased derivation in §3.3 — and re-validate it with the
	//    independent checker.
	fmt.Print(out.Proof.Render())
	if err := tester.Prover().CheckProof(out.Proof); err != nil {
		panic(err)
	}
	fmt.Println("derivation independently re-validated ✓")

	// 5. A query the axioms cannot decide: LLNN and LRN reach the same
	//    leaf in Figure 3's tree, so deptest answers Maybe.
	q.S.Path = pathexpr.MustParse("L.L.N.N")
	fmt.Printf("\nLLNN vs LRN: %v (%s)\n", tester.DepTest(q).Result, tester.DepTest(q).Reason)
}
