// An N-body style workload on a leaf-linked tree — the application domain
// the paper's introduction motivates (octrees in Barnes-Hut force
// calculations [BH86, WS92]; here a 1-D binary variant for brevity).
//
// Bodies live at the leaves of a spatial tree whose leaves are chained with
// N (Figure 3's shape).  The force phase walks the leaf chain and, for each
// body, traverses the tree to accumulate approximate forces, writing only
// that body's own field.  APT proves the per-body writes of different
// iterations disjoint (the same theorem as the §3.3 example generalized to
// the leaf chain), licensing a parallel fan-out over bodies — which this
// example then executes on goroutines and validates against the sequential
// result.
package main

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/axiom"
	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/pathexpr"
	"repro/internal/prover"
)

// node is a 1-D Barnes-Hut tree node: internal nodes summarize mass, leaves
// hold bodies and chain along next.
type node struct {
	left, right *node
	next        *node // leaf chain (the N field)
	center      float64
	halfWidth   float64
	mass        float64
	com         float64 // center of mass
	pos         float64 // leaf only
	force       float64 // leaf only
}

// build constructs a perfectly balanced spatial tree over sorted positions
// and chains the leaves.
func build(positions []float64, lo, hi float64) *node {
	if len(positions) == 1 {
		return &node{center: positions[0], pos: positions[0], mass: 1, com: positions[0]}
	}
	mid := len(positions) / 2
	n := &node{center: (lo + hi) / 2, halfWidth: (hi - lo) / 2}
	n.left = build(positions[:mid], lo, n.center)
	n.right = build(positions[mid:], n.center, hi)
	n.mass = n.left.mass + n.right.mass
	n.com = (n.left.com*n.left.mass + n.right.com*n.right.mass) / n.mass
	return n
}

func chainLeaves(root *node) []*node {
	var leaves []*node
	var walk func(n *node)
	walk = func(n *node) {
		if n.left == nil {
			leaves = append(leaves, n)
			return
		}
		walk(n.left)
		walk(n.right)
	}
	walk(root)
	for i := 0; i+1 < len(leaves); i++ {
		leaves[i].next = leaves[i+1]
	}
	return leaves
}

// forceOn computes the Barnes-Hut approximate force on body b: distant
// subtrees are summarized by their center of mass (theta criterion).
func forceOn(b *node, n *node) float64 {
	if n == nil || n == b {
		return 0
	}
	d := n.com - b.pos
	if d == 0 {
		d = 1e-9
	}
	const theta = 0.5
	if n.left == nil || n.halfWidth/math.Abs(d) < theta {
		return n.mass / (d * math.Abs(d)) // G = 1, softened elsewhere
	}
	return forceOn(b, n.left) + forceOn(b, n.right)
}

func main() {
	// --- The dependence argument, machine-checked -------------------------
	// The force loop walks the leaf chain: iteration i writes body_i.force
	// with body_i = _hfirst.N^i, and reads the whole tree.  The loop-carried
	// write/write (and write/read of .force) query is ε vs N⁺ from the
	// iteration handle.
	axioms := axiom.LeafLinkedBinaryTree()
	tester := core.NewTester(axioms, prover.Options{})
	q := core.LoopCarried(axioms, "_it_body", pathexpr.MustParse("N"), pathexpr.Eps, "force", true)
	out := tester.DepTest(q)
	fmt.Printf("loop-carried dependence on body.force writes? %v — %s\n", out.Result, out.Reason)
	if out.Result != core.No {
		panic("expected the force loop to be provably parallel")
	}
	// Reads of tree fields (mass/com) never conflict with the force writes:
	// distinct fields — deptest's second screen.
	q2 := q
	q2.T.Field = "com"
	q2.T.IsWrite = false
	fmt.Printf("force writes vs com reads? %v — %s\n\n", tester.DepTest(q2).Result, tester.DepTest(q2).Reason)

	// --- Run it both ways and compare -------------------------------------
	rng := rand.New(rand.NewSource(42))
	const nBodies = 1 << 10
	positions := make([]float64, nBodies)
	x := 0.0
	for i := range positions {
		x += rng.Float64() + 0.01
		positions[i] = x
	}
	root := build(positions, 0, x+1)
	leaves := chainLeaves(root)
	fmt.Printf("built a tree over %d bodies (%d leaves chained)\n", nBodies, len(leaves))

	// Sequential: walk the leaf chain via next — exactly the loop APT
	// analyzed.
	seq := make([]float64, len(leaves))
	i := 0
	for b := leaves[0]; b != nil; b = b.next {
		b.force = forceOn(b, root)
		seq[i] = b.force
		i++
	}

	// Parallel: the transformation APT licensed.
	for _, b := range leaves {
		b.force = 0
	}
	pool := parallel.NewPool(4)
	pool.ForEach(len(leaves), func(i int) {
		leaves[i].force = forceOn(leaves[i], root)
	})

	worst := 0.0
	for i, b := range leaves {
		if d := math.Abs(b.force - seq[i]); d > worst {
			worst = d
		}
	}
	fmt.Printf("parallel force pass on 4 goroutines matches sequential: max |Δ| = %g\n", worst)
	if worst != 0 {
		panic("parallel force computation diverged")
	}
}
