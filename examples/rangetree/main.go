// Two-dimensional range trees (§3.1): a leaf-linked tree of leaf-linked
// trees, the computational-geometry structure the paper cites as a
// complicated shape its axiom language still captures.
//
// The example model-checks the axiom set against a concrete instance built
// in the heap package, then runs dependence queries that exploit the
// disjointness of the secondary trees hanging off different primary leaves.
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/axiom"
	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/pathexpr"
	"repro/internal/prover"
)

// buildRangeTree constructs a concrete 2-D range tree: a complete primary
// leaf-linked tree of the given depth whose every leaf owns a secondary
// leaf-linked tree (fields l/r/n) through aux.
func buildRangeTree(depth, innerDepth int) (*heap.Graph, heap.Vertex) {
	g, root := heap.BuildLeafLinkedTree(depth)
	firstLeaf := (1 << depth) - 1
	lastLeaf := (1 << (depth + 1)) - 1
	for leaf := firstLeaf; leaf < lastLeaf; leaf++ {
		// Graft an inner tree: replicate BuildLeafLinkedTree vertices with
		// lower-case fields.
		inner, innerRoot := heap.BuildLeafLinkedTree(innerDepth)
		offset := g.NumVertices()
		for i := 0; i < inner.NumVertices(); i++ {
			g.AddVertex()
		}
		relabel := map[string]string{"L": "l", "R": "r", "N": "n"}
		for _, f := range inner.Fields() {
			for v := heap.Vertex(0); int(v) < inner.NumVertices(); v++ {
				if w, ok := inner.Edge(v, f); ok {
					g.SetEdge(v+heap.Vertex(offset), relabel[f], w+heap.Vertex(offset))
				}
			}
		}
		g.SetEdge(heap.Vertex(leaf), "aux", innerRoot+heap.Vertex(offset))
	}
	return g, root
}

func main() {
	axioms := axiom.TwoDRangeTree()
	fmt.Print(axioms)

	// Model-check the axioms on concrete instances.
	for _, shape := range [][2]int{{1, 1}, {2, 1}, {2, 2}} {
		g, _ := buildRangeTree(shape[0], shape[1])
		err := g.CheckSet(axioms)
		fmt.Printf("\ndepth %d/%d instance (%d vertices): axioms hold: %v",
			shape[0], shape[1], g.NumVertices(), err == nil)
		if err != nil {
			fmt.Printf(" (%v)", err)
		}
	}
	fmt.Println()

	// Dependence queries over the two-level structure.
	tester := core.NewTester(axioms, prover.Options{})
	run := func(name, p1, p2 string) {
		q := core.Query{
			S: core.Access{Handle: "_hroot", Path: pathexpr.MustParse(p1), Field: "v", IsWrite: true},
			T: core.Access{Handle: "_hroot", Path: pathexpr.MustParse(p2), Field: "v", IsWrite: true},
		}
		fmt.Printf("  %-44s %v\n", name+":", tester.DepTest(q).Result)
	}
	fmt.Println("\nqueries from the primary root:")
	run("inner trees of different primary leaves", "L.aux.(l|r|n)*", "R.aux.(l|r|n)*")
	run("two leaves of one inner tree", "L.aux.l.n", "L.aux.l.n.n")
	run("inner leaf chain walk (loop-carried)", "L.aux.l", "L.aux.l.n+")
	run("same inner vertex (cannot disprove)", "L.N.aux.l", "L.N.aux.l")

	// Empirical cross-check of the first proof on a concrete instance.
	g, root := buildRangeTree(2, 2)
	disjoint := g.Disjoint(root,
		pathexpr.MustParse("L.aux.(l|r|n)*"),
		root,
		pathexpr.MustParse("R.aux.(l|r|n)*"))
	fmt.Printf("\nconcrete check — L and R inner regions disjoint: %v\n", disjoint)

	// A randomized instance for good measure.
	rng := rand.New(rand.NewSource(1))
	_ = rng
}
