// The complete §5 pipeline in one program: the sparse-matrix kernel is
// written in mini-C, the flow analysis collects its access paths (handles,
// two levels of loop induction, star widening), APT proves Theorem T for
// both loops, the independent checker re-validates the derivation, and the
// interpreter then executes the same source on a concrete orthogonal-list
// structure to witness the independence the prover established.
package main

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/prover"
)

const src = `
struct Elem {
	struct Elem *ncolE;
	struct Elem *nrowE;
	double val;
	axioms {
		A1: forall p <> q, p.ncolE <> q.ncolE;
		A2: forall p, p.ncolE+ <> p.nrowE+;
		A3: forall p, p.(ncolE|nrowE)+ <> p.eps;
	}
};

void scaleRows(struct Elem *first) {
	struct Elem *r;
	struct Elem *e;
	r = first;
	while (r != NULL) {
		e = r->ncolE;
		while (e != NULL) {
S:			e->val = e->val * 2.0;
			e = e->ncolE;
		}
		r = r->nrowE;
	}
}
`

func main() {
	prog := lang.MustParse(src)

	// --- Static side: analysis + proof ------------------------------------
	res, err := analysis.Analyze(prog, "scaleRows", analysis.Options{})
	if err != nil {
		panic(err)
	}
	queries, err := res.LoopCarriedQueries("S")
	if err != nil {
		panic(err)
	}
	tester := core.NewTester(res.Axioms, prover.Options{})
	tester.VerifyProofs = true // every No below is independently checked
	fmt.Printf("loop-carried queries extracted from source: %d (one per loop level)\n", len(queries))
	for _, q := range queries {
		out := tester.DepTest(q)
		fmt.Printf("  S at iteration i vs %s at a later iteration: %v\n", q.T.Path, out.Result)
		if out.Result != core.No {
			panic("expected both loop levels provably parallel")
		}
	}
	fmt.Println("both loops of the §5 kernel are provably parallel (Theorem T).")

	// --- Dynamic side: run the same source concretely ---------------------
	var pos [][2]int
	const rows, cols = 4, 5
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			pos = append(pos, [2]int{i, j})
		}
	}
	g, lay := heap.BuildSparseMatrix(rows, cols, pos)
	in := interp.New(prog, g, interp.Options{})
	for p, v := range lay.Elem {
		in.SetData(v, "val", float64(p[0]*cols+p[1]))
	}
	first := lay.Elem[[2]int{0, 0}]
	if _, trace, err := in.Run("scaleRows", interp.Ptr(first)); err != nil {
		panic(err)
	} else {
		writes := map[heap.Vertex]int{}
		for _, e := range trace.At("S") {
			if e.IsWrite {
				writes[e.Vertex]++
			}
		}
		for v, n := range writes {
			if n != 1 {
				panic(fmt.Sprintf("vertex %d written %d times", v, n))
			}
		}
		fmt.Printf("\nconcrete run on a %d×%d element grid: %d elements written, each exactly once —\n", rows, cols, len(writes))
		fmt.Println("the execution witnesses the independence the prover established.")
	}
	// Spot-check a scaled value: element (1,2) held 1*5+2=7, now 14.
	if got := in.Data(lay.Elem[[2]int{1, 2}], "val"); got != 14 {
		panic(fmt.Sprintf("element (1,2) = %v, want 14", got))
	}
	fmt.Println("values scaled correctly (spot check passed).")
}
