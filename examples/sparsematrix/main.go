// The §5 application end to end: Theorem T, the factorization, and a
// miniature Figure 7.
//
// The outer loop L1 of sparse factorization walks the rows of an
// orthogonal-list sparse matrix.  Iteration i touches hr.ncolE⁺ and any
// later iteration touches hr.nrowE⁺ncolE⁺.  APT proves these disjoint from
// the three axioms of §5, breaking the false loop-carried dependence;
// the freed parallelism is then measured on the simulated multiprocessor
// and executed live on goroutines.
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/axiom"
	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/pathexpr"
	"repro/internal/prover"
	"repro/internal/sched"
	"repro/internal/sparse"
)

func main() {
	// --- Theorem T -------------------------------------------------------
	axioms := axiom.SparseMatrixCore()
	fmt.Print(axioms)

	tester := core.NewTester(axioms, prover.Options{})
	q := core.LoopCarried(axioms, "_hr",
		pathexpr.MustParse("nrowE"),  // loop increment: next row
		pathexpr.MustParse("ncolE+"), // per-iteration accesses: the row
		"val", true)
	out := tester.DepTest(q)
	fmt.Printf("\nloop L1 carried dependence? %v — %s\n", out.Result, out.Reason)
	fmt.Println()
	fmt.Print(out.Proof.Render())

	// --- Factor a small system and check the answer -----------------------
	rng := rand.New(rand.NewSource(7))
	n := 300
	m := sparse.RandomCircuit(rng, n, 6*n)
	lu, err := m.Factor()
	if err != nil {
		panic(err)
	}
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	x := lu.Solve(m.MulVec(xTrue))
	worst := 0.0
	for i := range x {
		if d := x[i] - xTrue[i]; d > worst {
			worst = d
		} else if -d > worst {
			worst = -d
		}
	}
	fmt.Printf("\nfactored %d×%d (%d nonzeros, %d fill-ins); max solve error %.2e\n",
		n, n, m.NNZ(), lu.Trace.Fills, worst)

	// --- The live parallel execution (bitwise-identical factors) ----------
	par, err := m.FactorParallel(parallel.NewPool(4), true)
	if err != nil {
		panic(err)
	}
	fmt.Printf("parallel factorization on 4 goroutines: %d fill-ins (identical: %v)\n",
		par.Trace.Fills, par.Trace.Fills == lu.Trace.Fills)

	// --- Figure 7 in miniature --------------------------------------------
	w := sched.Workload{Scale: m.ScaleTrace(), Factor: lu.Trace, Solve: lu.SolveTrace()}
	pes := []int{2, 4, 7}
	fmt.Println()
	fmt.Print(sched.RenderTable(
		fmt.Sprintf("Figure 7 (miniature: %d×%d) — run cmd/sparsebench for the paper's 1000×1000 / N=10,000", n, n),
		sched.Figure7(w, pes, sched.DefaultBarrierCost), pes))
}
