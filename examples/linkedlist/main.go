// Figure 1's loop, analyzed automatically from source.
//
// The mini-C frontend parses the list-update loop, the flow analysis
// discovers that q is an induction variable (handles and the
// self-relative-assignment rule, §3.3), and APT disproves the loop-carried
// output dependence on statement U.  The k-limited baseline, by contrast,
// can only prove the first k iterations independent (§2.3).
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/analysis"
	"repro/internal/axiom"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/pathexpr"
	"repro/internal/prover"
)

const src = `
struct Node {
	struct Node *link;
	int f;
	axioms {
		forall p <> q, p.link <> q.link;
		forall p, p.link+ <> p.eps;
	}
};

void update(struct Node *head) {
	struct Node *q;
	q = head;
	while (q != NULL) {
U:		q->f = fun();
		q = q->link;
	}
}
`

func main() {
	prog := lang.MustParse(src)
	res, err := analysis.Analyze(prog, "update", analysis.Options{})
	if err != nil {
		panic(err)
	}

	fmt.Println("accesses found at U:")
	for _, a := range res.AccessesAt("U") {
		fmt.Printf("  %s->%s (write=%v), paths:\n", a.Var, a.Field, a.IsWrite)
		for h, p := range a.Paths {
			fmt.Printf("    %s.%s\n", h, p)
		}
	}

	queries, err := res.LoopCarriedQueries("U")
	if err != nil {
		panic(err)
	}
	tester := core.NewTester(res.Axioms, prover.Options{})
	for _, q := range queries {
		out := tester.DepTest(q)
		fmt.Printf("\nloop-carried %v dependence on U?  %v — %s\n", out.Kind, out.Result, out.Reason)
	}

	// The k-limited baseline on the same loop.
	for _, k := range []int{1, 2, 4} {
		kl := baseline.NewKLimited(k, axiom.SinglyLinkedList("link"))
		upTo, res := kl.LoopIndependent(pathexpr.MustParse("link"), pathexpr.Eps)
		fmt.Printf("k-limited (k=%d): iterations 0..%d proved independent, whole loop: %v\n", k, upTo-1, res)
	}

	// Same loop over a circular list: APT correctly refuses.
	circular := core.NewTester(axiom.CircularList("link"), prover.Options{})
	q := core.LoopCarried(circular.Axioms(), "_hq", pathexpr.MustParse("link"), pathexpr.Eps, "f", true)
	fmt.Printf("\nsame loop, circular list: %v (the wraparound is a real dependence)\n",
		circular.DepTest(q).Result)

	// §3.2's "perhaps automatically verified": check dynamically that the
	// program's own mutators maintain the declared axioms.
	mutators := lang.MustParse(`
struct Node { struct Node *link; int f; };
void insertFront(struct Node *head) {
	struct Node *n;
	n = malloc(struct Node);
	n->link = head;
}
void breakIt(struct Node *head) {
	head->link = head;
}
`)
	gen := func(rng *rand.Rand) interp.Instance {
		g, head := heap.BuildList(1+rng.Intn(6), "link")
		return interp.Instance{Graph: g, Args: []interp.Value{interp.Ptr(head)}}
	}
	okErr := interp.MaintainsAxioms(mutators, "insertFront", axiom.SinglyLinkedList("link"), gen, 20, 1)
	fmt.Printf("\ninsertFront maintains the list axioms: %v\n", okErr == nil)
	badErr := interp.MaintainsAxioms(mutators, "breakIt", axiom.SinglyLinkedList("link"), gen, 20, 1)
	fmt.Printf("breakIt caught violating them: %v\n", badErr != nil)
}
