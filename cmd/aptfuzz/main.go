// Command aptfuzz is the differential scenario farm: it generates random
// mini-C programs over the scenario families (skip lists, B+-trees, chained
// hash tables, union-find forests, deques) together with conforming concrete
// heaps, obtains dependence verdicts through the batched engine, and
// cross-checks every definite No against two oracles — concrete execution on
// the generated heap and exhaustive execution on every conforming small heap.
//
// Examples:
//
//	aptfuzz -seed 1 -n 200                    fixed-seed farm run
//	aptfuzz -n 500 -families skiplist,deque   restrict the families
//	aptfuzz -serve http://localhost:8080      also cross-check a live aptserved
//	aptfuzz -out testdata/fuzz/regressions    save minimized divergence artifacts
//	aptfuzz -report BENCH_fuzzfarm.json       write the machine-readable report
//	aptfuzz -repro testdata/fuzz/regressions  replay saved artifacts instead
//
// Exit status: 0 when the run (or replay) was clean, 1 when a divergence was
// found (or an artifact still reproduces), 2 on usage or internal errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/scenario"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main without the process-global bindings, so tests can drive the
// whole CLI in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("aptfuzz", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Int64("seed", 1, "rng `seed`; equal seeds reproduce the exact same programs, heaps, and queries")
	n := fs.Int("n", 100, "number of scenario `programs` to generate and check")
	familiesFlag := fs.String("families", "", "comma-separated `list` of families to exercise (default: all)")
	workers := fs.Int("j", 0, "worker `width` for the batched engine (0 = engine default)")
	timeout := fs.Duration("timeout", 200*time.Millisecond, "per-query proof `budget`")
	serveURL := fs.String("serve", "", "base `URL` of a live aptserved instance to cross-check (doubles as a load test of /v1/batch)")
	outDir := fs.String("out", "", "`directory` to write minimized divergence artifacts into")
	reportPath := fs.String("report", "", "`path` to write the JSON run report (BENCH_fuzzfarm.json shape)")
	reproPath := fs.String("repro", "", "replay the artifact `file-or-directory` instead of fuzzing")
	minimize := fs.Bool("minimize", true, "shrink diverging programs before reporting")
	verbose := fs.Bool("v", false, "log progress while the farm runs")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "aptfuzz: unexpected arguments %q\n", fs.Args())
		return 2
	}

	if *reproPath != "" {
		return replay(*reproPath, stdout, stderr)
	}

	cfg := scenario.Config{
		Seed:         *seed,
		Programs:     *n,
		Workers:      *workers,
		QueryTimeout: *timeout,
		ServeURL:     *serveURL,
		Minimize:     *minimize,
	}
	if *familiesFlag != "" {
		cfg.Families = strings.Split(*familiesFlag, ",")
	}
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(stderr, "aptfuzz: "+format+"\n", args...)
		}
	}
	farm, err := scenario.NewFarm(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "aptfuzz: %v\n", err)
		return 2
	}
	rep, divs, err := farm.Run(context.Background())
	if err != nil {
		fmt.Fprintf(stderr, "aptfuzz: %v\n", err)
		return 2
	}

	for _, d := range divs {
		fmt.Fprintf(stdout, "DIVERGENCE [%s] family=%s query=%q\n  %s\n", d.Kind, d.Family, d.Query.Text, d.Detail)
		if *outDir != "" {
			path, err := scenario.SaveArtifact(*outDir, d)
			if err != nil {
				fmt.Fprintf(stderr, "aptfuzz: saving artifact: %v\n", err)
				return 2
			}
			fmt.Fprintf(stdout, "  artifact: %s\n", path)
		}
	}
	fmt.Fprintf(stdout, "aptfuzz: seed %d: %d programs, %d query lines (%d queries), %d oracle runs, %d divergences (%d soundness) in %dms (%.0f q/s)\n",
		rep.Seed, rep.Programs, rep.QueryLines, rep.Queries, rep.OracleRuns,
		rep.Divergences, rep.SoundnessViolations, rep.ElapsedMS, rep.QueriesPerSec)

	if *reportPath != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "aptfuzz: %v\n", err)
			return 2
		}
		if err := os.WriteFile(*reportPath, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "aptfuzz: %v\n", err)
			return 2
		}
	}
	if len(divs) > 0 {
		return 1
	}
	return 0
}

// replay re-runs saved divergence artifacts (one file or every .json in a
// directory) against fresh verdicts and oracles.
func replay(path string, stdout, stderr io.Writer) int {
	info, err := os.Stat(path)
	if err != nil {
		fmt.Fprintf(stderr, "aptfuzz: %v\n", err)
		return 2
	}
	files := []string{path}
	if info.IsDir() {
		files, err = scenario.ListArtifacts(path)
		if err != nil {
			fmt.Fprintf(stderr, "aptfuzz: %v\n", err)
			return 2
		}
		if len(files) == 0 {
			fmt.Fprintf(stderr, "aptfuzz: no artifacts under %s\n", path)
			return 2
		}
	}
	reproduced := 0
	for _, f := range files {
		d, err := scenario.LoadArtifact(f)
		if err != nil {
			fmt.Fprintf(stderr, "aptfuzz: %v\n", err)
			return 2
		}
		redo, err := scenario.Replay(d)
		if err != nil {
			fmt.Fprintf(stderr, "aptfuzz: replaying %s: %v\n", f, err)
			return 2
		}
		if redo != nil {
			reproduced++
			fmt.Fprintf(stdout, "REPRODUCES %s\n  %s\n", f, redo.Detail)
		} else {
			fmt.Fprintf(stdout, "clean      %s\n", f)
		}
	}
	fmt.Fprintf(stdout, "aptfuzz: %d/%d artifacts still reproduce\n", reproduced, len(files))
	if reproduced > 0 {
		return 1
	}
	return 0
}
