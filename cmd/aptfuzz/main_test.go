package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/scenario"
)

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestSmokeRunIsCleanAndWritesReport(t *testing.T) {
	report := filepath.Join(t.TempDir(), "report.json")
	code, out, errOut := runCLI(t, "-seed", "1", "-n", "10", "-report", report)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out, errOut)
	}
	if !strings.Contains(out, "0 divergences") {
		t.Errorf("summary missing divergence count: %s", out)
	}
	blob, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var rep scenario.Report
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Programs != 10 || rep.Queries == 0 || rep.SoundnessViolations != 0 {
		t.Errorf("report out of shape: %+v", rep)
	}
}

func TestFamilySubsetAndDeterminism(t *testing.T) {
	r1 := filepath.Join(t.TempDir(), "r1.json")
	r2 := filepath.Join(t.TempDir(), "r2.json")
	for _, path := range []string{r1, r2} {
		code, out, errOut := runCLI(t, "-seed", "7", "-n", "6", "-families", "skiplist,deque", "-report", path)
		if code != 0 {
			t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out, errOut)
		}
	}
	var a, b scenario.Report
	for path, dst := range map[string]*scenario.Report{r1: &a, r2: &b} {
		blob, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(blob, dst); err != nil {
			t.Fatal(err)
		}
	}
	if a.Queries != b.Queries || a.QueryLines != b.QueryLines || a.OracleRuns != b.OracleRuns {
		t.Errorf("equal seeds disagree: %+v vs %+v", a, b)
	}
	for fam := range a.FamilyPrograms {
		if fam != "skiplist" && fam != "deque" {
			t.Errorf("family %q ran despite -families subset", fam)
		}
	}
}

func TestReproReplaysArtifactDirectory(t *testing.T) {
	// Build a planted (ForceNo) divergence artifact, then replay it through
	// the CLI: honest verdicts are not No, so the replay must be clean.
	f, err := scenario.NewFarm(scenario.Config{Seed: 1, Programs: 20, ForceNo: true, Minimize: true})
	if err != nil {
		t.Fatal(err)
	}
	_, divs, err := f.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(divs) == 0 {
		t.Fatal("no planted divergences")
	}
	dir := t.TempDir()
	if _, err := scenario.SaveArtifact(dir, divs[0]); err != nil {
		t.Fatal(err)
	}
	code, out, errOut := runCLI(t, "-repro", dir)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out, errOut)
	}
	if !strings.Contains(out, "0/1 artifacts still reproduce") {
		t.Errorf("unexpected replay summary: %s", out)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runCLI(t, "-badflag"); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
	if code, _, _ := runCLI(t, "stray-arg"); code != 2 {
		t.Errorf("stray argument: exit %d, want 2", code)
	}
	if code, _, errOut := runCLI(t, "-families", "nosuch", "-n", "1"); code != 2 || !strings.Contains(errOut, "unknown family") {
		t.Errorf("unknown family: exit %d, stderr %q", code, errOut)
	}
	if code, _, _ := runCLI(t, "-repro", filepath.Join(t.TempDir(), "missing.json")); code != 2 {
		t.Errorf("missing repro path: exit %d, want 2", code)
	}
}
