package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/automata"
	"repro/internal/pathexpr"
)

// TestListPrintsLibraries: -list enumerates every builtin library, sorted.
func TestListPrintsLibraries(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d\nstderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for name := range libraries {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %q", name)
		}
	}
}

// TestLibraryModeRoundTrip compiles a builtin library with -verify and then
// confirms the written artifact preseeds a cache that answers a known
// decision without compiling.
func TestLibraryModeRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "llbt.aptc")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-library", "LeafLinkedBinaryTree", "-o", path, "-verify"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "round-trip ok") {
		t.Errorf("missing verify confirmation: %s", stdout.String())
	}

	art, err := automata.LoadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	defer art.Close()
	if len(art.DFAs) == 0 || len(art.Ops) == 0 {
		t.Fatalf("artifact empty: %d DFAs, %d ops", len(art.DFAs), len(art.Ops))
	}
	cache := automata.NewSharedCache(0, 0, 0)
	dfas, ops := cache.Preseed(art)
	if dfas != len(art.DFAs) || ops != len(art.Ops) {
		t.Errorf("Preseed inserted %d/%d DFAs, %d/%d ops", dfas, len(art.DFAs), ops, len(art.Ops))
	}
	// ε ⊆ ε over the library alphabet is among the precomputed pairs.
	alpha := automata.NewAlphabet(art.Alphabets[0]...)
	if ok, err := cache.Includes(pathexpr.Eps, pathexpr.Eps, alpha); err != nil || !ok {
		t.Errorf("Includes(ε, ε) = %v, %v on the preseeded cache", ok, err)
	}
	if st := cache.Stats(); st.Compiles != 0 {
		t.Errorf("preseeded cache compiled %d DFAs answering a precomputed decision", st.Compiles)
	}
}

// TestReplayModeRoundTrip: -program/-queries replays a workload through the
// engine and the snapshot verifies byte-identical.
func TestReplayModeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	queries := filepath.Join(dir, "q.txt")
	if err := os.WriteFile(queries, []byte("# the §3.3 pair\nbetween S T\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "replay.aptc")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-program", "../../testdata/section33.c", "-queries", queries,
		"-o", path, "-verify",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "round-trip ok") {
		t.Errorf("missing verify confirmation: %s", stdout.String())
	}
	art, err := automata.LoadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	defer art.Close()
	if len(art.DFAs) == 0 {
		t.Error("replay artifact holds no DFAs")
	}
}

// TestUsageErrors: mode and output validation exits 2 without writing.
func TestUsageErrors(t *testing.T) {
	out := filepath.Join(t.TempDir(), "x.aptc")
	for name, args := range map[string][]string{
		"no output":           {"-library", "BinaryTree"},
		"no mode":             {"-o", out},
		"two modes":           {"-library", "BinaryTree", "-axioms", "a.txt", "-o", out},
		"unknown library":     {"-library", "NoSuchStructure", "-o", out},
		"replay sans queries": {"-program", "../../testdata/section33.c", "-o", out},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("%s: exit = %d, want 2 (stderr: %s)", name, code, stderr.String())
		}
		if _, err := os.Stat(out); err == nil {
			t.Errorf("%s: artifact was written despite the usage error", name)
			os.Remove(out)
		}
	}
}

// TestVerifyCatchesCorruption: a truncated artifact fails -verify… indirectly
// — verification happens on the freshly written file, so corruption is
// simulated by checking LoadArtifact rejects a damaged copy of a good one.
func TestVerifyCatchesCorruption(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.aptc")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-library", "BinaryTree", "-o", good}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d\nstderr: %s", code, stderr.String())
	}
	blob, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)-1] ^= 0x40
	bad := filepath.Join(dir, "bad.aptc")
	if err := os.WriteFile(bad, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := automata.LoadArtifact(bad); err == nil {
		t.Fatal("LoadArtifact accepted a corrupted artifact")
	}
}
