// Command aptc is the offline automata compiler: it builds the DFA and
// decision-memo working set a serving process would otherwise compile on
// its first queries, and writes it as a versioned, checksummed, mmap-able
// artifact (see internal/automata's artifact format).  aptserved, aptlint,
// and aptdep load the artifact with -preload and boot warm.
//
// Two compilation modes:
//
//	aptc -library LeafLinkedBinaryTree -o llbt.aptc
//	    Compile a builtin axiom library: every axiom expression's minimized
//	    DFA over the library's full field alphabet, plus precomputed
//	    Includes/Disjoint/Equivalent decisions for the library's goal pairs.
//
//	aptc -program prog.c -queries q.txt -o prog.aptc
//	    Replay mode: analyze the program, run the query file through the
//	    batched engine exactly as aptserved would, and snapshot the engine's
//	    shared cache — the precise working set of that serving workload.
//
//	aptc -axioms axioms.txt -o custom.aptc
//	    Like -library, for an axiom set parsed from a file.
//
// -verify re-reads the written artifact and checks it decodes byte-identical
// to the in-memory snapshot before exiting.
//
// Exit status: 0 on success, 1 on verification failure, 2 on usage errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"reflect"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/automata"
	"repro/internal/axiom"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/lang"
	"repro/internal/pathexpr"
	"repro/internal/prover"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// libraries maps -library names to their builtin constructors, using the
// same field spellings the examples and benchmarks use.
var libraries = map[string]func() *axiom.Set{
	"SinglyLinkedList":       func() *axiom.Set { return axiom.SinglyLinkedList("next") },
	"CircularList":           func() *axiom.Set { return axiom.CircularList("next") },
	"DoublyLinkedList":       func() *axiom.Set { return axiom.DoublyLinkedList("next", "prev") },
	"CyclicDoublyLinkedRing": func() *axiom.Set { return axiom.CyclicDoublyLinkedRing("next", "prev") },
	"BinaryTree":             func() *axiom.Set { return axiom.BinaryTree("l", "r") },
	"LeafLinkedBinaryTree":   axiom.LeafLinkedBinaryTree,
	"SparseMatrixCore":       axiom.SparseMatrixCore,
	"SparseMatrix":           axiom.SparseMatrix,
	"SkipList":               func() *axiom.Set { return axiom.SkipList("n0", "n1") },
	"BPlusTree":              func() *axiom.Set { return axiom.BPlusTree("next", "c0", "c1") },
	"ChainedHashTable":       func() *axiom.Set { return axiom.ChainedHashTable("next", "b0", "b1") },
	"UnionFindForest":        func() *axiom.Set { return axiom.UnionFindForest("parent") },
	"Deque":                  func() *axiom.Set { return axiom.Deque("next", "prev") },
	"TwoDRangeTree":          axiom.TwoDRangeTree,
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("aptc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	library := fs.String("library", "", "builtin axiom library `name` to compile (see -list)")
	list := fs.Bool("list", false, "list builtin library names and exit")
	axiomFile := fs.String("axioms", "", "axiom-set `file` to compile (one axiom per line)")
	program := fs.String("program", "", "mini-C source `file` for replay mode")
	queries := fs.String("queries", "", "query `file` (between S T | cross S T | loop U) replayed through the engine")
	fn := fs.String("fn", "", "function to analyze in -program mode (default: the only function)")
	out := fs.String("o", "", "output artifact `path` (required)")
	workers := fs.Int("workers", 1, "engine pool `width` for replay mode")
	verify := fs.Bool("verify", false, "re-read the written artifact and check it matches the snapshot")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fatalf := func(format string, fargs ...any) int {
		fmt.Fprintf(stderr, "aptc: "+format+"\n", fargs...)
		return 2
	}
	if *list {
		names := make([]string, 0, len(libraries))
		for n := range libraries {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintln(stdout, n)
		}
		return 0
	}
	if *out == "" {
		return fatalf("-o is required")
	}
	modes := 0
	for _, on := range []bool{*library != "", *axiomFile != "", *program != ""} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		return fatalf("pick exactly one of -library, -axioms, -program")
	}

	var art *automata.Artifact
	switch {
	case *program != "":
		if *queries == "" {
			return fatalf("-program mode needs -queries")
		}
		a, err := replaySnapshot(*program, *queries, *fn, *workers)
		if err != nil {
			return fatalf("%v", err)
		}
		art = a
	case *library != "":
		mk, ok := libraries[*library]
		if !ok {
			return fatalf("unknown library %q (see -list)", *library)
		}
		art = librarySnapshot(mk())
	case *axiomFile != "":
		src, err := os.ReadFile(*axiomFile)
		if err != nil {
			return fatalf("%v", err)
		}
		set, err := axiom.ParseSet(strings.TrimSuffix(*axiomFile, ".txt"), string(src))
		if err != nil {
			return fatalf("%s: %v", *axiomFile, err)
		}
		art = librarySnapshot(set)
	}

	if err := art.Save(*out); err != nil {
		return fatalf("write %s: %v", *out, err)
	}
	st, err := os.Stat(*out)
	if err != nil {
		return fatalf("%v", err)
	}
	fmt.Fprintf(stdout, "aptc: wrote %s: %d DFAs, %d decisions, %d proof verdicts, %d axiom sets, %d alphabets, %d exprs, %d bytes\n",
		*out, len(art.DFAs), len(art.Ops), len(art.Goals), len(art.AxiomSets), len(art.Alphabets), len(art.Exprs), st.Size())

	if *verify {
		back, err := automata.LoadArtifact(*out)
		if err != nil {
			fmt.Fprintf(stderr, "aptc: verify: %v\n", err)
			return 1
		}
		defer back.Close()
		if !artifactsEqual(art, back) {
			fmt.Fprintf(stderr, "aptc: verify: round-tripped artifact differs from snapshot\n")
			return 1
		}
		fmt.Fprintf(stdout, "aptc: verify: round-trip ok\n")
	}
	return 0
}

// librarySnapshot compiles an axiom set's working set into a fresh shared
// cache: the minimized DFA of every axiom expression (and ε) over the
// library's full field alphabet, plus every Includes/Disjoint/Equivalent
// decision over the library's goal pairs.
func librarySnapshot(set *axiom.Set) *automata.Artifact {
	cache := automata.NewSharedCache(0, 0, 0)
	alpha := automata.NewAlphabet(set.Fields()...)
	seen := map[uint64]bool{}
	var exprs []pathexpr.Expr
	add := func(e pathexpr.Expr) {
		id := pathexpr.InternID(e)
		if !seen[id] {
			seen[id] = true
			exprs = append(exprs, e)
		}
	}
	add(pathexpr.Eps)
	for _, a := range set.Axioms {
		add(a.RE1)
		add(a.RE2)
	}
	for _, e := range exprs {
		cache.DFA(e, alpha) //nolint:errcheck // a blown budget just leaves that entry out
	}
	for _, x := range exprs {
		for _, y := range exprs {
			cache.Includes(x, y, alpha)   //nolint:errcheck
			cache.Disjoint(x, y, alpha)   //nolint:errcheck
			cache.Equivalent(x, y, alpha) //nolint:errcheck
		}
	}
	art := cache.Snapshot()
	engine.AppendAxiomSet(art, set)
	return art
}

// replaySnapshot analyzes the program, expands the query file, runs it
// through the batched engine, and snapshots the engine's working set —
// the DFAs, boolean decisions, and proof-memo verdicts the same workload
// needs at serve time.
func replaySnapshot(programFile, queryFile, fn string, workers int) (*automata.Artifact, error) {
	src, err := os.ReadFile(programFile)
	if err != nil {
		return nil, err
	}
	prog, err := lang.Parse(string(src))
	if err != nil {
		return nil, fmt.Errorf("%s: %v", programFile, err)
	}
	if fn == "" {
		if len(prog.Funcs) != 1 {
			return nil, fmt.Errorf("%s has %d functions; pick one with -fn", programFile, len(prog.Funcs))
		}
		fn = prog.Funcs[0].Name
	}
	res, err := analysis.Analyze(prog, fn, analysis.Options{InferTypeAxioms: true})
	if err != nil {
		return nil, fmt.Errorf("analyze: %v", err)
	}
	qsrc, err := os.ReadFile(queryFile)
	if err != nil {
		return nil, err
	}
	qs, err := parseQueryFile(string(qsrc), res)
	if err != nil {
		return nil, err
	}
	eng := engine.New(res.Axioms, engine.Options{
		Workers: workers,
		Prover:  prover.Options{},
	})
	eng.Batch(context.Background(), qs)
	art := eng.SnapshotArtifact()
	// Record the workload itself, so a -preload server can replay it through
	// its own request path at boot and open its listener fully warm.
	art.Replays = append(art.Replays, automata.ArtifactReplay{
		Program: string(src),
		Fn:      fn,
		Queries: queryLines(string(qsrc)),
	})
	return art, nil
}

// queryLines returns the query file's effective lines (comments and blanks
// stripped) — the same lines a loadgen client sends verbatim as
// BatchRequest.Queries.
func queryLines(src string) []string {
	var out []string
	for _, line := range strings.Split(src, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		if strings.TrimSpace(line) != "" {
			out = append(out, line)
		}
	}
	return out
}

// parseQueryFile expands a query file against the analysis result.  Same
// grammar as aptdep -batch and the aptserved loadgen: blank lines and '#'
// comments skipped, each line "between S T", "cross S T", or "loop U".
func parseQueryFile(src string, res *analysis.Result) ([]core.Query, error) {
	var out []core.Query
	for n, line := range strings.Split(src, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		var (
			qs  []core.Query
			err error
		)
		switch {
		case fields[0] == "between" && len(fields) == 3:
			qs, err = res.QueriesBetween(fields[1], fields[2])
		case fields[0] == "cross" && len(fields) == 3:
			qs, err = res.LoopCarriedBetween(fields[1], fields[2])
		case fields[0] == "loop" && len(fields) == 2:
			qs, err = res.LoopCarriedQueries(fields[1])
		default:
			return nil, fmt.Errorf("query file line %d: want 'between S T', 'cross S T', or 'loop U', got %q",
				n+1, strings.TrimSpace(line))
		}
		if err != nil {
			return nil, fmt.Errorf("query file line %d: %w", n+1, err)
		}
		out = append(out, qs...)
	}
	return out, nil
}

// artifactsEqual compares two decoded artifacts structurally (the mmap
// backing of the loaded one is irrelevant to equality).
func artifactsEqual(a, b *automata.Artifact) bool {
	return reflect.DeepEqual(a.Alphabets, b.Alphabets) &&
		reflect.DeepEqual(a.Exprs, b.Exprs) &&
		reflect.DeepEqual(a.DFAs, b.DFAs) &&
		reflect.DeepEqual(a.Ops, b.Ops) &&
		reflect.DeepEqual(a.Sigs, b.Sigs) &&
		reflect.DeepEqual(a.Goals, b.Goals) &&
		reflect.DeepEqual(a.AxiomSets, b.AxiomSets) &&
		reflect.DeepEqual(a.Replays, b.Replays)
}
