package main

import (
	"strings"
	"testing"
)

func TestIndent(t *testing.T) {
	got := indent("a\nb\n")
	if got != "    a\n    b\n" {
		t.Errorf("indent = %q", got)
	}
	if indent("") != "" {
		t.Error("indent of empty string")
	}
	if !strings.HasPrefix(indent("x"), "    x") {
		t.Error("single line")
	}
}
