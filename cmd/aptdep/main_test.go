package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/automata"
	"repro/internal/engine"
	"repro/internal/lang"
	"repro/internal/telemetry"
)

func TestIndent(t *testing.T) {
	got := indent("a\nb\n")
	if got != "    a\n    b\n" {
		t.Errorf("indent = %q", got)
	}
	if indent("") != "" {
		t.Error("indent of empty string")
	}
	if !strings.HasPrefix(indent("x"), "    x") {
		t.Error("single line")
	}
}

// TestTraceJSONSchema drives the whole CLI in-process over the paper's §3.3
// example and validates the JSONL trace schema: every line is one JSON
// object with ts_us / strictly-increasing seq / ev, the prover span carries
// its effort attributes, and the expected event kinds are present.
func TestTraceJSONSchema(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "trace.jsonl")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-stats", "-trace-json", tracePath,
		"-fn", "subr", "-from", "S", "-to", "T",
		"../../testdata/section33.c",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (independence provable)\nstdout: %s\nstderr: %s",
			code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "No") {
		t.Errorf("stdout missing verdict: %s", stdout.String())
	}

	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 5 {
		t.Fatalf("only %d trace lines", len(lines))
	}
	events := map[string]int{}
	lastSeq := int64(0)
	for _, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("trace line not JSON: %v\n%s", err, ln)
		}
		for _, k := range []string{"ts_us", "seq", "ev"} {
			if _, ok := m[k]; !ok {
				t.Fatalf("line missing %q: %s", k, ln)
			}
		}
		seq := int64(m["seq"].(float64))
		if seq <= lastSeq {
			t.Errorf("seq not strictly increasing: %d after %d", seq, lastSeq)
		}
		lastSeq = seq
		ev := m["ev"].(string)
		events[ev]++
		if ev == "prover.query" {
			for _, k := range []string{"dur_us", "theorem", "result", "steps", "peak_depth", "dfa_compiles", "cache_hits"} {
				if _, ok := m[k]; !ok {
					t.Errorf("prover.query missing %q: %s", k, ln)
				}
			}
			if m["result"] != "proved" {
				t.Errorf("prover.query result = %v, want proved", m["result"])
			}
		}
	}
	for _, ev := range []string{"pipeline.phase", "analysis.analyze", "prover.query",
		"prover.suffix_split", "automata.compile", "core.deptest"} {
		if events[ev] == 0 {
			t.Errorf("no %s events in trace", ev)
		}
	}

	// The -stats stderr summary carries the derived effort numbers.
	for _, want := range []string{"wall-clock per phase", "cache hit rate", "DFA compiles:", "counters:", "histograms:"} {
		if !strings.Contains(stderr.String(), want) {
			t.Errorf("stderr missing %q:\n%s", want, stderr.String())
		}
	}
}

// TestRunPlainStillWorks: without telemetry flags the CLI behaves as before.
func TestRunPlainStillWorks(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-fn", "subr", "-from", "S", "-to", "T", "../../testdata/section33.c"},
		&stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d\nstderr: %s", code, stderr.String())
	}
	if stderr.Len() != 0 {
		t.Errorf("unexpected stderr without -stats: %s", stderr.String())
	}
}

// TestBatchMode: a -batch file expands to queries answered by the engine,
// printed in file order; batch results match the one-query-at-a-time CLI.
func TestBatchMode(t *testing.T) {
	batchFile := filepath.Join(t.TempDir(), "queries.txt")
	if err := os.WriteFile(batchFile, []byte(`
# the §3.3 pair, both orientations (the engine canonicalizes the swap)
between S T
between T S

between S I
`), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-fn", "subr", "-batch", batchFile, "-workers", "4",
		"../../testdata/section33.c",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (every §3.3 query is No)\nstdout: %s\nstderr: %s",
			code, stdout.String(), stderr.String())
	}
	verdicts := 0
	for _, line := range strings.Split(stdout.String(), "\n") {
		if strings.HasPrefix(line, "No") {
			verdicts++
		}
		if strings.HasPrefix(line, "Maybe") || strings.HasPrefix(line, "Yes") {
			t.Errorf("unexpected verdict line: %s", line)
		}
	}
	if verdicts < 3 {
		t.Errorf("only %d verdict lines for 3 batch lines:\n%s", verdicts, stdout.String())
	}
}

// TestBatchModeStats: -stats adds the engine's cache summary, and the
// swapped orientation hits the canonicalized proof memo.
func TestBatchModeStats(t *testing.T) {
	batchFile := filepath.Join(t.TempDir(), "queries.txt")
	if err := os.WriteFile(batchFile, []byte("between S T\nbetween T S\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-stats", "-fn", "subr", "-batch", batchFile,
		"../../testdata/section33.c",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "proof memo") {
		t.Errorf("stderr missing the engine summary:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "engine.memo_hits") && !strings.Contains(stderr.String(), "counters:") {
		t.Errorf("stderr missing engine counters:\n%s", stderr.String())
	}
}

// TestBatchModeLoop: 'loop L' expands to the loop-carried self-dependence
// queries (the DOALL-legal loop of testdata/lint/doall.c answers No).
func TestBatchModeLoop(t *testing.T) {
	batchFile := filepath.Join(t.TempDir(), "queries.txt")
	if err := os.WriteFile(batchFile, []byte("loop L\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-fn", "scale", "-batch", batchFile,
		"../../testdata/lint/doall.c",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (doall.c is DOALL-legal)\nstdout: %s\nstderr: %s",
			code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "No") {
		t.Errorf("no verdict printed:\n%s", stdout.String())
	}
}

// TestBatchModeBadLine: a malformed batch line is a usage error (exit 2)
// naming the offending line.
func TestBatchModeBadLine(t *testing.T) {
	batchFile := filepath.Join(t.TempDir(), "queries.txt")
	if err := os.WriteFile(batchFile, []byte("between S\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-fn", "subr", "-batch", batchFile, "../../testdata/section33.c"},
		&stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit = %d, want 2 for a malformed line", code)
	}
	if !strings.Contains(stderr.String(), "between S") {
		t.Errorf("stderr does not name the bad line:\n%s", stderr.String())
	}
}

// TestRunUsageError: bad flags exit 2 without panicking.
// TestStatsPromFile: -stats-prom writes the run's final counters as valid
// Prometheus text exposition, the one-shot CLI's counterpart of
// aptserved's /metrics.
func TestStatsPromFile(t *testing.T) {
	promFile := filepath.Join(t.TempDir(), "metrics.prom")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-stats-prom", promFile, "-fn", "subr", "-from", "S", "-to", "T",
		"../../testdata/section33.c",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d\nstderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(promFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidatePrometheus(data); err != nil {
		t.Errorf("-stats-prom output invalid: %v\n%s", err, data)
	}
	if !strings.Contains(string(data), "apt_prover_goals_total") {
		t.Errorf("exposition lacks prover counters:\n%s", data)
	}
}

func TestRunUsageError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad flag: exit = %d, want 2", code)
	}
	if code := run([]string{}, &stdout, &stderr); code != 2 {
		t.Errorf("missing file: exit = %d, want 2", code)
	}
}

// TestPreloadIdentityAndFallback: -preload must never change output — not
// with a good artifact (warm boot), and not with a corrupt one (warn on
// stderr, fall back to cold compilation).
func TestPreloadIdentityAndFallback(t *testing.T) {
	dir := t.TempDir()
	queries := filepath.Join(dir, "q.txt")
	if err := os.WriteFile(queries, []byte("between S T\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	baseArgs := []string{"-fn", "subr", "-batch", queries, "../../testdata/section33.c"}

	var cold bytes.Buffer
	if code := run(baseArgs, &cold, &bytes.Buffer{}); code != 0 {
		t.Fatalf("cold run exit = %d", code)
	}

	// Build a matching artifact the way the docs describe: replay the same
	// program and query file through aptc's snapshot path (here, inline).
	art := buildReplayArtifact(t, "../../testdata/section33.c", "subr", "between S T")
	good := filepath.Join(dir, "good.aptc")
	if err := art.Save(good); err != nil {
		t.Fatal(err)
	}
	var warm, warmErr bytes.Buffer
	if code := run(append([]string{"-preload", good}, baseArgs...), &warm, &warmErr); code != 0 {
		t.Fatalf("preloaded run exit = %d\nstderr: %s", code, warmErr.String())
	}
	if warm.String() != cold.String() {
		t.Errorf("preloaded output differs from cold output:\n--- cold ---\n%s--- warm ---\n%s", cold.String(), warm.String())
	}

	// Corrupt artifact: same verdicts, plus a warning, never a failure.
	blob, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)-1] ^= 0x01
	bad := filepath.Join(dir, "bad.aptc")
	if err := os.WriteFile(bad, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	var degraded, degradedErr bytes.Buffer
	if code := run(append([]string{"-preload", bad}, baseArgs...), &degraded, &degradedErr); code != 0 {
		t.Fatalf("corrupt-preload run exit = %d\nstderr: %s", code, degradedErr.String())
	}
	if degraded.String() != cold.String() {
		t.Errorf("corrupt-preload output differs from cold output:\n--- cold ---\n%s--- got ---\n%s", cold.String(), degraded.String())
	}
	if !strings.Contains(degradedErr.String(), "continuing with cold caches") {
		t.Errorf("corrupt preload did not warn: %q", degradedErr.String())
	}

	// The sequential (non-batch) path takes -preload too.
	seqArgs := []string{"-fn", "subr", "-from", "S", "-to", "T", "../../testdata/section33.c"}
	var seqCold, seqWarm bytes.Buffer
	if code := run(seqArgs, &seqCold, &bytes.Buffer{}); code != 0 {
		t.Fatalf("sequential cold exit = %d", code)
	}
	if code := run(append([]string{"-preload", good}, seqArgs...), &seqWarm, &bytes.Buffer{}); code != 0 {
		t.Fatalf("sequential preloaded exit = %d", code)
	}
	if seqWarm.String() != seqCold.String() {
		t.Errorf("sequential preloaded output differs:\n--- cold ---\n%s--- warm ---\n%s", seqCold.String(), seqWarm.String())
	}
}

// buildReplayArtifact snapshots the engine working set of one batch run,
// exactly as `aptc -program -queries` does.
func buildReplayArtifact(t *testing.T, file, fn, queryLine string) *automata.Artifact {
	t.Helper()
	src, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lang.Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	res, err := analysis.Analyze(prog, fn, analysis.Options{InferTypeAxioms: true})
	if err != nil {
		t.Fatal(err)
	}
	qs, err := parseBatchFile(queryLine, res)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(res.Axioms, engine.Options{})
	eng.Batch(context.Background(), qs)
	return eng.DFACache().Snapshot()
}
