// Command aptdep runs the full pipeline on a mini-C source file: parse,
// analyze access paths, and answer dependence queries between labeled
// statements.
//
// Examples:
//
//	aptdep -fn subr -from S -to T prog.c          straight-line dependence
//	aptdep -fn update -loop U prog.c              loop-carried dependence
//	aptdep -fn subr -apm prog.c                   dump the APM tables
//	aptdep -stats -trace-json t.jsonl -fn subr -from S -to T prog.c
//
// Exit status: 0 when every query answered No, 1 when a dependence was found
// or assumed, 2 on usage or input errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/analysis"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/prover"
	"repro/internal/ptdp"
	"repro/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main without the process-global bindings, so tests can drive the
// whole CLI in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("aptdep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fn := fs.String("fn", "", "function to analyze (default: the only function)")
	from := fs.String("from", "", "label of statement S")
	to := fs.String("to", "", "label of statement T")
	loop := fs.String("loop", "", "label for a loop-carried self-dependence query")
	crossIter := fs.Bool("cross-iteration", false, "with -from/-to in one loop: compare S at iteration i against T at a later iteration")
	usePTDP := fs.Bool("ptdp", false, "run the named-variable points-to test instead of APT (Figure 1's left problem)")
	apm := fs.Bool("apm", false, "print the access path matrix at every label")
	trace := fs.Bool("trace", false, "print proof traces")
	assumeInv := fs.Bool("assume-invariants", false, "assume loops re-establish axioms despite structural modifications (the 'full' analysis of §5)")
	verify := fs.Bool("verify", false, "independently re-check every proof before trusting a No")
	var tf cliutil.TelemetryFlags
	tf.Register(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	fatalf := func(format string, fargs ...any) int {
		fmt.Fprintf(stderr, "aptdep: "+format+"\n", fargs...)
		return 2
	}
	if fs.NArg() != 1 {
		return fatalf("usage: aptdep [flags] file.c")
	}
	tel, err := tf.Open()
	if err != nil {
		return fatalf("%v", err)
	}
	phases := telemetry.NewPhases(tel)
	defer tf.Close(stderr, phases)

	var prog *lang.Program
	if err := phases.Run("parse", func() error {
		src, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			return err
		}
		prog, err = lang.Parse(string(src))
		return err
	}); err != nil {
		return fatalf("%v", err)
	}
	name := *fn
	if name == "" {
		if len(prog.Funcs) != 1 {
			return fatalf("file has %d functions; pick one with -fn", len(prog.Funcs))
		}
		name = prog.Funcs[0].Name
	}

	if *usePTDP {
		if *from == "" || *to == "" {
			return fatalf("-ptdp needs -from and -to")
		}
		r, err := ptdp.Analyze(prog, name)
		if err != nil {
			return fatalf("%v", err)
		}
		res, err := r.DepTest(*from, *to)
		if err != nil {
			return fatalf("%v", err)
		}
		fmt.Fprintf(stdout, "%v  (points-to intersection, %s → %s)\n", res, *from, *to)
		if env := r.PointsTo[*from]; env != nil {
			for v, pts := range env {
				fmt.Fprintf(stdout, "    at %s: %s -> %s\n", *from, v, pts)
			}
		}
		if res != core.No {
			return 1
		}
		return 0
	}

	var res *analysis.Result
	if err := phases.Run("analyze", func() error {
		var err error
		res, err = analysis.Analyze(prog, name, analysis.Options{
			InferTypeAxioms:      true,
			AssumeLoopInvariants: *assumeInv,
			Telemetry:            tel,
		})
		return err
	}); err != nil {
		return fatalf("%v", err)
	}

	if *apm {
		var labels []string
		for l := range res.APMs {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		for _, l := range labels {
			fmt.Fprintf(stdout, "at %s:\n%s\n", l, res.APMs[l])
		}
		if *from == "" && *loop == "" {
			return 0
		}
	}

	var queries []core.Query
	if err := phases.Run("build-queries", func() error {
		var err error
		switch {
		case *loop != "":
			queries, err = res.LoopCarriedQueries(*loop)
		case *from != "" && *to != "" && *crossIter:
			queries, err = res.LoopCarriedBetween(*from, *to)
		case *from != "" && *to != "":
			queries, err = res.QueriesBetween(*from, *to)
		default:
			err = fmt.Errorf("provide -from/-to or -loop")
		}
		return err
	}); err != nil {
		return fatalf("%v", err)
	}

	tester := core.NewTester(res.Axioms, prover.Options{Telemetry: tel})
	tester.VerifyProofs = *verify
	exit := 0
	phases.Run("deptest", func() error {
		for _, q := range queries {
			out := tester.DepTest(q)
			fmt.Fprintf(stdout, "%v  [%s]  S: %v  T: %v\n    %s\n", out.Result, out.Kind, q.S, q.T, out.Reason)
			if *trace && out.Proof != nil {
				fmt.Fprintln(stdout, indent(out.Proof.Render()))
			}
			if out.Result != core.No {
				exit = 1
			}
		}
		return nil
	})
	if err := tf.Close(stderr, phases); err != nil {
		return fatalf("%v", err)
	}
	tf = cliutil.TelemetryFlags{} // deferred Close becomes a no-op
	return exit
}

func indent(s string) string {
	out := ""
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\n' {
			if start < i {
				out += "    " + s[start:i] + "\n"
			}
			start = i + 1
		}
	}
	return out
}
