// Command aptdep runs the full pipeline on a mini-C source file: parse,
// analyze access paths, and answer dependence queries between labeled
// statements.
//
// Examples:
//
//	aptdep -fn subr -from S -to T prog.c          straight-line dependence
//	aptdep -fn update -loop U prog.c              loop-carried dependence
//	aptdep -fn subr -apm prog.c                   dump the APM tables
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/prover"
	"repro/internal/ptdp"
)

func main() {
	fn := flag.String("fn", "", "function to analyze (default: the only function)")
	from := flag.String("from", "", "label of statement S")
	to := flag.String("to", "", "label of statement T")
	loop := flag.String("loop", "", "label for a loop-carried self-dependence query")
	crossIter := flag.Bool("cross-iteration", false, "with -from/-to in one loop: compare S at iteration i against T at a later iteration")
	usePTDP := flag.Bool("ptdp", false, "run the named-variable points-to test instead of APT (Figure 1's left problem)")
	apm := flag.Bool("apm", false, "print the access path matrix at every label")
	trace := flag.Bool("trace", false, "print proof traces")
	assumeInv := flag.Bool("assume-invariants", false, "assume loops re-establish axioms despite structural modifications (the 'full' analysis of §5)")
	verify := flag.Bool("verify", false, "independently re-check every proof before trusting a No")
	flag.Parse()

	if flag.NArg() != 1 {
		fatalf("usage: aptdep [flags] file.c")
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}
	prog, err := lang.Parse(string(src))
	if err != nil {
		fatalf("%v", err)
	}
	name := *fn
	if name == "" {
		if len(prog.Funcs) != 1 {
			fatalf("file has %d functions; pick one with -fn", len(prog.Funcs))
		}
		name = prog.Funcs[0].Name
	}

	if *usePTDP {
		if *from == "" || *to == "" {
			fatalf("-ptdp needs -from and -to")
		}
		r, err := ptdp.Analyze(prog, name)
		if err != nil {
			fatalf("%v", err)
		}
		res, err := r.DepTest(*from, *to)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("%v  (points-to intersection, %s → %s)\n", res, *from, *to)
		if env := r.PointsTo[*from]; env != nil {
			for v, pts := range env {
				fmt.Printf("    at %s: %s -> %s\n", *from, v, pts)
			}
		}
		if res != core.No {
			os.Exit(1)
		}
		return
	}

	res, err := analysis.Analyze(prog, name, analysis.Options{
		InferTypeAxioms:      true,
		AssumeLoopInvariants: *assumeInv,
	})
	if err != nil {
		fatalf("%v", err)
	}

	if *apm {
		var labels []string
		for l := range res.APMs {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		for _, l := range labels {
			fmt.Printf("at %s:\n%s\n", l, res.APMs[l])
		}
		if *from == "" && *loop == "" {
			return
		}
	}

	var queries []core.Query
	switch {
	case *loop != "":
		queries, err = res.LoopCarriedQueries(*loop)
	case *from != "" && *to != "" && *crossIter:
		queries, err = res.LoopCarriedBetween(*from, *to)
	case *from != "" && *to != "":
		queries, err = res.QueriesBetween(*from, *to)
	default:
		fatalf("provide -from/-to or -loop")
	}
	if err != nil {
		fatalf("%v", err)
	}

	tester := core.NewTester(res.Axioms, prover.Options{})
	tester.VerifyProofs = *verify
	exit := 0
	for _, q := range queries {
		out := tester.DepTest(q)
		fmt.Printf("%v  [%s]  S: %v  T: %v\n    %s\n", out.Result, out.Kind, q.S, q.T, out.Reason)
		if *trace && out.Proof != nil {
			fmt.Println(indent(out.Proof.Render()))
		}
		if out.Result != core.No {
			exit = 1
		}
	}
	os.Exit(exit)
}

func indent(s string) string {
	out := ""
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\n' {
			if start < i {
				out += "    " + s[start:i] + "\n"
			}
			start = i + 1
		}
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "aptdep: "+format+"\n", args...)
	os.Exit(2)
}
