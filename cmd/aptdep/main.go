// Command aptdep runs the full pipeline on a mini-C source file: parse,
// analyze access paths, and answer dependence queries between labeled
// statements.
//
// Examples:
//
//	aptdep -fn subr -from S -to T prog.c          straight-line dependence
//	aptdep -fn update -loop U prog.c              loop-carried dependence
//	aptdep -fn subr -apm prog.c                   dump the APM tables
//	aptdep -fn subr -batch queries.txt prog.c     many queries, one run
//	aptdep -stats -trace-json t.jsonl -fn subr -from S -to T prog.c
//
// A -batch file holds one query per line ('#' starts a comment):
//
//	between S T     every dependence query from statement S to statement T
//	cross S T       S at iteration i against T at a later iteration
//	loop U          the loop-carried self-dependence queries of label U
//
// Batch queries are answered by the concurrency-safe query engine
// (internal/engine): -workers sets the pool width, -timeout bounds each
// query's proof search (expiry degrades that query to Maybe), and -stats
// reports the shared-cache hit rates alongside the usual counters.
//
// Exit status: 0 when every query answered No, 1 when a dependence was found
// or assumed, 2 on usage or input errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/automata"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/lang"
	"repro/internal/prover"
	"repro/internal/ptdp"
	"repro/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main without the process-global bindings, so tests can drive the
// whole CLI in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("aptdep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fn := fs.String("fn", "", "function to analyze (default: the only function)")
	from := fs.String("from", "", "label of statement S")
	to := fs.String("to", "", "label of statement T")
	loop := fs.String("loop", "", "label for a loop-carried self-dependence query")
	crossIter := fs.Bool("cross-iteration", false, "with -from/-to in one loop: compare S at iteration i against T at a later iteration")
	usePTDP := fs.Bool("ptdp", false, "run the named-variable points-to test instead of APT (Figure 1's left problem)")
	apm := fs.Bool("apm", false, "print the access path matrix at every label")
	trace := fs.Bool("trace", false, "print proof traces")
	assumeInv := fs.Bool("assume-invariants", false, "assume loops re-establish axioms despite structural modifications (the 'full' analysis of §5)")
	verify := fs.Bool("verify", false, "independently re-check every proof before trusting a No")
	batch := fs.String("batch", "", "`file` of queries (between S T | cross S T | loop U, one per line) answered by the batched engine")
	preload := fs.String("preload", "", "compiled automata artifact `file` (from aptc) preseeding the DFA cache")
	workers := fs.Int("workers", 1, "engine pool `width` for -batch")
	timeout := fs.Duration("timeout", 0, "per-query proof-search `bound` for -batch (0 = none; expiry degrades the query to Maybe)")
	var tf cliutil.TelemetryFlags
	tf.Register(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	fatalf := func(format string, fargs ...any) int {
		fmt.Fprintf(stderr, "aptdep: "+format+"\n", fargs...)
		return 2
	}
	if fs.NArg() != 1 {
		return fatalf("usage: aptdep [flags] file.c")
	}
	tel, err := tf.Open()
	if err != nil {
		return fatalf("%v", err)
	}
	phases := telemetry.NewPhases(tel)
	defer tf.Close(stderr, phases)

	var artifact *automata.Artifact
	if *preload != "" {
		artifact, err = automata.LoadArtifact(*preload)
		if err != nil {
			// Preload is an optimization: a bad artifact falls back to cold
			// compilation and must never change an answer.
			fmt.Fprintf(stderr, "aptdep: preload %s: %v (continuing with cold caches)\n", *preload, err)
			artifact = nil
		}
	}

	var prog *lang.Program
	if err := phases.Run("parse", func() error {
		src, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			return err
		}
		prog, err = lang.Parse(string(src))
		return err
	}); err != nil {
		return fatalf("%v", err)
	}
	name := *fn
	if name == "" {
		if len(prog.Funcs) != 1 {
			return fatalf("file has %d functions; pick one with -fn", len(prog.Funcs))
		}
		name = prog.Funcs[0].Name
	}

	if *usePTDP {
		if *from == "" || *to == "" {
			return fatalf("-ptdp needs -from and -to")
		}
		r, err := ptdp.Analyze(prog, name)
		if err != nil {
			return fatalf("%v", err)
		}
		res, err := r.DepTest(*from, *to)
		if err != nil {
			return fatalf("%v", err)
		}
		fmt.Fprintf(stdout, "%v  (points-to intersection, %s → %s)\n", res, *from, *to)
		if env := r.PointsTo[*from]; env != nil {
			for v, pts := range env {
				fmt.Fprintf(stdout, "    at %s: %s -> %s\n", *from, v, pts)
			}
		}
		if res != core.No {
			return 1
		}
		return 0
	}

	var res *analysis.Result
	if err := phases.Run("analyze", func() error {
		var err error
		res, err = analysis.Analyze(prog, name, analysis.Options{
			InferTypeAxioms:      true,
			AssumeLoopInvariants: *assumeInv,
			Telemetry:            tel,
		})
		return err
	}); err != nil {
		return fatalf("%v", err)
	}

	if *apm {
		var labels []string
		for l := range res.APMs {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		for _, l := range labels {
			fmt.Fprintf(stdout, "at %s:\n%s\n", l, res.APMs[l])
		}
		if *from == "" && *loop == "" {
			return 0
		}
	}

	if *batch != "" {
		return runBatch(batchConfig{
			file:    *batch,
			workers: *workers,
			timeout: *timeout,
			verify:  *verify,
			trace:   *trace,
			preload: artifact,
			res:     res,
			tel:     tel,
			phases:  phases,
			tf:      &tf,
		}, stdout, stderr)
	}

	var queries []core.Query
	if err := phases.Run("build-queries", func() error {
		var err error
		switch {
		case *loop != "":
			queries, err = res.LoopCarriedQueries(*loop)
		case *from != "" && *to != "" && *crossIter:
			queries, err = res.LoopCarriedBetween(*from, *to)
		case *from != "" && *to != "":
			queries, err = res.QueriesBetween(*from, *to)
		default:
			err = fmt.Errorf("provide -from/-to or -loop")
		}
		return err
	}); err != nil {
		return fatalf("%v", err)
	}

	popts := prover.Options{Telemetry: tel}
	if artifact != nil {
		// The sequential path reaches the artifact through a preseeded
		// shared cache handed to the prover as its language cache.
		cache := automata.NewSharedCache(0, 0, 0)
		cache.Preseed(artifact)
		popts.DFACache = cache
	}
	tester := core.NewTester(res.Axioms, popts)
	tester.VerifyProofs = *verify
	exit := 0
	phases.Run("deptest", func() error {
		for _, q := range queries {
			out := tester.DepTest(q)
			fmt.Fprintf(stdout, "%v  [%s]  S: %v  T: %v\n    %s\n", out.Result, out.Kind, q.S, q.T, out.Reason)
			if *trace && out.Proof != nil {
				fmt.Fprintln(stdout, indent(out.Proof.Render()))
			}
			if out.Result != core.No {
				exit = 1
			}
		}
		return nil
	})
	if err := tf.Close(stderr, phases); err != nil {
		return fatalf("%v", err)
	}
	tf = cliutil.TelemetryFlags{} // deferred Close becomes a no-op
	return exit
}

// batchConfig carries everything runBatch needs from the main flag set.
type batchConfig struct {
	file    string
	workers int
	timeout time.Duration
	verify  bool
	trace   bool
	preload *automata.Artifact
	res     *analysis.Result
	tel     *telemetry.Set
	phases  *telemetry.Phases
	tf      *cliutil.TelemetryFlags
}

// runBatch answers a query file through the batched engine: every line
// expands to its dependence queries, the whole set runs in one
// engine.Batch call, and one result line per query is printed in file
// order.  Exit status follows the usual rule (0 iff every query is No).
func runBatch(cfg batchConfig, stdout, stderr io.Writer) int {
	fatalf := func(format string, fargs ...any) int {
		fmt.Fprintf(stderr, "aptdep: "+format+"\n", fargs...)
		return 2
	}
	var queries []core.Query
	if err := cfg.phases.Run("build-queries", func() error {
		src, err := os.ReadFile(cfg.file)
		if err != nil {
			return err
		}
		queries, err = parseBatchFile(string(src), cfg.res)
		return err
	}); err != nil {
		return fatalf("%v", err)
	}

	eng := engine.New(cfg.res.Axioms, engine.Options{
		Workers:      cfg.workers,
		QueryTimeout: cfg.timeout,
		Prover:       prover.Options{Telemetry: cfg.tel},
		VerifyProofs: cfg.verify,
		Telemetry:    cfg.tel,
		Preload:      cfg.preload,
	})
	exit := 0
	cfg.phases.Run("deptest", func() error {
		for i, out := range eng.Batch(context.Background(), queries) {
			q := queries[i]
			fmt.Fprintf(stdout, "%v  [%s]  S: %v  T: %v\n    %s\n", out.Result, out.Kind, q.S, q.T, out.Reason)
			if cfg.trace && out.Proof != nil {
				fmt.Fprintln(stdout, indent(out.Proof.Render()))
			}
			if out.Result != core.No {
				exit = 1
			}
		}
		return nil
	})
	st := eng.Stats()
	if cfg.tel.Enabled() {
		fmt.Fprintf(stderr, "aptdep: batch: %d queries, %d workers; proof memo %d/%d hits (%.0f%%), shared DFA cache %d/%d hits, %d timeouts\n",
			st.Queries, eng.Workers(),
			st.Memo.Hits, st.Memo.Lookups, 100*st.Memo.HitRate(),
			st.DFA.Hits, st.DFA.Lookups, st.Timeouts)
	}
	if err := cfg.tf.Close(stderr, cfg.phases); err != nil {
		return fatalf("%v", err)
	}
	*cfg.tf = cliutil.TelemetryFlags{} // deferred Close becomes a no-op
	return exit
}

// parseBatchFile expands a batch query file against the analysis result.
// Blank lines and '#' comments are skipped; each remaining line is
// "between S T", "cross S T", or "loop U".
func parseBatchFile(src string, res *analysis.Result) ([]core.Query, error) {
	var out []core.Query
	for n, line := range strings.Split(src, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		var (
			qs  []core.Query
			err error
		)
		switch {
		case fields[0] == "between" && len(fields) == 3:
			qs, err = res.QueriesBetween(fields[1], fields[2])
		case fields[0] == "cross" && len(fields) == 3:
			qs, err = res.LoopCarriedBetween(fields[1], fields[2])
		case fields[0] == "loop" && len(fields) == 2:
			qs, err = res.LoopCarriedQueries(fields[1])
		default:
			return nil, fmt.Errorf("%s:%d: want 'between S T', 'cross S T', or 'loop U', got %q",
				"batch file", n+1, strings.TrimSpace(line))
		}
		if err != nil {
			return nil, fmt.Errorf("batch file:%d: %w", n+1, err)
		}
		out = append(out, qs...)
	}
	return out, nil
}

func indent(s string) string {
	out := ""
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\n' {
			if start < i {
				out += "    " + s[start:i] + "\n"
			}
			start = i + 1
		}
	}
	return out
}
