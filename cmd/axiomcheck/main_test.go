package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCheck(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestBuiltinFamiliesHold(t *testing.T) {
	for _, family := range []string{"list", "ring", "tree", "leaf-linked-tree", "sparse"} {
		code, out, errOut := runCheck(t, "-family", family, "-trials", "5", "-size", "6")
		if code != 0 {
			t.Errorf("%s: exit = %d\n%s%s", family, code, out, errOut)
		}
		if !strings.Contains(out, "axioms hold") {
			t.Errorf("%s: unexpected output: %s", family, out)
		}
	}
}

// TestViolatedAxiomExitsOne: the list axioms include acyclicity, which a
// ring violates on every instance.
func TestViolatedAxiomExitsOne(t *testing.T) {
	listAxioms := filepath.Join(t.TempDir(), "list.axioms")
	if err := os.WriteFile(listAxioms, []byte("A1: forall p, p.next+ <> p.eps\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ := runCheck(t, "-family", "ring", "-axioms", listAxioms, "-trials", "3", "-size", "5")
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "VIOLATED") {
		t.Errorf("missing violation report: %s", out)
	}
}

// TestInconsistentSetRefused: a statically contradictory axiom set exits 1
// before any instance is built.
func TestInconsistentSetRefused(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.axioms")
	if err := os.WriteFile(bad, []byte("A1: forall p, p.(next|next.next) <> p.next\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errOut := runCheck(t, "-family", "list", "-axioms", bad)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s%s", code, out, errOut)
	}
	if !strings.Contains(out, "statically inconsistent") {
		t.Errorf("stdout: %s", out)
	}
	if !strings.Contains(errOut, "self-contradictory") {
		t.Errorf("stderr lacks the diagnostic: %s", errOut)
	}
}

// TestMaintain: listops.c's insertAfter preserves the list axioms;
// makeCycle breaks acyclicity, so -maintain must exit 1.
func TestMaintain(t *testing.T) {
	src := filepath.Join("..", "..", "testdata", "listops.c")
	code, out, errOut := runCheck(t, "-family", "list", "-maintain", "insertAfter", "-src", src, "-trials", "5")
	if code != 0 {
		t.Fatalf("insertAfter: exit = %d\n%s%s", code, out, errOut)
	}
	if !strings.Contains(out, "maintains all") {
		t.Errorf("insertAfter output: %s", out)
	}

	code, out, _ = runCheck(t, "-family", "list", "-maintain", "makeCycle", "-src", src, "-trials", "5")
	if code != 1 {
		t.Fatalf("makeCycle: exit = %d, want 1\n%s", code, out)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runCheck(t); code != 2 {
		t.Errorf("no -family: exit = %d, want 2", code)
	}
	if code, _, _ := runCheck(t, "-family", "nope"); code != 2 {
		t.Errorf("unknown family: exit = %d, want 2", code)
	}
	if code, _, _ := runCheck(t, "-family", "list", "-maintain", "f"); code != 2 {
		t.Errorf("-maintain without -src: exit = %d, want 2", code)
	}
	if code, _, _ := runCheck(t, "-family", "list", "-axioms", "does-not-exist"); code != 2 {
		t.Errorf("missing axiom file: exit = %d, want 2", code)
	}
	bad := filepath.Join(t.TempDir(), "syntax.axioms")
	if err := os.WriteFile(bad, []byte("not an axiom\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, errOut := runCheck(t, "-family", "list", "-axioms", bad); code != 2 {
		t.Errorf("unparsable axiom file: exit = %d, want 2 (%s)", code, errOut)
	}
}
