// Command axiomcheck validates aliasing axioms against concrete data
// structures: it builds random instances of a chosen structure family and
// model-checks every axiom on every instance (§3.2's "supplied by the
// programmer (and perhaps automatically verified)").  Before touching any
// instance it statically checks the set for internal consistency with the
// same machinery as aptlint's axiom-consistency pass — a contradictory set
// holds on no structure, so model-checking it would only mislead.
//
// Examples:
//
//	axiomcheck -family leaf-linked-tree                 # Figure 3's axioms
//	axiomcheck -family sparse                           # Appendix A's twelve
//	axiomcheck -family list -axioms my_axioms.txt       # your axioms on lists
//	axiomcheck -family leaf-linked-tree -adds tree.adds # ADDS-generated
//	axiomcheck -family list -maintain insertFront -src prog.c
//	                                   # does insertFront(root) keep the axioms?
//
// Exit status: 0 when every axiom holds, 1 when an axiom is violated, fails
// to be maintained, or the set is statically inconsistent, 2 on usage or
// input errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro/internal/adds"
	"repro/internal/axiom"
	"repro/internal/heap"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main without the process-global bindings, so tests can drive the
// whole CLI in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("axiomcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	family := fs.String("family", "", "structure family: list | ring | tree | leaf-linked-tree | sparse")
	axiomFile := fs.String("axioms", "", "axiom file to check (default: the family's built-in set)")
	addsFile := fs.String("adds", "", "ADDS declaration to compile and check")
	trials := fs.Int("trials", 20, "number of random instances")
	size := fs.Int("size", 12, "instance size parameter")
	seed := fs.Int64("seed", 1, "random seed")
	maintain := fs.String("maintain", "", "mini-C function (see -src) to verify as axiom-maintaining: called as fn(root) on each instance")
	srcFile := fs.String("src", "", "mini-C source file providing the -maintain function")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	fatalf := func(format string, fargs ...any) int {
		fmt.Fprintf(stderr, "axiomcheck: "+format+"\n", fargs...)
		return 2
	}

	builders := map[string]func(rng *rand.Rand, size int) *heap.Graph{
		"list": func(rng *rand.Rand, size int) *heap.Graph {
			g, _ := heap.BuildList(1+rng.Intn(size), "next")
			return g
		},
		"ring": func(rng *rand.Rand, size int) *heap.Graph {
			g, _ := heap.BuildRing(1+rng.Intn(size), "next")
			return g
		},
		"tree": func(rng *rand.Rand, size int) *heap.Graph {
			g, _ := heap.RandomBinaryTree(rng, 1+rng.Intn(size), "L", "R")
			return g
		},
		"leaf-linked-tree": func(rng *rand.Rand, size int) *heap.Graph {
			g, _ := heap.RandomLeafLinkedTree(rng, 1+rng.Intn(size))
			return g
		},
		"sparse": func(rng *rand.Rand, size int) *heap.Graph {
			r, c := 1+rng.Intn(size/2+1), 1+rng.Intn(size/2+1)
			pos := heap.RandomSparsePattern(rng, r, c, rng.Intn(r*c+1))
			g, _ := heap.BuildSparseMatrix(r, c, pos)
			return g
		},
	}
	defaults := map[string]func() *axiom.Set{
		"list":             func() *axiom.Set { return axiom.SinglyLinkedList("next") },
		"ring":             func() *axiom.Set { return axiom.CircularList("next") },
		"tree":             func() *axiom.Set { return axiom.BinaryTree("L", "R") },
		"leaf-linked-tree": axiom.LeafLinkedBinaryTree,
		"sparse":           axiom.SparseMatrix,
	}

	build, ok := builders[*family]
	if !ok {
		return fatalf("unknown -family %q (list, ring, tree, leaf-linked-tree, sparse)", *family)
	}

	var set *axiom.Set
	switch {
	case *addsFile != "":
		data, err := os.ReadFile(*addsFile)
		if err != nil {
			return fatalf("%v", err)
		}
		decl, err := adds.Parse(string(data))
		if err != nil {
			return fatalf("%v", err)
		}
		set = decl.Axioms()
		fmt.Fprintf(stdout, "compiled ADDS declaration %s into %d axioms\n", decl.Name, set.Len())
	case *axiomFile != "":
		data, err := os.ReadFile(*axiomFile)
		if err != nil {
			return fatalf("%v", err)
		}
		set, err = axiom.ParseSet(*axiomFile, string(data))
		if err != nil {
			return fatalf("%v", err)
		}
	default:
		set = defaults[*family]()
	}

	// Static consistency first: a contradictory set has no model, so every
	// instance-based answer would be vacuous.
	static := lint.CheckSet(set)
	for _, d := range static {
		fmt.Fprintf(stderr, "axiomcheck: %s: %s\n", d.Severity, d.Message)
	}
	if lint.HasErrors(static) {
		fmt.Fprintln(stdout, "axiom set is statically inconsistent; refusing to model-check")
		return 1
	}

	if *maintain != "" {
		if *srcFile == "" {
			return fatalf("-maintain needs -src file.c")
		}
		data, err := os.ReadFile(*srcFile)
		if err != nil {
			return fatalf("%v", err)
		}
		prog, err := lang.Parse(string(data))
		if err != nil {
			return fatalf("%v", err)
		}
		roots := map[string]func(rng *rand.Rand, size int) (*heap.Graph, heap.Vertex){
			"list": func(rng *rand.Rand, size int) (*heap.Graph, heap.Vertex) {
				return heap.BuildList(1+rng.Intn(size), "next")
			},
			"ring": func(rng *rand.Rand, size int) (*heap.Graph, heap.Vertex) {
				return heap.BuildRing(1+rng.Intn(size), "next")
			},
			"tree": func(rng *rand.Rand, size int) (*heap.Graph, heap.Vertex) {
				return heap.RandomBinaryTree(rng, 1+rng.Intn(size), "L", "R")
			},
			"leaf-linked-tree": func(rng *rand.Rand, size int) (*heap.Graph, heap.Vertex) {
				return heap.RandomLeafLinkedTree(rng, 1+rng.Intn(size))
			},
		}
		rootBuild, ok := roots[*family]
		if !ok {
			return fatalf("-maintain supports families: list, ring, tree, leaf-linked-tree")
		}
		gen := func(rng *rand.Rand) interp.Instance {
			g, root := rootBuild(rng, *size)
			return interp.Instance{Graph: g, Args: []interp.Value{interp.Ptr(root)}}
		}
		if err := interp.MaintainsAxioms(prog, *maintain, set, gen, *trials, *seed); err != nil {
			fmt.Fprintln(stdout, err)
			return 1
		}
		fmt.Fprintf(stdout, "%s maintains all %d axioms across %d random %s instances\n",
			*maintain, set.Len(), *trials, *family)
		return 0
	}

	rng := rand.New(rand.NewSource(*seed))
	violations := 0
	for trial := 0; trial < *trials; trial++ {
		g := build(rng, *size)
		for _, a := range set.Axioms {
			if err := g.CheckAxiom(a); err != nil {
				fmt.Fprintf(stdout, "trial %d (%d vertices): VIOLATED %v\n", trial, g.NumVertices(), a)
				violations++
			}
		}
	}
	if violations == 0 {
		fmt.Fprintf(stdout, "all %d axioms hold on %d random %s instances\n", set.Len(), *trials, *family)
		return 0
	}
	fmt.Fprintf(stdout, "%d violations\n", violations)
	return 1
}
