// Command axiomcheck validates aliasing axioms against concrete data
// structures: it builds random instances of a chosen structure family and
// model-checks every axiom on every instance (§3.2's "supplied by the
// programmer (and perhaps automatically verified)").
//
// Examples:
//
//	axiomcheck -family leaf-linked-tree                 # Figure 3's axioms
//	axiomcheck -family sparse                           # Appendix A's twelve
//	axiomcheck -family list -axioms my_axioms.txt       # your axioms on lists
//	axiomcheck -family leaf-linked-tree -adds tree.adds # ADDS-generated
//	axiomcheck -family list -maintain insertFront -src prog.c
//	                                   # does insertFront(root) keep the axioms?
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/adds"
	"repro/internal/axiom"
	"repro/internal/heap"
	"repro/internal/interp"
	"repro/internal/lang"
)

func main() {
	family := flag.String("family", "", "structure family: list | ring | tree | leaf-linked-tree | sparse")
	axiomFile := flag.String("axioms", "", "axiom file to check (default: the family's built-in set)")
	addsFile := flag.String("adds", "", "ADDS declaration to compile and check")
	trials := flag.Int("trials", 20, "number of random instances")
	size := flag.Int("size", 12, "instance size parameter")
	seed := flag.Int64("seed", 1, "random seed")
	maintain := flag.String("maintain", "", "mini-C function (see -src) to verify as axiom-maintaining: called as fn(root) on each instance")
	srcFile := flag.String("src", "", "mini-C source file providing the -maintain function")
	flag.Parse()

	builders := map[string]func(rng *rand.Rand, size int) *heap.Graph{
		"list": func(rng *rand.Rand, size int) *heap.Graph {
			g, _ := heap.BuildList(1+rng.Intn(size), "next")
			return g
		},
		"ring": func(rng *rand.Rand, size int) *heap.Graph {
			g, _ := heap.BuildRing(1+rng.Intn(size), "next")
			return g
		},
		"tree": func(rng *rand.Rand, size int) *heap.Graph {
			g, _ := heap.RandomBinaryTree(rng, 1+rng.Intn(size), "L", "R")
			return g
		},
		"leaf-linked-tree": func(rng *rand.Rand, size int) *heap.Graph {
			g, _ := heap.RandomLeafLinkedTree(rng, 1+rng.Intn(size))
			return g
		},
		"sparse": func(rng *rand.Rand, size int) *heap.Graph {
			r, c := 1+rng.Intn(size/2+1), 1+rng.Intn(size/2+1)
			pos := heap.RandomSparsePattern(rng, r, c, rng.Intn(r*c+1))
			g, _ := heap.BuildSparseMatrix(r, c, pos)
			return g
		},
	}
	defaults := map[string]func() *axiom.Set{
		"list":             func() *axiom.Set { return axiom.SinglyLinkedList("next") },
		"ring":             func() *axiom.Set { return axiom.CircularList("next") },
		"tree":             func() *axiom.Set { return axiom.BinaryTree("L", "R") },
		"leaf-linked-tree": axiom.LeafLinkedBinaryTree,
		"sparse":           axiom.SparseMatrix,
	}

	build, ok := builders[*family]
	if !ok {
		fatalf("unknown -family %q (list, ring, tree, leaf-linked-tree, sparse)", *family)
	}

	var set *axiom.Set
	switch {
	case *addsFile != "":
		data, err := os.ReadFile(*addsFile)
		if err != nil {
			fatalf("%v", err)
		}
		decl, err := adds.Parse(string(data))
		if err != nil {
			fatalf("%v", err)
		}
		set = decl.Axioms()
		fmt.Printf("compiled ADDS declaration %s into %d axioms\n", decl.Name, set.Len())
	case *axiomFile != "":
		data, err := os.ReadFile(*axiomFile)
		if err != nil {
			fatalf("%v", err)
		}
		set, err = axiom.ParseSet(*axiomFile, string(data))
		if err != nil {
			fatalf("%v", err)
		}
	default:
		set = defaults[*family]()
	}

	if *maintain != "" {
		if *srcFile == "" {
			fatalf("-maintain needs -src file.c")
		}
		data, err := os.ReadFile(*srcFile)
		if err != nil {
			fatalf("%v", err)
		}
		prog, err := lang.Parse(string(data))
		if err != nil {
			fatalf("%v", err)
		}
		roots := map[string]func(rng *rand.Rand, size int) (*heap.Graph, heap.Vertex){
			"list": func(rng *rand.Rand, size int) (*heap.Graph, heap.Vertex) {
				return heap.BuildList(1+rng.Intn(size), "next")
			},
			"ring": func(rng *rand.Rand, size int) (*heap.Graph, heap.Vertex) {
				return heap.BuildRing(1+rng.Intn(size), "next")
			},
			"tree": func(rng *rand.Rand, size int) (*heap.Graph, heap.Vertex) {
				return heap.RandomBinaryTree(rng, 1+rng.Intn(size), "L", "R")
			},
			"leaf-linked-tree": func(rng *rand.Rand, size int) (*heap.Graph, heap.Vertex) {
				return heap.RandomLeafLinkedTree(rng, 1+rng.Intn(size))
			},
		}
		rootBuild, ok := roots[*family]
		if !ok {
			fatalf("-maintain supports families: list, ring, tree, leaf-linked-tree")
		}
		gen := func(rng *rand.Rand) interp.Instance {
			g, root := rootBuild(rng, *size)
			return interp.Instance{Graph: g, Args: []interp.Value{interp.Ptr(root)}}
		}
		if err := interp.MaintainsAxioms(prog, *maintain, set, gen, *trials, *seed); err != nil {
			fmt.Println(err)
			os.Exit(1)
		}
		fmt.Printf("%s maintains all %d axioms across %d random %s instances"+"\n",
			*maintain, set.Len(), *trials, *family)
		return
	}

	rng := rand.New(rand.NewSource(*seed))
	violations := 0
	for trial := 0; trial < *trials; trial++ {
		g := build(rng, *size)
		for _, a := range set.Axioms {
			if err := g.CheckAxiom(a); err != nil {
				fmt.Printf("trial %d (%d vertices): VIOLATED %v\n", trial, g.NumVertices(), a)
				violations++
			}
		}
	}
	if violations == 0 {
		fmt.Printf("all %d axioms hold on %d random %s instances\n", set.Len(), *trials, *family)
		return
	}
	fmt.Printf("%d violations\n", violations)
	os.Exit(1)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "axiomcheck: "+format+"\n", args...)
	os.Exit(2)
}
