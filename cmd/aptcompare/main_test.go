package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"flag"
)

var update = flag.Bool("update", false, "rewrite the golden file")

// TestGolden pins the full comparison table: the corpus is deterministic, so
// any drift in a baseline or in APT itself shows up as a diff.  Regenerate
// with: go test ./cmd/aptcompare -update
func TestGolden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d\n%s", code, stderr.String())
	}
	golden := filepath.Join("testdata", "golden.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, stdout.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if stdout.String() != string(want) {
		t.Errorf("output drifted:\n--- got ---\n%s--- want ---\n%s", stdout.String(), want)
	}
}

// TestHeadlineResults pins the paper's headline claims independent of
// formatting: APT separates the leaf-linked-tree and Theorem T queries where
// the baselines cannot, and stays Maybe on the circular list.
func TestHeadlineResults(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d\n%s", code, stderr.String())
	}
	for _, line := range strings.Split(stdout.String(), "\n") {
		switch {
		case strings.HasPrefix(line, "LLN vs LRN"),
			strings.HasPrefix(line, "Theorem T (sparse rows)"):
			if !strings.Contains(line, "No") {
				t.Errorf("APT should answer No: %q", line)
			}
		case strings.HasPrefix(line, "circular list"):
			if !strings.Contains(line, "Maybe") {
				t.Errorf("circular list must stay Maybe: %q", line)
			}
		case strings.HasPrefix(line, "identical paths"):
			if !strings.Contains(line, "Yes") {
				t.Errorf("identical paths must be Yes: %q", line)
			}
		}
	}
}

func TestUsageError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-bogus"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad flag: exit = %d, want 2", code)
	}
}
