// Command aptcompare runs the paper's query corpus head-to-head: APT
// against the Larus–Hilfinger path-expression intersection test [LH88] and
// a k-limited store-based test [JM82-style].  The corpus covers the queries
// the paper discusses: §2.4's leaf-linked tree accesses, §5's Theorem T,
// linked-list loops, and pure-tree queries where prior work is already
// precise.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/axiom"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/pathexpr"
	"repro/internal/prover"
)

type query struct {
	name      string
	axioms    func() *axiom.Set
	p1, p2    string
	reference string
}

var corpus = []query{
	{"LLN vs LRN (leaf-linked tree)", axiom.LeafLinkedBinaryTree, "L.L.N", "L.R.N", "§3.3"},
	{"LLNN vs LRN (same leaf!)", axiom.LeafLinkedBinaryTree, "L.L.N.N", "L.R.N", "§2.4"},
	{"LL vs LR (pure tree)", axiom.LeafLinkedBinaryTree, "L.L", "L.R", "§2.4"},
	{"Theorem T (sparse rows)", axiom.SparseMatrixCore, "ncolE+", "nrowE+ncolE+", "§5"},
	{"Theorem T (full Appendix A)", axiom.SparseMatrix, "ncolE+", "nrowE+ncolE+", "App. A"},
	{"inner loop L2 (sparse cols)", axiom.SparseMatrix, "nrowE+", "ncolE+nrowE+", "§5"},
	{"list loop, iteration i vs j", func() *axiom.Set { return axiom.SinglyLinkedList("link") }, "ε", "link+", "Fig. 1"},
	{"circular list (must stay Maybe)", func() *axiom.Set { return axiom.CircularList("link") }, "ε", "link+", "§3.1"},
	{"identical paths (definite Yes)", axiom.LeafLinkedBinaryTree, "L.L.N", "L.L.N", "§4.1"},
	{"2-D range tree inner trees", axiom.TwoDRangeTree, "L.aux.l", "L.aux.r", "§3.1"},
	{"skip list, base walk", func() *axiom.Set { return axiom.SkipList("n0", "n1") }, "ε", "n0+", "§1"},
	{"skip list, express vs base", func() *axiom.Set { return axiom.SkipList("n0", "n1") }, "n1", "n0.n0", "§1"},
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main without the process-global bindings, so tests can drive the
// whole CLI in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("aptcompare", flag.ContinueOnError)
	fs.SetOutput(stderr)
	k := fs.Int("k", 2, "k for the k-limited baseline")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	fmt.Fprintf(stdout, "%-34s %-8s %-8s %-8s %-8s %s\n", "query", "APT", "LH88", "HN90", fmt.Sprintf("k-lim(%d)", *k), "")
	for _, c := range corpus {
		set := c.axioms()
		q := core.Query{
			S: core.Access{Handle: "_h", Path: pathexpr.MustParseAlphabet(c.p1, set.Fields()), Field: "d", IsWrite: true},
			T: core.Access{Handle: "_h", Path: pathexpr.MustParseAlphabet(c.p2, set.Fields()), Field: "d", IsWrite: false},
		}
		apt := core.NewTester(set, prover.Options{}).DepTest(q).Result
		lh := baseline.NewLarusHilfinger(set).DepTest(q)
		hn := baseline.NewHendrenNicolau(set).DepTest(q)
		kl := baseline.NewKLimited(*k, set).DepTest(q)
		fmt.Fprintf(stdout, "%-34s %-8v %-8v %-8v %-8v %-10s\n", c.name, apt, lh, hn, kl, c.reference)
	}

	fmt.Fprintln(stdout)
	fmt.Fprintln(stdout, "loop-carried, whole loop (k-limited proves only the first k iterations):")
	kl2 := baseline.NewKLimited(*k, axiom.SinglyLinkedList("link"))
	upTo, res := kl2.LoopIndependent(pathexpr.MustParse("link"), pathexpr.Eps)
	fmt.Fprintf(stdout, "  list loop: k-limited proves iterations 0..%d independent, overall %v\n", upTo-1, res)
	apt := core.NewTester(axiom.SinglyLinkedList("link"), prover.Options{})
	lc := core.LoopCarried(apt.Axioms(), "_h", pathexpr.MustParse("link"), pathexpr.Eps, "f", true)
	fmt.Fprintf(stdout, "  list loop: APT proves all iterations independent: %v\n", apt.DepTest(lc).Result)
	return 0
}
