package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/axiom"
	"repro/internal/route"
	"repro/internal/serve"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// The cluster benchmark measures what sharding is FOR on this workload:
// engine warmth.  The dependence test is a pure function of (axiom set,
// goal), so a cluster adds nothing to any single answer — what it adds is
// aggregate warm-engine capacity.  The benchmark builds ring-size x
// per-backend-capacity distinct axiom-set shards, chosen ring-aware so the
// scaled phase places exactly `engines` shards on every backend: the full
// ring holds every shard warm, while a single backend with the same
// capacity LRU-thrashes and pays a cold engine build on nearly every
// request.  That warmth gap — not parallelism, which a one-CPU host cannot
// offer — is the queries/sec difference the report records.  A third phase
// re-runs the scaled ring with hedged retries to show hedging trims the
// tail without double-counting completions.

type clusterBenchConfig struct {
	backends int           // ring size of the scaled phase
	engines  int           // per-backend MaxEngines (warm capacity)
	requests int           // requests per phase
	clients  int           // concurrent clients
	hedge    time.Duration // hedge delay; 0 = auto (3x warm p50)
	out      string
}

// ClusterPhase is one benchmark phase in the BENCH_cluster.json schema.
type ClusterPhase struct {
	Name         string  `json:"name"`
	Backends     int     `json:"backends"`
	HedgeDelayUS int64   `json:"hedge_delay_us,omitempty"`
	Requests     int     `json:"requests"`
	OK           int     `json:"ok"`
	Errors       int     `json:"errors"`
	ElapsedMS    int64   `json:"elapsed_ms"`
	QPS          float64 `json:"queries_per_sec"`
	P50US        int64   `json:"p50_us"`
	P95US        int64   `json:"p95_us"`
	P99US        int64   `json:"p99_us"`
	ColdRequests int     `json:"cold_requests"`
	HedgesWon    int64   `json:"hedges_won,omitempty"`
	HedgesLost   int64   `json:"hedges_lost,omitempty"`
	HedgesSpared int64   `json:"hedges_spared,omitempty"`
}

// BenchClusterReport is the BENCH_cluster.json schema.
type BenchClusterReport struct {
	Shards            int          `json:"shards"`
	EnginesPerBackend int          `json:"engines_per_backend"`
	QueriesPerRequest int          `json:"queries_per_request"`
	Single            ClusterPhase `json:"single"`
	Cluster           ClusterPhase `json:"cluster"`
	ClusterHedged     ClusterPhase `json:"cluster_hedged"`
	// Scaling is Cluster.QPS / Single.QPS: the warm-capacity speedup of the
	// ring over one backend of the same per-node capacity.
	Scaling float64 `json:"scaling"`
}

// shardSet is one benchmark shard: a distinct axiom set and its canned
// raw-mode request body.
type shardSet struct {
	set  *axiom.Set
	body []byte
}

// clusterShardSets builds ring-size x engines distinct binary-tree axiom
// sets (distinct child-field names, hence distinct fingerprints) chosen so
// the ring over addrs places exactly `engines` of them on every backend.
func clusterShardSets(addrs []string, engines int) ([]shardSet, int, error) {
	ring := route.NewRing(addrs)
	perOwner := map[string]int{}
	var out []shardSet
	queries := 0
	for i := 0; len(out) < len(addrs)*engines; i++ {
		if i == 1000 {
			return nil, 0, fmt.Errorf("could not balance %d shards over %d backends in 1000 candidates", len(addrs)*engines, len(addrs))
		}
		l, r := fmt.Sprintf("l%d", i), fmt.Sprintf("r%d", i)
		set := axiom.BinaryTree(l, r)
		set.StructName = fmt.Sprintf("BinaryTree%d", i)
		owner := ring.Owner(set.Fingerprint64())
		if perOwner[owner] >= engines {
			continue
		}
		perOwner[owner]++
		// The first two queries are deliberately expensive to answer cold —
		// closure-over-alternation paths force large DFA compilations and a
		// deep proof search — and deliberately free to answer warm: the
		// engine's memo and DFA cache answer the identical repeat instantly.
		// That asymmetry is the warmth the cluster preserves and the single
		// backend loses to LRU eviction.
		any := fmt.Sprintf("(%s|%s)+", l, r)
		raws := []wire.RawQuery{
			{SHandle: "h", SPath: any, SField: "val", SWrite: true,
				THandle: "h", TPath: any, TField: "val"},
			{SHandle: "h", SPath: l + "." + any, SField: "val", SWrite: true,
				THandle: "h", TPath: r + "." + any, TField: "val", TWrite: true},
			{SHandle: "h", SPath: l, SField: "val", SWrite: true,
				THandle: "h", TPath: r, TField: "val"},
			{SHandle: "h", SPath: l + "+", SField: "val", SWrite: true,
				THandle: "h", TPath: r, TField: "val"},
		}
		queries = len(raws)
		body, err := json.Marshal(wire.BatchRequest{AxiomSet: set.Source(), AxiomSetName: set.StructName, Raw: raws})
		if err != nil {
			return nil, 0, err
		}
		out = append(out, shardSet{set: set, body: body})
	}
	return out, queries, nil
}

// clusterNode is one in-process backend or router with its listener.
type clusterNode struct {
	addr  string
	hs    *http.Server
	drain func(context.Context) error
}

func (n *clusterNode) stop() {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	n.drain(ctx) //nolint:errcheck // best effort at benchmark teardown
	n.hs.Close()
}

func bootClusterBackend(engines int) (*clusterNode, error) {
	srv := serve.New(serve.Config{
		Workers:       1,
		MaxEngines:    engines,
		MaxConcurrent: 4,
		QueueDepth:    1024,
		Telemetry:     telemetry.New(telemetry.NewRegistry(), nil),
	})
	return bootNode(srv, srv.Drain)
}

func bootClusterRouter(backends []string, hedge time.Duration) (*clusterNode, *route.Router, error) {
	rt := route.New(route.Config{
		Backends:   backends,
		HedgeDelay: hedge,
		Telemetry:  telemetry.New(telemetry.NewRegistry(), nil),
	})
	n, err := bootNode(rt, rt.Drain)
	return n, rt, err
}

func bootNode(h http.Handler, drain func(context.Context) error) (*clusterNode, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: h}
	go hs.Serve(ln) //nolint:errcheck // closed at teardown
	return &clusterNode{addr: "http://" + ln.Addr().String(), hs: hs, drain: drain}, nil
}

// runClusterPhase fires `total` requests round-robin over the shard bodies
// with `clients` concurrent workers and returns the phase summary.
func runClusterPhase(name, base string, shards []shardSet, total, clients, queriesPer int) ClusterPhase {
	httpCli := &http.Client{Timeout: 2 * serve.DefaultMaxDeadline}
	// Untimed warmup: touch every shard once so the measured window reflects
	// steady state.  A warm ring stays warm; the undersized single backend
	// thrashes on the very next round-robin pass regardless.
	for i := range shards {
		if resp, err := httpCli.Post(base+"/v1/batch", "application/json", bytes.NewReader(shards[i].body)); err == nil {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
		}
	}
	var (
		mu   sync.Mutex
		lats []time.Duration
		ph   = ClusterPhase{Name: name, Requests: total}
		next = make(chan int)
		wg   sync.WaitGroup
	)
	go func() {
		for i := 0; i < total; i++ {
			next <- i
		}
		close(next)
	}()
	t0 := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				r0 := time.Now()
				resp, err := httpCli.Post(base+"/v1/batch", "application/json", bytes.NewReader(shards[i%len(shards)].body))
				dur := time.Since(r0)
				if err != nil {
					mu.Lock()
					ph.Errors++
					mu.Unlock()
					continue
				}
				var br wire.BatchResponse
				decErr := json.NewDecoder(resp.Body).Decode(&br)
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
				mu.Lock()
				if resp.StatusCode != http.StatusOK || decErr != nil {
					ph.Errors++
				} else {
					ph.OK++
					lats = append(lats, dur)
					if br.Stats.ColdEngine {
						ph.ColdRequests++
					}
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(t0)
	ph.ElapsedMS = elapsed.Milliseconds()
	if elapsed > 0 {
		ph.QPS = float64(ph.OK*queriesPer) / elapsed.Seconds()
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	ph.P50US = quantileUS(lats, 0.50)
	ph.P95US = quantileUS(lats, 0.95)
	ph.P99US = quantileUS(lats, 0.99)
	return ph
}

func runClusterBench(cfg clusterBenchConfig, stdout, stderr io.Writer) int {
	fatalf := func(format string, fargs ...any) int {
		fmt.Fprintf(stderr, "aptserved: "+format+"\n", fargs...)
		return 2
	}
	if cfg.backends < 2 {
		return fatalf("-cluster-backends must be at least 2")
	}
	if cfg.engines < 1 {
		return fatalf("-cluster-engines must be at least 1")
	}

	// Boot the scaled ring's backends first: shard selection is ring-aware,
	// so the backend addresses must exist before the shards are chosen.
	var ringNodes []*clusterNode
	var ringAddrs []string
	for i := 0; i < cfg.backends; i++ {
		n, err := bootClusterBackend(cfg.engines)
		if err != nil {
			return fatalf("boot backend: %v", err)
		}
		defer n.stop()
		ringNodes = append(ringNodes, n)
		ringAddrs = append(ringAddrs, n.addr)
	}
	shards, queriesPer, err := clusterShardSets(ringAddrs, cfg.engines)
	if err != nil {
		return fatalf("%v", err)
	}
	rep := BenchClusterReport{
		Shards:            len(shards),
		EnginesPerBackend: cfg.engines,
		QueriesPerRequest: queriesPer,
	}
	fmt.Fprintf(stdout, "aptserved: cluster bench: %d shards over %d backends (%d warm engines each), %d requests/phase\n",
		len(shards), cfg.backends, cfg.engines, cfg.requests)

	// Phase 1 — single backend with the same per-node capacity: every
	// shard contends for `engines` slots, so the LRU thrashes and most
	// requests pay a cold engine build.
	single, err := bootClusterBackend(cfg.engines)
	if err != nil {
		return fatalf("boot single backend: %v", err)
	}
	defer single.stop()
	r1, _, err := bootClusterRouter([]string{single.addr}, 0)
	if err != nil {
		return fatalf("boot router: %v", err)
	}
	defer r1.stop()
	rep.Single = runClusterPhase("single", r1.addr, shards, cfg.requests, cfg.clients, queriesPer)
	rep.Single.Backends = 1
	fmt.Fprintf(stdout, "aptserved: single:  %7.0f queries/sec, p99 %6dus, %d cold\n", rep.Single.QPS, rep.Single.P99US, rep.Single.ColdRequests)

	// Phase 2 — the full ring: every backend holds exactly its owned
	// shards, so after first touch every request is engine-warm.
	r2, _, err := bootClusterRouter(ringAddrs, 0)
	if err != nil {
		return fatalf("boot router: %v", err)
	}
	defer r2.stop()
	rep.Cluster = runClusterPhase("cluster", r2.addr, shards, cfg.requests, cfg.clients, queriesPer)
	rep.Cluster.Backends = cfg.backends
	fmt.Fprintf(stdout, "aptserved: cluster: %7.0f queries/sec, p99 %6dus, %d cold\n", rep.Cluster.QPS, rep.Cluster.P99US, rep.Cluster.ColdRequests)

	// Phase 3 — the same warm ring, hedged: the delay defaults to 3x the
	// unhedged warm p50, so hedges fire only for genuine stragglers.
	hedge := cfg.hedge
	if hedge <= 0 {
		hedge = 3 * time.Duration(rep.Cluster.P50US) * time.Microsecond
		if hedge < time.Millisecond {
			hedge = time.Millisecond
		}
	}
	r3, rt3, err := bootClusterRouter(ringAddrs, hedge)
	if err != nil {
		return fatalf("boot router: %v", err)
	}
	defer r3.stop()
	rep.ClusterHedged = runClusterPhase("cluster_hedged", r3.addr, shards, cfg.requests, cfg.clients, queriesPer)
	rep.ClusterHedged.Backends = cfg.backends
	rep.ClusterHedged.HedgeDelayUS = hedge.Microseconds()
	z := rt3.StatzSnapshot()
	rep.ClusterHedged.HedgesWon, rep.ClusterHedged.HedgesLost, rep.ClusterHedged.HedgesSpared = z.HedgesWon, z.HedgesLost, z.HedgesSpared
	fmt.Fprintf(stdout, "aptserved: hedged:  %7.0f queries/sec, p99 %6dus (hedge %s: %d won, %d lost, %d spared)\n",
		rep.ClusterHedged.QPS, rep.ClusterHedged.P99US, hedge, z.HedgesWon, z.HedgesLost, z.HedgesSpared)

	if rep.Single.QPS > 0 {
		rep.Scaling = rep.Cluster.QPS / rep.Single.QPS
	}
	fmt.Fprintf(stdout, "aptserved: scaling: %.2fx at %d backends\n", rep.Scaling, cfg.backends)

	enc, _ := json.MarshalIndent(rep, "", "  ")
	fmt.Fprintf(stdout, "%s\n", enc)
	if cfg.out != "" {
		if err := os.WriteFile(cfg.out, append(enc, '\n'), 0o644); err != nil {
			return fatalf("%v", err)
		}
		fmt.Fprintf(stdout, "aptserved: wrote %s\n", cfg.out)
	}
	if rep.Single.Errors+rep.Cluster.Errors+rep.ClusterHedged.Errors > 0 {
		return 1
	}
	return 0
}
