// Command aptserved is the long-lived dependence-query daemon: it serves
// POST /v1/batch (aptdep's -batch line format as JSON) over warm
// per-axiom-set engines, so the DFA cache and proof memo survive across
// requests instead of being rebuilt cold by every CLI invocation.
//
// Server mode:
//
//	aptserved -addr :8080 -workers 4
//
// Endpoints: POST /v1/batch, GET /healthz, GET /metrics (Prometheus text
// exposition), GET /metrics.json (telemetry snapshot), GET /statz
// (admission + per-engine cache state), GET /debug/flightrecorder (the K
// slowest + recent degraded request traces).  A full admission queue sheds
// load with 429 + Retry-After; SIGTERM/SIGINT drains in-flight batches
// before exiting; SIGQUIT dumps the flight recorder to stderr without
// stopping.  -access-log writes one JSONL line per request.
//
// Router mode turns the same binary into the cluster's routing tier: a
// consistent-hash router that shards /v1/batch traffic across backends by
// axiom-set fingerprint, with health probing, failover, optional hedged
// retries, and warm engine handoff when the ring changes:
//
//	aptserved -router -backends 127.0.0.1:8081,127.0.0.1:8082 -addr :8080
//	aptserved -router -backends ... -hedge 25ms   # hedge tail requests
//
// Load-generator mode (also the BENCH_served.json producer):
//
//	aptserved -loadgen -self -program testdata/section33.c \
//	    -queries-file queries.txt -clients 8 -requests 64 -out BENCH_served.json
//
// -self starts an in-process server on a loopback port; point -addr at a
// running daemon instead to drive it remotely.  -loadgen -cluster runs the
// self-contained cluster scaling benchmark (BENCH_cluster.json): single
// backend vs an N-backend ring vs the same ring with hedging, all booted
// in-process.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/automata"
	"repro/internal/route"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main without the process-global bindings, so tests can drive the
// daemon (including its signal-driven drain) in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("aptserved", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "listen `address` (server mode) or target base URL/host:port (loadgen mode)")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "engine pool `width` per axiom set")
	queryTimeout := fs.Duration("query-timeout", serve.DefaultQueryTimeout, "default per-query proof-search bound")
	maxDeadline := fs.Duration("max-deadline", serve.DefaultMaxDeadline, "cap on any request's total deadline")
	concurrency := fs.Int("concurrency", 0, "requests answered at once (0 = GOMAXPROCS)")
	queue := fs.Int("queue", serve.DefaultQueueDepth, "admitted requests that may wait before shedding with 429")
	engines := fs.Int("engines", serve.DefaultMaxEngines, "warm per-axiom-set engines kept (LRU beyond)")
	shardCap := fs.Int("shard-cap", serve.DefaultShardCap, "per-shard entry cap for the DFA cache, decision memo, and proof memo")
	maxQueries := fs.Int("max-queries", serve.DefaultMaxQueries, "expanded-query limit per request")
	verify := fs.Bool("verify", false, "independently re-check every prover-backed No")
	portFile := fs.String("port-file", "", "write the bound address to `file` once listening (for scripts driving :0)")
	accessLog := fs.String("access-log", "", "append one JSONL access-log line per request to `file` (\"-\" for stderr)")
	flightK := fs.Int("flight-k", 0, "slowest requests the flight recorder retains (0 = default)")
	flightRing := fs.Int("flight-ring", 0, "degraded requests the flight recorder's ring retains (0 = default)")
	preload := fs.String("preload", "", "compiled automata artifact `file` (from aptc) preseeding every engine's DFA cache")

	router := fs.Bool("router", false, "run as a consistent-hash cluster router over -backends instead of a single-node server")
	backends := fs.String("backends", "", "router: comma-separated backend addresses (host:port or http://...)")
	hedge := fs.Duration("hedge", 0, "router: hedged-retry delay — duplicate a request to the shard's next backend if the owner has not answered within this delay (0 disables)")

	loadgen := fs.Bool("loadgen", false, "run as a load-generating client instead of a server")
	self := fs.Bool("self", false, "loadgen: start an in-process server on a loopback port and drive it")
	program := fs.String("program", "", "loadgen: mini-C source `file` to query")
	fn := fs.String("fn", "", "loadgen: function to analyze (default: the only function)")
	queriesFile := fs.String("queries-file", "", "loadgen: `file` of batch query lines (default: 'loop'/'between' over every label is not inferred — required)")
	clients := fs.Int("clients", 8, "loadgen: concurrent clients")
	requests := fs.Int("requests", 64, "loadgen: total requests across all clients")
	timeoutMS := fs.Int64("timeout-ms", 0, "loadgen: per-query timeout_ms field (0 = server default)")
	deadlineMS := fs.Int64("deadline-ms", 0, "loadgen: per-request deadline_ms field (0 = server cap)")
	out := fs.String("out", "", "loadgen: write the latency/hit-rate report to `file` (default stdout only)")

	cluster := fs.Bool("cluster", false, "loadgen: run the cluster scaling benchmark (boots its own backends and routers in-process; writes the BENCH_cluster.json schema)")
	clusterBackends := fs.Int("cluster-backends", 4, "cluster: ring size of the scaled phase")
	clusterEngines := fs.Int("cluster-engines", 2, "cluster: per-backend warm-engine capacity (MaxEngines); the shard count is capacity x ring size")
	clusterRequests := fs.Int("cluster-requests", 240, "cluster: requests per phase")

	if err := fs.Parse(args); err != nil {
		return 2
	}
	fatalf := func(format string, fargs ...any) int {
		fmt.Fprintf(stderr, "aptserved: "+format+"\n", fargs...)
		return 2
	}
	if fs.NArg() != 0 {
		return fatalf("unexpected arguments %q", fs.Args())
	}

	cfg := serve.Config{
		Workers:       *workers,
		QueryTimeout:  *queryTimeout,
		MaxDeadline:   *maxDeadline,
		MaxConcurrent: *concurrency,
		QueueDepth:    *queue,
		MaxEngines:    *engines,
		DFAShardCap:   *shardCap,
		MemoShardCap:  *shardCap,
		MaxQueries:    *maxQueries,
		VerifyProofs:  *verify,
		FlightK:       *flightK,
		FlightRing:    *flightRing,
		Telemetry:     telemetry.New(telemetry.NewRegistry(), nil),
	}
	if *preload != "" {
		art, err := automata.LoadArtifact(*preload)
		if err != nil {
			// A bad artifact degrades startup to cold compilation; it must
			// never stop the server or change a verdict.
			fmt.Fprintf(stderr, "aptserved: preload %s: %v (continuing with cold caches)\n", *preload, err)
		} else {
			cfg.Preload = art
			fmt.Fprintf(stderr, "aptserved: preloaded %s: %d DFAs, %d decisions\n", *preload, len(art.DFAs), len(art.Ops))
		}
	}
	if *accessLog != "" {
		if *accessLog == "-" {
			cfg.AccessLog = telemetry.NewTraceWriter(stderr)
		} else {
			f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return fatalf("access-log: %v", err)
			}
			defer f.Close()
			cfg.AccessLog = telemetry.NewTraceWriter(f)
		}
	}

	if *router && *loadgen {
		return fatalf("-router and -loadgen are mutually exclusive")
	}
	if *router {
		var addrs []string
		for _, a := range strings.Split(*backends, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		if len(addrs) == 0 {
			return fatalf("-router needs -backends")
		}
		return runRouter(route.Config{
			Backends:   addrs,
			HedgeDelay: *hedge,
			Telemetry:  cfg.Telemetry,
			AccessLog:  cfg.AccessLog,
		}, *addr, *portFile, stdout, stderr)
	}
	if *loadgen && *cluster {
		return runClusterBench(clusterBenchConfig{
			backends: *clusterBackends,
			engines:  *clusterEngines,
			requests: *clusterRequests,
			clients:  *clients,
			hedge:    *hedge,
			out:      *out,
		}, stdout, stderr)
	}
	if *loadgen {
		return runLoadgen(loadgenConfig{
			addr:       *addr,
			self:       *self,
			serverCfg:  cfg,
			program:    *program,
			fn:         *fn,
			queries:    *queriesFile,
			clients:    *clients,
			requests:   *requests,
			timeoutMS:  *timeoutMS,
			deadlineMS: *deadlineMS,
			out:        *out,
		}, stdout, stderr)
	}
	return runServer(cfg, *addr, *portFile, stdout, stderr)
}

// runServer listens, serves until SIGTERM/SIGINT, then drains in-flight
// requests and exits 0 on a clean drain.
func runServer(cfg serve.Config, addr, portFile string, stdout, stderr io.Writer) int {
	srv := serve.New(cfg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(stderr, "aptserved: listen: %v\n", err)
		return 2
	}
	if portFile != "" {
		if err := os.WriteFile(portFile, []byte(ln.Addr().String()), 0o644); err != nil {
			fmt.Fprintf(stderr, "aptserved: port-file: %v\n", err)
			return 2
		}
	}
	fmt.Fprintf(stdout, "aptserved: listening on %s\n", ln.Addr())

	hs := &http.Server{Handler: srv}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	// SIGQUIT dumps the flight recorder (slowest + degraded request traces)
	// to stderr and keeps serving — the "what just got slow?" escape hatch
	// for a live daemon.
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	quitDone := make(chan struct{})
	go func() {
		defer close(quitDone)
		for range quit {
			enc, err := json.MarshalIndent(srv.FlightSnapshot(), "", "  ")
			if err != nil {
				fmt.Fprintf(stderr, "aptserved: flight dump: %v\n", err)
				continue
			}
			fmt.Fprintf(stderr, "aptserved: flight recorder dump (SIGQUIT)\n%s\n", enc)
		}
	}()
	defer func() { signal.Stop(quit); close(quit); <-quitDone }()

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		fmt.Fprintf(stderr, "aptserved: serve: %v\n", err)
		return 1
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately

	fmt.Fprintln(stdout, "aptserved: draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	drainErr := srv.Drain(drainCtx)
	if err := hs.Shutdown(drainCtx); err != nil && drainErr == nil {
		drainErr = err
	}
	st := srv.StatzSnapshot()
	fmt.Fprintf(stdout, "aptserved: drained: %d accepted, %d completed, %d shed, %d refused during drain\n",
		st.Accepted, st.Completed, st.Shed, st.RefusedDraining)
	if drainErr != nil {
		fmt.Fprintf(stderr, "aptserved: drain: %v\n", drainErr)
		return 1
	}
	return 0
}

// runRouter is runServer's shape for the routing tier: listen, route until
// SIGTERM/SIGINT, drain in-flight forwards, exit 0 on a clean drain.
// SIGQUIT dumps the router statz (ring, hedges, per-backend health) to
// stderr without stopping.
func runRouter(cfg route.Config, addr, portFile string, stdout, stderr io.Writer) int {
	rt := route.New(cfg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(stderr, "aptserved: listen: %v\n", err)
		return 2
	}
	if portFile != "" {
		if err := os.WriteFile(portFile, []byte(ln.Addr().String()), 0o644); err != nil {
			fmt.Fprintf(stderr, "aptserved: port-file: %v\n", err)
			return 2
		}
	}
	fmt.Fprintf(stdout, "aptserved: routing on %s across %d backends\n", ln.Addr(), len(cfg.Backends))

	hs := &http.Server{Handler: rt}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	quitDone := make(chan struct{})
	go func() {
		defer close(quitDone)
		for range quit {
			enc, err := json.MarshalIndent(rt.StatzSnapshot(), "", "  ")
			if err != nil {
				fmt.Fprintf(stderr, "aptserved: statz dump: %v\n", err)
				continue
			}
			fmt.Fprintf(stderr, "aptserved: router statz dump (SIGQUIT)\n%s\n", enc)
		}
	}()
	defer func() { signal.Stop(quit); close(quit); <-quitDone }()

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		fmt.Fprintf(stderr, "aptserved: serve: %v\n", err)
		return 1
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately

	fmt.Fprintln(stdout, "aptserved: draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	drainErr := rt.Drain(drainCtx)
	if err := hs.Shutdown(drainCtx); err != nil && drainErr == nil {
		drainErr = err
	}
	z := rt.StatzSnapshot()
	fmt.Fprintf(stdout, "aptserved: drained: %d accepted, %d completed, %d shed, %d refused during drain\n",
		z.Accepted, z.Completed, z.Shed, z.RefusedDraining)
	if drainErr != nil {
		fmt.Fprintf(stderr, "aptserved: drain: %v\n", drainErr)
		return 1
	}
	return 0
}

type loadgenConfig struct {
	addr       string
	self       bool
	serverCfg  serve.Config
	program    string
	fn         string
	queries    string
	clients    int
	requests   int
	timeoutMS  int64
	deadlineMS int64
	out        string
}

// BenchReport is the BENCH_served.json schema the loadgen writes.
type BenchReport struct {
	Clients  int `json:"clients"`
	Requests int `json:"requests"`
	// Outcomes.
	OK     int `json:"ok"`
	Shed   int `json:"shed"`
	Errors int `json:"errors"`
	// Request latency over the OK responses (nearest-rank quantiles of the
	// per-request samples).
	P50US  int64 `json:"p50_us"`
	P95US  int64 `json:"p95_us"`
	P99US  int64 `json:"p99_us"`
	MeanUS int64 `json:"mean_us"`
	MaxUS  int64 `json:"max_us"`
	// Warm-up: ColdRequests is how many responses built their engine; the
	// cold/warm latency split is the paper's amortization argument in two
	// numbers.  The split uses server-side service time (BatchStats.ServiceUS:
	// parse + analysis + engine acquisition + batch, no admission queueing),
	// because the single cold sample is otherwise dominated by whatever queue
	// the startup burst happens to form in front of it.  A -preload server
	// prewarms its engines at boot from the artifact's persisted axiom sets
	// and replays the artifact's recorded workload through itself, so no
	// response may be engine-cold at all; ColdRequests is then 0 and the
	// split compares like with like instead: ColdP50US is the p50 of lone
	// probe requests sent one at a time right after boot — the requests a
	// cold boot would have penalized — and WarmP50US the p50 of identical
	// lone probes sent after the burst, when nothing can still be cold.
	// Probes rather than burst samples on both sides, because lone and
	// pipelined requests have different service-time profiles on a small
	// host, and that difference is not about cache warmth.
	ColdRequests int   `json:"cold_requests"`
	ColdP50US    int64 `json:"cold_p50_us"`
	WarmP50US    int64 `json:"warm_p50_us"`
	// Final server-side cache state (from /statz).
	QueriesPerRequest int     `json:"queries_per_request"`
	MemoHitRate       float64 `json:"memo_hit_rate"`
	DFAHitRate        float64 `json:"dfa_hit_rate"`
	DFALen            int     `json:"dfa_len"`
	OpsLen            int     `json:"ops_len"`
	Timeouts          int64   `json:"timeouts"`
}

func runLoadgen(cfg loadgenConfig, stdout, stderr io.Writer) int {
	fatalf := func(format string, fargs ...any) int {
		fmt.Fprintf(stderr, "aptserved: "+format+"\n", fargs...)
		return 2
	}
	if cfg.program == "" || cfg.queries == "" {
		return fatalf("-loadgen needs -program and -queries-file")
	}
	src, err := os.ReadFile(cfg.program)
	if err != nil {
		return fatalf("%v", err)
	}
	qdata, err := os.ReadFile(cfg.queries)
	if err != nil {
		return fatalf("%v", err)
	}
	var lines []string
	for _, l := range strings.Split(string(qdata), "\n") {
		if s := strings.TrimSpace(l); s != "" && !strings.HasPrefix(s, "#") {
			lines = append(lines, l)
		}
	}
	if len(lines) == 0 {
		return fatalf("%s holds no query lines", cfg.queries)
	}
	body, err := json.Marshal(serve.BatchRequest{
		Program:    string(src),
		Fn:         cfg.fn,
		Queries:    lines,
		TimeoutMS:  cfg.timeoutMS,
		DeadlineMS: cfg.deadlineMS,
	})
	if err != nil {
		return fatalf("%v", err)
	}

	base := cfg.addr
	if cfg.self {
		srv := serve.New(cfg.serverCfg)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fatalf("listen: %v", err)
		}
		hs := &http.Server{Handler: srv}
		go hs.Serve(ln) //nolint:errcheck // closed on return
		defer hs.Close()
		base = "http://" + ln.Addr().String()
		fmt.Fprintf(stdout, "aptserved: loadgen driving in-process server at %s\n", base)
	}
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		base = "http://" + base
	}

	type sample struct {
		dur  time.Duration // client-observed wall time
		svc  time.Duration // server-reported service time (BatchStats.ServiceUS)
		cold bool
	}
	var (
		mu      sync.Mutex
		oks     []sample
		shed    int
		errors  int
		perReq  int
		wg      sync.WaitGroup
		next    = make(chan int)
		httpCli = &http.Client{Timeout: 2 * cfg.serverCfg.MaxDeadline}
	)
	fire := func() {
		t0 := time.Now()
		resp, err := httpCli.Post(base+"/v1/batch", "application/json", bytes.NewReader(body))
		dur := time.Since(t0)
		if err != nil {
			mu.Lock()
			errors++
			mu.Unlock()
			return
		}
		var br serve.BatchResponse
		decErr := json.NewDecoder(resp.Body).Decode(&br)
		resp.Body.Close()
		mu.Lock()
		switch {
		case resp.StatusCode == http.StatusTooManyRequests:
			shed++
		case resp.StatusCode != http.StatusOK || decErr != nil:
			errors++
		default:
			oks = append(oks, sample{
				dur:  dur,
				svc:  time.Duration(br.Stats.ServiceUS) * time.Microsecond,
				cold: br.Stats.ColdEngine,
			})
			perReq = br.Stats.Queries
		}
		mu.Unlock()
	}
	// Cold probe: the first request is sent alone, before the client burst
	// opens, so the cold sample measures the booted server's temperature.
	// Inside the burst, every client is connecting and writing at once, and
	// on a small host that contention inflates even the server-side service
	// time of whichever request happens to run first — which is noise about
	// the burst, not about cold start.
	// Cold/warm probe sets: `probes` lone requests right after boot and the
	// same number after the burst, fired one at a time from this goroutine.
	// Lone and burst-pipelined requests have different service-time profiles
	// on a small host (an idle server pays scheduler wakeups a saturated one
	// does not), so the cold/warm comparison must measure both sides under
	// the same conditions — lone requests — and leave the burst to the
	// throughput numbers.
	probes := cfg.requests / 3
	if probes > 9 {
		probes = 9
	}
	// Same connection warmup the burst clients get: the probes should
	// measure the server's boot temperature, not TCP/HTTP setup.
	if resp, err := httpCli.Get(base + "/healthz"); err == nil {
		resp.Body.Close()
	}
	for i := 0; i < probes; i++ {
		fire()
	}
	prologueEnd := len(oks) // lone-probe samples so far; no other writers yet
	go func() {
		for i := 2 * probes; i < cfg.requests; i++ {
			next <- i
		}
		close(next)
	}()
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Warm this client's TCP connection and the HTTP stack with a
			// query-free ping, so the cold/warm split below measures engine
			// temperature rather than connection setup (which would otherwise
			// dominate the one cold sample).  /healthz builds no engine.
			if resp, err := httpCli.Get(base + "/healthz"); err == nil {
				resp.Body.Close()
			}
			for range next {
				fire()
			}
		}()
	}
	wg.Wait()
	epilogueStart := len(oks)
	for i := 0; i < probes; i++ {
		fire()
	}

	if len(oks) == 0 {
		return fatalf("no successful responses (%d shed, %d errors)", shed, errors)
	}
	rep := BenchReport{
		Clients:           cfg.clients,
		Requests:          cfg.requests,
		OK:                len(oks),
		Shed:              shed,
		Errors:            errors,
		QueriesPerRequest: perReq,
	}
	var all, cold, warm []time.Duration
	var sum time.Duration
	for _, s := range oks {
		all = append(all, s.dur)
		sum += s.dur
		if s.cold {
			rep.ColdRequests++
		}
	}
	if rep.ColdRequests > 0 {
		for _, s := range oks {
			if s.cold {
				cold = append(cold, s.svc)
			} else {
				warm = append(warm, s.svc)
			}
		}
	} else {
		// Boot prewarm can make every response engine-warm; the split is
		// then boot-adjacent probes vs post-burst probes (see BenchReport).
		for _, s := range oks[:prologueEnd] {
			cold = append(cold, s.svc)
		}
		for _, s := range oks[epilogueStart:] {
			warm = append(warm, s.svc)
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	rep.P50US = quantileUS(all, 0.50)
	rep.P95US = quantileUS(all, 0.95)
	rep.P99US = quantileUS(all, 0.99)
	rep.MeanUS = (sum / time.Duration(len(all))).Microseconds()
	rep.MaxUS = all[len(all)-1].Microseconds()
	sort.Slice(cold, func(i, j int) bool { return cold[i] < cold[j] })
	sort.Slice(warm, func(i, j int) bool { return warm[i] < warm[j] })
	rep.ColdP50US = quantileUS(cold, 0.50)
	rep.WarmP50US = quantileUS(warm, 0.50)

	// Final server-side cache state: the statz entry with the most queries
	// is the engine this loadgen exercised.
	var statz serve.Statz
	if resp, err := httpCli.Get(base + "/statz"); err == nil {
		json.NewDecoder(resp.Body).Decode(&statz) //nolint:errcheck // best effort
		resp.Body.Close()
	}
	var busiest *serve.EngineStatz
	for i := range statz.Engines {
		if busiest == nil || statz.Engines[i].Queries > busiest.Queries {
			busiest = &statz.Engines[i]
		}
	}
	if busiest != nil {
		rep.MemoHitRate = busiest.MemoHitRate
		rep.DFAHitRate = busiest.DFAHitRate
		rep.DFALen = busiest.DFALen
		rep.OpsLen = busiest.OpsLen
		rep.Timeouts = busiest.Timeouts
	}

	enc, _ := json.MarshalIndent(rep, "", "  ")
	fmt.Fprintf(stdout, "%s\n", enc)
	if cfg.out != "" {
		if err := os.WriteFile(cfg.out, append(enc, '\n'), 0o644); err != nil {
			return fatalf("%v", err)
		}
		fmt.Fprintf(stdout, "aptserved: wrote %s\n", cfg.out)
	}
	if errors > 0 {
		return 1
	}
	return 0
}

// quantileUS returns the nearest-rank q-quantile of sorted durations in
// microseconds (0 for an empty slice): the smallest sample at or above rank
// ceil(q*n), matching telemetry's window-quantile convention — so p99 of
// 100 samples is the 99th value, not an interpolated 98th.
func quantileUS(sorted []time.Duration, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1].Microseconds()
}
