package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/serve"
)

// TestServerSmokeAndDrain boots the daemon in-process on a loopback port,
// round-trips a batch, and then delivers a real SIGTERM: the run must
// drain cleanly and exit 0.  (The signal is safe to send to our own test
// process because runServer's NotifyContext owns it at that point.)
func TestServerSmokeAndDrain(t *testing.T) {
	portFile := filepath.Join(t.TempDir(), "port")
	var stdout, stderr bytes.Buffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-port-file", portFile, "-workers", "2"}, &stdout, &stderr)
	}()

	var base string
	deadline := time.Now().Add(10 * time.Second)
	for {
		if b, err := os.ReadFile(portFile); err == nil && len(b) > 0 {
			base = "http://" + string(b)
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never wrote %s (stderr: %s)", portFile, stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	src, err := os.ReadFile("../../testdata/section33.c")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(serve.BatchRequest{
		Program: string(src), Fn: "subr", Queries: []string{"between S T"},
	})
	resp, err = http.Post(base+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var br serve.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatalf("batch decode: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(br.Results) == 0 {
		t.Fatalf("batch = %d with %d results", resp.StatusCode, len(br.Results))
	}
	for i, r := range br.Results {
		if r.Result != "No" {
			t.Errorf("results[%d] = %q (%s), want No", i, r.Result, r.Reason)
		}
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("metrics decode: %v", err)
	}
	resp.Body.Close()
	if snap.Counters["serve.requests"] != 1 {
		t.Errorf("serve.requests = %d, want 1", snap.Counters["serve.requests"])
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("run exited %d (stderr: %s)", code, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not drain after SIGTERM")
	}
	out := stdout.String()
	for _, want := range []string{"listening on", "draining", "drained: 1 accepted, 1 completed"} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q:\n%s", want, out)
		}
	}
}

// TestLoadgenSelfWritesBenchReport runs the -loadgen -self mode end to end
// and validates the BENCH_served.json it writes.
func TestLoadgenSelfWritesBenchReport(t *testing.T) {
	dir := t.TempDir()
	queries := filepath.Join(dir, "queries.txt")
	if err := os.WriteFile(queries, []byte("# warmup\nbetween S T\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	outFile := filepath.Join(dir, "bench.json")

	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-loadgen", "-self",
		"-program", "../../testdata/section33.c", "-fn", "subr",
		"-queries-file", queries,
		"-clients", "8", "-requests", "24",
		"-out", outFile,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("loadgen exited %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}

	data, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	var rep BenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("bench report: %v", err)
	}
	if rep.Clients != 8 || rep.Requests != 24 {
		t.Errorf("clients/requests = %d/%d, want 8/24", rep.Clients, rep.Requests)
	}
	if rep.OK+rep.Shed != 24 || rep.Errors != 0 {
		t.Errorf("ok=%d shed=%d errors=%d, want ok+shed=24 and no errors", rep.OK, rep.Shed, rep.Errors)
	}
	if rep.ColdRequests < 1 {
		t.Error("no request reported a cold engine")
	}
	if rep.P50US <= 0 || rep.P99US < rep.P50US || rep.MaxUS < rep.P99US {
		t.Errorf("latency summary disordered: p50=%d p99=%d max=%d", rep.P50US, rep.P99US, rep.MaxUS)
	}
	if rep.QueriesPerRequest < 1 {
		t.Errorf("queries_per_request = %d", rep.QueriesPerRequest)
	}
	// 24 identical requests over one axiom set: the proof memo must be
	// doing essentially all the work by the end.
	if rep.MemoHitRate <= 0 {
		t.Errorf("memo_hit_rate = %v, want > 0 after a warm run", rep.MemoHitRate)
	}
	if rep.DFALen <= 0 {
		t.Errorf("dfa_len = %d, want a populated cache", rep.DFALen)
	}
}

func TestUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown flag exited %d, want 2", code)
	}
	if code := run([]string{"-loadgen"}, &stdout, &stderr); code != 2 {
		t.Errorf("-loadgen without -program exited %d, want 2", code)
	}
	if code := run([]string{"stray"}, &stdout, &stderr); code != 2 {
		t.Errorf("stray argument exited %d, want 2", code)
	}
}
