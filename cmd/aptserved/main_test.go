package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/telemetry"
)

// syncBuffer lets the test read stderr while runServer's goroutines (the
// SIGQUIT dumper, the access log) are still writing to it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestServerSmokeAndDrain boots the daemon in-process on a loopback port,
// round-trips a batch, checks both metrics endpoints, takes a SIGQUIT
// flight-recorder dump, and then delivers a real SIGTERM: the run must
// drain cleanly and exit 0.  (The signals are safe to send to our own test
// process because runServer owns them at that point.)
func TestServerSmokeAndDrain(t *testing.T) {
	dir := t.TempDir()
	portFile := filepath.Join(dir, "port")
	accessLog := filepath.Join(dir, "access.jsonl")
	var stdout bytes.Buffer
	var stderr syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0", "-port-file", portFile, "-workers", "2",
			"-access-log", accessLog, "-flight-k", "4", "-flight-ring", "16",
		}, &stdout, &stderr)
	}()

	var base string
	deadline := time.Now().Add(10 * time.Second)
	for {
		if b, err := os.ReadFile(portFile); err == nil && len(b) > 0 {
			base = "http://" + string(b)
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never wrote %s (stderr: %s)", portFile, stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	src, err := os.ReadFile("../../testdata/section33.c")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(serve.BatchRequest{
		Program: string(src), Fn: "subr", Queries: []string{"between S T"},
	})
	resp, err = http.Post(base+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var br serve.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatalf("batch decode: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(br.Results) == 0 {
		t.Fatalf("batch = %d with %d results", resp.StatusCode, len(br.Results))
	}
	for i, r := range br.Results {
		if r.Result != "No" {
			t.Errorf("results[%d] = %q (%s), want No", i, r.Result, r.Reason)
		}
	}

	// /metrics serves Prometheus text exposition; the JSON snapshot moved
	// to /metrics.json.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("metrics Content-Type = %q", ct)
	}
	if err := telemetry.ValidatePrometheus(prom); err != nil {
		t.Errorf("/metrics is not valid exposition: %v", err)
	}
	if !strings.Contains(string(prom), "apt_serve_requests_total 1") {
		t.Errorf("/metrics lacks apt_serve_requests_total 1:\n%s", prom)
	}

	resp, err = http.Get(base + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("metrics.json decode: %v", err)
	}
	resp.Body.Close()
	if snap.Counters["serve.requests"] != 1 {
		t.Errorf("serve.requests = %d, want 1", snap.Counters["serve.requests"])
	}

	// SIGQUIT dumps the flight recorder to stderr without stopping the
	// server; the one batch above is its slowest request.
	if err := syscall.Kill(os.Getpid(), syscall.SIGQUIT); err != nil {
		t.Fatal(err)
	}
	dumpDeadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(stderr.String(), "flight recorder dump") {
		if time.Now().After(dumpDeadline) {
			t.Fatalf("no flight dump after SIGQUIT (stderr: %s)", stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if dump := stderr.String(); !strings.Contains(dump, `"slowest"`) || !strings.Contains(dump, `"trace_id"`) {
		t.Errorf("flight dump lacks slowest traces:\n%s", dump)
	}
	if resp, err := http.Get(base + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("server not healthy after SIGQUIT: %v %v", err, resp)
	} else {
		resp.Body.Close()
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("run exited %d (stderr: %s)", code, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not drain after SIGTERM")
	}
	out := stdout.String()
	for _, want := range []string{"listening on", "draining", "drained: 1 accepted, 1 completed"} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q:\n%s", want, out)
		}
	}

	// The access log holds one JSONL line per request served above.
	logData, err := os.ReadFile(accessLog)
	if err != nil {
		t.Fatalf("access log: %v", err)
	}
	var sawBatch bool
	for _, line := range strings.Split(strings.TrimSpace(string(logData)), "\n") {
		var entry struct {
			Ev     string `json:"ev"`
			Path   string `json:"path"`
			Status int    `json:"status"`
			DurUS  int64  `json:"dur_us"`
		}
		if err := json.Unmarshal([]byte(line), &entry); err != nil {
			t.Fatalf("access log line %q: %v", line, err)
		}
		if entry.Ev != "http_access" {
			t.Errorf("access log ev = %q", entry.Ev)
		}
		if entry.Path == "/v1/batch" && entry.Status == http.StatusOK && entry.DurUS > 0 {
			sawBatch = true
		}
	}
	if !sawBatch {
		t.Errorf("access log never recorded the batch request:\n%s", logData)
	}
}

func TestQuantileUSNearestRank(t *testing.T) {
	var ds []time.Duration
	for v := 1; v <= 100; v++ {
		ds = append(ds, time.Duration(v)*time.Microsecond)
	}
	// Nearest rank over 1..100us: p50 is the 50th sample, p95 the 95th,
	// p99 the 99th — not an interpolated or floor()ed neighbor.
	for _, tc := range []struct {
		q    float64
		want int64
	}{{0.50, 50}, {0.95, 95}, {0.99, 99}, {1.0, 100}} {
		if got := quantileUS(ds, tc.q); got != tc.want {
			t.Errorf("quantileUS(1..100, %v) = %d, want %d", tc.q, got, tc.want)
		}
	}
	if got := quantileUS(ds[:1], 0.99); got != 1 {
		t.Errorf("single-sample p99 = %d, want 1", got)
	}
	if got := quantileUS(nil, 0.5); got != 0 {
		t.Errorf("empty p50 = %d, want 0", got)
	}
}

// TestLoadgenSelfWritesBenchReport runs the -loadgen -self mode end to end
// and validates the BENCH_served.json it writes.
func TestLoadgenSelfWritesBenchReport(t *testing.T) {
	dir := t.TempDir()
	queries := filepath.Join(dir, "queries.txt")
	if err := os.WriteFile(queries, []byte("# warmup\nbetween S T\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	outFile := filepath.Join(dir, "bench.json")

	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-loadgen", "-self",
		"-program", "../../testdata/section33.c", "-fn", "subr",
		"-queries-file", queries,
		"-clients", "8", "-requests", "24",
		"-out", outFile,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("loadgen exited %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}

	data, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	var rep BenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("bench report: %v", err)
	}
	if rep.Clients != 8 || rep.Requests != 24 {
		t.Errorf("clients/requests = %d/%d, want 8/24", rep.Clients, rep.Requests)
	}
	if rep.OK+rep.Shed != 24 || rep.Errors != 0 {
		t.Errorf("ok=%d shed=%d errors=%d, want ok+shed=24 and no errors", rep.OK, rep.Shed, rep.Errors)
	}
	if rep.ColdRequests < 1 {
		t.Error("no request reported a cold engine")
	}
	if rep.P50US <= 0 || rep.P95US < rep.P50US || rep.P99US < rep.P95US || rep.MaxUS < rep.P99US {
		t.Errorf("latency summary disordered: p50=%d p95=%d p99=%d max=%d",
			rep.P50US, rep.P95US, rep.P99US, rep.MaxUS)
	}
	if rep.QueriesPerRequest < 1 {
		t.Errorf("queries_per_request = %d", rep.QueriesPerRequest)
	}
	// 24 identical requests over one axiom set: the proof memo must be
	// doing essentially all the work by the end.
	if rep.MemoHitRate <= 0 {
		t.Errorf("memo_hit_rate = %v, want > 0 after a warm run", rep.MemoHitRate)
	}
	if rep.DFALen <= 0 {
		t.Errorf("dfa_len = %d, want a populated cache", rep.DFALen)
	}
}

// TestClusterSmokeAndDrain boots two backend daemons and a router daemon
// in-process — three run() instances in one process, exactly as three
// aptserved invocations would run on one host — sends a batch through the
// router, and then delivers a single SIGTERM: every instance registered the
// signal, so all three must drain cleanly and exit 0.
func TestClusterSmokeAndDrain(t *testing.T) {
	dir := t.TempDir()

	type instance struct {
		stdout *syncBuffer
		stderr *syncBuffer
		done   chan int
	}
	start := func(args ...string) *instance {
		inst := &instance{stdout: &syncBuffer{}, stderr: &syncBuffer{}, done: make(chan int, 1)}
		go func() { inst.done <- run(args, inst.stdout, inst.stderr) }()
		return inst
	}
	waitPort := func(portFile string, inst *instance) string {
		deadline := time.Now().Add(10 * time.Second)
		for {
			if b, err := os.ReadFile(portFile); err == nil && len(b) > 0 {
				return "http://" + string(b)
			}
			if time.Now().After(deadline) {
				t.Fatalf("no port file %s (stderr: %s)", portFile, inst.stderr.String())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	var backends []*instance
	var backendBases []string
	for i := 0; i < 2; i++ {
		portFile := filepath.Join(dir, "backend"+string(rune('1'+i)))
		inst := start("-addr", "127.0.0.1:0", "-port-file", portFile, "-workers", "1")
		backends = append(backends, inst)
		backendBases = append(backendBases, waitPort(portFile, inst))
	}

	routerPort := filepath.Join(dir, "router")
	router := start("-router",
		"-backends", strings.TrimPrefix(backendBases[0], "http://")+","+strings.TrimPrefix(backendBases[1], "http://"),
		"-addr", "127.0.0.1:0", "-port-file", routerPort)
	routerBase := waitPort(routerPort, router)
	if !strings.Contains(router.stdout.String(), "routing on") {
		t.Errorf("router stdout missing banner:\n%s", router.stdout.String())
	}

	src, err := os.ReadFile("../../testdata/section33.c")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(serve.BatchRequest{
		Program: string(src), Fn: "subr", Queries: []string{"between S T"},
	})
	resp, err := http.Post(routerBase+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var br serve.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatalf("batch decode: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(br.Results) == 0 {
		t.Fatalf("batch via router = %d with %d results", resp.StatusCode, len(br.Results))
	}
	for i, r := range br.Results {
		if r.Result != "No" {
			t.Errorf("results[%d] = %q (%s), want No", i, r.Result, r.Reason)
		}
	}
	via := resp.Header.Get("X-Apt-Backend")
	if via != backendBases[0] && via != backendBases[1] {
		t.Errorf("X-Apt-Backend = %q, want one of %v", via, backendBases)
	}

	// SIGQUIT: the router dumps its statz, the backends their flight
	// recorders — all without stopping service.
	if err := syscall.Kill(os.Getpid(), syscall.SIGQUIT); err != nil {
		t.Fatal(err)
	}
	dumpDeadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(router.stderr.String(), "router statz dump") {
		if time.Now().After(dumpDeadline) {
			t.Fatalf("no router statz dump after SIGQUIT (stderr: %s)", router.stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if dump := router.stderr.String(); !strings.Contains(dump, `"backends"`) {
		t.Errorf("router statz dump lacks backends:\n%s", dump)
	}

	// One SIGTERM reaches all three instances; each must drain and exit 0.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	for i, inst := range append([]*instance{router}, backends...) {
		select {
		case code := <-inst.done:
			if code != 0 {
				t.Fatalf("instance %d exited %d (stderr: %s)", i, code, inst.stderr.String())
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("instance %d did not drain after SIGTERM", i)
		}
	}
	if out := router.stdout.String(); !strings.Contains(out, "drained: 1 accepted, 1 completed") {
		t.Errorf("router stdout missing drain summary:\n%s", out)
	}
}

// TestClusterBenchSmoke runs the three-phase cluster benchmark end to end
// at a tiny scale and validates the BENCH_cluster.json it writes.
func TestClusterBenchSmoke(t *testing.T) {
	outFile := filepath.Join(t.TempDir(), "bench.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-loadgen", "-cluster",
		"-cluster-backends", "2", "-cluster-engines", "1", "-cluster-requests", "8",
		"-clients", "4", "-out", outFile,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("cluster bench exited %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	data, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	var rep BenchClusterReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("bench report: %v", err)
	}
	if rep.Shards != 2 || rep.EnginesPerBackend != 1 {
		t.Errorf("shards=%d engines=%d, want 2 shards at 1 engine each", rep.Shards, rep.EnginesPerBackend)
	}
	for _, ph := range []ClusterPhase{rep.Single, rep.Cluster, rep.ClusterHedged} {
		if ph.OK != 8 || ph.Errors != 0 {
			t.Errorf("phase %s: ok=%d errors=%d, want 8/0", ph.Name, ph.OK, ph.Errors)
		}
		if ph.QPS <= 0 || ph.P50US <= 0 || ph.P99US < ph.P50US {
			t.Errorf("phase %s: implausible summary qps=%v p50=%d p99=%d", ph.Name, ph.QPS, ph.P50US, ph.P99US)
		}
	}
	if rep.Cluster.Backends != 2 || rep.ClusterHedged.HedgeDelayUS <= 0 {
		t.Errorf("cluster backends=%d hedge_delay_us=%d", rep.Cluster.Backends, rep.ClusterHedged.HedgeDelayUS)
	}
	// The undersized single backend must report cold rebuilds; the warmed
	// ring must not.
	if rep.Single.ColdRequests == 0 {
		t.Error("single phase reported no cold requests; the LRU thrash never happened")
	}
	if rep.Cluster.ColdRequests != 0 {
		t.Errorf("cluster phase reported %d cold requests after warmup", rep.Cluster.ColdRequests)
	}
	if rep.Scaling <= 0 {
		t.Errorf("scaling = %v", rep.Scaling)
	}
}

func TestUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown flag exited %d, want 2", code)
	}
	if code := run([]string{"-loadgen"}, &stdout, &stderr); code != 2 {
		t.Errorf("-loadgen without -program exited %d, want 2", code)
	}
	if code := run([]string{"stray"}, &stdout, &stderr); code != 2 {
		t.Errorf("stray argument exited %d, want 2", code)
	}
	if code := run([]string{"-router"}, &stdout, &stderr); code != 2 {
		t.Errorf("-router without -backends exited %d, want 2", code)
	}
	if code := run([]string{"-router", "-loadgen", "-backends", "x"}, &stdout, &stderr); code != 2 {
		t.Errorf("-router -loadgen exited %d, want 2", code)
	}
	if code := run([]string{"-loadgen", "-cluster", "-cluster-backends", "1"}, &stdout, &stderr); code != 2 {
		t.Errorf("-cluster with one backend exited %d, want 2", code)
	}
}
