// Command aptprove proves disjointness theorems directly: given an axiom
// set and two access paths, it runs APT's theorem prover and prints the
// verdict with the derivation.
//
// Examples:
//
//	aptprove -structure leaf-linked-tree 'L.L.N' 'L.R.N'
//	aptprove -structure sparse-matrix-core 'ncolE+' 'nrowE+ncolE+'
//	aptprove -axioms axioms.txt -form diff 'relem.ncolE*' 'relem.ncolE*'
//	aptprove -stats -trace-json t.jsonl -structure sparse-matrix-core 'ncolE+' 'nrowE+ncolE+'
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/axiom"
	"repro/internal/cliutil"
	"repro/internal/pathexpr"
	"repro/internal/prover"
)

var builtins = map[string]func() *axiom.Set{
	"leaf-linked-tree":   axiom.LeafLinkedBinaryTree,
	"sparse-matrix":      axiom.SparseMatrix,
	"sparse-matrix-core": axiom.SparseMatrixCore,
	"range-tree-2d":      axiom.TwoDRangeTree,
	"binary-tree":        func() *axiom.Set { return axiom.BinaryTree("L", "R") },
	"linked-list":        func() *axiom.Set { return axiom.SinglyLinkedList("next") },
	"doubly-linked-list": func() *axiom.Set { return axiom.DoublyLinkedList("next", "prev") },
	"circular-list":      func() *axiom.Set { return axiom.CircularList("next") },
	"skip-list":          func() *axiom.Set { return axiom.SkipList("n0", "n1", "n2") },
	"quadtree":           func() *axiom.Set { return axiom.NaryTree("c0", "c1", "c2", "c3") },
	"octree":             func() *axiom.Set { return axiom.NaryTree("o0", "o1", "o2", "o3", "o4", "o5", "o6", "o7") },
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("aptprove", flag.ContinueOnError)
	fs.SetOutput(stderr)
	structure := fs.String("structure", "", "built-in axiom set (see -list)")
	axiomFile := fs.String("axioms", "", "file of axioms, one per line")
	form := fs.String("form", "same", "quantifier form: same (∀h) or diff (∀h<>k)")
	list := fs.Bool("list", false, "list built-in structures and exit")
	quiet := fs.Bool("q", false, "print only the verdict")
	steps := fs.Int("maxsteps", 0, "proof step budget (0 = default)")
	check := fs.Bool("check", false, "re-validate the derivation with the independent proof checker")
	var tf cliutil.TelemetryFlags
	tf.Register(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	fatalf := func(format string, fargs ...any) int {
		fmt.Fprintf(stderr, "aptprove: "+format+"\n", fargs...)
		return 2
	}

	if *list {
		var names []string
		for n := range builtins {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(stdout, "%-20s %d axioms\n", n, builtins[n]().Len())
		}
		return 0
	}

	var set *axiom.Set
	switch {
	case *structure != "":
		mk, ok := builtins[*structure]
		if !ok {
			return fatalf("unknown structure %q (use -list)", *structure)
		}
		set = mk()
	case *axiomFile != "":
		data, err := os.ReadFile(*axiomFile)
		if err != nil {
			return fatalf("%v", err)
		}
		set, err = axiom.ParseSet(*axiomFile, string(data))
		if err != nil {
			return fatalf("%v", err)
		}
	default:
		return fatalf("provide -structure or -axioms (and two path expressions)")
	}

	if fs.NArg() != 2 {
		return fatalf("need exactly two path expressions, got %d", fs.NArg())
	}
	x, err := pathexpr.ParseAlphabet(fs.Arg(0), set.Fields())
	if err != nil {
		return fatalf("left path: %v", err)
	}
	y, err := pathexpr.ParseAlphabet(fs.Arg(1), set.Fields())
	if err != nil {
		return fatalf("right path: %v", err)
	}

	var goalForm prover.Form
	switch *form {
	case "same":
		goalForm = prover.SameSrc
	case "diff":
		goalForm = prover.DiffSrc
	default:
		return fatalf("-form must be same or diff")
	}

	tel, err := tf.Open()
	if err != nil {
		return fatalf("%v", err)
	}

	if !*quiet {
		fmt.Fprint(stdout, set)
		fmt.Fprintln(stdout)
	}
	p := prover.New(set, prover.Options{MaxSteps: *steps, Telemetry: tel})
	proof := p.Prove(goalForm, x, y)
	if *quiet {
		fmt.Fprintln(stdout, proof.Result)
	} else {
		fmt.Fprint(stdout, proof.Render())
	}
	exit := 0
	if *check && proof.Result == prover.Proved {
		if err := p.CheckProof(proof); err != nil {
			fmt.Fprintf(stderr, "aptprove: derivation FAILED independent checking: %v\n", err)
			exit = 1
		} else if !*quiet {
			fmt.Fprintln(stdout, "derivation independently re-validated ✓")
		}
	}
	if proof.Result != prover.Proved {
		exit = 1
	}
	if err := tf.Close(stderr, nil); err != nil {
		return fatalf("%v", err)
	}
	return exit
}
