// Command aptprove proves disjointness theorems directly: given an axiom
// set and two access paths, it runs APT's theorem prover and prints the
// verdict with the derivation.
//
// Examples:
//
//	aptprove -structure leaf-linked-tree 'L.L.N' 'L.R.N'
//	aptprove -structure sparse-matrix-core 'ncolE+' 'nrowE+ncolE+'
//	aptprove -axioms axioms.txt -form diff 'relem.ncolE*' 'relem.ncolE*'
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/axiom"
	"repro/internal/pathexpr"
	"repro/internal/prover"
)

var builtins = map[string]func() *axiom.Set{
	"leaf-linked-tree":   axiom.LeafLinkedBinaryTree,
	"sparse-matrix":      axiom.SparseMatrix,
	"sparse-matrix-core": axiom.SparseMatrixCore,
	"range-tree-2d":      axiom.TwoDRangeTree,
	"binary-tree":        func() *axiom.Set { return axiom.BinaryTree("L", "R") },
	"linked-list":        func() *axiom.Set { return axiom.SinglyLinkedList("next") },
	"doubly-linked-list": func() *axiom.Set { return axiom.DoublyLinkedList("next", "prev") },
	"circular-list":      func() *axiom.Set { return axiom.CircularList("next") },
	"skip-list":          func() *axiom.Set { return axiom.SkipList("n0", "n1", "n2") },
	"quadtree":           func() *axiom.Set { return axiom.NaryTree("c0", "c1", "c2", "c3") },
	"octree":             func() *axiom.Set { return axiom.NaryTree("o0", "o1", "o2", "o3", "o4", "o5", "o6", "o7") },
}

func main() {
	structure := flag.String("structure", "", "built-in axiom set (see -list)")
	axiomFile := flag.String("axioms", "", "file of axioms, one per line")
	form := flag.String("form", "same", "quantifier form: same (∀h) or diff (∀h<>k)")
	list := flag.Bool("list", false, "list built-in structures and exit")
	quiet := flag.Bool("q", false, "print only the verdict")
	steps := flag.Int("maxsteps", 0, "proof step budget (0 = default)")
	check := flag.Bool("check", false, "re-validate the derivation with the independent proof checker")
	flag.Parse()

	if *list {
		var names []string
		for n := range builtins {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("%-20s %d axioms\n", n, builtins[n]().Len())
		}
		return
	}

	var set *axiom.Set
	switch {
	case *structure != "":
		mk, ok := builtins[*structure]
		if !ok {
			fatalf("unknown structure %q (use -list)", *structure)
		}
		set = mk()
	case *axiomFile != "":
		data, err := os.ReadFile(*axiomFile)
		if err != nil {
			fatalf("%v", err)
		}
		set, err = axiom.ParseSet(*axiomFile, string(data))
		if err != nil {
			fatalf("%v", err)
		}
	default:
		fatalf("provide -structure or -axioms (and two path expressions)")
	}

	if flag.NArg() != 2 {
		fatalf("need exactly two path expressions, got %d", flag.NArg())
	}
	x, err := pathexpr.ParseAlphabet(flag.Arg(0), set.Fields())
	if err != nil {
		fatalf("left path: %v", err)
	}
	y, err := pathexpr.ParseAlphabet(flag.Arg(1), set.Fields())
	if err != nil {
		fatalf("right path: %v", err)
	}

	var goalForm prover.Form
	switch *form {
	case "same":
		goalForm = prover.SameSrc
	case "diff":
		goalForm = prover.DiffSrc
	default:
		fatalf("-form must be same or diff")
	}

	if !*quiet {
		fmt.Print(set)
		fmt.Println()
	}
	p := prover.New(set, prover.Options{MaxSteps: *steps})
	proof := p.Prove(goalForm, x, y)
	if *quiet {
		fmt.Println(proof.Result)
	} else {
		fmt.Print(proof.Render())
	}
	if *check && proof.Result == prover.Proved {
		if err := p.CheckProof(proof); err != nil {
			fmt.Fprintf(os.Stderr, "aptprove: derivation FAILED independent checking: %v\n", err)
			os.Exit(1)
		}
		if !*quiet {
			fmt.Println("derivation independently re-validated ✓")
		}
	}
	if proof.Result != prover.Proved {
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "aptprove: "+format+"\n", args...)
	os.Exit(2)
}
