package main

import "testing"

// TestBuiltinsAreWellFormed: every built-in structure yields a nonempty
// axiom set with a nonempty field alphabet.
func TestBuiltinsAreWellFormed(t *testing.T) {
	for name, mk := range builtins {
		set := mk()
		if set.Len() == 0 {
			t.Errorf("%s: empty axiom set", name)
		}
		if len(set.Fields()) == 0 {
			t.Errorf("%s: no fields", name)
		}
	}
}
