package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// TestGoldens lints every seeded program under testdata/lint and compares
// the text output (with the exit status pinned on the first line) against
// the committed golden file.  Regenerate with: go test ./cmd/aptlint -update
func TestGoldens(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "lint", "*.c"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no lint testdata found: %v", err)
	}
	for _, file := range files {
		name := strings.TrimSuffix(filepath.Base(file), ".c")
		t.Run(name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run([]string{file}, &stdout, &stderr)
			got := fmt.Sprintf("exit=%d\n%s", code,
				strings.ReplaceAll(stdout.String(), file, filepath.Base(file)))
			golden := strings.TrimSuffix(file, ".c") + ".golden"
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("output mismatch for %s:\n--- got ---\n%s--- want ---\n%s",
					file, got, want)
			}
		})
	}
}

// TestSeededFindings pins the acceptance behaviors: a contradictory axiom
// set and an unsafe loop exit non-zero, and the DOALL-safe loop reports a
// "No dependence" diagnostic.
func TestSeededFindings(t *testing.T) {
	cases := []struct {
		file     string
		wantExit int
		want     string
	}{
		{"bad_axioms.c", 1, "self-contradictory"},
		{"unsafe_loop.c", 1, "provable dependence"},
		{"doall.c", 0, "No dependence"},
		{"clean.c", 0, ""},
	}
	for _, tc := range cases {
		var stdout, stderr bytes.Buffer
		code := run([]string{filepath.Join("..", "..", "testdata", "lint", tc.file)}, &stdout, &stderr)
		if code != tc.wantExit {
			t.Errorf("%s: exit = %d, want %d\n%s%s", tc.file, code, tc.wantExit, stdout.String(), stderr.String())
		}
		if !strings.Contains(stdout.String(), tc.want) {
			t.Errorf("%s: output lacks %q:\n%s", tc.file, tc.want, stdout.String())
		}
		if tc.want == "" && stdout.String() != "" {
			t.Errorf("%s: expected no diagnostics, got:\n%s", tc.file, stdout.String())
		}
	}
}

// TestSelfSmoke reproduces `make lintsmoke`: lint every program in testdata/
// and testdata/lint/ and compare against the committed combined golden.
func TestSelfSmoke(t *testing.T) {
	// Same file order as the Makefile's lintsmoke loop: testdata/*.c then
	// testdata/lint/*.c (Glob returns each pattern's matches sorted).
	var files []string
	for _, pat := range []string{
		filepath.Join("..", "..", "testdata", "*.c"),
		filepath.Join("..", "..", "testdata", "lint", "*.c"),
	} {
		fs, err := filepath.Glob(pat)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, fs...)
	}
	var b strings.Builder
	for _, file := range files {
		rel := strings.TrimPrefix(filepath.ToSlash(file), "../../")
		fmt.Fprintf(&b, "== %s\n", rel)
		var stdout, stderr bytes.Buffer
		code := run([]string{file}, &stdout, &stderr)
		b.WriteString(strings.ReplaceAll(stdout.String(), filepath.ToSlash(file), rel))
		fmt.Fprintf(&b, "exit=%d\n", code)
	}
	golden := filepath.Join("..", "..", "testdata", "lint", "selfsmoke.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if b.String() != string(want) {
		t.Errorf("self-smoke mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

func TestJSONOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", filepath.Join("..", "..", "testdata", "lint", "nil_deref.c")}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, stderr.String())
	}
	var diags []map[string]any
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, stdout.String())
	}
	if len(diags) == 0 {
		t.Fatal("no diagnostics in JSON output")
	}
	for _, k := range []string{"file", "line", "col", "severity", "category", "message", "fingerprint"} {
		if _, ok := diags[0][k]; !ok {
			t.Errorf("JSON diagnostic missing key %q: %v", k, diags[0])
		}
	}
	if fp, _ := diags[0]["fingerprint"].(string); len(fp) != 16 || fp == "0000000000000000" {
		t.Errorf("fingerprint %q is not a 16-hex-digit declaration hash", diags[0]["fingerprint"])
	}
}

// TestJSONSchemaGolden pins the machine-readable schema, including the
// path-sensitivity fields (fingerprint, upgraded_from_maybe).  Fingerprints
// are content hashes and deterministic, so the full output is golden-able.
func TestJSONSchemaGolden(t *testing.T) {
	file := filepath.Join("..", "..", "testdata", "lint", "guarded_doall.c")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", file}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, stderr.String())
	}
	got := strings.ReplaceAll(stdout.String(), filepath.ToSlash(file), "guarded_doall.c")
	golden := filepath.Join("..", "..", "testdata", "lint", "guarded_doall.json.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("JSON schema drift:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	var diags []map[string]any
	if err := json.Unmarshal([]byte(got), &diags); err != nil || len(diags) == 0 {
		t.Fatalf("golden is not a JSON diagnostic array: %v", err)
	}
	if up, _ := diags[0]["upgraded_from_maybe"].(bool); !up {
		t.Errorf("guard-upgraded verdict not flagged in JSON: %v", diags[0])
	}
}

// TestWatchFirstPassMatchesPlainRun: `aptlint -watch` must open with output
// byte-identical to a plain run over the same files.
func TestWatchFirstPassMatchesPlainRun(t *testing.T) {
	files := []string{
		filepath.Join("..", "..", "testdata", "lint", "guarded_doall.c"),
		filepath.Join("..", "..", "testdata", "lint", "use_after_update.c"),
	}
	var plain, plainErr bytes.Buffer
	plainCode := run(files, &plain, &plainErr)

	var watch, watchErr bytes.Buffer
	watchCode := run(append([]string{"-watch", "-watch-cycles", "1", "-watch-interval", "1ms"}, files...),
		&watch, &watchErr)
	if watchCode != plainCode {
		t.Errorf("watch exit = %d, plain exit = %d", watchCode, plainCode)
	}
	if watch.String() != plain.String() {
		t.Errorf("watch first pass diverges from plain run:\n--- watch ---\n%s--- plain ---\n%s",
			watch.String(), plain.String())
	}
}

// TestIncrCache: two one-shot runs against the same persisted store produce
// identical output, and the store file survives with the schema marker.
func TestIncrCache(t *testing.T) {
	cache := filepath.Join(t.TempDir(), "store.json")
	file := filepath.Join("..", "..", "testdata", "lint", "use_after_update.c")

	var first, second, plain, stderr bytes.Buffer
	if code := run([]string{"-incr-cache", cache, file}, &first, &stderr); code != 0 {
		t.Fatalf("first run exit = %d\n%s", code, stderr.String())
	}
	if code := run([]string{"-incr-cache", cache, file}, &second, &stderr); code != 0 {
		t.Fatalf("second run exit = %d\n%s", code, stderr.String())
	}
	run([]string{file}, &plain, &stderr)
	if first.String() != plain.String() || second.String() != first.String() {
		t.Errorf("incremental runs diverge from plain run:\nplain:\n%s\nfirst:\n%s\nsecond:\n%s",
			plain.String(), first.String(), second.String())
	}
	data, err := os.ReadFile(cache)
	if err != nil || !strings.Contains(string(data), "aptlint-fp-") {
		t.Errorf("store not persisted: %v\n%s", err, data)
	}
}

// TestParseErrorIsDiagnostic: a file the frontend rejects yields an
// error-severity diagnostic in the "parse" category (exit 1), not a tool
// failure (exit 2).
func TestParseErrorIsDiagnostic(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.c")
	if err := os.WriteFile(bad, []byte("void f( {"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{bad}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "[parse]") {
		t.Errorf("parse failure not reported in the parse category:\n%s", stdout.String())
	}
}

func TestUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Errorf("no-args exit = %d, want 2", code)
	}
	if code := run([]string{"does-not-exist.c"}, &stdout, &stderr); code != 2 {
		t.Errorf("missing-file exit = %d, want 2", code)
	}
	if code := run([]string{"-pass", "nope", "x.c"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown-pass exit = %d, want 2", code)
	}
}

func TestPassSelectionAndListing(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-passes"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-passes exit = %d", code)
	}
	for _, name := range []string{"axiom-consistency", "handle-safety", "invariant-maintenance", "parallelization-legality", "lang-hygiene"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-passes listing lacks %s:\n%s", name, stdout.String())
		}
	}

	// Restricting to lang-hygiene suppresses the axiom errors in bad_axioms.c.
	stdout.Reset()
	code := run([]string{"-pass", "lang-hygiene", filepath.Join("..", "..", "testdata", "lint", "bad_axioms.c")}, &stdout, &stderr)
	if code != 0 {
		t.Errorf("hygiene-only lint of bad_axioms.c: exit = %d, want 0\n%s", code, stdout.String())
	}
	if strings.Contains(stdout.String(), "axiom-consistency") {
		t.Errorf("disabled pass still reported:\n%s", stdout.String())
	}
}

// TestStatsAndTrace exercises the shared telemetry flags end to end: -stats
// prints per-pass counters and -trace-json emits lint.pass spans.
func TestStatsAndTrace(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "trace.jsonl")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-stats", "-trace-json", tracePath,
		filepath.Join("..", "..", "testdata", "lint", "doall.c")}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "lint.files") {
		t.Errorf("-stats summary lacks lint counters:\n%s", stderr.String())
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "lint.pass") {
		t.Errorf("trace lacks lint.pass spans:\n%s", data)
	}
}
