// Command aptlint runs the pass-based static analyzer over mini-C source
// files and prints source-anchored diagnostics.
//
// Examples:
//
//	aptlint prog.c                        lint with every pass
//	aptlint -pass handle-safety prog.c    run a single pass
//	aptlint -json prog.c other.c          machine-readable output
//	aptlint -passes                       list the available passes
//	aptlint -stats -trace-json t.jsonl prog.c
//	aptlint -watch prog.c                 re-lint on change, incrementally
//	aptlint -incr-cache .apt.json prog.c  persist fingerprints across runs
//
// Exit status: 0 when no error-severity diagnostic was emitted, 1 when at
// least one was (including parse failures, which are reported as diagnostics
// in the "parse" category), 2 on usage or internal errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/automata"
	"repro/internal/cliutil"
	"repro/internal/lang"
	"repro/internal/lint"
	"repro/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main without the process-global bindings, so tests can drive the
// whole CLI in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("aptlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	passNames := fs.String("pass", "", "comma-separated `list` of passes to run (default: all)")
	listPasses := fs.Bool("passes", false, "list the available passes and exit")
	workers := fs.Int("j", 1, "worker `width` for the batched dependence-query engine; verdicts are identical at any width, but widths above 1 may vary the proof-search statistics quoted in diagnostics")
	watch := fs.Bool("watch", false, "watch the files and incrementally re-lint on change (only fingerprint-dirty functions and their interprocedural dependents re-run)")
	watchInterval := fs.Duration("watch-interval", 500*time.Millisecond, "polling `period` for -watch")
	watchCycles := fs.Int("watch-cycles", 0, "stop -watch after `n` poll cycles (0 = watch forever; used by tests and benchmarks)")
	incrCache := fs.String("incr-cache", "", "`path` of the persisted incremental store: fingerprints and diagnostics survive process restarts, so unchanged declarations are never re-analyzed")
	preload := fs.String("preload", "", "compiled automata artifact `file` (from aptc) preseeding the DFA caches")
	var tf cliutil.TelemetryFlags
	tf.Register(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	fatalf := func(format string, fargs ...any) int {
		fmt.Fprintf(stderr, "aptlint: "+format+"\n", fargs...)
		return 2
	}
	if *listPasses {
		for _, p := range lint.DefaultPasses() {
			fmt.Fprintf(stdout, "%-26s %s\n", p.Name(), p.Doc())
		}
		return 0
	}
	if fs.NArg() == 0 {
		return fatalf("usage: aptlint [flags] file.c ...")
	}
	passes := lint.DefaultPasses()
	if *passNames != "" {
		var err error
		passes, err = lint.PassesByName(strings.Split(*passNames, ","))
		if err != nil {
			return fatalf("%v", err)
		}
	}

	tel, err := tf.Open()
	if err != nil {
		return fatalf("%v", err)
	}
	phases := telemetry.NewPhases(tel)
	defer tf.Close(stderr, phases)

	driver := lint.NewDriver(tel, passes...).SetWorkers(*workers)
	if *preload != "" {
		art, err := automata.LoadArtifact(*preload)
		if err != nil {
			// Preload is an optimization: a bad artifact falls back to cold
			// compilation and must never change a diagnostic.
			fmt.Fprintf(stderr, "aptlint: preload %s: %v (continuing with cold caches)\n", *preload, err)
		} else {
			driver.SetPreload(art)
		}
	}

	if *watch || *incrCache != "" {
		store := lint.NewStore()
		if *incrCache != "" {
			store, err = lint.LoadStore(*incrCache)
			if err != nil {
				return fatalf("%v", err)
			}
		}
		inc := &lint.IncrementalDriver{Driver: driver, Store: store, Caches: lint.NewCaches()}
		if *watch {
			hadErrors, err := lint.Watch(fs.Args(), inc, lint.WatchOptions{
				Interval:  *watchInterval,
				Cycles:    *watchCycles,
				Out:       stdout,
				Status:    stderr,
				JSON:      *jsonOut,
				StorePath: *incrCache,
			})
			if err != nil {
				return fatalf("%v", err)
			}
			if hadErrors {
				return 1
			}
			return 0
		}
		// One-shot incremental run against the persisted store.
		code := lintFiles(fs.Args(), stdout, stderr, phases, *jsonOut,
			func(file string, prog *lang.Program) ([]lint.Diagnostic, error) {
				diags, _, err := inc.Run(file, prog)
				return diags, err
			})
		if code != 2 {
			if err := store.Save(*incrCache); err != nil {
				return fatalf("%v", err)
			}
		}
		return code
	}

	return lintFiles(fs.Args(), stdout, stderr, phases, *jsonOut, driver.Run)
}

// lintFiles parses and lints each file through lintOne, renders the
// results, and returns the process exit code.
func lintFiles(files []string, stdout, stderr io.Writer, phases *telemetry.Phases, jsonOut bool,
	lintOne func(string, *lang.Program) ([]lint.Diagnostic, error)) int {
	fatalf := func(format string, fargs ...any) int {
		fmt.Fprintf(stderr, "aptlint: "+format+"\n", fargs...)
		return 2
	}
	var results []lint.FileResult
	anyErrors := false
	for _, file := range files {
		var diags []lint.Diagnostic
		var prog *lang.Program
		err := phases.Run("parse", func() error {
			src, err := os.ReadFile(file)
			if err != nil {
				return err
			}
			prog, err = lang.Parse(string(src))
			return err
		})
		switch {
		case err != nil && prog == nil && isParseError(err):
			// A file the frontend rejects is a finding, not a tool failure.
			pos, _ := lang.ErrPos(err)
			diags = []lint.Diagnostic{{
				Pos: pos, Severity: lint.Error, Category: "parse", Message: err.Error(),
			}}
		case err != nil:
			return fatalf("%s: %v", file, err)
		default:
			if err := phases.Run("lint", func() error {
				diags, err = lintOne(file, prog)
				return err
			}); err != nil {
				return fatalf("%v", err)
			}
		}
		anyErrors = anyErrors || lint.HasErrors(diags)
		results = append(results, lint.FileResult{File: file, Diags: diags})
	}

	if jsonOut {
		if err := lint.WriteJSON(stdout, results); err != nil {
			return fatalf("%v", err)
		}
	} else {
		lint.WriteText(stdout, results)
	}
	if anyErrors {
		return 1
	}
	return 0
}

// isParseError distinguishes frontend rejections (reported as diagnostics)
// from I/O failures (reported as tool errors).
func isParseError(err error) bool {
	_, ok := lang.ErrPos(err)
	return ok
}
