package main

import "testing"

func TestBuildPatterns(t *testing.T) {
	m, desc := build("circuit", 60, 300, 1)
	if m.N != 60 || desc == "" {
		t.Errorf("circuit build: n=%d desc=%q", m.N, desc)
	}
	g, desc := build("grid", 100, 0, 1)
	if g.N != 100 || desc == "" {
		t.Errorf("grid build: n=%d desc=%q", g.N, desc)
	}
	// Grid rounds up to the next square.
	g2, _ := build("grid", 90, 0, 1)
	if g2.N != 100 {
		t.Errorf("grid rounding: n=%d, want 100", g2.N)
	}
}
