package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

func TestBuildPatterns(t *testing.T) {
	m, desc := build("circuit", 60, 300, 1)
	if m.N != 60 || desc == "" {
		t.Errorf("circuit build: n=%d desc=%q", m.N, desc)
	}
	g, desc := build("grid", 100, 0, 1)
	if g.N != 100 || desc == "" {
		t.Errorf("grid build: n=%d desc=%q", g.N, desc)
	}
	// Grid rounds up to the next square.
	g2, _ := build("grid", 90, 0, 1)
	if g2.N != 100 {
		t.Errorf("grid rounding: n=%d, want 100", g2.N)
	}
}

// TestRunCertify: the §5 kernel certifies DOALL-legal through the batched
// engine, the swapped orientations land in the canonicalized proof memo,
// and the summary reaches stdout/stderr.
func TestRunCertify(t *testing.T) {
	reg := telemetry.NewRegistry()
	tel := telemetry.New(reg, nil)
	var stdout, stderr bytes.Buffer
	if err := runCertify(4, tel, &stdout, &stderr); err != nil {
		t.Fatalf("runCertify: %v", err)
	}
	if !strings.Contains(stdout.String(), "DOALL-legal") {
		t.Errorf("stdout missing verdict:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "proof memo 4/8 hits") {
		t.Errorf("stderr missing memo summary (want 4/8 hits from the swapped orientations):\n%s", stderr.String())
	}
}
