// Command sparsebench regenerates Figure 7: speedups of the parallelized
// sparse-matrix kernels (partial vs full analysis) on the simulated
// multiprocessor, for the paper's 1000×1000 / N=10,000 configuration.
//
//	sparsebench                        the paper's configuration
//	sparsebench -pattern grid -n 900   a 30×30 grid Laplacian instead
//	sparsebench -sweep                 size/pattern sweep of the 7-PE column
//	sparsebench -detail                per-phase work breakdown
//	sparsebench -live 4 -stats         also factor on 4 real workers, with metrics
//	sparsebench -live 4 -http :6060    serve pprof + expvar while (and after) running
//	sparsebench -certify 4 -stats      first prove the kernel's loops DOALL-legal
//	                                   through the batched dependence engine
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	_ "net/http/pprof"
	"os"

	"repro/internal/analysis"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/lang"
	"repro/internal/parallel"
	"repro/internal/prover"
	"repro/internal/sched"
	"repro/internal/sparse"
	"repro/internal/telemetry"
)

func main() {
	n := flag.Int("n", 1000, "matrix dimension")
	nnz := flag.Int("nnz", 10000, "approximate nonzeros (the paper's N; circuit pattern only)")
	pattern := flag.String("pattern", "circuit", "workload pattern: circuit | grid")
	seed := flag.Int64("seed", 1994, "workload random seed")
	barrier := flag.Int64("barrier", sched.DefaultBarrierCost, "per-phase synchronization cost in work units")
	sweep := flag.Bool("sweep", false, "sweep sizes and patterns, reporting 7-PE speedups")
	detail := flag.Bool("detail", false, "print the per-phase work breakdown")
	live := flag.Int("live", 0, "also run the full factorization live on this many goroutine workers")
	certify := flag.Int("certify", 0, "first certify the sparse kernel's loops DOALL-legal through the batched dependence engine on this many `workers` (0 = skip)")
	httpAddr := flag.String("http", "", "serve net/http/pprof and expvar (/debug/vars) on this `address`, keeping the process alive after the run")
	var tf cliutil.TelemetryFlags
	tf.Register(flag.CommandLine)
	flag.Parse()

	if *httpAddr != "" {
		tf.EnsureRegistry()
	}
	tel, err := tf.Open()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sparsebench:", err)
		os.Exit(2)
	}
	if *httpAddr != "" {
		tf.Registry().PublishExpvar("sparsebench")
		go func() {
			if err := http.ListenAndServe(*httpAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "sparsebench: http:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "serving /debug/pprof and /debug/vars on %s\n", *httpAddr)
	}

	if *sweep {
		runSweep(*seed, *barrier)
		finish(&tf, *httpAddr)
		return
	}

	if *certify > 0 {
		if err := runCertify(*certify, tel, os.Stdout, os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "certify:", err)
			os.Exit(1)
		}
	}

	m, desc := build(*pattern, *n, *nnz, *seed)
	fmt.Printf("workload: %s, %d nonzeros\n", desc, m.NNZ())

	lu, err := m.Factor()
	if err != nil {
		fmt.Fprintln(os.Stderr, "factor:", err)
		os.Exit(1)
	}
	fmt.Printf("factor: %d fill-ins, %d total elements\n", lu.Trace.Fills, lu.M.NNZ())
	if *detail {
		printDetail(lu.Trace)
	}
	if *live > 0 {
		if err := runLive(m, *live, tel, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "live factor:", err)
			os.Exit(1)
		}
	}

	w := sched.Workload{Scale: m.ScaleTrace(), Factor: lu.Trace, Solve: lu.SolveTrace()}
	pes := []int{2, 4, 7}
	rows := sched.Figure7(w, pes, *barrier)
	fmt.Println()
	fmt.Print(sched.RenderTable(
		fmt.Sprintf("Figure 7 — sparse matrix speedup results (%s, barrier=%d)", desc, *barrier),
		rows, pes))
	fmt.Println()
	fmt.Println("paper reported (1000×1000, N=10,000 on an 8-PE Sequent):")
	fmt.Println("                                    2 PEs  4 PEs  7 PEs")
	fmt.Println("Factor only (partial)                 1.7    2.5    3.1")
	fmt.Println("Scale, Factor, Solve (partial)        1.7    2.4    3.0")
	fmt.Println("Factor only (full)                    1.8    3.3    5.2")
	fmt.Println("Scale, Factor, Solve (full)           1.8    3.3    5.2")
	finish(&tf, *httpAddr)
}

// runLive executes the factorization on real goroutines (the live
// counterpart of the simulated Figure 7 run), feeding the pool's worker and
// per-phase telemetry.
func runLive(m *sparse.Matrix, workers int, tel *telemetry.Set, stdout io.Writer) error {
	pool := parallel.NewPool(workers).SetTelemetry(tel)
	lu, err := m.FactorParallel(pool, true)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "live factor (%d workers, full analysis): %d fill-ins, %d total elements\n",
		workers, lu.Trace.Fills, lu.M.NNZ())
	return nil
}

// kernelSrc is the paper's §5 sparse-matrix kernel in mini-C: an
// orthogonal-list element structure with the acyclicity/injectivity axioms,
// the row- and column-scaling writers.  runCertify proves
// their loops DOALL-legal before the benchmark trusts parallel execution.
const kernelSrc = `
struct Elem {
	struct Elem *ncolE;
	struct Elem *nrowE;
	double val;
	axioms {
		A1: forall p <> q, p.ncolE <> q.ncolE;
		A2: forall p, p.ncolE+ <> p.nrowE+;
		A3: forall p, p.(ncolE|nrowE)+ <> p.eps;
		A4: forall p <> q, p.nrowE <> q.nrowE;
	}
};

void scaleRows(struct Elem *first) {
	struct Elem *r;
	struct Elem *e;
	r = first;
	while (r != NULL) {
		e = r->ncolE;
		while (e != NULL) {
S:			e->val = e->val * 2.0;
			e = e->ncolE;
		}
		r = r->nrowE;
	}
}

void scaleCols(struct Elem *first) {
	struct Elem *c;
	struct Elem *e;
	c = first;
	while (c != NULL) {
		e = c->nrowE;
		while (e != NULL) {
T:			e->val = e->val * 0.5;
			e = e->nrowE;
		}
		c = c->ncolE;
	}
}
`

// runCertify is the legality gate in front of the parallel benchmark: it
// extracts every loop-carried dependence query from the §5 kernel (both
// orientations of each pair — the engine's canonicalized memo answers the
// swap from cache) and requires the batched engine to answer No across the
// board.  With -stats the shared-cache hit rates land on stderr, making the
// batching win observable next to the factorization metrics.
func runCertify(workers int, tel *telemetry.Set, stdout, stderr io.Writer) error {
	prog, err := lang.Parse(kernelSrc)
	if err != nil {
		return err
	}
	var queries []core.Query
	var eng *engine.Engine
	for _, fn := range []struct{ name, label string }{
		{"scaleRows", "S"},
		{"scaleCols", "T"},
	} {
		res, err := analysis.Analyze(prog, fn.name, analysis.Options{Telemetry: tel})
		if err != nil {
			return fmt.Errorf("%s: %w", fn.name, err)
		}
		qs, err := res.LoopCarriedQueries(fn.label)
		if err != nil {
			return fmt.Errorf("%s: %w", fn.name, err)
		}
		for _, q := range qs {
			queries = append(queries, q, core.Query{S: q.T, T: q.S})
		}
		if eng == nil {
			eng = engine.New(res.Axioms, engine.Options{
				Workers:   workers,
				Prover:    prover.Options{Telemetry: tel},
				Telemetry: tel,
			})
		}
	}

	outs := eng.Batch(context.Background(), queries)
	for i, out := range outs {
		if out.Result != core.No {
			return fmt.Errorf("query %d (%v vs %v) answered %v: %s — refusing to certify DOALL legality",
				i, queries[i].S, queries[i].T, out.Result, out.Reason)
		}
	}
	fmt.Fprintf(stdout, "certify: %d loop-carried queries answered No on %d workers — the kernel's loops are DOALL-legal\n",
		len(outs), eng.Workers())
	if tel.Enabled() {
		st := eng.Stats()
		fmt.Fprintf(stderr, "certify: proof memo %d/%d hits (%.0f%%), shared DFA cache %d/%d hits\n",
			st.Memo.Hits, st.Memo.Lookups, 100*st.Memo.HitRate(),
			st.DFA.Hits, st.DFA.Lookups)
	}
	return nil
}

// finish flushes telemetry and, when an HTTP endpoint is up, parks the
// process so the profiles stay inspectable.
func finish(tf *cliutil.TelemetryFlags, httpAddr string) {
	if err := tf.Close(os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "sparsebench:", err)
		os.Exit(1)
	}
	if httpAddr != "" {
		fmt.Fprintf(os.Stderr, "run complete; still serving %s (interrupt to exit)\n", httpAddr)
		select {}
	}
}

func build(pattern string, n, nnz int, seed int64) (*sparse.Matrix, string) {
	switch pattern {
	case "circuit":
		rng := rand.New(rand.NewSource(seed))
		return sparse.RandomCircuit(rng, n, nnz),
			fmt.Sprintf("%d×%d circuit pattern (N≈%d)", n, n, nnz)
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		return sparse.GridLaplacian(side),
			fmt.Sprintf("%d×%d grid Laplacian (%d×%d mesh)", side*side, side*side, side, side)
	}
	fmt.Fprintf(os.Stderr, "sparsebench: unknown pattern %q\n", pattern)
	os.Exit(2)
	return nil, ""
}

func printDetail(tr *sparse.Trace) {
	var h, s, a, f, e int64
	for _, st := range tr.Steps {
		h += st.Heuristic.Total()
		s += st.Search.Total()
		a += int64(st.Adjust)
		f += st.Fillin.Total()
		e += st.Elim.Total()
	}
	total := h + s + a + f + e
	pct := func(x int64) float64 { return 100 * float64(x) / float64(total) }
	fmt.Printf("phase work: heuristic %.1f%%, search %.1f%%, adjust %.1f%%, fillin %.1f%%, elim %.1f%% (total %d units)\n",
		pct(h), pct(s), pct(a), pct(f), pct(e), total)
}

func runSweep(seed, barrier int64) {
	fmt.Printf("%-38s %8s %8s %10s %10s\n", "workload", "nnz", "fills", "partial@7", "full@7")
	type cfg struct {
		pattern string
		n, nnz  int
	}
	cfgs := []cfg{
		{"circuit", 250, 2500},
		{"circuit", 500, 5000},
		{"circuit", 1000, 10000},
		{"circuit", 1000, 20000},
		{"grid", 400, 0},
		{"grid", 900, 0},
	}
	for _, c := range cfgs {
		m, desc := build(c.pattern, c.n, c.nnz, seed)
		lu, err := m.Factor()
		if err != nil {
			fmt.Printf("%-38s factor failed: %v\n", desc, err)
			continue
		}
		partial := sched.Speedup(lu.Trace, 7, sched.Partial, barrier)
		full := sched.Speedup(lu.Trace, 7, sched.Full, barrier)
		fmt.Printf("%-38s %8d %8d %10.1f %10.1f\n", desc, m.NNZ(), lu.Trace.Fills, partial, full)
	}
	fmt.Println("\nshape invariant: full ≥ partial at every configuration (the paper's headline).")
}
