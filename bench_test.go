package repro_test

// One benchmark per paper table/figure, plus the ablations listed in
// DESIGN.md §5.  Run with:
//
//	go test -bench=. -benchmem
//
// The Figure 7 benchmarks time the regeneration machinery itself (factor
// trace + simulated machine); the table's *values* are produced by
// cmd/sparsebench and recorded in EXPERIMENTS.md.

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/automata"
	"repro/internal/axiom"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/parallel"
	"repro/internal/pathexpr"
	"repro/internal/prover"
	"repro/internal/sched"
	"repro/internal/sparse"
)

// --- §3.3: the worked example ------------------------------------------

// BenchmarkSection33_Proof times the prover on the paper's
// _hroot.LLN <> _hroot.LRN theorem (fresh prover per iteration: no caching
// across runs).
func BenchmarkSection33_Proof(b *testing.B) {
	x := pathexpr.MustParse("L.L.N")
	y := pathexpr.MustParse("L.R.N")
	for i := 0; i < b.N; i++ {
		p := prover.New(axiom.LeafLinkedBinaryTree(), prover.Options{})
		if p.ProveDisjoint(x, y).Result != prover.Proved {
			b.Fatal("proof lost")
		}
	}
}

// BenchmarkSection33_DepTest times the full deptest front door.
func BenchmarkSection33_DepTest(b *testing.B) {
	q := core.Query{
		S: core.Access{Handle: "_h", Path: pathexpr.MustParse("L.L.N"), Field: "d", IsWrite: true},
		T: core.Access{Handle: "_h", Path: pathexpr.MustParse("L.R.N"), Field: "d"},
	}
	for i := 0; i < b.N; i++ {
		t := core.NewTester(axiom.LeafLinkedBinaryTree(), prover.Options{})
		if t.DepTest(q).Result != core.No {
			b.Fatal("answer lost")
		}
	}
}

const section33Src = `
struct LLBinaryTree {
	struct LLBinaryTree *L;
	struct LLBinaryTree *R;
	struct LLBinaryTree *N;
	int d;
	axioms {
		A1: forall p, p.L <> p.R;
		A2: forall p <> q, p.(L|R) <> q.(L|R);
		A3: forall p <> q, p.N <> q.N;
		A4: forall p, p.(L|R|N)+ <> p.eps;
	}
};
int subr(struct LLBinaryTree *root) {
	struct LLBinaryTree *p;
	struct LLBinaryTree *q;
	root = root->L;
	p = root->L;
	p = p->N;
S:	p->d = 100;
	p = root;
I:	q = root->R;
	q = q->N;
T:	return q->d;
}
`

// BenchmarkSection33_Pipeline times parse + APM analysis + query extraction
// + deptest, end to end from source text (the APM tables of §3.3).
func BenchmarkSection33_Pipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		prog, err := lang.Parse(section33Src)
		if err != nil {
			b.Fatal(err)
		}
		res, err := analysis.Analyze(prog, "subr", analysis.Options{})
		if err != nil {
			b.Fatal(err)
		}
		qs, err := res.QueriesBetween("S", "T")
		if err != nil {
			b.Fatal(err)
		}
		t := core.NewTester(res.Axioms, prover.Options{})
		if t.DepTest(qs[0]).Result != core.No {
			b.Fatal("answer lost")
		}
	}
}

// --- §5: Theorem T -------------------------------------------------------

func BenchmarkTheoremT_CoreAxioms(b *testing.B) {
	x := pathexpr.MustParse("ncolE+")
	y := pathexpr.MustParse("nrowE+ncolE+")
	for i := 0; i < b.N; i++ {
		p := prover.New(axiom.SparseMatrixCore(), prover.Options{})
		if p.ProveDisjoint(x, y).Result != prover.Proved {
			b.Fatal("proof lost")
		}
	}
}

func BenchmarkTheoremT_AppendixA(b *testing.B) {
	x := pathexpr.MustParse("ncolE+")
	y := pathexpr.MustParse("nrowE+ncolE+")
	for i := 0; i < b.N; i++ {
		p := prover.New(axiom.SparseMatrix(), prover.Options{})
		if p.ProveDisjoint(x, y).Result != prover.Proved {
			b.Fatal("proof lost")
		}
	}
}

// --- Figure 7 -------------------------------------------------------------

var (
	figure7Once sync.Once
	figure7W    sched.Workload
	figure7M    *sparse.Matrix
)

// figure7Workload builds a mid-size workload once (the paper-scale run
// lives in cmd/sparsebench).
func figure7Workload(b *testing.B) (sched.Workload, *sparse.Matrix) {
	b.Helper()
	figure7Once.Do(func() {
		rng := rand.New(rand.NewSource(1994))
		figure7M = sparse.RandomCircuit(rng, 400, 2400)
		lu, err := figure7M.Factor()
		if err != nil {
			panic(err)
		}
		figure7W = sched.Workload{
			Scale:  figure7M.ScaleTrace(),
			Factor: lu.Trace,
			Solve:  lu.SolveTrace(),
		}
	})
	return figure7W, figure7M
}

// BenchmarkFigure7_SimulatePartial times the simulated-machine replay for
// the partial row of Figure 7 (2/4/7 PEs).
func BenchmarkFigure7_SimulatePartial(b *testing.B) {
	w, _ := figure7Workload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range []int{2, 4, 7} {
			if sched.Speedup(w.Factor, p, sched.Partial, sched.DefaultBarrierCost) < 1 {
				b.Fatal("speedup below 1")
			}
		}
	}
}

// BenchmarkFigure7_SimulateFull is the full-analysis row.
func BenchmarkFigure7_SimulateFull(b *testing.B) {
	w, _ := figure7Workload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range []int{2, 4, 7} {
			if sched.Speedup(w.Factor, p, sched.Full, sched.DefaultBarrierCost) < 1 {
				b.Fatal("speedup below 1")
			}
		}
	}
}

// BenchmarkFigure7_FactorSequential times the underlying factorization.
func BenchmarkFigure7_FactorSequential(b *testing.B) {
	_, m := figure7Workload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Factor(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7_FactorParallelLive runs the goroutine execution of the
// fully parallelized factorization (wall-clock speedup requires more than
// this host's cores; the benchmark demonstrates executability and overhead).
func BenchmarkFigure7_FactorParallelLive(b *testing.B) {
	_, m := figure7Workload(b)
	pool := parallel.NewPool(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.FactorParallel(pool, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7_ScaleSolve times the linear phases.
func BenchmarkFigure7_ScaleSolve(b *testing.B) {
	_, m := figure7Workload(b)
	lu, err := m.Factor()
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, m.N)
	for i := range x {
		x[i] = float64(i)
	}
	rhs := m.MulVec(x)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Scale(1.0)
		_ = lu.Solve(rhs)
	}
}

// --- §2.4 baselines --------------------------------------------------------

func BenchmarkBaseline_LarusHilfinger(b *testing.B) {
	q := core.Query{
		S: core.Access{Handle: "_h", Path: pathexpr.MustParse("L.L.N"), Field: "d", IsWrite: true},
		T: core.Access{Handle: "_h", Path: pathexpr.MustParse("L.R.N"), Field: "d"},
	}
	for i := 0; i < b.N; i++ {
		lh := baseline.NewLarusHilfinger(axiom.LeafLinkedBinaryTree())
		if lh.DepTest(q) != core.Maybe {
			b.Fatal("baseline answer lost")
		}
	}
}

func BenchmarkBaseline_KLimited(b *testing.B) {
	q := core.Query{
		S: core.Access{Handle: "_h", Path: pathexpr.MustParse("L.L.N"), Field: "d", IsWrite: true},
		T: core.Access{Handle: "_h", Path: pathexpr.MustParse("L.R.N"), Field: "d"},
	}
	for i := 0; i < b.N; i++ {
		kl := baseline.NewKLimited(2, axiom.LeafLinkedBinaryTree())
		if kl.DepTest(q) != core.Maybe {
			b.Fatal("baseline answer lost")
		}
	}
}

// --- Automata layer ---------------------------------------------------------

// BenchmarkAutomata_Inclusion times the RE ⊆ RE decision the prover leans
// on (§4.1: DFA intersection with a complement).
func BenchmarkAutomata_Inclusion(b *testing.B) {
	sub := pathexpr.MustParse("nrowE+ncolE+")
	sup := pathexpr.MustParse("(ncolE|nrowE)+")
	a := automata.AlphabetOf(sub, sup)
	for i := 0; i < b.N; i++ {
		ds, err := automata.Compile(sub, a)
		if err != nil {
			b.Fatal(err)
		}
		dp, err := automata.Compile(sup, a)
		if err != nil {
			b.Fatal(err)
		}
		if !ds.Includes(dp) {
			b.Fatal("inclusion lost")
		}
	}
}

// --- Ablations (DESIGN.md §5) -----------------------------------------------

// theoremTUnderOptions proves Theorem T n times under the given options.
func theoremTUnderOptions(b *testing.B, opts prover.Options) {
	b.Helper()
	x := pathexpr.MustParse("ncolE+")
	y := pathexpr.MustParse("nrowE+ncolE+")
	for i := 0; i < b.N; i++ {
		p := prover.New(axiom.SparseMatrix(), opts)
		if p.ProveDisjoint(x, y).Result != prover.Proved {
			b.Fatal("proof lost")
		}
	}
}

func BenchmarkAblation_ProofCacheOn(b *testing.B) { theoremTUnderOptions(b, prover.Options{}) }
func BenchmarkAblation_ProofCacheOff(b *testing.B) {
	theoremTUnderOptions(b, prover.Options{DisableProofCache: true})
}

func BenchmarkAblation_SuffixShortestFirst(b *testing.B) {
	theoremTUnderOptions(b, prover.Options{})
}
func BenchmarkAblation_SuffixLongestFirst(b *testing.B) {
	theoremTUnderOptions(b, prover.Options{LongestSuffixFirst: true})
}

func BenchmarkAblation_MinimizeOn(b *testing.B) { theoremTUnderOptions(b, prover.Options{}) }
func BenchmarkAblation_MinimizeOff(b *testing.B) {
	theoremTUnderOptions(b, prover.Options{DisableMinimize: true})
}

// BenchmarkAblation_BarrierSweep regenerates the Figure 7 full row at three
// barrier costs (the model's one calibrated parameter).
func BenchmarkAblation_BarrierSweep(b *testing.B) {
	w, _ := figure7Workload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, cost := range []int64{0, 200, 1000} {
			if sched.Speedup(w.Factor, 7, sched.Full, cost) < 1 {
				b.Fatal("speedup below 1")
			}
		}
	}
}

// --- §4.2 complexity scaling -------------------------------------------------

// complexityGoal proves a path pair whose component count is n: the
// loop-carried list query shifted k links in (word prefixes grow the suffix
// split space quadratically, matching the paper's O(n²) proof-set bound).
func complexityGoal(b *testing.B, n int) {
	b.Helper()
	w1 := make([]string, n)
	for i := range w1 {
		w1[i] = "link"
	}
	x := pathexpr.FromWord(w1)
	y := pathexpr.Cat(pathexpr.FromWord(w1), pathexpr.Rep1(pathexpr.F("link")))
	for i := 0; i < b.N; i++ {
		p := prover.New(axiom.SinglyLinkedList("link"), prover.Options{})
		if p.ProveDisjoint(x, y).Result != prover.Proved {
			b.Fatal("proof lost")
		}
	}
}

func BenchmarkComplexity_Paths2(b *testing.B)  { complexityGoal(b, 2) }
func BenchmarkComplexity_Paths4(b *testing.B)  { complexityGoal(b, 4) }
func BenchmarkComplexity_Paths8(b *testing.B)  { complexityGoal(b, 8) }
func BenchmarkComplexity_Paths16(b *testing.B) { complexityGoal(b, 16) }

// BenchmarkProofCheck times the independent re-validation of the Theorem T
// derivation (prover.CheckProof).
func BenchmarkProofCheck(b *testing.B) {
	p := prover.New(axiom.SparseMatrixCore(), prover.Options{})
	proof := p.ProveDisjoint(pathexpr.MustParse("ncolE+"), pathexpr.MustParse("nrowE+ncolE+"))
	if proof.Result != prover.Proved {
		b.Fatal("proof lost")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.CheckProof(proof); err != nil {
			b.Fatal(err)
		}
	}
}
