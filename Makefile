# Pre-merge gate and common development targets.  `make check` is the full
# gate: vet, build, race-enabled tests, a one-iteration pass over every
# benchmark (catches bit-rot in benchmark code without paying for timing),
# and the aptlint self-smoke over all of testdata/.

GO ?= go

.PHONY: check vet build test race bench lintsmoke allocs figure7 clean

check: vet build race bench lintsmoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Lint every program in testdata/ with aptlint and diff the diagnostics
# against the committed golden.  Regenerate after intentional changes with:
#   go test ./cmd/aptlint -run TestSelfSmoke -update
lintsmoke:
	@$(GO) build -o $(CURDIR)/.aptlint.smoke ./cmd/aptlint
	@{ for f in testdata/*.c testdata/lint/*.c; do \
		echo "== $$f"; \
		$(CURDIR)/.aptlint.smoke $$f; \
		echo "exit=$$?"; \
	done; } | diff -u testdata/lint/selfsmoke.golden - \
		&& echo "lintsmoke: OK" ; rc=$$?; rm -f $(CURDIR)/.aptlint.smoke; exit $$rc

# The 0-allocation guarantee for disabled telemetry, with real numbers.
allocs:
	$(GO) test -run='^$$' -bench=BenchmarkTelemetryDisabled -benchmem ./internal/telemetry

figure7:
	$(GO) run ./cmd/sparsebench

clean:
	$(GO) clean ./...
