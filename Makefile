# Pre-merge gate and common development targets.  `make check` is the full
# gate: vet, build, race-enabled tests, and a one-iteration pass over every
# benchmark (catches bit-rot in benchmark code without paying for timing).

GO ?= go

.PHONY: check vet build test race bench allocs figure7 clean

check: vet build race bench

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# The 0-allocation guarantee for disabled telemetry, with real numbers.
allocs:
	$(GO) test -run='^$$' -bench=BenchmarkTelemetryDisabled -benchmem ./internal/telemetry

figure7:
	$(GO) run ./cmd/sparsebench

clean:
	$(GO) clean ./...
