# Pre-merge gate and common development targets.  `make check` is the full
# gate: vet, build, race-enabled tests, a one-iteration pass over every
# benchmark (catches bit-rot in benchmark code without paying for timing),
# and the aptlint self-smoke over all of testdata/.

GO ?= go

.PHONY: check vet build test race race-engine race-pool race-serve race-cluster race-guards serve-smoke cluster-smoke obs-check fuzzfarm-smoke aptc-smoke bench bench-json bench-served bench-cluster bench-dfa bench-intern bench-incr bench-fuzzfarm lintsmoke allocs figure7 clean

check: vet build race bench lintsmoke serve-smoke cluster-smoke race-cluster obs-check fuzzfarm-smoke aptc-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Focused race coverage for the batched query engine and everything it
# leans on (worker pool, shared DFA cache).
race-engine:
	$(GO) test -race ./internal/engine ./internal/parallel ./internal/automata

# The pool's concurrency tests synchronize through explicit channels (no
# sleeps), so hammering them under the race detector is cheap and
# deterministic.
race-pool:
	$(GO) test -race -count=50 ./internal/parallel

# Soak the long-lived query server under the race detector: 8 concurrent
# clients, mixed deadlines, more axiom sets than the engine pool keeps,
# then a drain overlapping a fresh request wave.
race-serve:
	$(GO) test -race -count=3 -run 'TestSoak|TestDrain|TestAdmission' ./internal/serve

# Soak the routing tier's trickiest interleavings under the race detector:
# hedge accounting (no double-counted completions, losers canceled), ring
# membership changes under live load, and drain racing a hedged request.
# The tests synchronize through channel handshakes, so 50 iterations stay
# cheap and deterministic.
race-cluster:
	$(GO) test -race -count=50 -run 'Hedge|RingChangeUnderLoad|AllBackendsDraining' ./internal/route

# Cluster smoke: two backend daemons plus a router daemon in one process,
# a batch routed end to end, one SIGTERM draining all three with exit 0 —
# plus the tiny three-phase cluster bench validating its report schema.
cluster-smoke:
	$(GO) test -run 'TestClusterSmokeAndDrain|TestClusterBenchSmoke' -v ./cmd/aptserved
	$(GO) test -run 'TestFarmServeParityThroughRouter' ./internal/scenario

# Soundness oracle for the path-sensitivity layer: every guard-upgraded
# verdict claims two accesses lie on mutually exclusive paths; the oracle
# enumerates every conforming concrete heap up to a bound and runs the
# program under every boolean input, asserting no execution reaches both
# accesses — plus adversarial variants that must NOT upgrade.
race-guards:
	$(GO) test -race -run 'TestGuardUpgradeOracle|TestOracleCorpus|TestEnumerateGraphs|TestEnumerateConforming|TestClone|TestForEachRun|TestSweepLabels|TestChecker' ./internal/lint ./internal/heap ./internal/heap/oracle

# End-to-end daemon smoke: boot aptserved on a loopback port, round-trip
# /healthz + /v1/batch + both metrics endpoints, SIGQUIT-dump the flight
# recorder, then SIGTERM-drain it — plus the loadgen -self path that writes
# the bench report.
serve-smoke:
	$(GO) test -run 'TestServerSmokeAndDrain|TestLoadgenSelf' -v ./cmd/aptserved

# Observability gate: the Prometheus exposition golden + validator, the
# traceparent/span-tree tests, a 50-iteration race soak of the lock-free
# flight recorder and sliding-window histogram, and the zero-allocation
# guards for disabled tracing (which -race would skew, hence the separate
# non-race invocation).
obs-check:
	$(GO) test -run 'TestWritePrometheus|TestValidatePrometheus|TestTraceparent|TestRequestTrace|TestMetricsPrometheus|TestAccessLog' \
		./internal/telemetry ./internal/serve
	$(GO) test -race -count=50 -run 'TestFlightRecorder|TestWindowHistogram' ./internal/telemetry
	$(GO) test -run 'TestDisabledObservabilityAllocations|TestWarmHitAllocationBudget' \
		./internal/telemetry ./internal/engine
	$(GO) test -race -run 'TestDegradedCountersSplitByReason' ./internal/engine

# Fixed-seed differential fuzzing smoke: generate scenario programs over all
# five structure families, cross-check every verdict against the concrete and
# enumerated-heap oracles, and replay the committed regression corpus.  Any
# divergence is a failure.
fuzzfarm-smoke:
	$(GO) run ./cmd/aptfuzz -seed 1 -n 50
	$(GO) run ./cmd/aptfuzz -repro testdata/fuzz/regressions

# Offline-compiler round-trip smoke: compile a library artifact and a
# replay artifact with self-verification on, then boot aptdep from each and
# demand output identical to a cold run (the -preload identity contract).
aptc-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf $$tmp' EXIT; \
	$(GO) run ./cmd/aptc -library LeafLinkedBinaryTree -o $$tmp/llbt.aptc -verify && \
	printf 'between S T\n' > $$tmp/q.txt && \
	$(GO) run ./cmd/aptc -program testdata/section33.c -queries $$tmp/q.txt -o $$tmp/replay.aptc -verify && \
	$(GO) run ./cmd/aptdep -fn subr -batch $$tmp/q.txt testdata/section33.c > $$tmp/cold.out && \
	$(GO) run ./cmd/aptdep -preload $$tmp/replay.aptc -fn subr -batch $$tmp/q.txt testdata/section33.c > $$tmp/warm.out && \
	diff -u $$tmp/cold.out $$tmp/warm.out && echo "aptc-smoke: OK"

bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Engine-vs-sequential benchmark report (ns/op, cache hit rates, speedup at
# 1/4/8 workers) written to BENCH_engine.json; the acceptance thresholds
# (≥2× at 8 workers, >50% shared-cache hit rate) are asserted by the test.
bench-json:
	BENCH_ENGINE_JSON=$(CURDIR)/BENCH_engine.json $(GO) test -run TestWriteBenchEngineJSON -v ./internal/engine

# Serving latency/hit-rate report: 8 concurrent loadgen clients drive an
# in-process aptserved over the §3.3 tree program; p50/p99 plus the
# cold-vs-warm split land in BENCH_served.json.  The server boots from an
# aptc artifact compiled for the same workload, so the cold-start penalty
# (cold_p50_us vs warm_p50_us) measures the preloaded boot path.
bench-served:
	@printf 'between S T\nbetween S I\n' > $(CURDIR)/.served.queries
	$(GO) run ./cmd/aptc -program testdata/section33.c -fn subr \
		-queries $(CURDIR)/.served.queries -o $(CURDIR)/.served.aptc -verify
	$(GO) run ./cmd/aptserved -loadgen -self -preload $(CURDIR)/.served.aptc \
		-program testdata/section33.c -fn subr \
		-queries-file $(CURDIR)/.served.queries \
		-clients 8 -requests 64 -out $(CURDIR)/BENCH_served.json
	@rm -f $(CURDIR)/.served.queries $(CURDIR)/.served.aptc

# Cluster scaling report: ring-size x per-backend-capacity distinct
# axiom-set shards driven through a single backend (LRU thrash, cold
# rebuilds), the full 4-backend ring (every shard engine-warm), and the
# warm ring with hedged retries; queries/sec, latency quantiles, hedge
# outcomes, and the warm-capacity scaling factor land in BENCH_cluster.json.
bench-cluster:
	$(GO) run ./cmd/aptserved -loadgen -cluster -cluster-requests 480 \
		-out $(CURDIR)/BENCH_cluster.json

# DFA backend report: the flat-table backend vs the frozen map/string
# backend over the same expression suite, written to BENCH_dfa.json.  The
# acceptance guards (equal verdicts, table no slower per decision) are
# asserted by the tests.
bench-dfa:
	$(GO) test -run TestTableBackendMatchesLegacy ./internal/automata
	BENCH_DFA_JSON=$(CURDIR)/BENCH_dfa.json $(GO) test -run TestWriteBenchDFAJSON -v ./internal/automata

# Warm-hit cost of the interned-key caches (shared DFA cache, its decision
# memo, the proof memo, canonical goal keys) written to BENCH_intern.json
# with the frozen string-keyed baseline alongside.  The regression guards
# are asserted by the test: ops-memo/proof-memo/goal-key warm hits must be
# allocation-free and every path must beat its baseline.
bench-intern:
	BENCH_INTERN_JSON=$(CURDIR)/BENCH_intern.json $(GO) test -run TestWriteBenchInternJSON -v ./internal/engine

# Incremental re-analysis report: cold run over a 65-declaration unit vs
# re-analysis after a one-line edit, plus the Maybe-to-definite conversion
# rate on the seeded lint corpus, written to BENCH_incr.json.  The
# acceptance thresholds (>=10x speedup, conversion rate >= baseline) are
# asserted by the test.
bench-incr:
	BENCH_INCR_JSON=$(CURDIR)/BENCH_incr.json $(GO) test -run TestWriteBenchIncrJSON -v ./internal/lint

# Seeded scenario-farm throughput and soundness report: 1500 generated
# programs (>10k dependence queries) across all five families, every No
# verdict cross-checked against both oracles, written to BENCH_fuzzfarm.json.
# A non-zero divergence count fails the target (aptfuzz exits 1).
bench-fuzzfarm:
	$(GO) run ./cmd/aptfuzz -seed 1 -n 1500 -report $(CURDIR)/BENCH_fuzzfarm.json

# Lint every program in testdata/ with aptlint and diff the diagnostics
# against the committed golden.  Regenerate after intentional changes with:
#   go test ./cmd/aptlint -run TestSelfSmoke -update
lintsmoke:
	@$(GO) build -o $(CURDIR)/.aptlint.smoke ./cmd/aptlint
	@{ for f in testdata/*.c testdata/lint/*.c; do \
		echo "== $$f"; \
		$(CURDIR)/.aptlint.smoke $$f; \
		echo "exit=$$?"; \
	done; } | diff -u testdata/lint/selfsmoke.golden - \
		&& echo "lintsmoke: OK" ; rc=$$?; rm -f $(CURDIR)/.aptlint.smoke; exit $$rc

# The 0-allocation guarantee for disabled telemetry, with real numbers.
allocs:
	$(GO) test -run='^$$' -bench=BenchmarkTelemetryDisabled -benchmem ./internal/telemetry

figure7:
	$(GO) run ./cmd/sparsebench

clean:
	$(GO) clean ./...
