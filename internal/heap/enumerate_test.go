package heap

import "testing"

func TestEnumerateGraphsCount(t *testing.T) {
	cases := []struct {
		n      int
		fields []string
		want   int
	}{
		{0, []string{"next"}, 1},
		{1, []string{"next"}, 2},      // nil or self-loop
		{2, []string{"next"}, 9},      // 3^2
		{3, []string{"next"}, 64},     // 4^3
		{2, []string{"l", "r"}, 81},   // 3^4
		{3, []string{"l", "r"}, 4096}, // 4^6
	}
	for _, tc := range cases {
		got := 0
		EnumerateGraphs(tc.n, tc.fields, func(*Graph) bool {
			got++
			return true
		})
		if got != tc.want {
			t.Errorf("EnumerateGraphs(%d, %v) visited %d graphs, want %d", tc.n, tc.fields, got, tc.want)
		}
	}
}

func TestEnumerateGraphsEarlyStop(t *testing.T) {
	got := 0
	EnumerateGraphs(3, []string{"next"}, func(*Graph) bool {
		got++
		return got < 5
	})
	if got != 5 {
		t.Errorf("early stop visited %d graphs, want 5", got)
	}
}

// TestEnumerateGraphsCoversLists: the enumeration reaches the canonical
// chain 0 -> 1 -> 2, i.e. the exact edge set BuildList produces.
func TestEnumerateGraphsCoversLists(t *testing.T) {
	want, _ := BuildList(3, "next")
	found := false
	EnumerateGraphs(3, []string{"next"}, func(g *Graph) bool {
		same := true
		for v := Vertex(0); v < 3; v++ {
			gw, gok := g.Edge(v, "next")
			ww, wok := want.Edge(v, "next")
			if gok != wok || (gok && gw != ww) {
				same = false
				break
			}
		}
		if same {
			found = true
			return false
		}
		return true
	})
	if !found {
		t.Error("enumeration never produced the 3-vertex list")
	}
}

func TestClone(t *testing.T) {
	g, root := BuildList(3, "next")
	c := g.Clone()
	c.ClearEdge(root, "next")
	if _, ok := g.Edge(root, "next"); !ok {
		t.Error("mutating the clone reached the original")
	}
	if _, ok := c.Edge(1, "next"); !ok {
		t.Error("clone lost an edge it should share")
	}
}
