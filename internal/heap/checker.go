package heap

import (
	"fmt"

	"repro/internal/automata"
	"repro/internal/axiom"
	"repro/internal/pathexpr"
)

// Checker model-checks one axiom set against concrete heaps with the
// per-axiom DFAs compiled once up front.  Graph.CheckSet recompiles the
// automata on every call, which is fine for a handful of heaps but
// dominates when a caller sweeps thousands of enumerated shapes (the
// scenario farm filters (n+1)^(n·fields) candidate graphs per family); a
// Checker amortizes the compilation across the whole sweep.
//
// A Checker is immutable after construction and safe for concurrent use.
type Checker struct {
	set    *axiom.Set
	alpha  *automata.Alphabet
	axioms []checkedAxiom
}

type checkedAxiom struct {
	ax     axiom.Axiom
	d1, d2 *automata.DFA
}

// NewChecker compiles the set's axioms over the union of the axioms' fields
// and the extra graph fields.  Edges over fields outside that union are
// invisible to every axiom language (exactly as in Graph.CheckSet, whose
// per-call alphabet also covers only the graph's and the axiom's fields).
func NewChecker(set *axiom.Set, graphFields ...string) *Checker {
	fields := append(append([]string{}, set.Fields()...), graphFields...)
	alpha := automata.NewAlphabet(fields...)
	c := &Checker{set: set, alpha: alpha}
	for _, a := range set.Axioms {
		c.axioms = append(c.axioms, checkedAxiom{
			ax: a,
			d1: automata.MustCompile(a.RE1, alpha),
			d2: automata.MustCompile(a.RE2, alpha),
		})
	}
	return c
}

// Set returns the axiom set the checker was built from.
func (c *Checker) Set() *axiom.Set { return c.set }

// Conforms model-checks every axiom against the heap and returns the first
// violation, or nil when the heap conforms.  Semantically identical to
// g.CheckSet(c.Set()) but without per-call DFA compilation.
func (c *Checker) Conforms(g *Graph) error {
	fields := g.Fields()
	n := g.NumVertices()
	for _, ca := range c.axioms {
		switch ca.ax.Form {
		case axiom.SameSrcDisjoint:
			for v := Vertex(0); int(v) < n; v++ {
				if !disjointSets(g.evalDFA(v, ca.d1, fields), g.evalDFA(v, ca.d2, fields)) {
					return fmt.Errorf("heap: axiom %v violated at vertex %d", ca.ax, v)
				}
			}
		case axiom.DiffSrcDisjoint:
			for v := Vertex(0); int(v) < n; v++ {
				s1 := g.evalDFA(v, ca.d1, fields)
				for w := Vertex(0); int(w) < n; w++ {
					if v == w {
						continue
					}
					if !disjointSets(s1, g.evalDFA(w, ca.d2, fields)) {
						return fmt.Errorf("heap: axiom %v violated at vertices %d, %d", ca.ax, v, w)
					}
				}
			}
		case axiom.SameSrcEqual:
			for v := Vertex(0); int(v) < n; v++ {
				s1 := g.evalDFA(v, ca.d1, fields)
				s2 := g.evalDFA(v, ca.d2, fields)
				if !sameSet(s1, s2) {
					return fmt.Errorf("heap: equality axiom %v violated at vertex %d (%v vs %v)",
						ca.ax, v, keys(s1), keys(s2))
				}
			}
		}
	}
	return nil
}

// evalDFA is the product reachability walk of Eval with the DFA supplied by
// the caller (and the graph's field list hoisted out of the loop).
func (g *Graph) evalDFA(v Vertex, d *automata.DFA, fields []string) map[Vertex]bool {
	type conf struct {
		v Vertex
		s int
	}
	out := make(map[Vertex]bool)
	seen := map[conf]bool{{v, 0}: true}
	stack := []conf{{v, 0}}
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if d.Accepting(c.s) {
			out[c.v] = true
		}
		for _, f := range fields {
			w, ok := g.Edge(c.v, f)
			if !ok {
				continue
			}
			ns := d.Step(c.s, f)
			if ns < 0 {
				continue
			}
			nc := conf{w, ns}
			if !seen[nc] {
				seen[nc] = true
				stack = append(stack, nc)
			}
		}
	}
	return out
}

func disjointSets(a, b map[Vertex]bool) bool {
	if len(b) < len(a) {
		a, b = b, a
	}
	for v := range a {
		if b[v] {
			return false
		}
	}
	return true
}

// EvalPath returns the denotation of v.e on g using the checker's alphabet
// (e must mention only checker fields).  Exposed so sweep harnesses can
// reuse the alphabet instead of rebuilding one per evaluation.
func (c *Checker) EvalPath(g *Graph, v Vertex, e pathexpr.Expr) map[Vertex]bool {
	return g.evalDFA(v, automata.MustCompile(e, c.alpha), g.Fields())
}
