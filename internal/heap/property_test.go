package heap

import (
	"math/rand"
	"testing"

	"repro/internal/pathexpr"
)

// randGraph builds a random partial-function graph (each vertex has at most
// one successor per field) — not necessarily any recognizable structure.
func randGraph(rng *rand.Rand, n int, fields []string) *Graph {
	g := New(n)
	for v := 0; v < n; v++ {
		for _, f := range fields {
			if rng.Intn(2) == 0 {
				g.SetEdge(Vertex(v), f, Vertex(rng.Intn(n)))
			}
		}
	}
	return g
}

// TestPropertyEvalConcatComposes: Eval(v, a·b) equals the union of
// Eval(u, b) over u ∈ Eval(v, a).
func TestPropertyEvalConcatComposes(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	fields := []string{"f", "g"}
	for trial := 0; trial < 40; trial++ {
		g := randGraph(rng, 2+rng.Intn(8), fields)
		a := pathexpr.Or(pathexpr.F("f"), pathexpr.Cat(pathexpr.F("g"), pathexpr.F("f")))
		b := pathexpr.Rep(pathexpr.F("g"))
		for v := 0; v < g.NumVertices(); v++ {
			direct := g.Eval(Vertex(v), pathexpr.Cat(a, b))
			composed := map[Vertex]bool{}
			for u := range g.Eval(Vertex(v), a) {
				for w := range g.Eval(u, b) {
					composed[w] = true
				}
			}
			if !sameSet(direct, composed) {
				t.Fatalf("trial %d v=%d: Eval(a·b)=%v, composed=%v", trial, v, keys(direct), keys(composed))
			}
		}
	}
}

// TestPropertyEvalAltIsUnion: Eval over an alternation is the union of the
// branch evaluations.
func TestPropertyEvalAltIsUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	fields := []string{"f", "g"}
	x := pathexpr.Cat(pathexpr.F("f"), pathexpr.F("g"))
	y := pathexpr.Rep1(pathexpr.F("g"))
	alt := pathexpr.Or(x, y)
	for trial := 0; trial < 40; trial++ {
		g := randGraph(rng, 2+rng.Intn(8), fields)
		for v := 0; v < g.NumVertices(); v++ {
			got := g.Eval(Vertex(v), alt)
			want := map[Vertex]bool{}
			for u := range g.Eval(Vertex(v), x) {
				want[u] = true
			}
			for u := range g.Eval(Vertex(v), y) {
				want[u] = true
			}
			if !sameSet(got, want) {
				t.Fatalf("trial %d v=%d: alt=%v, union=%v", trial, v, keys(got), keys(want))
			}
		}
	}
}

// TestPropertyEvalStarFixpoint: Eval(v, f*) is the reachability closure of
// Eval(v, ε) ∪ Eval(v, f) ∪ Eval(v, ff) ... and contains v.
func TestPropertyEvalStarFixpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	for trial := 0; trial < 40; trial++ {
		g := randGraph(rng, 2+rng.Intn(8), []string{"f"})
		star := pathexpr.Rep(pathexpr.F("f"))
		for v := 0; v < g.NumVertices(); v++ {
			got := g.Eval(Vertex(v), star)
			if !got[Vertex(v)] {
				t.Fatalf("v not in its own f* closure")
			}
			// Manual closure.
			want := map[Vertex]bool{Vertex(v): true}
			cur := Vertex(v)
			for i := 0; i < g.NumVertices()+1; i++ {
				next, ok := g.Edge(cur, "f")
				if !ok {
					break
				}
				if want[next] {
					break
				}
				want[next] = true
				cur = next
			}
			if !sameSet(got, want) {
				t.Fatalf("trial %d v=%d: star=%v, closure=%v", trial, v, keys(got), keys(want))
			}
		}
	}
}

// TestPropertyWalkWordAgreesWithEval: for word paths, WalkWord and Eval
// agree (the set is the singleton of the walk result, or empty).
func TestPropertyWalkWordAgreesWithEval(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	fields := []string{"f", "g"}
	for trial := 0; trial < 60; trial++ {
		g := randGraph(rng, 2+rng.Intn(8), fields)
		n := rng.Intn(5)
		word := make([]string, n)
		for i := range word {
			word[i] = fields[rng.Intn(2)]
		}
		for v := 0; v < g.NumVertices(); v++ {
			got := g.Eval(Vertex(v), pathexpr.FromWord(word))
			dst, ok := g.WalkWord(Vertex(v), word)
			if ok {
				if len(got) != 1 || !got[dst] {
					t.Fatalf("Eval=%v, walk=%d", keys(got), dst)
				}
			} else if len(got) != 0 {
				t.Fatalf("walk failed but Eval=%v", keys(got))
			}
		}
	}
}
