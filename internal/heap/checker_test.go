package heap

import (
	"math/rand"
	"testing"

	"repro/internal/axiom"
)

// The checker must agree with the uncached CheckSet on every enumerated
// 3-vertex two-field graph — same accept/reject decision per shape.
func TestCheckerAgreesWithCheckSet(t *testing.T) {
	set := axiom.SinglyLinkedList("next")
	set.Add(axiom.MustParse("forall p, p.next <> p.alt"))
	c := NewChecker(set, "next", "alt")
	checked, disagreements := 0, 0
	EnumerateGraphs(3, []string{"next", "alt"}, func(g *Graph) bool {
		checked++
		slow := g.CheckSet(set) == nil
		fast := c.Conforms(g) == nil
		if slow != fast {
			disagreements++
			t.Errorf("graph #%d: CheckSet conforming=%v, Checker conforming=%v", checked, slow, fast)
			return disagreements < 5
		}
		return true
	})
	if checked != 4096 {
		t.Fatalf("enumerated %d graphs, want 4096", checked)
	}
}

func TestCheckerConformsOnBuilders(t *testing.T) {
	lc := NewChecker(axiom.SinglyLinkedList("next"), "next")
	g, _ := BuildList(5, "next")
	if err := lc.Conforms(g); err != nil {
		t.Fatalf("list rejected: %v", err)
	}
	g.SetEdge(3, "next", 1) // back edge: violates acyclicity
	if err := lc.Conforms(g); err == nil {
		t.Fatal("cyclic list accepted")
	}

	tc := NewChecker(axiom.BinaryTree("l", "r"), "l", "r")
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		g, _ := RandomBinaryTree(rng, 1+rng.Intn(8), "l", "r")
		if err := tc.Conforms(g); err != nil {
			t.Fatalf("random tree %d rejected: %v", i, err)
		}
	}
	shared := New(3)
	shared.SetEdge(0, "l", 2)
	shared.SetEdge(1, "r", 2) // two parents share a child
	if err := tc.Conforms(shared); err == nil {
		t.Fatal("shared-child graph accepted as a binary tree")
	}
}

// An equality axiom (form 3) must be checked as set equality, not just
// disjointness: the doubly linked ring satisfies next.prev = ε, a broken
// ring does not.
func TestCheckerEqualityAxiom(t *testing.T) {
	set := axiom.CyclicDoublyLinkedRing("next", "prev")
	c := NewChecker(set, "next", "prev")
	g, _ := BuildDoublyLinkedRing(4, "next", "prev")
	if err := c.Conforms(g); err != nil {
		t.Fatalf("ring rejected: %v", err)
	}
	g.ClearEdge(2, "prev")
	if err := c.Conforms(g); err == nil {
		t.Fatal("ring with a missing prev edge accepted")
	}
}

func TestEnumerateConforming(t *testing.T) {
	set := axiom.SinglyLinkedList("next")
	c := NewChecker(set, "next")
	var got []*Graph
	total, conforming := EnumerateConforming(2, []string{"next"}, c, func(g *Graph) bool {
		got = append(got, g.Clone())
		return true
	})
	if total != 9 {
		t.Fatalf("total = %d, want 9", total)
	}
	// On 2 vertices the conforming shapes are: no edges, 0->1, 1->0
	// (self-loops violate acyclicity; both-edges graphs are 2-cycles).
	if conforming != 3 || len(got) != 3 {
		t.Fatalf("conforming = %d (visited %d), want 3", conforming, len(got))
	}
	for _, g := range got {
		if err := g.CheckSet(set); err != nil {
			t.Fatalf("visited graph does not conform: %v", err)
		}
	}
}

func TestEnumerationSize(t *testing.T) {
	for _, tc := range []struct{ n, f, want int }{
		{1, 1, 2}, {2, 1, 9}, {3, 1, 64}, {2, 2, 81}, {3, 2, 4096}, {2, 3, 729},
	} {
		if got := EnumerationSize(tc.n, tc.f); got != tc.want {
			t.Errorf("EnumerationSize(%d, %d) = %d, want %d", tc.n, tc.f, got, tc.want)
		}
	}
	if got := EnumerationSize(20, 20); got != 1<<40 {
		t.Errorf("EnumerationSize(20, 20) = %d, want saturation at 2^40", got)
	}
}
