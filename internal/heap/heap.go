// Package heap models concrete heaps: finite directed graphs whose edges
// are labeled with pointer-field names and where each vertex has at most one
// outgoing edge per field (pointer fields are single-valued).
//
// The package evaluates access paths (which vertices does h.RE reach?),
// model-checks aliasing axioms against a concrete structure, and builds the
// structures used throughout the paper: linked lists, binary trees,
// leaf-linked trees, and orthogonal-list sparse matrices.  It is the ground
// truth for the soundness property tests: whenever the prover derives
// disjointness, the vertex sets on every conforming concrete heap must be
// disjoint.
package heap

import (
	"fmt"
	"sort"

	"repro/internal/automata"
	"repro/internal/axiom"
	"repro/internal/pathexpr"
)

// Vertex identifies a heap vertex.  Vertices are dense small integers.
type Vertex int

// Graph is a concrete heap.
type Graph struct {
	// succ[f][v] is the f-successor of v; absent means nil pointer.
	succ map[string]map[Vertex]Vertex
	n    int
}

// New returns an empty heap graph with n vertices (0..n-1).
func New(n int) *Graph {
	return &Graph{succ: make(map[string]map[Vertex]Vertex), n: n}
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return g.n }

// AddVertex adds one vertex and returns it.
func (g *Graph) AddVertex() Vertex {
	g.n++
	return Vertex(g.n - 1)
}

// SetEdge points field f of v at w.  Setting an edge twice overwrites, like
// a pointer assignment.
func (g *Graph) SetEdge(v Vertex, f string, w Vertex) {
	if int(v) >= g.n || int(w) >= g.n || v < 0 || w < 0 {
		panic(fmt.Sprintf("heap: edge %d -%s-> %d out of range (n=%d)", v, f, w, g.n))
	}
	m := g.succ[f]
	if m == nil {
		m = make(map[Vertex]Vertex)
		g.succ[f] = m
	}
	m[v] = w
}

// ClearEdge removes the f edge of v (a nil assignment).
func (g *Graph) ClearEdge(v Vertex, f string) {
	if m := g.succ[f]; m != nil {
		delete(m, v)
	}
}

// Edge returns the f-successor of v, if any.
func (g *Graph) Edge(v Vertex, f string) (Vertex, bool) {
	m := g.succ[f]
	if m == nil {
		return 0, false
	}
	w, ok := m[v]
	return w, ok
}

// Fields returns the sorted field names with at least one edge.
func (g *Graph) Fields() []string {
	out := make([]string, 0, len(g.succ))
	for f, m := range g.succ {
		if len(m) > 0 {
			out = append(out, f)
		}
	}
	sort.Strings(out)
	return out
}

// WalkWord follows a concrete word from v, returning the final vertex, or
// false if some edge is missing.
func (g *Graph) WalkWord(v Vertex, word []string) (Vertex, bool) {
	cur := v
	for _, f := range word {
		next, ok := g.Edge(cur, f)
		if !ok {
			return 0, false
		}
		cur = next
	}
	return cur, true
}

// Eval returns the set of vertices reached from v over any word in the
// language of e: the denotation of the access path v.e.  The evaluation is
// a product reachability walk of the DFA of e against the heap.
func (g *Graph) Eval(v Vertex, e pathexpr.Expr) map[Vertex]bool {
	fields := g.Fields()
	alpha := automata.NewAlphabet(append(append([]string{}, fields...), pathexpr.Fields(e)...)...)
	return g.evalDFA(v, automata.MustCompile(e, alpha), fields)
}

// Disjoint reports whether v.x and w.y reach disjoint vertex sets.
func (g *Graph) Disjoint(v Vertex, x pathexpr.Expr, w Vertex, y pathexpr.Expr) bool {
	a := g.Eval(v, x)
	b := g.Eval(w, y)
	for u := range a {
		if b[u] {
			return false
		}
	}
	return true
}

// CheckAxiom model-checks one axiom against the heap by enumerating all
// (pairs of) vertices.  It returns nil when the axiom holds, or an error
// describing a violating instantiation.
func (g *Graph) CheckAxiom(a axiom.Axiom) error {
	switch a.Form {
	case axiom.SameSrcDisjoint:
		for v := Vertex(0); int(v) < g.n; v++ {
			if !g.Disjoint(v, a.RE1, v, a.RE2) {
				return fmt.Errorf("heap: axiom %v violated at vertex %d", a, v)
			}
		}
	case axiom.DiffSrcDisjoint:
		for v := Vertex(0); int(v) < g.n; v++ {
			for w := Vertex(0); int(w) < g.n; w++ {
				if v == w {
					continue
				}
				if !g.Disjoint(v, a.RE1, w, a.RE2) {
					return fmt.Errorf("heap: axiom %v violated at vertices %d, %d", a, v, w)
				}
			}
		}
	case axiom.SameSrcEqual:
		for v := Vertex(0); int(v) < g.n; v++ {
			s1 := g.Eval(v, a.RE1)
			s2 := g.Eval(v, a.RE2)
			if !sameSet(s1, s2) {
				return fmt.Errorf("heap: equality axiom %v violated at vertex %d (%v vs %v)", a, v, keys(s1), keys(s2))
			}
		}
	}
	return nil
}

// CheckSet model-checks every axiom of the set and returns the first
// violation, or nil when the heap conforms.
func (g *Graph) CheckSet(s *axiom.Set) error {
	for _, a := range s.Axioms {
		if err := g.CheckAxiom(a); err != nil {
			return err
		}
	}
	return nil
}

func sameSet(a, b map[Vertex]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for v := range a {
		if !b[v] {
			return false
		}
	}
	return true
}

func keys(m map[Vertex]bool) []int {
	out := make([]int, 0, len(m))
	for v := range m {
		out = append(out, int(v))
	}
	sort.Ints(out)
	return out
}
