package heap

// Bounded small-heap enumeration, after Charatonik & Witkowski: for the
// small vertex counts that matter in practice, every possible pointer
// structure can be enumerated outright and used as an exhaustive ground
// truth.  The soundness oracle for the path-sensitivity layer runs guarded
// programs concretely over every conforming shape and checks that no run
// contradicts a guard-upgraded verdict.

// EnumerateGraphs calls visit with every concrete heap on exactly n
// vertices over the given pointer fields: each field of each vertex either
// dangles (nil) or points at one of the n vertices.  Graphs are visited in
// a fixed deterministic order; visit returning false stops the enumeration.
// The count is (n+1)^(n*len(fields)), so callers keep n and the field set
// small (n <= 4 with one or two fields is instant).
//
// Each visited graph is freshly allocated — the callback may mutate or
// retain it.
func EnumerateGraphs(n int, fields []string, visit func(*Graph) bool) {
	slots := n * len(fields)
	choice := make([]int, slots) // 0 = nil, k > 0 = vertex k-1
	for {
		g := New(n)
		for s, c := range choice {
			if c > 0 {
				g.SetEdge(Vertex(s/len(fields)), fields[s%len(fields)], Vertex(c-1))
			}
		}
		if !visit(g) {
			return
		}
		i := 0
		for ; i < slots; i++ {
			choice[i]++
			if choice[i] <= n {
				break
			}
			choice[i] = 0
		}
		if i == slots {
			return
		}
	}
}

// EnumerateConforming visits every heap on exactly n vertices over the
// given fields that the checker accepts, in the same deterministic order as
// EnumerateGraphs.  It returns how many graphs were enumerated and how many
// conformed (the visited count, unless visit stopped the walk early by
// returning false).
func EnumerateConforming(n int, fields []string, c *Checker, visit func(*Graph) bool) (total, conforming int) {
	EnumerateGraphs(n, fields, func(g *Graph) bool {
		total++
		if c.Conforms(g) != nil {
			return true
		}
		conforming++
		return visit(g)
	})
	return total, conforming
}

// EnumerationSize returns the number of graphs EnumerateGraphs visits for n
// vertices over f fields: (n+1)^(n·f).  Callers use it to pick the largest
// bound that fits an enumeration budget.
func EnumerationSize(n, f int) int {
	size := 1
	for i := 0; i < n*f; i++ {
		size *= n + 1
		if size < 0 || size > 1<<40 {
			return 1 << 40 // saturate, avoids overflow for silly inputs
		}
	}
	return size
}

// Clone returns a deep copy of the graph, so a destructive program can run
// repeatedly against one enumerated shape.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	for f, m := range g.succ {
		for v, w := range m {
			c.SetEdge(v, f, w)
		}
	}
	return c
}
