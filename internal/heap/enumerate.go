package heap

// Bounded small-heap enumeration, after Charatonik & Witkowski: for the
// small vertex counts that matter in practice, every possible pointer
// structure can be enumerated outright and used as an exhaustive ground
// truth.  The soundness oracle for the path-sensitivity layer runs guarded
// programs concretely over every conforming shape and checks that no run
// contradicts a guard-upgraded verdict.

// EnumerateGraphs calls visit with every concrete heap on exactly n
// vertices over the given pointer fields: each field of each vertex either
// dangles (nil) or points at one of the n vertices.  Graphs are visited in
// a fixed deterministic order; visit returning false stops the enumeration.
// The count is (n+1)^(n*len(fields)), so callers keep n and the field set
// small (n <= 4 with one or two fields is instant).
//
// Each visited graph is freshly allocated — the callback may mutate or
// retain it.
func EnumerateGraphs(n int, fields []string, visit func(*Graph) bool) {
	slots := n * len(fields)
	choice := make([]int, slots) // 0 = nil, k > 0 = vertex k-1
	for {
		g := New(n)
		for s, c := range choice {
			if c > 0 {
				g.SetEdge(Vertex(s/len(fields)), fields[s%len(fields)], Vertex(c-1))
			}
		}
		if !visit(g) {
			return
		}
		i := 0
		for ; i < slots; i++ {
			choice[i]++
			if choice[i] <= n {
				break
			}
			choice[i] = 0
		}
		if i == slots {
			return
		}
	}
}

// Clone returns a deep copy of the graph, so a destructive program can run
// repeatedly against one enumerated shape.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	for f, m := range g.succ {
		for v, w := range m {
			c.SetEdge(v, f, w)
		}
	}
	return c
}
