// Package oracle is the bounded small-heap ground-truth oracle, promoted
// out of internal/lint's test suite into a reusable API: enumerate every
// concrete heap shape up to a vertex bound (package heap's
// Charatonik–Witkowski-style EnumerateGraphs), keep the shapes that satisfy
// the program's declared axioms, run a function concretely on each of them
// from every root under every boolean input, and hand the resulting traces
// to the caller.
//
// Two clients ride on it: the path-sensitivity soundness oracle (`make
// race-guards`), which asserts that guard-upgraded verdicts never coexist
// with a concrete run reaching both accesses, and the scenario farm
// (internal/scenario, cmd/aptfuzz), which cross-checks every batched prover
// verdict against exhaustive small-heap execution.
package oracle

import (
	"fmt"

	"repro/internal/heap"
	"repro/internal/interp"
	"repro/internal/lang"
)

// Config bounds one sweep.
type Config struct {
	// Fn names the function to run; empty selects the program's only
	// function.
	Fn string
	// MaxVertices bounds the heap enumeration: shapes on 1..MaxVertices
	// vertices are swept (default 3).  The count is (n+1)^(n·fields), so
	// callers keep this small.
	MaxVertices int
	// MaxSteps bounds each concrete execution (default 10000).
	MaxSteps int
	// Checker optionally pre-compiles the conformance check.  Nil builds
	// one from the program's first struct's axioms.
	Checker *heap.Checker
}

// Run is one concrete execution the sweep visited.
type Run struct {
	// Graph is the heap the run executed against (already mutated by the
	// run; enumerate order is deterministic).
	Graph *heap.Graph
	// Args are the concrete arguments, index-aligned with the function's
	// parameters: vertices for pointer parameters, 0/1 for the rest.
	Args []interp.Value
	// Trace is the recorded label-access trace.
	Trace *interp.Trace
}

// ForEachRun enumerates every axiom-conforming heap of the program's first
// struct up to cfg.MaxVertices and runs the function on (a clone of) each
// shape under every assignment of vertices to pointer parameters and every
// boolean assignment to the remaining parameters, calling visit with each
// completed run.  visit returning false stops the sweep.  The total number
// of completed runs is returned; a run failing (null dereference, exhausted
// step budget) aborts the sweep with an error.
func ForEachRun(prog *lang.Program, cfg Config, visit func(Run) bool) (int, error) {
	if len(prog.Structs) == 0 {
		return 0, fmt.Errorf("oracle: program declares no struct")
	}
	st := prog.Structs[0]
	if st.Axioms == nil {
		return 0, fmt.Errorf("oracle: struct %s declares no axioms", st.Name)
	}
	fnName := cfg.Fn
	if fnName == "" {
		if len(prog.Funcs) != 1 {
			return 0, fmt.Errorf("oracle: program has %d functions; name one", len(prog.Funcs))
		}
		fnName = prog.Funcs[0].Name
	}
	fn := prog.Func(fnName)
	if fn == nil {
		return 0, fmt.Errorf("oracle: function %q not found", fnName)
	}
	maxV := cfg.MaxVertices
	if maxV <= 0 {
		maxV = 3
	}
	maxSteps := cfg.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 10000
	}
	checker := cfg.Checker
	if checker == nil {
		checker = heap.NewChecker(st.Axioms, st.PointerFields()...)
	}

	var ptrIdx, numIdx []int
	for i, p := range fn.Params {
		if p.Type.IsPointerToStruct() {
			ptrIdx = append(ptrIdx, i)
		} else {
			numIdx = append(numIdx, i)
		}
	}

	runs := 0
	var sweepErr error
	for n := 1; n <= maxV; n++ {
		heap.EnumerateConforming(n, st.PointerFields(), checker, func(g *heap.Graph) bool {
			more := forEachArgs(n, fn, ptrIdx, numIdx, func(args []interp.Value) bool {
				gc := g.Clone()
				in := interp.New(prog, gc, interp.Options{MaxSteps: maxSteps})
				_, tr, err := in.Run(fnName, args...)
				if err != nil {
					sweepErr = fmt.Errorf("oracle: %s on a conforming %d-vertex heap with args %v: %w",
						fnName, n, args, err)
					return false
				}
				runs++
				return visit(Run{Graph: gc, Args: args, Trace: tr})
			})
			return more && sweepErr == nil
		})
		if sweepErr != nil {
			return runs, sweepErr
		}
	}
	return runs, nil
}

// forEachArgs enumerates argument vectors: every assignment of the n
// vertices to pointer parameters crossed with every 0/1 assignment to the
// remaining parameters.
func forEachArgs(n int, fn *lang.FuncDecl, ptrIdx, numIdx []int, visit func([]interp.Value) bool) bool {
	ptrChoice := make([]int, len(ptrIdx))
	for {
		boolChoice := 0
		for boolChoice < 1<<len(numIdx) {
			args := make([]interp.Value, len(fn.Params))
			for k, i := range ptrIdx {
				args[i] = interp.Ptr(heap.Vertex(ptrChoice[k]))
			}
			for k, i := range numIdx {
				args[i] = interp.Num(float64((boolChoice >> k) & 1))
			}
			if !visit(args) {
				return false
			}
			boolChoice++
		}
		i := 0
		for ; i < len(ptrChoice); i++ {
			ptrChoice[i]++
			if ptrChoice[i] < n {
				break
			}
			ptrChoice[i] = 0
		}
		if i == len(ptrChoice) {
			return true
		}
	}
}

// SweepResult summarizes a two-label sweep.
type SweepResult struct {
	// Runs is the number of concrete executions swept.
	Runs int
	// BothReached reports whether any single run recorded events at both
	// labels.
	BothReached bool
	// Conflict reports whether any run produced a conflicting access pair
	// across the two labels: same vertex, same non-empty field, at least
	// one write.
	Conflict bool
}

// SweepLabels runs the function over every conforming heap up to the vertex
// bound, from every root, under every boolean input, and reports whether
// any single run reached both labels and whether any run produced a
// conflicting access pair between them.  This is the `make race-guards`
// soundness oracle: a guard-upgraded No claims the two accesses lie on
// mutually exclusive paths, so BothReached (and a fortiori Conflict) must
// be false for it.
func SweepLabels(prog *lang.Program, fnName, labelA, labelB string, maxVertices int) (SweepResult, error) {
	var res SweepResult
	runs, err := ForEachRun(prog, Config{Fn: fnName, MaxVertices: maxVertices}, func(r Run) bool {
		ea, eb := r.Trace.At(labelA), r.Trace.At(labelB)
		if len(ea) > 0 && len(eb) > 0 {
			res.BothReached = true
		}
		for _, x := range ea {
			for _, y := range eb {
				if x.Vertex == y.Vertex && x.Field == y.Field && x.Field != "" && (x.IsWrite || y.IsWrite) {
					res.Conflict = true
				}
			}
		}
		return true
	})
	res.Runs = runs
	if err != nil {
		return res, err
	}
	if runs == 0 {
		return res, fmt.Errorf("oracle: no conforming heaps enumerated up to %d vertices", maxVertices)
	}
	return res, nil
}
