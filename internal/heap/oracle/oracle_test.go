package oracle

import (
	"strings"
	"testing"

	"repro/internal/lang"
)

const listSrc = `
struct N {
	struct N *next;
	int v;
	axioms {
		A1: forall p, p.next+ <> p.eps;
	}
};

void touch(struct N *h, int w) {
	struct N *t;
	t = h->next;
	if (t == NULL) {
		return;
	}
	if (w) {
		U: t->v = 1;
	}
	if (!w) {
		S: h->v = t->v;
	}
}
`

func parse(t *testing.T, src string) *lang.Program {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestForEachRunCounts(t *testing.T) {
	prog := parse(t, listSrc)
	// Acyclic single-field heaps: n=1 has 1 conforming shape, n=2 has 3.
	// Each shape is run from every root under w ∈ {0, 1}:
	// 1·(1·2) + 3·(2·2) = 14 runs.
	runs, err := ForEachRun(prog, Config{MaxVertices: 2}, func(Run) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if runs != 14 {
		t.Fatalf("runs = %d, want 14", runs)
	}
}

func TestForEachRunEarlyStop(t *testing.T) {
	prog := parse(t, listSrc)
	visited := 0
	runs, err := ForEachRun(prog, Config{MaxVertices: 2}, func(Run) bool {
		visited++
		return visited < 3
	})
	if err != nil {
		t.Fatal(err)
	}
	if visited != 3 || runs != 3 {
		t.Fatalf("visited %d runs (reported %d), want the sweep to stop after 3", visited, runs)
	}
}

func TestSweepLabelsExclusiveGuards(t *testing.T) {
	prog := parse(t, listSrc)
	res, err := SweepLabels(prog, "touch", "U", "S", 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs == 0 {
		t.Fatal("sweep did no runs")
	}
	// U and S sit under opposite-polarity guards of an unchanging variable:
	// no single run reaches both.
	if res.BothReached || res.Conflict {
		t.Fatalf("exclusive guards: BothReached=%v Conflict=%v, want false/false", res.BothReached, res.Conflict)
	}
}

func TestSweepLabelsDetectsConflict(t *testing.T) {
	// Same-polarity variant: with w=1 both labels run and both touch t->v.
	src := strings.Replace(listSrc, "if (!w) {", "if (w) {", 1)
	prog := parse(t, src)
	res, err := SweepLabels(prog, "touch", "U", "S", 3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.BothReached {
		t.Fatal("same-polarity guards: expected a run reaching both labels")
	}
	// U writes t->v, S reads t->v: same vertex, same field, one write.
	if !res.Conflict {
		t.Fatal("same-polarity guards: expected a conflicting access pair")
	}
}

func TestForEachRunEnumeratesAllPointerAssignments(t *testing.T) {
	src := `
struct N {
	struct N *next;
	int v;
	axioms {
		A1: forall p, p.next+ <> p.eps;
	}
};

void two(struct N *a, struct N *b) {
	A: a->v = 1;
	B: b->v = 2;
}
`
	prog := parse(t, src)
	type pair struct{ a, b int }
	seen := map[pair]bool{}
	_, err := ForEachRun(prog, Config{MaxVertices: 2, Fn: "two"}, func(r Run) bool {
		ea, eb := r.Trace.At("A"), r.Trace.At("B")
		if len(ea) == 1 && len(eb) == 1 {
			seen[pair{int(ea[0].Vertex), int(eb[0].Vertex)}] = true
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	// On the 2-vertex shapes each pointer parameter independently ranges
	// over both vertices — all four (a, b) assignments must appear, which
	// the old single-root sweep (same vertex for every pointer parameter)
	// could not produce.
	for _, want := range []pair{{0, 0}, {0, 1}, {1, 0}, {1, 1}} {
		if !seen[want] {
			t.Errorf("pointer assignment a=%d b=%d never executed", want.a, want.b)
		}
	}
}

func TestForEachRunErrors(t *testing.T) {
	prog := parse(t, listSrc)
	if _, err := ForEachRun(prog, Config{Fn: "nope"}, func(Run) bool { return true }); err == nil {
		t.Error("unknown function accepted")
	}

	noAxioms := parse(t, `
struct N {
	struct N *next;
	int v;
};

void f(struct N *h) {
	S: h->v = 1;
}
`)
	if _, err := ForEachRun(noAxioms, Config{}, func(Run) bool { return true }); err == nil {
		t.Error("axiom-free struct accepted — the oracle would sweep nothing meaningful")
	}

	// A runtime failure (null dereference with no guard) aborts the sweep.
	crash := parse(t, `
struct N {
	struct N *next;
	int v;
	axioms {
		A1: forall p, p.next+ <> p.eps;
	}
};

void f(struct N *h) {
	struct N *t;
	t = h->next;
	S: t->v = 1;
}
`)
	if _, err := ForEachRun(crash, Config{MaxVertices: 1}, func(Run) bool { return true }); err == nil {
		t.Error("null-dereferencing program swept without error")
	}
}
