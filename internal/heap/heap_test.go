package heap

import (
	"math/rand"
	"testing"

	"repro/internal/axiom"
	"repro/internal/pathexpr"
)

func TestEvalOnLeafLinkedTree(t *testing.T) {
	// Depth-2 complete tree: root 0; internal 1,2; leaves 3,4,5,6 chained by N.
	g, root := BuildLeafLinkedTree(2)
	cases := []struct {
		path string
		want []Vertex
	}{
		{"L", []Vertex{1}},
		{"R", []Vertex{2}},
		{"L.L", []Vertex{3}},
		{"L.L.N", []Vertex{4}},
		{"L.R.N", []Vertex{5}},
		{"L.L.N.N", []Vertex{5}},
		{"(L|R)", []Vertex{1, 2}},
		{"L.L.N*", []Vertex{3, 4, 5, 6}},
		{"ε", []Vertex{0}},
	}
	for _, c := range cases {
		got := g.Eval(root, pathexpr.MustParse(c.path))
		if len(got) != len(c.want) {
			t.Errorf("Eval(%s) = %v, want %v", c.path, keys(got), c.want)
			continue
		}
		for _, v := range c.want {
			if !got[v] {
				t.Errorf("Eval(%s) = %v, want %v", c.path, keys(got), c.want)
			}
		}
	}
}

// TestFigure3_AxiomsHoldOnConcreteTrees model-checks Figure 3's four axioms
// on complete leaf-linked trees of several depths.
func TestFigure3_AxiomsHoldOnConcreteTrees(t *testing.T) {
	for depth := 0; depth <= 4; depth++ {
		g, _ := BuildLeafLinkedTree(depth)
		if err := g.CheckSet(axiom.LeafLinkedBinaryTree()); err != nil {
			t.Errorf("depth %d: %v", depth, err)
		}
	}
}

// TestFigure3_SameVertexConfluence reproduces §2.4's observation: LLNN and
// LRN lead to the same vertex, which is why Larus-Hilfinger must widen.
func TestFigure3_SameVertexConfluence(t *testing.T) {
	g, root := BuildLeafLinkedTree(2)
	if g.Disjoint(root, pathexpr.MustParse("L.L.N.N"), root, pathexpr.MustParse("L.R.N")) {
		t.Error("LLNN and LRN should reach the same vertex in a depth-2 tree")
	}
	if !g.Disjoint(root, pathexpr.MustParse("L.L.N"), root, pathexpr.MustParse("L.R.N")) {
		t.Error("LLN and LRN must reach different vertices")
	}
}

func TestListAndRingAxioms(t *testing.T) {
	g, _ := BuildList(6, "next")
	if err := g.CheckSet(axiom.SinglyLinkedList("next")); err != nil {
		t.Errorf("list: %v", err)
	}
	ring, _ := BuildRing(3, "next")
	if err := ring.CheckSet(axiom.RingOf("next", 3)); err != nil {
		t.Errorf("ring: %v", err)
	}
	// A ring violates the acyclic list axioms.
	if err := ring.CheckSet(axiom.SinglyLinkedList("next")); err == nil {
		t.Error("ring should violate acyclic list axioms")
	}
	dring, _ := BuildDoublyLinkedRing(4, "next", "prev")
	if err := dring.CheckSet(axiom.CyclicDoublyLinkedRing("next", "prev")); err != nil {
		t.Errorf("doubly linked ring: %v", err)
	}
}

func TestBinaryTreeAxiomsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(20)
		g, _ := RandomBinaryTree(rng, n, "l", "r")
		if err := g.CheckSet(axiom.BinaryTree("l", "r")); err != nil {
			t.Fatalf("trial %d (n=%d): %v", trial, n, err)
		}
	}
}

func TestRandomLeafLinkedTreeSatisfiesAxioms(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(16)
		g, _ := RandomLeafLinkedTree(rng, n)
		if err := g.CheckSet(axiom.LeafLinkedBinaryTree()); err != nil {
			t.Fatalf("trial %d (n=%d): %v", trial, n, err)
		}
	}
}

// TestAppendixA_AxiomsHoldOnConcreteMatrices model-checks the twelve
// Appendix A axioms on deterministic and random sparse matrices.
func TestAppendixA_AxiomsHoldOnConcreteMatrices(t *testing.T) {
	g, _ := BuildSparseMatrix(3, 3, [][2]int{{0, 0}, {0, 2}, {1, 1}, {2, 0}, {2, 2}})
	if err := g.CheckSet(axiom.SparseMatrix()); err != nil {
		t.Fatalf("deterministic matrix: %v", err)
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		r, c := 1+rng.Intn(4), 1+rng.Intn(4)
		pos := RandomSparsePattern(rng, r, c, rng.Intn(r*c+1))
		m, _ := BuildSparseMatrix(r, c, pos)
		if err := m.CheckSet(axiom.SparseMatrix()); err != nil {
			t.Fatalf("trial %d (%dx%d, %d nz): %v", trial, r, c, len(pos), err)
		}
	}
}

// TestAppendixA_Corollary checks the matrix-disjointness corollary on two
// separate matrices living in one heap.
func TestAppendixA_Corollary(t *testing.T) {
	a, la := BuildSparseMatrix(2, 2, [][2]int{{0, 0}, {1, 1}})
	// Graft a second matrix into the same graph with shifted vertex ids.
	offset := a.NumVertices()
	b, lb := BuildSparseMatrix(2, 2, [][2]int{{0, 1}, {1, 0}})
	for i := 0; i < b.NumVertices(); i++ {
		a.AddVertex()
	}
	for _, f := range b.Fields() {
		for v := Vertex(0); int(v) < b.NumVertices(); v++ {
			if w, ok := b.Edge(v, f); ok {
				a.SetEdge(v+Vertex(offset), f, w+Vertex(offset))
			}
		}
	}
	cor := axiom.SparseMatrixDisjointness()
	// The corollary is a ∀p<>q axiom; check the two roots specifically.
	if !a.Disjoint(la.Root, cor.RE1, lb.Root+Vertex(offset), cor.RE2) {
		t.Error("two distinct matrices should reach disjoint structures")
	}
	if err := a.CheckAxiom(cor); err != nil {
		t.Errorf("corollary fails on combined heap: %v", err)
	}
}

func TestSparseLayoutEdges(t *testing.T) {
	g, lay := BuildSparseMatrix(2, 3, [][2]int{{0, 0}, {0, 2}, {1, 0}})
	// Row 0 chain: (0,0) -ncolE-> (0,2).
	e00, e02, e10 := lay.Elem[[2]int{0, 0}], lay.Elem[[2]int{0, 2}], lay.Elem[[2]int{1, 0}]
	if w, ok := g.Edge(e00, "ncolE"); !ok || w != e02 {
		t.Errorf("row chain broken: %v %v", w, ok)
	}
	// Column 0 chain: (0,0) -nrowE-> (1,0).
	if w, ok := g.Edge(e00, "nrowE"); !ok || w != e10 {
		t.Errorf("column chain broken: %v %v", w, ok)
	}
	if w, ok := g.Edge(lay.RowHeaders[0], "relem"); !ok || w != e00 {
		t.Errorf("relem broken: %v %v", w, ok)
	}
	if w, ok := g.Edge(lay.ColHeaders[2], "celem"); !ok || w != e02 {
		t.Errorf("celem broken: %v %v", w, ok)
	}
	if w, ok := g.Edge(lay.Root, "rows"); !ok || w != lay.RowHeaders[0] {
		t.Errorf("rows broken: %v %v", w, ok)
	}
	// Empty rows/cols still have headers, chained.
	if w, ok := g.Edge(lay.RowHeaders[0], "nrowH"); !ok || w != lay.RowHeaders[1] {
		t.Errorf("nrowH broken: %v %v", w, ok)
	}
}

func TestCheckAxiomViolations(t *testing.T) {
	// A "tree" whose children collide violates A1-style axioms.
	g := New(2)
	g.SetEdge(0, "L", 1)
	g.SetEdge(0, "R", 1)
	if err := g.CheckAxiom(axiom.MustParse("forall p, p.L <> p.R")); err == nil {
		t.Error("shared child should violate ∀p, p.L <> p.R")
	}
	// A cycle violates acyclicity.
	ring, _ := BuildRing(3, "f")
	if err := ring.CheckAxiom(axiom.MustParse("forall p, p.f+ <> p.ε")); err == nil {
		t.Error("ring should violate acyclicity")
	}
	// Equality axiom violated on a non-ring.
	line, _ := BuildList(3, "f")
	if err := line.CheckAxiom(axiom.MustParse("forall p, p.f.f.f = p.ε")); err == nil {
		t.Error("line should violate ring equality")
	}
}

func TestWalkWord(t *testing.T) {
	g, root := BuildLeafLinkedTree(2)
	v, ok := g.WalkWord(root, []string{"L", "L", "N"})
	if !ok || v != 4 {
		t.Errorf("WalkWord = %v, %v", v, ok)
	}
	if _, ok := g.WalkWord(root, []string{"N"}); ok {
		t.Error("root has no N edge")
	}
}

func TestSetAndClearEdge(t *testing.T) {
	g := New(2)
	g.SetEdge(0, "f", 1)
	if _, ok := g.Edge(0, "f"); !ok {
		t.Fatal("edge missing")
	}
	g.ClearEdge(0, "f")
	if _, ok := g.Edge(0, "f"); ok {
		t.Fatal("edge not cleared")
	}
	g.ClearEdge(0, "g") // clearing a missing field is a no-op
}

func TestEvalUndeclaredFieldIsEmptyish(t *testing.T) {
	g, root := BuildList(3, "next")
	got := g.Eval(root, pathexpr.MustParse("zzz"))
	if len(got) != 0 {
		t.Errorf("Eval over unknown field = %v", keys(got))
	}
}

func TestSkipListConformsAndInterleaves(t *testing.T) {
	levels := []string{"n0", "n1", "n2"}
	g, root := BuildSkipList(9, levels)
	if err := g.CheckSet(axiom.SkipList(levels...)); err != nil {
		t.Fatalf("skip list violates its axioms: %v", err)
	}
	// The express hop n1 lands exactly where two base hops do — the
	// confluence that makes n1 vs n0.n0 a real dependence.
	a := g.Eval(root, pathexpr.MustParse("n1"))
	b := g.Eval(root, pathexpr.MustParse("n0.n0"))
	if len(a) != 1 || len(b) != 1 {
		t.Fatalf("hops = %v, %v", a, b)
	}
	for v := range a {
		if !b[v] {
			t.Error("n1 and n0.n0 should land on the same vertex")
		}
	}
}
