package heap

import (
	"math/rand"
	"sort"
)

// This file builds the concrete structures used in the paper: linked lists,
// binary trees, Figure 3's leaf-linked binary trees, and Figure 6's
// orthogonal-list sparse matrices — plus randomized variants for property
// tests.  Every builder returns the graph and its root vertex.

// BuildList builds an acyclic singly linked list of n vertices over the
// given field.
func BuildList(n int, next string) (*Graph, Vertex) {
	g := New(n)
	for i := 0; i < n-1; i++ {
		g.SetEdge(Vertex(i), next, Vertex(i+1))
	}
	return g, 0
}

// BuildRing builds a circular singly linked list of n vertices.
func BuildRing(n int, next string) (*Graph, Vertex) {
	g, root := BuildList(n, next)
	if n > 0 {
		g.SetEdge(Vertex(n-1), next, root)
	}
	return g, root
}

// BuildDoublyLinkedRing builds a circular doubly linked list.
func BuildDoublyLinkedRing(n int, next, prev string) (*Graph, Vertex) {
	g, root := BuildRing(n, next)
	for i := 0; i < n; i++ {
		g.SetEdge(Vertex((i+1)%n), prev, Vertex(i))
	}
	return g, root
}

// BuildFullBinaryTree builds a complete binary tree of the given depth
// (depth 0 is a single vertex) over child fields l and r.  Vertices are in
// heap order: children of i are 2i+1 and 2i+2.
func BuildFullBinaryTree(depth int, l, r string) (*Graph, Vertex) {
	n := (1 << (depth + 1)) - 1
	g := New(n)
	for i := 0; 2*i+2 < n; i++ {
		g.SetEdge(Vertex(i), l, Vertex(2*i+1))
		g.SetEdge(Vertex(i), r, Vertex(2*i+2))
	}
	return g, 0
}

// BuildLeafLinkedTree builds Figure 3's structure: a complete binary tree of
// the given depth with fields L and R, whose leaves are chained
// left-to-right with N.
func BuildLeafLinkedTree(depth int) (*Graph, Vertex) {
	g, root := BuildFullBinaryTree(depth, "L", "R")
	first := (1 << depth) - 1
	last := (1 << (depth + 1)) - 2
	for i := first; i < last; i++ {
		g.SetEdge(Vertex(i), "N", Vertex(i+1))
	}
	return g, root
}

// RandomBinaryTree builds a random binary tree with n vertices (random
// shape) over fields l and r.
func RandomBinaryTree(rng *rand.Rand, n int, l, r string) (*Graph, Vertex) {
	g := New(n)
	type slot struct {
		v     Vertex
		field string
	}
	// Vertices are attached one at a time to a random open slot.
	open := []slot{{0, l}, {0, r}}
	for i := 1; i < n; i++ {
		k := rng.Intn(len(open))
		s := open[k]
		open[k] = open[len(open)-1]
		open = open[:len(open)-1]
		g.SetEdge(s.v, s.field, Vertex(i))
		open = append(open, slot{Vertex(i), l}, slot{Vertex(i), r})
	}
	return g, 0
}

// RandomLeafLinkedTree builds a random-shaped binary tree over L/R whose
// leaves are N-chained in left-to-right order, satisfying Figure 3's axioms.
func RandomLeafLinkedTree(rng *rand.Rand, n int) (*Graph, Vertex) {
	g, root := RandomBinaryTree(rng, n, "L", "R")
	// Collect leaves in in-order.
	var leaves []Vertex
	var walk func(v Vertex)
	walk = func(v Vertex) {
		lc, lok := g.Edge(v, "L")
		rc, rok := g.Edge(v, "R")
		if !lok && !rok {
			leaves = append(leaves, v)
			return
		}
		if lok {
			walk(lc)
		}
		if rok {
			walk(rc)
		}
	}
	walk(root)
	for i := 0; i+1 < len(leaves); i++ {
		g.SetEdge(leaves[i], "N", leaves[i+1])
	}
	return g, root
}

// SparseLayout maps the vertices of a built sparse matrix so tests and the
// analysis harness can address specific parts of the structure.
type SparseLayout struct {
	Root       Vertex
	RowHeaders []Vertex
	ColHeaders []Vertex
	// Elem[i][j] is the vertex of element (i, j); present only for nonzeros.
	Elem map[[2]int]Vertex
}

// BuildSparseMatrix builds Figure 6's orthogonal-list sparse matrix over the
// Appendix A field names: the root has rows/cols edges to the first row and
// column headers; headers chain with nrowH/ncolH and point at their first
// element with relem/celem; elements chain along their row with ncolE and
// along their column with nrowE.  positions lists the nonzero (row, col)
// coordinates; rows or columns without nonzeros still get headers.
func BuildSparseMatrix(nrows, ncols int, positions [][2]int) (*Graph, *SparseLayout) {
	// Deduplicate and sort positions row-major.
	seen := make(map[[2]int]bool, len(positions))
	var pos [][2]int
	for _, p := range positions {
		if p[0] < 0 || p[0] >= nrows || p[1] < 0 || p[1] >= ncols || seen[p] {
			continue
		}
		seen[p] = true
		pos = append(pos, p)
	}
	sort.Slice(pos, func(i, j int) bool {
		if pos[i][0] != pos[j][0] {
			return pos[i][0] < pos[j][0]
		}
		return pos[i][1] < pos[j][1]
	})

	n := 1 + nrows + ncols + len(pos)
	g := New(n)
	lay := &SparseLayout{
		Root:       0,
		RowHeaders: make([]Vertex, nrows),
		ColHeaders: make([]Vertex, ncols),
		Elem:       make(map[[2]int]Vertex, len(pos)),
	}
	for i := 0; i < nrows; i++ {
		lay.RowHeaders[i] = Vertex(1 + i)
	}
	for j := 0; j < ncols; j++ {
		lay.ColHeaders[j] = Vertex(1 + nrows + j)
	}
	for k, p := range pos {
		lay.Elem[p] = Vertex(1 + nrows + ncols + k)
	}

	if nrows > 0 {
		g.SetEdge(lay.Root, "rows", lay.RowHeaders[0])
	}
	if ncols > 0 {
		g.SetEdge(lay.Root, "cols", lay.ColHeaders[0])
	}
	for i := 0; i+1 < nrows; i++ {
		g.SetEdge(lay.RowHeaders[i], "nrowH", lay.RowHeaders[i+1])
	}
	for j := 0; j+1 < ncols; j++ {
		g.SetEdge(lay.ColHeaders[j], "ncolH", lay.ColHeaders[j+1])
	}

	// Row chains (ncolE) and header relem edges.
	var prevInRow = make(map[int]Vertex)
	for _, p := range pos {
		v := lay.Elem[p]
		if prev, ok := prevInRow[p[0]]; ok {
			g.SetEdge(prev, "ncolE", v)
		} else {
			g.SetEdge(lay.RowHeaders[p[0]], "relem", v)
		}
		prevInRow[p[0]] = v
	}
	// Column chains (nrowE) and header celem edges: iterate column-major.
	colMajor := append([][2]int{}, pos...)
	sort.Slice(colMajor, func(i, j int) bool {
		if colMajor[i][1] != colMajor[j][1] {
			return colMajor[i][1] < colMajor[j][1]
		}
		return colMajor[i][0] < colMajor[j][0]
	})
	var prevInCol = make(map[int]Vertex)
	for _, p := range colMajor {
		v := lay.Elem[p]
		if prev, ok := prevInCol[p[1]]; ok {
			g.SetEdge(prev, "nrowE", v)
		} else {
			g.SetEdge(lay.ColHeaders[p[1]], "celem", v)
		}
		prevInCol[p[1]] = v
	}
	return g, lay
}

// RandomSparsePattern draws k distinct positions in an nrows×ncols grid.
func RandomSparsePattern(rng *rand.Rand, nrows, ncols, k int) [][2]int {
	seen := make(map[[2]int]bool)
	var out [][2]int
	for len(out) < k && len(out) < nrows*ncols {
		p := [2]int{rng.Intn(nrows), rng.Intn(ncols)}
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// BuildSkipList builds a deterministic skip list of n vertices: level field
// levels[0] chains every vertex; levels[k] links every 2^k-th vertex.
func BuildSkipList(n int, levels []string) (*Graph, Vertex) {
	g := New(n)
	for k, f := range levels {
		stride := 1 << k
		for i := 0; i+stride < n; i += stride {
			g.SetEdge(Vertex(i), f, Vertex(i+stride))
		}
	}
	return g, 0
}
