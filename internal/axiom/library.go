package axiom

import (
	"fmt"

	"repro/internal/pathexpr"
)

// This file carries the axiom sets used throughout the paper, plus the other
// regular structures §3.1 mentions.  All are built with the parser so the
// texts below read exactly like the paper.

// SinglyLinkedList returns axioms for an acyclic singly linked list over the
// given next field: next edges are injective and never return to their
// origin.
func SinglyLinkedList(next string) *Set {
	return MustParseSet("SinglyLinkedList", fmt.Sprintf(`
		forall p <> q, p.%[1]s <> q.%[1]s
		forall p, p.%[1]s+ <> p.ε
	`, next))
}

// CircularList returns axioms for a circular singly linked list: next edges
// are injective, but cycles are allowed (so no acyclicity axiom).
func CircularList(next string) *Set {
	return MustParseSet("CircularList", fmt.Sprintf(`
		forall p <> q, p.%[1]s <> q.%[1]s
	`, next))
}

// RingOf returns axioms for a circular list with exactly n vertices: the
// CircularList axioms plus the SameSrcEqual cycle axiom
// ∀p, p.next^n = p.ε, which the prover's prefix-equality reasoning uses.
func RingOf(next string, n int) *Set {
	s := CircularList(next)
	s.StructName = fmt.Sprintf("Ring%d", n)
	cycle := make([]pathexpr.Expr, n)
	for i := range cycle {
		cycle[i] = pathexpr.F(next)
	}
	s.Add(Axiom{
		Form: SameSrcEqual,
		RE1:  pathexpr.Cat(cycle...),
		RE2:  pathexpr.Eps,
	})
	// Vertices strictly inside the cycle are distinct from the origin.
	for k := 1; k < n; k++ {
		walk := make([]pathexpr.Expr, k)
		for i := range walk {
			walk[i] = pathexpr.F(next)
		}
		s.Add(Axiom{
			Form: SameSrcDisjoint,
			RE1:  pathexpr.Cat(walk...),
			RE2:  pathexpr.Eps,
		})
	}
	return s
}

// DoublyLinkedList returns axioms for an acyclic doubly linked list.  The
// inverse relationship between next and prev cannot be stated exactly with
// set-equality axioms at the endpoints of an acyclic list (p.next.prev is
// empty at the tail), so the set describes each direction as an injective,
// acyclic chain and marks the two chains as converses only via disjointness
// of nontrivial mixed cycles.
func DoublyLinkedList(next, prev string) *Set {
	return MustParseSet("DoublyLinkedList", fmt.Sprintf(`
		forall p <> q, p.%[1]s <> q.%[1]s
		forall p <> q, p.%[2]s <> q.%[2]s
		forall p, p.%[1]s+ <> p.ε
		forall p, p.%[2]s+ <> p.ε
		forall p, p.%[1]s <> p.%[2]s
	`, next, prev))
}

// CyclicDoublyLinkedRing returns axioms for a doubly linked ring, where the
// converse relation next.prev = ε holds exactly and is expressible as the
// paper's third axiom form.
func CyclicDoublyLinkedRing(next, prev string) *Set {
	return MustParseSet("CyclicDoublyLinkedRing", fmt.Sprintf(`
		forall p <> q, p.%[1]s <> q.%[1]s
		forall p <> q, p.%[2]s <> q.%[2]s
		forall p, p.%[1]s.%[2]s = p.ε
		forall p, p.%[2]s.%[1]s = p.ε
	`, next, prev))
}

// BinaryTree returns the classic three-axiom description of binary trees
// over child fields l and r: siblings differ, children are unshared, and no
// descending path returns to its origin.
func BinaryTree(l, r string) *Set {
	return MustParseSet("BinaryTree", fmt.Sprintf(`
		forall p, p.%[1]s <> p.%[2]s
		forall p <> q, p.(%[1]s|%[2]s) <> q.(%[1]s|%[2]s)
		forall p, p.(%[1]s|%[2]s)+ <> p.ε
	`, l, r))
}

// NaryTree returns tree axioms for an arbitrary child-field list — e.g.
// NaryTree("c0", "c1", "c2", "c3") describes the quadtrees of computational
// geometry and NaryTree over eight fields the octrees of N-body simulation
// (§1's motivating structures).
func NaryTree(children ...string) *Set {
	s := &Set{StructName: fmt.Sprintf("%dAryTree", len(children))}
	for i, f := range children {
		for _, g := range children[i+1:] {
			s.Add(Axiom{
				Form: SameSrcDisjoint,
				RE1:  pathexpr.F(f),
				RE2:  pathexpr.F(g),
			})
		}
	}
	alts := make([]pathexpr.Expr, len(children))
	for i, f := range children {
		alts[i] = pathexpr.F(f)
	}
	any := pathexpr.Or(alts...)
	s.Add(Axiom{Form: DiffSrcDisjoint, RE1: any, RE2: any})
	s.Add(Axiom{Form: SameSrcDisjoint, RE1: pathexpr.Rep1(any), RE2: pathexpr.Eps})
	return s
}

// LeafLinkedBinaryTree returns Figure 3's four axioms for a leaf-linked
// binary tree with child fields L and R and leaf-chain field N:
//
//	A1: ∀p, p.L <> p.R
//	A2: ∀p<>q, p.(L|R) <> q.(L|R)
//	A3: ∀p<>q, p.N <> q.N
//	A4: ∀p, p.(L|R|N)+ <> p.ε
func LeafLinkedBinaryTree() *Set {
	return MustParseSet("LLBinaryTree", `
		A1: forall p, p.L <> p.R
		A2: forall p <> q, p.(L|R) <> q.(L|R)
		A3: forall p <> q, p.N <> q.N
		A4: forall p, p.(L|R|N)+ <> p.ε
	`)
}

// SparseMatrixCore returns the three axioms §5 gives as sufficient for
// Theorem T:
//
//	A1: ∀p<>q, p.ncolE <> q.ncolE      (rows form linked lists)
//	A2: ∀p, p.ncolE+ <> p.nrowE+       (end of a row/col does not wrap)
//	A3: ∀p, p.(ncolE|nrowE)+ <> p.ε    (the sub-structure is acyclic)
func SparseMatrixCore() *Set {
	return MustParseSet("SparseMatrixCore", `
		A1: forall p <> q, p.ncolE <> q.ncolE
		A2: forall p, p.ncolE+ <> p.nrowE+
		A3: forall p, p.(ncolE|nrowE)+ <> p.ε
	`)
}

// SparseMatrix returns the twelve Appendix A axioms describing the full
// orthogonal-list sparse matrix of Figure 6.  Field names follow the
// appendix: matrix root fields rows/cols; header chain fields nrowH/ncolH;
// header-to-first-element fields relem/celem; element chain fields
// nrowE/ncolE.  (The appendix's acyclicity axiom spells the element fields
// "relems|celems" once; we use the declaration spelling relem/celem
// throughout.)
func SparseMatrix() *Set {
	return MustParseSet("SparseMatrix", `
		A1: forall p <> q, p.nrowE <> q.nrowE
		A2: forall p <> q, p.ncolE <> q.ncolE
		A3: forall p, p.nrowE <> p.ncolE
		A4: forall p, p.ncolE* <> p.nrowE+ncolE*
		A5: forall p, p.nrowE* <> p.ncolE+nrowE*
		A6: forall p <> q, p.nrowH <> q.nrowH
		A7: forall p <> q, p.ncolH <> q.ncolH
		A8: forall p <> q, p.relem(ncolE)* <> q.relem(ncolE)*
		A9: forall p <> q, p.celem(nrowE)* <> q.celem(nrowE)*
		A10: forall p <> q, p.rows <> q.nrowH
		A11: forall p <> q, p.cols <> q.ncolH
		A12: forall p, p.(rows|cols|relem|celem|nrowH|ncolH|nrowE|ncolE)+ <> p.ε
	`)
}

// SparseMatrixDisjointness returns Appendix A's closing corollary: distinct
// matrix roots reach disjoint structures.
func SparseMatrixDisjointness() Axiom {
	return MustParse(`forall p <> q,
		p.(rows|cols)(relem|celem|nrowH|ncolH|nrowE|ncolE)* <>
		q.(rows|cols)(relem|celem|nrowH|ncolH|nrowE|ncolE)*`)
}

// SkipList returns axioms for a skip list with the given level fields
// (level 0 is the full base chain; higher levels are sparser express
// chains over the same vertices).  Each level is injective, and no
// traversal over any mix of levels returns to its origin; higher-level hops
// always advance along the base order, which is exactly what makes the
// level chains interleave through shared vertices — the same interacting-
// chains situation as the sparse matrix (§5), here in the systems-software
// setting §1 mentions.
func SkipList(levels ...string) *Set {
	s := &Set{StructName: fmt.Sprintf("SkipList%d", len(levels))}
	for _, f := range levels {
		s.Add(Axiom{Form: DiffSrcDisjoint, RE1: pathexpr.F(f), RE2: pathexpr.F(f)})
	}
	alts := make([]pathexpr.Expr, len(levels))
	for i, f := range levels {
		alts[i] = pathexpr.F(f)
	}
	s.Add(Axiom{
		Form: SameSrcDisjoint,
		RE1:  pathexpr.Rep1(pathexpr.Or(alts...)),
		RE2:  pathexpr.Eps,
	})
	return s
}

// BPlusTree returns axioms for a leaf-linked B+-tree: an n-ary tree over the
// child fields plus a leaf-chain field threading the leaves in order.  It
// generalizes Figure 3's leaf-linked binary tree to arbitrary fan-out —
// distinct child fields of one node lead to disjoint subtrees, children and
// leaf-successors are unshared, and no traversal mixing descents with
// leaf-chain hops returns to its origin.
func BPlusTree(next string, children ...string) *Set {
	s := &Set{StructName: fmt.Sprintf("BPlusTree%d", len(children))}
	for i, f := range children {
		for _, g := range children[i+1:] {
			s.Add(Axiom{Form: SameSrcDisjoint, RE1: pathexpr.F(f), RE2: pathexpr.F(g)})
		}
	}
	alts := make([]pathexpr.Expr, len(children))
	for i, f := range children {
		alts[i] = pathexpr.F(f)
	}
	any := pathexpr.Or(alts...)
	s.Add(Axiom{Form: DiffSrcDisjoint, RE1: any, RE2: any})
	s.Add(Axiom{Form: DiffSrcDisjoint, RE1: pathexpr.F(next), RE2: pathexpr.F(next)})
	s.Add(Axiom{
		Form: SameSrcDisjoint,
		RE1:  pathexpr.Rep1(pathexpr.Or(append(append([]pathexpr.Expr{}, alts...), pathexpr.F(next))...)),
		RE2:  pathexpr.Eps,
	})
	return s
}

// ChainedHashTable returns axioms for a hash table with chaining: a table
// vertex fans out through the bucket fields to per-bucket collision chains
// linked by next.  Distinct buckets of one table reach disjoint chains (the
// hash partitions the keys), chain links are injective, and the whole
// structure is acyclic.
func ChainedHashTable(next string, buckets ...string) *Set {
	s := &Set{StructName: fmt.Sprintf("ChainedHashTable%d", len(buckets))}
	chain := pathexpr.Rep(pathexpr.F(next))
	for i, f := range buckets {
		for _, g := range buckets[i+1:] {
			s.Add(Axiom{
				Form: SameSrcDisjoint,
				RE1:  pathexpr.Cat(pathexpr.F(f), chain),
				RE2:  pathexpr.Cat(pathexpr.F(g), chain),
			})
		}
	}
	alts := make([]pathexpr.Expr, 0, len(buckets)+1)
	for _, f := range buckets {
		alts = append(alts, pathexpr.F(f))
	}
	s.Add(Axiom{Form: DiffSrcDisjoint, RE1: pathexpr.F(next), RE2: pathexpr.F(next)})
	s.Add(Axiom{
		Form: SameSrcDisjoint,
		RE1:  pathexpr.Rep1(pathexpr.Or(append(alts, pathexpr.F(next))...)),
		RE2:  pathexpr.Eps,
	})
	return s
}

// UnionFindForest returns the one-axiom description of a union-find forest
// over a parent field: parent chains terminate (roots hold a nil parent, the
// standard sentinel-free representation), so no chain returns to its origin.
// Injectivity deliberately does NOT hold — arbitrarily many children share a
// parent — which makes this the weakest library in the farm: the prover can
// lean only on acyclicity, and the differential oracle checks it claims
// nothing more.
func UnionFindForest(parent string) *Set {
	return MustParseSet("UnionFindForest", fmt.Sprintf(`
		A1: forall p, p.%[1]s+ <> p.ε
	`, parent))
}

// Deque returns axioms for a doubly linked deque: both link directions are
// injective and acyclic, and no vertex is its own neighbor in either
// direction.  Structurally this is DoublyLinkedList under the name deque —
// what distinguishes the deque family in the scenario farm is its workload
// (pushes and pops at both ends) rather than its shape invariants.
func Deque(next, prev string) *Set {
	s := DoublyLinkedList(next, prev)
	s.StructName = "Deque"
	return s
}

// TwoDRangeTree returns axioms for a two-dimensional range tree (§3.1): a
// leaf-linked tree whose leaves each own a second leaf-linked tree through
// an aux field.  Outer fields are L/R/N, inner fields are l/r/n.
func TwoDRangeTree() *Set {
	return MustParseSet("RangeTree2D", `
		forall p, p.L <> p.R
		forall p <> q, p.(L|R) <> q.(L|R)
		forall p <> q, p.N <> q.N
		forall p, p.l <> p.r
		forall p <> q, p.(l|r) <> q.(l|r)
		forall p <> q, p.n <> q.n
		forall p <> q, p.aux <> q.aux
		forall p, p.(L|R|N|l|r|n|aux)+ <> p.ε
		forall p <> q, p.aux(l|r|n)* <> q.aux(l|r|n)*
	`)
}
