package axiom

import (
	"hash/fnv"
	"testing"
)

// resetRegistryForTest swaps the process-global set-ID registry for a fresh
// one and returns a restore function, simulating a second process that
// never exchanged interning state with the first.  Existing Sets keep their
// memoized IDs (as live objects in a real process would); Sets constructed
// after the swap intern against the fresh registry.
func resetRegistryForTest(t *testing.T) func() {
	t.Helper()
	setIDs.mu.Lock()
	savedIDs, savedKeys, savedNext := setIDs.ids, setIDs.keys, setIDs.next
	setIDs.ids = make(map[string]uint64)
	setIDs.keys = make(map[uint64]string)
	setIDs.next = 0
	setIDs.mu.Unlock()
	return func() {
		setIDs.mu.Lock()
		setIDs.ids, setIDs.keys, setIDs.next = savedIDs, savedKeys, savedNext
		setIDs.mu.Unlock()
	}
}

// TestFingerprintStableAcrossRegistries is the cross-process identity
// contract behind the cluster router: axiom.Set.ID() is process-local by
// design (assigned in interning order by an append-only registry), so two
// processes that build the same sets in different orders disagree on IDs —
// but they must agree on Fingerprint64, which is a pure function of the
// canonical Key.  Ring placement and the snapshot/preload wire endpoints
// key on fingerprints for exactly this reason.
func TestFingerprintStableAcrossRegistries(t *testing.T) {
	mkTree := func() *Set { return LeafLinkedBinaryTree() }
	mkList := func() *Set {
		s := NewSet("List")
		s.Add(MustParse("forall p <> q, p.next <> q.next"))
		s.Add(MustParse("forall p, p.next+ <> p.eps"))
		return s
	}

	// "Process 1" interns tree first, then list.
	restore1 := resetRegistryForTest(t)
	tree1, list1 := mkTree(), mkList()
	treeID1, listID1 := tree1.ID(), list1.ID()
	treeFP1, listFP1 := tree1.Fingerprint64(), list1.Fingerprint64()
	restore1()

	// "Process 2" interns the same sets in the opposite order.
	restore2 := resetRegistryForTest(t)
	list2, tree2 := mkList(), mkTree()
	listID2, treeID2 := list2.ID(), tree2.ID()
	listFP2, treeFP2 := list2.Fingerprint64(), tree2.Fingerprint64()
	restore2()

	if tree1.Key() != tree2.Key() || list1.Key() != list2.Key() {
		t.Fatal("independently constructed sets disagree on canonical Key")
	}
	// The registries assigned IDs in opposite orders, so at least one of the
	// two sets carries different IDs across the "processes" — the property
	// that makes raw IDs unusable on the wire.
	if treeID1 == treeID2 && listID1 == listID2 {
		t.Errorf("IDs unexpectedly agree across independently seeded registries: tree %d/%d list %d/%d",
			treeID1, treeID2, listID1, listID2)
	}
	// Fingerprints are content hashes: they must agree exactly.
	if treeFP1 != treeFP2 {
		t.Errorf("tree fingerprints differ across registries: %#x vs %#x", treeFP1, treeFP2)
	}
	if listFP1 != listFP2 {
		t.Errorf("list fingerprints differ across registries: %#x vs %#x", listFP1, listFP2)
	}
	if treeFP1 == listFP1 {
		t.Errorf("distinct sets share fingerprint %#x", treeFP1)
	}
}

// TestFingerprint64IsFNV64aOfKey pins the fingerprint to the reference
// FNV-64a of the canonical Key, so a backend written in any language (or
// any future rewrite of this one) can reproduce ring placement.
func TestFingerprint64IsFNV64aOfKey(t *testing.T) {
	for _, set := range []*Set{LeafLinkedBinaryTree(), SparseMatrixCore()} {
		ref := fnv.New64a()
		ref.Write([]byte(set.Key()))
		if got, want := set.Fingerprint64(), ref.Sum64(); got != want {
			t.Errorf("%s: Fingerprint64 = %#x, want FNV-64a(Key) = %#x", set.StructName, got, want)
		}
		if got, want := Fingerprint64ForKey(set.Key()), set.Fingerprint64(); got != want {
			t.Errorf("%s: Fingerprint64ForKey disagrees with Set.Fingerprint64: %#x vs %#x", set.StructName, got, want)
		}
	}
}

// TestFingerprintIsNameAndOrderBlind: fingerprints identify the theory, not
// its presentation — renaming axioms or permuting declaration order must
// not move a set to a different backend.
func TestFingerprintIsNameAndOrderBlind(t *testing.T) {
	a := NewSet("A")
	a.Add(MustParse("X: forall p, p.L <> p.R"))
	a.Add(MustParse("Y: forall p <> q, p.(L|R) <> q.(L|R)"))

	b := NewSet("B (different name)")
	b.Add(MustParse("Q9: forall p <> q, p.(L|R) <> q.(L|R)"))
	b.Add(MustParse("Z3: forall p, p.L <> p.R"))

	if a.Fingerprint64() != b.Fingerprint64() {
		t.Errorf("renamed/permuted set changed fingerprint: %#x vs %#x", a.Fingerprint64(), b.Fingerprint64())
	}
}

// TestSourceRoundTripsFingerprint: the Source rendering must reconstruct an
// equal-Key (hence equal-fingerprint) set through ParseSet — the raw-query
// wire mode ships axiom sets as exactly this text.
func TestSourceRoundTripsFingerprint(t *testing.T) {
	for _, set := range []*Set{LeafLinkedBinaryTree(), SparseMatrixCore(), SparseMatrix()} {
		back, err := ParseSet(set.StructName, set.Source())
		if err != nil {
			t.Fatalf("%s: ParseSet(Source): %v\nsource:\n%s", set.StructName, err, set.Source())
		}
		if back.Key() != set.Key() {
			t.Errorf("%s: Source round trip changed Key", set.StructName)
		}
		if back.Fingerprint64() != set.Fingerprint64() {
			t.Errorf("%s: Source round trip changed fingerprint", set.StructName)
		}
	}
}
