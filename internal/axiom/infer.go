package axiom

import (
	"sort"

	"repro/internal/pathexpr"
)

// FieldDecl describes one pointer field of a structure type: its name and
// the structure type it points to.
type FieldDecl struct {
	Name   string
	Target string
}

// InferTypeDisjointness derives the axioms the paper calls "inferred since
// pointer fields of different types should lead to different vertices"
// (Appendix A).  For every pair of declared pointer fields f, g whose target
// types differ it adds
//
//	∀p,    p.f <> p.g
//	∀p<>q, p.f <> q.g
//
// The input maps a struct type name to its pointer fields; fields of all
// structs participate, since a vertex of type A can never alias a vertex of
// type B.
func InferTypeDisjointness(structs map[string][]FieldDecl) *Set {
	var all []FieldDecl
	var names []string
	for name := range structs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		all = append(all, structs[name]...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Name < all[j].Name })

	out := &Set{StructName: "inferred"}
	seen := make(map[string]bool)
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			f, g := all[i], all[j]
			if f.Name == g.Name || f.Target == g.Target {
				continue
			}
			key := f.Name + "\x00" + g.Name
			if seen[key] {
				continue
			}
			seen[key] = true
			out.Add(Axiom{
				Form: SameSrcDisjoint,
				RE1:  pathexpr.F(f.Name),
				RE2:  pathexpr.F(g.Name),
			})
			out.Add(Axiom{
				Form: DiffSrcDisjoint,
				RE1:  pathexpr.F(f.Name),
				RE2:  pathexpr.F(g.Name),
			})
		}
	}
	return out
}

// Merge returns a new set holding the axioms of s followed by those of
// others, renaming unnamed axioms to stay unique.
func Merge(s *Set, others ...*Set) *Set {
	out := &Set{StructName: s.StructName}
	for _, a := range s.Axioms {
		out.Add(a)
	}
	for _, o := range others {
		for _, a := range o.Axioms {
			a.Name = "" // re-number in the merged set
			out.Add(a)
		}
	}
	return out
}
