package axiom

import (
	"fmt"
	"strings"

	"repro/internal/pathexpr"
)

// Parse parses one axiom written in the paper's concrete syntax:
//
//	forall p, p.RE1 <> p.RE2
//	forall p <> q, p.RE1 <> q.RE2
//	forall p, p.RE1 = p.RE2
//
// "∀" may be used for "forall", and ":" for the comma.  RE1/RE2 are path
// expressions (see package pathexpr); "ε" or "eps" denotes the empty path.
func Parse(src string) (Axiom, error) {
	return parse(src, nil)
}

// ParseWithFields is Parse with a declared field alphabet, enabling the
// compact single-letter path style (p.LLN meaning p.L.L.N).
func ParseWithFields(src string, fields []string) (Axiom, error) {
	return parse(src, fields)
}

// MustParse is Parse, panicking on error.
func MustParse(src string) Axiom {
	a, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return a
}

func parse(src string, fields []string) (Axiom, error) {
	orig := src
	fail := func(format string, args ...any) (Axiom, error) {
		return Axiom{}, fmt.Errorf("axiom: %s in %q", fmt.Sprintf(format, args...), orig)
	}

	s := strings.TrimSpace(src)
	// Optional leading name: "A1: forall ...".  A name is an identifier
	// followed by ':' followed by a quantifier.
	name := ""
	if i := strings.Index(s, ":"); i >= 0 {
		head := strings.TrimSpace(s[:i])
		tail := strings.TrimSpace(s[i+1:])
		if isIdent(head) && (strings.HasPrefix(tail, "forall") || strings.HasPrefix(tail, "∀")) {
			name, s = head, tail
		}
	}

	switch {
	case strings.HasPrefix(s, "forall"):
		s = strings.TrimSpace(s[len("forall"):])
	case strings.HasPrefix(s, "∀"):
		s = strings.TrimSpace(s[len("∀"):])
	default:
		return fail("missing quantifier (forall / ∀)")
	}

	// Quantified variables: "p" or "p <> q".
	form := SameSrcDisjoint
	if !strings.HasPrefix(s, "p") {
		return fail("quantifier must bind p")
	}
	s = strings.TrimSpace(s[1:])
	diffSrc := false
	if strings.HasPrefix(s, "<>") {
		s = strings.TrimSpace(s[2:])
		if !strings.HasPrefix(s, "q") {
			return fail("expected q after p <>")
		}
		s = strings.TrimSpace(s[1:])
		diffSrc = true
	}
	if len(s) == 0 || (s[0] != ',' && s[0] != ':') {
		return fail("expected ',' after quantifier")
	}
	s = strings.TrimSpace(s[1:])

	// Body: p.RE1 <relop> {p|q}.RE2
	lhsVar, lhs, rest, err := scanAccessPath(s)
	if err != nil {
		return fail("%v", err)
	}
	if lhsVar != "p" {
		return fail("left access path must be anchored at p, got %s", lhsVar)
	}
	rest = strings.TrimSpace(rest)
	var rel string
	switch {
	case strings.HasPrefix(rest, "<>"):
		rel, rest = "<>", rest[2:]
	case strings.HasPrefix(rest, "="):
		rel, rest = "=", rest[1:]
	default:
		return fail("expected '<>' or '=' between access paths")
	}
	rhsVar, rhs, tail, err := scanAccessPath(strings.TrimSpace(rest))
	if err != nil {
		return fail("%v", err)
	}
	if strings.TrimSpace(tail) != "" {
		return fail("trailing input %q", tail)
	}

	switch {
	case diffSrc && rel == "<>":
		form = DiffSrcDisjoint
		if rhsVar != "q" {
			return fail("∀p<>q axiom must relate p and q paths")
		}
	case !diffSrc && rel == "<>":
		form = SameSrcDisjoint
		if rhsVar != "p" {
			return fail("∀p axiom must anchor both paths at p")
		}
	case !diffSrc && rel == "=":
		form = SameSrcEqual
		if rhsVar != "p" {
			return fail("∀p equality axiom must anchor both paths at p")
		}
	default:
		return fail("equality axioms must quantify a single vertex p")
	}

	parsePath := func(src string) (pathexpr.Expr, error) {
		if fields != nil {
			return pathexpr.ParseAlphabet(src, fields)
		}
		return pathexpr.Parse(src)
	}
	re1, err := parsePath(lhs)
	if err != nil {
		return fail("left path: %v", err)
	}
	re2, err := parsePath(rhs)
	if err != nil {
		return fail("right path: %v", err)
	}
	return Axiom{Name: name, Form: form, RE1: re1, RE2: re2}, nil
}

// scanAccessPath scans "v.PATH" returning the anchor variable, the path
// source text, and the remaining input.  The path extends until the next
// top-level "<>" or "=" or end of string.
func scanAccessPath(s string) (anchor, path, rest string, err error) {
	if len(s) == 0 {
		return "", "", "", fmt.Errorf("expected access path")
	}
	i := 0
	for i < len(s) && (isIdentByte(s[i])) {
		i++
	}
	if i == 0 {
		return "", "", "", fmt.Errorf("expected anchor variable")
	}
	anchor = s[:i]
	s = s[i:]
	if !strings.HasPrefix(s, ".") {
		return "", "", "", fmt.Errorf("expected '.' after anchor %s", anchor)
	}
	s = s[1:]
	// Scan path text up to a top-level relational operator.
	depth := 0
	j := 0
	for j < len(s) {
		switch s[j] {
		case '(':
			depth++
		case ')':
			depth--
		case '<':
			if depth == 0 && j+1 < len(s) && s[j+1] == '>' {
				return anchor, strings.TrimSpace(s[:j]), s[j:], nil
			}
		case '=':
			if depth == 0 {
				return anchor, strings.TrimSpace(s[:j]), s[j:], nil
			}
		}
		j++
	}
	return anchor, strings.TrimSpace(s), "", nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isIdentByte(s[i]) {
			return false
		}
		if i == 0 && s[i] >= '0' && s[i] <= '9' {
			return false
		}
	}
	return true
}

func isIdentByte(b byte) bool {
	return b == '_' || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') || (b >= '0' && b <= '9')
}

// ParseSet parses a sequence of axioms, one per line (or separated by ';').
// Blank lines and lines starting with "//" or "#" are skipped.
func ParseSet(name, src string) (*Set, error) {
	return parseSet(name, src, nil)
}

// ParseSetWithFields is ParseSet with a declared field alphabet.
func ParseSetWithFields(name, src string, fields []string) (*Set, error) {
	return parseSet(name, src, fields)
}

func parseSet(name, src string, fields []string) (*Set, error) {
	set := &Set{StructName: name}
	split := func(r rune) bool { return r == '\n' || r == ';' }
	for _, line := range strings.FieldsFunc(src, split) {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "//") || strings.HasPrefix(line, "#") {
			continue
		}
		a, err := parse(line, fields)
		if err != nil {
			return nil, err
		}
		set.Add(a)
	}
	return set, nil
}

// MustParseSet is ParseSet, panicking on error.
func MustParseSet(name, src string) *Set {
	s, err := ParseSet(name, src)
	if err != nil {
		panic(err)
	}
	return s
}
