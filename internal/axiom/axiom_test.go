package axiom

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/pathexpr"
)

func TestParseForms(t *testing.T) {
	cases := []struct {
		src  string
		form Form
		re1  string
		re2  string
	}{
		{"forall p, p.L <> p.R", SameSrcDisjoint, "L", "R"},
		{"forall p <> q, p.N <> q.N", DiffSrcDisjoint, "N", "N"},
		{"forall p, p.next.prev = p.ε", SameSrcEqual, "next.prev", "ε"},
		{"∀p, p.(L|R|N)+ <> p.ε", SameSrcDisjoint, "(L|R|N)+", "ε"},
		{"forall p, p.ncolE+ <> p.nrowE+", SameSrcDisjoint, "ncolE+", "nrowE+"},
		{"A1: forall p, p.L <> p.R", SameSrcDisjoint, "L", "R"},
		{"forall p : p.L <> p.R", SameSrcDisjoint, "L", "R"},
	}
	for _, c := range cases {
		a, err := Parse(c.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.src, err)
		}
		if a.Form != c.form {
			t.Errorf("Parse(%q).Form = %v, want %v", c.src, a.Form, c.form)
		}
		if got := a.RE1.String(); got != c.re1 {
			t.Errorf("Parse(%q).RE1 = %q, want %q", c.src, got, c.re1)
		}
		if got := a.RE2.String(); got != c.re2 {
			t.Errorf("Parse(%q).RE2 = %q, want %q", c.src, got, c.re2)
		}
	}
}

func TestParseNames(t *testing.T) {
	a := MustParse("A3: forall p <> q, p.N <> q.N")
	if a.Name != "A3" {
		t.Errorf("name = %q, want A3", a.Name)
	}
	if !strings.Contains(a.String(), "A3:") {
		t.Errorf("String() = %q lacks name", a)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"p.L <> p.R",
		"forall x, x.L <> x.R",
		"forall p, q.L <> p.R",
		"forall p, p.L >< p.R",
		"forall p <> q, p.L = q.R",
		"forall p, p.L <> q.R",
		"forall p <> q, p.L <> p.R",
		"forall p, p.L <> p.R ~",
		"forall p, p.( <> p.R",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseWithFieldsCompactStyle(t *testing.T) {
	a, err := ParseWithFields("forall p, p.LLN <> p.LRN", []string{"L", "R", "N"})
	if err != nil {
		t.Fatal(err)
	}
	w1, ok1 := pathexpr.Word(a.RE1)
	w2, ok2 := pathexpr.Word(a.RE2)
	if !ok1 || !ok2 {
		t.Fatal("expected word paths")
	}
	if !reflect.DeepEqual(w1, []string{"L", "L", "N"}) || !reflect.DeepEqual(w2, []string{"L", "R", "N"}) {
		t.Errorf("words = %v, %v", w1, w2)
	}
}

func TestParseSetSkipsCommentsAndBlanks(t *testing.T) {
	s, err := ParseSet("T", `
		// tree-ness
		A1: forall p, p.L <> p.R

		# acyclic
		forall p, p.(L|R)+ <> p.ε
	`)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("parsed %d axioms, want 2", s.Len())
	}
	if s.Axioms[0].Name != "A1" || s.Axioms[1].Name != "A2" {
		t.Errorf("names = %q, %q", s.Axioms[0].Name, s.Axioms[1].Name)
	}
}

func TestLibrarySets(t *testing.T) {
	llt := LeafLinkedBinaryTree()
	if llt.Len() != 4 {
		t.Errorf("leaf-linked tree has %d axioms, want 4", llt.Len())
	}
	if got := llt.Fields(); !reflect.DeepEqual(got, []string{"L", "N", "R"}) {
		t.Errorf("fields = %v", got)
	}

	sm := SparseMatrix()
	if sm.Len() != 12 {
		t.Errorf("sparse matrix has %d axioms, want 12 (Appendix A)", sm.Len())
	}
	wantFields := []string{"celem", "cols", "ncolE", "ncolH", "nrowE", "nrowH", "relem", "rows"}
	if got := sm.Fields(); !reflect.DeepEqual(got, wantFields) {
		t.Errorf("sparse fields = %v, want %v", got, wantFields)
	}

	core := SparseMatrixCore()
	if core.Len() != 3 {
		t.Errorf("sparse core has %d axioms, want 3 (§5)", core.Len())
	}

	if got := BinaryTree("l", "r").Len(); got != 3 {
		t.Errorf("binary tree has %d axioms", got)
	}
	if got := SinglyLinkedList("next").Len(); got != 2 {
		t.Errorf("list has %d axioms", got)
	}
	if got := TwoDRangeTree().Len(); got != 9 {
		t.Errorf("range tree has %d axioms", got)
	}

	cor := SparseMatrixDisjointness()
	if cor.Form != DiffSrcDisjoint {
		t.Errorf("corollary form = %v", cor.Form)
	}
}

func TestRingOf(t *testing.T) {
	r := RingOf("next", 3)
	var eq []Axiom
	for _, a := range r.Axioms {
		if a.Form == SameSrcEqual {
			eq = append(eq, a)
		}
	}
	if len(eq) != 1 {
		t.Fatalf("ring has %d equality axioms, want 1", len(eq))
	}
	if got := eq[0].RE1.String(); got != "next.next.next" {
		t.Errorf("cycle path = %q", got)
	}
}

func TestWithoutFields(t *testing.T) {
	llt := LeafLinkedBinaryTree()
	noN := llt.WithoutFields("N")
	if noN.Len() != 2 {
		t.Fatalf("dropping N left %d axioms, want 2 (A1, A2)", noN.Len())
	}
	for _, a := range noN.Axioms {
		for _, f := range a.Fields() {
			if f == "N" {
				t.Errorf("axiom %v still mentions N", a)
			}
		}
	}
}

func TestIntersect(t *testing.T) {
	a := LeafLinkedBinaryTree()
	b := LeafLinkedBinaryTree().WithoutFields("N")
	got := a.Intersect(b)
	if got.Len() != 2 {
		t.Fatalf("intersection has %d axioms, want 2", got.Len())
	}
	if !reflect.DeepEqual(a.Intersect(a).Key(), a.Key()) {
		t.Error("self-intersection changed the set")
	}
}

func TestKeyCanonical(t *testing.T) {
	a := MustParseSet("x", "forall p, p.L <> p.R\nforall p <> q, p.N <> q.N")
	b := MustParseSet("y", "forall p <> q, p.N <> q.N\nforall p, p.L <> p.R")
	if a.Key() != b.Key() {
		t.Error("Key should be order-independent")
	}
}

func TestInferTypeDisjointness(t *testing.T) {
	structs := map[string][]FieldDecl{
		"Matrix": {{Name: "rows", Target: "Header"}, {Name: "cols", Target: "Header"}},
		"Header": {{Name: "nrowH", Target: "Header"}, {Name: "relem", Target: "Elem"}},
	}
	inf := InferTypeDisjointness(structs)
	// Pairs with differing targets: (nrowH,relem), (relem,rows), (relem,cols)
	// — 3 pairs × 2 axioms each.
	if inf.Len() != 6 {
		t.Fatalf("inferred %d axioms, want 6:\n%s", inf.Len(), inf)
	}
	for _, a := range inf.Axioms {
		if len(a.Fields()) != 2 {
			t.Errorf("inferred axiom %v should mention exactly 2 fields", a)
		}
	}
}

func TestMerge(t *testing.T) {
	m := Merge(SparseMatrixCore(), SinglyLinkedList("next"))
	if m.Len() != 5 {
		t.Fatalf("merged %d axioms, want 5", m.Len())
	}
	seen := map[string]bool{}
	for _, a := range m.Axioms {
		if seen[a.Name] {
			t.Errorf("duplicate axiom name %q after merge", a.Name)
		}
		seen[a.Name] = true
	}
}

func TestByForm(t *testing.T) {
	s := LeafLinkedBinaryTree()
	if got := len(s.ByForm(SameSrcDisjoint)); got != 2 {
		t.Errorf("same-src axioms = %d, want 2", got)
	}
	if got := len(s.ByForm(DiffSrcDisjoint)); got != 2 {
		t.Errorf("diff-src axioms = %d, want 2", got)
	}
	if got := len(s.ByForm(SameSrcEqual)); got != 0 {
		t.Errorf("equality axioms = %d, want 0", got)
	}
}

func TestSetString(t *testing.T) {
	s := LeafLinkedBinaryTree()
	out := s.String()
	for _, want := range []string{"LLBinaryTree", "A1:", "A4:", "∀p<>q"} {
		if !strings.Contains(out, want) {
			t.Errorf("Set.String() missing %q:\n%s", want, out)
		}
	}
}

func TestSkipListAxioms(t *testing.T) {
	s := SkipList("n0", "n1", "n2")
	// One injectivity axiom per level plus global acyclicity.
	if s.Len() != 4 {
		t.Fatalf("skip list has %d axioms, want 4", s.Len())
	}
	forms := map[Form]int{}
	for _, a := range s.Axioms {
		forms[a.Form]++
	}
	if forms[DiffSrcDisjoint] != 3 || forms[SameSrcDisjoint] != 1 {
		t.Errorf("form counts = %v", forms)
	}
}

func TestBPlusTreeAxioms(t *testing.T) {
	s := BPlusTree("next", "c0", "c1")
	// Sibling disjointness (1 pair), unshared children, injective leaf
	// chain, global acyclicity.
	if s.Len() != 4 {
		t.Fatalf("B+-tree has %d axioms, want 4", s.Len())
	}
	forms := map[Form]int{}
	for _, a := range s.Axioms {
		forms[a.Form]++
	}
	if forms[DiffSrcDisjoint] != 2 || forms[SameSrcDisjoint] != 2 {
		t.Errorf("form counts = %v", forms)
	}
	if got := s.Fields(); len(got) != 3 {
		t.Errorf("fields = %v, want c0 c1 next", got)
	}
}

func TestChainedHashTableAxioms(t *testing.T) {
	s := ChainedHashTable("next", "b0", "b1")
	// Bucket-pair chain disjointness (1 pair), injective next, acyclicity.
	if s.Len() != 3 {
		t.Fatalf("hash table has %d axioms, want 3", s.Len())
	}
	forms := map[Form]int{}
	for _, a := range s.Axioms {
		forms[a.Form]++
	}
	if forms[DiffSrcDisjoint] != 1 || forms[SameSrcDisjoint] != 2 {
		t.Errorf("form counts = %v", forms)
	}
}

func TestUnionFindForestAxioms(t *testing.T) {
	s := UnionFindForest("parent")
	if s.Len() != 1 {
		t.Fatalf("union-find forest has %d axioms, want 1", s.Len())
	}
	a := s.Axioms[0]
	// Acyclicity only: parent edges are deliberately shareable.
	if a.Form != SameSrcDisjoint {
		t.Errorf("axiom form = %v, want SameSrcDisjoint acyclicity", a.Form)
	}
	if got := s.Fields(); len(got) != 1 || got[0] != "parent" {
		t.Errorf("fields = %v, want [parent]", got)
	}
}

func TestDequeAxioms(t *testing.T) {
	s := Deque("next", "prev")
	if s.StructName != "Deque" {
		t.Errorf("struct name = %q", s.StructName)
	}
	if s.Len() != DoublyLinkedList("next", "prev").Len() {
		t.Errorf("deque axiom count %d differs from doubly linked list", s.Len())
	}
}
