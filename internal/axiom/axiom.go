// Package axiom defines aliasing axioms: universally quantified statements
// about access paths that hold uniformly throughout a data structure
// (paper, §3.1).  An axiom takes one of three forms:
//
//  1. ∀p,    p.RE1 <> p.RE2   — paths from the same vertex never collide
//  2. ∀p<>q, p.RE1 <> q.RE2   — paths from distinct vertices never collide
//  3. ∀p,    p.RE1 =  p.RE2   — paths from the same vertex always coincide
//
// The package also carries the paper's worked axiom sets (Figure 3's
// leaf-linked binary tree, §5's sparse-matrix subset, Appendix A's full
// twelve-axiom sparse matrix) and axiom inference from type declarations.
package axiom

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/pathexpr"
	"repro/internal/strhash"
)

// Form distinguishes the three axiom shapes.
type Form int

// Axiom forms.
const (
	// SameSrcDisjoint is ∀p, p.RE1 <> p.RE2.
	SameSrcDisjoint Form = iota
	// DiffSrcDisjoint is ∀p<>q, p.RE1 <> q.RE2.
	DiffSrcDisjoint
	// SameSrcEqual is ∀p, p.RE1 = p.RE2.
	SameSrcEqual
)

func (f Form) String() string {
	switch f {
	case SameSrcDisjoint:
		return "∀p, p.RE1 <> p.RE2"
	case DiffSrcDisjoint:
		return "∀p<>q, p.RE1 <> q.RE2"
	case SameSrcEqual:
		return "∀p, p.RE1 = p.RE2"
	}
	return "unknown form"
}

// Axiom is one aliasing axiom.  Name is optional and used in proof traces
// (e.g. "A1").
type Axiom struct {
	Name string
	Form Form
	RE1  pathexpr.Expr
	RE2  pathexpr.Expr
}

// String renders the axiom in the paper's concrete syntax.
func (a Axiom) String() string {
	var head, rel string
	switch a.Form {
	case SameSrcDisjoint:
		head, rel = "∀p, p.%s <> p.%s", "<>"
	case DiffSrcDisjoint:
		head, rel = "∀p<>q, p.%s <> q.%s", "<>"
	case SameSrcEqual:
		head, rel = "∀p, p.%s = p.%s", "="
	}
	_ = rel
	s := fmt.Sprintf(head, a.RE1, a.RE2)
	if a.Name != "" {
		s = a.Name + ": " + s
	}
	return s
}

// Fields returns the sorted field names mentioned by the axiom.
func (a Axiom) Fields() []string {
	return pathexpr.Fields(a.RE1, a.RE2)
}

// Set is an ordered collection of axioms describing one data structure.
//
// Key and ID memoize their results against len(Axioms): append axioms
// through Add (or by extending the slice) freely, but do not mutate an
// existing element of Axioms in place after the first Key/ID call — the
// memo would not notice.  Nothing in this codebase edits axioms in place;
// sets evolve by construction (NewSet, Add, WithoutFields, Intersect).
type Set struct {
	// StructName optionally names the described structure type.
	StructName string
	Axioms     []Axiom

	// memo guards the fingerprint cache below.  Key() sits on the hot path
	// of every engine and serve lookup; recomputing the sorted rendering per
	// call was measurable, and the set length is a sufficient validity check
	// under the no-in-place-mutation rule above.
	memo struct {
		mu  sync.Mutex
		ok  bool
		n   int
		key string
		id  uint64
		fp  uint64
	}
}

// setIDs interns set fingerprints to stable 64-bit IDs, so two Sets built
// independently from the same axioms (distinct pointers, equal keys) share
// an identity and the proof memo and engine pools can key on integers.
var setIDs = struct {
	mu   sync.Mutex
	ids  map[string]uint64
	keys map[uint64]string
	next uint64
}{ids: make(map[string]uint64), keys: make(map[uint64]string)}

// IDForKey interns a set fingerprint (a Key rendering, possibly produced by
// another process) and returns the identity a local Set with that
// fingerprint carries.  Artifact loading uses it to rebind persisted proof
// verdicts to their axiom-set namespace without materializing the Set:
// fingerprint equality is exactly "same theorems hold".
func IDForKey(key string) uint64 {
	setIDs.mu.Lock()
	defer setIDs.mu.Unlock()
	return internKeyLocked(key)
}

// KeyForID reverses ID for fingerprints interned in this process.
func KeyForID(id uint64) (string, bool) {
	setIDs.mu.Lock()
	defer setIDs.mu.Unlock()
	key, ok := setIDs.keys[id]
	return key, ok
}

// internKeyLocked assigns (or returns) the stable ID of a fingerprint.
// Caller holds setIDs.mu.
func internKeyLocked(key string) uint64 {
	id, ok := setIDs.ids[key]
	if !ok {
		setIDs.next++
		id = setIDs.next
		setIDs.ids[key] = id
		setIDs.keys[id] = key
	}
	return id
}

// NewSet builds a set from axioms.
func NewSet(name string, axioms ...Axiom) *Set {
	return &Set{StructName: name, Axioms: axioms}
}

// Add appends an axiom, auto-naming it A<n> when unnamed, and returns the
// set for chaining.
func (s *Set) Add(a Axiom) *Set {
	if a.Name == "" {
		a.Name = fmt.Sprintf("A%d", len(s.Axioms)+1)
	}
	s.Axioms = append(s.Axioms, a)
	return s
}

// Fields returns the sorted union of field names mentioned by all axioms.
func (s *Set) Fields() []string {
	set := make(map[string]bool)
	for _, a := range s.Axioms {
		for _, f := range a.Fields() {
			set[f] = true
		}
	}
	out := make([]string, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// ByForm returns the axioms with the given form, in declaration order.
func (s *Set) ByForm(f Form) []Axiom {
	var out []Axiom
	for _, a := range s.Axioms {
		if a.Form == f {
			out = append(out, a)
		}
	}
	return out
}

// Key returns a canonical fingerprint of the set, used in proof-cache keys
// and snapshot ordering.  Computed once per set size and memoized.
func (s *Set) Key() string {
	s.memo.mu.Lock()
	defer s.memo.mu.Unlock()
	s.refreshMemoLocked()
	return s.memo.key
}

// ID returns the set's stable 64-bit identity: sets with equal Key share an
// ID for the lifetime of the process.  The proof memo, the tester's
// per-window prover cache, and the serving layer's engine pool key on it
// instead of carrying the full fingerprint string per lookup.
func (s *Set) ID() uint64 {
	s.memo.mu.Lock()
	defer s.memo.mu.Unlock()
	s.refreshMemoLocked()
	return s.memo.id
}

// Fingerprint64 returns the set's cross-process-stable identity: the
// FNV-64a hash of the canonical Key().  Unlike ID() — which is assigned by
// a process-local append-only registry and therefore depends on interning
// order — the fingerprint is a pure function of the axiom content, so two
// processes that never exchanged state agree on it.  It is what may cross
// the wire: the cluster router's consistent-hash ring places axiom sets on
// backends by fingerprint, and the warm-handoff snapshot endpoints address
// engines by it.  (Like Key, it is name- and declaration-order-blind.)
func (s *Set) Fingerprint64() uint64 {
	s.memo.mu.Lock()
	defer s.memo.mu.Unlock()
	s.refreshMemoLocked()
	return s.memo.fp
}

// Fingerprint64ForKey hashes a canonical fingerprint string (a Key
// rendering, possibly produced by another process) the same way
// Set.Fingerprint64 does.
func Fingerprint64ForKey(key string) uint64 {
	return strhash.FNV64a(key)
}

// refreshMemoLocked recomputes the key/ID memo when the axiom count changed
// since the last computation.  Caller holds s.memo.mu.
func (s *Set) refreshMemoLocked() {
	if s.memo.ok && s.memo.n == len(s.Axioms) {
		return
	}
	parts := make([]string, len(s.Axioms))
	for i, a := range s.Axioms {
		parts[i] = fmt.Sprintf("%d\x01%s\x01%s", a.Form, a.RE1, a.RE2)
	}
	sort.Strings(parts)
	key := strings.Join(parts, "\x02")
	setIDs.mu.Lock()
	id := internKeyLocked(key)
	setIDs.mu.Unlock()
	s.memo.ok, s.memo.n, s.memo.key, s.memo.id = true, len(s.Axioms), key, id
	s.memo.fp = Fingerprint64ForKey(key)
}

// WithoutFields returns a new set containing only axioms that mention none
// of the given fields.  This implements the §3.4 rule: a structural
// modification to field f invalidates (conservatively) every axiom
// constraining f, and a dependence test spanning the modification must use
// the intersection of the axiom sets valid before and after — which is
// exactly the before-set minus the f-constraining axioms.
func (s *Set) WithoutFields(fields ...string) *Set {
	drop := make(map[string]bool, len(fields))
	for _, f := range fields {
		drop[f] = true
	}
	out := &Set{StructName: s.StructName}
	for _, a := range s.Axioms {
		touched := false
		for _, f := range a.Fields() {
			if drop[f] {
				touched = true
				break
			}
		}
		if !touched {
			out.Axioms = append(out.Axioms, a)
		}
	}
	return out
}

// Intersect returns the axioms present in both sets (by form and language
// text).  Used to combine validity windows across modification sites.
func (s *Set) Intersect(o *Set) *Set {
	have := make(map[axiomFP]bool, len(o.Axioms))
	for _, a := range o.Axioms {
		have[fingerprint(a)] = true
	}
	out := &Set{StructName: s.StructName}
	for _, a := range s.Axioms {
		if have[fingerprint(a)] {
			out.Axioms = append(out.Axioms, a)
		}
	}
	return out
}

// axiomFP is one axiom's identity for set intersection: form plus the
// interned IDs of both expressions (IDs biject with canonical renderings,
// so this matches the textual fingerprint it replaced).
type axiomFP struct {
	form     Form
	re1, re2 uint64
}

func fingerprint(a Axiom) axiomFP {
	return axiomFP{form: a.Form, re1: pathexpr.InternID(a.RE1), re2: pathexpr.InternID(a.RE2)}
}

// SourceLine renders the axiom in the ASCII concrete syntax Parse accepts
// ("forall" and "eps" rather than "∀" and "ε"), without a trailing
// separator.  Parse(SourceLine(a)) yields an axiom with equal form and
// expression languages, which is what lets axiom sets travel as text: in
// struct declarations, in wire-format raw-query requests, and in test
// fixtures.
func (a Axiom) SourceLine() string {
	re1 := strings.ReplaceAll(a.RE1.String(), "ε", "eps")
	re2 := strings.ReplaceAll(a.RE2.String(), "ε", "eps")
	name := ""
	if a.Name != "" {
		name = a.Name + ": "
	}
	switch a.Form {
	case DiffSrcDisjoint:
		return fmt.Sprintf("%sforall p <> q, p.%s <> q.%s", name, re1, re2)
	case SameSrcEqual:
		return fmt.Sprintf("%sforall p, p.%s = p.%s", name, re1, re2)
	default:
		return fmt.Sprintf("%sforall p, p.%s <> p.%s", name, re1, re2)
	}
}

// Source renders the whole set as parseable axiom lines: ParseSet(name,
// s.Source()) reconstructs a set with an equal Key (and therefore equal
// Fingerprint64), which the wire layer's raw-query mode relies on.
func (s *Set) Source() string {
	var b strings.Builder
	for _, a := range s.Axioms {
		b.WriteString(a.SourceLine())
		b.WriteByte('\n')
	}
	return b.String()
}

// Len returns the number of axioms.
func (s *Set) Len() int { return len(s.Axioms) }

// String renders the whole set, one axiom per line.
func (s *Set) String() string {
	var b strings.Builder
	if s.StructName != "" {
		fmt.Fprintf(&b, "axioms of %s:\n", s.StructName)
	}
	for _, a := range s.Axioms {
		b.WriteString("  ")
		b.WriteString(a.String())
		b.WriteByte('\n')
	}
	return b.String()
}
