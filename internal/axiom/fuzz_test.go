package axiom

import "testing"

// FuzzParse: the axiom parser must never panic; accepted axioms must
// re-parse from their printed form with the same content.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"forall p, p.L <> p.R",
		"forall p <> q, p.(L|R) <> q.(L|R)",
		"forall p, p.next.prev = p.ε",
		"∀p, p.(a|b)+ <> p.ε",
		"A1: forall p, p.x <> p.y",
		"forall p", "", "forall p, p.L", "forall p <> q, p.L = q.R",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		a, err := Parse(src)
		if err != nil {
			return
		}
		re, err := Parse(a.String())
		if err != nil {
			t.Fatalf("accepted %q but rejected its own print %q: %v", src, a.String(), err)
		}
		if re.Form != a.Form || re.RE1.String() != a.RE1.String() || re.RE2.String() != a.RE2.String() {
			t.Fatalf("round trip changed the axiom: %q -> %q", src, re.String())
		}
	})
}
