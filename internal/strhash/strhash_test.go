package strhash

import (
	"hash/fnv"
	"testing"
)

// TestMatchesStdlib pins the implementation to the reference FNV-1a from
// the standard library, so the sharded caches keyed through it can trust
// the constants forever.
func TestMatchesStdlib(t *testing.T) {
	for _, s := range []string{"", "a", "ab", "shard-key\x00with NULs", "∀p, p.next+ <> p.ε"} {
		ref := fnv.New32a()
		ref.Write([]byte(s))
		if got, want := FNV32a(s), ref.Sum32(); got != want {
			t.Errorf("FNV32a(%q) = %#x, want %#x", s, got, want)
		}
	}
}

func TestFNV64aMatchesStdlib(t *testing.T) {
	for _, s := range []string{"", "a", "ab", "shard-key\x00with NULs", "∀p, p.next+ <> p.ε", "127.0.0.1:8080#17"} {
		ref := fnv.New64a()
		ref.Write([]byte(s))
		if got, want := FNV64a(s), ref.Sum64(); got != want {
			t.Errorf("FNV64a(%q) = %#x, want %#x", s, got, want)
		}
	}
}
