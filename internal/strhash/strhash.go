// Package strhash holds the FNV-1a string hash every sharded structure in
// the repository routes keys through.  The engine's proof memo and the
// automata shared cache each used to carry a private copy; one shared
// implementation guarantees the shard routing of the two layers can never
// silently diverge (a divergence would not be wrong, but it would quietly
// destroy the cross-layer key-locality that makes warm servers cheap to
// reason about).
package strhash

// FNV32a returns the 32-bit FNV-1a hash of s.
func FNV32a(s string) uint32 {
	const (
		offset = 2166136261
		prime  = 16777619
	)
	h := uint32(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime
	}
	return h
}

// FNV64a returns the 64-bit FNV-1a hash of s.  The cluster layer hashes
// axiom-set fingerprints and ring vnode labels through it, so — like FNV32a
// above — the constants are pinned by test against the standard library.
func FNV64a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}
