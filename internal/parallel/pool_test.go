package parallel

import (
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/telemetry"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 9} {
		p := NewPool(workers)
		var hits [100]int32
		p.ForEach(100, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestForEachEmptyAndSingle(t *testing.T) {
	p := NewPool(4)
	p.ForEach(0, func(int) { t.Fatal("called on empty range") })
	called := 0
	p.ForEach(1, func(i int) { called++ })
	if called != 1 {
		t.Fatalf("called %d times", called)
	}
}

func TestNewPoolClampsWidth(t *testing.T) {
	if NewPool(0).Workers() != 1 || NewPool(-3).Workers() != 1 {
		t.Error("pool width must clamp to 1")
	}
	if NewPool(6).Workers() != 6 {
		t.Error("pool width lost")
	}
}

func TestForEachChunkPartition(t *testing.T) {
	p := NewPool(3)
	var total int64
	p.ForEachChunk(10, func(lo, hi int) {
		atomic.AddInt64(&total, int64(hi-lo))
	})
	if total != 10 {
		t.Fatalf("chunks covered %d of 10", total)
	}
}

func TestReduceSum(t *testing.T) {
	for _, workers := range []int{1, 2, 5} {
		p := NewPool(workers)
		got := Reduce(p, 100,
			func() int { return 0 },
			func(acc, i int) int { return acc + i },
			func(a, b int) int { return a + b })
		if got != 4950 {
			t.Fatalf("workers=%d: sum = %d, want 4950", workers, got)
		}
	}
}

func TestReduceEmpty(t *testing.T) {
	p := NewPool(4)
	got := Reduce(p, 0,
		func() int { return 7 },
		func(acc, i int) int { return acc + i },
		func(a, b int) int { return a + b })
	if got != 7 {
		t.Fatalf("empty reduce = %d, want init value", got)
	}
}

// TestPropertyReduceMatchesSequential: parallel reduction equals the
// sequential fold for an associative, commutative operation.
func TestPropertyReduceMatchesSequential(t *testing.T) {
	p := NewPool(4)
	f := func(xs []int32) bool {
		want := int64(0)
		for _, x := range xs {
			want += int64(x)
		}
		got := Reduce(p, len(xs),
			func() int64 { return 0 },
			func(acc int64, i int) int64 { return acc + int64(xs[i]) },
			func(a, b int64) int64 { return a + b })
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestForEachPanicRecovered: a panicking worker must not crash the process
// on a detached goroutine; the pool joins every worker and re-raises the
// first panic on the caller's goroutine as a *WorkerPanic.
func TestForEachPanicRecovered(t *testing.T) {
	p := NewPool(4)
	var completed int32
	defer func() {
		r := recover()
		wp, ok := r.(*WorkerPanic)
		if !ok {
			t.Fatalf("recovered %T (%v), want *WorkerPanic", r, r)
		}
		if wp.Value != "boom" {
			t.Errorf("panic value = %v, want boom", wp.Value)
		}
		if len(wp.Stack) == 0 {
			t.Error("WorkerPanic carries no stack")
		}
		if !strings.Contains(wp.Error(), "boom") {
			t.Errorf("Error() = %q, missing panic value", wp.Error())
		}
		// The panic abandons the rest of its own chunk, but every other
		// worker ran to completion before the re-raise (the pool joins
		// first): at least the 75 items of the three healthy chunks.
		if n := atomic.LoadInt32(&completed); n < 75 || n >= 100 {
			t.Errorf("completed = %d, want [75, 100)", n)
		}
	}()
	p.ForEach(100, func(i int) {
		if i == 42 {
			panic("boom")
		}
		atomic.AddInt32(&completed, 1)
	})
	t.Fatal("ForEach returned normally despite worker panic")
}

// TestReducePanicRecovered: same contract for Reduce.
func TestReducePanicRecovered(t *testing.T) {
	p := NewPool(3)
	defer func() {
		if _, ok := recover().(*WorkerPanic); !ok {
			t.Fatal("Reduce did not re-raise a *WorkerPanic")
		}
	}()
	Reduce(p, 10,
		func() int { return 0 },
		func(acc, i int) int {
			if i == 7 {
				panic("reduce boom")
			}
			return acc + i
		},
		func(a, b int) int { return a + b })
	t.Fatal("Reduce returned normally despite worker panic")
}

// The concurrency tests below synchronize with explicit channels instead
// of sleeps or timing heuristics: if the pool failed to run the expected
// workers concurrently the rendezvous could never complete and the test
// would deadlock (an unambiguous failure under the package timeout), and
// if it does complete the property held with certainty.  They are run
// repeatedly under the race detector in CI (make race-pool).

// TestForEachRunsWorkersConcurrently: with n == workers, every index runs
// on its own goroutine at the same time.  Each worker reports arrival and
// then blocks until the coordinator has seen all of them.
func TestForEachRunsWorkersConcurrently(t *testing.T) {
	const workers = 4
	p := NewPool(workers)
	arrived := make(chan int, workers)
	release := make(chan struct{})
	go func() {
		seen := make(map[int]bool)
		for i := 0; i < workers; i++ {
			seen[<-arrived] = true
		}
		if len(seen) != workers {
			t.Errorf("coordinator saw %d distinct indices, want %d", len(seen), workers)
		}
		close(release)
	}()
	p.ForEach(workers, func(i int) {
		arrived <- i
		<-release
	})
}

// TestForEachChunkRunsChunksConcurrently: same rendezvous at the chunk
// level, with more items than workers so each chunk holds several indices.
func TestForEachChunkRunsChunksConcurrently(t *testing.T) {
	const workers, n = 3, 12
	p := NewPool(workers)
	arrived := make(chan [2]int, workers)
	release := make(chan struct{})
	go func() {
		covered := 0
		for i := 0; i < workers; i++ {
			c := <-arrived
			covered += c[1] - c[0]
		}
		if covered != n {
			t.Errorf("concurrent chunks covered %d of %d indices", covered, n)
		}
		close(release)
	}()
	p.ForEachChunk(n, func(lo, hi int) {
		arrived <- [2]int{lo, hi}
		<-release
	})
}

// TestReduceRunsWorkersConcurrently: Reduce must fan its accumulators out
// on live goroutines too, and still merge every partial exactly once.
func TestReduceRunsWorkersConcurrently(t *testing.T) {
	const workers, n = 4, 8
	p := NewPool(workers)
	arrived := make(chan struct{}, workers)
	release := make(chan struct{})
	go func() {
		for i := 0; i < workers; i++ {
			<-arrived
		}
		close(release)
	}()
	first := make([]atomic.Bool, workers)
	got := Reduce(p, n,
		func() int { return 0 },
		func(acc, i int) int {
			slot := i / (n / workers)
			if first[slot].CompareAndSwap(false, true) {
				arrived <- struct{}{}
				<-release
			}
			return acc + i
		},
		func(a, b int) int { return a + b })
	if want := n * (n - 1) / 2; got != want {
		t.Fatalf("concurrent reduce = %d, want %d", got, want)
	}
}

// TestForEachSingleWorkerStaysInline: a width-1 pool must not rendezvous —
// indices run sequentially on the caller's goroutine, so a cross-index
// channel wait would deadlock.  The test asserts strict sequential order,
// which concurrent execution would (racily) break and inline execution
// guarantees.
func TestForEachSingleWorkerStaysInline(t *testing.T) {
	p := NewPool(1)
	next := 0
	p.ForEach(50, func(i int) {
		if i != next {
			t.Fatalf("index %d ran out of order (want %d): width-1 pool is not sequential", i, next)
		}
		next++
	})
	if next != 50 {
		t.Fatalf("ran %d of 50 indices", next)
	}
}

// TestPoolTelemetry: fork/chunk counters and busy/barrier histograms are
// recorded when a telemetry set is attached.
func TestPoolTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	p := NewPool(4).SetTelemetry(telemetry.New(reg, nil))
	p.ForEach(100, func(i int) {})
	Reduce(p, 100,
		func() int { return 0 },
		func(acc, i int) int { return acc + 1 },
		func(a, b int) int { return a + b })
	p.ForEachChunk(1, func(lo, hi int) {}) // inline path is metered too

	snap := reg.Snapshot()
	if snap.Counters["pool.forks"] != 3 {
		t.Errorf("pool.forks = %d, want 3", snap.Counters["pool.forks"])
	}
	if snap.Counters["pool.chunks"] != 9 {
		t.Errorf("pool.chunks = %d, want 9 (4+4+1)", snap.Counters["pool.chunks"])
	}
	if snap.Hists["pool.worker_busy_ns"].Count != 9 {
		t.Errorf("worker_busy_ns count = %d, want 9", snap.Hists["pool.worker_busy_ns"].Count)
	}
	if snap.Hists["pool.barrier_wait_ns"].Count != 9 {
		t.Errorf("barrier_wait_ns count = %d, want 9", snap.Hists["pool.barrier_wait_ns"].Count)
	}
}
