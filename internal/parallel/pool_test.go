package parallel

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 9} {
		p := NewPool(workers)
		var hits [100]int32
		p.ForEach(100, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestForEachEmptyAndSingle(t *testing.T) {
	p := NewPool(4)
	p.ForEach(0, func(int) { t.Fatal("called on empty range") })
	called := 0
	p.ForEach(1, func(i int) { called++ })
	if called != 1 {
		t.Fatalf("called %d times", called)
	}
}

func TestNewPoolClampsWidth(t *testing.T) {
	if NewPool(0).Workers() != 1 || NewPool(-3).Workers() != 1 {
		t.Error("pool width must clamp to 1")
	}
	if NewPool(6).Workers() != 6 {
		t.Error("pool width lost")
	}
}

func TestForEachChunkPartition(t *testing.T) {
	p := NewPool(3)
	var total int64
	p.ForEachChunk(10, func(lo, hi int) {
		atomic.AddInt64(&total, int64(hi-lo))
	})
	if total != 10 {
		t.Fatalf("chunks covered %d of 10", total)
	}
}

func TestReduceSum(t *testing.T) {
	for _, workers := range []int{1, 2, 5} {
		p := NewPool(workers)
		got := Reduce(p, 100,
			func() int { return 0 },
			func(acc, i int) int { return acc + i },
			func(a, b int) int { return a + b })
		if got != 4950 {
			t.Fatalf("workers=%d: sum = %d, want 4950", workers, got)
		}
	}
}

func TestReduceEmpty(t *testing.T) {
	p := NewPool(4)
	got := Reduce(p, 0,
		func() int { return 7 },
		func(acc, i int) int { return acc + i },
		func(a, b int) int { return a + b })
	if got != 7 {
		t.Fatalf("empty reduce = %d, want init value", got)
	}
}

// TestPropertyReduceMatchesSequential: parallel reduction equals the
// sequential fold for an associative, commutative operation.
func TestPropertyReduceMatchesSequential(t *testing.T) {
	p := NewPool(4)
	f := func(xs []int32) bool {
		want := int64(0)
		for _, x := range xs {
			want += int64(x)
		}
		got := Reduce(p, len(xs),
			func() int64 { return 0 },
			func(acc int64, i int) int64 { return acc + int64(xs[i]) },
			func(a, b int64) int64 { return a + b })
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
