// Package parallel provides the fork-join worker pool that executes the
// row-parallel phases of the sparse kernels on real goroutines.  It is the
// live counterpart to package sched's simulator: the same task decomposition
// that the simulator times is actually run, demonstrating that the
// transformations APT licenses are executable (and data-race free — the
// tests run under the race detector).
package parallel

import (
	"sync"
)

// Pool is a fixed-width fork-join executor.  A Pool is safe for sequential
// reuse; a single ForEach call fans out to Workers goroutines and joins
// before returning (the barrier the sched simulator charges for).
type Pool struct {
	workers int
}

// NewPool returns a pool of the given width (minimum 1).
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{workers: workers}
}

// Workers returns the pool width.
func (p *Pool) Workers() int { return p.workers }

// ForEach runs fn(i) for every i in [0, n), partitioned across the pool,
// and joins.  fn must not panic.
func (p *Pool) ForEach(n int, fn func(i int)) {
	p.ForEachChunk(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// ForEachChunk partitions [0, n) into one contiguous chunk per worker and
// runs fn(lo, hi) on each concurrently.  Chunked form lets callers keep
// per-worker accumulators without sharing.
func (p *Pool) ForEachChunk(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if p.workers == 1 || n == 1 {
		fn(0, n)
		return
	}
	w := p.workers
	if w > n {
		w = n
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Reduce runs one accumulator per worker over [0, n) and combines the
// partial results sequentially with merge.  init produces a fresh
// accumulator; step folds index i into it.
func Reduce[T any](p *Pool, n int, init func() T, step func(acc T, i int) T, merge func(a, b T) T) T {
	if n <= 0 {
		return init()
	}
	w := p.workers
	if w > n {
		w = n
	}
	parts := make([]T, w)
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	slot := 0
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(slot, lo, hi int) {
			defer wg.Done()
			acc := init()
			for i := lo; i < hi; i++ {
				acc = step(acc, i)
			}
			parts[slot] = acc
		}(slot, lo, hi)
		slot++
	}
	wg.Wait()
	out := parts[0]
	for i := 1; i < slot; i++ {
		out = merge(out, parts[i])
	}
	return out
}
