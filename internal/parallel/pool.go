// Package parallel provides the fork-join worker pool that executes the
// row-parallel phases of the sparse kernels on real goroutines.  It is the
// live counterpart to package sched's simulator: the same task decomposition
// that the simulator times is actually run, demonstrating that the
// transformations APT licenses are executable (and data-race free — the
// tests run under the race detector).
package parallel

import (
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// WorkerPanic wraps a panic that escaped a worker goroutine.  The pool
// re-raises it on the caller's goroutine after the join, so a panicking fn
// crashes the program with a useful trace instead of an opaque
// "sync: WaitGroup" deadlock or a runtime crash on a detached goroutine.
type WorkerPanic struct {
	// Value is the value originally passed to panic.
	Value any
	// Stack is the worker goroutine's stack at the point of the panic.
	Stack []byte
}

func (e *WorkerPanic) Error() string {
	return fmt.Sprintf("parallel: worker panic: %v\n%s", e.Value, e.Stack)
}

// Pool is a fixed-width fork-join executor.  A Pool is safe for sequential
// reuse; a single ForEach call fans out to Workers goroutines and joins
// before returning (the barrier the sched simulator charges for).
type Pool struct {
	workers int
	tel     *telemetry.Set

	// Pre-resolved instruments (nil when telemetry is off — every method on
	// them is then a no-op, keeping the hot path allocation-free).
	forks     *telemetry.Counter
	chunks    *telemetry.Counter
	busyNS    *telemetry.Histogram
	barrierNS *telemetry.Histogram
}

// NewPool returns a pool of the given width (minimum 1).
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{workers: workers}
}

// SetTelemetry attaches a telemetry set, recording fork-join counts, per-
// worker busy time, and barrier wait (join latency minus each worker's own
// finish) under pool.* instruments.  Returns the pool for chaining.
func (p *Pool) SetTelemetry(tel *telemetry.Set) *Pool {
	p.tel = tel
	p.forks = tel.Counter("pool.forks")
	p.chunks = tel.Counter("pool.chunks")
	p.busyNS = tel.Histogram("pool.worker_busy_ns")
	p.barrierNS = tel.Histogram("pool.barrier_wait_ns")
	return p
}

// Telemetry returns the attached telemetry set (nil-safe to use).
func (p *Pool) Telemetry() *telemetry.Set { return p.tel }

// Workers returns the pool width.
func (p *Pool) Workers() int { return p.workers }

// ForEach runs fn(i) for every i in [0, n), partitioned across the pool,
// and joins.  If fn panics, the first panic is re-raised on the caller's
// goroutine as a *WorkerPanic after all workers have joined.
func (p *Pool) ForEach(n int, fn func(i int)) {
	p.ForEachChunk(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// ForEachChunk partitions [0, n) into one contiguous chunk per worker and
// runs fn(lo, hi) on each concurrently.  Chunked form lets callers keep
// per-worker accumulators without sharing.  Panic and join semantics match
// ForEach.
func (p *Pool) ForEachChunk(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	metered := p.busyNS != nil
	if p.workers == 1 || n == 1 {
		if metered {
			p.forks.Add(1)
			p.chunks.Add(1)
			start := time.Now()
			fn(0, n)
			p.busyNS.Observe(time.Since(start).Nanoseconds())
			p.barrierNS.Observe(0)
			return
		}
		fn(0, n)
		return
	}
	w := p.workers
	if w > n {
		w = n
	}
	chunk := (n + w - 1) / w
	slots := (n + chunk - 1) / chunk
	var ends []time.Time
	if metered {
		p.forks.Add(1)
		p.chunks.Add(int64(slots))
		ends = make([]time.Time, slots)
	}
	var (
		panicOnce sync.Once
		pan       *WorkerPanic
		wg        sync.WaitGroup
	)
	slot := 0
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(slot, lo, hi int) {
			// Deferred funcs run LIFO: the recover/metering defer below runs
			// before wg.Done, so its writes happen-before wg.Wait returns.
			defer wg.Done()
			start := time.Now()
			defer func() {
				if metered {
					now := time.Now()
					ends[slot] = now
					p.busyNS.Observe(now.Sub(start).Nanoseconds())
				}
				if r := recover(); r != nil {
					panicOnce.Do(func() {
						pan = &WorkerPanic{Value: r, Stack: debug.Stack()}
					})
				}
			}()
			fn(lo, hi)
		}(slot, lo, hi)
		slot++
	}
	wg.Wait()
	if metered {
		join := time.Now()
		for _, end := range ends {
			p.barrierNS.Observe(join.Sub(end).Nanoseconds())
		}
	}
	if pan != nil {
		panic(pan)
	}
}

// Reduce runs one accumulator per worker over [0, n) and combines the
// partial results sequentially with merge.  init produces a fresh
// accumulator; step folds index i into it.  Panic and join semantics match
// ForEach.
func Reduce[T any](p *Pool, n int, init func() T, step func(acc T, i int) T, merge func(a, b T) T) T {
	if n <= 0 {
		return init()
	}
	w := p.workers
	if w > n {
		w = n
	}
	parts := make([]T, w)
	chunk := (n + w - 1) / w
	metered := p.busyNS != nil
	var ends []time.Time
	if metered {
		slots := (n + chunk - 1) / chunk
		p.forks.Add(1)
		p.chunks.Add(int64(slots))
		ends = make([]time.Time, slots)
	}
	var (
		panicOnce sync.Once
		pan       *WorkerPanic
		wg        sync.WaitGroup
	)
	slot := 0
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(slot, lo, hi int) {
			defer wg.Done()
			start := time.Now()
			defer func() {
				if metered {
					now := time.Now()
					ends[slot] = now
					p.busyNS.Observe(now.Sub(start).Nanoseconds())
				}
				if r := recover(); r != nil {
					panicOnce.Do(func() {
						pan = &WorkerPanic{Value: r, Stack: debug.Stack()}
					})
				}
			}()
			acc := init()
			for i := lo; i < hi; i++ {
				acc = step(acc, i)
			}
			parts[slot] = acc
		}(slot, lo, hi)
		slot++
	}
	wg.Wait()
	if metered {
		join := time.Now()
		for _, end := range ends[:slot] {
			p.barrierNS.Observe(join.Sub(end).Nanoseconds())
		}
	}
	if pan != nil {
		panic(pan)
	}
	out := parts[0]
	for i := 1; i < slot; i++ {
		out = merge(out, parts[i])
	}
	return out
}
