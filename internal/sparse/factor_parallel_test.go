package sparse

import (
	"math/rand"
	"testing"

	"repro/internal/parallel"
)

// sameLU asserts two factorizations are identical: pivots, structure, and
// bitwise-equal values.
func sameLU(t *testing.T, a, b *LU) {
	t.Helper()
	if len(a.PRow) != len(b.PRow) {
		t.Fatalf("pivot counts differ: %d vs %d", len(a.PRow), len(b.PRow))
	}
	for k := range a.PRow {
		if a.PRow[k] != b.PRow[k] || a.PCol[k] != b.PCol[k] {
			t.Fatalf("pivot %d differs: (%d,%d) vs (%d,%d)", k, a.PRow[k], a.PCol[k], b.PRow[k], b.PCol[k])
		}
	}
	if a.M.NNZ() != b.M.NNZ() {
		t.Fatalf("element counts differ: %d vs %d", a.M.NNZ(), b.M.NNZ())
	}
	for i := 0; i < a.M.N; i++ {
		ea, eb := a.M.RowHeader(i).First, b.M.RowHeader(i).First
		for ea != nil && eb != nil {
			if ea.Col != eb.Col || ea.Val != eb.Val {
				t.Fatalf("row %d: (%d, %v) vs (%d, %v)", i, ea.Col, ea.Val, eb.Col, eb.Val)
			}
			ea, eb = ea.NextInRow, eb.NextInRow
		}
		if ea != nil || eb != nil {
			t.Fatalf("row %d lengths differ", i)
		}
	}
}

// TestFactorParallelMatchesSequential: the live parallel execution produces
// bitwise-identical factors in both partial and full modes, at several pool
// widths — the correctness claim behind the Figure 7 transformation.
func TestFactorParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 4; trial++ {
		n := 30 + rng.Intn(50)
		m := RandomCircuit(rng, n, 6*n)
		seq, err := m.Factor()
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4, 7} {
			for _, full := range []bool{false, true} {
				par, err := m.FactorParallel(parallel.NewPool(workers), full)
				if err != nil {
					t.Fatalf("workers=%d full=%v: %v", workers, full, err)
				}
				sameLU(t, seq, par)
				if par.Trace.Fills != seq.Trace.Fills {
					t.Errorf("workers=%d full=%v: fills %d vs %d", workers, full, par.Trace.Fills, seq.Trace.Fills)
				}
			}
		}
	}
}

// TestFactorParallelSolve: the parallel factors solve systems correctly.
func TestFactorParallelSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	m := RandomCircuit(rng, 60, 300)
	lu, err := m.FactorParallel(parallel.NewPool(4), true)
	if err != nil {
		t.Fatal(err)
	}
	xTrue := make([]float64, 60)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	x := lu.Solve(m.MulVec(xTrue))
	for i := range x {
		if d := x[i] - xTrue[i]; d > 1e-8 || d < -1e-8 {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], xTrue[i])
		}
	}
}

func TestFactorParallelSingular(t *testing.T) {
	m := New(2)
	m.Set(0, 0, 1)
	if _, err := m.FactorParallel(parallel.NewPool(2), true); err == nil {
		t.Fatal("expected singular error")
	}
}
