package sparse

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/parallel"
	"repro/internal/telemetry"
)

// sameLU asserts two factorizations are identical: pivots, structure, and
// bitwise-equal values.
func sameLU(t *testing.T, a, b *LU) {
	t.Helper()
	if len(a.PRow) != len(b.PRow) {
		t.Fatalf("pivot counts differ: %d vs %d", len(a.PRow), len(b.PRow))
	}
	for k := range a.PRow {
		if a.PRow[k] != b.PRow[k] || a.PCol[k] != b.PCol[k] {
			t.Fatalf("pivot %d differs: (%d,%d) vs (%d,%d)", k, a.PRow[k], a.PCol[k], b.PRow[k], b.PCol[k])
		}
	}
	if a.M.NNZ() != b.M.NNZ() {
		t.Fatalf("element counts differ: %d vs %d", a.M.NNZ(), b.M.NNZ())
	}
	for i := 0; i < a.M.N; i++ {
		ea, eb := a.M.RowHeader(i).First, b.M.RowHeader(i).First
		for ea != nil && eb != nil {
			if ea.Col != eb.Col || ea.Val != eb.Val {
				t.Fatalf("row %d: (%d, %v) vs (%d, %v)", i, ea.Col, ea.Val, eb.Col, eb.Val)
			}
			ea, eb = ea.NextInRow, eb.NextInRow
		}
		if ea != nil || eb != nil {
			t.Fatalf("row %d lengths differ", i)
		}
	}
}

// TestFactorParallelMatchesSequential: the live parallel execution produces
// bitwise-identical factors in both partial and full modes, at several pool
// widths — the correctness claim behind the Figure 7 transformation.
func TestFactorParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 4; trial++ {
		n := 30 + rng.Intn(50)
		m := RandomCircuit(rng, n, 6*n)
		seq, err := m.Factor()
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4, 7} {
			for _, full := range []bool{false, true} {
				par, err := m.FactorParallel(parallel.NewPool(workers), full)
				if err != nil {
					t.Fatalf("workers=%d full=%v: %v", workers, full, err)
				}
				sameLU(t, seq, par)
				if par.Trace.Fills != seq.Trace.Fills {
					t.Errorf("workers=%d full=%v: fills %d vs %d", workers, full, par.Trace.Fills, seq.Trace.Fills)
				}
			}
		}
	}
}

// TestFactorParallelSolve: the parallel factors solve systems correctly.
func TestFactorParallelSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	m := RandomCircuit(rng, 60, 300)
	lu, err := m.FactorParallel(parallel.NewPool(4), true)
	if err != nil {
		t.Fatal(err)
	}
	xTrue := make([]float64, 60)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	x := lu.Solve(m.MulVec(xTrue))
	for i := range x {
		if d := x[i] - xTrue[i]; d > 1e-8 || d < -1e-8 {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], xTrue[i])
		}
	}
}

func TestFactorParallelSingular(t *testing.T) {
	m := New(2)
	m.Set(0, 0, 1)
	if _, err := m.FactorParallel(parallel.NewPool(2), true); err == nil {
		t.Fatal("expected singular error")
	}
}

// TestFactorParallelTelemetry: a telemetry-carrying pool yields per-phase
// timings, worker metrics, and a factorization trace event — and the factors
// themselves are unchanged by the instrumentation.
func TestFactorParallelTelemetry(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	m := RandomCircuit(rng, 50, 250)
	seq, err := m.Factor()
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	reg := telemetry.NewRegistry()
	pool := parallel.NewPool(4).SetTelemetry(telemetry.New(reg, telemetry.NewTraceWriter(&buf)))
	par, err := m.FactorParallel(pool, true)
	if err != nil {
		t.Fatal(err)
	}
	sameLU(t, seq, par)

	snap := reg.Snapshot()
	for _, h := range []string{
		"sparse.phase_heuristic_ns", "sparse.phase_search_ns", "sparse.phase_adjust_ns",
		"sparse.phase_fillin_ns", "sparse.phase_elim_ns",
	} {
		hs, ok := snap.Hists[h]
		if !ok || hs.Count != 1 {
			t.Errorf("histogram %s: count = %d, want 1", h, hs.Count)
		}
	}
	if snap.Counters["pool.forks"] == 0 || snap.Counters["pool.chunks"] == 0 {
		t.Error("pool fork/chunk counters not recorded")
	}
	if snap.Hists["pool.worker_busy_ns"].Count == 0 {
		t.Error("no worker busy samples")
	}

	found := false
	for _, ln := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var ev map[string]any
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("trace line not JSON: %v\n%s", err, ln)
		}
		if ev["ev"] == "sparse.factor_parallel" {
			found = true
			for _, k := range []string{"n", "nnz", "fills", "workers", "full",
				"heuristic_us", "search_us", "adjust_us", "fillin_us", "elim_us"} {
				if _, ok := ev[k]; !ok {
					t.Errorf("sparse.factor_parallel missing %q: %v", k, ev)
				}
			}
			if ev["n"].(float64) != 50 || ev["workers"].(float64) != 4 || ev["full"] != true {
				t.Errorf("sparse.factor_parallel attrs wrong: %v", ev)
			}
		}
	}
	if !found {
		t.Error("no sparse.factor_parallel trace event")
	}
}
