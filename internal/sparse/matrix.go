// Package sparse implements the §5 application: sparse matrices stored as
// orthogonal linked lists (Figure 6), with the three fundamental operations
// the paper names — Scale (linear), Factor (Gaussian elimination with
// Markowitz-style fill-minimizing pivoting, quadratic), and Solve (linear).
//
// The element and header links carry the Appendix A field names: an element
// chains along its row via NextInRow (the paper's ncolE — "next column
// element") and down its column via NextInCol (nrowE); headers chain via
// NextH (nrowH/ncolH) and point to their first element via First
// (relem/celem).
//
// Factor records a per-phase work trace (how many element visits each phase
// of each elimination step performed, per row) which the sched package
// replays on a simulated multiprocessor to regenerate Figure 7.
package sparse

import (
	"fmt"
	"math"
	"math/rand"
)

// Elem is one nonzero element of the matrix.
type Elem struct {
	Row, Col int
	Val      float64
	// NextInRow is the next element of the same row, increasing column
	// (Figure 6's ncolE).
	NextInRow *Elem
	// NextInCol is the next element of the same column, increasing row
	// (Figure 6's nrowE).
	NextInCol *Elem
}

// Header heads one row or column list (Figure 6's header vertices).
type Header struct {
	Index int
	// NextH is the next header (nrowH for rows, ncolH for columns).
	NextH *Header
	// First is the first element of the row/column (relem/celem).
	First *Elem
}

// Matrix is an n×n sparse matrix over orthogonal lists.
type Matrix struct {
	N int
	// RowsHead and ColsHead are the matrix root's rows/cols pointers.
	RowsHead, ColsHead *Header
	// rows and cols index the headers for O(1) access; the linked chains
	// remain the authoritative structure.
	rows, cols []*Header
	nnz        int
}

// New returns an empty n×n matrix with all row and column headers built.
func New(n int) *Matrix {
	if n <= 0 {
		panic("sparse: matrix dimension must be positive")
	}
	m := &Matrix{N: n, rows: make([]*Header, n), cols: make([]*Header, n)}
	for i := n - 1; i >= 0; i-- {
		m.rows[i] = &Header{Index: i, NextH: m.RowsHead}
		m.RowsHead = m.rows[i]
	}
	for j := n - 1; j >= 0; j-- {
		m.cols[j] = &Header{Index: j, NextH: m.ColsHead}
		m.ColsHead = m.cols[j]
	}
	return m
}

// NNZ returns the number of stored elements.
func (m *Matrix) NNZ() int { return m.nnz }

// RowHeader returns the header of row i.
func (m *Matrix) RowHeader(i int) *Header { return m.rows[i] }

// ColHeader returns the header of column j.
func (m *Matrix) ColHeader(j int) *Header { return m.cols[j] }

// Get returns the value at (i, j); absent elements are 0.
func (m *Matrix) Get(i, j int) float64 {
	for e := m.rows[i].First; e != nil && e.Col <= j; e = e.NextInRow {
		if e.Col == j {
			return e.Val
		}
	}
	return 0
}

// find returns the element at (i, j), or nil.
func (m *Matrix) find(i, j int) *Elem {
	for e := m.rows[i].First; e != nil && e.Col <= j; e = e.NextInRow {
		if e.Col == j {
			return e
		}
	}
	return nil
}

// Set stores v at (i, j), inserting an element if needed.  Setting 0 stores
// an explicit zero (structure is not pruned; factorization relies on
// explicit fill-in elements).
func (m *Matrix) Set(i, j int, v float64) *Elem {
	if i < 0 || i >= m.N || j < 0 || j >= m.N {
		panic(fmt.Sprintf("sparse: Set(%d, %d) outside %d×%d", i, j, m.N, m.N))
	}
	if e := m.find(i, j); e != nil {
		e.Val = v
		return e
	}
	e := &Elem{Row: i, Col: j, Val: v}
	m.insertInRow(e)
	m.insertInCol(e)
	m.nnz++
	return e
}

func (m *Matrix) insertInRow(e *Elem) {
	h := m.rows[e.Row]
	if h.First == nil || h.First.Col > e.Col {
		e.NextInRow = h.First
		h.First = e
		return
	}
	prev := h.First
	for prev.NextInRow != nil && prev.NextInRow.Col < e.Col {
		prev = prev.NextInRow
	}
	e.NextInRow = prev.NextInRow
	prev.NextInRow = e
}

func (m *Matrix) insertInCol(e *Elem) {
	h := m.cols[e.Col]
	if h.First == nil || h.First.Row > e.Row {
		e.NextInCol = h.First
		h.First = e
		return
	}
	prev := h.First
	for prev.NextInCol != nil && prev.NextInCol.Row < e.Row {
		prev = prev.NextInCol
	}
	e.NextInCol = prev.NextInCol
	prev.NextInCol = e
}

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	out := New(m.N)
	for i := 0; i < m.N; i++ {
		for e := m.rows[i].First; e != nil; e = e.NextInRow {
			out.Set(e.Row, e.Col, e.Val)
		}
	}
	return out
}

// FromTriplets builds a matrix from (row, col, value) triplets.
func FromTriplets(n int, triplets [][3]float64) *Matrix {
	m := New(n)
	for _, t := range triplets {
		m.Set(int(t[0]), int(t[1]), t[2])
	}
	return m
}

// Dense returns the dense [][]float64 form (for small-matrix validation).
func (m *Matrix) Dense() [][]float64 {
	out := make([][]float64, m.N)
	for i := range out {
		out[i] = make([]float64, m.N)
		for e := m.rows[i].First; e != nil; e = e.NextInRow {
			out[i][e.Col] = e.Val
		}
	}
	return out
}

// Scale multiplies every element by s, traversing the structure row by row
// exactly as the paper's linear-time scale step does.
func (m *Matrix) Scale(s float64) {
	for h := m.RowsHead; h != nil; h = h.NextH {
		for e := h.First; e != nil; e = e.NextInRow {
			e.Val *= s
		}
	}
}

// ScaleTrace returns the per-row work of a Scale pass (element visits per
// row), used by the Figure 7 harness.
func (m *Matrix) ScaleTrace() []int {
	costs := make([]int, m.N)
	for h := m.RowsHead; h != nil; h = h.NextH {
		n := 0
		for e := h.First; e != nil; e = e.NextInRow {
			n++
		}
		costs[h.Index] = n
	}
	return costs
}

// Random builds an n×n matrix with approximately nnz nonzeros at uniformly
// random off-diagonal positions, plus a full, diagonally dominant diagonal
// (each |a_ii| exceeds the absolute sum of its row's off-diagonals), so that
// elimination is numerically benign and pivoting is governed by sparsity.
func Random(rng *rand.Rand, n, nnz int) *Matrix {
	m := New(n)
	rowAbs := make([]float64, n)
	placed := 0
	for placed < nnz-n && placed < n*(n-1)/2 {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j || m.find(i, j) != nil {
			continue
		}
		v := rng.Float64()*2 - 1
		m.Set(i, j, v)
		rowAbs[i] += math.Abs(v)
		placed++
	}
	for i := 0; i < n; i++ {
		m.Set(i, i, rowAbs[i]+1+rng.Float64())
	}
	return m
}

// RandomCircuit builds an n×n matrix with approximately nnz nonzeros whose
// sparsity pattern mimics circuit matrices [Kun86]: connectivity is mostly
// local (geometrically distributed distance from the diagonal) with a few
// long-range connections, symmetric pattern, full diagonally dominant
// diagonal.  Such patterns factor with moderate fill-in, unlike uniformly
// random patterns.
func RandomCircuit(rng *rand.Rand, n, nnz int) *Matrix {
	m := New(n)
	rowAbs := make([]float64, n)
	placed := 0
	for placed < nnz-n {
		i := rng.Intn(n)
		// Geometric jump length, occasionally long-range.
		d := 1 + int(rng.ExpFloat64()*3)
		if rng.Intn(20) == 0 {
			d = 1 + rng.Intn(n-1)
		}
		j := i + d
		if j >= n {
			continue
		}
		if m.find(i, j) != nil {
			continue
		}
		v := rng.Float64()*2 - 1
		m.Set(i, j, v)
		m.Set(j, i, v*(0.5+rng.Float64()))
		rowAbs[i] += math.Abs(m.Get(i, j))
		rowAbs[j] += math.Abs(m.Get(j, i))
		placed += 2
	}
	for i := 0; i < n; i++ {
		m.Set(i, i, rowAbs[i]+1+rng.Float64())
	}
	return m
}

// GridLaplacian builds the 5-point finite-difference Laplacian on a
// side×side grid (dimension side²): the classic PDE test matrix, with
// unavoidable fill under any elimination order.  A second workload family
// for the Figure 7 harness alongside the circuit pattern.
func GridLaplacian(side int) *Matrix {
	n := side * side
	m := New(n)
	at := func(r, c int) int { return r*side + c }
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			i := at(r, c)
			m.Set(i, i, 5)
			if r > 0 {
				m.Set(i, at(r-1, c), -1)
			}
			if r < side-1 {
				m.Set(i, at(r+1, c), -1)
			}
			if c > 0 {
				m.Set(i, at(r, c-1), -1)
			}
			if c < side-1 {
				m.Set(i, at(r, c+1), -1)
			}
		}
	}
	return m
}

// MulVec returns A·x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.N {
		panic("sparse: dimension mismatch in MulVec")
	}
	out := make([]float64, m.N)
	for h := m.RowsHead; h != nil; h = h.NextH {
		sum := 0.0
		for e := h.First; e != nil; e = e.NextInRow {
			sum += e.Val * x[e.Col]
		}
		out[h.Index] = sum
	}
	return out
}

// rowLen returns the number of elements in row i (linked traversal).
func (m *Matrix) rowLen(i int) int {
	n := 0
	for e := m.rows[i].First; e != nil; e = e.NextInRow {
		n++
	}
	return n
}

// colLen returns the number of elements in column j.
func (m *Matrix) colLen(j int) int {
	n := 0
	for e := m.cols[j].First; e != nil; e = e.NextInCol {
		n++
	}
	return n
}
