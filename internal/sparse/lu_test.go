package sparse

import (
	"math"
	"math/rand"
	"testing"
)

// extractLU reconstructs the dense L and U factors from the in-place
// factorization under the pivot permutation: L[k][j] for j<k holds the
// multipliers, with a unit diagonal; U[k][j] for j>=k holds the upper part.
func extractLU(lu *LU) (l, u [][]float64) {
	n := lu.M.N
	l = make([][]float64, n)
	u = make([][]float64, n)
	for k := 0; k < n; k++ {
		l[k] = make([]float64, n)
		u[k] = make([]float64, n)
		l[k][k] = 1
	}
	for i := 0; i < n; i++ {
		for e := lu.M.RowHeader(i).First; e != nil; e = e.NextInRow {
			r, c := lu.RowOrder[e.Row], lu.ColOrder[e.Col]
			if c < r {
				l[r][c] = e.Val
			} else {
				u[r][c] = e.Val
			}
		}
	}
	return l, u
}

// TestLUReconstructsPAQ: multiplying the extracted factors reproduces the
// permuted input, L·U = P·A·Q.
func TestLUReconstructsPAQ(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 6; trial++ {
		n := 8 + rng.Intn(20)
		m := RandomCircuit(rng, n, 4*n)
		lu, err := m.Factor()
		if err != nil {
			t.Fatal(err)
		}
		l, u := extractLU(lu)
		a := m.Dense()
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				var prod float64
				for k := 0; k < n; k++ {
					prod += l[r][k] * u[k][c]
				}
				want := a[lu.PRow[r]][lu.PCol[c]]
				if math.Abs(prod-want) > 1e-9*(1+math.Abs(want)) {
					t.Fatalf("trial %d: (L·U)[%d][%d] = %v, PAQ = %v", trial, r, c, prod, want)
				}
			}
		}
	}
}

// TestPermutationsAreBijections: PRow/PCol enumerate every index once and
// RowOrder/ColOrder invert them.
func TestPermutationsAreBijections(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	m := RandomCircuit(rng, 40, 200)
	lu, err := m.Factor()
	if err != nil {
		t.Fatal(err)
	}
	seenR := make([]bool, m.N)
	seenC := make([]bool, m.N)
	for k := 0; k < m.N; k++ {
		if seenR[lu.PRow[k]] || seenC[lu.PCol[k]] {
			t.Fatalf("pivot %d repeats a row or column", k)
		}
		seenR[lu.PRow[k]] = true
		seenC[lu.PCol[k]] = true
		if lu.RowOrder[lu.PRow[k]] != k || lu.ColOrder[lu.PCol[k]] != k {
			t.Fatalf("order arrays do not invert the permutation at %d", k)
		}
	}
}

// TestMarkowitzPrefersSparsePivots: on a matrix with one dense row/column
// (an arrowhead), Markowitz must not pick the dense intersection first —
// eliminating the plain diagonal first produces zero fill.
func TestMarkowitzPrefersSparsePivots(t *testing.T) {
	n := 12
	m := New(n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 10)
		if i > 0 {
			m.Set(0, i, 1)
			m.Set(i, 0, 1)
		}
	}
	lu, err := m.Factor()
	if err != nil {
		t.Fatal(err)
	}
	if lu.Trace.Fills != 0 {
		t.Errorf("arrowhead with good ordering fills %d, want 0", lu.Trace.Fills)
	}
	if lu.PRow[0] == 0 && lu.PCol[0] == 0 {
		t.Error("Markowitz picked the dense corner first")
	}
}

// TestStabilityThresholdRejectsTinyPivots: a structurally attractive but
// numerically tiny pivot is passed over.
func TestStabilityThresholdRejectsTinyPivots(t *testing.T) {
	m := New(3)
	// (0,0) has the best Markowitz count but is tiny relative to its
	// column; rows 1-2 are denser but well-scaled.
	m.Set(0, 0, 1e-14)
	m.Set(1, 0, 1)
	m.Set(1, 1, 4)
	m.Set(1, 2, 1)
	m.Set(2, 1, 1)
	m.Set(2, 2, 4)
	m.Set(0, 1, 1)
	lu, err := m.Factor()
	if err != nil {
		t.Fatal(err)
	}
	if lu.PRow[0] == 0 && lu.PCol[0] == 0 {
		t.Error("tiny pivot (0,0) selected despite the stability threshold")
	}
	// The factorization still solves accurately.
	xTrue := []float64{1, 2, 3}
	x := lu.Solve(m.MulVec(xTrue))
	for i := range x {
		if math.Abs(x[i]-xTrue[i]) > 1e-6 {
			t.Fatalf("x = %v, want %v", x, xTrue)
		}
	}
}
