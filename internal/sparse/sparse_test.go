package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetGetAndStructure(t *testing.T) {
	m := New(3)
	m.Set(0, 0, 1)
	m.Set(0, 2, 2)
	m.Set(1, 1, 3)
	m.Set(2, 0, 4)
	m.Set(0, 1, 5) // insert between existing row elements

	if got := m.Get(0, 1); got != 5 {
		t.Errorf("Get(0,1) = %v", got)
	}
	if got := m.Get(2, 2); got != 0 {
		t.Errorf("Get(2,2) = %v, want 0", got)
	}
	if m.NNZ() != 5 {
		t.Errorf("NNZ = %d, want 5", m.NNZ())
	}
	// Row 0 chain is sorted by column: 0 -> 1 -> 2.
	var cols []int
	for e := m.RowHeader(0).First; e != nil; e = e.NextInRow {
		cols = append(cols, e.Col)
	}
	if len(cols) != 3 || cols[0] != 0 || cols[1] != 1 || cols[2] != 2 {
		t.Errorf("row 0 columns = %v", cols)
	}
	// Column 0 chain sorted by row: 0 -> 2.
	var rows []int
	for e := m.ColHeader(0).First; e != nil; e = e.NextInCol {
		rows = append(rows, e.Row)
	}
	if len(rows) != 2 || rows[0] != 0 || rows[1] != 2 {
		t.Errorf("col 0 rows = %v", rows)
	}
	// Header chains exist from the matrix root.
	count := 0
	for h := m.RowsHead; h != nil; h = h.NextH {
		count++
	}
	if count != 3 {
		t.Errorf("row header chain length = %d", count)
	}
}

func TestSetOverwrites(t *testing.T) {
	m := New(2)
	m.Set(0, 0, 1)
	m.Set(0, 0, 7)
	if m.NNZ() != 1 || m.Get(0, 0) != 7 {
		t.Errorf("overwrite failed: nnz=%d val=%v", m.NNZ(), m.Get(0, 0))
	}
}

func TestScale(t *testing.T) {
	m := FromTriplets(2, [][3]float64{{0, 0, 2}, {1, 1, 3}, {0, 1, -1}})
	m.Scale(2)
	if m.Get(0, 0) != 4 || m.Get(1, 1) != 6 || m.Get(0, 1) != -2 {
		t.Errorf("scale failed: %v", m.Dense())
	}
	tr := m.ScaleTrace()
	if tr[0] != 2 || tr[1] != 1 {
		t.Errorf("scale trace = %v", tr)
	}
}

func TestMulVec(t *testing.T) {
	m := FromTriplets(2, [][3]float64{{0, 0, 1}, {0, 1, 2}, {1, 0, 3}})
	got := m.MulVec([]float64{1, 1})
	if got[0] != 3 || got[1] != 3 {
		t.Errorf("MulVec = %v", got)
	}
}

func TestFactorSolveSmall(t *testing.T) {
	// A well-conditioned 3×3 system with a known solution.
	m := FromTriplets(3, [][3]float64{
		{0, 0, 4}, {0, 1, 1},
		{1, 0, 1}, {1, 1, 5}, {1, 2, 2},
		{2, 1, 1}, {2, 2, 6},
	})
	lu, err := m.Factor()
	if err != nil {
		t.Fatal(err)
	}
	xTrue := []float64{1, -2, 3}
	b := m.MulVec(xTrue)
	x := lu.Solve(b)
	for i := range x {
		if math.Abs(x[i]-xTrue[i]) > 1e-9 {
			t.Fatalf("x = %v, want %v", x, xTrue)
		}
	}
}

func TestFactorSolveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 8; trial++ {
		n := 10 + rng.Intn(40)
		m := Random(rng, n, 4*n)
		lu, err := m.Factor()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.Float64()*4 - 2
		}
		b := m.MulVec(xTrue)
		x := lu.Solve(b)
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-6 {
				t.Fatalf("trial %d (n=%d): x[%d] = %v, want %v", trial, n, i, x[i], xTrue[i])
			}
		}
		// Factoring must not mutate the input.
		b2 := m.MulVec(xTrue)
		for i := range b {
			if b[i] != b2[i] {
				t.Fatal("Factor mutated the input matrix")
			}
		}
	}
}

func TestFactorSingular(t *testing.T) {
	m := New(2)
	m.Set(0, 0, 1) // row 1 empty: singular
	if _, err := m.Factor(); err == nil {
		t.Fatal("expected singular error")
	}
}

func TestFactorTraceShape(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := Random(rng, 30, 120)
	lu, err := m.Factor()
	if err != nil {
		t.Fatal(err)
	}
	tr := lu.Trace
	if tr.N != 30 || len(tr.Steps) != 30 {
		t.Fatalf("trace has %d steps for n=%d", len(tr.Steps), tr.N)
	}
	if tr.NNZ0 != m.NNZ() {
		t.Errorf("trace NNZ0 = %d, want %d", tr.NNZ0, m.NNZ())
	}
	var heur, search, adjust, fill, elim int64
	for _, st := range tr.Steps {
		heur += st.Heuristic.Total()
		search += st.Search.Total()
		adjust += int64(st.Adjust)
		fill += st.Fillin.Total()
		elim += st.Elim.Total()
	}
	if heur == 0 || search == 0 || adjust == 0 || elim == 0 {
		t.Errorf("empty phase work: h=%d s=%d a=%d f=%d e=%d", heur, search, adjust, fill, elim)
	}
	// Heuristic and search scan the same submatrix: comparable totals.
	if search < heur/2 || search > 2*heur {
		t.Errorf("search/heuristic imbalance: %d vs %d", search, heur)
	}
}

func TestFillinsAreRecorded(t *testing.T) {
	// A 5-point Laplacian on a 4×4 grid: every elimination order produces
	// fill (grid graphs have treewidth > 1), so even Markowitz must insert.
	const side = 4
	m := New(side * side)
	at := func(r, c int) int { return r*side + c }
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			i := at(r, c)
			m.Set(i, i, 5)
			if r > 0 {
				m.Set(i, at(r-1, c), -1)
			}
			if r < side-1 {
				m.Set(i, at(r+1, c), -1)
			}
			if c > 0 {
				m.Set(i, at(r, c-1), -1)
			}
			if c < side-1 {
				m.Set(i, at(r, c+1), -1)
			}
		}
	}
	lu, err := m.Factor()
	if err != nil {
		t.Fatal(err)
	}
	if lu.Trace.Fills == 0 {
		t.Error("expected fill-ins for this pattern")
	}
	if lu.M.NNZ() != m.NNZ()+lu.Trace.Fills {
		t.Errorf("nnz %d != original %d + fills %d", lu.M.NNZ(), m.NNZ(), lu.Trace.Fills)
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := FromTriplets(2, [][3]float64{{0, 0, 1}, {1, 1, 2}})
	c := m.Clone()
	c.Set(0, 0, 99)
	c.Set(0, 1, 5)
	if m.Get(0, 0) != 1 || m.Get(0, 1) != 0 {
		t.Error("Clone shares structure with the original")
	}
}

func TestRandomMatrixProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := Random(rng, 50, 200)
	// Full diagonal.
	for i := 0; i < 50; i++ {
		if m.Get(i, i) == 0 {
			t.Fatalf("diagonal (%d,%d) missing", i, i)
		}
	}
	// Diagonal dominance.
	for i := 0; i < 50; i++ {
		sum := 0.0
		for e := m.RowHeader(i).First; e != nil; e = e.NextInRow {
			if e.Col != i {
				sum += math.Abs(e.Val)
			}
		}
		if math.Abs(m.Get(i, i)) <= sum {
			t.Fatalf("row %d not diagonally dominant", i)
		}
	}
	if m.NNZ() < 200 {
		t.Errorf("nnz = %d, want >= 200", m.NNZ())
	}
}

// TestPropertySolveRoundTrip: for random diagonally dominant systems,
// factor+solve recovers the solution.
func TestPropertySolveRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(15)
		m := Random(rng, n, 3*n)
		lu, err := m.Factor()
		if err != nil {
			return false
		}
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		x := lu.Solve(m.MulVec(xTrue))
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropertyColumnListsMirrorRowLists: the orthogonal lists stay
// consistent through arbitrary insertion orders.
func TestPropertyColumnListsMirrorRowLists(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		m := New(n)
		for k := 0; k < 20; k++ {
			m.Set(rng.Intn(n), rng.Intn(n), rng.Float64())
		}
		// Every element in a row list appears in its column list and vice
		// versa, with both lists strictly sorted.
		seen := map[*Elem]bool{}
		for i := 0; i < n; i++ {
			last := -1
			for e := m.RowHeader(i).First; e != nil; e = e.NextInRow {
				if e.Row != i || e.Col <= last {
					return false
				}
				last = e.Col
				seen[e] = true
			}
		}
		count := 0
		for j := 0; j < n; j++ {
			last := -1
			for e := m.ColHeader(j).First; e != nil; e = e.NextInCol {
				if e.Col != j || e.Row <= last || !seen[e] {
					return false
				}
				last = e.Row
				count++
			}
		}
		return count == len(seen) && count == m.NNZ()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSolveTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := Random(rng, 20, 60)
	lu, err := m.Factor()
	if err != nil {
		t.Fatal(err)
	}
	tr := lu.SolveTrace()
	if len(tr) != 20 {
		t.Fatalf("solve trace length = %d", len(tr))
	}
	total := 0
	for _, c := range tr {
		total += c
	}
	if total < 20 {
		t.Errorf("solve trace total = %d, implausibly small", total)
	}
}
