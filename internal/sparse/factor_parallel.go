package sparse

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/parallel"
	"repro/internal/telemetry"
)

// FactorParallel is Factor with the row-parallel phases executed on real
// goroutines — the live version of the transformation that Figure 7
// simulates.  With full=false (the "partial" analysis) only the
// structurally read-only heuristic and pivot-search phases fan out; with
// full=true the fill-in and elimination phases do too, with per-column
// locks guarding the shared column lists during fill-in.  The pivot order
// is a deterministic total order, so the returned factors are bitwise
// identical to Factor's.
func (m *Matrix) FactorParallel(pool *parallel.Pool, full bool) (*LU, error) {
	w := m.Clone()
	n := w.N
	lu := &LU{
		M:        w,
		PRow:     make([]int, 0, n),
		PCol:     make([]int, 0, n),
		RowOrder: make([]int, n),
		ColOrder: make([]int, n),
		Trace:    &Trace{N: n, NNZ0: m.NNZ()},
	}
	for i := range lu.RowOrder {
		lu.RowOrder[i] = -1
		lu.ColOrder[i] = -1
	}
	rowCount := make([]int, n)
	colCount := make([]int, n)
	for i := 0; i < n; i++ {
		rowCount[i] = w.rowLen(i)
		colCount[i] = w.colLen(i)
	}
	activeCol := func(j int) bool { return lu.ColOrder[j] < 0 }

	colMax := make([]float64, n)
	colLocks := make([]sync.Mutex, n)
	fillLimit := maxFillGrowth * (m.NNZ() + n)
	activeRows := make([]int, 0, n)

	// Phase profiling: when the pool carries telemetry, accumulate the time
	// spent in each of the five phases across all n pivot steps and record
	// the totals once per factorization.
	tel := pool.Telemetry()
	metered := tel.Enabled()
	var heuristicNS, searchNS, adjustNS, fillinNS, elimNS int64
	var mark time.Time
	if metered {
		mark = time.Now()
	}
	phase := func(acc *int64) {
		if metered {
			now := time.Now()
			*acc += now.Sub(mark).Nanoseconds()
			mark = now
		}
	}

	for k := 0; k < n; k++ {
		activeRows = activeRows[:0]
		for i := 0; i < n; i++ {
			if lu.RowOrder[i] < 0 {
				activeRows = append(activeRows, i)
			}
		}
		phase(&adjustNS) // active-row scan is bookkeeping; charge to adjust

		// Heuristic phase: per-column magnitude bounds, merged from
		// per-worker partial maxima.
		merged := parallel.Reduce(pool, len(activeRows),
			func() []float64 { return make([]float64, n) },
			func(acc []float64, idx int) []float64 {
				i := activeRows[idx]
				for e := w.rows[i].First; e != nil; e = e.NextInRow {
					if !activeCol(e.Col) {
						continue
					}
					if a := math.Abs(e.Val); a > acc[e.Col] {
						acc[e.Col] = a
					}
				}
				return acc
			},
			func(a, b []float64) []float64 {
				for j := range a {
					if b[j] > a[j] {
						a[j] = b[j]
					}
				}
				return a
			})
		copy(colMax, merged)
		phase(&heuristicNS)

		// Search phase: per-worker champions combined with the same total
		// order the sequential search uses.
		type champ struct {
			e     *Elem
			score int
			mag   float64
		}
		best := parallel.Reduce(pool, len(activeRows),
			func() champ { return champ{score: math.MaxInt} },
			func(acc champ, idx int) champ {
				i := activeRows[idx]
				for e := w.rows[i].First; e != nil; e = e.NextInRow {
					if !activeCol(e.Col) {
						continue
					}
					mag := math.Abs(e.Val)
					if mag < stabilityU*colMax[e.Col] || mag == 0 {
						continue
					}
					score := (rowCount[i] - 1) * (colCount[e.Col] - 1)
					if betterPivot(score, mag, e, acc.score, acc.mag, acc.e) {
						acc = champ{e: e, score: score, mag: mag}
					}
				}
				return acc
			},
			func(a, b champ) champ {
				if b.e != nil && betterPivot(b.score, b.mag, b.e, a.score, a.mag, a.e) {
					return b
				}
				return a
			})
		phase(&searchNS)
		if best.e == nil {
			return nil, fmt.Errorf("%w at step %d", ErrSingular, k)
		}
		pivot := best.e
		pr, pc := pivot.Row, pivot.Col

		// Adjust: sequential bookkeeping, as in Factor.
		lu.PRow = append(lu.PRow, pr)
		lu.PCol = append(lu.PCol, pc)
		lu.RowOrder[pr] = k
		lu.ColOrder[pc] = k
		for e := w.cols[pc].First; e != nil; e = e.NextInCol {
			if e.Row != pr && lu.RowOrder[e.Row] < 0 {
				rowCount[e.Row]--
			}
		}
		for e := w.rows[pr].First; e != nil; e = e.NextInRow {
			if e.Col != pc && activeCol(e.Col) {
				colCount[e.Col]--
			}
		}

		var updates []*Elem
		for e := w.cols[pc].First; e != nil; e = e.NextInCol {
			if e.Row != pr && lu.RowOrder[e.Row] < 0 {
				updates = append(updates, e)
			}
		}
		phase(&adjustNS)

		// Fill-in phase.  Row lists are private to their update row; column
		// lists are shared and guarded per column.
		fills := make([]int, len(updates))
		fillin := func(u int) {
			row := updates[u].Row
			cursor := w.rows[row].First
			var prev *Elem
			for pe := w.rows[pr].First; pe != nil; pe = pe.NextInRow {
				if pe.Col == pc || !activeCol(pe.Col) {
					continue
				}
				for cursor != nil && cursor.Col < pe.Col {
					prev = cursor
					cursor = cursor.NextInRow
				}
				if cursor != nil && cursor.Col == pe.Col {
					continue
				}
				e := &Elem{Row: row, Col: pe.Col}
				// Row insertion at the cursor (row list owned by this task).
				e.NextInRow = cursor
				if prev == nil {
					w.rows[row].First = e
				} else {
					prev.NextInRow = e
				}
				prev = e
				// Column insertion under the column's lock.
				colLocks[pe.Col].Lock()
				w.insertInCol(e)
				colCount[pe.Col]++
				colLocks[pe.Col].Unlock()
				rowCount[row]++
				fills[u]++
			}
		}
		if full {
			pool.ForEach(len(updates), fillin)
		} else {
			for u := range updates {
				fillin(u)
			}
		}
		for u := range fills {
			lu.Trace.Fills += fills[u]
			w.nnz += fills[u]
		}
		phase(&fillinNS)
		if w.NNZ() > fillLimit {
			return nil, fmt.Errorf("sparse: fill-in exceeded %d elements at step %d", fillLimit, k)
		}

		// Elimination phase: each task writes only its own row's values.
		elim := func(u int) {
			mult := updates[u].Val / pivot.Val
			updates[u].Val = mult
			cursor := w.rows[updates[u].Row].First
			for pe := w.rows[pr].First; pe != nil; pe = pe.NextInRow {
				if pe.Col == pc || !activeCol(pe.Col) {
					continue
				}
				for cursor.Col < pe.Col {
					cursor = cursor.NextInRow
				}
				cursor.Val -= mult * pe.Val
			}
		}
		if full {
			pool.ForEach(len(updates), elim)
		} else {
			for u := range updates {
				elim(u)
			}
		}
		phase(&elimNS)
	}
	if metered {
		tel.Histogram("sparse.phase_heuristic_ns").Observe(heuristicNS)
		tel.Histogram("sparse.phase_search_ns").Observe(searchNS)
		tel.Histogram("sparse.phase_adjust_ns").Observe(adjustNS)
		tel.Histogram("sparse.phase_fillin_ns").Observe(fillinNS)
		tel.Histogram("sparse.phase_elim_ns").Observe(elimNS)
		tel.Emit("sparse.factor_parallel",
			telemetry.Int("n", n),
			telemetry.Int("nnz", w.NNZ()),
			telemetry.Int("fills", lu.Trace.Fills),
			telemetry.Int("workers", pool.Workers()),
			telemetry.Bool("full", full),
			telemetry.DurUS("heuristic_us", time.Duration(heuristicNS)),
			telemetry.DurUS("search_us", time.Duration(searchNS)),
			telemetry.DurUS("adjust_us", time.Duration(adjustNS)),
			telemetry.DurUS("fillin_us", time.Duration(fillinNS)),
			telemetry.DurUS("elim_us", time.Duration(elimNS)))
	}
	return lu, nil
}
