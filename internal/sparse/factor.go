package sparse

import (
	"errors"
	"fmt"
	"math"
)

// The five phases of one elimination step, §5:
//
//	let SM = submatrix[R+1..N, R+1..N];
//	compute fillin heuristic for each elem in SM;   (Heuristic)
//	search SM for best pivot p;                     (Search)
//	adjust M to bring p into pivot position;        (Adjust — sequential)
//	add fillins to SM;                              (Fillin)
//	perform elimination on each row of SM;          (Elim)
//
// Heuristic, Search, Fillin and Elim operate row by row on the submatrix;
// Adjust is inherently sequential (the paper's stated reason the full
// speedup stays sub-linear).

// PhaseTrace records the work of one row-parallel phase: one cost per
// participating row, plus any inherently sequential tail (e.g. the final
// reduction of the pivot search).
type PhaseTrace struct {
	RowCosts []int
	Seq      int
}

// Total returns the phase's total work.
func (p PhaseTrace) Total() int64 {
	t := int64(p.Seq)
	for _, c := range p.RowCosts {
		t += int64(c)
	}
	return t
}

// StepTrace records the work of one elimination step.
type StepTrace struct {
	Heuristic PhaseTrace
	Search    PhaseTrace
	Adjust    int
	Fillin    PhaseTrace
	Elim      PhaseTrace
}

// Trace is the full work trace of a factorization.
type Trace struct {
	N     int
	NNZ0  int
	Fills int
	Steps []StepTrace
}

// LU holds the in-place LU factorization of a matrix: after Factor, the
// matrix stores U in the pivot rows and the L multipliers below the pivots,
// under the row/column pivot permutation.
type LU struct {
	M *Matrix
	// PRow[k] and PCol[k] are the original row/column indices of the k-th
	// pivot.
	PRow, PCol []int
	// RowOrder and ColOrder invert the pivot permutation: RowOrder[i] = k
	// iff PRow[k] = i.
	RowOrder, ColOrder []int
	// Trace is the per-phase work record used by the Figure 7 harness.
	Trace *Trace
}

// ErrSingular reports that no admissible pivot exists.
var ErrSingular = errors.New("sparse: matrix is numerically singular")

// stabilityU is the relative pivot threshold: a pivot must be at least this
// fraction of the largest active magnitude in its column.  The classic
// Markowitz-with-threshold compromise [Kun86].
const stabilityU = 0.1

// maxFillGrowth aborts factorizations whose fill-in exceeds this multiple of
// the original nonzero count — a safety valve, not a tuning knob.
const maxFillGrowth = 400

// Factor performs Gaussian elimination with Markowitz fill-minimizing
// pivoting on a copy of m, returning the LU factors and the per-phase work
// trace.  m itself is unchanged.
func (m *Matrix) Factor() (*LU, error) {
	w := m.Clone()
	n := w.N
	lu := &LU{
		M:        w,
		PRow:     make([]int, 0, n),
		PCol:     make([]int, 0, n),
		RowOrder: make([]int, n),
		ColOrder: make([]int, n),
		Trace:    &Trace{N: n, NNZ0: m.NNZ()},
	}
	for i := range lu.RowOrder {
		lu.RowOrder[i] = -1
		lu.ColOrder[i] = -1
	}

	// Active-submatrix row/column element counts, maintained incrementally.
	rowCount := make([]int, n)
	colCount := make([]int, n)
	for i := 0; i < n; i++ {
		rowCount[i] = w.rowLen(i)
		colCount[i] = w.colLen(i)
	}
	activeRow := func(i int) bool { return lu.RowOrder[i] < 0 }
	activeCol := func(j int) bool { return lu.ColOrder[j] < 0 }

	colMax := make([]float64, n)
	fillLimit := maxFillGrowth * (m.NNZ() + n)

	for k := 0; k < n; k++ {
		var st StepTrace

		// Phase 1 — heuristic: visit every active element, computing the
		// per-column magnitude bound and (conceptually) each element's
		// Markowitz count.  One cost unit per element visited.
		for j := 0; j < n; j++ {
			if activeCol(j) {
				colMax[j] = 0
			}
		}
		for i := 0; i < n; i++ {
			if !activeRow(i) {
				continue
			}
			visits := 0
			for e := w.rows[i].First; e != nil; e = e.NextInRow {
				if !activeCol(e.Col) {
					continue
				}
				visits++
				if a := math.Abs(e.Val); a > colMax[e.Col] {
					colMax[e.Col] = a
				}
			}
			st.Heuristic.RowCosts = append(st.Heuristic.RowCosts, visits)
		}

		// Phase 2 — search: scan the active elements again for the
		// admissible pivot with the lowest Markowitz cost (r-1)(c-1).
		// Row-parallel with a sequential combine of per-row champions.
		var pivot *Elem
		bestScore := math.MaxInt
		bestMag := 0.0
		for i := 0; i < n; i++ {
			if !activeRow(i) {
				continue
			}
			visits := 0
			for e := w.rows[i].First; e != nil; e = e.NextInRow {
				if !activeCol(e.Col) {
					continue
				}
				visits++
				mag := math.Abs(e.Val)
				if mag < stabilityU*colMax[e.Col] || mag == 0 {
					continue
				}
				score := (rowCount[i] - 1) * (colCount[e.Col] - 1)
				if betterPivot(score, mag, e, bestScore, bestMag, pivot) {
					pivot, bestScore, bestMag = e, score, mag
				}
			}
			st.Search.RowCosts = append(st.Search.RowCosts, visits)
		}
		st.Search.Seq = len(st.Search.RowCosts) // combine the row champions
		if pivot == nil {
			return nil, fmt.Errorf("%w at step %d", ErrSingular, k)
		}
		pr, pc := pivot.Row, pivot.Col

		// Phase 3 — adjust: bring the pivot into position.  Logically a
		// row/column permutation; the paper physically rearranges the lists.
		// Sequential either way; cost ~ pivot row + column lengths.
		lu.PRow = append(lu.PRow, pr)
		lu.PCol = append(lu.PCol, pc)
		lu.RowOrder[pr] = k
		lu.ColOrder[pc] = k
		st.Adjust = rowCount[pr] + colCount[pc]

		// Maintain counts: the pivot row and column leave the submatrix.
		for e := w.cols[pc].First; e != nil; e = e.NextInCol {
			if e.Row != pr && activeRow(e.Row) {
				rowCount[e.Row]--
			}
		}
		for e := w.rows[pr].First; e != nil; e = e.NextInRow {
			if e.Col != pc && activeCol(e.Col) {
				colCount[e.Col]--
			}
		}

		// Phase 4 — fillin: for every active row with an element in the
		// pivot column, insert the missing elements of the update pattern.
		// Structural modification: in the paper's terms this is the phase
		// whose stores invalidate the element-link axioms.
		type updRow struct {
			row  int
			mult *Elem
		}
		var updates []updRow
		for e := w.cols[pc].First; e != nil; e = e.NextInCol {
			if e.Row != pr && activeRow(e.Row) {
				updates = append(updates, updRow{e.Row, e})
			}
		}
		for _, u := range updates {
			cost := 0
			cursor := w.rows[u.row].First
			for pe := w.rows[pr].First; pe != nil; pe = pe.NextInRow {
				if pe.Col == pc || !activeCol(pe.Col) {
					continue
				}
				cost++
				for cursor != nil && cursor.Col < pe.Col {
					cursor = cursor.NextInRow
				}
				if cursor == nil || cursor.Col != pe.Col {
					w.Set(u.row, pe.Col, 0)
					rowCount[u.row]++
					colCount[pe.Col]++
					lu.Trace.Fills++
					cost += 2 // the two list insertions
				}
			}
			st.Fillin.RowCosts = append(st.Fillin.RowCosts, cost)
		}
		if w.NNZ() > fillLimit {
			return nil, fmt.Errorf("sparse: fill-in exceeded %d elements at step %d", fillLimit, k)
		}

		// Phase 5 — elimination: update each row of the submatrix.  Values
		// only; the structure was completed by the fillin phase, which is
		// what makes this phase structurally read-only.
		for _, u := range updates {
			mult := u.mult.Val / pivot.Val
			u.mult.Val = mult // store the L multiplier in place
			cost := 0
			cursor := w.rows[u.row].First
			for pe := w.rows[pr].First; pe != nil; pe = pe.NextInRow {
				if pe.Col == pc || !activeCol(pe.Col) {
					continue
				}
				for cursor.Col < pe.Col {
					cursor = cursor.NextInRow
				}
				cursor.Val -= mult * pe.Val
				cost += 3 // row-merge advance plus the multiply-add
			}
			st.Elim.RowCosts = append(st.Elim.RowCosts, cost)
		}

		lu.Trace.Steps = append(lu.Trace.Steps, st)
	}
	return lu, nil
}

// betterPivot imposes a total order on pivot candidates — lowest Markowitz
// score, then largest magnitude, then lowest (row, col) — so that
// sequential and parallel searches select identical pivots.
func betterPivot(score int, mag float64, e *Elem, bestScore int, bestMag float64, best *Elem) bool {
	if best == nil {
		return true
	}
	if score != bestScore {
		return score < bestScore
	}
	if mag != bestMag {
		return mag > bestMag
	}
	if e.Row != best.Row {
		return e.Row < best.Row
	}
	return e.Col < best.Col
}

// Solve solves A·x = b using the factorization: with P A Q = L U, it solves
// L w = P b forward, U y = w backward, and scatters x = Q y.
func (lu *LU) Solve(b []float64) []float64 {
	n := lu.M.N
	if len(b) != n {
		panic("sparse: dimension mismatch in Solve")
	}
	// Forward substitution, pushing each finalized w[k] down its column.
	w := make([]float64, n)
	for k := 0; k < n; k++ {
		w[k] = b[lu.PRow[k]]
	}
	for k := 0; k < n; k++ {
		for e := lu.M.cols[lu.PCol[k]].First; e != nil; e = e.NextInCol {
			m := lu.RowOrder[e.Row]
			if m > k {
				w[m] -= e.Val * w[k]
			}
		}
	}
	// Backward substitution.
	y := make([]float64, n)
	for k := n - 1; k >= 0; k-- {
		sum := w[k]
		var diag float64
		for e := lu.M.rows[lu.PRow[k]].First; e != nil; e = e.NextInRow {
			m := lu.ColOrder[e.Col]
			switch {
			case m == k:
				diag = e.Val
			case m > k:
				sum -= e.Val * y[m]
			}
		}
		y[k] = sum / diag
	}
	x := make([]float64, n)
	for k := 0; k < n; k++ {
		x[lu.PCol[k]] = y[k]
	}
	return x
}

// SolveTrace returns the per-row work of forward+backward substitution
// (element visits per pivot step), for the Figure 7 harness.
func (lu *LU) SolveTrace() []int {
	n := lu.M.N
	costs := make([]int, n)
	for k := 0; k < n; k++ {
		c := 0
		for e := lu.M.cols[lu.PCol[k]].First; e != nil; e = e.NextInCol {
			if lu.RowOrder[e.Row] > k {
				c++
			}
		}
		for e := lu.M.rows[lu.PRow[k]].First; e != nil; e = e.NextInRow {
			if lu.ColOrder[e.Col] >= k {
				c++
			}
		}
		costs[k] = c
	}
	return costs
}
