package prover

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/axiom"
	"repro/internal/pathexpr"
	"repro/internal/telemetry"
)

// TestStatsRichFields: every query reports DFA compiles, peak depth, and
// budget consumption alongside the original counters.
func TestStatsRichFields(t *testing.T) {
	p := New(axiom.LeafLinkedBinaryTree(), Options{})
	proof := p.ProveDisjoint(pathexpr.MustParse("L.L.N"), pathexpr.MustParse("L.R.N"))
	if proof.Result != Proved {
		t.Fatalf("result = %v", proof.Result)
	}
	st := proof.Stats
	if st.StepsUsed != st.ProveCalls || st.StepsUsed == 0 {
		t.Errorf("StepsUsed = %d, ProveCalls = %d", st.StepsUsed, st.ProveCalls)
	}
	if st.DFACompiles == 0 {
		t.Error("DFACompiles = 0 on a fresh prover")
	}
	if st.PeakDepth == 0 {
		t.Error("PeakDepth = 0 for a recursive proof")
	}
	// A repeat of the same query is answered from the caches: no new DFA
	// compilations.
	again := p.ProveDisjoint(pathexpr.MustParse("L.L.N"), pathexpr.MustParse("L.R.N"))
	if again.Stats.DFACompiles != 0 {
		t.Errorf("second query compiled %d DFAs, want 0", again.Stats.DFACompiles)
	}
	if !strings.Contains(proof.Render(), "DFA compiles") {
		t.Error("Render missing DFA compile count")
	}
}

// TestProverTelemetry: metrics aggregate across queries and the JSONL trace
// carries the per-query span plus rule events.
func TestProverTelemetry(t *testing.T) {
	var buf bytes.Buffer
	reg := telemetry.NewRegistry()
	tel := telemetry.New(reg, telemetry.NewTraceWriter(&buf))
	p := New(axiom.LeafLinkedBinaryTree(), Options{Telemetry: tel})

	if p.ProveDisjoint(pathexpr.MustParse("L.L.N"), pathexpr.MustParse("L.R.N")).Result != Proved {
		t.Fatal("section 3.3 theorem not proved")
	}
	// §5's Theorem T exercises the Kleene induction machinery.
	p2 := New(axiom.SparseMatrixCore(), Options{Telemetry: tel})
	if p2.Prove(SameSrc, pathexpr.MustParse("ncolE+"), pathexpr.MustParse("nrowE+.ncolE+")).Result != Proved {
		t.Fatal("Theorem T not proved")
	}

	snap := reg.Snapshot()
	if snap.Counters["prover.queries"] != 2 {
		t.Errorf("prover.queries = %d, want 2", snap.Counters["prover.queries"])
	}
	for _, c := range []string{"prover.goals", "prover.direct_checks", "automata.compiles", "automata.lookups"} {
		if snap.Counters[c] == 0 {
			t.Errorf("counter %s = 0", c)
		}
	}
	if snap.Maxes["prover.peak_depth"] == 0 {
		t.Error("prover.peak_depth max = 0")
	}
	if snap.Hists["prover.query_ns"].Count != 2 {
		t.Errorf("prover.query_ns count = %d, want 2", snap.Hists["prover.query_ns"].Count)
	}

	events := map[string]int{}
	for _, ln := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("trace line not JSON: %v\n%s", err, ln)
		}
		events[m["ev"].(string)]++
		if m["ev"] == "prover.query" {
			for _, k := range []string{"dur_us", "theorem", "result", "steps", "peak_depth", "dfa_compiles"} {
				if _, ok := m[k]; !ok {
					t.Errorf("prover.query span missing %q: %v", k, m)
				}
			}
		}
	}
	if events["prover.query"] != 2 {
		t.Errorf("prover.query spans = %d, want 2", events["prover.query"])
	}
	if events["prover.suffix_split"] == 0 {
		t.Error("no prover.suffix_split events")
	}
	if events["prover.plus_induction"] == 0 {
		t.Error("no prover.plus_induction events")
	}
	if events["automata.compile"] == 0 {
		t.Error("no automata.compile events")
	}
}
