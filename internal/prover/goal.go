// Package prover implements the theorem-proving core of APT (paper §4.1):
// given a set of aliasing axioms, it attempts to prove theorems of no
// dependence of the form
//
//	∀ vertices h,      h.X <> h.Y      (SameSrc)
//	∀ vertices h <> k, h.X <> k.Y      (DiffSrc)
//
// by the paper's proveDisj procedure: enumerate suffix splits of the two
// paths, discharge the suffixes by direct axiom application (regular
// language inclusion, decided with DFAs), discharge the prefixes by
// equality (case C) or recursive disjointness (case D), split alternations,
// and perform structural induction on trailing Kleene components.
//
// The prover is complete with respect to its proof system under the
// configured resource budget: it either finds a proof, fails definitively,
// or reports exhaustion — which callers must map to Maybe, never to No.
package prover

import (
	"strings"

	"repro/internal/pathexpr"
)

// Form distinguishes the two quantifier shapes of a disjointness goal.
type Form int

// Goal forms.
const (
	// SameSrc is ∀h, h.X <> h.Y: paths anchored at the same vertex.
	SameSrc Form = iota
	// DiffSrc is ∀h<>k, h.X <> k.Y: paths anchored at distinct vertices.
	DiffSrc
)

func (f Form) String() string {
	if f == SameSrc {
		return "∀h, h.X <> h.Y"
	}
	return "∀h<>k, h.X <> k.Y"
}

// goal is a normalized disjointness obligation over component sequences.
type goal struct {
	form Form
	x, y []pathexpr.Expr
}

// newGoal normalizes the component sequences: each component is simplified,
// ε components are dropped, and nested concatenations are spliced.
func newGoal(form Form, x, y []pathexpr.Expr) goal {
	return goal{form: form, x: normalize(x), y: normalize(y)}
}

func normalize(comps []pathexpr.Expr) []pathexpr.Expr {
	var out []pathexpr.Expr
	for _, c := range comps {
		s := pathexpr.Simplify(c)
		switch v := s.(type) {
		case pathexpr.Epsilon:
			continue
		case pathexpr.Concat:
			out = append(out, normalize(v.Parts)...)
		default:
			out = append(out, s)
		}
	}
	return out
}

// expr reassembles a component sequence into a single expression.
func expr(comps []pathexpr.Expr) pathexpr.Expr {
	return pathexpr.FromComponents(comps)
}

// size is the structural measure of a goal used to guard induction
// hypotheses: the total pathexpr.Size of both sides.
func (g goal) size() int {
	n := 0
	for _, c := range g.x {
		n += c.Size()
	}
	for _, c := range g.y {
		n += c.Size()
	}
	return n
}

func (g goal) String() string {
	lhs, rhs := pathexpr.Compact(expr(g.x)), pathexpr.Compact(expr(g.y))
	if g.form == SameSrc {
		return "∀h, h." + lhs + " <> h." + rhs
	}
	return "∀h<>k, h." + lhs + " <> k." + rhs
}

// key returns a canonical cache key for the goal.
func (g goal) key() string {
	var b strings.Builder
	if g.form == SameSrc {
		b.WriteByte('S')
	} else {
		b.WriteByte('D')
	}
	b.WriteString(expr(g.x).String())
	b.WriteByte('\x00')
	b.WriteString(expr(g.y).String())
	return b.String()
}

// lemma is an induction hypothesis: a disjointness fact assumed during the
// inductive step of Kleene processing.  It may only be applied to goals
// strictly smaller than the step goal it was introduced for (maxSize), which
// is the well-founded guard that keeps the induction from discharging
// itself.
type lemma struct {
	form    Form
	re1     pathexpr.Expr
	re2     pathexpr.Expr
	maxSize int
}

func (l lemma) String() string {
	var b strings.Builder
	b.WriteString("IH[")
	if l.form == SameSrc {
		b.WriteString("∀h, h.")
	} else {
		b.WriteString("∀h<>k, h.")
	}
	b.WriteString(l.re1.String())
	b.WriteString(" <> ")
	b.WriteString(l.re2.String())
	b.WriteString("]")
	return b.String()
}

// lemmaKey fingerprints a lemma list for cache keys.
func lemmaKey(lems []lemma) string {
	if len(lems) == 0 {
		return ""
	}
	parts := make([]string, len(lems))
	for i, l := range lems {
		parts[i] = l.String()
	}
	// Lemma order does not affect applicability; sort for canonical form.
	for i := range parts {
		for j := i + 1; j < len(parts); j++ {
			if parts[j] < parts[i] {
				parts[i], parts[j] = parts[j], parts[i]
			}
		}
	}
	return strings.Join(parts, "\x01")
}
