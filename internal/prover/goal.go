// Package prover implements the theorem-proving core of APT (paper §4.1):
// given a set of aliasing axioms, it attempts to prove theorems of no
// dependence of the form
//
//	∀ vertices h,      h.X <> h.Y      (SameSrc)
//	∀ vertices h <> k, h.X <> k.Y      (DiffSrc)
//
// by the paper's proveDisj procedure: enumerate suffix splits of the two
// paths, discharge the suffixes by direct axiom application (regular
// language inclusion, decided with DFAs), discharge the prefixes by
// equality (case C) or recursive disjointness (case D), split alternations,
// and perform structural induction on trailing Kleene components.
//
// The prover is complete with respect to its proof system under the
// configured resource budget: it either finds a proof, fails definitively,
// or reports exhaustion — which callers must map to Maybe, never to No.
package prover

import (
	"encoding/binary"
	"sort"
	"strings"

	"repro/internal/pathexpr"
)

// Form distinguishes the two quantifier shapes of a disjointness goal.
type Form int

// Goal forms.
const (
	// SameSrc is ∀h, h.X <> h.Y: paths anchored at the same vertex.
	SameSrc Form = iota
	// DiffSrc is ∀h<>k, h.X <> k.Y: paths anchored at distinct vertices.
	DiffSrc
)

func (f Form) String() string {
	if f == SameSrc {
		return "∀h, h.X <> h.Y"
	}
	return "∀h<>k, h.X <> k.Y"
}

// goal is a normalized disjointness obligation over component sequences.
type goal struct {
	form Form
	x, y []pathexpr.Expr
}

// newGoal normalizes the component sequences: each component is simplified,
// ε components are dropped, and nested concatenations are spliced.
func newGoal(form Form, x, y []pathexpr.Expr) goal {
	return goal{form: form, x: normalize(x), y: normalize(y)}
}

func normalize(comps []pathexpr.Expr) []pathexpr.Expr {
	var out []pathexpr.Expr
	for _, c := range comps {
		s := pathexpr.Simplify(c)
		switch v := s.(type) {
		case pathexpr.Epsilon:
			continue
		case pathexpr.Concat:
			out = append(out, normalize(v.Parts)...)
		default:
			out = append(out, s)
		}
	}
	return out
}

// expr reassembles a component sequence into a single expression.
func expr(comps []pathexpr.Expr) pathexpr.Expr {
	return pathexpr.FromComponents(comps)
}

// size is the structural measure of a goal used to guard induction
// hypotheses: the total pathexpr.Size of both sides.
func (g goal) size() int {
	n := 0
	for _, c := range g.x {
		n += c.Size()
	}
	for _, c := range g.y {
		n += c.Size()
	}
	return n
}

func (g goal) String() string {
	lhs, rhs := pathexpr.Compact(expr(g.x)), pathexpr.Compact(expr(g.y))
	if g.form == SameSrc {
		return "∀h, h." + lhs + " <> h." + rhs
	}
	return "∀h<>k, h." + lhs + " <> k." + rhs
}

// goalKey is the canonical cache identity of a goal: its form plus the
// interned IDs of the reassembled sides.  Interned IDs biject with the
// canonical renderings the old string key concatenated, so the cache's
// equality classes — and therefore its hit pattern, and therefore the proof
// trees it reproduces — are unchanged; only the per-lookup rendering and
// concatenation are gone.
type goalKey struct {
	form Form
	x, y uint64
}

// key returns the canonical cache key of the goal.
func (g goal) key() goalKey {
	return goalKey{
		form: g.form,
		x:    pathexpr.InternID(expr(g.x)),
		y:    pathexpr.InternID(expr(g.y)),
	}
}

// lemma is an induction hypothesis: a disjointness fact assumed during the
// inductive step of Kleene processing.  It may only be applied to goals
// strictly smaller than the step goal it was introduced for (maxSize), which
// is the well-founded guard that keeps the induction from discharging
// itself.
type lemma struct {
	form    Form
	re1     pathexpr.Expr
	re2     pathexpr.Expr
	maxSize int
}

func (l lemma) String() string {
	var b strings.Builder
	b.WriteString("IH[")
	if l.form == SameSrc {
		b.WriteString("∀h, h.")
	} else {
		b.WriteString("∀h<>k, h.")
	}
	b.WriteString(l.re1.String())
	b.WriteString(" <> ")
	b.WriteString(l.re2.String())
	b.WriteString("]")
	return b.String()
}

// lemmaFP is one lemma's cache identity: its form and the interned IDs of
// its sides.  maxSize is deliberately excluded, matching the rendering-based
// fingerprint this replaced (a hypothesis re-admitted at a different guard
// still states the same disjointness fact).
type lemmaFP struct {
	form     Form
	re1, re2 uint64
}

// lemmaKey fingerprints a lemma list for cache keys: the multiset of lemma
// identities in a canonical order (lemma order does not affect
// applicability), packed into a string so the result can sit inside a
// comparable struct key.
func lemmaKey(lems []lemma) string {
	if len(lems) == 0 {
		return ""
	}
	fps := make([]lemmaFP, len(lems))
	for i, l := range lems {
		fps[i] = lemmaFP{form: l.form, re1: pathexpr.InternID(l.re1), re2: pathexpr.InternID(l.re2)}
	}
	sort.Slice(fps, func(i, j int) bool {
		a, b := fps[i], fps[j]
		if a.form != b.form {
			return a.form < b.form
		}
		if a.re1 != b.re1 {
			return a.re1 < b.re1
		}
		return a.re2 < b.re2
	})
	buf := make([]byte, 0, len(fps)*17)
	for _, fp := range fps {
		buf = append(buf, byte(fp.form))
		buf = binary.BigEndian.AppendUint64(buf, fp.re1)
		buf = binary.BigEndian.AppendUint64(buf, fp.re2)
	}
	return string(buf)
}
