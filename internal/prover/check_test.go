package prover

import (
	"math/rand"
	"testing"

	"repro/internal/axiom"
	"repro/internal/pathexpr"
)

// proveAndCheck asserts a theorem is proved AND its derivation passes the
// independent checker.
func proveAndCheck(t *testing.T, p *Prover, form Form, x, y string) *Proof {
	t.Helper()
	proof := p.Prove(form, pathexpr.MustParse(x), pathexpr.MustParse(y))
	if proof.Result != Proved {
		t.Fatalf("Prove(%s, %s) = %v", x, y, proof.Result)
	}
	if err := p.CheckProof(proof); err != nil {
		t.Fatalf("CheckProof(%s <> %s): %v\n%s", x, y, err, proof.Render())
	}
	return proof
}

// TestCheckProofAcceptsTheCorpus: every proof the prover finds across the
// paper's query corpus passes independent re-validation.
func TestCheckProofAcceptsTheCorpus(t *testing.T) {
	llt := New(axiom.LeafLinkedBinaryTree(), Options{})
	proveAndCheck(t, llt, SameSrc, "L.L.N", "L.R.N")
	proveAndCheck(t, llt, SameSrc, "L.L", "L.R")
	proveAndCheck(t, llt, SameSrc, "ε", "(L|R|N)+")
	proveAndCheck(t, llt, SameSrc, "L.L.N.N", "L.L.N")
	proveAndCheck(t, llt, DiffSrc, "N", "N")

	sm := New(axiom.SparseMatrixCore(), Options{})
	proveAndCheck(t, sm, SameSrc, "ncolE+", "nrowE+ncolE+")
	proveAndCheck(t, sm, SameSrc, "ncolE.ncolE*", "nrowE+ncolE.ncolE*")

	full := New(axiom.SparseMatrix(), Options{})
	proveAndCheck(t, full, SameSrc, "ncolE+", "nrowE+ncolE+")
	proveAndCheck(t, full, SameSrc, "nrowE+", "ncolE+nrowE+")
	proveAndCheck(t, full, DiffSrc, "relem.ncolE*", "relem.ncolE*")

	list := New(axiom.SinglyLinkedList("link"), Options{})
	proveAndCheck(t, list, SameSrc, "ε", "link+")
	proveAndCheck(t, list, SameSrc, "link", "link.link+")

	ring := New(axiom.RingOf("next", 3), Options{})
	proveAndCheck(t, ring, SameSrc, "next", "next.next")

	tree := New(axiom.BinaryTree("l", "r"), Options{})
	proveAndCheck(t, tree, SameSrc, "l.(l|r)*", "r.(l|r)*")
	proveAndCheck(t, tree, SameSrc, "l.(l|r)", "r")

	rt := New(axiom.TwoDRangeTree(), Options{})
	proveAndCheck(t, rt, SameSrc, "L.aux.(l|r|n)*", "R.aux.(l|r|n)*")
}

// TestCheckProofAcceptsCachedProofs: cache-backed steps re-validate by
// descending into the retained original derivation.
func TestCheckProofAcceptsCachedProofs(t *testing.T) {
	p := New(axiom.SparseMatrixCore(), Options{})
	first := proveAndCheck(t, p, SameSrc, "ncolE+", "nrowE+ncolE+")
	second := p.Prove(SameSrc, pathexpr.MustParse("ncolE+"), pathexpr.MustParse("nrowE+ncolE+"))
	if second.Stats.CacheHits == 0 {
		t.Fatal("second proof should hit the cache")
	}
	if err := p.CheckProof(second); err != nil {
		t.Fatalf("cached proof rejected: %v", err)
	}
	_ = first
}

// TestCheckProofRejectsTampering: mutating a valid derivation in any
// load-bearing way must be detected.
func TestCheckProofRejectsTampering(t *testing.T) {
	p := New(axiom.LeafLinkedBinaryTree(), Options{})
	fresh := func() *Proof {
		q := New(axiom.LeafLinkedBinaryTree(), Options{})
		return q.Prove(SameSrc, pathexpr.MustParse("L.L.N"), pathexpr.MustParse("L.R.N"))
	}

	// Tamper 1: change the derived goal.
	pf := fresh()
	pf.Root.X = pathexpr.MustParse("L.L.N.N")
	if err := p.CheckProof(pf); err == nil {
		t.Error("goal tampering accepted")
	}

	// Tamper 2: change a suffix split to one no axiom covers.
	pf = fresh()
	pf.Root.SuffixI, pf.Root.SuffixJ = 3, 3
	if err := p.CheckProof(pf); err == nil {
		t.Error("suffix tampering accepted")
	}

	// Tamper 3: drop the case-D subproof.
	pf = fresh()
	pf.Root.Children = nil
	if err := p.CheckProof(pf); err == nil {
		t.Error("missing subproof accepted")
	}

	// Tamper 4: claim a rule that does not apply.
	pf = fresh()
	pf.Root.Rule = RuleTrivial
	if err := p.CheckProof(pf); err == nil {
		t.Error("bogus trivial rule accepted")
	}

	// Tamper 5: swap in a subproof of the wrong goal.
	pf = fresh()
	other := fresh()
	pf.Root.Children = []*Step{other.Root}
	if err := p.CheckProof(pf); err == nil {
		t.Error("mismatched subproof accepted")
	}

	// Tamper 6: a direct axiom claim with no applicable axiom.
	pf = fresh()
	pf.Root.Rule = RuleAxiom
	pf.Root.By = "A1"
	pf.Root.Children = nil
	if err := p.CheckProof(pf); err == nil {
		t.Error("bogus axiom application accepted")
	}
}

// TestCheckProofRejectsUnprovedAndForeign: only Proved results check, and a
// proof is tied to its axiom set.
func TestCheckProofRejectsUnprovedAndForeign(t *testing.T) {
	p := New(axiom.LeafLinkedBinaryTree(), Options{})
	failed := p.Prove(SameSrc, pathexpr.MustParse("L.L.N.N"), pathexpr.MustParse("L.R.N"))
	if err := p.CheckProof(failed); err == nil {
		t.Error("unproved result accepted")
	}

	// A valid leaf-linked-tree proof must not check under unrelated axioms.
	good := p.Prove(SameSrc, pathexpr.MustParse("L.L.N"), pathexpr.MustParse("L.R.N"))
	stranger := New(axiom.SinglyLinkedList("next"), Options{})
	if err := stranger.CheckProof(good); err == nil {
		t.Error("foreign proof accepted under the wrong axioms")
	}
}

// TestCheckProofPropertyRandomTheorems: every random theorem the prover
// proves over the leaf-linked tree axioms passes the checker.
func TestCheckProofPropertyRandomTheorems(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	p := New(axiom.LeafLinkedBinaryTree(), Options{})
	fields := []string{"L", "R", "N"}
	checked := 0
	for i := 0; i < 300; i++ {
		x := randPath(rng, fields, 3)
		y := randPath(rng, fields, 3)
		for _, form := range []Form{SameSrc, DiffSrc} {
			proof := p.Prove(form, x, y)
			if proof.Result != Proved {
				continue
			}
			if err := p.CheckProof(proof); err != nil {
				t.Fatalf("checker rejected a found proof of %v / %v: %v\n%s", x, y, err, proof.Render())
			}
			checked++
		}
	}
	if checked == 0 {
		t.Error("no proofs generated; test has no power")
	}
	t.Logf("independently re-validated %d proofs", checked)
}

// TestVacuousAndRenderCoverage exercises the vacuous rule, the Axioms
// accessor, and every rule's rendering.
func TestVacuousAndRenderCoverage(t *testing.T) {
	p := New(axiom.LeafLinkedBinaryTree(), Options{})
	if p.Axioms().Len() != 4 {
		t.Error("Axioms accessor lost the set")
	}
	// ∅ components are vacuously disjoint from anything.
	vac := p.Prove(SameSrc, pathexpr.Empty{}, pathexpr.MustParse("L"))
	if vac.Result != Proved {
		t.Fatalf("empty language side = %v, want proved", vac.Result)
	}
	if err := p.CheckProof(vac); err != nil {
		t.Fatalf("vacuous proof rejected: %v", err)
	}
	// Render every rule the corpus produces, exercising describe().
	proofs := []*Proof{
		vac,
		p.Prove(DiffSrc, pathexpr.Eps, pathexpr.Eps),
		p.Prove(SameSrc, pathexpr.MustParse("L.L.N"), pathexpr.MustParse("L.R.N")),
		p.Prove(SameSrc, pathexpr.MustParse("L.L.N.N"), pathexpr.MustParse("L.L.N")),
		p.Prove(SameSrc, pathexpr.MustParse("ε"), pathexpr.MustParse("(L|R|N)+")),
	}
	sm := New(axiom.SparseMatrixCore(), Options{})
	proofs = append(proofs,
		sm.Prove(SameSrc, pathexpr.MustParse("ncolE+"), pathexpr.MustParse("nrowE+ncolE+")),
		sm.Prove(SameSrc, pathexpr.MustParse("ncolE*"), pathexpr.MustParse("nrowE+ncolE+")),
	)
	alts := New(axiom.MustParseSet("alt", "forall p, p.a <> p.b\nforall p, p.a <> p.c"), Options{})
	proofs = append(proofs, alts.Prove(SameSrc, pathexpr.MustParse("a"), pathexpr.MustParse("b|c")))
	for i, pf := range proofs {
		if pf.Result != Proved {
			t.Fatalf("proof %d unexpectedly %v", i, pf.Result)
		}
		if out := pf.Render(); len(out) == 0 {
			t.Errorf("proof %d renders empty", i)
		}
	}
	// Unknown rule/result strings.
	if Rule(99).String() != "unknown" || Result(99).String() != "unknown" {
		t.Error("unknown enum strings")
	}
}
