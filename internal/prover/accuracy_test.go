package prover

import (
	"testing"

	"repro/internal/axiom"
	"repro/internal/pathexpr"
)

// TestAccuracyGrowsWithAxioms measures the paper's central qualitative
// claim — "the test is general since its accuracy grows with the accuracy
// of the axioms" — on the leaf-linked tree: dropping any single axiom from
// Figure 3's set can only shrink the set of short-path pairs the prover
// decides, and each axiom is load-bearing (its removal loses at least one
// decision).
func TestAccuracyGrowsWithAxioms(t *testing.T) {
	words := allWords([]string{"L", "R", "N"}, 3)
	countDecided := func(set *axiom.Set) (int, map[string]bool) {
		p := New(set, Options{})
		decided := map[string]bool{}
		n := 0
		for _, w1 := range words {
			for _, w2 := range words {
				x, y := pathexpr.FromWord(w1), pathexpr.FromWord(w2)
				if p.ProveDisjoint(x, y).Result == Proved {
					key := fmtWord(w1) + "|" + fmtWord(w2)
					decided[key] = true
					n++
				}
			}
		}
		return n, decided
	}

	full := axiom.LeafLinkedBinaryTree()
	fullCount, fullSet := countDecided(full)
	t.Logf("full axiom set decides %d of %d pairs", fullCount, len(words)*len(words))
	if fullCount == 0 {
		t.Fatal("full set decides nothing; no power")
	}

	for drop := 0; drop < full.Len(); drop++ {
		reduced := &axiom.Set{StructName: full.StructName}
		for i, a := range full.Axioms {
			if i != drop {
				reduced.Add(a)
			}
		}
		count, decided := countDecided(reduced)
		t.Logf("without %s: %d pairs decided", full.Axioms[drop].Name, count)
		if count >= fullCount {
			t.Errorf("dropping %s did not lose any decision; the axiom carries no weight on this corpus",
				full.Axioms[drop].Name)
		}
		// Monotonicity: a smaller axiom set must not decide pairs the full
		// set cannot (decisions grow with axioms).
		for key := range decided {
			if !fullSet[key] {
				t.Errorf("without %s the prover decides %s which the full set does not — non-monotone",
					full.Axioms[drop].Name, key)
			}
		}
	}
}

// TestNaryTreeAxioms: quadtrees and octrees are handled by the generalized
// tree description.
func TestNaryTreeAxioms(t *testing.T) {
	quad := axiom.NaryTree("c0", "c1", "c2", "c3")
	p := New(quad, Options{})
	for _, c := range []struct {
		x, y string
		want Result
	}{
		{"c0", "c3", Proved},
		{"c0.c1", "c0.c2", Proved},
		{"c1.(c0|c1|c2|c3)*", "c2.(c0|c1|c2|c3)*", Proved},
		{"ε", "(c0|c1|c2|c3)+", Proved},
		{"c0.c1", "c0.c1", NotProved},
	} {
		got := p.ProveDisjoint(pathexpr.MustParse(c.x), pathexpr.MustParse(c.y)).Result
		if got != c.want {
			t.Errorf("quadtree %s <> %s: %v, want %v", c.x, c.y, got, c.want)
		}
	}

	// Octree: 8 children; the pairwise sibling axioms scale quadratically.
	oct := axiom.NaryTree("o0", "o1", "o2", "o3", "o4", "o5", "o6", "o7")
	if oct.Len() != 8*7/2+2 {
		t.Errorf("octree axiom count = %d, want %d", oct.Len(), 8*7/2+2)
	}
	po := New(oct, Options{})
	proof := po.ProveDisjoint(pathexpr.MustParse("o0.o7"), pathexpr.MustParse("o7.o0"))
	if proof.Result != Proved {
		t.Errorf("octree disjoint subtrees: %v", proof.Result)
	}
	if err := po.CheckProof(proof); err != nil {
		t.Errorf("octree proof failed checking: %v", err)
	}
}

// TestSkipListQueries: the skip-list axioms prove loop-carried independence
// of a base-chain walk, and a concrete skip list satisfies them.
func TestSkipListQueries(t *testing.T) {
	set := axiom.SkipList("n0", "n1", "n2")
	p := New(set, Options{})
	for _, c := range []struct {
		x, y string
		want Result
	}{
		{"ε", "n0+", Proved},         // base walk advances
		{"ε", "(n0|n1|n2)+", Proved}, // any mixed walk advances
		{"n0", "n0.n0+", Proved},     // later iterations differ
		{"n1", "n0.n0", NotProved},   // one express hop CAN equal two base hops
		{"n2", "n1.n1", NotProved},   // levels interleave through shared vertices
	} {
		got := p.ProveDisjoint(pathexpr.MustParse(c.x), pathexpr.MustParse(c.y)).Result
		if got != c.want {
			t.Errorf("skip list %s <> %s: %v, want %v", c.x, c.y, got, c.want)
		}
	}
}
