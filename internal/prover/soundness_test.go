package prover

import (
	"math/rand"
	"testing"

	"repro/internal/axiom"
	"repro/internal/heap"
	"repro/internal/pathexpr"
)

// These tests validate the prover empirically: whenever it *proves*
// disjointness of two access paths, the corresponding vertex sets must be
// disjoint on every concrete heap that satisfies the axiom set.  Random
// structures and random paths probe the claim.  A single violation here
// would mean the prover can break a true dependence — the one failure mode
// a dependence test must never have.

// randPath builds a random path expression over the given fields.
func randPath(rng *rand.Rand, fields []string, depth int) pathexpr.Expr {
	if depth <= 0 || rng.Intn(3) == 0 {
		return pathexpr.F(fields[rng.Intn(len(fields))])
	}
	switch rng.Intn(5) {
	case 0:
		return pathexpr.Cat(randPath(rng, fields, depth-1), randPath(rng, fields, depth-1))
	case 1:
		return pathexpr.Or(randPath(rng, fields, depth-1), randPath(rng, fields, depth-1))
	case 2:
		return pathexpr.Rep(randPath(rng, fields, depth-1))
	case 3:
		return pathexpr.Rep1(randPath(rng, fields, depth-1))
	default:
		return pathexpr.F(fields[rng.Intn(len(fields))])
	}
}

// checkSoundness proves random path pairs and validates every Proved answer
// against the given conforming heaps.
func checkSoundness(t *testing.T, p *Prover, graphs []*heap.Graph, roots []heap.Vertex, fields []string, trials int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	proved, provedDiff := 0, 0
	for i := 0; i < trials; i++ {
		x := randPath(rng, fields, 3)
		y := randPath(rng, fields, 3)
		proof := p.ProveDisjoint(x, y)
		if proof.Result == Proved {
			proved++
			for gi, g := range graphs {
				// The theorem is ∀ vertices, not just the root.
				for v := 0; v < g.NumVertices(); v++ {
					if !g.Disjoint(heap.Vertex(v), x, heap.Vertex(v), y) {
						t.Fatalf("UNSOUND at vertex %d of heap %d: h.%v <> h.%v\n%s",
							v, gi, x, y, proof.Render())
					}
				}
			}
		}
		// The distinct-anchor form: ∀h<>k, h.x <> k.y.
		diff := p.Prove(DiffSrc, x, y)
		if diff.Result == Proved {
			provedDiff++
			for gi, g := range graphs {
				for v := 0; v < g.NumVertices(); v++ {
					for w := 0; w < g.NumVertices(); w++ {
						if v == w {
							continue
						}
						if !g.Disjoint(heap.Vertex(v), x, heap.Vertex(w), y) {
							t.Fatalf("UNSOUND (diff-src) at vertices %d<>%d of heap %d: h.%v <> k.%v\n%s",
								v, w, gi, x, y, diff.Render())
						}
					}
				}
			}
		}
	}
	if proved == 0 {
		t.Errorf("soundness run proved nothing in %d trials; test has no power", trials)
	}
	t.Logf("validated %d same-src and %d diff-src proofs from %d trials against %d heaps",
		proved, provedDiff, trials, len(graphs))
}

func TestSoundnessLeafLinkedTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var graphs []*heap.Graph
	var roots []heap.Vertex
	for depth := 0; depth <= 3; depth++ {
		g, r := heap.BuildLeafLinkedTree(depth)
		graphs, roots = append(graphs, g), append(roots, r)
	}
	for trial := 0; trial < 6; trial++ {
		g, r := heap.RandomLeafLinkedTree(rng, 1+rng.Intn(14))
		graphs, roots = append(graphs, g), append(roots, r)
	}
	for _, g := range graphs {
		if err := g.CheckSet(axiom.LeafLinkedBinaryTree()); err != nil {
			t.Fatalf("generator produced a non-conforming heap: %v", err)
		}
	}
	p := New(axiom.LeafLinkedBinaryTree(), Options{})
	checkSoundness(t, p, graphs, roots, []string{"L", "R", "N"}, 250, 101)
}

func TestSoundnessSparseMatrices(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var graphs []*heap.Graph
	var roots []heap.Vertex
	for trial := 0; trial < 6; trial++ {
		r, c := 1+rng.Intn(3), 1+rng.Intn(3)
		pos := heap.RandomSparsePattern(rng, r, c, rng.Intn(r*c+1))
		g, lay := heap.BuildSparseMatrix(r, c, pos)
		graphs, roots = append(graphs, g), append(roots, lay.Root)
	}
	for _, g := range graphs {
		if err := g.CheckSet(axiom.SparseMatrix()); err != nil {
			t.Fatalf("generator produced a non-conforming heap: %v", err)
		}
	}
	p := New(axiom.SparseMatrix(), Options{MaxSteps: 20000})
	fields := []string{"rows", "cols", "nrowH", "ncolH", "relem", "celem", "nrowE", "ncolE"}
	checkSoundness(t, p, graphs, roots, fields, 120, 103)
}

func TestSoundnessBinaryTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var graphs []*heap.Graph
	var roots []heap.Vertex
	for trial := 0; trial < 8; trial++ {
		g, r := heap.RandomBinaryTree(rng, 1+rng.Intn(12), "l", "r")
		graphs, roots = append(graphs, g), append(roots, r)
	}
	p := New(axiom.BinaryTree("l", "r"), Options{})
	checkSoundness(t, p, graphs, roots, []string{"l", "r"}, 250, 107)
}

func TestSoundnessRings(t *testing.T) {
	g3, r3 := heap.BuildRing(3, "next")
	p := New(axiom.RingOf("next", 3), Options{})
	checkSoundness(t, p, []*heap.Graph{g3}, []heap.Vertex{r3}, []string{"next"}, 250, 109)
}

func TestSoundnessLists(t *testing.T) {
	var graphs []*heap.Graph
	var roots []heap.Vertex
	for _, n := range []int{1, 2, 3, 5, 9} {
		g, r := heap.BuildList(n, "next")
		graphs, roots = append(graphs, g), append(roots, r)
	}
	p := New(axiom.SinglyLinkedList("next"), Options{})
	checkSoundness(t, p, graphs, roots, []string{"next"}, 200, 113)
}

// TestDefinitelyAliasedIsSound: whenever DefinitelyAliased says two word
// paths coincide, walking them on a conforming heap from any vertex where
// both exist must land on the same vertex.
func TestDefinitelyAliasedIsSound(t *testing.T) {
	g, _ := heap.BuildRing(3, "next")
	p := New(axiom.RingOf("next", 3), Options{})
	rng := rand.New(rand.NewSource(19))
	for i := 0; i < 200; i++ {
		l1 := rng.Intn(7)
		l2 := rng.Intn(7)
		w1 := make([]string, l1)
		w2 := make([]string, l2)
		for k := range w1 {
			w1[k] = "next"
		}
		for k := range w2 {
			w2[k] = "next"
		}
		x, y := pathexpr.FromWord(w1), pathexpr.FromWord(w2)
		if !p.DefinitelyAliased(x, y) {
			continue
		}
		for v := 0; v < g.NumVertices(); v++ {
			a, ok1 := g.WalkWord(heap.Vertex(v), w1)
			b, ok2 := g.WalkWord(heap.Vertex(v), w2)
			if ok1 && ok2 && a != b {
				t.Fatalf("UNSOUND definite alias: next^%d vs next^%d land on %d vs %d", l1, l2, a, b)
			}
		}
	}
}
