package prover

import (
	"fmt"
	"strings"

	"repro/internal/pathexpr"
)

// Result classifies the outcome of a proof attempt.
type Result int

// Proof outcomes.
const (
	// Proved: a proof of disjointness was found; the answer No (no
	// dependence) is justified.
	Proved Result = iota
	// NotProved: the search space was exhausted without a proof; the paths
	// may alias.  Combined with a definite-alias check this maps to Maybe.
	NotProved
	// Exhausted: the resource budget (steps, depth, or DFA states) ran out
	// before the search completed; the only sound answer is Maybe.
	Exhausted
)

func (r Result) String() string {
	switch r {
	case Proved:
		return "proved"
	case NotProved:
		return "not proved"
	case Exhausted:
		return "exhausted"
	}
	return "unknown"
}

// Rule identifies the inference rule justifying a proof step.  Steps carry
// enough structure for an independent checker (CheckProof) to re-validate
// every application.
type Rule int

// Inference rules.
const (
	// RuleTrivial: ∀h<>k, h.ε <> k.ε — distinct vertices differ.
	RuleTrivial Rule = iota
	// RuleVacuous: one side denotes the empty language (no traversal).
	RuleVacuous
	// RuleAxiom: direct application of a single axiom or induction
	// hypothesis by language inclusion.
	RuleAxiom
	// RuleSuffixAB: a suffix split whose suffixes are disjoint both from the
	// same vertex (T1) and from distinct vertices (T2) — Figure 5's A∧B.
	RuleSuffixAB
	// RuleCaseC: T1 holds and the prefixes provably denote the same vertex.
	RuleCaseC
	// RuleCaseD: T2 holds and the prefixes are recursively proved disjoint
	// (the child).
	RuleCaseD
	// RuleStarUnfold: a trailing a* splits into its ε and a⁺ cases (two
	// children).
	RuleStarUnfold
	// RulePlusInduction: the paper's Kleene induction over trailing ⁺
	// components; children are the base cases followed by the inductive
	// step (proved under the induction hypothesis).
	RulePlusInduction
	// RuleAltSplit: a top-level alternative component splits the goal into
	// one child per alternative.
	RuleAltSplit
	// RuleCached: the goal was proved earlier; the child is that proof.
	RuleCached
)

func (r Rule) String() string {
	switch r {
	case RuleTrivial:
		return "trivial"
	case RuleVacuous:
		return "vacuous"
	case RuleAxiom:
		return "axiom"
	case RuleSuffixAB:
		return "suffix-split"
	case RuleCaseC:
		return "case C"
	case RuleCaseD:
		return "case D"
	case RuleStarUnfold:
		return "star-unfold"
	case RulePlusInduction:
		return "plus-induction"
	case RuleAltSplit:
		return "alt-split"
	case RuleCached:
		return "cache"
	}
	return "unknown"
}

// Step is one node of a proof tree.  Children justify the parent according
// to Rule.  X and Y are the goal's two (normalized) path expressions.
type Step struct {
	Rule Rule
	Form Form
	X, Y pathexpr.Expr
	// SuffixI and SuffixJ are the suffix lengths (in components) of a
	// suffix-based rule (RuleSuffixAB, RuleCaseC, RuleCaseD).
	SuffixI, SuffixJ int
	// By names the applied fact for RuleAxiom; ByT1/ByT2 name the facts
	// discharging the suffix obligations of the suffix-based rules.
	By, ByT1, ByT2 string
	// AltOnLeft/AltIndex locate the alternative component split by
	// RuleAltSplit; StarOnLeft locates RuleStarUnfold's component.
	AltOnLeft  bool
	AltIndex   int
	StarOnLeft bool
	Note       string
	Children   []*Step
}

func step(g goal, rule Rule) *Step {
	return &Step{Rule: rule, Form: g.form, X: expr(g.x), Y: expr(g.y)}
}

// GoalString renders the step's goal.
func (s *Step) GoalString() string {
	return goal{form: s.Form, x: pathexpr.Components(s.X), y: pathexpr.Components(s.Y)}.String()
}

// Stats counts the work a proof attempt performed.
type Stats struct {
	// ProveCalls is the number of goals examined (including cache hits).
	ProveCalls int
	// CacheHits is the number of goals answered from the proof cache.
	CacheHits int
	// DirectChecks is the number of axiom/lemma inclusion tests attempted.
	DirectChecks int
	// Inductions is the number of Kleene induction schemata instantiated.
	Inductions int
	// DFACompiles is the number of DFA compilations (language-cache misses)
	// the query triggered in the automata layer.
	DFACompiles int
	// PeakDepth is the deepest goal nesting the search reached.
	PeakDepth int
	// StepsUsed is the portion of the Options.MaxSteps budget consumed
	// (equal to ProveCalls; named for budget-consumption reporting).
	StepsUsed int
}

// Proof is the outcome of one prover invocation.
type Proof struct {
	Result Result
	// Theorem is the rendered goal that was attempted.
	Theorem string
	// Root is the derivation tree (nil unless Proved).  It is
	// machine-checkable: prover.CheckProof re-validates every rule
	// application independently of the search.
	Root *Step
	// Stats describes the search effort.
	Stats Stats
}

// Render formats the proof trace as an indented derivation, in the spirit of
// the paper's paraphrased proof in §3.3.  Cached subproofs are summarized
// without descending (CheckProof descends).
func (p *Proof) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Theorem: %s\n", p.Theorem)
	switch p.Result {
	case Proved:
		b.WriteString("Proof:\n")
		renderStep(&b, p.Root, 1)
		b.WriteString("∎\n")
	case NotProved:
		b.WriteString("No proof exists under the given axioms (dependence possible).\n")
	case Exhausted:
		b.WriteString("Resource budget exhausted before the search completed (answer: Maybe).\n")
	}
	fmt.Fprintf(&b, "[%d goals examined, %d cache hits, %d axiom applications tried, %d inductions, %d DFA compiles, peak depth %d]\n",
		p.Stats.ProveCalls, p.Stats.CacheHits, p.Stats.DirectChecks, p.Stats.Inductions,
		p.Stats.DFACompiles, p.Stats.PeakDepth)
	return b.String()
}

func renderStep(b *strings.Builder, s *Step, depth int) {
	if s == nil {
		return
	}
	indent := strings.Repeat("  ", depth)
	fmt.Fprintf(b, "%s- %s", indent, s.Rule)
	if note := s.describe(); note != "" {
		fmt.Fprintf(b, " (%s)", note)
	}
	fmt.Fprintf(b, ": %s\n", s.GoalString())
	if s.Rule == RuleCached {
		return // summarized; the checker descends
	}
	for _, c := range s.Children {
		renderStep(b, c, depth+1)
	}
}

// describe builds the human-readable justification from the typed fields.
func (s *Step) describe() string {
	switch s.Rule {
	case RuleTrivial:
		return "distinct vertices h and k differ"
	case RuleVacuous:
		return "access path denotes no traversal"
	case RuleAxiom:
		return s.By
	case RuleSuffixAB:
		sp, sq := s.suffixStrings()
		return fmt.Sprintf("suffixes %s | %s disjoint from same source by %s and distinct sources by %s",
			sp, sq, s.ByT1, s.ByT2)
	case RuleCaseC:
		pp, pq := s.prefixStrings()
		return fmt.Sprintf("prefixes %s = %s denote the same vertex; suffixes disjoint by %s", pp, pq, s.ByT1)
	case RuleCaseD:
		sp, sq := s.suffixStrings()
		return fmt.Sprintf("suffixes %s | %s disjoint from distinct sources by %s; prefixes proved disjoint",
			sp, sq, s.ByT2)
	case RuleStarUnfold:
		side := "right"
		if s.StarOnLeft {
			side = "left"
		}
		return side + " trailing star split into ε and ⁺ cases"
	case RulePlusInduction:
		if len(s.Children) == 4 {
			return "both paths end in ⁺: cases (a,b), (a⁺,b), (a,b⁺), and inductive step (a⁺a, b⁺b)"
		}
		side := "right"
		if s.StarOnLeft {
			side = "left"
		}
		return side + " path ends in ⁺: base case and inductive step"
	case RuleAltSplit:
		return "alternative component split per branch"
	case RuleCached:
		return "previously proved"
	}
	return s.Note
}

func (s *Step) suffixStrings() (string, string) {
	cx, cy := pathexpr.Components(s.X), pathexpr.Components(s.Y)
	return exprOrEps(cx[len(cx)-s.SuffixI:]), exprOrEps(cy[len(cy)-s.SuffixJ:])
}

func (s *Step) prefixStrings() (string, string) {
	cx, cy := pathexpr.Components(s.X), pathexpr.Components(s.Y)
	return exprOrEps(cx[:len(cx)-s.SuffixI]), exprOrEps(cy[:len(cy)-s.SuffixJ])
}
