package prover

import (
	"fmt"

	"repro/internal/automata"
	"repro/internal/pathexpr"
)

// CheckProof re-validates a proof independently of the search that produced
// it: every rule application is re-derived from the axioms (inclusion tests
// re-run, suffix splits re-taken, induction hypotheses re-constructed with
// their guards).  A proof that passes CheckProof is a genuine derivation in
// APT's proof system regardless of any bug in the search heuristics.
func (p *Prover) CheckProof(pf *Proof) error {
	if pf == nil || pf.Result != Proved {
		return fmt.Errorf("prover: only proved results carry a checkable derivation")
	}
	if pf.Root == nil {
		return fmt.Errorf("prover: proved result with no derivation")
	}
	// The root must derive the stated theorem.
	rootGoal := stepGoal(pf.Root)
	if rootGoal.String() != pf.Theorem {
		return fmt.Errorf("prover: root derives %q, theorem is %q", rootGoal.String(), pf.Theorem)
	}
	fields := append(p.axioms.Fields(), collectFields(pf.Root)...)
	c := &checker{
		run: &run{
			p:     p,
			alpha: automata.NewAlphabet(fields...),
		},
		verified: make(map[proofKey]bool),
	}
	return c.check(pf.Root, nil)
}

func collectFields(st *Step) []string {
	if st == nil {
		return nil
	}
	out := pathexpr.Fields(st.X, st.Y)
	for _, ch := range st.Children {
		out = append(out, collectFields(ch)...)
	}
	return out
}

func stepGoal(st *Step) goal {
	return newGoal(st.Form, pathexpr.Components(st.X), pathexpr.Components(st.Y))
}

type checker struct {
	run      *run
	verified map[proofKey]bool
}

func (c *checker) fail(st *Step, format string, args ...any) error {
	return fmt.Errorf("checkproof: %s at %s: %s", st.Rule, st.GoalString(), fmt.Sprintf(format, args...))
}

func (c *checker) check(st *Step, lems []lemma) error {
	if st == nil {
		return fmt.Errorf("checkproof: missing derivation")
	}
	g := stepGoal(st)
	key := proofKey{goal: g.key(), lems: lemmaKey(lems)}
	if c.verified[key] {
		return nil
	}
	cx, cy := g.x, g.y

	switch st.Rule {
	case RuleTrivial:
		if g.form != DiffSrc || len(cx) != 0 || len(cy) != 0 {
			return c.fail(st, "trivial rule applies only to ∀h<>k, h.ε <> k.ε")
		}

	case RuleVacuous:
		ok := false
		for _, comp := range append(append([]pathexpr.Expr{}, cx...), cy...) {
			if _, isEmpty := comp.(pathexpr.Empty); isEmpty {
				ok = true
			}
		}
		if !ok {
			return c.fail(st, "no empty-language component")
		}

	case RuleAxiom:
		name, err := c.run.direct(g.form, cx, cy, lems, g.size())
		if err != nil {
			return c.fail(st, "inclusion test failed: %v", err)
		}
		if name == "" {
			return c.fail(st, "no axiom or hypothesis covers the goal")
		}

	case RuleSuffixAB, RuleCaseC, RuleCaseD:
		i, j := st.SuffixI, st.SuffixJ
		if i < 0 || j < 0 || i > len(cx) || j > len(cy) || i+j < 1 {
			return c.fail(st, "invalid suffix split (%d, %d)", i, j)
		}
		sp, sq := cx[len(cx)-i:], cy[len(cy)-j:]
		pp, pq := cx[:len(cx)-i], cy[:len(cy)-j]
		switch st.Rule {
		case RuleSuffixAB:
			if name, err := c.run.direct(SameSrc, sp, sq, lems, sliceSize(sp)+sliceSize(sq)); err != nil || name == "" {
				return c.fail(st, "T1 not derivable for suffixes (%s | %s)", exprOrEps(sp), exprOrEps(sq))
			}
			if name, err := c.run.direct(DiffSrc, sp, sq, lems, sliceSize(sp)+sliceSize(sq)); err != nil || name == "" {
				return c.fail(st, "T2 not derivable for suffixes (%s | %s)", exprOrEps(sp), exprOrEps(sq))
			}
		case RuleCaseC:
			if g.form != SameSrc {
				return c.fail(st, "case C requires a same-anchor goal")
			}
			if name, err := c.run.direct(SameSrc, sp, sq, lems, sliceSize(sp)+sliceSize(sq)); err != nil || name == "" {
				return c.fail(st, "T1 not derivable")
			}
			eq, err := c.run.prefixesEqual(pp, pq)
			if err != nil || !eq {
				return c.fail(st, "prefixes %s and %s not provably equal", exprOrEps(pp), exprOrEps(pq))
			}
		case RuleCaseD:
			if name, err := c.run.direct(DiffSrc, sp, sq, lems, sliceSize(sp)+sliceSize(sq)); err != nil || name == "" {
				return c.fail(st, "T2 not derivable")
			}
			if len(st.Children) != 1 {
				return c.fail(st, "case D needs exactly one subproof")
			}
			want := newGoal(g.form, pp, pq)
			if err := c.expectGoal(st.Children[0], want); err != nil {
				return err
			}
			return c.finish(key, st.Children[0], lems)
		}

	case RuleStarUnfold:
		side, other := cx, cy
		if !st.StarOnLeft {
			side, other = cy, cx
		}
		if len(side) == 0 {
			return c.fail(st, "no trailing component to unfold")
		}
		star, ok := side[len(side)-1].(pathexpr.Star)
		if !ok {
			return c.fail(st, "trailing component is not a star")
		}
		u := side[:len(side)-1]
		epsCase := append([]pathexpr.Expr{}, u...)
		plusCase := append(append([]pathexpr.Expr{}, u...), pathexpr.Rep1(star.Inner))
		var g1, g2 goal
		if st.StarOnLeft {
			g1, g2 = newGoal(g.form, epsCase, other), newGoal(g.form, plusCase, other)
		} else {
			g1, g2 = newGoal(g.form, other, epsCase), newGoal(g.form, other, plusCase)
		}
		if len(st.Children) != 2 {
			return c.fail(st, "star unfold needs two subproofs")
		}
		if err := c.expectGoal(st.Children[0], g1); err != nil {
			return err
		}
		if err := c.expectGoal(st.Children[1], g2); err != nil {
			return err
		}
		if err := c.check(st.Children[0], lems); err != nil {
			return err
		}
		return c.finish(key, st.Children[1], lems)

	case RulePlusInduction:
		return c.checkInduction(st, g, lems, key)

	case RuleAltSplit:
		side := cx
		if !st.AltOnLeft {
			side = cy
		}
		if st.AltIndex < 0 || st.AltIndex >= len(side) {
			return c.fail(st, "alt index out of range")
		}
		alt, ok := side[st.AltIndex].(pathexpr.Alt)
		if !ok {
			return c.fail(st, "component %d is not an alternation", st.AltIndex)
		}
		if len(st.Children) != len(alt.Alts) {
			return c.fail(st, "%d subproofs for %d alternatives", len(st.Children), len(alt.Alts))
		}
		for k, choice := range alt.Alts {
			repl := make([]pathexpr.Expr, len(side))
			copy(repl, side)
			repl[st.AltIndex] = choice
			var want goal
			if st.AltOnLeft {
				want = newGoal(g.form, repl, cy)
			} else {
				want = newGoal(g.form, cx, repl)
			}
			if err := c.expectGoal(st.Children[k], want); err != nil {
				return err
			}
			if err := c.check(st.Children[k], lems); err != nil {
				return err
			}
		}

	case RuleCached:
		if len(st.Children) != 1 {
			return c.fail(st, "cached step needs its original proof")
		}
		if err := c.expectGoal(st.Children[0], g); err != nil {
			return err
		}
		return c.finish(key, st.Children[0], lems)

	default:
		return c.fail(st, "unknown rule")
	}

	c.verified[key] = true
	return nil
}

// checkInduction re-derives the paper's Kleene induction schema from the
// goal shape and validates the subproofs, admitting the induction
// hypothesis only in the step case and only under its size guard.
func (c *checker) checkInduction(st *Step, g goal, lems []lemma, key proofKey) error {
	cx, cy := g.x, g.y
	xp, xok := trailingPlus(cx)
	yp, yok := trailingPlus(cy)
	switch {
	case xok && yok && len(st.Children) == 4:
		u, a := cx[:len(cx)-1], xp.Inner
		v, b := cy[:len(cy)-1], yp.Inner
		cases := []goal{
			newGoal(g.form, appendComp(u, a), appendComp(v, b)),
			newGoal(g.form, appendComp(u, pathexpr.Rep1(a)), appendComp(v, b)),
			newGoal(g.form, appendComp(u, a), appendComp(v, pathexpr.Rep1(b))),
		}
		for k, want := range cases {
			if err := c.expectGoal(st.Children[k], want); err != nil {
				return err
			}
			if err := c.check(st.Children[k], lems); err != nil {
				return err
			}
		}
		stepX, stepY := appendComp(cx, a), appendComp(cy, b)
		ih := lemma{form: g.form, re1: expr(cx), re2: expr(cy), maxSize: sliceSize(stepX) + sliceSize(stepY)}
		if err := c.expectGoal(st.Children[3], newGoal(g.form, stepX, stepY)); err != nil {
			return err
		}
		if err := c.check(st.Children[3], append(append([]lemma{}, lems...), ih)); err != nil {
			return err
		}
		c.verified[key] = true
		return nil

	case len(st.Children) == 2 && ((st.StarOnLeft && xok) || (!st.StarOnLeft && yok)):
		var base, stepGoalWant goal
		var ih lemma
		if st.StarOnLeft {
			u, a := cx[:len(cx)-1], xp.Inner
			base = newGoal(g.form, appendComp(u, a), cy)
			stepX := appendComp(cx, a)
			stepGoalWant = newGoal(g.form, stepX, cy)
			ih = lemma{form: g.form, re1: expr(cx), re2: expr(cy), maxSize: sliceSize(stepX) + sliceSize(cy)}
		} else {
			v, b := cy[:len(cy)-1], yp.Inner
			base = newGoal(g.form, cx, appendComp(v, b))
			stepY := appendComp(cy, b)
			stepGoalWant = newGoal(g.form, cx, stepY)
			ih = lemma{form: g.form, re1: expr(cx), re2: expr(cy), maxSize: sliceSize(cx) + sliceSize(stepY)}
		}
		if err := c.expectGoal(st.Children[0], base); err != nil {
			return err
		}
		if err := c.check(st.Children[0], lems); err != nil {
			return err
		}
		if err := c.expectGoal(st.Children[1], stepGoalWant); err != nil {
			return err
		}
		if err := c.check(st.Children[1], append(append([]lemma{}, lems...), ih)); err != nil {
			return err
		}
		c.verified[key] = true
		return nil
	}
	return c.fail(st, "goal shape does not match the induction schema")
}

// expectGoal verifies a child derives exactly the expected goal.
func (c *checker) expectGoal(child *Step, want goal) error {
	if child == nil {
		return fmt.Errorf("checkproof: missing subproof for %s", want.String())
	}
	got := stepGoal(child)
	if got.key() != want.key() {
		return fmt.Errorf("checkproof: subproof derives %s, expected %s", got.String(), want.String())
	}
	return nil
}

// finish validates a delegated child and marks the parent verified.
func (c *checker) finish(parentKey proofKey, child *Step, lems []lemma) error {
	if err := c.check(child, lems); err != nil {
		return err
	}
	c.verified[parentKey] = true
	return nil
}
