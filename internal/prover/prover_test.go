package prover

import (
	"strings"
	"testing"

	"repro/internal/axiom"
	"repro/internal/pathexpr"
)

func mustProve(t *testing.T, p *Prover, x, y string) *Proof {
	t.Helper()
	proof := p.ProveDisjoint(pathexpr.MustParse(x), pathexpr.MustParse(y))
	if proof.Result != Proved {
		t.Fatalf("ProveDisjoint(%s, %s) = %v, want proved\n%s", x, y, proof.Result, proof.Render())
	}
	return proof
}

func mustFail(t *testing.T, p *Prover, x, y string) *Proof {
	t.Helper()
	proof := p.ProveDisjoint(pathexpr.MustParse(x), pathexpr.MustParse(y))
	if proof.Result != NotProved {
		t.Fatalf("ProveDisjoint(%s, %s) = %v, want not proved\n%s", x, y, proof.Result, proof.Render())
	}
	return proof
}

// TestSection33Proof reproduces the paper's worked example: with Figure 3's
// leaf-linked binary tree axioms, _hroot.LLN <> _hroot.LRN is provable, so T
// is not dependent on S.
func TestSection33Proof(t *testing.T) {
	p := New(axiom.LeafLinkedBinaryTree(), Options{})
	proof := mustProve(t, p, "L.L.N", "L.R.N")
	text := proof.Render()
	// The derivation applies A3 to the N suffixes, then discharges the
	// prefixes LL vs LR using A1 (and A2).
	for _, want := range []string{"A3", "A1"} {
		if !strings.Contains(text, want) {
			t.Errorf("proof should mention %s:\n%s", want, text)
		}
	}
}

// TestSection33Variants covers the neighboring queries §2.4 discusses:
// root.LLNN vs root.LRN reach the same vertex in some tree, so no proof may
// exist; root.LLN vs root.LRN must be proved (Larus-Hilfinger cannot).
func TestSection33Variants(t *testing.T) {
	p := New(axiom.LeafLinkedBinaryTree(), Options{})
	// LLNN and LRN can reach the same leaf (see Figure 3): unprovable.
	mustFail(t, p, "L.L.N.N", "L.R.N")
	// Identical paths are definitely aliased: unprovable.
	mustFail(t, p, "L.L.N", "L.L.N")
	// Different leaves of the N chain.
	mustProve(t, p, "L.L", "L.R")
	mustProve(t, p, "L", "R")
	// A leaf vs the vertex it N-links to.
	mustProve(t, p, "L.L.N.N", "L.L.N")
}

// TestCaseCPrefixEquality exercises case C: identical singleton prefixes
// with suffixes disjoint from the same source.
func TestCaseCPrefixEquality(t *testing.T) {
	p := New(axiom.LeafLinkedBinaryTree(), Options{})
	// From the same vertex L.L, the suffix N (one hop) differs from ε by A4.
	proof := mustProve(t, p, "L.L.N", "L.L")
	if !strings.Contains(proof.Render(), "case C") && !strings.Contains(proof.Render(), "case D") {
		t.Errorf("expected a prefix-discharging case:\n%s", proof.Render())
	}
}

// TestTheoremT reproduces §5: with the three sparse-matrix axioms, the
// loop-carried theorem ∀hr, hr.ncolE+ <> hr.nrowE+ncolE+ is provable, which
// parallelizes loop L1 of factor.
func TestTheoremT(t *testing.T) {
	p := New(axiom.SparseMatrixCore(), Options{})
	proof := mustProve(t, p, "ncolE+", "nrowE+ncolE+")
	if proof.Stats.Inductions == 0 {
		t.Errorf("Theorem T should require Kleene induction:\n%s", proof.Render())
	}
	// The paper notes four initial cases because both paths end in '+'.
	if !strings.Contains(proof.Render(), "plus-induction") {
		t.Errorf("expected plus-induction in trace:\n%s", proof.Render())
	}
}

// TestTheoremTInnerLoop is the analogous theorem for the inner loop L2
// (columns instead of rows), provable with the full Appendix A set.
func TestTheoremTInnerLoop(t *testing.T) {
	p := New(axiom.SparseMatrix(), Options{})
	mustProve(t, p, "nrowE+", "ncolE+nrowE+")
}

// TestTheoremTFromFullAxioms checks Theorem T is also provable from the
// full twelve-axiom Appendix A description.
func TestTheoremTFromFullAxioms(t *testing.T) {
	p := New(axiom.SparseMatrix(), Options{})
	mustProve(t, p, "ncolE+", "nrowE+ncolE+")
}

// TestTheoremTStarForm uses the paper's original star spelling
// ncolE(ncolE)* vs (nrowE)+ncolE(ncolE)*.
func TestTheoremTStarForm(t *testing.T) {
	p := New(axiom.SparseMatrixCore(), Options{})
	mustProve(t, p, "ncolE.ncolE*", "nrowE+ncolE.ncolE*")
}

// TestSparseMatrixRowHeaderDisjointness exercises the Appendix A header
// axioms: distinct row headers reach disjoint row lists.
func TestSparseMatrixRowHeaderDisjointness(t *testing.T) {
	p := New(axiom.SparseMatrix(), Options{})
	proof := p.Prove(DiffSrc,
		pathexpr.MustParse("relem.ncolE*"),
		pathexpr.MustParse("relem.ncolE*"))
	if proof.Result != Proved {
		t.Fatalf("distinct row headers should have disjoint rows:\n%s", proof.Render())
	}
}

func TestDiffSrcTrivial(t *testing.T) {
	p := New(axiom.NewSet("empty"), Options{})
	proof := p.Prove(DiffSrc, pathexpr.Eps, pathexpr.Eps)
	if proof.Result != Proved {
		t.Fatalf("∀h<>k, h.ε <> k.ε should be trivially proved: %v", proof.Result)
	}
	same := p.Prove(SameSrc, pathexpr.Eps, pathexpr.Eps)
	if same.Result != NotProved {
		t.Fatalf("∀h, h.ε <> h.ε must not be provable: %v", same.Result)
	}
}

func TestNoAxiomsMeansNoProofs(t *testing.T) {
	p := New(axiom.NewSet("none"), Options{})
	mustFail(t, p, "L", "R")
	mustFail(t, p, "a+", "b+")
}

// TestLinkedListLoopCarried is Figure 1's right fragment: iterations write
// q->f where q advances by link each iteration; iteration i vs j>i accesses
// are h.ε vs h.link+, provable from list axioms.
func TestLinkedListLoopCarried(t *testing.T) {
	p := New(axiom.SinglyLinkedList("link"), Options{})
	mustProve(t, p, "ε", "link+")
	mustProve(t, p, "link", "link.link+")
}

// TestCircularListLoopCarried: without the acyclicity axiom the same
// theorem must not be provable — the list may wrap.
func TestCircularListLoopCarried(t *testing.T) {
	p := New(axiom.CircularList("link"), Options{})
	mustFail(t, p, "ε", "link+")
}

// TestRingEquality exercises the equality-axiom machinery: in a ring of
// three vertices, p.next and p.next² are distinct, while p.next and p.next⁴
// coincide.
func TestRingEquality(t *testing.T) {
	p := New(axiom.RingOf("next", 3), Options{})
	mustProve(t, p, "next", "next.next")
	mustFail(t, p, "next", "next.next.next.next")
	if !p.DefinitelyAliased(pathexpr.MustParse("next"), pathexpr.MustParse("next.next.next.next")) {
		t.Error("next ≡ next⁴ in a 3-ring should be a definite alias")
	}
	if p.DefinitelyAliased(pathexpr.MustParse("next"), pathexpr.MustParse("next.next")) {
		t.Error("next and next² are distinct in a 3-ring")
	}
}

func TestDefinitelyAliased(t *testing.T) {
	p := New(axiom.LeafLinkedBinaryTree(), Options{})
	if !p.DefinitelyAliased(pathexpr.MustParse("L.L.N"), pathexpr.MustParse("L.L.N")) {
		t.Error("identical words must be definitely aliased")
	}
	if p.DefinitelyAliased(pathexpr.MustParse("L*"), pathexpr.MustParse("L*")) {
		t.Error("non-word paths are never definitely aliased")
	}
}

// TestBinaryTreeClassics: the standard tree disjointness facts.
func TestBinaryTreeClassics(t *testing.T) {
	p := New(axiom.BinaryTree("l", "r"), Options{})
	mustProve(t, p, "l", "r")
	mustProve(t, p, "l.l", "r.r")
	mustProve(t, p, "l.(l|r)*", "r.(l|r)*") // whole subtrees are disjoint
	mustProve(t, p, "ε", "(l|r)+")          // acyclicity
	mustFail(t, p, "l.l", "l.l")
}

// TestDoublyLinkedList: forward and backward chains.
func TestDoublyLinkedList(t *testing.T) {
	p := New(axiom.DoublyLinkedList("next", "prev"), Options{})
	mustProve(t, p, "ε", "next+")
	mustProve(t, p, "next", "prev")
	// next.prev may return to the origin: not provable (and indeed false).
	mustFail(t, p, "ε", "next.prev")
}

// TestRangeTree2D: inner trees hanging off distinct leaves are disjoint.
func TestRangeTree2D(t *testing.T) {
	p := New(axiom.TwoDRangeTree(), Options{})
	mustProve(t, p, "L.N.aux.l", "L.N.aux.r")
	mustProve(t, p, "L.aux.(l|r)*", "R.aux.(l|r)*")
	mustFail(t, p, "L.aux.l.n.n", "L.aux.r.n")
}

// TestAltSplit: alternation components that no single axiom covers must be
// split and proved per branch.
func TestAltSplit(t *testing.T) {
	p := New(axiom.MustParseSet("alt", `
		forall p, p.a <> p.b
		forall p, p.a <> p.c
	`), Options{})
	proof := mustProve(t, p, "a", "b|c")
	if !strings.Contains(proof.Render(), "alt-split") {
		t.Errorf("expected alt-split:\n%s", proof.Render())
	}
}

func TestExhaustedOnTinyBudget(t *testing.T) {
	p := New(axiom.SparseMatrixCore(), Options{MaxSteps: 3})
	proof := p.ProveDisjoint(pathexpr.MustParse("ncolE+"), pathexpr.MustParse("nrowE+ncolE+"))
	if proof.Result != Exhausted {
		t.Fatalf("tiny budget should exhaust, got %v", proof.Result)
	}
}

func TestDepthLimitIsNotDefinitive(t *testing.T) {
	// With a depth too small to find the Theorem T proof, the result must be
	// NotProved or Exhausted, and a fresh prover with normal limits must
	// still prove it (i.e. the shallow failure must not poison a cache).
	shallow := New(axiom.SparseMatrixCore(), Options{MaxDepth: 1})
	res := shallow.ProveDisjoint(pathexpr.MustParse("ncolE+"), pathexpr.MustParse("nrowE+ncolE+"))
	if res.Result == Proved {
		t.Fatal("depth-1 prover should not find the Theorem T proof")
	}
	deep := New(axiom.SparseMatrixCore(), Options{})
	mustProve(t, deep, "ncolE+", "nrowE+ncolE+")
}

func TestProofCacheSpeedsRepeats(t *testing.T) {
	p := New(axiom.SparseMatrixCore(), Options{})
	first := mustProve(t, p, "ncolE+", "nrowE+ncolE+")
	second := mustProve(t, p, "ncolE+", "nrowE+ncolE+")
	if second.Stats.ProveCalls >= first.Stats.ProveCalls {
		t.Errorf("cached reproof should examine fewer goals: %d vs %d",
			second.Stats.ProveCalls, first.Stats.ProveCalls)
	}
	if second.Stats.CacheHits == 0 {
		t.Error("second proof should hit the cache")
	}
}

func TestDisableProofCache(t *testing.T) {
	p := New(axiom.SparseMatrixCore(), Options{DisableProofCache: true})
	mustProve(t, p, "ncolE+", "nrowE+ncolE+")
	second := mustProve(t, p, "ncolE+", "nrowE+ncolE+")
	if second.Stats.CacheHits != 0 {
		t.Error("cache disabled but hits recorded")
	}
}

func TestSuffixOrderAblation(t *testing.T) {
	p := New(axiom.LeafLinkedBinaryTree(), Options{LongestSuffixFirst: true})
	mustProve(t, p, "L.L.N", "L.R.N")
}

func TestRenderShapes(t *testing.T) {
	p := New(axiom.LeafLinkedBinaryTree(), Options{})
	proved := mustProve(t, p, "L", "R")
	if !strings.Contains(proved.Render(), "Theorem:") || !strings.Contains(proved.Render(), "∎") {
		t.Errorf("render missing frame:\n%s", proved.Render())
	}
	failed := mustFail(t, p, "L.L.N.N", "L.R.N")
	if !strings.Contains(failed.Render(), "No proof") {
		t.Errorf("failed render:\n%s", failed.Render())
	}
}

func TestFormString(t *testing.T) {
	if SameSrc.String() == DiffSrc.String() {
		t.Error("form strings must differ")
	}
	for _, r := range []Result{Proved, NotProved, Exhausted} {
		if r.String() == "unknown" {
			t.Errorf("missing string for %d", int(r))
		}
	}
}
