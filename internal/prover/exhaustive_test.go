package prover

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/axiom"
	"repro/internal/heap"
	"repro/internal/pathexpr"
)

// These tests enumerate *all* short word-path pairs over a structure's
// fields and compare the prover against ground truth established on a
// battery of conforming heaps:
//
//   - if the two paths collide on any conforming heap, the prover must NOT
//     prove disjointness (exhaustive soundness over the enumerated space);
//   - the fraction of truly-disjoint pairs the prover does prove measures
//     its precision, which must clear a floor (the paper's claim is
//     accuracy "grows with the accuracy of the axioms" — with Figure 3's
//     full axiom set most short-path facts are decidable).

// allWords enumerates all words over fields up to maxLen (including ε).
func allWords(fields []string, maxLen int) [][]string {
	out := [][]string{{}}
	frontier := [][]string{{}}
	for l := 0; l < maxLen; l++ {
		var next [][]string
		for _, w := range frontier {
			for _, f := range fields {
				ext := append(append([]string{}, w...), f)
				next = append(next, ext)
				out = append(out, ext)
			}
		}
		frontier = next
	}
	return out
}

func TestExhaustiveShortPathsLeafLinkedTree(t *testing.T) {
	fields := []string{"L", "R", "N"}
	words := allWords(fields, 3)

	// Ground-truth battery: complete trees of several depths plus random
	// shapes, all conforming to Figure 3's axioms.
	var graphs []*heap.Graph
	for depth := 0; depth <= 3; depth++ {
		g, _ := heap.BuildLeafLinkedTree(depth)
		graphs = append(graphs, g)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 8; i++ {
		g, _ := heap.RandomLeafLinkedTree(rng, 1+rng.Intn(14))
		graphs = append(graphs, g)
	}

	p := New(axiom.LeafLinkedBinaryTree(), Options{})
	var provedDisjoint, trulyDisjoint, collisions, unsound int
	for _, w1 := range words {
		for _, w2 := range words {
			x, y := pathexpr.FromWord(w1), pathexpr.FromWord(w2)
			collides := false
		scan:
			for _, g := range graphs {
				for v := 0; v < g.NumVertices(); v++ {
					if !g.Disjoint(heap.Vertex(v), x, heap.Vertex(v), y) {
						collides = true
						break scan
					}
				}
			}
			proved := p.ProveDisjoint(x, y).Result == Proved
			switch {
			case collides && proved:
				unsound++
				if unsound <= 5 {
					t.Errorf("UNSOUND: %v and %v collide on a conforming heap but were proved disjoint",
						fmtWord(w1), fmtWord(w2))
				}
			case collides:
				collisions++
			case proved:
				trulyDisjoint++
				provedDisjoint++
			default:
				trulyDisjoint++
			}
		}
	}
	if unsound > 0 {
		t.Fatalf("%d unsound proofs", unsound)
	}
	precision := float64(provedDisjoint) / float64(trulyDisjoint)
	t.Logf("%d pairs: %d collide somewhere, %d disjoint-on-battery, %d proved (%.0f%% precision)",
		len(words)*len(words), collisions, trulyDisjoint, provedDisjoint, 100*precision)
	// The denominator over-approximates true disjointness: the battery only
	// contains proper leaf-linked trees, but the axioms admit stranger
	// conforming heaps (nothing in A1–A4 forbids p.L = p.N, since the
	// axioms never relate the two dimensions from one vertex).  Pairs
	// mixing dimensions are therefore correctly unprovable yet counted as
	// "disjoint on battery".  The floor reflects the genuinely derivable
	// share of the enumerated space.
	if precision < 0.4 {
		t.Errorf("precision %.0f%% below floor; the axioms should decide much of the short-path space", 100*precision)
	}
}

func TestExhaustiveShortPathsList(t *testing.T) {
	words := allWords([]string{"next"}, 5)
	var graphs []*heap.Graph
	for _, n := range []int{1, 2, 3, 6, 9} {
		g, _ := heap.BuildList(n, "next")
		graphs = append(graphs, g)
	}
	p := New(axiom.SinglyLinkedList("next"), Options{})
	for _, w1 := range words {
		for _, w2 := range words {
			x, y := pathexpr.FromWord(w1), pathexpr.FromWord(w2)
			proved := p.ProveDisjoint(x, y).Result == Proved
			// Ground truth on a list is simply word length equality.
			shouldProve := len(w1) != len(w2)
			if proved != shouldProve {
				t.Errorf("next^%d <> next^%d: proved=%v, want %v", len(w1), len(w2), proved, shouldProve)
			}
		}
	}
}

// TestExhaustiveRing3: on a 3-ring with the cycle equality axiom, two
// next-powers are aliased iff equal mod 3; the prover plus DefinitelyAliased
// must classify every pair of powers up to 7 correctly.
func TestExhaustiveRing3(t *testing.T) {
	p := New(axiom.RingOf("next", 3), Options{})
	word := func(k int) pathexpr.Expr {
		w := make([]string, k)
		for i := range w {
			w[i] = "next"
		}
		return pathexpr.FromWord(w)
	}
	for i := 0; i <= 7; i++ {
		for j := 0; j <= 7; j++ {
			aliased := (i % 3) == (j % 3)
			if got := p.DefinitelyAliased(word(i), word(j)); got != aliased {
				t.Errorf("next^%d ≡ next^%d: DefinitelyAliased=%v, want %v", i, j, got, aliased)
			}
			proved := p.ProveDisjoint(word(i), word(j)).Result == Proved
			if proved && aliased {
				t.Errorf("next^%d and next^%d are aliased but proved disjoint", i, j)
			}
			if !proved && !aliased {
				// Disjointness of distinct residues needs the pairwise
				// distinctness axioms; all are derivable in a 3-ring.
				t.Errorf("next^%d <> next^%d (distinct residues) not proved", i, j)
			}
		}
	}
}

// TestProverDeterminism: identical queries on fresh provers give identical
// results and statistics.
func TestProverDeterminism(t *testing.T) {
	run := func() string {
		p := New(axiom.SparseMatrix(), Options{})
		proof := p.ProveDisjoint(
			pathexpr.MustParse("ncolE+"),
			pathexpr.MustParse("nrowE+ncolE+"))
		return fmt.Sprintf("%v/%+v", proof.Result, proof.Stats)
	}
	first := run()
	for i := 0; i < 3; i++ {
		if got := run(); got != first {
			t.Fatalf("nondeterministic prover: %s vs %s", got, first)
		}
	}
}

func fmtWord(w []string) string {
	if len(w) == 0 {
		return "ε"
	}
	out := ""
	for _, s := range w {
		out += s
	}
	return out
}
