package prover

import (
	"errors"
	"time"

	"repro/internal/automata"
	"repro/internal/axiom"
	"repro/internal/pathexpr"
	"repro/internal/telemetry"
)

// Options configures a Prover's search.  The zero value selects defaults.
type Options struct {
	// MaxDepth bounds recursion depth (goal nesting).  Default 60.
	MaxDepth int
	// MaxSteps bounds the total number of goals examined per top-level
	// query.  Default 200000.  The paper notes the proof process "can be
	// pruned heuristically and cutoff points set"; exceeding the budget
	// yields Exhausted, which callers must map to Maybe.
	MaxSteps int
	// DFAStateLimit bounds subset construction (automata.DefaultStateLimit
	// if zero).
	DFAStateLimit int
	// DisableProofCache turns off goal memoization (ablation).
	DisableProofCache bool
	// LongestSuffixFirst reverses the suffix enumeration order (ablation).
	// The paper prescribes "ever-increasing suffixes", i.e. shortest first.
	LongestSuffixFirst bool
	// DisableMinimize skips DFA minimization in the language cache
	// (ablation).
	DisableMinimize bool
	// DFACache, when non-nil, replaces the prover's private language cache —
	// the batched query engine passes an automata.SharedCache here so every
	// worker prover draws from (and feeds) one compilation cache.  The
	// provider owns the cache's telemetry wiring; DisableMinimize and
	// DFAStateLimit are then ignored.
	DFACache automata.DFACache
	// Interrupt, when non-nil, is polled periodically during proof search;
	// returning true aborts the query with Exhausted — which callers map to
	// Maybe, never to an unsound No.  The engine uses this for context
	// cancellation and per-query timeouts.
	Interrupt func() bool
	// Trace, when non-nil, receives one request-scoped span per top-level
	// Prove call, parented under TraceParent — the engine sets both so a
	// served request's span tree reaches all the way down to the proof
	// searches (including the ones its interrupt hook cut short).  Nil (the
	// default) costs one pointer check per query.
	Trace       *telemetry.RequestTrace
	TraceParent telemetry.SpanID
	// Telemetry receives per-query spans, rule-application trace events, and
	// aggregate search counters.  Nil (the default) disables instrumentation
	// at ~zero cost on the hot path.
	Telemetry *telemetry.Set
}

func (o Options) withDefaults() Options {
	if o.MaxDepth <= 0 {
		o.MaxDepth = 60
	}
	if o.MaxSteps <= 0 {
		o.MaxSteps = 200000
	}
	if o.DFAStateLimit <= 0 {
		o.DFAStateLimit = automata.DefaultStateLimit
	}
	return o
}

// errBudget aborts a search that exceeded its resource budget.
var errBudget = errors.New("prover: resource budget exhausted")

// cacheEntry is a memoized definitive outcome; st is the proof tree when
// proved.
type cacheEntry struct {
	proved bool
	st     *Step
}

// proofKey identifies one cached goal outcome: the goal's canonical identity
// plus the lemma-list fingerprint it was judged under.  A no-lemma key (the
// common case) is built without any allocation.
type proofKey struct {
	goal goalKey
	lems string
}

// Prover proves disjointness theorems from a fixed axiom set.  A Prover is
// not safe for concurrent use.
type Prover struct {
	axioms *axiom.Set
	opts   Options
	dfas   automata.DFACache
	// cache memoizes definitive goal outcomes keyed by goal+lemma
	// fingerprint, retaining the proof tree of proved goals so that cached
	// steps remain machine-checkable.  Valid for the lifetime of the prover
	// because the axiom set is immutable.
	cache map[proofKey]cacheEntry
	// eqWordAxioms are the equality axioms whose both sides are single
	// words, usable for congruence rewriting of prefixes.
	eqWordRewrites [][2][]string
	// tel and m hold the telemetry sink and its pre-resolved instruments
	// (all nil, hence no-op, when Options.Telemetry is nil).
	tel *telemetry.Set
	m   proverMetrics
}

// proverMetrics are the prover's pre-resolved registry instruments.
type proverMetrics struct {
	queries      *telemetry.Counter
	goals        *telemetry.Counter
	cacheHits    *telemetry.Counter
	directChecks *telemetry.Counter
	inductions   *telemetry.Counter
	suffixSplits *telemetry.Counter
	starUnfolds  *telemetry.Counter
	altSplits    *telemetry.Counter
	exhausted    *telemetry.Counter
	peakDepth    *telemetry.Max
	queryTimeNS  *telemetry.Histogram
	queryWin     *telemetry.WindowHistogram
	querySteps   *telemetry.Histogram
}

func newProverMetrics(tel *telemetry.Set) proverMetrics {
	return proverMetrics{
		queries:      tel.Counter("prover.queries"),
		goals:        tel.Counter("prover.goals"),
		cacheHits:    tel.Counter("prover.cache_hits"),
		directChecks: tel.Counter("prover.direct_checks"),
		inductions:   tel.Counter("prover.inductions"),
		suffixSplits: tel.Counter("prover.suffix_splits"),
		starUnfolds:  tel.Counter("prover.star_unfolds"),
		altSplits:    tel.Counter("prover.alt_splits"),
		exhausted:    tel.Counter("prover.exhausted"),
		peakDepth:    tel.Max("prover.peak_depth"),
		queryTimeNS:  tel.Histogram("prover.query_ns"),
		queryWin:     tel.Window("prover.query_ns"),
		querySteps:   tel.Histogram("prover.steps_per_query"),
	}
}

// New returns a prover over the given axiom set.
func New(axioms *axiom.Set, opts Options) *Prover {
	opts = opts.withDefaults()
	dfas := opts.DFACache
	if dfas == nil {
		var private *automata.Cache
		if opts.DisableMinimize {
			private = automata.NewCacheNoMinimize(opts.DFAStateLimit)
		} else {
			private = automata.NewCache(opts.DFAStateLimit)
		}
		private.SetTelemetry(opts.Telemetry)
		dfas = private
	}
	p := &Prover{
		axioms: axioms,
		opts:   opts,
		dfas:   dfas,
		cache:  make(map[proofKey]cacheEntry),
		tel:    opts.Telemetry,
		m:      newProverMetrics(opts.Telemetry),
	}
	for _, a := range axioms.ByForm(axiom.SameSrcEqual) {
		w1, ok1 := pathexpr.Word(a.RE1)
		w2, ok2 := pathexpr.Word(a.RE2)
		if ok1 && ok2 {
			p.eqWordRewrites = append(p.eqWordRewrites, [2][]string{w1, w2})
		}
	}
	return p
}

// Axioms returns the prover's axiom set.
func (p *Prover) Axioms() *axiom.Set { return p.axioms }

// ProveDisjoint attempts to prove ∀h, h.x <> h.y — the theorem of no
// dependence for access paths sharing a handle.
func (p *Prover) ProveDisjoint(x, y pathexpr.Expr) *Proof {
	return p.Prove(SameSrc, x, y)
}

// Prove attempts to prove the disjointness theorem of the given form.
func (p *Prover) Prove(form Form, x, y pathexpr.Expr) *Proof {
	g := newGoal(form, pathexpr.Components(pathexpr.Simplify(x)), pathexpr.Components(pathexpr.Simplify(y)))
	r := &run{
		p:       p,
		alpha:   automata.NewAlphabet(append(p.axioms.Fields(), pathexpr.Fields(x, y)...)...),
		traceOn: p.tel.TraceEnabled(),
	}
	timed := r.traceOn || p.m.queryTimeNS != nil
	var t0 time.Time
	if timed {
		t0 = time.Now()
	}
	var qspan telemetry.ActiveSpan
	if p.opts.Trace != nil {
		qspan = p.opts.Trace.StartSpan("prover.prove", p.opts.TraceParent)
	}
	compiles0 := p.dfas.Stats().Compiles
	proof := &Proof{Theorem: g.String()}
	proved, st, err := r.prove(g, nil, 0)
	proof.Stats = r.stats
	proof.Stats.StepsUsed = r.stats.ProveCalls
	proof.Stats.PeakDepth = r.peakDepth
	proof.Stats.DFACompiles = p.dfas.Stats().Compiles - compiles0
	switch {
	case err != nil:
		proof.Result = Exhausted
	case proved:
		proof.Result = Proved
		proof.Root = st
	default:
		proof.Result = NotProved
	}
	p.m.queries.Add(1)
	p.m.goals.Add(int64(r.stats.ProveCalls))
	p.m.cacheHits.Add(int64(r.stats.CacheHits))
	p.m.directChecks.Add(int64(r.stats.DirectChecks))
	p.m.inductions.Add(int64(r.stats.Inductions))
	if proof.Result == Exhausted {
		p.m.exhausted.Add(1)
	}
	p.m.peakDepth.Observe(int64(r.peakDepth))
	p.m.querySteps.Observe(int64(r.stats.ProveCalls))
	if p.opts.Trace != nil {
		qspan.End(
			telemetry.String("theorem", proof.Theorem),
			telemetry.String("result", proof.Result.String()),
			telemetry.Int("steps", proof.Stats.StepsUsed),
			telemetry.Int("dfa_compiles", proof.Stats.DFACompiles))
	}
	if timed {
		dur := time.Since(t0)
		p.m.queryTimeNS.Observe(dur.Nanoseconds())
		p.m.queryWin.Observe(dur.Nanoseconds())
		if r.traceOn {
			p.tel.Emit("prover.query",
				telemetry.DurUS("dur_us", dur),
				telemetry.String("theorem", proof.Theorem),
				telemetry.String("result", proof.Result.String()),
				telemetry.Int("steps", proof.Stats.StepsUsed),
				telemetry.Int("budget", p.opts.MaxSteps),
				telemetry.Int("peak_depth", proof.Stats.PeakDepth),
				telemetry.Int("cache_hits", proof.Stats.CacheHits),
				telemetry.Int("dfa_compiles", proof.Stats.DFACompiles))
		}
	}
	return proof
}

// DefinitelyAliased reports whether the two access paths provably denote the
// same vertex from a common handle: both are single words and are congruent
// under the equality axioms (identical words are trivially congruent).
// deptest uses this for its Yes answer.
func (p *Prover) DefinitelyAliased(x, y pathexpr.Expr) bool {
	w1, ok1 := pathexpr.Word(pathexpr.Simplify(x))
	w2, ok2 := pathexpr.Word(pathexpr.Simplify(y))
	if !ok1 || !ok2 {
		return false
	}
	return p.wordsCongruent(w1, w2)
}

// run carries per-query state.
type run struct {
	p     *Prover
	alpha *automata.Alphabet
	stats Stats
	// incomplete records that some branch of the current subtree was
	// truncated by the depth limit; failures in incomplete subtrees are not
	// definitive and must not be cached.
	incomplete bool
	// traceOn caches p.tel.TraceEnabled() so hot paths skip building event
	// attributes (goal rendering) when tracing is off.
	traceOn bool
	// peakDepth is the deepest goal nesting reached this query.
	peakDepth int
}

// event emits a rule-application trace event for goal g at depth.
func (r *run) event(name string, g goal, depth int, extra ...telemetry.Attr) {
	attrs := append([]telemetry.Attr{
		telemetry.String("goal", g.String()),
		telemetry.Int("depth", depth),
	}, extra...)
	r.p.tel.Emit(name, attrs...)
}

// prove is the paper's proveDisj: it returns whether a proof of g was found.
// err is non-nil only when the step or DFA budget ran out, aborting the
// whole query.
func (r *run) prove(g goal, lems []lemma, depth int) (bool, *Step, error) {
	r.stats.ProveCalls++
	if r.stats.ProveCalls > r.p.opts.MaxSteps {
		return false, nil, errBudget
	}
	// Poll the interrupt hook on a stride so the check costs nothing when
	// unset and almost nothing when set.
	if r.p.opts.Interrupt != nil && r.stats.ProveCalls&63 == 0 && r.p.opts.Interrupt() {
		return false, nil, errBudget
	}
	if depth > r.peakDepth {
		r.peakDepth = depth
	}
	if depth > r.p.opts.MaxDepth {
		r.incomplete = true
		return false, nil, nil
	}

	// Trivial outcomes.
	if len(g.x) == 0 && len(g.y) == 0 {
		if g.form == DiffSrc {
			return true, step(g, RuleTrivial), nil
		}
		return false, nil, nil // same vertex: definitely aliased
	}
	if g.form == SameSrc {
		if w1, ok1 := pathexpr.Word(expr(g.x)); ok1 {
			if w2, ok2 := pathexpr.Word(expr(g.y)); ok2 && r.p.wordsCongruent(w1, w2) {
				return false, nil, nil // definite alias: unprovable
			}
		}
	}
	vac, err := r.vacuous(g)
	if err != nil {
		return false, nil, err
	}
	if vac != nil {
		return true, vac, nil
	}

	// Proof cache.  The key is built only when the cache is on: rendering it
	// was once the dominant per-goal cost, and even the ID-based form does
	// real work (reassembling the sides for interning).
	var key proofKey
	if !r.p.opts.DisableProofCache {
		key = proofKey{goal: g.key(), lems: lemmaKey(lems)}
		if entry, ok := r.p.cache[key]; ok {
			r.stats.CacheHits++
			if r.traceOn {
				r.event("prover.cache_hit", g, depth, telemetry.Bool("proved", entry.proved))
			}
			if entry.proved {
				st := step(g, RuleCached)
				st.Children = []*Step{entry.st}
				return true, st, nil
			}
			return false, nil, nil
		}
	}

	wasIncomplete := r.incomplete
	r.incomplete = false
	proved, st, err := r.proveUncached(g, lems, depth)
	if err != nil {
		r.incomplete = r.incomplete || wasIncomplete
		return false, nil, err
	}
	definitive := proved || !r.incomplete
	r.incomplete = r.incomplete || wasIncomplete
	if !r.p.opts.DisableProofCache && definitive {
		r.p.cache[key] = cacheEntry{proved: proved, st: st}
	}
	return proved, st, nil
}

func (r *run) proveUncached(g goal, lems []lemma, depth int) (bool, *Step, error) {
	// Direct application of a single axiom or induction hypothesis.
	if name, err := r.direct(g.form, g.x, g.y, lems, g.size()); err != nil {
		return false, nil, err
	} else if name != "" {
		if r.traceOn {
			r.event("prover.axiom", g, depth, telemetry.String("by", name))
		}
		st := step(g, RuleAxiom)
		st.By = name
		return true, st, nil
	}

	// Suffix-split search: the core of proveDisj (steps A–F, Figure 5).
	if ok, st, err := r.splitSearch(g, lems, depth); err != nil || ok {
		return ok, st, err
	}

	// Kleene processing (step E): trailing star unfolds into the ε and ⁺
	// cases; trailing plus triggers the paper's induction schema.
	if ok, st, err := r.starUnfold(g, lems, depth); err != nil || ok {
		return ok, st, err
	}
	if ok, st, err := r.plusInduction(g, lems, depth); err != nil || ok {
		return ok, st, err
	}

	// Alternation processing: a top-level alternative component splits the
	// goal; both branches must be proved.
	if ok, st, err := r.altSplit(g, lems, depth); err != nil || ok {
		return ok, st, err
	}

	return false, nil, nil
}

// vacuous reports a proof when either side denotes the empty language (the
// access path can traverse no edge of the structure, e.g. ∅ components).
func (r *run) vacuous(g goal) (*Step, error) {
	for _, side := range [][]pathexpr.Expr{g.x, g.y} {
		hasEmpty := false
		for _, c := range side {
			if _, ok := c.(pathexpr.Empty); ok {
				hasEmpty = true
				break
			}
		}
		if hasEmpty {
			return step(g, RuleVacuous), nil
		}
	}
	return nil, nil
}

// direct attempts to discharge the goal by a single axiom or lemma whose
// sides include the goal's sides as regular languages (paper: "direct
// application of a single axiom").  It returns the name of the applied fact,
// or "" when none applies.  goalSize guards lemma applicability.
func (r *run) direct(form Form, x, y []pathexpr.Expr, lems []lemma, goalSize int) (string, error) {
	ex, ey := expr(x), expr(y)
	wantForm := axiom.SameSrcDisjoint
	if form == DiffSrc {
		wantForm = axiom.DiffSrcDisjoint
	}
	for _, a := range r.p.axioms.ByForm(wantForm) {
		ok, err := r.coveredBy(ex, ey, a.RE1, a.RE2)
		if err != nil {
			return "", err
		}
		if ok {
			return a.Name, nil
		}
	}
	for _, l := range lems {
		if l.form != form || goalSize >= l.maxSize {
			continue
		}
		// An induction hypothesis is a single arbitrary-but-fixed instance
		// C(i, j), not a universally quantified fact over iteration counts.
		// It may therefore only discharge the goal that *is* that instance —
		// the sides must be language-equal to the hypothesis sides, as
		// happens when suffix splits peel the appended concrete components
		// off the inductive step goal.  Mere language inclusion would let a
		// rewritten form of the step goal discharge itself (unsound; caught
		// by the soundness property tests).
		ok, err := r.sameAs(ex, ey, l.re1, l.re2)
		if err != nil {
			return "", err
		}
		if ok {
			return l.String(), nil
		}
	}
	return "", nil
}

// sameAs reports whether (x ≡ re1 ∧ y ≡ re2) or (x ≡ re2 ∧ y ≡ re1) as
// regular languages.
func (r *run) sameAs(x, y, re1, re2 pathexpr.Expr) (bool, error) {
	r.stats.DirectChecks++
	eq := func(a, b pathexpr.Expr) (bool, error) {
		ok, err := r.p.dfas.Equivalent(a, b, r.alpha)
		if err != nil {
			return false, errBudget
		}
		return ok, nil
	}
	ok1, err := eq(x, re1)
	if err != nil {
		return false, err
	}
	if ok1 {
		ok2, err := eq(y, re2)
		if err != nil {
			return false, err
		}
		if ok2 {
			return true, nil
		}
	}
	ok1, err = eq(x, re2)
	if err != nil {
		return false, err
	}
	if ok1 {
		return eq(y, re1)
	}
	return false, nil
}

// coveredBy reports whether (x ⊆ re1 ∧ y ⊆ re2) or (x ⊆ re2 ∧ y ⊆ re1):
// disjointness facts are symmetric in their two sides.
func (r *run) coveredBy(x, y, re1, re2 pathexpr.Expr) (bool, error) {
	r.stats.DirectChecks++
	ok1, err := r.p.dfas.Includes(x, re1, r.alpha)
	if err != nil {
		return false, errBudget
	}
	if ok1 {
		ok2, err := r.p.dfas.Includes(y, re2, r.alpha)
		if err != nil {
			return false, errBudget
		}
		if ok2 {
			return true, nil
		}
	}
	ok1, err = r.p.dfas.Includes(x, re2, r.alpha)
	if err != nil {
		return false, errBudget
	}
	if ok1 {
		ok2, err := r.p.dfas.Includes(y, re1, r.alpha)
		if err != nil {
			return false, errBudget
		}
		if ok2 {
			return true, nil
		}
	}
	return false, nil
}

// splitSearch enumerates suffix splits (Sp, Sq) of the goal's paths at
// component boundaries, shortest suffixes first (the paper's
// "ever-increasing suffixes"), and applies the four cases of Figure 5:
//
//	A∧B:  suffixes provably disjoint from both same and distinct sources
//	C:    T1 and the prefixes provably denote the same vertex
//	D:    T2 and the prefixes provably denote disjoint vertex sets
func (r *run) splitSearch(g goal, lems []lemma, depth int) (bool, *Step, error) {
	n, m := len(g.x), len(g.y)
	total := n + m
	sizes := make([]int, 0, total)
	for s := 1; s <= total; s++ {
		sizes = append(sizes, s)
	}
	if r.p.opts.LongestSuffixFirst {
		for i, j := 0, len(sizes)-1; i < j; i, j = i+1, j-1 {
			sizes[i], sizes[j] = sizes[j], sizes[i]
		}
	}
	for _, s := range sizes {
		for i := 0; i <= n && i <= s; i++ {
			j := s - i
			if j > m {
				continue
			}
			sp, sq := g.x[n-i:], g.y[m-j:]
			pp, pq := g.x[:n-i], g.y[:m-j]

			t1, err := r.direct(SameSrc, sp, sq, lems, sliceSize(sp)+sliceSize(sq))
			if err != nil {
				return false, nil, err
			}
			t2, err := r.direct(DiffSrc, sp, sq, lems, sliceSize(sp)+sliceSize(sq))
			if err != nil {
				return false, nil, err
			}
			if t1 != "" && t2 != "" {
				r.p.m.suffixSplits.Add(1)
				if r.traceOn {
					r.event("prover.suffix_split", g, depth,
						telemetry.String("case", "A∧B"),
						telemetry.Int("i", i), telemetry.Int("j", j),
						telemetry.String("t1", t1), telemetry.String("t2", t2))
				}
				st := step(g, RuleSuffixAB)
				st.SuffixI, st.SuffixJ = i, j
				st.ByT1, st.ByT2 = t1, t2
				return true, st, nil
			}
			// Case C is sound only for same-anchored goals: equal prefix
			// paths from the SAME handle denote one vertex; from distinct
			// handles h <> k they denote distinct vertices.
			if t1 != "" && g.form == SameSrc {
				eq, err := r.prefixesEqual(pp, pq)
				if err != nil {
					return false, nil, err
				}
				if eq {
					r.p.m.suffixSplits.Add(1)
					if r.traceOn {
						r.event("prover.suffix_split", g, depth,
							telemetry.String("case", "C"),
							telemetry.Int("i", i), telemetry.Int("j", j),
							telemetry.String("t1", t1))
					}
					st := step(g, RuleCaseC)
					st.SuffixI, st.SuffixJ = i, j
					st.ByT1 = t1
					return true, st, nil
				}
			}
			if t2 != "" {
				// Case D recurses with the goal's own quantifier form: for a
				// DiffSrc goal the prefixes hang off distinct anchors.
				if g.form == SameSrc && len(pp) == 0 && len(pq) == 0 {
					continue // prefixes denote the same vertex: case D impossible
				}
				sub := newGoal(g.form, pp, pq)
				proved, st, err := r.prove(sub, lems, depth+1)
				if err != nil {
					return false, nil, err
				}
				if proved {
					r.p.m.suffixSplits.Add(1)
					if r.traceOn {
						r.event("prover.suffix_split", g, depth,
							telemetry.String("case", "D"),
							telemetry.Int("i", i), telemetry.Int("j", j),
							telemetry.String("t2", t2))
					}
					node := step(g, RuleCaseD)
					node.SuffixI, node.SuffixJ = i, j
					node.ByT2 = t2
					node.Children = []*Step{st}
					return true, node, nil
				}
			}
		}
	}
	return false, nil, nil
}

func sliceSize(comps []pathexpr.Expr) int {
	n := 0
	for _, c := range comps {
		n += c.Size()
	}
	return n
}

func exprOrEps(comps []pathexpr.Expr) string {
	if len(comps) == 0 {
		return "ε"
	}
	return expr(comps).String()
}

// prefixesEqual reports whether the two prefixes provably denote the same
// single vertex: both reduce to single words (syntactically or as singleton
// languages) that are congruent under the word-equality axioms.
func (r *run) prefixesEqual(pp, pq []pathexpr.Expr) (bool, error) {
	w1, ok, err := r.asWord(pp)
	if err != nil || !ok {
		return false, err
	}
	w2, ok, err := r.asWord(pq)
	if err != nil || !ok {
		return false, err
	}
	return r.p.wordsCongruent(w1, w2), nil
}

func (r *run) asWord(comps []pathexpr.Expr) ([]string, bool, error) {
	e := expr(comps)
	if w, ok := pathexpr.Word(e); ok {
		return w, true, nil
	}
	d, err := r.p.dfas.DFA(e, r.alpha)
	if err != nil {
		return nil, false, errBudget
	}
	card, w := d.Cardinality()
	if card == automata.CardOne {
		return w, true, nil
	}
	return nil, false, nil
}

// starUnfold handles a trailing Kleene-star component by splitting it into
// its ε and one-or-more cases: L(U·a*) = L(U) ∪ L(U·a⁺).  Both resulting
// goals must be proved.  Combined with plusInduction this realizes the
// paper's 3-case (single star) and 7-case (double star) schemata.
func (r *run) starUnfold(g goal, lems []lemma, depth int) (bool, *Step, error) {
	unfold := func(side []pathexpr.Expr) ([]pathexpr.Expr, []pathexpr.Expr, bool) {
		if len(side) == 0 {
			return nil, nil, false
		}
		st, ok := side[len(side)-1].(pathexpr.Star)
		if !ok {
			return nil, nil, false
		}
		u := side[:len(side)-1]
		withEps := append([]pathexpr.Expr{}, u...)
		withPlus := append(append([]pathexpr.Expr{}, u...), pathexpr.Rep1(st.Inner))
		return withEps, withPlus, true
	}
	if eps, plus, ok := unfold(g.x); ok {
		if r.traceOn {
			r.event("prover.star_unfold", g, depth, telemetry.String("side", "left"))
		}
		g1 := newGoal(g.form, eps, g.y)
		g2 := newGoal(g.form, plus, g.y)
		p1, s1, err := r.prove(g1, lems, depth+1)
		if err != nil || !p1 {
			return false, nil, err
		}
		p2, s2, err := r.prove(g2, lems, depth+1)
		if err != nil || !p2 {
			return false, nil, err
		}
		r.p.m.starUnfolds.Add(1)
		st := step(g, RuleStarUnfold)
		st.StarOnLeft = true
		st.Children = []*Step{s1, s2}
		return true, st, nil
	}
	if eps, plus, ok := unfold(g.y); ok {
		if r.traceOn {
			r.event("prover.star_unfold", g, depth, telemetry.String("side", "right"))
		}
		g1 := newGoal(g.form, g.x, eps)
		g2 := newGoal(g.form, g.x, plus)
		p1, s1, err := r.prove(g1, lems, depth+1)
		if err != nil || !p1 {
			return false, nil, err
		}
		p2, s2, err := r.prove(g2, lems, depth+1)
		if err != nil || !p2 {
			return false, nil, err
		}
		r.p.m.starUnfolds.Add(1)
		st := step(g, RuleStarUnfold)
		st.Children = []*Step{s1, s2}
		return true, st, nil
	}
	return false, nil, nil
}

// plusInduction applies the paper's Kleene induction (§4.1, step E).  For a
// single trailing plus (X = U·a⁺) the cases are the base (U·a) and the
// inductive step: assume the claim for U·a⁺ and prove it for U·a⁺·a, with
// the hypothesis admitted only on strictly smaller goals.  For two trailing
// pluses the paper's four sub-cases 4.1–4.4 apply.
func (r *run) plusInduction(g goal, lems []lemma, depth int) (bool, *Step, error) {
	xp, xok := trailingPlus(g.x)
	yp, yok := trailingPlus(g.y)
	switch {
	case xok && yok:
		r.stats.Inductions++
		if r.traceOn {
			r.event("prover.plus_induction", g, depth, telemetry.String("schema", "double"))
		}
		u, a := g.x[:len(g.x)-1], xp.Inner
		v, b := g.y[:len(g.y)-1], yp.Inner
		cases := []goal{
			newGoal(g.form, appendComp(u, a), appendComp(v, b)),                // 4.1 (a, b)
			newGoal(g.form, appendComp(u, pathexpr.Rep1(a)), appendComp(v, b)), // 4.2 (a⁺, b)
			newGoal(g.form, appendComp(u, a), appendComp(v, pathexpr.Rep1(b))), // 4.3 (a, b⁺)
		}
		var kids []*Step
		for _, c := range cases {
			ok, st, err := r.prove(c, lems, depth+1)
			if err != nil || !ok {
				return false, nil, err
			}
			kids = append(kids, st)
		}
		// 4.4: assume (a⁺, b⁺), prove (a⁺a, b⁺b).
		stepX := appendComp(g.x, a)
		stepY := appendComp(g.y, b)
		ih := lemma{form: g.form, re1: expr(g.x), re2: expr(g.y), maxSize: sliceSize(stepX) + sliceSize(stepY)}
		ok, st, err := r.prove(newGoal(g.form, stepX, stepY), append(append([]lemma{}, lems...), ih), depth+1)
		if err != nil || !ok {
			return false, nil, err
		}
		kids = append(kids, st)
		node := step(g, RulePlusInduction)
		node.Children = kids
		return true, node, nil

	case xok:
		r.stats.Inductions++
		if r.traceOn {
			r.event("prover.plus_induction", g, depth, telemetry.String("schema", "left"))
		}
		u, a := g.x[:len(g.x)-1], xp.Inner
		base := newGoal(g.form, appendComp(u, a), g.y)
		ok, s1, err := r.prove(base, lems, depth+1)
		if err != nil || !ok {
			return false, nil, err
		}
		stepX := appendComp(g.x, a)
		ih := lemma{form: g.form, re1: expr(g.x), re2: expr(g.y), maxSize: sliceSize(stepX) + sliceSize(g.y)}
		ok, s2, err := r.prove(newGoal(g.form, stepX, g.y), append(append([]lemma{}, lems...), ih), depth+1)
		if err != nil || !ok {
			return false, nil, err
		}
		node := step(g, RulePlusInduction)
		node.StarOnLeft = true
		node.Children = []*Step{s1, s2}
		return true, node, nil

	case yok:
		r.stats.Inductions++
		if r.traceOn {
			r.event("prover.plus_induction", g, depth, telemetry.String("schema", "right"))
		}
		v, b := g.y[:len(g.y)-1], yp.Inner
		base := newGoal(g.form, g.x, appendComp(v, b))
		ok, s1, err := r.prove(base, lems, depth+1)
		if err != nil || !ok {
			return false, nil, err
		}
		stepY := appendComp(g.y, b)
		ih := lemma{form: g.form, re1: expr(g.x), re2: expr(g.y), maxSize: sliceSize(g.x) + sliceSize(stepY)}
		ok, s2, err := r.prove(newGoal(g.form, g.x, stepY), append(append([]lemma{}, lems...), ih), depth+1)
		if err != nil || !ok {
			return false, nil, err
		}
		node := step(g, RulePlusInduction)
		node.Children = []*Step{s1, s2}
		return true, node, nil
	}
	return false, nil, nil
}

func trailingPlus(side []pathexpr.Expr) (pathexpr.Plus, bool) {
	if len(side) == 0 {
		return pathexpr.Plus{}, false
	}
	p, ok := side[len(side)-1].(pathexpr.Plus)
	return p, ok
}

func appendComp(side []pathexpr.Expr, c pathexpr.Expr) []pathexpr.Expr {
	out := make([]pathexpr.Expr, 0, len(side)+1)
	out = append(out, side...)
	out = append(out, c)
	return out
}

// altSplit handles a top-level alternative component: the goal splits into
// one goal per alternative, and all must be proved (paper: "both
// alternatives must result in a successful proof").  The rightmost
// alternative component is split first, mirroring suffix-directed search.
func (r *run) altSplit(g goal, lems []lemma, depth int) (bool, *Step, error) {
	trySide := func(side []pathexpr.Expr, isX bool) (bool, *Step, error) {
		for i := len(side) - 1; i >= 0; i-- {
			alt, ok := side[i].(pathexpr.Alt)
			if !ok {
				continue
			}
			var kids []*Step
			for _, choice := range alt.Alts {
				repl := make([]pathexpr.Expr, len(side))
				copy(repl, side)
				repl[i] = choice
				var sub goal
				if isX {
					sub = newGoal(g.form, repl, g.y)
				} else {
					sub = newGoal(g.form, g.x, repl)
				}
				proved, st, err := r.prove(sub, lems, depth+1)
				if err != nil || !proved {
					return false, nil, err
				}
				kids = append(kids, st)
			}
			r.p.m.altSplits.Add(1)
			if r.traceOn {
				r.event("prover.alt_split", g, depth,
					telemetry.Bool("left", isX), telemetry.Int("alts", len(alt.Alts)))
			}
			node := step(g, RuleAltSplit)
			node.AltOnLeft = isX
			node.AltIndex = i
			node.Children = kids
			return true, node, nil
		}
		return false, nil, nil
	}
	if ok, st, err := trySide(g.x, true); err != nil || ok {
		return ok, st, err
	}
	return trySide(g.y, false)
}

// wordsCongruent reports whether two words are equal modulo the word-level
// equality axioms (∀p, p.w1 = p.w2 with both sides single words).  It
// performs bounded BFS over rewrites applied at any position, in either
// direction.
func (p *Prover) wordsCongruent(w1, w2 []string) bool {
	if wordsEqual(w1, w2) {
		return true
	}
	if len(p.eqWordRewrites) == 0 {
		return false
	}
	maxRewrite := 0
	for _, rw := range p.eqWordRewrites {
		if len(rw[0]) > maxRewrite {
			maxRewrite = len(rw[0])
		}
		if len(rw[1]) > maxRewrite {
			maxRewrite = len(rw[1])
		}
	}
	lenCap := len(w1) + len(w2) + maxRewrite
	const nodeCap = 1024

	start := wordKey(w1)
	target := wordKey(w2)
	seen := map[string]bool{start: true}
	frontier := [][]string{w1}
	for len(frontier) > 0 && len(seen) < nodeCap {
		var next [][]string
		for _, w := range frontier {
			for _, rw := range p.eqWordRewrites {
				for _, dir := range [][2][]string{{rw[0], rw[1]}, {rw[1], rw[0]}} {
					from, to := dir[0], dir[1]
					for pos := 0; pos+len(from) <= len(w); pos++ {
						if !wordsEqual(w[pos:pos+len(from)], from) {
							continue
						}
						out := make([]string, 0, len(w)-len(from)+len(to))
						out = append(out, w[:pos]...)
						out = append(out, to...)
						out = append(out, w[pos+len(from):]...)
						if len(out) > lenCap {
							continue
						}
						k := wordKey(out)
						if seen[k] {
							continue
						}
						if k == target {
							return true
						}
						seen[k] = true
						next = append(next, out)
					}
				}
			}
		}
		frontier = next
	}
	return false
}

func wordsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func wordKey(w []string) string {
	out := ""
	for _, s := range w {
		out += s + "\x00"
	}
	return out
}
