// Package ptdp implements a dependence test for the *other* pointer problem
// of the paper's §2.1: the pointer target dependence problem, where pointers
// refer to named memory locations (Figure 1's left fragment — there is an
// output dependence from S: *p = 10 to T: i = 20 iff p points to i at S).
//
// The paper deliberately does not solve PTDP — existing store-based alias
// analyses already do — but the repository implements the textbook solution
// so that both halves of Figure 1 run: a flow-sensitive, intraprocedural
// points-to analysis over named variables, with a set-intersection
// dependence test.  It is exactly the scheme §2.3 describes ("the program
// is analyzed ... and at each program point the set of aliased variables is
// computed; dependence testing is then performed by simply intersecting the
// appropriate sets") — and exactly the scheme that breaks down on unnamed
// heap locations, which is where APT (package core) takes over.
package ptdp

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/lang"
)

// Targets is a points-to set over named variables.  The nil map means "no
// information yet"; Unknown (a set containing Top) means the pointer may
// target anything.
type Targets map[string]bool

// Top is the distinguished member meaning "any named location".
const Top = "⊤"

// Unknown returns the ⊤ set.
func Unknown() Targets { return Targets{Top: true} }

func (t Targets) clone() Targets {
	out := make(Targets, len(t))
	for k := range t {
		out[k] = true
	}
	return out
}

// Has reports whether the set may include the named location.
func (t Targets) Has(name string) bool { return t[name] || t[Top] }

// IsSingleton reports whether the set is exactly one concrete location.
func (t Targets) IsSingleton() (string, bool) {
	if len(t) != 1 || t[Top] {
		return "", false
	}
	for k := range t {
		return k, true
	}
	return "", false
}

func (t Targets) String() string {
	keys := make([]string, 0, len(t))
	for k := range t {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return "{" + strings.Join(keys, ", ") + "}"
}

// Access is one memory reference to named locations: the set of locations
// possibly read or written by a labeled statement.
type Access struct {
	Label   string
	IsWrite bool
	// Locs is the set of named locations possibly touched.
	Locs Targets
	// Must reports that the access touches exactly one known location (a
	// must-alias, enabling a definite Yes).
	Must bool
}

// Result carries the analysis outcome for one function.
type Result struct {
	Fn       *lang.FuncDecl
	Accesses []Access
	// PointsTo holds the points-to environment captured just before each
	// labeled statement.
	PointsTo map[string]map[string]Targets
}

// Analyze runs the points-to analysis on function fnName of prog.
func Analyze(prog *lang.Program, fnName string) (*Result, error) {
	fn := prog.Func(fnName)
	if fn == nil {
		return nil, fmt.Errorf("ptdp: function %q not found", fnName)
	}
	a := &analyzer{
		res: &Result{Fn: fn, PointsTo: make(map[string]map[string]Targets)},
	}
	env := make(map[string]Targets)
	for _, p := range fn.Params {
		if p.Type.Ptr > 0 && !p.Type.IsStruct {
			env[p.Name] = Unknown() // a pointer parameter may target anything
		}
	}
	a.block(env, fn.Body)
	return a.res, nil
}

type analyzer struct {
	res *Result
}

func cloneEnv(env map[string]Targets) map[string]Targets {
	out := make(map[string]Targets, len(env))
	for k, v := range env {
		out[k] = v.clone()
	}
	return out
}

func joinEnv(a, b map[string]Targets) map[string]Targets {
	out := make(map[string]Targets)
	for k, v := range a {
		out[k] = v.clone()
	}
	for k, v := range b {
		if cur, ok := out[k]; ok {
			for loc := range v {
				cur[loc] = true
			}
		} else {
			out[k] = v.clone()
		}
	}
	return out
}

func sameEnv(a, b map[string]Targets) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		w, ok := b[k]
		if !ok || len(v) != len(w) {
			return false
		}
		for loc := range v {
			if !w[loc] {
				return false
			}
		}
	}
	return true
}

func (a *analyzer) block(env map[string]Targets, b *lang.Block) map[string]Targets {
	for _, s := range b.Stmts {
		env = a.stmt(env, s)
	}
	return env
}

func (a *analyzer) stmt(env map[string]Targets, s lang.Stmt) map[string]Targets {
	if lbl := s.Label(); lbl != "" {
		a.res.PointsTo[lbl] = cloneEnv(env)
	}
	switch v := s.(type) {
	case *lang.DeclStmt:
		return env

	case *lang.AssignStmt:
		a.recordAccesses(env, v)
		switch lhs := v.LHS.(type) {
		case *lang.Ident:
			switch rhs := v.RHS.(type) {
			case *lang.AddrExpr:
				env[lhs.Name] = Targets{rhs.Name: true}
			case *lang.Ident:
				if pts, ok := env[rhs.Name]; ok {
					env[lhs.Name] = pts.clone()
				} else {
					delete(env, lhs.Name)
				}
			case *lang.NullLit:
				env[lhs.Name] = Targets{}
			default:
				if _, tracked := env[lhs.Name]; tracked {
					env[lhs.Name] = Unknown()
				}
			}
		case *lang.DerefExpr:
			// A strong update of *p would require a must-alias; the store
			// itself does not change any points-to set here.
		}
		return env

	case *lang.ExprStmt:
		return env

	case *lang.ReturnStmt:
		if v.Value != nil {
			a.readsOf(env, v.Value, v.Label())
		}
		return env

	case *lang.BlockStmt:
		return a.block(env, v.Body)

	case *lang.IfStmt:
		a.readsOf(env, v.Cond, v.Label())
		thenEnv := a.block(cloneEnv(env), v.Then)
		if v.Else != nil {
			elseEnv := a.block(cloneEnv(env), v.Else)
			return joinEnv(thenEnv, elseEnv)
		}
		return joinEnv(thenEnv, env)

	case *lang.WhileStmt:
		a.readsOf(env, v.Cond, v.Label())
		// Iterate to a fixpoint; points-to sets only grow, and the lattice
		// of named locations is finite, so this terminates.
		cur := cloneEnv(env)
		for i := 0; i < 1000; i++ {
			next := joinEnv(cur, a.block(cloneEnv(cur), v.Body))
			if sameEnv(cur, next) {
				break
			}
			cur = next
		}
		return cur
	}
	return env
}

// recordAccesses records the named-location effects of an assignment.
func (a *analyzer) recordAccesses(env map[string]Targets, s *lang.AssignStmt) {
	a.readsOf(env, s.RHS, s.Label())
	switch lhs := s.LHS.(type) {
	case *lang.Ident:
		// Writing a scalar variable i touches the named location i —
		// unless i is a tracked pointer, in which case the write retargets
		// the pointer rather than storing to a pointee.
		if _, isPtr := env[lhs.Name]; !isPtr {
			a.add(s.Label(), true, Targets{lhs.Name: true}, true)
		}
	case *lang.DerefExpr:
		pts, ok := env[lhs.Name]
		if !ok {
			pts = Unknown()
		}
		_, must := pts.IsSingleton()
		a.add(s.Label(), true, pts.clone(), must)
	}
}

// readsOf records read accesses of named locations in e.
func (a *analyzer) readsOf(env map[string]Targets, e lang.Expr, label string) {
	lang.WalkExprs(e, func(x lang.Expr) {
		switch v := x.(type) {
		case *lang.Ident:
			if _, isPtr := env[v.Name]; !isPtr {
				a.add(label, false, Targets{v.Name: true}, true)
			}
		case *lang.DerefExpr:
			pts, ok := env[v.Name]
			if !ok {
				pts = Unknown()
			}
			_, must := pts.IsSingleton()
			a.add(label, false, pts.clone(), must)
		}
	})
}

func (a *analyzer) add(label string, write bool, locs Targets, must bool) {
	if label == "" {
		return
	}
	a.res.Accesses = append(a.res.Accesses, Access{
		Label: label, IsWrite: write, Locs: locs, Must: must,
	})
}

// AccessesAt returns the accesses recorded at the label.
func (r *Result) AccessesAt(label string) []Access {
	var out []Access
	for _, a := range r.Accesses {
		if a.Label == label {
			out = append(out, a)
		}
	}
	return out
}

// DepTest answers whether statement T may depend on statement S by
// intersecting their named-location sets — the §2.3 store-based scheme.
func (r *Result) DepTest(labelS, labelT string) (core.Result, error) {
	sAccs := r.AccessesAt(labelS)
	tAccs := r.AccessesAt(labelT)
	if len(sAccs) == 0 || len(tAccs) == 0 {
		return core.Maybe, fmt.Errorf("ptdp: missing accesses at %q or %q", labelS, labelT)
	}
	result := core.No
	for _, s := range sAccs {
		for _, t := range tAccs {
			if !s.IsWrite && !t.IsWrite {
				continue
			}
			if !intersects(s.Locs, t.Locs) {
				continue
			}
			// A definite dependence needs must-aliases on both sides.
			if s.Must && t.Must {
				return core.Yes, nil
			}
			result = core.Maybe
		}
	}
	return result, nil
}

func intersects(a, b Targets) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	if a[Top] || b[Top] {
		return true
	}
	for k := range a {
		if b[k] {
			return true
		}
	}
	return false
}
