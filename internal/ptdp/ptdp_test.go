package ptdp

import (
	"testing"

	"repro/internal/core"
	"repro/internal/lang"
)

func analyze(t *testing.T, src, fn string) *Result {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Analyze(prog, fn)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestFigure1Left is the paper's left fragment: there is an output
// dependence from S: *p = 10 to T: i = 20 iff p points to i at S.
func TestFigure1Left(t *testing.T) {
	// Case 1: p definitely points to i — definite dependence.
	definite := analyze(t, `
void f() {
	int i;
	int j;
	int *p;
	p = &i;
S:	*p = 10;
T:	i = 20;
}`, "f")
	if got, err := definite.DepTest("S", "T"); err != nil || got != core.Yes {
		t.Fatalf("p = &i: DepTest = %v, %v; want Yes", got, err)
	}

	// Case 2: p definitely points elsewhere — no dependence.
	none := analyze(t, `
void f() {
	int i;
	int j;
	int *p;
	p = &j;
S:	*p = 10;
T:	i = 20;
}`, "f")
	if got, err := none.DepTest("S", "T"); err != nil || got != core.No {
		t.Fatalf("p = &j: DepTest = %v, %v; want No", got, err)
	}

	// Case 3: p may point to either — Maybe.
	maybe := analyze(t, `
void f(int c) {
	int i;
	int j;
	int *p;
	if (c > 0) {
		p = &i;
	} else {
		p = &j;
	}
S:	*p = 10;
T:	i = 20;
}`, "f")
	if got, err := maybe.DepTest("S", "T"); err != nil || got != core.Maybe {
		t.Fatalf("branchy p: DepTest = %v, %v; want Maybe", got, err)
	}
}

func TestPointsToEnvironmentAtLabels(t *testing.T) {
	r := analyze(t, `
void f() {
	int i;
	int *p;
	int *q;
	p = &i;
	q = p;
S:	*q = 1;
}`, "f")
	env := r.PointsTo["S"]
	if env == nil {
		t.Fatal("no environment at S")
	}
	if !env["q"].Has("i") {
		t.Errorf("q should point to i: %v", env["q"])
	}
	if loc, ok := env["q"].IsSingleton(); !ok || loc != "i" {
		t.Errorf("q should be a must-alias of i: %v", env["q"])
	}
	accs := r.AccessesAt("S")
	if len(accs) != 1 || !accs[0].IsWrite || !accs[0].Must {
		t.Fatalf("accesses at S: %+v", accs)
	}
}

func TestCopyAndNullAndReassign(t *testing.T) {
	r := analyze(t, `
void f() {
	int i;
	int j;
	int *p;
	p = &i;
	p = &j;
S:	*p = 1;
T:	i = 2;
}`, "f")
	// Strong update: the second assignment replaces the first target.
	if got, _ := r.DepTest("S", "T"); got != core.No {
		t.Fatalf("reassigned p: DepTest = %v, want No", got)
	}

	nullp := analyze(t, `
void f() {
	int i;
	int *p;
	p = NULL;
S:	*p = 1;
T:	i = 2;
}`, "f")
	// A null pointer touches nothing the analysis can name.
	if got, _ := nullp.DepTest("S", "T"); got != core.No {
		t.Fatalf("null p: DepTest = %v, want No", got)
	}
}

func TestUnknownPointerIsTop(t *testing.T) {
	r := analyze(t, `
void f(int *p) {
	int i;
S:	*p = 1;
T:	i = 2;
}`, "f")
	// A pointer parameter may target anything, including i.
	if got, _ := r.DepTest("S", "T"); got != core.Maybe {
		t.Fatalf("parameter p: DepTest = %v, want Maybe", got)
	}
	env := r.PointsTo["S"]
	if !env["p"].Has("i") || !env["p"].Has(Top) {
		t.Errorf("parameter should be ⊤: %v", env["p"])
	}
}

func TestLoopFixpoint(t *testing.T) {
	r := analyze(t, `
void f(int c) {
	int i;
	int j;
	int *p;
	int *q;
	p = &i;
	q = &j;
	while (c > 0) {
		p = q;
		q = &i;
		c = c - 1;
	}
S:	*p = 1;
T:	j = 2;
}`, "f")
	// After any number of iterations p may point to i or j.
	env := r.PointsTo["S"]
	if !env["p"].Has("i") || !env["p"].Has("j") {
		t.Fatalf("loop fixpoint lost a target: p -> %v", env["p"])
	}
	if got, _ := r.DepTest("S", "T"); got != core.Maybe {
		t.Fatalf("DepTest = %v, want Maybe", got)
	}
}

func TestReadWriteKinds(t *testing.T) {
	r := analyze(t, `
void f() {
	int i;
	int v;
	int *p;
	p = &i;
S:	v = *p;
T:	i = 2;
}`, "f")
	// S reads *p (= i), T writes i: anti dependence, and a definite one.
	if got, _ := r.DepTest("S", "T"); got != core.Yes {
		t.Fatalf("read *p then write i: %v, want Yes", got)
	}
	// Read-read never conflicts.
	rr := analyze(t, `
void f() {
	int i;
	int a;
	int b;
S:	a = i;
T:	b = i;
}`, "f")
	if got, _ := rr.DepTest("S", "T"); got != core.No {
		t.Fatalf("read-read: %v, want No", got)
	}
}

func TestErrors(t *testing.T) {
	prog := lang.MustParse(`void f() { int i; S: i = 1; }`)
	if _, err := Analyze(prog, "missing"); err == nil {
		t.Error("expected error for missing function")
	}
	r, err := Analyze(prog, "f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.DepTest("S", "nope"); err == nil {
		t.Error("expected error for unknown label")
	}
}

func TestTargetsString(t *testing.T) {
	ts := Targets{"b": true, "a": true}
	if got := ts.String(); got != "{a, b}" {
		t.Errorf("String = %q", got)
	}
}
