package automata

import (
	"errors"
	"testing"

	"repro/internal/pathexpr"
)

// modExpr returns (a.a...a)* with n repetitions: its minimal DFA is a
// counter with n states, so the product of modExpr(p) and modExpr(q) for
// coprime p, q needs p*q states — a controllable blowup that individual
// compilations never see.
func modExpr(t *testing.T, n int) pathexpr.Expr {
	t.Helper()
	src := "("
	for i := 0; i < n; i++ {
		if i > 0 {
			src += "."
		}
		src += "a"
	}
	src += ")*"
	return pathexpr.MustParse(src)
}

// TestCompileLimitAdversarial: the classic subset-construction blowup
// (a|b)*.a.(a|b)^k needs 2^(k+1) DFA states; a tight limit must surface
// ErrStateLimit, and the default limit must absorb it.
func TestCompileLimitAdversarial(t *testing.T) {
	a := NewAlphabet("a", "b")
	e := pathexpr.MustParse("(a|b)*.a.(a|b).(a|b).(a|b)")
	if _, err := CompileLimit(e, a, 8); err == nil {
		t.Fatal("CompileLimit(blowup, 8) succeeded; want ErrStateLimit")
	} else {
		var lim ErrStateLimit
		if !errors.As(err, &lim) {
			t.Fatalf("CompileLimit error %v is not an ErrStateLimit", err)
		}
		if lim.Limit != 8 {
			t.Errorf("ErrStateLimit.Limit = %d, want 8", lim.Limit)
		}
	}
	d, err := Compile(e, a)
	if err != nil {
		t.Fatalf("Compile at the default limit: %v", err)
	}
	if d.NumStates() < 16 {
		t.Errorf("blowup expression minimized to %d states, want ≥ 16", d.NumStates())
	}
}

// TestIntersectStateBudget is the regression test for the unbounded product
// construction: two automata that are individually tiny but whose product
// exceeds the budget must return ErrStateLimit — and a retry under a larger
// budget must succeed with the true language.
func TestIntersectStateBudget(t *testing.T) {
	a := NewAlphabet("a")
	d5 := MustCompile(modExpr(t, 5), a)
	d7 := MustCompile(modExpr(t, 7), a)
	if n := d5.NumStates(); n > 6 {
		t.Fatalf("(a^5)* compiled to %d states; the test wants tiny operands", n)
	}

	if _, err := d5.IntersectLimit(d7, 16); err == nil {
		t.Fatal("IntersectLimit(16) succeeded on a 35-state product; want ErrStateLimit")
	} else {
		var lim ErrStateLimit
		if !errors.As(err, &lim) {
			t.Fatalf("IntersectLimit error %v is not an ErrStateLimit", err)
		}
	}

	// The same product under an adequate budget: L((a^5)*) ∩ L((a^7)*) =
	// L((a^35)*).
	prod, err := d5.IntersectLimit(d7, 64)
	if err != nil {
		t.Fatalf("IntersectLimit(64): %v", err)
	}
	want := MustCompile(modExpr(t, 35), a)
	if ok, err := prod.EquivalentLimit(want, 0); err != nil || !ok {
		t.Errorf("product language != (a^35)*: %v, %v", ok, err)
	}

	// IncludesLimit and EquivalentLimit ride the same product and must obey
	// the same budget.
	if _, err := d5.IncludesLimit(d7, 16); err == nil {
		t.Error("IncludesLimit(16) ignored the state budget")
	}
	if _, err := d5.EquivalentLimit(d7, 16); err == nil {
		t.Error("EquivalentLimit(16) ignored the state budget")
	}
}

// TestStateBudgetDegradesThroughCaches: when the shared cache's budget is
// blown mid-decision the caller gets an error (which the prover maps to
// Maybe) — never a fabricated boolean that could become an unsound No —
// the failure is counted, and it is NOT memoized, so the same decision
// under a roomier cache succeeds.
func TestStateBudgetDegradesThroughCaches(t *testing.T) {
	alpha := NewAlphabet("a")
	x, y := modExpr(t, 5), modExpr(t, 7)

	tight := NewSharedCache(16, 0, 0)
	if v, err := tight.Disjoint(x, y, alpha); err == nil {
		t.Fatalf("tight-budget Disjoint returned (%v, nil); want an error, anything else risks an unsound No", v)
	}
	if st := tight.Stats(); st.LimitFailures == 0 {
		t.Errorf("limit failure not counted: %+v", st)
	}
	if n := tight.OpsLen(); n != 0 {
		t.Errorf("failed decision was memoized: OpsLen() = %d", n)
	}

	roomy := NewSharedCache(0, 0, 0)
	got, err := roomy.Disjoint(x, y, alpha)
	if err != nil {
		t.Fatalf("default-budget Disjoint: %v", err)
	}
	// Both languages contain ε (and a^35), so they are not disjoint.
	if got {
		t.Error("Disjoint((a^5)*, (a^7)*) = true; both accept ε")
	}

	// The private per-prover cache wraps the same budgeted product.
	priv := NewCache(16)
	if v, err := priv.Disjoint(x, y, alpha); err == nil {
		t.Fatalf("tight-budget private-cache Disjoint returned (%v, nil); want an error", v)
	}
	if st := priv.Stats(); st.LimitFailures == 0 {
		t.Errorf("private cache did not count the limit failure: %+v", st)
	}
}

// TestComplementDoesNotAliasTables is the regression test for the
// trans-slice aliasing bug: Complement must deep-copy the transition table,
// because the receiver's table may alias a read-only mmap (a preloaded
// artifact) and must stay frozen either way.
func TestComplementDoesNotAliasTables(t *testing.T) {
	d := compile(t, "a.b*")
	c := d.Complement()
	if len(c.trans) != len(d.trans) {
		t.Fatalf("complement has %d transitions, original %d", len(c.trans), len(d.trans))
	}
	if len(d.trans) > 0 && &c.trans[0] == &d.trans[0] {
		t.Fatal("Complement aliases the receiver's transition table")
	}
	// Behavioral check: double complement restores the language, and the
	// original is untouched by the round trip.
	cc := c.Complement()
	for _, word := range [][]string{nil, {"a"}, {"a", "b"}, {"b"}, {"a", "b", "b"}} {
		if got, want := cc.Accepts(word), d.Accepts(word); got != want {
			t.Errorf("double complement Accepts(%v) = %v, original says %v", word, got, want)
		}
	}
	if !d.Accepts([]string{"a", "b"}) || d.Accepts([]string{"b"}) {
		t.Error("original DFA changed after Complement")
	}
}
