package automata

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/pathexpr"
)

// DFA is a deterministic finite automaton over an Alphabet.  DFAs produced
// by this package are always total: every state has a transition on every
// symbol (a dead state absorbs failures).  State 0 is the start state.
type DFA struct {
	alphabet *Alphabet
	// trans[s*k+c] is the successor of state s on symbol c, where
	// k = alphabet.Size().
	trans  []int
	accept []bool
}

// ErrStateLimit is returned by Compile when subset construction exceeds the
// configured state budget.  The prover treats it as "unable to decide",
// which degrades an answer towards Maybe — never towards an unsound No.
type ErrStateLimit struct {
	Limit int
}

func (e ErrStateLimit) Error() string {
	return fmt.Sprintf("automata: DFA exceeds state limit %d", e.Limit)
}

// DefaultStateLimit bounds subset construction.  Path expressions in
// practice are tiny (the paper: n on the order of ten), so this is far above
// anything a realistic proof needs.
const DefaultStateLimit = 1 << 14

// Compile builds a total DFA recognizing e over the given alphabet, via
// Thompson construction and subset construction.  Fields of e not in the
// alphabet yield the empty language contribution (see buildNFA).
func Compile(e pathexpr.Expr, a *Alphabet) (*DFA, error) {
	return CompileLimit(e, a, DefaultStateLimit)
}

// CompileLimit is Compile with an explicit subset-construction state budget.
func CompileLimit(e pathexpr.Expr, a *Alphabet, limit int) (*DFA, error) {
	n := newNFA(a)
	start, accept := n.build(e)
	n.start, n.accept = start, accept

	k := a.Size()
	d := &DFA{alphabet: a}
	// Subset construction.  States are identified by the canonical string of
	// their sorted NFA state set.
	type pending struct {
		id  int
		set []int
	}
	stateID := make(map[string]int)
	var work []pending

	intern := func(set []int) int {
		key := intsKey(set)
		if id, ok := stateID[key]; ok {
			return id
		}
		id := len(d.accept)
		if id >= limit {
			panic(ErrStateLimit{Limit: limit})
		}
		stateID[key] = id
		d.accept = append(d.accept, containsInt(set, n.accept))
		d.trans = append(d.trans, make([]int, k)...)
		work = append(work, pending{id: id, set: set})
		return id
	}

	var err error
	func() {
		defer func() {
			if r := recover(); r != nil {
				if e, ok := r.(ErrStateLimit); ok {
					err = e
					return
				}
				panic(r)
			}
		}()
		intern(n.epsClosure([]int{n.start}))
		for len(work) > 0 {
			cur := work[len(work)-1]
			work = work[:len(work)-1]
			for c := 0; c < k; c++ {
				var next []int
				for _, s := range cur.set {
					next = append(next, n.trans[s][c]...)
				}
				var id int
				if len(next) == 0 {
					id = intern(nil) // dead state: empty subset
				} else {
					id = intern(n.epsClosure(dedupInts(next)))
				}
				d.trans[cur.id*k+c] = id
			}
		}
	}()
	if err != nil {
		return nil, err
	}
	return d, nil
}

// MustCompile is Compile, panicking on error.
func MustCompile(e pathexpr.Expr, a *Alphabet) *DFA {
	d, err := Compile(e, a)
	if err != nil {
		panic(err)
	}
	return d
}

func intsKey(set []int) string {
	var b strings.Builder
	for i, s := range set {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(s))
	}
	return b.String()
}

func containsInt(set []int, x int) bool {
	for _, s := range set {
		if s == x {
			return true
		}
	}
	return false
}

func dedupInts(xs []int) []int {
	seen := make(map[int]bool, len(xs))
	out := xs[:0]
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// Alphabet returns the DFA's alphabet.
func (d *DFA) Alphabet() *Alphabet { return d.alphabet }

// NumStates returns the number of DFA states.
func (d *DFA) NumStates() int { return len(d.accept) }

// Step returns the successor of state s on symbol name, or -1 if the symbol
// is not in the alphabet.
func (d *DFA) Step(s int, name string) int {
	c := d.alphabet.Index(name)
	if c < 0 {
		return -1
	}
	return d.trans[s*d.alphabet.Size()+c]
}

// Accepting reports whether state s accepts.
func (d *DFA) Accepting(s int) bool { return d.accept[s] }

// Accepts reports whether the DFA accepts the word (a sequence of field
// names).  Words containing symbols outside the alphabet are rejected.
func (d *DFA) Accepts(word []string) bool {
	s := 0
	for _, f := range word {
		s = d.Step(s, f)
		if s < 0 {
			return false
		}
	}
	return d.accept[s]
}

// Complement returns a DFA for the complement language over the same
// alphabet.  The receiver must be total, which Compile guarantees.
func (d *DFA) Complement() *DFA {
	acc := make([]bool, len(d.accept))
	for i, a := range d.accept {
		acc[i] = !a
	}
	return &DFA{alphabet: d.alphabet, trans: d.trans, accept: acc}
}

// Intersect returns the product DFA recognizing L(d) ∩ L(o).  Both automata
// must share the alphabet (same Key); otherwise Intersect panics, since a
// silent mismatch would make prover answers meaningless.
func (d *DFA) Intersect(o *DFA) *DFA {
	if d.alphabet.Key() != o.alphabet.Key() {
		panic("automata: Intersect over mismatched alphabets")
	}
	k := d.alphabet.Size()
	type pair struct{ a, b int }
	id := map[pair]int{}
	var order []pair
	intern := func(p pair) int {
		if n, ok := id[p]; ok {
			return n
		}
		n := len(order)
		id[p] = n
		order = append(order, p)
		return n
	}
	intern(pair{0, 0})
	out := &DFA{alphabet: d.alphabet}
	for i := 0; i < len(order); i++ {
		p := order[i]
		out.accept = append(out.accept, d.accept[p.a] && o.accept[p.b])
		base := len(out.trans)
		out.trans = append(out.trans, make([]int, k)...)
		for c := 0; c < k; c++ {
			out.trans[base+c] = intern(pair{d.trans[p.a*k+c], o.trans[p.b*k+c]})
		}
	}
	return out
}

// IsEmpty reports whether the DFA's language is empty.
func (d *DFA) IsEmpty() bool {
	return d.shortestAccepted() == nil && !d.accept[0]
}

// Witness returns a shortest accepted word, or nil and false when the
// language is empty.
func (d *DFA) Witness() ([]string, bool) {
	if d.accept[0] {
		return []string{}, true
	}
	w := d.shortestAccepted()
	if w == nil {
		return nil, false
	}
	return w, true
}

// shortestAccepted performs BFS from the start state and returns a shortest
// accepted word, or nil when no accepting state is reachable (ignores the
// start state's own acceptance).
func (d *DFA) shortestAccepted() []string {
	k := d.alphabet.Size()
	type edge struct {
		prev int
		sym  int
	}
	seen := make([]bool, len(d.accept))
	from := make([]edge, len(d.accept))
	queue := []int{0}
	seen[0] = true
	goal := -1
	for len(queue) > 0 && goal < 0 {
		s := queue[0]
		queue = queue[1:]
		for c := 0; c < k; c++ {
			t := d.trans[s*k+c]
			if seen[t] {
				continue
			}
			seen[t] = true
			from[t] = edge{prev: s, sym: c}
			if d.accept[t] {
				goal = t
				break
			}
			queue = append(queue, t)
		}
	}
	if goal < 0 {
		return nil
	}
	var rev []string
	for s := goal; s != 0; s = from[s].prev {
		rev = append(rev, d.alphabet.symbols[from[s].sym])
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Includes reports whether L(d) ⊆ L(o): decided as L(d) ∩ complement(L(o))
// being empty, exactly as the paper prescribes.
func (d *DFA) Includes(o *DFA) bool {
	return d.Intersect(o.Complement()).IsEmpty()
}

// Equivalent reports whether the two DFAs recognize the same language.
func (d *DFA) Equivalent(o *DFA) bool {
	return d.Includes(o) && o.Includes(d)
}

// Cardinality classifies the size of the language.
type Cardinality int

// Language cardinality classes.
const (
	CardEmpty    Cardinality = iota // no words
	CardOne                         // exactly one word
	CardFinite                      // more than one word, finitely many
	CardInfinite                    // infinitely many words
)

func (c Cardinality) String() string {
	switch c {
	case CardEmpty:
		return "empty"
	case CardOne:
		return "one"
	case CardFinite:
		return "finite"
	case CardInfinite:
		return "infinite"
	}
	return "unknown"
}

// Cardinality returns the language-size class and, when the class is
// CardOne, the unique word.
func (d *DFA) Cardinality() (Cardinality, []string) {
	k := d.alphabet.Size()
	useful := d.usefulStates()
	if !useful[0] {
		return CardEmpty, nil
	}
	// Detect a cycle among useful states: any cycle implies infinitely many
	// words (every useful state lies on a path from start to accept).
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(d.accept))
	var cyclic bool
	var dfs func(s int)
	dfs = func(s int) {
		color[s] = gray
		for c := 0; c < k; c++ {
			t := d.trans[s*k+c]
			if !useful[t] {
				continue
			}
			switch color[t] {
			case gray:
				cyclic = true
			case white:
				dfs(t)
			}
		}
		color[s] = black
	}
	dfs(0)
	if cyclic {
		return CardInfinite, nil
	}
	// Acyclic: count accepted words by memoized DAG counting, capped at 2.
	counts := make([]int, len(d.accept))
	for i := range counts {
		counts[i] = -1
	}
	var count func(s int) int
	count = func(s int) int {
		if counts[s] >= 0 {
			return counts[s]
		}
		n := 0
		if d.accept[s] {
			n = 1
		}
		for c := 0; c < k; c++ {
			t := d.trans[s*k+c]
			if useful[t] {
				n += count(t)
			}
			if n > 2 {
				n = 3
				break
			}
		}
		counts[s] = n
		return n
	}
	switch n := count(0); {
	case n == 0:
		return CardEmpty, nil
	case n == 1:
		w, _ := d.uniqueWord(useful)
		return CardOne, w
	default:
		return CardFinite, nil
	}
}

// uniqueWord extracts the single accepted word from a DFA already known to
// accept exactly one word.
func (d *DFA) uniqueWord(useful []bool) ([]string, bool) {
	k := d.alphabet.Size()
	var word []string
	s := 0
	for steps := 0; steps <= len(d.accept)*k+1; steps++ {
		if d.accept[s] {
			// The unique word ends here unless a useful continuation exists;
			// with exactly one word there cannot be both.
			hasNext := false
			for c := 0; c < k; c++ {
				if useful[d.trans[s*k+c]] {
					hasNext = true
				}
			}
			if !hasNext {
				return word, true
			}
		}
		advanced := false
		for c := 0; c < k; c++ {
			t := d.trans[s*k+c]
			if useful[t] {
				word = append(word, d.alphabet.symbols[c])
				s = t
				advanced = true
				break
			}
		}
		if !advanced {
			return word, d.accept[s]
		}
	}
	return nil, false
}

// usefulStates marks states that are both reachable from the start state and
// can reach an accepting state.
func (d *DFA) usefulStates() []bool {
	k := d.alphabet.Size()
	n := len(d.accept)
	reach := make([]bool, n)
	stack := []int{0}
	reach[0] = true
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for c := 0; c < k; c++ {
			t := d.trans[s*k+c]
			if !reach[t] {
				reach[t] = true
				stack = append(stack, t)
			}
		}
	}
	// Reverse reachability from accepting states.
	rev := make([][]int, n)
	for s := 0; s < n; s++ {
		for c := 0; c < k; c++ {
			t := d.trans[s*k+c]
			rev[t] = append(rev[t], s)
		}
	}
	coreach := make([]bool, n)
	for s := 0; s < n; s++ {
		if d.accept[s] && !coreach[s] {
			coreach[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range rev[s] {
			if !coreach[p] {
				coreach[p] = true
				stack = append(stack, p)
			}
		}
	}
	useful := make([]bool, n)
	for s := 0; s < n; s++ {
		useful[s] = reach[s] && coreach[s]
	}
	return useful
}

// Minimize returns the Hopcroft-minimal DFA equivalent to d.
func (d *DFA) Minimize() *DFA {
	k := d.alphabet.Size()
	n := len(d.accept)
	if n == 0 {
		return d
	}
	// Partition refinement (Hopcroft).  part[s] is the block of state s.
	part := make([]int, n)
	for s := 0; s < n; s++ {
		if d.accept[s] {
			part[s] = 1
		}
	}
	numBlocks := 2
	if allSameBool(d.accept) {
		numBlocks = 1
		for s := range part {
			part[s] = 0
		}
	}
	for {
		// Refine: signature of a state is (block, successor blocks).
		sig := make(map[string][]int)
		var order []string
		for s := 0; s < n; s++ {
			var b strings.Builder
			b.WriteString(strconv.Itoa(part[s]))
			for c := 0; c < k; c++ {
				b.WriteByte(':')
				b.WriteString(strconv.Itoa(part[d.trans[s*k+c]]))
			}
			key := b.String()
			if _, ok := sig[key]; !ok {
				order = append(order, key)
			}
			sig[key] = append(sig[key], s)
		}
		if len(order) == numBlocks {
			break
		}
		numBlocks = len(order)
		for i, key := range order {
			for _, s := range sig[key] {
				part[s] = i
			}
		}
	}
	// Rebuild with block of start state first.
	remap := make([]int, numBlocks)
	for i := range remap {
		remap[i] = -1
	}
	next := 0
	assign := func(b int) int {
		if remap[b] < 0 {
			remap[b] = next
			next++
		}
		return remap[b]
	}
	assign(part[0])
	out := &DFA{
		alphabet: d.alphabet,
		trans:    make([]int, numBlocks*k),
		accept:   make([]bool, numBlocks),
	}
	for s := 0; s < n; s++ {
		b := assign(part[s])
		out.accept[b] = d.accept[s]
		for c := 0; c < k; c++ {
			out.trans[b*k+c] = assign(part[d.trans[s*k+c]])
		}
	}
	return out
}

func allSameBool(xs []bool) bool {
	for _, x := range xs {
		if x != xs[0] {
			return false
		}
	}
	return true
}

// MaxWordLen returns the length of the longest accepted word, or
// math.MaxInt for infinite languages, or -1 for the empty language.
func (d *DFA) MaxWordLen() int {
	card, _ := d.Cardinality()
	switch card {
	case CardEmpty:
		return -1
	case CardInfinite:
		return math.MaxInt
	}
	// Longest path in the useful-state DAG.
	k := d.alphabet.Size()
	useful := d.usefulStates()
	memo := make([]int, len(d.accept))
	for i := range memo {
		memo[i] = -2
	}
	var longest func(s int) int
	longest = func(s int) int {
		if memo[s] != -2 {
			return memo[s]
		}
		best := -1
		if d.accept[s] {
			best = 0
		}
		memo[s] = best // provisional; DAG so no revisits on a cycle
		for c := 0; c < k; c++ {
			t := d.trans[s*k+c]
			if !useful[t] {
				continue
			}
			if l := longest(t); l >= 0 && l+1 > best {
				best = l + 1
			}
		}
		memo[s] = best
		return best
	}
	return longest(0)
}
