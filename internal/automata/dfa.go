package automata

import (
	"fmt"
	"math"

	"repro/internal/pathexpr"
)

// DFA is a deterministic finite automaton over an Alphabet.  DFAs produced
// by this package are always total: every state has a transition on every
// symbol (a dead state absorbs failures).  State 0 is the start state.
//
// The transition function is a dense int32 table (trans[s*k+c] with
// k = alphabet.Size()), the representation the decision path walks and the
// artifact format persists verbatim.  A DFA is frozen once built: no method
// mutates trans or accept after construction, which is what makes it safe
// to alias trans onto read-only mmap-backed artifact memory (see
// LoadArtifact) and to share one *DFA across every prover in a process.
type DFA struct {
	alphabet *Alphabet
	// trans[s*k+c] is the successor of state s on symbol c.
	trans  []int32
	accept []bool
}

// ErrStateLimit is returned by Compile — and by the budgeted product
// constructions — when the state count exceeds the configured budget.  The
// prover treats it as "unable to decide", which degrades an answer towards
// Maybe — never towards an unsound No.
type ErrStateLimit struct {
	Limit int
}

func (e ErrStateLimit) Error() string {
	return fmt.Sprintf("automata: DFA exceeds state limit %d", e.Limit)
}

// DefaultStateLimit bounds subset construction and product construction.
// Path expressions in practice are tiny (the paper: n on the order of ten),
// so this is far above anything a realistic proof needs.
const DefaultStateLimit = 1 << 14

// Compile builds a total DFA recognizing e over the given alphabet, via
// Thompson construction and subset construction.  Fields of e not in the
// alphabet yield the empty language contribution (see buildNFA).
func Compile(e pathexpr.Expr, a *Alphabet) (*DFA, error) {
	return CompileLimit(e, a, DefaultStateLimit)
}

// CompileLimit is Compile with an explicit subset-construction state budget.
// The construction is fully integer-keyed (see table.go): NFA state sets
// are interned through a hash table of int32 slices, never rendered to
// strings.
func CompileLimit(e pathexpr.Expr, a *Alphabet, limit int) (*DFA, error) {
	n := newNFA(a)
	start, accept := n.build(e)
	n.start, n.accept = start, accept
	return compileTable(n, limit)
}

// MustCompile is Compile, panicking on error.
func MustCompile(e pathexpr.Expr, a *Alphabet) *DFA {
	d, err := Compile(e, a)
	if err != nil {
		panic(err)
	}
	return d
}

// Alphabet returns the DFA's alphabet.
func (d *DFA) Alphabet() *Alphabet { return d.alphabet }

// NumStates returns the number of DFA states.
func (d *DFA) NumStates() int { return len(d.accept) }

// Step returns the successor of state s on symbol name, or -1 if the symbol
// is not in the alphabet.
func (d *DFA) Step(s int, name string) int {
	c := d.alphabet.Index(name)
	if c < 0 {
		return -1
	}
	return int(d.trans[s*d.alphabet.Size()+c])
}

// Accepting reports whether state s accepts.
func (d *DFA) Accepting(s int) bool { return d.accept[s] }

// Accepts reports whether the DFA accepts the word (a sequence of field
// names).  Words containing symbols outside the alphabet are rejected.
func (d *DFA) Accepts(word []string) bool {
	s := 0
	for _, f := range word {
		s = d.Step(s, f)
		if s < 0 {
			return false
		}
	}
	return d.accept[s]
}

// Complement returns a DFA for the complement language over the same
// alphabet.  The receiver must be total, which Compile guarantees.
//
// The transition table is copied, not aliased: the receiver's table may be
// mmap-backed read-only artifact memory with its own lifetime (Artifact.
// Close unmaps it), and two automata silently sharing a backing slice is a
// correctness hazard the moment any caller stops treating DFAs as frozen.
// An aliasing regression is caught by TestComplementDoesNotAliasTables.
func (d *DFA) Complement() *DFA {
	acc := make([]bool, len(d.accept))
	for i, a := range d.accept {
		acc[i] = !a
	}
	trans := make([]int32, len(d.trans))
	copy(trans, d.trans)
	return &DFA{alphabet: d.alphabet, trans: trans, accept: acc}
}

// product runs the budgeted product construction over d and o, accepting
// product states (a, b) for which acceptPair(d.accept[a], o.accept[b]) is
// true.  Intersection and difference (the inclusion check's L(d) ∩ ¬L(o))
// are the two instantiations.  Exceeding limit returns ErrStateLimit: two
// automata near the compile budget can otherwise intern up to limit² product
// states, which is an OOM, not a proof.
func (d *DFA) product(o *DFA, limit int, acceptPair func(a, b bool) bool) (*DFA, error) {
	if d.alphabet.Key() != o.alphabet.Key() {
		panic("automata: product over mismatched alphabets")
	}
	if limit <= 0 {
		limit = DefaultStateLimit
	}
	k := d.alphabet.Size()
	// Product states are pairs (a, b) of component states, encoded into one
	// uint64 key; order is interning order with (0, 0) first.
	id := make(map[uint64]int32)
	var order []uint64
	intern := func(a, b int32) (int32, error) {
		key := uint64(uint32(a))<<32 | uint64(uint32(b))
		if n, ok := id[key]; ok {
			return n, nil
		}
		if len(order) >= limit {
			return 0, ErrStateLimit{Limit: limit}
		}
		n := int32(len(order))
		id[key] = n
		order = append(order, key)
		return n, nil
	}
	if _, err := intern(0, 0); err != nil {
		return nil, err
	}
	out := &DFA{alphabet: d.alphabet}
	for i := 0; i < len(order); i++ {
		a := int32(order[i] >> 32)
		b := int32(uint32(order[i]))
		out.accept = append(out.accept, acceptPair(d.accept[a], o.accept[b]))
		base := len(out.trans)
		out.trans = append(out.trans, make([]int32, k)...)
		for c := 0; c < k; c++ {
			n, err := intern(d.trans[int(a)*k+c], o.trans[int(b)*k+c])
			if err != nil {
				return nil, err
			}
			out.trans[base+c] = n
		}
	}
	return out, nil
}

// IntersectLimit returns the product DFA recognizing L(d) ∩ L(o), or
// ErrStateLimit when the product exceeds the given state budget (limit <= 0
// selects DefaultStateLimit).  Both automata must share the alphabet (same
// Key); otherwise it panics, since a silent mismatch would make prover
// answers meaningless.
func (d *DFA) IntersectLimit(o *DFA, limit int) (*DFA, error) {
	return d.product(o, limit, func(a, b bool) bool { return a && b })
}

// Intersect is IntersectLimit at DefaultStateLimit, panicking when even the
// default budget is exceeded.  Budget-aware callers (the caches, and through
// them the prover) use IntersectLimit and degrade toward Maybe instead.
func (d *DFA) Intersect(o *DFA) *DFA {
	out, err := d.IntersectLimit(o, DefaultStateLimit)
	if err != nil {
		panic(err)
	}
	return out
}

// IsEmpty reports whether the DFA's language is empty.
func (d *DFA) IsEmpty() bool {
	return d.shortestAccepted() == nil && !d.accept[0]
}

// Witness returns a shortest accepted word, or nil and false when the
// language is empty.
func (d *DFA) Witness() ([]string, bool) {
	if d.accept[0] {
		return []string{}, true
	}
	w := d.shortestAccepted()
	if w == nil {
		return nil, false
	}
	return w, true
}

// shortestAccepted performs BFS from the start state and returns a shortest
// accepted word, or nil when no accepting state is reachable (ignores the
// start state's own acceptance).
func (d *DFA) shortestAccepted() []string {
	k := d.alphabet.Size()
	type edge struct {
		prev int32
		sym  int32
	}
	seen := make([]bool, len(d.accept))
	from := make([]edge, len(d.accept))
	queue := []int32{0}
	seen[0] = true
	goal := int32(-1)
	for len(queue) > 0 && goal < 0 {
		s := queue[0]
		queue = queue[1:]
		for c := 0; c < k; c++ {
			t := d.trans[int(s)*k+c]
			if seen[t] {
				continue
			}
			seen[t] = true
			from[t] = edge{prev: s, sym: int32(c)}
			if d.accept[t] {
				goal = t
				break
			}
			queue = append(queue, t)
		}
	}
	if goal < 0 {
		return nil
	}
	var rev []string
	for s := goal; s != 0; s = from[s].prev {
		rev = append(rev, d.alphabet.symbols[from[s].sym])
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// IncludesLimit reports whether L(d) ⊆ L(o), deciding L(d) ∩ ¬L(o) = ∅ as
// the paper prescribes, under the given product-state budget.  The
// difference automaton is built directly by the product construction — no
// materialized complement, no intermediate table copy.
func (d *DFA) IncludesLimit(o *DFA, limit int) (bool, error) {
	diff, err := d.product(o, limit, func(a, b bool) bool { return a && !b })
	if err != nil {
		return false, err
	}
	return diff.IsEmpty(), nil
}

// Includes is IncludesLimit at DefaultStateLimit, panicking on budget
// exhaustion (see Intersect).
func (d *DFA) Includes(o *DFA) bool {
	ok, err := d.IncludesLimit(o, DefaultStateLimit)
	if err != nil {
		panic(err)
	}
	return ok
}

// EquivalentLimit reports whether the two DFAs recognize the same language,
// under the given product-state budget.
func (d *DFA) EquivalentLimit(o *DFA, limit int) (bool, error) {
	ok, err := d.IncludesLimit(o, limit)
	if err != nil || !ok {
		return false, err
	}
	return o.IncludesLimit(d, limit)
}

// Equivalent is EquivalentLimit at DefaultStateLimit, panicking on budget
// exhaustion (see Intersect).
func (d *DFA) Equivalent(o *DFA) bool {
	ok, err := d.EquivalentLimit(o, DefaultStateLimit)
	if err != nil {
		panic(err)
	}
	return ok
}

// Cardinality classifies the size of the language.
type Cardinality int

// Language cardinality classes.
const (
	CardEmpty    Cardinality = iota // no words
	CardOne                         // exactly one word
	CardFinite                      // more than one word, finitely many
	CardInfinite                    // infinitely many words
)

func (c Cardinality) String() string {
	switch c {
	case CardEmpty:
		return "empty"
	case CardOne:
		return "one"
	case CardFinite:
		return "finite"
	case CardInfinite:
		return "infinite"
	}
	return "unknown"
}

// Cardinality returns the language-size class and, when the class is
// CardOne, the unique word.
func (d *DFA) Cardinality() (Cardinality, []string) {
	k := d.alphabet.Size()
	useful := d.usefulStates()
	if !useful[0] {
		return CardEmpty, nil
	}
	// Detect a cycle among useful states: any cycle implies infinitely many
	// words (every useful state lies on a path from start to accept).
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(d.accept))
	var cyclic bool
	var dfs func(s int)
	dfs = func(s int) {
		color[s] = gray
		for c := 0; c < k; c++ {
			t := int(d.trans[s*k+c])
			if !useful[t] {
				continue
			}
			switch color[t] {
			case gray:
				cyclic = true
			case white:
				dfs(t)
			}
		}
		color[s] = black
	}
	dfs(0)
	if cyclic {
		return CardInfinite, nil
	}
	// Acyclic: count accepted words by memoized DAG counting, capped at 2.
	counts := make([]int, len(d.accept))
	for i := range counts {
		counts[i] = -1
	}
	var count func(s int) int
	count = func(s int) int {
		if counts[s] >= 0 {
			return counts[s]
		}
		n := 0
		if d.accept[s] {
			n = 1
		}
		for c := 0; c < k; c++ {
			t := int(d.trans[s*k+c])
			if useful[t] {
				n += count(t)
			}
			if n > 2 {
				n = 3
				break
			}
		}
		counts[s] = n
		return n
	}
	switch n := count(0); {
	case n == 0:
		return CardEmpty, nil
	case n == 1:
		w, _ := d.uniqueWord(useful)
		return CardOne, w
	default:
		return CardFinite, nil
	}
}

// uniqueWord extracts the single accepted word from a DFA already known to
// accept exactly one word.
func (d *DFA) uniqueWord(useful []bool) ([]string, bool) {
	k := d.alphabet.Size()
	var word []string
	s := 0
	for steps := 0; steps <= len(d.accept)*k+1; steps++ {
		if d.accept[s] {
			// The unique word ends here unless a useful continuation exists;
			// with exactly one word there cannot be both.
			hasNext := false
			for c := 0; c < k; c++ {
				if useful[d.trans[s*k+c]] {
					hasNext = true
				}
			}
			if !hasNext {
				return word, true
			}
		}
		advanced := false
		for c := 0; c < k; c++ {
			t := int(d.trans[s*k+c])
			if useful[t] {
				word = append(word, d.alphabet.symbols[c])
				s = t
				advanced = true
				break
			}
		}
		if !advanced {
			return word, d.accept[s]
		}
	}
	return nil, false
}

// usefulStates marks states that are both reachable from the start state and
// can reach an accepting state.
func (d *DFA) usefulStates() []bool {
	k := d.alphabet.Size()
	n := len(d.accept)
	reach := make([]bool, n)
	stack := []int32{0}
	reach[0] = true
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for c := 0; c < k; c++ {
			t := d.trans[int(s)*k+c]
			if !reach[t] {
				reach[t] = true
				stack = append(stack, t)
			}
		}
	}
	// Reverse reachability from accepting states.
	rev := make([][]int32, n)
	for s := 0; s < n; s++ {
		for c := 0; c < k; c++ {
			t := d.trans[s*k+c]
			rev[t] = append(rev[t], int32(s))
		}
	}
	coreach := make([]bool, n)
	for s := 0; s < n; s++ {
		if d.accept[s] && !coreach[s] {
			coreach[s] = true
			stack = append(stack, int32(s))
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range rev[s] {
			if !coreach[p] {
				coreach[p] = true
				stack = append(stack, p)
			}
		}
	}
	useful := make([]bool, n)
	for s := 0; s < n; s++ {
		useful[s] = reach[s] && coreach[s]
	}
	return useful
}

// Minimize returns the minimal DFA equivalent to d, via the integer
// partition refinement in table.go (no per-state string signatures).
func (d *DFA) Minimize() *DFA {
	return minimizeTable(d)
}

// MaxWordLen returns the length of the longest accepted word, or
// math.MaxInt for infinite languages, or -1 for the empty language.
func (d *DFA) MaxWordLen() int {
	card, _ := d.Cardinality()
	switch card {
	case CardEmpty:
		return -1
	case CardInfinite:
		return math.MaxInt
	}
	// Longest path in the useful-state DAG.
	k := d.alphabet.Size()
	useful := d.usefulStates()
	memo := make([]int, len(d.accept))
	for i := range memo {
		memo[i] = -2
	}
	var longest func(s int) int
	longest = func(s int) int {
		if memo[s] != -2 {
			return memo[s]
		}
		best := -1
		if d.accept[s] {
			best = 0
		}
		memo[s] = best // provisional; DAG so no revisits on a cycle
		for c := 0; c < k; c++ {
			t := int(d.trans[s*k+c])
			if !useful[t] {
				continue
			}
			if l := longest(t); l >= 0 && l+1 > best {
				best = l + 1
			}
		}
		memo[s] = best
		return best
	}
	return longest(0)
}
