package automata

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/pathexpr"
)

func compile(t *testing.T, src string, fields ...string) *DFA {
	t.Helper()
	e := pathexpr.MustParse(src)
	a := NewAlphabet(append(fields, pathexpr.Fields(e)...)...)
	d, err := Compile(e, a)
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	return d
}

func TestAcceptsBasics(t *testing.T) {
	d := compile(t, "a.b*.c")
	cases := []struct {
		word string
		want bool
	}{
		{"a c", true},
		{"a b c", true},
		{"a b b b c", true},
		{"a", false},
		{"c", false},
		{"a b", false},
		{"", false},
	}
	for _, c := range cases {
		word := splitWords(c.word)
		if got := d.Accepts(word); got != c.want {
			t.Errorf("Accepts(%v) = %v, want %v", word, got, c.want)
		}
	}
}

func splitWords(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Fields(s)
}

func TestEpsilonAndEmpty(t *testing.T) {
	eps := compile(t, "ε", "a")
	if !eps.Accepts(nil) {
		t.Error("ε should accept the empty word")
	}
	if eps.Accepts([]string{"a"}) {
		t.Error("ε should not accept a")
	}
	a := NewAlphabet("a")
	empty, err := Compile(pathexpr.Empty{}, a)
	if err != nil {
		t.Fatal(err)
	}
	if !empty.IsEmpty() {
		t.Error("∅ should be empty")
	}
	if card, _ := empty.Cardinality(); card != CardEmpty {
		t.Errorf("∅ cardinality %v", card)
	}
}

func TestComplement(t *testing.T) {
	d := compile(t, "a+")
	comp := d.Complement()
	if comp.Accepts([]string{"a"}) {
		t.Error("complement should reject a")
	}
	if !comp.Accepts(nil) {
		t.Error("complement should accept ε")
	}
}

func TestIntersectAndIncludes(t *testing.T) {
	a := NewAlphabet("L", "R", "N")
	lln := MustCompile(pathexpr.MustParseAlphabet("LLN", a.Symbols()), a)
	lrn := MustCompile(pathexpr.MustParseAlphabet("LRN", a.Symbols()), a)
	wide := MustCompile(pathexpr.MustParse("(L|R)+N+"), a)

	if !lln.Intersect(lrn).IsEmpty() {
		t.Error("LLN ∩ LRN should be empty")
	}
	if !lln.Includes(wide) {
		t.Error("LLN ⊆ (L|R)+N+ should hold")
	}
	if wide.Includes(lln) {
		t.Error("(L|R)+N+ ⊄ LLN")
	}
	if lln.Intersect(wide).IsEmpty() {
		t.Error("LLN ∩ (L|R)+N+ should be nonempty")
	}
}

func TestIntersectPanicsOnAlphabetMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	x := MustCompile(pathexpr.MustParse("a"), NewAlphabet("a"))
	y := MustCompile(pathexpr.MustParse("b"), NewAlphabet("b"))
	x.Intersect(y)
}

func TestWitness(t *testing.T) {
	d := compile(t, "a.b|a.c.c")
	w, ok := d.Witness()
	if !ok {
		t.Fatal("no witness")
	}
	if !d.Accepts(w) {
		t.Fatalf("witness %v not accepted", w)
	}
	if len(w) != 2 {
		t.Fatalf("witness %v not shortest", w)
	}
	x := compile(t, "a", "b")
	y := compile(t, "b", "a")
	if _, ok := x.Intersect(y).Witness(); ok {
		t.Error("a ∩ b should have no witness")
	}
}

func TestCardinality(t *testing.T) {
	cases := []struct {
		src  string
		want Cardinality
	}{
		{"a", CardOne},
		{"ε", CardOne},
		{"a.b.c", CardOne},
		{"a|b", CardFinite},
		{"a|a", CardOne},
		{"a*", CardInfinite},
		{"a+", CardInfinite},
		{"a(b|ε)", CardFinite},
	}
	for _, c := range cases {
		d := compile(t, c.src, "a", "b", "c")
		got, word := d.Cardinality()
		if got != c.want {
			t.Errorf("Cardinality(%q) = %v, want %v", c.src, got, c.want)
		}
		if got == CardOne && !d.Accepts(word) {
			t.Errorf("unique word %v of %q not accepted", word, c.src)
		}
	}
	// Unique word extraction must reproduce the word exactly.
	d := compile(t, "a.b.a")
	_, w := d.Cardinality()
	if !reflect.DeepEqual(w, []string{"a", "b", "a"}) {
		t.Errorf("unique word = %v", w)
	}
}

func TestMaxWordLen(t *testing.T) {
	if got := compile(t, "a.b.c").MaxWordLen(); got != 3 {
		t.Errorf("MaxWordLen(abc) = %d", got)
	}
	if got := compile(t, "a|a.b").MaxWordLen(); got != 2 {
		t.Errorf("MaxWordLen(a|ab) = %d", got)
	}
	if got := compile(t, "a*").MaxWordLen(); got != math.MaxInt {
		t.Errorf("MaxWordLen(a*) = %d", got)
	}
	a := NewAlphabet("a")
	empty := MustCompile(pathexpr.Empty{}, a)
	if got := empty.MaxWordLen(); got != -1 {
		t.Errorf("MaxWordLen(∅) = %d", got)
	}
}

func TestMinimizePreservesLanguage(t *testing.T) {
	exprs := []string{"a*b|a*b", "(a|b)*abb", "a+a*", "(a.b)*|ε", "a.b.c|a.b.d"}
	for _, src := range exprs {
		d := compile(t, src, "a", "b", "c", "d")
		m := d.Minimize()
		if !d.Equivalent(m) {
			t.Errorf("Minimize(%q) changed the language", src)
		}
		if m.NumStates() > d.NumStates() {
			t.Errorf("Minimize(%q) grew: %d -> %d states", src, d.NumStates(), m.NumStates())
		}
	}
}

func TestCompileStateLimit(t *testing.T) {
	// Force subset construction over the limit with a pathological pattern:
	// (a|b)* a (a|b)^n needs ~2^n DFA states.
	var b strings.Builder
	b.WriteString("(a|b)*a")
	for i := 0; i < 20; i++ {
		b.WriteString("(a|b)")
	}
	e := pathexpr.MustParse(b.String())
	_, err := CompileLimit(e, NewAlphabet("a", "b"), 256)
	if err == nil {
		t.Fatal("expected state-limit error")
	}
	var lim ErrStateLimit
	if !asErr(err, &lim) {
		t.Fatalf("error %v is not ErrStateLimit", err)
	}
}

func asErr(err error, target *ErrStateLimit) bool {
	e, ok := err.(ErrStateLimit)
	if ok {
		*target = e
	}
	return ok
}

func TestCacheReuses(t *testing.T) {
	c := NewCache(0)
	a := NewAlphabet("x", "y")
	e := pathexpr.MustParse("x.y*")
	d1, err := c.DFA(e, a)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := c.DFA(pathexpr.MustParse("x.y*"), a)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Error("cache did not reuse DFA")
	}
	if c.Len() != 1 {
		t.Errorf("cache has %d entries, want 1", c.Len())
	}
	ok, err := c.Includes(pathexpr.MustParse("x"), pathexpr.MustParse("x.y*"), a)
	if err != nil || !ok {
		t.Errorf("Includes: %v %v", ok, err)
	}
	ok, err = c.Disjoint(pathexpr.MustParse("x"), pathexpr.MustParse("y"), a)
	if err != nil || !ok {
		t.Errorf("Disjoint: %v %v", ok, err)
	}
	ok, err = c.Equivalent(pathexpr.MustParse("x.y*"), pathexpr.MustParse("x|x.y+"), a)
	if err != nil || !ok {
		t.Errorf("Equivalent: %v %v", ok, err)
	}
}

// TestPropertyWordMembership: any word is accepted by its own expression and
// by any star-closure containing its symbols.
func TestPropertyWordMembership(t *testing.T) {
	fields := []string{"a", "b", "c"}
	a := NewAlphabet(fields...)
	universe := MustCompile(pathexpr.MustParse("(a|b|c)*"), a)
	f := func(raw []byte) bool {
		word := make([]string, 0, len(raw)%8)
		for i := 0; i < len(raw)%8; i++ {
			word = append(word, fields[int(raw[i])%len(fields)])
		}
		self := MustCompile(pathexpr.FromWord(word), a)
		return self.Accepts(word) && universe.Accepts(word)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyComplementPartition: for random words, exactly one of d and
// its complement accepts.
func TestPropertyComplementPartition(t *testing.T) {
	fields := []string{"a", "b"}
	a := NewAlphabet(fields...)
	d := MustCompile(pathexpr.MustParse("a(a|b)*b"), a)
	comp := d.Complement()
	f := func(raw []byte) bool {
		word := make([]string, 0, len(raw)%10)
		for i := 0; i < len(raw)%10; i++ {
			word = append(word, fields[int(raw[i])%2])
		}
		return d.Accepts(word) != comp.Accepts(word)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyInclusionBySampling: if Includes says L1 ⊆ L2, then every
// sampled word of L1 is in L2.
func TestPropertyInclusionBySampling(t *testing.T) {
	a := NewAlphabet("a", "b")
	sub := MustCompile(pathexpr.MustParse("a+b"), a)
	sup := MustCompile(pathexpr.MustParse("a(a|b)*"), a)
	if !sub.Includes(sup) {
		t.Fatal("a+b ⊆ a(a|b)* should hold")
	}
	f := func(n uint8) bool {
		word := []string{}
		for i := 0; i < int(n%12)+1; i++ {
			word = append(word, "a")
		}
		word = append(word, "b")
		return !sub.Accepts(word) || sup.Accepts(word)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestUndeclaredFieldMeansEmpty(t *testing.T) {
	// Compiling an expression whose field is not in the alphabet yields the
	// empty language: such a path traverses no edge of the modeled structure.
	a := NewAlphabet("a")
	d := MustCompile(pathexpr.MustParse("z"), a)
	if !d.IsEmpty() {
		t.Error("undeclared field should give the empty language")
	}
}
