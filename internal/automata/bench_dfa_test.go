package automata

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"testing"

	"repro/internal/pathexpr"
)

// This file freezes the pre-refactor DFA backend — map-based transition
// tables, string-signature subset construction and minimization, string-
// keyed product states — as an in-test reference implementation.  The
// differential test proves the flat-table backend reaches identical
// verdicts; the benchmark report (BENCH_dfa.json, via `make bench-dfa`)
// quantifies what the rewrite bought and asserts the table backend is no
// slower per decision.

// legacyDFA is the old representation: one map per state.
type legacyDFA struct {
	alphabet *Alphabet
	trans    []map[int]int
	accept   []bool
}

// legacyEpsClosure is the recursive ε-closure the old subset construction
// used, returning a sorted state set.
func legacyEpsClosure(n *nfa, states []int) []int {
	seen := map[int]bool{}
	var walk func(s int)
	walk = func(s int) {
		if seen[s] {
			return
		}
		seen[s] = true
		for _, t := range n.eps[s] {
			walk(t)
		}
	}
	for _, s := range states {
		walk(s)
	}
	out := make([]int, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// legacySig renders a state set as the comma-joined string the old code
// interned subset-construction states by.
func legacySig(set []int) string {
	var b strings.Builder
	for i, s := range set {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", s)
	}
	return b.String()
}

// legacyCompile is subset construction over string signatures followed by
// string-signature Moore minimization — the frozen old pipeline.
func legacyCompile(e pathexpr.Expr, a *Alphabet) *legacyDFA {
	n := newNFA(a)
	start, accept := n.build(e)
	n.start, n.accept = start, accept

	d := &legacyDFA{alphabet: a}
	index := map[string]int{}
	var sets [][]int
	intern := func(set []int) int {
		sig := legacySig(set)
		if i, ok := index[sig]; ok {
			return i
		}
		i := len(sets)
		index[sig] = i
		sets = append(sets, set)
		d.trans = append(d.trans, make(map[int]int, a.Size()))
		acc := false
		for _, s := range set {
			if s == n.accept {
				acc = true
			}
		}
		d.accept = append(d.accept, acc)
		return i
	}
	intern(legacyEpsClosure(n, []int{n.start}))
	for i := 0; i < len(sets); i++ {
		for sym := 0; sym < a.Size(); sym++ {
			var next []int
			for _, s := range sets[i] {
				next = append(next, n.trans[s][sym]...)
			}
			d.trans[i][sym] = intern(legacyEpsClosure(n, next))
		}
	}
	return legacyMinimize(d)
}

// legacyMinimize is Moore refinement with string signatures in a map —
// per-round signature rendering was the old backend's dominant cost.
func legacyMinimize(d *legacyDFA) *legacyDFA {
	n := len(d.accept)
	if n <= 1 {
		return d
	}
	k := d.alphabet.Size()
	part := make([]int, n)
	for s := range part {
		if d.accept[s] {
			part[s] = 1
		}
	}
	for {
		index := map[string]int{}
		next := make([]int, n)
		for s := 0; s < n; s++ {
			var b strings.Builder
			fmt.Fprintf(&b, "%d", part[s])
			for sym := 0; sym < k; sym++ {
				fmt.Fprintf(&b, ",%d", part[d.trans[s][sym]])
			}
			sig := b.String()
			id, ok := index[sig]
			if !ok {
				id = len(index)
				index[sig] = id
			}
			next[s] = id
		}
		same := true
		for s := range part {
			if part[s] != next[s] {
				same = false
			}
		}
		part = next
		if same {
			break
		}
	}
	blocks := 0
	for _, p := range part {
		if p+1 > blocks {
			blocks = p + 1
		}
	}
	out := &legacyDFA{
		alphabet: d.alphabet,
		trans:    make([]map[int]int, blocks),
		accept:   make([]bool, blocks),
	}
	for s := 0; s < n; s++ {
		b := part[s]
		if out.trans[b] == nil {
			out.trans[b] = make(map[int]int, k)
			for sym := 0; sym < k; sym++ {
				out.trans[b][sym] = part[d.trans[s][sym]]
			}
			out.accept[b] = d.accept[s]
		}
	}
	// Re-root so block of old state 0 is state 0, as the old code did.
	if part[0] != 0 {
		swap := part[0]
		perm := make([]int, blocks)
		for i := range perm {
			perm[i] = i
		}
		perm[0], perm[swap] = swap, 0
		re := &legacyDFA{alphabet: d.alphabet, trans: make([]map[int]int, blocks), accept: make([]bool, blocks)}
		for b := 0; b < blocks; b++ {
			nb := perm[b]
			re.trans[nb] = make(map[int]int, k)
			for sym, t := range out.trans[b] {
				re.trans[nb][sym] = perm[t]
			}
			re.accept[nb] = out.accept[b]
		}
		out = re
	}
	return out
}

// legacyProduct builds the pair automaton over string pair keys.
func legacyProduct(x, y *legacyDFA, acceptPair func(a, b bool) bool) *legacyDFA {
	k := x.alphabet.Size()
	out := &legacyDFA{alphabet: x.alphabet}
	index := map[string]int{}
	type pair struct{ a, b int }
	var pairs []pair
	intern := func(a, b int) int {
		key := fmt.Sprintf("%d|%d", a, b)
		if i, ok := index[key]; ok {
			return i
		}
		i := len(pairs)
		index[key] = i
		pairs = append(pairs, pair{a, b})
		out.trans = append(out.trans, make(map[int]int, k))
		out.accept = append(out.accept, acceptPair(x.accept[a], y.accept[b]))
		return i
	}
	intern(0, 0)
	for i := 0; i < len(pairs); i++ {
		p := pairs[i]
		for sym := 0; sym < k; sym++ {
			out.trans[i][sym] = intern(x.trans[p.a][sym], y.trans[p.b][sym])
		}
	}
	return out
}

func (d *legacyDFA) isEmpty() bool {
	seen := make([]bool, len(d.accept))
	stack := []int{0}
	seen[0] = true
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if d.accept[s] {
			return false
		}
		for _, t := range d.trans[s] {
			if !seen[t] {
				seen[t] = true
				stack = append(stack, t)
			}
		}
	}
	return true
}

func legacyIncludes(x, y *legacyDFA) bool {
	return legacyProduct(x, y, func(a, b bool) bool { return a && !b }).isEmpty()
}

func legacyDisjoint(x, y *legacyDFA) bool {
	return legacyProduct(x, y, func(a, b bool) bool { return a && b }).isEmpty()
}

func legacyEquivalent(x, y *legacyDFA) bool {
	return legacyProduct(x, y, func(a, b bool) bool { return a != b }).isEmpty()
}

// benchDFASuite is the expression workload both backends run: the shared-
// cache test set plus heavier subset-construction and product shapes.
func benchDFASuite() ([]pathexpr.Expr, *Alphabet) {
	srcs := []string{
		"L", "R", "N", "L.R", "(L|R)", "(L|R)+", "N*", "L.(L|R)*",
		"(L|R|N)+", "ε", "(L|R)*.N", "(L|R)*.L.(L|R).(L|R)",
		"(L.L.L)*", "(L.L.L.L.L)*", "(L|R)*.N.N*", "R.(L|N)+.R",
	}
	exprs := make([]pathexpr.Expr, len(srcs))
	for i, s := range srcs {
		exprs[i] = pathexpr.MustParse(s)
	}
	return exprs, NewAlphabet("L", "R", "N")
}

// TestTableBackendMatchesLegacy: every verdict of the flat-table backend
// must equal the frozen map/string backend over the full pairwise suite.
// This is the equal-verdicts precondition the benchmark report cites.
func TestTableBackendMatchesLegacy(t *testing.T) {
	exprs, a := benchDFASuite()
	table := make([]*DFA, len(exprs))
	legacy := make([]*legacyDFA, len(exprs))
	for i, e := range exprs {
		table[i] = MustCompile(e, a).Minimize()
		legacy[i] = legacyCompile(e, a)
		if got, want := table[i].NumStates(), len(legacy[i].accept); got != want {
			t.Errorf("%v: table backend minimized to %d states, legacy to %d", e, got, want)
		}
	}
	for i, x := range exprs {
		for j, y := range exprs {
			if got, want := table[i].Includes(table[j]), legacyIncludes(legacy[i], legacy[j]); got != want {
				t.Errorf("Includes(%v, %v): table %v, legacy %v", x, y, got, want)
			}
			if got, want := table[i].Intersect(table[j]).IsEmpty(), legacyDisjoint(legacy[i], legacy[j]); got != want {
				t.Errorf("Disjoint(%v, %v): table %v, legacy %v", x, y, got, want)
			}
			if got, want := table[i].Equivalent(table[j]), legacyEquivalent(legacy[i], legacy[j]); got != want {
				t.Errorf("Equivalent(%v, %v): table %v, legacy %v", x, y, got, want)
			}
		}
	}
}

func BenchmarkTableCompile(b *testing.B) {
	exprs, a := benchDFASuite()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, e := range exprs {
			MustCompile(e, a).Minimize()
		}
	}
}

func BenchmarkLegacyCompile(b *testing.B) {
	exprs, a := benchDFASuite()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, e := range exprs {
			legacyCompile(e, a)
		}
	}
}

func BenchmarkTableDecide(b *testing.B) {
	exprs, a := benchDFASuite()
	dfas := make([]*DFA, len(exprs))
	for i, e := range exprs {
		dfas[i] = MustCompile(e, a).Minimize()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, x := range dfas {
			for _, y := range dfas {
				x.Includes(y)
				x.Intersect(y).IsEmpty()
				x.Equivalent(y)
			}
		}
	}
}

func BenchmarkLegacyDecide(b *testing.B) {
	exprs, a := benchDFASuite()
	dfas := make([]*legacyDFA, len(exprs))
	for i, e := range exprs {
		dfas[i] = legacyCompile(e, a)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, x := range dfas {
			for _, y := range dfas {
				legacyIncludes(x, y)
				legacyDisjoint(x, y)
				legacyEquivalent(x, y)
			}
		}
	}
}

// benchDFARow is one backend's numbers over the suite (one op = the whole
// suite: 16 compiles, or 16×16×3 decisions).
type benchDFARow struct {
	CompileNsOp int64 `json:"compile_suite_ns_op"`
	DecideNsOp  int64 `json:"decide_suite_ns_op"`
}

// benchDFAReport is the BENCH_dfa.json schema.
type benchDFAReport struct {
	Suite  string      `json:"suite"`
	Table  benchDFARow `json:"table_backend"`
	Legacy benchDFARow `json:"legacy_map_string_backend"`
}

// TestWriteBenchDFAJSON measures both backends and writes BENCH_dfa.json
// (driven by `make bench-dfa`, which sets BENCH_DFA_JSON; skipped
// otherwise).  The acceptance guard is asserted, not just reported: at
// equal verdicts (TestTableBackendMatchesLegacy), the table backend must
// decide no slower than the frozen map/string backend.
func TestWriteBenchDFAJSON(t *testing.T) {
	path := os.Getenv("BENCH_DFA_JSON")
	if path == "" {
		t.Skip("set BENCH_DFA_JSON to an output path (make bench-dfa) to run")
	}
	exprs, _ := benchDFASuite()
	report := benchDFAReport{
		Suite: fmt.Sprintf("%d expressions over {L,R,N}, pairwise includes+disjoint+equivalent", len(exprs)),
		Table: benchDFARow{
			CompileNsOp: testing.Benchmark(BenchmarkTableCompile).NsPerOp(),
			DecideNsOp:  testing.Benchmark(BenchmarkTableDecide).NsPerOp(),
		},
		Legacy: benchDFARow{
			CompileNsOp: testing.Benchmark(BenchmarkLegacyCompile).NsPerOp(),
			DecideNsOp:  testing.Benchmark(BenchmarkLegacyDecide).NsPerOp(),
		},
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s:\n%s", path, data)

	if report.Table.DecideNsOp > report.Legacy.DecideNsOp {
		t.Errorf("table backend decides in %dns/suite, slower than the legacy map backend's %dns/suite",
			report.Table.DecideNsOp, report.Legacy.DecideNsOp)
	}
	if report.Table.CompileNsOp > report.Legacy.CompileNsOp {
		t.Errorf("table backend compiles in %dns/suite, slower than the legacy map backend's %dns/suite",
			report.Table.CompileNsOp, report.Legacy.CompileNsOp)
	}
}
