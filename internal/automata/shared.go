package automata

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pathexpr"
	"repro/internal/telemetry"
)

// DFACache is the compilation-cache interface the prover draws DFAs (and
// the language decisions built on them) from.  Two implementations exist:
// Cache, the single-owner cache each prover builds by default, and
// SharedCache, the sharded concurrency-safe cache the batched query engine
// hands to every worker prover so subset constructions are paid once per
// (expression, alphabet) across the whole batch.
type DFACache interface {
	DFA(e pathexpr.Expr, a *Alphabet) (*DFA, error)
	Includes(sub, sup pathexpr.Expr, a *Alphabet) (bool, error)
	Disjoint(x, y pathexpr.Expr, a *Alphabet) (bool, error)
	Equivalent(x, y pathexpr.Expr, a *Alphabet) (bool, error)
	Stats() CacheStats
}

var (
	_ DFACache = (*Cache)(nil)
	_ DFACache = (*SharedCache)(nil)
)

// DefaultSharedShards is the shard count used when NewSharedCache is given
// a non-positive one.  Sixteen shards keep lock contention negligible for
// pool widths far beyond anything the engine spawns.
const DefaultSharedShards = 16

// SharedCache is a concurrency-safe DFA cache: a fixed array of
// mutex-guarded shards keyed, like Cache, by (alphabet, expression).
// Compiled DFAs are immutable, so a value read under one shard's lock is
// safe to use forever after; two goroutines racing to compile the same
// expression both succeed and the second insert overwrites the first with
// an equivalent automaton (duplicate work, never wrong answers).
//
// An optional per-shard entry cap bounds memory: a shard at its cap is
// emptied wholesale before the next insert (epoch eviction — no LRU
// bookkeeping on the hit path), and every dropped entry counts as an
// eviction in the stats and telemetry.
type SharedCache struct {
	limit      int
	perShard   int // entry cap per shard; 0 = unbounded
	noMinimize bool
	shards     []sharedShard

	lookups      atomic.Int64
	hits         atomic.Int64
	compiles     atomic.Int64
	statesBuilt  atomic.Int64
	statesMin    atomic.Int64
	limitFails   atomic.Int64
	dfaEvictions atomic.Int64
	opsEvictions atomic.Int64
	decisions    atomic.Int64
	decisionHits atomic.Int64

	tel           *telemetry.Set
	cLookups      *telemetry.Counter
	cHits         *telemetry.Counter
	cCompiles     *telemetry.Counter
	cLimitFails   *telemetry.Counter
	cEvictions    *telemetry.Counter
	cDecisions    *telemetry.Counter
	cDecisionHits *telemetry.Counter
	compileTimeNS *telemetry.Histogram
	compileWin    *telemetry.WindowHistogram
}

// opsKey identifies one memoized boolean language decision: the operation,
// the interned alphabet identity, and the interned identities of both
// expressions.  A fixed-size comparable struct, so a warm decision lookup
// builds its key with no string concatenation and no allocation.
type opsKey struct {
	op    byte
	alpha uint64
	x, y  uint64
}

type sharedShard struct {
	mu   sync.RWMutex
	dfas map[dfaKey]*DFA
	// ops memoizes the boolean answers of Includes/Disjoint/Equivalent
	// (keyed by op, alphabet, and both expressions) — the product
	// constructions they run are pure functions of immutable DFAs.
	ops map[opsKey]bool
}

// NewSharedCache returns a concurrency-safe cache with the given subset
// construction state limit (DefaultStateLimit if limit <= 0), shard count
// (DefaultSharedShards if shards <= 0), and per-shard entry cap
// (0 = unbounded).
func NewSharedCache(limit, shards, perShardCap int) *SharedCache {
	if limit <= 0 {
		limit = DefaultStateLimit
	}
	if shards <= 0 {
		shards = DefaultSharedShards
	}
	c := &SharedCache{limit: limit, perShard: perShardCap, shards: make([]sharedShard, shards)}
	for i := range c.shards {
		c.shards[i].dfas = make(map[dfaKey]*DFA)
		c.shards[i].ops = make(map[opsKey]bool)
	}
	return c
}

// SetTelemetry wires the cache's counters and compile events into tel
// (nil disables, the default).  Returns the cache for chaining.
func (c *SharedCache) SetTelemetry(tel *telemetry.Set) *SharedCache {
	c.tel = tel
	c.cLookups = tel.Counter("automata.shared_lookups")
	c.cHits = tel.Counter("automata.shared_hits")
	c.cCompiles = tel.Counter("automata.shared_compiles")
	c.cLimitFails = tel.Counter("automata.shared_state_limit_failures")
	c.cEvictions = tel.Counter("automata.shared_evictions")
	c.cDecisions = tel.Counter("automata.shared_decision_lookups")
	c.cDecisionHits = tel.Counter("automata.shared_decision_hits")
	c.compileTimeNS = tel.Histogram("automata.shared_compile_ns")
	c.compileWin = tel.Window("automata.shared_compile_ns")
	return c
}

// shardAt routes a mixed 64-bit key hash to its shard.
func (c *SharedCache) shardAt(h uint64) *sharedShard {
	return &c.shards[h%uint64(len(c.shards))]
}

// DFA returns the compiled, minimized DFA for e over alphabet a, compiling
// at most once per key in the steady state.
func (c *SharedCache) DFA(e pathexpr.Expr, a *Alphabet) (*DFA, error) {
	c.lookups.Add(1)
	c.cLookups.Add(1)
	n := pathexpr.Intern(e)
	key := dfaKey{alpha: a.ID(), expr: n.ID()}
	sh := c.shardAt(pathexpr.Mix64(pathexpr.Mix64(pathexpr.MixInit, key.alpha), key.expr))
	sh.mu.RLock()
	d, ok := sh.dfas[key]
	sh.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		c.cHits.Add(1)
		return d, nil
	}

	timed := c.compileTimeNS != nil || c.tel.TraceEnabled()
	var t0 time.Time
	if timed {
		t0 = time.Now()
	}
	d, err := CompileLimit(e, a, c.limit)
	if err != nil {
		c.limitFails.Add(1)
		c.cLimitFails.Add(1)
		return nil, err
	}
	built := d.NumStates()
	if !c.noMinimize {
		d = d.Minimize()
	}
	c.compiles.Add(1)
	c.statesBuilt.Add(int64(built))
	c.statesMin.Add(int64(d.NumStates()))
	c.cCompiles.Add(1)
	if timed {
		dur := time.Since(t0)
		c.compileTimeNS.Observe(dur.Nanoseconds())
		c.compileWin.Observe(dur.Nanoseconds())
		c.tel.Emit("automata.shared_compile",
			telemetry.String("expr", n.String()),
			telemetry.Int("states", built),
			telemetry.Int("min_states", d.NumStates()),
			telemetry.DurUS("dur_us", dur))
	}

	sh.mu.Lock()
	if prior, ok := sh.dfas[key]; ok {
		// A concurrent compile won the race; keep its value so every caller
		// observes one steady automaton per key.
		sh.mu.Unlock()
		return prior, nil
	}
	if c.perShard > 0 && len(sh.dfas) >= c.perShard {
		dropped := len(sh.dfas)
		sh.dfas = make(map[dfaKey]*DFA, c.perShard)
		c.dfaEvictions.Add(int64(dropped))
		c.cEvictions.Add(int64(dropped))
	}
	sh.dfas[key] = d
	sh.mu.Unlock()
	return d, nil
}

// Stats returns the cache's work counters so far.  Safe to call
// concurrently with lookups; the counters are individually atomic.
func (c *SharedCache) Stats() CacheStats {
	return CacheStats{
		Lookups:         int(c.lookups.Load()),
		Hits:            int(c.hits.Load()),
		Compiles:        int(c.compiles.Load()),
		StatesBuilt:     int(c.statesBuilt.Load()),
		StatesMinimized: int(c.statesMin.Load()),
		LimitFailures:   int(c.limitFails.Load()),
	}
}

// Evictions returns the total number of entries dropped by epoch eviction,
// summed over the DFA map and the decision memo.
func (c *SharedCache) Evictions() int64 {
	return c.dfaEvictions.Load() + c.opsEvictions.Load()
}

// DFAEvictions returns the evictions charged to the DFA map alone.
func (c *SharedCache) DFAEvictions() int64 { return c.dfaEvictions.Load() }

// OpsEvictions returns the evictions charged to the decision memo alone.
func (c *SharedCache) OpsEvictions() int64 { return c.opsEvictions.Load() }

// Len reports the number of cached DFAs across all shards.
func (c *SharedCache) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.RLock()
		n += len(c.shards[i].dfas)
		c.shards[i].mu.RUnlock()
	}
	return n
}

// OpsLen reports the number of memoized boolean decisions across all
// shards.  Together with Len it is what a long-lived process watches to
// know the cache honors its cap.
func (c *SharedCache) OpsLen() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.RLock()
		n += len(c.shards[i].ops)
		c.shards[i].mu.RUnlock()
	}
	return n
}

// HitRate returns hits/lookups, or 0 when no lookups happened.
func (c *SharedCache) HitRate() float64 {
	l := c.lookups.Load()
	if l == 0 {
		return 0
	}
	return float64(c.hits.Load()) / float64(l)
}

// decide answers a binary language decision through the per-shard decision
// memo.  Compiled DFAs are deterministic, so the boolean answer for an
// (op, alphabet, x, y) key never changes; product constructions (complement,
// intersection, emptiness) dominate the prover's direct checks once the DFAs
// themselves are cached, and the same decisions recur across the goals of a
// batch.
func (c *SharedCache) decide(op byte, x, y pathexpr.Expr, a *Alphabet, eval func(dx, dy *DFA) (bool, error)) (bool, error) {
	c.decisions.Add(1)
	c.cDecisions.Add(1)
	key := opsKey{op: op, alpha: a.ID(), x: pathexpr.InternID(x), y: pathexpr.InternID(y)}
	h := pathexpr.Mix64(pathexpr.Mix64(pathexpr.Mix64(pathexpr.Mix64(pathexpr.MixInit, uint64(key.op)), key.alpha), key.x), key.y)
	sh := c.shardAt(h)
	sh.mu.RLock()
	v, ok := sh.ops[key]
	sh.mu.RUnlock()
	if ok {
		c.decisionHits.Add(1)
		c.cDecisionHits.Add(1)
		return v, nil
	}
	dx, err := c.DFA(x, a)
	if err != nil {
		return false, err
	}
	dy, err := c.DFA(y, a)
	if err != nil {
		return false, err
	}
	v, err = eval(dx, dy)
	if err != nil {
		// A blown product budget is not memoized: the answer is "don't
		// know", not false, and a retry under a larger budget must be free
		// to succeed.
		c.limitFails.Add(1)
		c.cLimitFails.Add(1)
		return false, err
	}
	sh.mu.Lock()
	if c.perShard > 0 && len(sh.ops) >= c.perShard {
		// The decision memo obeys the same per-shard epoch eviction as the
		// DFA map: in a long-lived process both would otherwise grow without
		// bound, and the `ops` side is the easier one to forget because each
		// entry is one bool — millions of forgotten bools are still a leak.
		dropped := len(sh.ops)
		sh.ops = make(map[opsKey]bool, c.perShard)
		c.opsEvictions.Add(int64(dropped))
		c.cEvictions.Add(int64(dropped))
	}
	sh.ops[key] = v
	sh.mu.Unlock()
	return v, nil
}

// Includes reports L(sub) ⊆ L(sup) over alphabet a, under the cache's
// product-state budget.
func (c *SharedCache) Includes(sub, sup pathexpr.Expr, a *Alphabet) (bool, error) {
	return c.decide('i', sub, sup, a, func(ds, dp *DFA) (bool, error) {
		return ds.IncludesLimit(dp, c.limit)
	})
}

// Disjoint reports L(x) ∩ L(y) = ∅ over alphabet a, under the cache's
// product-state budget.
func (c *SharedCache) Disjoint(x, y pathexpr.Expr, a *Alphabet) (bool, error) {
	return c.decide('d', x, y, a, func(dx, dy *DFA) (bool, error) {
		prod, err := dx.IntersectLimit(dy, c.limit)
		if err != nil {
			return false, err
		}
		return prod.IsEmpty(), nil
	})
}

// Equivalent reports L(x) = L(y) over alphabet a, under the cache's
// product-state budget.
func (c *SharedCache) Equivalent(x, y pathexpr.Expr, a *Alphabet) (bool, error) {
	return c.decide('e', x, y, a, func(dx, dy *DFA) (bool, error) {
		return dx.EquivalentLimit(dy, c.limit)
	})
}

// DecisionStats returns the decision-memo lookup/hit counts.
func (c *SharedCache) DecisionStats() (lookups, hits int64) {
	return c.decisions.Load(), c.decisionHits.Load()
}
