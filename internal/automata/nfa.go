// Package automata provides the finite-automata machinery behind APT's
// decidable theorem proving: Thompson NFA construction from path
// expressions, subset construction to DFAs, boolean language operations
// (complement, intersection), Hopcroft minimization, and the language
// queries the prover needs (emptiness, inclusion, equivalence, cardinality,
// witnesses).
//
// The paper (§4.1) decides RE1 ⊆ RE2 by checking
// L(M1) ∩ complement(L(M2)) = ∅ over DFAs M1, M2; this package implements
// exactly that, over an explicit field alphabet.
package automata

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/pathexpr"
)

// Alphabet is an ordered set of field names.  All automata operations that
// combine two machines require them to share an alphabet.
type Alphabet struct {
	symbols []string
	index   map[string]int
	key     string
	id      uint64
}

// alphaIDs interns alphabet keys to stable 64-bit IDs, so two Alphabet
// values built from the same symbol set (distinct pointers, equal keys)
// share an identity and the DFA caches can key on integers instead of
// concatenating key strings per lookup.
var alphaIDs = struct {
	mu   sync.Mutex
	ids  map[string]uint64
	keys map[uint64]string
	next uint64
}{ids: make(map[string]uint64), keys: make(map[uint64]string)}

// alphabetKeyByID reverses the alphabet-ID registry: given an ID handed out
// by NewAlphabet, it returns the canonical space-joined symbol key.  The
// artifact writer uses it to turn cache snapshot keys (which are bare IDs)
// back into serializable symbol lists.
func alphabetKeyByID(id uint64) (string, bool) {
	alphaIDs.mu.Lock()
	key, ok := alphaIDs.keys[id]
	alphaIDs.mu.Unlock()
	return key, ok
}

// NewAlphabet builds an alphabet from the given field names, deduplicating
// and sorting them.
func NewAlphabet(fields ...string) *Alphabet {
	seen := make(map[string]bool, len(fields))
	var syms []string
	for _, f := range fields {
		if f == "" || seen[f] {
			continue
		}
		seen[f] = true
		syms = append(syms, f)
	}
	sort.Strings(syms)
	idx := make(map[string]int, len(syms))
	for i, s := range syms {
		idx[s] = i
	}
	key := strings.Join(syms, " ")
	alphaIDs.mu.Lock()
	id, ok := alphaIDs.ids[key]
	if !ok {
		alphaIDs.next++
		id = alphaIDs.next
		alphaIDs.ids[key] = id
		alphaIDs.keys[id] = key
	}
	alphaIDs.mu.Unlock()
	return &Alphabet{symbols: syms, index: idx, key: key, id: id}
}

// AlphabetOf builds the alphabet of all fields mentioned in the expressions.
func AlphabetOf(exprs ...pathexpr.Expr) *Alphabet {
	return NewAlphabet(pathexpr.Fields(exprs...)...)
}

// Union returns an alphabet containing the symbols of both alphabets.
func (a *Alphabet) Union(b *Alphabet) *Alphabet {
	return NewAlphabet(append(append([]string{}, a.symbols...), b.symbols...)...)
}

// Size returns the number of symbols.
func (a *Alphabet) Size() int { return len(a.symbols) }

// Symbols returns the symbols in sorted order.  The caller must not modify
// the returned slice.
func (a *Alphabet) Symbols() []string { return a.symbols }

// Index returns the index of symbol s, or -1 if s is not in the alphabet.
func (a *Alphabet) Index(s string) int {
	i, ok := a.index[s]
	if !ok {
		return -1
	}
	return i
}

// Contains reports whether s is a symbol of the alphabet.
func (a *Alphabet) Contains(s string) bool { _, ok := a.index[s]; return ok }

// Key returns a canonical string identifying the alphabet, for caching.
// It is precomputed at construction: cache lookups hit it on every DFA
// request, far too hot a path for per-call rendering.
func (a *Alphabet) Key() string {
	return a.key
}

// ID returns the alphabet's stable 64-bit identity: equal symbol sets share
// an ID for the lifetime of the process.  The DFA caches combine it with
// interned expression IDs into fixed-size struct keys.
func (a *Alphabet) ID() uint64 {
	return a.id
}

// nfa is a Thompson-construction NFA with ε-transitions.  States are dense
// integers; state 0 is always the start state after Build.
type nfa struct {
	alphabet *Alphabet
	// eps[s] lists ε-successors of state s.
	eps [][]int
	// trans[s][sym] lists sym-successors of state s.
	trans []map[int][]int
	start int
	// accept is the single accepting state of the Thompson construction.
	accept int
}

func newNFA(a *Alphabet) *nfa {
	return &nfa{alphabet: a}
}

func (n *nfa) newState() int {
	n.eps = append(n.eps, nil)
	n.trans = append(n.trans, nil)
	return len(n.eps) - 1
}

func (n *nfa) addEps(from, to int) {
	n.eps[from] = append(n.eps[from], to)
}

func (n *nfa) addTrans(from int, sym int, to int) {
	if n.trans[from] == nil {
		n.trans[from] = make(map[int][]int)
	}
	n.trans[from][sym] = append(n.trans[from][sym], to)
}

// buildNFA compiles e into a Thompson NFA fragment and returns (start,
// accept) states.  Symbols absent from the alphabet make the fragment
// unmatchable (they become the empty language), which is the correct
// interpretation: a path using an undeclared field traverses no edge of the
// modeled structure.
func (n *nfa) build(e pathexpr.Expr) (start, accept int) {
	start = n.newState()
	accept = n.newState()
	switch v := e.(type) {
	case nil, pathexpr.Epsilon:
		n.addEps(start, accept)
	case pathexpr.Empty:
		// no transitions: accept unreachable
	case pathexpr.Field:
		sym := n.alphabet.Index(v.Name)
		if sym >= 0 {
			n.addTrans(start, sym, accept)
		}
	case pathexpr.Concat:
		cur := start
		for _, p := range v.Parts {
			s, a := n.build(p)
			n.addEps(cur, s)
			cur = a
		}
		n.addEps(cur, accept)
	case pathexpr.Alt:
		for _, p := range v.Alts {
			s, a := n.build(p)
			n.addEps(start, s)
			n.addEps(a, accept)
		}
	case pathexpr.Star:
		s, a := n.build(v.Inner)
		n.addEps(start, s)
		n.addEps(a, s)
		n.addEps(start, accept)
		n.addEps(a, accept)
	case pathexpr.Plus:
		s, a := n.build(v.Inner)
		n.addEps(start, s)
		n.addEps(a, s)
		n.addEps(a, accept)
	default:
		panic(fmt.Sprintf("automata: unknown expression type %T", e))
	}
	return start, accept
}
