package automata

import (
	"math/rand"
	"testing"

	"repro/internal/pathexpr"
)

// randExpr generates a random path expression over the fields.
func randExpr(rng *rand.Rand, fields []string, depth int) pathexpr.Expr {
	if depth <= 0 || rng.Intn(3) == 0 {
		if rng.Intn(6) == 0 {
			return pathexpr.Eps
		}
		return pathexpr.F(fields[rng.Intn(len(fields))])
	}
	switch rng.Intn(4) {
	case 0:
		return pathexpr.Cat(randExpr(rng, fields, depth-1), randExpr(rng, fields, depth-1))
	case 1:
		return pathexpr.Or(randExpr(rng, fields, depth-1), randExpr(rng, fields, depth-1))
	case 2:
		return pathexpr.Rep(randExpr(rng, fields, depth-1))
	default:
		return pathexpr.Rep1(randExpr(rng, fields, depth-1))
	}
}

// randWord draws a random word.
func randWord(rng *rand.Rand, fields []string, maxLen int) []string {
	n := rng.Intn(maxLen + 1)
	w := make([]string, n)
	for i := range w {
		w[i] = fields[rng.Intn(len(fields))]
	}
	return w
}

// TestPropertySimplifyPreservesLanguage: Simplify must not change the
// recognized language.
func TestPropertySimplifyPreservesLanguage(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	fields := []string{"a", "b"}
	a := NewAlphabet(fields...)
	for trial := 0; trial < 150; trial++ {
		e := randExpr(rng, fields, 4)
		d1 := MustCompile(e, a)
		d2 := MustCompile(pathexpr.Simplify(e), a)
		if !d1.Equivalent(d2) {
			t.Fatalf("Simplify changed the language of %v", e)
		}
	}
}

// TestPropertyDesugarPreservesLanguage: a+ → a·a* is an equivalence.
func TestPropertyDesugarPreservesLanguage(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	fields := []string{"a", "b"}
	a := NewAlphabet(fields...)
	for trial := 0; trial < 150; trial++ {
		e := randExpr(rng, fields, 4)
		d1 := MustCompile(e, a)
		d2 := MustCompile(pathexpr.Desugar(e), a)
		if !d1.Equivalent(d2) {
			t.Fatalf("Desugar changed the language of %v", e)
		}
	}
}

// TestPropertyMinimizeIsMinimal: re-minimizing a minimized DFA does not
// shrink it, and minimization preserves membership on sampled words.
func TestPropertyMinimizeIsMinimal(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	fields := []string{"a", "b", "c"}
	a := NewAlphabet(fields...)
	for trial := 0; trial < 100; trial++ {
		e := randExpr(rng, fields, 4)
		d := MustCompile(e, a)
		m := d.Minimize()
		if m2 := m.Minimize(); m2.NumStates() != m.NumStates() {
			t.Fatalf("Minimize not idempotent on %v: %d -> %d states", e, m.NumStates(), m2.NumStates())
		}
		for i := 0; i < 20; i++ {
			w := randWord(rng, fields, 6)
			if d.Accepts(w) != m.Accepts(w) {
				t.Fatalf("minimization changed membership of %v in %v", w, e)
			}
		}
	}
}

// TestPropertyBooleanOpsAgreeWithMembership: on sampled words, intersection
// and complement behave pointwise.
func TestPropertyBooleanOpsAgreeWithMembership(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	fields := []string{"a", "b"}
	a := NewAlphabet(fields...)
	for trial := 0; trial < 100; trial++ {
		e1 := randExpr(rng, fields, 3)
		e2 := randExpr(rng, fields, 3)
		d1 := MustCompile(e1, a)
		d2 := MustCompile(e2, a)
		inter := d1.Intersect(d2)
		comp := d1.Complement()
		for i := 0; i < 25; i++ {
			w := randWord(rng, fields, 6)
			if inter.Accepts(w) != (d1.Accepts(w) && d2.Accepts(w)) {
				t.Fatalf("intersection wrong on %v for %v ∩ %v", w, e1, e2)
			}
			if comp.Accepts(w) == d1.Accepts(w) {
				t.Fatalf("complement wrong on %v for %v", w, e1)
			}
		}
	}
}

// TestPropertyInclusionAgreesWithSampling: when Includes holds, sampled
// members of the subset are members of the superset; when it fails, the
// witness of the difference is a genuine counterexample.
func TestPropertyInclusionAgreesWithSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	fields := []string{"a", "b"}
	a := NewAlphabet(fields...)
	for trial := 0; trial < 100; trial++ {
		e1 := randExpr(rng, fields, 3)
		e2 := randExpr(rng, fields, 3)
		d1 := MustCompile(e1, a)
		d2 := MustCompile(e2, a)
		if d1.Includes(d2) {
			for i := 0; i < 25; i++ {
				w := randWord(rng, fields, 6)
				if d1.Accepts(w) && !d2.Accepts(w) {
					t.Fatalf("Includes(%v ⊆ %v) but %v separates them", e1, e2, w)
				}
			}
		} else {
			diff := d1.Intersect(d2.Complement())
			w, ok := diff.Witness()
			if !ok {
				t.Fatalf("inclusion failed but difference is empty: %v vs %v", e1, e2)
			}
			if !d1.Accepts(w) || d2.Accepts(w) {
				t.Fatalf("bogus witness %v for %v ⊄ %v", w, e1, e2)
			}
		}
	}
}

// TestPropertyCardinalityOneHasUniqueWord: CardOne's extracted word is
// accepted, and mutating it is rejected.
func TestPropertyCardinalityOneHasUniqueWord(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	fields := []string{"a", "b"}
	a := NewAlphabet(fields...)
	found := 0
	for trial := 0; trial < 300; trial++ {
		e := randExpr(rng, fields, 3)
		d := MustCompile(e, a)
		card, w := d.Cardinality()
		if card != CardOne {
			continue
		}
		found++
		if !d.Accepts(w) {
			t.Fatalf("unique word %v of %v rejected", w, e)
		}
		// Any single-symbol flip must be rejected.
		for i := range w {
			flipped := append([]string{}, w...)
			if flipped[i] == "a" {
				flipped[i] = "b"
			} else {
				flipped[i] = "a"
			}
			if d.Accepts(flipped) {
				t.Fatalf("%v accepts both %v and %v yet claims cardinality one", e, w, flipped)
			}
		}
	}
	if found == 0 {
		t.Error("no singleton languages generated; test has no power")
	}
}
