package automata

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/pathexpr"
)

func sharedTestExprs() []pathexpr.Expr {
	srcs := []string{"L", "R", "N", "L.R", "(L|R)", "(L|R)+", "N*", "L.(L|R)*", "(L|R|N)+", "ε"}
	out := make([]pathexpr.Expr, len(srcs))
	for i, s := range srcs {
		out[i] = pathexpr.MustParse(s)
	}
	return out
}

// TestSharedCacheMatchesPrivateCache: both implementations of DFACache must
// give identical language decisions.
func TestSharedCacheMatchesPrivateCache(t *testing.T) {
	alpha := NewAlphabet("L", "R", "N")
	private := NewCache(0)
	shared := NewSharedCache(0, 0, 0)
	exprs := sharedTestExprs()
	for _, x := range exprs {
		for _, y := range exprs {
			for name, op := range map[string]func(DFACache) (bool, error){
				"Includes":   func(c DFACache) (bool, error) { return c.Includes(x, y, alpha) },
				"Disjoint":   func(c DFACache) (bool, error) { return c.Disjoint(x, y, alpha) },
				"Equivalent": func(c DFACache) (bool, error) { return c.Equivalent(x, y, alpha) },
			} {
				wantOK, wantErr := op(private)
				gotOK, gotErr := op(shared)
				if wantOK != gotOK || (wantErr == nil) != (gotErr == nil) {
					t.Errorf("%s(%v, %v): shared says (%v,%v), private says (%v,%v)",
						name, x, y, gotOK, gotErr, wantOK, wantErr)
				}
			}
		}
	}
}

// TestSharedCacheConcurrentLookups hammers one cache from many goroutines;
// correctness is checked by the decisions and the race detector, economy by
// the compile counter staying near the distinct-key count.
func TestSharedCacheConcurrentLookups(t *testing.T) {
	alpha := NewAlphabet("L", "R", "N")
	c := NewSharedCache(0, 4, 0)
	exprs := sharedTestExprs()
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 20; round++ {
				for _, e := range exprs {
					d, err := c.DFA(e, alpha)
					if err != nil || d == nil {
						errs <- fmt.Errorf("DFA(%v): %v", e, err)
						return
					}
				}
			}
			ok, err := c.Disjoint(pathexpr.MustParse("L"), pathexpr.MustParse("R"), alpha)
			if err != nil || !ok {
				errs <- fmt.Errorf("Disjoint(L,R) = %v, %v", ok, err)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := c.Stats()
	if st.Lookups == 0 || st.Hits == 0 {
		t.Fatalf("stats show no traffic: %+v", st)
	}
	// Racing goroutines may compile the same key more than once (benign),
	// but steady-state reuse must dominate: far fewer compiles than lookups.
	if st.Compiles >= st.Lookups/10 {
		t.Errorf("%d compiles for %d lookups: cache not absorbing repeat traffic", st.Compiles, st.Lookups)
	}
	if c.Len() == 0 || c.Len() > len(exprs)+2 {
		t.Errorf("Len() = %d, want about %d distinct entries", c.Len(), len(exprs))
	}
	if c.HitRate() <= 0.5 {
		t.Errorf("HitRate() = %.2f, want > 0.5", c.HitRate())
	}
}

// TestSharedCacheEpochEviction: a full shard is emptied before the next
// insert and every dropped entry is counted.
func TestSharedCacheEpochEviction(t *testing.T) {
	alpha := NewAlphabet("L", "R", "N")
	c := NewSharedCache(0, 1, 4) // one shard, four entries
	exprs := sharedTestExprs()
	for _, e := range exprs {
		if _, err := c.DFA(e, alpha); err != nil {
			t.Fatalf("DFA(%v): %v", e, err)
		}
	}
	if c.Evictions() == 0 {
		t.Errorf("no evictions after inserting %d entries into a 4-entry shard", len(exprs))
	}
	if got := c.Len(); got > 4 {
		t.Errorf("Len() = %d, want <= the per-shard cap of 4", got)
	}
	// Evicted entries must simply recompile, not fail.
	if ok, err := c.Disjoint(pathexpr.MustParse("L"), pathexpr.MustParse("R"), alpha); err != nil || !ok {
		t.Errorf("Disjoint(L,R) after eviction = %v, %v", ok, err)
	}
}

// TestSharedCacheStateLimit: the configured subset-construction limit is
// enforced and counted, and a failed compilation is not cached.
func TestSharedCacheStateLimit(t *testing.T) {
	alpha := NewAlphabet("L", "R", "N")
	c := NewSharedCache(1, 0, 0)
	big := pathexpr.MustParse("(L|R).(L|R).(L|R).(L|R)")
	if _, err := c.DFA(big, alpha); err == nil {
		t.Fatal("want a state-limit error from a 1-state limit")
	}
	if st := c.Stats(); st.LimitFailures == 0 {
		t.Errorf("stats did not count the limit failure: %+v", st)
	}
	if c.Len() != 0 {
		t.Errorf("failed compilation was cached: Len() = %d", c.Len())
	}
}

// TestSharedCacheOpsMemoBounded is the regression test for the long-lived-
// process leak: epoch eviction must bound the decision memo (`ops`) exactly
// like the DFA map.  A server answering millions of distinct decisions would
// otherwise grow the memo without bound even though every DFA is evicted on
// schedule.
func TestSharedCacheOpsMemoBounded(t *testing.T) {
	alpha := NewAlphabet("L", "R", "N")
	const cap = 4
	c := NewSharedCache(0, 1, cap) // one shard so the cap binds immediately
	exprs := sharedTestExprs()
	for _, x := range exprs {
		for _, y := range exprs {
			if _, err := c.Includes(x, y, alpha); err != nil {
				t.Fatalf("Includes(%v, %v): %v", x, y, err)
			}
			if _, err := c.Disjoint(x, y, alpha); err != nil {
				t.Fatalf("Disjoint(%v, %v): %v", x, y, err)
			}
			if _, err := c.Equivalent(x, y, alpha); err != nil {
				t.Fatalf("Equivalent(%v, %v): %v", x, y, err)
			}
		}
	}
	if got := c.Len(); got > cap {
		t.Errorf("Len() = %d after the sweep, want <= the per-shard cap of %d", got, cap)
	}
	if got := c.OpsLen(); got > cap {
		t.Errorf("OpsLen() = %d after the sweep, want <= the per-shard cap of %d", got, cap)
	}
	if c.OpsEvictions() == 0 {
		t.Error("OpsEvictions() = 0 after driving hundreds of decisions past a 4-entry cap")
	}
	if c.DFAEvictions() == 0 {
		t.Error("DFAEvictions() = 0 after compiling every expression into a 4-entry shard")
	}
	if total := c.Evictions(); total != c.DFAEvictions()+c.OpsEvictions() {
		t.Errorf("Evictions() = %d, want DFAEvictions+OpsEvictions = %d",
			total, c.DFAEvictions()+c.OpsEvictions())
	}
	// Evicted decisions recompute to the same answers.
	if ok, err := c.Disjoint(pathexpr.MustParse("L"), pathexpr.MustParse("R"), alpha); err != nil || !ok {
		t.Errorf("Disjoint(L,R) after ops eviction = %v, %v", ok, err)
	}
	// An unbounded cache (cap 0) never evicts, whatever its size.
	u := NewSharedCache(0, 1, 0)
	for _, x := range exprs {
		for _, y := range exprs {
			if _, err := u.Includes(x, y, alpha); err != nil {
				t.Fatalf("Includes(%v, %v): %v", x, y, err)
			}
		}
	}
	if u.Evictions() != 0 {
		t.Errorf("unbounded cache evicted %d entries", u.Evictions())
	}
}
