package automata

import (
	"repro/internal/pathexpr"
)

// Cache memoizes compiled DFAs keyed by (expression, alphabet).  The prover
// tests the same small expressions against many axioms; caching makes the
// paper's "proof attempt is never repeated" complexity argument hold for the
// automata layer too.  A Cache is not safe for concurrent use; each prover
// instance owns one.
type Cache struct {
	limit      int
	noMinimize bool
	dfas       map[string]*DFA
}

// NewCache returns a cache whose compilations use the given subset
// construction state limit (DefaultStateLimit if limit <= 0).
func NewCache(limit int) *Cache {
	if limit <= 0 {
		limit = DefaultStateLimit
	}
	return &Cache{limit: limit, dfas: make(map[string]*DFA)}
}

// NewCacheNoMinimize returns a cache that skips Hopcroft minimization after
// subset construction.  Exists for the minimization ablation benchmark.
func NewCacheNoMinimize(limit int) *Cache {
	c := NewCache(limit)
	c.noMinimize = true
	return c
}

// DFA returns the compiled, minimized DFA for e over alphabet a.
func (c *Cache) DFA(e pathexpr.Expr, a *Alphabet) (*DFA, error) {
	key := a.Key() + "\x00" + e.String()
	if d, ok := c.dfas[key]; ok {
		return d, nil
	}
	d, err := CompileLimit(e, a, c.limit)
	if err != nil {
		return nil, err
	}
	if !c.noMinimize {
		d = d.Minimize()
	}
	c.dfas[key] = d
	return d, nil
}

// Len reports the number of cached DFAs.
func (c *Cache) Len() int { return len(c.dfas) }

// Includes reports L(sub) ⊆ L(sup) over alphabet a.
func (c *Cache) Includes(sub, sup pathexpr.Expr, a *Alphabet) (bool, error) {
	ds, err := c.DFA(sub, a)
	if err != nil {
		return false, err
	}
	dp, err := c.DFA(sup, a)
	if err != nil {
		return false, err
	}
	return ds.Includes(dp), nil
}

// Disjoint reports L(x) ∩ L(y) = ∅ over alphabet a.
func (c *Cache) Disjoint(x, y pathexpr.Expr, a *Alphabet) (bool, error) {
	dx, err := c.DFA(x, a)
	if err != nil {
		return false, err
	}
	dy, err := c.DFA(y, a)
	if err != nil {
		return false, err
	}
	return dx.Intersect(dy).IsEmpty(), nil
}

// Equivalent reports L(x) = L(y) over alphabet a.
func (c *Cache) Equivalent(x, y pathexpr.Expr, a *Alphabet) (bool, error) {
	dx, err := c.DFA(x, a)
	if err != nil {
		return false, err
	}
	dy, err := c.DFA(y, a)
	if err != nil {
		return false, err
	}
	return dx.Equivalent(dy), nil
}
