package automata

import (
	"time"

	"repro/internal/pathexpr"
	"repro/internal/telemetry"
)

// CacheStats counts the language-cache's work.  The cache is single-owner
// (one prover), so plain ints suffice; cross-prover aggregation happens in
// the telemetry registry.
type CacheStats struct {
	// Lookups is the number of DFA requests.
	Lookups int
	// Hits is the number of requests served from the cache.
	Hits int
	// Compiles is the number of subset constructions performed.
	Compiles int
	// StatesBuilt sums DFA states out of subset construction, before
	// minimization.
	StatesBuilt int
	// StatesMinimized sums DFA states after Hopcroft minimization (equal to
	// StatesBuilt when minimization is disabled).
	StatesMinimized int
	// LimitFailures counts compilations aborted by the state limit.
	LimitFailures int
}

// Cache memoizes compiled DFAs keyed by (expression, alphabet).  The prover
// tests the same small expressions against many axioms; caching makes the
// paper's "proof attempt is never repeated" complexity argument hold for the
// automata layer too.  A Cache is not safe for concurrent use; each prover
// instance owns one by default.  Concurrent clients (the batched query
// engine) share a SharedCache across worker provers instead.
// dfaKey identifies one compiled DFA: an interned alphabet identity plus an
// interned expression identity.  A fixed-size comparable struct — building
// one is free, unlike the alphabet-key + expression-string concatenation it
// replaced, which allocated and re-rendered the expression on every lookup.
type dfaKey struct {
	alpha uint64
	expr  uint64
}

type Cache struct {
	limit      int
	noMinimize bool
	dfas       map[dfaKey]*DFA
	stats      CacheStats

	// Telemetry (nil instruments when disabled; see internal/telemetry).
	tel           *telemetry.Set
	cLookups      *telemetry.Counter
	cHits         *telemetry.Counter
	cCompiles     *telemetry.Counter
	cStatesBuilt  *telemetry.Counter
	cStatesSaved  *telemetry.Counter
	cLimitFails   *telemetry.Counter
	compileTimeNS *telemetry.Histogram
}

// NewCache returns a cache whose compilations use the given subset
// construction state limit (DefaultStateLimit if limit <= 0).
func NewCache(limit int) *Cache {
	if limit <= 0 {
		limit = DefaultStateLimit
	}
	return &Cache{limit: limit, dfas: make(map[dfaKey]*DFA)}
}

// NewCacheNoMinimize returns a cache that skips Hopcroft minimization after
// subset construction.  Exists for the minimization ablation benchmark.
func NewCacheNoMinimize(limit int) *Cache {
	c := NewCache(limit)
	c.noMinimize = true
	return c
}

// SetTelemetry wires the cache's counters and compile events into tel
// (nil disables, the default).
func (c *Cache) SetTelemetry(tel *telemetry.Set) {
	c.tel = tel
	c.cLookups = tel.Counter("automata.lookups")
	c.cHits = tel.Counter("automata.cache_hits")
	c.cCompiles = tel.Counter("automata.compiles")
	c.cStatesBuilt = tel.Counter("automata.states_built")
	c.cStatesSaved = tel.Counter("automata.states_saved_by_minimization")
	c.cLimitFails = tel.Counter("automata.state_limit_failures")
	c.compileTimeNS = tel.Histogram("automata.compile_ns")
}

// Stats returns the cache's work counters so far.
func (c *Cache) Stats() CacheStats { return c.stats }

// DFA returns the compiled, minimized DFA for e over alphabet a.
func (c *Cache) DFA(e pathexpr.Expr, a *Alphabet) (*DFA, error) {
	c.stats.Lookups++
	c.cLookups.Add(1)
	key := dfaKey{alpha: a.ID(), expr: pathexpr.InternID(e)}
	if d, ok := c.dfas[key]; ok {
		c.stats.Hits++
		c.cHits.Add(1)
		return d, nil
	}
	timed := c.compileTimeNS != nil || c.tel.TraceEnabled()
	var t0 time.Time
	if timed {
		t0 = time.Now()
	}
	d, err := CompileLimit(e, a, c.limit)
	if err != nil {
		c.stats.LimitFailures++
		c.cLimitFails.Add(1)
		return nil, err
	}
	built := d.NumStates()
	if !c.noMinimize {
		d = d.Minimize()
	}
	minimized := d.NumStates()
	c.stats.Compiles++
	c.stats.StatesBuilt += built
	c.stats.StatesMinimized += minimized
	c.cCompiles.Add(1)
	c.cStatesBuilt.Add(int64(built))
	c.cStatesSaved.Add(int64(built - minimized))
	if timed {
		dur := time.Since(t0)
		c.compileTimeNS.Observe(dur.Nanoseconds())
		c.tel.Emit("automata.compile",
			telemetry.String("expr", e.String()),
			telemetry.Int("states", built),
			telemetry.Int("min_states", minimized),
			telemetry.DurUS("dur_us", dur))
	}
	c.dfas[key] = d
	return d, nil
}

// Len reports the number of cached DFAs.
func (c *Cache) Len() int { return len(c.dfas) }

// budgetErr charges a product-construction budget failure to the stats
// before passing the error on.  The caller (the prover) degrades toward
// Maybe on any cache error, so a blown product budget is never an unsound
// answer — just a weaker one.
func (c *Cache) budgetErr(err error) error {
	if err != nil {
		c.stats.LimitFailures++
		c.cLimitFails.Add(1)
	}
	return err
}

// Includes reports L(sub) ⊆ L(sup) over alphabet a.  The inclusion check's
// product construction runs under the cache's state budget.
func (c *Cache) Includes(sub, sup pathexpr.Expr, a *Alphabet) (bool, error) {
	ds, err := c.DFA(sub, a)
	if err != nil {
		return false, err
	}
	dp, err := c.DFA(sup, a)
	if err != nil {
		return false, err
	}
	ok, err := ds.IncludesLimit(dp, c.limit)
	return ok, c.budgetErr(err)
}

// Disjoint reports L(x) ∩ L(y) = ∅ over alphabet a, under the cache's
// product-state budget.
func (c *Cache) Disjoint(x, y pathexpr.Expr, a *Alphabet) (bool, error) {
	dx, err := c.DFA(x, a)
	if err != nil {
		return false, err
	}
	dy, err := c.DFA(y, a)
	if err != nil {
		return false, err
	}
	prod, err := dx.IntersectLimit(dy, c.limit)
	if err != nil {
		return false, c.budgetErr(err)
	}
	return prod.IsEmpty(), nil
}

// Equivalent reports L(x) = L(y) over alphabet a, under the cache's
// product-state budget.
func (c *Cache) Equivalent(x, y pathexpr.Expr, a *Alphabet) (bool, error) {
	dx, err := c.DFA(x, a)
	if err != nil {
		return false, err
	}
	dy, err := c.DFA(y, a)
	if err != nil {
		return false, err
	}
	ok, err := dx.EquivalentLimit(dy, c.limit)
	return ok, c.budgetErr(err)
}
