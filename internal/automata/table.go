package automata

import (
	"slices"

	"repro/internal/pathexpr"
)

// This file holds the table-compiled backend: integer-keyed subset
// construction (Thompson NFA → dense []int32 DFA table) and integer
// partition refinement for minimization.  Neither path renders a string —
// NFA state sets are interned through hash buckets of int32 slices, and
// refinement rounds compare block-ID signatures directly instead of
// building per-state string keys.

// setInterner interns sorted NFA state sets to dense DFA state IDs.  The
// hash buckets hold set IDs; collisions fall back to slice comparison, so
// equal sets always map to one ID regardless of hash quality.
type setInterner struct {
	buckets map[uint64][]int32
	sets    [][]int32
}

func hashSet(set []int32) uint64 {
	h := pathexpr.MixInit
	for _, v := range set {
		h = pathexpr.Mix64(h, uint64(v)+1)
	}
	return h
}

// intern returns the DFA state ID for set, allocating a fresh ID (and a
// private copy of the set) on first sight.  A fresh intern past limit
// returns ErrStateLimit — this is the subset-construction state budget.
func (si *setInterner) intern(set []int32, limit int) (int32, error) {
	h := hashSet(set)
	for _, id := range si.buckets[h] {
		if slices.Equal(si.sets[id], set) {
			return id, nil
		}
	}
	if len(si.sets) >= limit {
		return 0, ErrStateLimit{Limit: limit}
	}
	id := int32(len(si.sets))
	si.sets = append(si.sets, slices.Clone(set))
	si.buckets[h] = append(si.buckets[h], id)
	return id, nil
}

// compileTable runs subset construction over the Thompson NFA n and returns
// a total DFA with a dense transition table.  DFA state 0 is the ε-closure
// of the NFA start state; the empty set interns like any other set and
// becomes the (total-automaton) dead state on demand.
func compileTable(n *nfa, limit int) (*DFA, error) {
	if limit <= 0 {
		limit = DefaultStateLimit
	}
	k := n.alphabet.Size()
	numNFA := len(n.eps)

	// Stamp-based ε-closure over a reusable visited buffer: no per-call map.
	visited := make([]int, numNFA)
	stamp := 0
	var stack []int32
	closure := func(states []int32) []int32 {
		stamp++
		stack = stack[:0]
		var out []int32
		for _, s := range states {
			if visited[s] != stamp {
				visited[s] = stamp
				stack = append(stack, s)
			}
		}
		for len(stack) > 0 {
			s := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			out = append(out, s)
			for _, t := range n.eps[s] {
				if visited[t] != stamp {
					visited[t] = stamp
					stack = append(stack, int32(t))
				}
			}
		}
		slices.Sort(out)
		return out
	}

	si := &setInterner{buckets: make(map[uint64][]int32)}
	if _, err := si.intern(closure([]int32{int32(n.start)}), limit); err != nil {
		return nil, err
	}

	d := &DFA{alphabet: n.alphabet}
	var scratch []int32
	// si.sets grows as the loop interns successors; iterating by index is
	// the worklist.
	for i := 0; i < len(si.sets); i++ {
		set := si.sets[i]
		acc := false
		for _, s := range set {
			if int(s) == n.accept {
				acc = true
				break
			}
		}
		d.accept = append(d.accept, acc)
		base := len(d.trans)
		d.trans = append(d.trans, make([]int32, k)...)
		for c := 0; c < k; c++ {
			scratch = scratch[:0]
			for _, s := range set {
				if m := n.trans[s]; m != nil {
					for _, t := range m[c] {
						scratch = append(scratch, int32(t))
					}
				}
			}
			id, err := si.intern(closure(scratch), limit)
			if err != nil {
				return nil, err
			}
			d.trans[base+c] = id
		}
	}
	return d, nil
}

// minimizeTable is Moore-style partition refinement over the dense table.
// Block IDs are (re)assigned in first-seen state order every round, which
// keeps the result deterministic and pins the start state's block to 0
// (state 0 is always seen first).  States with equal signatures —
// part[s] == part[r] and ∀c part[trans[s*k+c]] == part[trans[r*k+c]] — land
// in one block; hash buckets only narrow the candidates, the signature
// comparison is exact.
func minimizeTable(d *DFA) *DFA {
	k := d.alphabet.Size()
	n := len(d.accept)
	if n <= 1 {
		return d
	}

	part := make([]int32, n)
	blockOf := [2]int32{-1, -1} // [non-accepting, accepting] → initial block
	count := int32(0)
	for s := 0; s < n; s++ {
		idx := 0
		if d.accept[s] {
			idx = 1
		}
		if blockOf[idx] < 0 {
			blockOf[idx] = count
			count++
		}
		part[s] = blockOf[idx]
	}

	newPart := make([]int32, n)
	sigEqual := func(s, r int) bool {
		if part[s] != part[r] {
			return false
		}
		for c := 0; c < k; c++ {
			if part[d.trans[s*k+c]] != part[d.trans[r*k+c]] {
				return false
			}
		}
		return true
	}
	for {
		buckets := make(map[uint64][]int32, int(count))
		next := int32(0)
		for s := 0; s < n; s++ {
			h := pathexpr.Mix64(pathexpr.MixInit, uint64(part[s]))
			for c := 0; c < k; c++ {
				h = pathexpr.Mix64(h, uint64(part[d.trans[s*k+c]]))
			}
			assigned := false
			for _, r := range buckets[h] {
				if sigEqual(s, int(r)) {
					newPart[s] = newPart[r]
					assigned = true
					break
				}
			}
			if !assigned {
				newPart[s] = next
				next++
				buckets[h] = append(buckets[h], int32(s))
			}
		}
		part, newPart = newPart, part
		if next == count {
			break
		}
		count = next
	}

	m := int(count)
	out := &DFA{
		alphabet: d.alphabet,
		trans:    make([]int32, m*k),
		accept:   make([]bool, m),
	}
	seen := make([]bool, m)
	for s := 0; s < n; s++ {
		b := part[s]
		if seen[b] {
			continue
		}
		seen[b] = true
		out.accept[b] = d.accept[s]
		for c := 0; c < k; c++ {
			out.trans[int(b)*k+c] = part[d.trans[s*k+c]]
		}
	}
	return out
}
