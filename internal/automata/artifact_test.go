package automata

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/pathexpr"
)

// artifactCache compiles the shared test expressions and all their pairwise
// decisions into a fresh cache, returning the cache and the decision answers
// for later comparison.
func artifactCache(t *testing.T) (*SharedCache, map[string]bool) {
	t.Helper()
	alpha := NewAlphabet("L", "R", "N")
	c := NewSharedCache(0, 0, 0)
	exprs := sharedTestExprs()
	answers := map[string]bool{}
	for _, e := range exprs {
		if _, err := c.DFA(e, alpha); err != nil {
			t.Fatalf("DFA(%v): %v", e, err)
		}
	}
	for _, x := range exprs {
		for _, y := range exprs {
			for op, f := range map[string]func() (bool, error){
				"i": func() (bool, error) { return c.Includes(x, y, alpha) },
				"d": func() (bool, error) { return c.Disjoint(x, y, alpha) },
				"e": func() (bool, error) { return c.Equivalent(x, y, alpha) },
			} {
				v, err := f()
				if err != nil {
					t.Fatalf("%s(%v, %v): %v", op, x, y, err)
				}
				answers[op+"|"+x.String()+"|"+y.String()] = v
			}
		}
	}
	return c, answers
}

func artifactEqual(a, b *Artifact) bool {
	return reflect.DeepEqual(a.Alphabets, b.Alphabets) &&
		reflect.DeepEqual(a.Exprs, b.Exprs) &&
		reflect.DeepEqual(a.DFAs, b.DFAs) &&
		reflect.DeepEqual(a.Ops, b.Ops) &&
		reflect.DeepEqual(a.Sigs, b.Sigs) &&
		reflect.DeepEqual(a.Goals, b.Goals) &&
		reflect.DeepEqual(a.AxiomSets, b.AxiomSets) &&
		reflect.DeepEqual(a.Replays, b.Replays)
}

// TestArtifactRoundTrip: Snapshot → serialize → decode must be structurally
// identical, through both the in-memory decoder and the mmap loader, and a
// cache preseeded from the loaded artifact must answer every decision
// identically with zero compilations.
func TestArtifactRoundTrip(t *testing.T) {
	c, answers := artifactCache(t)
	art := c.Snapshot()
	if len(art.DFAs) == 0 || len(art.Ops) == 0 {
		t.Fatalf("empty snapshot: %d DFAs, %d ops", len(art.DFAs), len(art.Ops))
	}
	// The engine- and compiler-populated sections ride the same payload;
	// synthetic entries give them round-trip coverage at this layer too.
	art.AxiomSets = append(art.AxiomSets, ArtifactAxiomSet{
		Name:   "Synthetic",
		Axioms: []ArtifactAxiom{{Name: "A1", Form: 1, RE1: 0, RE2: 1}},
	})
	art.Replays = append(art.Replays, ArtifactReplay{
		Program: "struct S { struct S *n; };",
		Fn:      "f",
		Queries: []string{"between S T", "loop U"},
	})

	var buf bytes.Buffer
	if _, err := art.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	dec, err := DecodeArtifact(buf.Bytes())
	if err != nil {
		t.Fatalf("DecodeArtifact: %v", err)
	}
	if !artifactEqual(art, dec) {
		t.Fatal("DecodeArtifact(WriteTo(art)) differs from art")
	}

	path := filepath.Join(t.TempDir(), "roundtrip.aptc")
	if err := art.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := LoadArtifact(path)
	if err != nil {
		t.Fatalf("LoadArtifact: %v", err)
	}
	defer loaded.Close()
	if !artifactEqual(art, loaded) {
		t.Fatal("LoadArtifact(Save(art)) differs from art")
	}
	if hostLittleEndian() && !loaded.Mapped() {
		t.Error("LoadArtifact did not mmap on a little-endian host")
	}

	warm := NewSharedCache(0, 0, 0)
	dfas, ops := warm.Preseed(loaded)
	if dfas != len(art.DFAs) || ops != len(art.Ops) {
		t.Fatalf("Preseed inserted %d/%d DFAs, %d/%d ops", dfas, len(art.DFAs), ops, len(art.Ops))
	}
	alpha := NewAlphabet("L", "R", "N")
	for _, x := range sharedTestExprs() {
		for _, y := range sharedTestExprs() {
			for op, f := range map[string]func() (bool, error){
				"i": func() (bool, error) { return warm.Includes(x, y, alpha) },
				"d": func() (bool, error) { return warm.Disjoint(x, y, alpha) },
				"e": func() (bool, error) { return warm.Equivalent(x, y, alpha) },
			} {
				v, err := f()
				if err != nil {
					t.Fatalf("warm %s(%v, %v): %v", op, x, y, err)
				}
				if want := answers[op+"|"+x.String()+"|"+y.String()]; v != want {
					t.Errorf("warm %s(%v, %v) = %v, cold cache said %v", op, x, y, v, want)
				}
			}
		}
	}
	if st := warm.Stats(); st.Compiles != 0 {
		t.Errorf("preseeded cache compiled %d DFAs; the artifact should cover the whole working set", st.Compiles)
	}

	// Snapshot of the preseeded cache reproduces the artifact exactly — the
	// round trip is a fixed point.  (The cache only carries DFAs and
	// decisions; the synthetic engine-level sections are grafted back before
	// comparing.)
	again := warm.Snapshot()
	again.AxiomSets, again.Replays = art.AxiomSets, art.Replays
	if !artifactEqual(art, again) {
		t.Error("snapshot of the preseeded cache differs from the original artifact")
	}
}

// TestArtifactRejectsCorruption: every damaged image must fail cleanly —
// truncation, bit flips, version skew, bad magic, trailing garbage — and
// never decode into a different artifact (which could carry wrong verdicts).
func TestArtifactRejectsCorruption(t *testing.T) {
	c, _ := artifactCache(t)
	art := c.Snapshot()
	var buf bytes.Buffer
	if _, err := art.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	img := buf.Bytes()

	t.Run("truncated", func(t *testing.T) {
		for _, n := range []int{0, 3, 23, 24, len(img) / 2, len(img) - 1} {
			if _, err := DecodeArtifact(img[:n]); err == nil {
				t.Errorf("decoding a %d-byte prefix of a %d-byte artifact succeeded", n, len(img))
			}
		}
	})
	t.Run("bit-flipped", func(t *testing.T) {
		// Flip one bit in every region of the image: header fields and a
		// spread of payload offsets.  The checksum (or a field check) must
		// catch each one.
		offsets := []int{0, 5, 9, 17, 24, 30, len(img) / 2, len(img) - 1}
		for _, off := range offsets {
			bad := append([]byte(nil), img...)
			bad[off] ^= 0x10
			if _, err := DecodeArtifact(bad); err == nil {
				t.Errorf("decoding with byte %d bit-flipped succeeded", off)
			}
		}
	})
	t.Run("version-skew", func(t *testing.T) {
		bad := append([]byte(nil), img...)
		binary.LittleEndian.PutUint32(bad[4:8], ArtifactVersion+1)
		_, err := DecodeArtifact(bad)
		if err == nil {
			t.Fatal("decoding a future-version artifact succeeded")
		}
	})
	t.Run("bad-magic", func(t *testing.T) {
		bad := append([]byte(nil), img...)
		copy(bad, "NOPE")
		if _, err := DecodeArtifact(bad); err == nil {
			t.Fatal("decoding with a bad magic succeeded")
		}
	})
	t.Run("trailing-garbage", func(t *testing.T) {
		bad := append(append([]byte(nil), img...), 0xFF, 0xFF)
		if _, err := DecodeArtifact(bad); err == nil {
			t.Fatal("decoding with trailing bytes succeeded")
		}
	})
	t.Run("load-corrupt-file", func(t *testing.T) {
		// The mmap loader must reject and unmap, returning a nil artifact
		// the CLIs turn into a cold-compile fallback.
		bad := append([]byte(nil), img...)
		bad[len(bad)-1] ^= 0x01
		path := filepath.Join(t.TempDir(), "corrupt.aptc")
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		art, err := LoadArtifact(path)
		if err == nil {
			t.Fatal("LoadArtifact on a corrupt file succeeded")
		}
		if art != nil {
			t.Fatal("LoadArtifact returned a non-nil artifact alongside an error")
		}
	})
}

// TestPreseedSkipsUnknownExprs: an artifact entry whose expression does not
// re-parse in this process must be skipped — the dependent DFA and decisions
// silently fall back to cold compilation, never to a misattributed verdict.
func TestPreseedSkipsUnknownExprs(t *testing.T) {
	art := &Artifact{
		Alphabets: [][]string{{"a"}},
		Exprs:     []string{"@@not-an-expression@@", "a"},
		DFAs: []ArtifactDFA{
			{Alpha: 0, Expr: 0, Accept: []bool{false, true}, Trans: []int32{1, 1}},
			{Alpha: 0, Expr: 1, Accept: []bool{false, true}, Trans: []int32{1, 1}},
		},
		Ops: []ArtifactOp{
			{Op: 'd', Value: true, Alpha: 0, X: 0, Y: 1},
			{Op: 'e', Value: true, Alpha: 0, X: 1, Y: 1},
		},
	}
	c := NewSharedCache(0, 0, 0)
	dfas, ops := c.Preseed(art)
	if dfas != 1 || ops != 1 {
		t.Fatalf("Preseed inserted %d DFAs, %d ops; want 1 and 1 (unparseable entries skipped)", dfas, ops)
	}
	// The surviving entries answer; the skipped expression just compiles cold.
	alpha := NewAlphabet("a")
	if ok, err := c.Equivalent(pathexpr.MustParse("a"), pathexpr.MustParse("a"), alpha); err != nil || !ok {
		t.Errorf("Equivalent(a, a) = %v, %v after preseed", ok, err)
	}
}

// TestPreseedEmptyLanguage: ∅ has no Parse syntax; Preseed must special-case
// its canonical rendering so artifacts built from axiom sets that decide
// against the empty language survive the round trip.
func TestPreseedEmptyLanguage(t *testing.T) {
	alpha := NewAlphabet("a")
	c := NewSharedCache(0, 0, 0)
	if _, err := c.DFA(pathexpr.Empty{}, alpha); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Disjoint(pathexpr.Empty{}, pathexpr.MustParse("a"), alpha); err != nil {
		t.Fatal(err)
	}
	art := c.Snapshot()
	warm := NewSharedCache(0, 0, 0)
	dfas, ops := warm.Preseed(art)
	if dfas != len(art.DFAs) || ops != len(art.Ops) {
		t.Fatalf("Preseed inserted %d/%d DFAs, %d/%d ops; ∅ entries were dropped",
			dfas, len(art.DFAs), ops, len(art.Ops))
	}
	if ok, err := warm.Disjoint(pathexpr.Empty{}, pathexpr.MustParse("a"), alpha); err != nil || !ok {
		t.Errorf("Disjoint(∅, a) = %v, %v after preseed", ok, err)
	}
	if st := warm.Stats(); st.Compiles != 0 {
		t.Errorf("preseeded cache compiled %d DFAs", st.Compiles)
	}
}
