package automata

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"syscall"
	"unsafe"

	"repro/internal/pathexpr"
)

// This file implements persisted automata artifacts: the on-disk form of a
// SharedCache working set.  An offline aptc run compiles an axiom library's
// DFAs and boolean language decisions once and serializes them; a serving
// process mmaps the artifact read-only and preseeds its SharedCache, so the
// first query after boot hits warm tables instead of paying subset
// construction and minimization.
//
// Layout (all integers little-endian):
//
//	header (24 bytes):
//	  [0:4)   magic "APTC"
//	  [4:8)   format version (ArtifactVersion)
//	  [8:16)  payload length in bytes
//	  [16:24) FNV-64a checksum of the payload
//	payload:
//	  alphabets: count u32, then per alphabet: nsyms u32, per symbol len u32 + bytes
//	  exprs:     count u32, then per expr: len u32 + canonical-string bytes
//	  dfas:      count u32, then per DFA:
//	               alphaIdx u32, exprIdx u32, states u32, syms u32,
//	               accept bytes (states × u8), zero-pad to 4-byte file offset,
//	               trans (states × syms × i32)
//	  ops:       count u32, then per decision:
//	               op u8, value u8, pad u16, alphaIdx u32, xIdx u32, yIdx u32
//	  sigs:      count u32, then per axiom-set fingerprint: len u32 + bytes
//	  goals:     count u32, then per memoized prover verdict:
//	               sigIdx u32, xIdx u32, yIdx u32, form u8, result u8, pad u16,
//	               theorem len u32 + bytes,
//	               steps count u32, then per proof-tree node (pre-order):
//	                 rule u8, form u8, altOnLeft u8, starOnLeft u8,
//	                 xIdx u32, yIdx u32, suffixI i32, suffixJ i32,
//	                 altIndex i32, kids u32,
//	                 by/byT1/byT2/note: each len u32 + bytes
//	  axiomsets: count u32, then per axiom set:
//	               name len u32 + bytes, axiom count u32, then per axiom:
//	                 form u8, pad u8 ×3, re1Idx u32, re2Idx u32,
//	                 name len u32 + bytes
//	  replays:   count u32, then per replay workload:
//	               program len u32 + bytes, fn len u32 + bytes,
//	               query count u32, per query len u32 + bytes
//
// Transition tables are 4-byte aligned in the file, and mmap places file
// offset 0 on a page boundary, so LoadArtifact can alias each table
// directly over the mapping (little-endian hosts) with zero copies.
//
// Interned expression and alphabet IDs are process-local, so the artifact
// never stores them: it stores canonical expression strings and symbol
// lists, which Preseed re-parses and re-interns in the loading process.

// ArtifactVersion is the current on-disk format version.  Loaders reject
// any other version: the format carries raw transition tables, and reading
// them under wrong layout assumptions would produce wrong verdicts, which
// is the one failure mode this layer must never have.
const ArtifactVersion = 1

var artifactMagic = [4]byte{'A', 'P', 'T', 'C'}

// ArtifactDFA is one compiled automaton in an artifact: indices into the
// artifact's alphabet and expression tables plus the dense tables
// themselves.  Trans may alias read-only mmap memory; treat it as frozen.
type ArtifactDFA struct {
	Alpha  int
	Expr   int
	Accept []bool
	Trans  []int32
}

// ArtifactOp is one memoized boolean language decision: op is the
// SharedCache opcode ('i' includes, 'd' disjoint, 'e' equivalent).
type ArtifactOp struct {
	Op    byte
	Value bool
	Alpha int
	X, Y  int
}

// ArtifactStep is one pre-order node of a serialized proof tree.  The
// automata layer treats it as opaque structure (the engine converts to and
// from prover.Step); X and Y index the artifact's expression table, and a
// node's Kids children follow it immediately in the flattened list.
type ArtifactStep struct {
	Rule, Form            uint8
	AltOnLeft, StarOnLeft bool
	X, Y                  int
	SuffixI, SuffixJ      int32
	AltIndex              int32
	Kids                  int
	By, ByT1, ByT2, Note  string
}

// ArtifactAxiom is one serialized aliasing axiom: RE1/RE2 index the
// artifact's expression table; Form is the axiom.Form value.
type ArtifactAxiom struct {
	Name     string
	Form     uint8
	RE1, RE2 int
}

// ArtifactAxiomSet is one full axiom set, complete with names and
// declaration order (the fingerprint alone is order- and name-blind, but
// proof search and proof traces depend on both).  Serving processes use it
// to pre-build pool engines at boot, eliminating the engine-cold first
// request entirely.
type ArtifactAxiomSet struct {
	Name   string
	Axioms []ArtifactAxiom
}

// ArtifactReplay is the workload a replay-mode artifact was compiled from:
// the program source, function, and raw query lines.  A serving process
// replays it through its own request path at boot, so every one-time
// first-request cost — first parse of that program text, first query
// expansion, first batch on the prewarmed engine — is paid before the
// listener opens rather than by the first client.
type ArtifactReplay struct {
	Program string
	Fn      string
	Queries []string
}

// ArtifactGoal is one memoized prover verdict, valid only under the axiom
// set whose fingerprint is Sigs[Sig]: a proved verdict is a theorem OF
// those axioms, so loaders must never seed it into a proof memo under any
// other axiom-set identity.  Result is 0 (proved, Steps carry the
// machine-checkable derivation) or 1 (not proved, Steps empty); exhausted
// search artifacts are never persisted.
type ArtifactGoal struct {
	Sig     int
	Form    uint8
	Result  uint8
	X, Y    int
	Theorem string
	Steps   []ArtifactStep
}

// Artifact is a decoded automata artifact.  Loaded instances may be backed
// by an mmap; Close releases the mapping, after which every DFA handed out
// by Preseed is invalid — close only at process shutdown, or never.
type Artifact struct {
	Alphabets [][]string
	Exprs     []string
	DFAs      []ArtifactDFA
	Ops       []ArtifactOp
	// Sigs are the axiom-set fingerprints (axiom.Set.Key renderings) the
	// goal verdicts below were proved under; Goals are the engine proof
	// memo's persisted definitive verdicts, each scoped to one fingerprint.
	Sigs  []string
	Goals []ArtifactGoal
	// AxiomSets are the full axiom sets the artifact was compiled under,
	// names and declaration order included; loaders reconstruct them to
	// pre-build engines at boot.
	AxiomSets []ArtifactAxiomSet
	// Replays are the replay-mode workloads the artifact was compiled from,
	// for boot-time self-warming of the serving request path.
	Replays []ArtifactReplay

	mapping []byte // non-nil when trans tables alias an mmap

	prepOnce sync.Once
	prepped  *artifactPrep
}

// artifactPrep is the process-local re-interning of an artifact's symbol
// tables: alphabets and expression IDs.  Interned IDs are stable for the
// life of the process, so this is computed once per artifact — eagerly at
// load time on the boot path — and every Preseed (one per engine build)
// reuses it instead of re-parsing on a request's critical path.
type artifactPrep struct {
	alphas  []*Alphabet
	exprIDs []uint64 // 0 marks an expression that failed to re-parse
}

// prep returns the cached re-interning, computing it on first use.
func (a *Artifact) prep() *artifactPrep {
	a.prepOnce.Do(func() {
		p := &artifactPrep{
			alphas:  make([]*Alphabet, len(a.Alphabets)),
			exprIDs: make([]uint64, len(a.Exprs)),
		}
		for i, syms := range a.Alphabets {
			p.alphas[i] = NewAlphabet(syms...)
		}
		for i, s := range a.Exprs {
			var e pathexpr.Expr
			if s == (pathexpr.Empty{}).String() {
				// Parse has no syntax for the empty language; the canonical
				// rendering is handled directly.
				e = pathexpr.Empty{}
			} else {
				parsed, err := pathexpr.Parse(s)
				if err != nil {
					continue // exprIDs[i] stays 0: entries using it are skipped
				}
				e = parsed
			}
			p.exprIDs[i] = pathexpr.InternID(e)
		}
		a.prepped = p
	})
	return a.prepped
}

// PreparedExpr returns the re-parsed, re-interned expression at index i of
// the artifact's expression table, or false for an out-of-range index or an
// entry whose canonical string failed to parse (loaders skip entries built
// on it).
func (a *Artifact) PreparedExpr(i int) (pathexpr.Expr, bool) {
	p := a.prep()
	if i < 0 || i >= len(p.exprIDs) || p.exprIDs[i] == 0 {
		return nil, false
	}
	n := pathexpr.LookupID(p.exprIDs[i])
	if n == nil {
		return nil, false
	}
	return n.Expr(), true
}

// Close unmaps an mmap-backed artifact.  No-op for artifacts decoded into
// heap memory.
func (a *Artifact) Close() error {
	if a.mapping == nil {
		return nil
	}
	m := a.mapping
	a.mapping = nil
	return syscall.Munmap(m)
}

// Mapped reports whether the artifact's tables alias an mmap.
func (a *Artifact) Mapped() bool { return a.mapping != nil }

// hostLittleEndian reports the byte order of this process.  Aliasing i32
// tables straight off the file is only sound when host order matches the
// little-endian file order; otherwise LoadArtifact falls back to copying.
func hostLittleEndian() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}

// Snapshot captures the cache's current working set — every compiled DFA
// and memoized boolean decision — as an Artifact, in deterministic order.
// Entries whose alphabet or expression identity cannot be reversed to a
// serializable form (possible only if they were interned by another
// interner) are skipped.
func (c *SharedCache) Snapshot() *Artifact {
	type dfaEnt struct {
		alphaKey string
		exprStr  string
		d        *DFA
	}
	type opEnt struct {
		op       byte
		val      bool
		alphaKey string
		x, y     string
	}
	var dents []dfaEnt
	var oents []opEnt
	exprStr := func(id uint64) (string, bool) {
		n := pathexpr.LookupID(id)
		if n == nil {
			return "", false
		}
		return n.String(), true
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		for key, d := range sh.dfas {
			ak, ok1 := alphabetKeyByID(key.alpha)
			es, ok2 := exprStr(key.expr)
			if ok1 && ok2 {
				dents = append(dents, dfaEnt{alphaKey: ak, exprStr: es, d: d})
			}
		}
		for key, v := range sh.ops {
			ak, ok1 := alphabetKeyByID(key.alpha)
			xs, ok2 := exprStr(key.x)
			ys, ok3 := exprStr(key.y)
			if ok1 && ok2 && ok3 {
				oents = append(oents, opEnt{op: key.op, val: v, alphaKey: ak, x: xs, y: ys})
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(dents, func(i, j int) bool {
		if dents[i].alphaKey != dents[j].alphaKey {
			return dents[i].alphaKey < dents[j].alphaKey
		}
		return dents[i].exprStr < dents[j].exprStr
	})
	sort.Slice(oents, func(i, j int) bool {
		a, b := oents[i], oents[j]
		if a.op != b.op {
			return a.op < b.op
		}
		if a.alphaKey != b.alphaKey {
			return a.alphaKey < b.alphaKey
		}
		if a.x != b.x {
			return a.x < b.x
		}
		return a.y < b.y
	})

	art := &Artifact{}
	alphaIdx := make(map[string]int)
	internAlpha := func(key string) int {
		if i, ok := alphaIdx[key]; ok {
			return i
		}
		i := len(art.Alphabets)
		alphaIdx[key] = i
		var syms []string
		if key != "" {
			syms = strings.Split(key, " ")
		}
		art.Alphabets = append(art.Alphabets, syms)
		return i
	}
	exprIdx := make(map[string]int)
	internExpr := func(s string) int {
		if i, ok := exprIdx[s]; ok {
			return i
		}
		i := len(art.Exprs)
		exprIdx[s] = i
		art.Exprs = append(art.Exprs, s)
		return i
	}
	for _, e := range dents {
		art.DFAs = append(art.DFAs, ArtifactDFA{
			Alpha:  internAlpha(e.alphaKey),
			Expr:   internExpr(e.exprStr),
			Accept: e.d.accept,
			Trans:  e.d.trans,
		})
	}
	for _, e := range oents {
		art.Ops = append(art.Ops, ArtifactOp{
			Op:    e.op,
			Value: e.val,
			Alpha: internAlpha(e.alphaKey),
			X:     internExpr(e.x),
			Y:     internExpr(e.y),
		})
	}
	return art
}

// payload serializes the artifact body (everything after the header).
func (a *Artifact) payload() ([]byte, error) {
	var buf []byte
	u32 := func(v int) {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
	}
	str := func(s string) {
		u32(len(s))
		buf = append(buf, s...)
	}
	u32(len(a.Alphabets))
	for _, syms := range a.Alphabets {
		u32(len(syms))
		for _, s := range syms {
			str(s)
		}
	}
	u32(len(a.Exprs))
	for _, s := range a.Exprs {
		str(s)
	}
	u32(len(a.DFAs))
	for _, d := range a.DFAs {
		if d.Alpha < 0 || d.Alpha >= len(a.Alphabets) || d.Expr < 0 || d.Expr >= len(a.Exprs) {
			return nil, fmt.Errorf("artifact: DFA entry references out-of-range table index")
		}
		k := len(a.Alphabets[d.Alpha])
		if len(d.Trans) != len(d.Accept)*k {
			return nil, fmt.Errorf("artifact: DFA entry has %d transitions for %d states over %d symbols", len(d.Trans), len(d.Accept), k)
		}
		u32(d.Alpha)
		u32(d.Expr)
		u32(len(d.Accept))
		u32(k)
		for _, acc := range d.Accept {
			b := byte(0)
			if acc {
				b = 1
			}
			buf = append(buf, b)
		}
		// The header is 24 bytes (a multiple of 4), so aligning the offset
		// within the payload aligns the table within the file.
		for len(buf)%4 != 0 {
			buf = append(buf, 0)
		}
		for _, t := range d.Trans {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(t))
		}
	}
	u32(len(a.Ops))
	for _, op := range a.Ops {
		v := byte(0)
		if op.Value {
			v = 1
		}
		buf = append(buf, op.Op, v, 0, 0)
		u32(op.Alpha)
		u32(op.X)
		u32(op.Y)
	}
	u32(len(a.Sigs))
	for _, s := range a.Sigs {
		str(s)
	}
	u32(len(a.Goals))
	for _, g := range a.Goals {
		if g.Sig < 0 || g.Sig >= len(a.Sigs) || g.X < 0 || g.X >= len(a.Exprs) || g.Y < 0 || g.Y >= len(a.Exprs) {
			return nil, fmt.Errorf("artifact: goal entry references out-of-range table index")
		}
		if g.Result > 1 {
			return nil, fmt.Errorf("artifact: goal entry has non-definitive result %d", g.Result)
		}
		u32(g.Sig)
		u32(g.X)
		u32(g.Y)
		buf = append(buf, g.Form, g.Result, 0, 0)
		str(g.Theorem)
		u32(len(g.Steps))
		for _, st := range g.Steps {
			if st.X < 0 || st.X >= len(a.Exprs) || st.Y < 0 || st.Y >= len(a.Exprs) {
				return nil, fmt.Errorf("artifact: proof step references out-of-range expression index")
			}
			b := func(v bool) byte {
				if v {
					return 1
				}
				return 0
			}
			buf = append(buf, st.Rule, st.Form, b(st.AltOnLeft), b(st.StarOnLeft))
			u32(st.X)
			u32(st.Y)
			u32(int(st.SuffixI))
			u32(int(st.SuffixJ))
			u32(int(st.AltIndex))
			u32(st.Kids)
			str(st.By)
			str(st.ByT1)
			str(st.ByT2)
			str(st.Note)
		}
	}
	u32(len(a.AxiomSets))
	for _, set := range a.AxiomSets {
		str(set.Name)
		u32(len(set.Axioms))
		for _, ax := range set.Axioms {
			if ax.RE1 < 0 || ax.RE1 >= len(a.Exprs) || ax.RE2 < 0 || ax.RE2 >= len(a.Exprs) {
				return nil, fmt.Errorf("artifact: axiom entry references out-of-range expression index")
			}
			buf = append(buf, ax.Form, 0, 0, 0)
			u32(ax.RE1)
			u32(ax.RE2)
			str(ax.Name)
		}
	}
	u32(len(a.Replays))
	for _, rp := range a.Replays {
		str(rp.Program)
		str(rp.Fn)
		u32(len(rp.Queries))
		for _, q := range rp.Queries {
			str(q)
		}
	}
	return buf, nil
}

// WriteTo serializes the artifact with header and checksum.
func (a *Artifact) WriteTo(w io.Writer) (int64, error) {
	payload, err := a.payload()
	if err != nil {
		return 0, err
	}
	h := fnv.New64a()
	h.Write(payload)
	hdr := make([]byte, 24)
	copy(hdr, artifactMagic[:])
	binary.LittleEndian.PutUint32(hdr[4:8], ArtifactVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(len(payload)))
	binary.LittleEndian.PutUint64(hdr[16:24], h.Sum64())
	n1, err := w.Write(hdr)
	if err != nil {
		return int64(n1), err
	}
	n2, err := w.Write(payload)
	return int64(n1) + int64(n2), err
}

// Save writes the artifact to path atomically (temp file + rename).
func (a *Artifact) Save(path string) error {
	tmp, err := os.CreateTemp(pathDir(path), ".aptc-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := a.WriteTo(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func pathDir(path string) string {
	i := strings.LastIndexByte(path, '/')
	if i < 0 {
		return "."
	}
	return path[:i]
}

// artifactReader walks a payload with bounds checking; any overrun marks
// the reader corrupt and subsequent reads return zero values.
type artifactReader struct {
	buf []byte
	off int
	err error
}

func (r *artifactReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("artifact: truncated or corrupt payload reading %s at offset %d", what, r.off)
	}
}

func (r *artifactReader) u32(what string) int {
	if r.err != nil {
		return 0
	}
	if r.off+4 > len(r.buf) {
		r.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return int(v)
}

func (r *artifactReader) bytes(n int, what string) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.buf) {
		r.fail(what)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *artifactReader) str(what string) string {
	n := r.u32(what)
	return string(r.bytes(n, what))
}

// maxArtifactCount bounds each table's declared element count before any
// allocation: a corrupt count must produce a clean error, not an OOM.
const maxArtifactCount = 1 << 24

func (r *artifactReader) count(what string) int {
	n := r.u32(what)
	if n > maxArtifactCount {
		r.fail(what + " count")
		return 0
	}
	return n
}

// decodeArtifact parses a payload.  When alias is true (mmap path on a
// little-endian host) transition tables alias buf; otherwise they are
// copied out of it.
func decodeArtifact(buf []byte, alias bool) (*Artifact, error) {
	r := &artifactReader{buf: buf}
	art := &Artifact{}
	nAlpha := r.count("alphabet")
	for i := 0; i < nAlpha && r.err == nil; i++ {
		nsyms := r.count("alphabet symbols")
		syms := make([]string, 0, nsyms)
		for j := 0; j < nsyms && r.err == nil; j++ {
			syms = append(syms, r.str("alphabet symbol"))
		}
		art.Alphabets = append(art.Alphabets, syms)
	}
	nExpr := r.count("expression")
	for i := 0; i < nExpr && r.err == nil; i++ {
		art.Exprs = append(art.Exprs, r.str("expression"))
	}
	nDFA := r.count("DFA")
	for i := 0; i < nDFA && r.err == nil; i++ {
		alpha := r.u32("DFA alphabet index")
		expr := r.u32("DFA expression index")
		states := r.count("DFA states")
		k := r.u32("DFA symbol count")
		if r.err == nil && (alpha >= len(art.Alphabets) || expr >= len(art.Exprs)) {
			r.fail("DFA table index")
		}
		if r.err == nil && k != len(art.Alphabets[alpha]) {
			r.fail("DFA symbol count")
		}
		accRaw := r.bytes(states, "DFA accept flags")
		for r.off%4 != 0 && r.err == nil {
			r.bytes(1, "DFA padding")
		}
		transRaw := r.bytes(states*k*4, "DFA transition table")
		if r.err != nil {
			break
		}
		accept := make([]bool, states)
		for s, b := range accRaw {
			if b > 1 {
				r.fail("DFA accept flag")
				break
			}
			accept[s] = b == 1
		}
		var trans []int32
		if states*k > 0 {
			if alias && uintptr(unsafe.Pointer(&transRaw[0]))%4 == 0 {
				trans = unsafe.Slice((*int32)(unsafe.Pointer(&transRaw[0])), states*k)
			} else {
				trans = make([]int32, states*k)
				for t := range trans {
					trans[t] = int32(binary.LittleEndian.Uint32(transRaw[t*4:]))
				}
			}
		}
		for _, t := range trans {
			if t < 0 || int(t) >= states {
				r.fail("DFA transition target")
				break
			}
		}
		if r.err != nil {
			break
		}
		art.DFAs = append(art.DFAs, ArtifactDFA{Alpha: alpha, Expr: expr, Accept: accept, Trans: trans})
	}
	nOps := r.count("decision")
	for i := 0; i < nOps && r.err == nil; i++ {
		rec := r.bytes(4, "decision record")
		alpha := r.u32("decision alphabet index")
		x := r.u32("decision x index")
		y := r.u32("decision y index")
		if r.err != nil {
			break
		}
		op, val := rec[0], rec[1]
		if (op != 'i' && op != 'd' && op != 'e') || val > 1 {
			r.fail("decision opcode")
			break
		}
		if alpha >= len(art.Alphabets) || x >= len(art.Exprs) || y >= len(art.Exprs) {
			r.fail("decision table index")
			break
		}
		art.Ops = append(art.Ops, ArtifactOp{Op: op, Value: val == 1, Alpha: alpha, X: x, Y: y})
	}
	nSigs := r.count("axiom fingerprint")
	for i := 0; i < nSigs && r.err == nil; i++ {
		art.Sigs = append(art.Sigs, r.str("axiom fingerprint"))
	}
	nGoals := r.count("goal")
	for i := 0; i < nGoals && r.err == nil; i++ {
		sig := r.u32("goal fingerprint index")
		x := r.u32("goal x index")
		y := r.u32("goal y index")
		rec := r.bytes(4, "goal record")
		if r.err != nil {
			break
		}
		form, result := rec[0], rec[1]
		if result > 1 {
			r.fail("goal result")
			break
		}
		if sig >= len(art.Sigs) || x >= len(art.Exprs) || y >= len(art.Exprs) {
			r.fail("goal table index")
			break
		}
		theorem := r.str("goal theorem")
		nSteps := r.count("proof step")
		var steps []ArtifactStep
		kidsClaimed := 0
		for j := 0; j < nSteps && r.err == nil; j++ {
			srec := r.bytes(4, "proof step record")
			sx := r.u32("proof step x index")
			sy := r.u32("proof step y index")
			si := int32(r.u32("proof step suffix i"))
			sj := int32(r.u32("proof step suffix j"))
			ai := int32(r.u32("proof step alt index"))
			kids := r.count("proof step children")
			by := r.str("proof step fact")
			byT1 := r.str("proof step T1 fact")
			byT2 := r.str("proof step T2 fact")
			note := r.str("proof step note")
			if r.err != nil {
				break
			}
			if srec[2] > 1 || srec[3] > 1 {
				r.fail("proof step flag")
				break
			}
			if sx >= len(art.Exprs) || sy >= len(art.Exprs) {
				r.fail("proof step expression index")
				break
			}
			kidsClaimed += kids
			steps = append(steps, ArtifactStep{
				Rule: srec[0], Form: srec[1],
				AltOnLeft: srec[2] == 1, StarOnLeft: srec[3] == 1,
				X: sx, Y: sy,
				SuffixI: si, SuffixJ: sj, AltIndex: ai,
				Kids: kids,
				By:   by, ByT1: byT1, ByT2: byT2, Note: note,
			})
		}
		if r.err != nil {
			break
		}
		// A pre-order flattening of one tree has exactly one root: every
		// node but the first is someone's child.
		if len(steps) > 0 && kidsClaimed != len(steps)-1 {
			r.fail("proof tree shape")
			break
		}
		art.Goals = append(art.Goals, ArtifactGoal{
			Sig: sig, Form: form, Result: result, X: x, Y: y,
			Theorem: theorem, Steps: steps,
		})
	}
	nSets := r.count("axiom set")
	for i := 0; i < nSets && r.err == nil; i++ {
		setName := r.str("axiom set name")
		nAx := r.count("axiom")
		set := ArtifactAxiomSet{Name: setName}
		for j := 0; j < nAx && r.err == nil; j++ {
			arec := r.bytes(4, "axiom record")
			re1 := r.u32("axiom RE1 index")
			re2 := r.u32("axiom RE2 index")
			axName := r.str("axiom name")
			if r.err != nil {
				break
			}
			if re1 >= len(art.Exprs) || re2 >= len(art.Exprs) {
				r.fail("axiom expression index")
				break
			}
			set.Axioms = append(set.Axioms, ArtifactAxiom{Name: axName, Form: arec[0], RE1: re1, RE2: re2})
		}
		if r.err != nil {
			break
		}
		art.AxiomSets = append(art.AxiomSets, set)
	}
	nReplays := r.count("replay workload")
	for i := 0; i < nReplays && r.err == nil; i++ {
		rp := ArtifactReplay{
			Program: r.str("replay program"),
			Fn:      r.str("replay function"),
		}
		nQ := r.count("replay query")
		for j := 0; j < nQ && r.err == nil; j++ {
			rp.Queries = append(rp.Queries, r.str("replay query"))
		}
		if r.err != nil {
			break
		}
		art.Replays = append(art.Replays, rp)
	}
	if r.err == nil && r.off != len(buf) {
		r.fail("trailing bytes")
	}
	if r.err != nil {
		return nil, r.err
	}
	return art, nil
}

// checkHeader validates magic, version, payload length, and checksum, and
// returns the payload slice of data.
func checkHeader(data []byte) ([]byte, error) {
	if len(data) < 24 {
		return nil, fmt.Errorf("artifact: file too short for header (%d bytes)", len(data))
	}
	if [4]byte(data[0:4]) != artifactMagic {
		return nil, fmt.Errorf("artifact: bad magic %q", data[0:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != ArtifactVersion {
		return nil, fmt.Errorf("artifact: format version %d, this build reads version %d", v, ArtifactVersion)
	}
	plen := binary.LittleEndian.Uint64(data[8:16])
	if plen != uint64(len(data)-24) {
		return nil, fmt.Errorf("artifact: header claims %d payload bytes, file holds %d", plen, len(data)-24)
	}
	payload := data[24:]
	h := fnv.New64a()
	h.Write(payload)
	if sum := binary.LittleEndian.Uint64(data[16:24]); sum != h.Sum64() {
		return nil, fmt.Errorf("artifact: checksum mismatch (header %#x, payload %#x)", sum, h.Sum64())
	}
	return payload, nil
}

// DecodeArtifact parses a fully in-memory artifact image (header included),
// copying all tables onto the heap.
func DecodeArtifact(data []byte) (*Artifact, error) {
	payload, err := checkHeader(data)
	if err != nil {
		return nil, err
	}
	return decodeArtifact(payload, false)
}

// ReadArtifact reads and decodes an artifact file into heap memory.
func ReadArtifact(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	art, err := DecodeArtifact(data)
	if err != nil {
		return nil, err
	}
	art.prep()
	return art, nil
}

// LoadArtifact maps the artifact file read-only and decodes it, aliasing
// transition tables directly over the mapping when the host is
// little-endian (zero table copies).  On any mmap failure, or on a
// big-endian host, it falls back to ReadArtifact.  The returned artifact
// owns the mapping; see Artifact.Close.
func LoadArtifact(path string) (*Artifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := int(st.Size())
	if size < 24 {
		return nil, fmt.Errorf("artifact: file too short for header (%d bytes)", size)
	}
	if !hostLittleEndian() {
		return ReadArtifact(path)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return ReadArtifact(path)
	}
	payload, err := checkHeader(data)
	if err != nil {
		syscall.Munmap(data)
		return nil, err
	}
	art, err := decodeArtifact(payload, true)
	if err != nil {
		syscall.Munmap(data)
		return nil, err
	}
	art.mapping = data
	art.prep()
	return art, nil
}

// Preseed inserts the artifact's DFAs and decisions into the cache,
// skipping keys already present and entries whose expressions fail to
// re-parse (those fall back to cold compilation — degraded startup, never
// a wrong verdict).  It returns the number of DFAs and decisions inserted.
func (c *SharedCache) Preseed(art *Artifact) (dfas, ops int) {
	p := art.prep()
	alphas, exprIDs := p.alphas, p.exprIDs
	for _, ent := range art.DFAs {
		a := alphas[ent.Alpha]
		if exprIDs[ent.Expr] == 0 || len(ent.Trans) != len(ent.Accept)*a.Size() {
			continue
		}
		key := dfaKey{alpha: a.ID(), expr: exprIDs[ent.Expr]}
		d := &DFA{alphabet: a, trans: ent.Trans, accept: ent.Accept}
		sh := c.shardAt(pathexpr.Mix64(pathexpr.Mix64(pathexpr.MixInit, key.alpha), key.expr))
		sh.mu.Lock()
		if _, ok := sh.dfas[key]; !ok {
			sh.dfas[key] = d
			dfas++
		}
		sh.mu.Unlock()
	}
	for _, ent := range art.Ops {
		a := alphas[ent.Alpha]
		if exprIDs[ent.X] == 0 || exprIDs[ent.Y] == 0 {
			continue
		}
		key := opsKey{op: ent.Op, alpha: a.ID(), x: exprIDs[ent.X], y: exprIDs[ent.Y]}
		h := pathexpr.Mix64(pathexpr.Mix64(pathexpr.Mix64(pathexpr.Mix64(pathexpr.MixInit, uint64(key.op)), key.alpha), key.x), key.y)
		sh := c.shardAt(h)
		sh.mu.Lock()
		if _, ok := sh.ops[key]; !ok {
			sh.ops[key] = ent.Value
			ops++
		}
		sh.mu.Unlock()
	}
	return dfas, ops
}
