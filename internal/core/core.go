// Package core implements APT's dependence test (paper §4.1, "deptest"): the
// public front door that combines the cheap structural checks with the
// theorem-proving core in package prover.
//
// Given two statement executions
//
//	S:  ... p->f ...        with p = H_p.Path_p
//	T:  ... q->g ...        with q = H_q.Path_q
//
// where S precedes T and at least one of the accesses is a write, deptest
// answers:
//
//	No    — provably no data dependence from S to T
//	Yes   — provably a data dependence (the accesses definitely collide)
//	Maybe — neither could be proved
package core

import (
	"fmt"

	"repro/internal/axiom"
	"repro/internal/guard"
	"repro/internal/pathexpr"
	"repro/internal/prover"
	"repro/internal/telemetry"
)

// Result is the three-valued answer of the dependence test.
type Result int

// Dependence test answers.
const (
	// Maybe: a dependence could not be ruled out (the conservative answer).
	Maybe Result = iota
	// No: provably independent.
	No
	// Yes: provably dependent.
	Yes
)

func (r Result) String() string {
	switch r {
	case No:
		return "No"
	case Yes:
		return "Yes"
	case Maybe:
		return "Maybe"
	}
	return "invalid"
}

// DepKind classifies a dependence by the read/write pattern of S and T.
type DepKind int

// Dependence kinds.
const (
	// NoAccessConflict: neither access writes; no data dependence of any
	// kind can exist regardless of aliasing.
	NoAccessConflict DepKind = iota
	// Flow: S writes, T reads (true dependence).
	Flow
	// Anti: S reads, T writes.
	Anti
	// Output: both write.
	Output
)

func (k DepKind) String() string {
	switch k {
	case Flow:
		return "flow"
	case Anti:
		return "anti"
	case Output:
		return "output"
	case NoAccessConflict:
		return "none (read-read)"
	}
	return "invalid"
}

// HandleRelation states what is known about the two anchor handles.
type HandleRelation int

// Handle relations.
const (
	// SameHandle: H_p and H_q denote the same vertex (the common-handle case
	// the paper develops in detail).
	SameHandle HandleRelation = iota
	// DistinctHandles: H_p and H_q are known to denote different vertices.
	DistinctHandles
	// UnknownHandles: nothing is known; a No answer then requires proofs
	// for both the same-vertex and distinct-vertex cases.
	UnknownHandles
)

// Access describes one side of a dependence query: the access p->Field where
// p is reached by Handle.Path.
type Access struct {
	// Handle names the anchor vertex (e.g. "_hroot").
	Handle string
	// Path is the access path from the handle to p.
	Path pathexpr.Expr
	// Field is the accessed field of *p.
	Field string
	// Type is the structure type of *p; "" when unknown.  Accesses through
	// pointers of different structure types cannot collide (the paper's
	// first check, valid under ANSI C assumptions).
	Type string
	// IsWrite reports whether the access stores to p->Field.
	IsWrite bool
}

func (a Access) String() string {
	op := "read"
	if a.IsWrite {
		op = "write"
	}
	return fmt.Sprintf("%s %s.%s->%s", op, a.Handle, a.Path, a.Field)
}

// Query is one dependence question: does T depend on S?
type Query struct {
	Axioms *axiom.Set
	S, T   Access
	// Relation describes the two handles when they differ; ignored when the
	// handle names are equal.
	Relation HandleRelation
	// FieldsOverlap optionally overrides the may-overlap test between the
	// two accessed data fields; nil means fields overlap iff their names are
	// equal (distinct fields of a struct occupy disjoint memory).
	FieldsOverlap func(f, g string) bool
	// SGuards and TGuards are the dominating branch predicates of the two
	// accesses (nil = unconstrained).  The SAT-lite path-sensitivity tier
	// answers No when the sets contain the same predicate with opposite
	// signs (the accesses lie on mutually exclusive paths) or when a guard
	// is refuted by the prover (the guarded access is dead code).  The
	// caller is responsible for only passing guards whose truth values are
	// stable across the two execution instances being compared (see
	// analysis.Access.Guards vs InvGuards).
	SGuards, TGuards guard.Set
}

// Outcome reports the answer with its justification.
type Outcome struct {
	Result Result
	Kind   DepKind
	// Reason is a one-line human-readable justification.
	Reason string
	// Proof is the disjointness derivation backing a No from the theorem
	// prover, or the failed attempt backing a Maybe; nil when the answer
	// came from a structural check.
	Proof *prover.Proof
	// AuxProof is the distinct-handle proof when Relation is UnknownHandles
	// (a No then needs both cases).
	AuxProof *prover.Proof
	// GuardUpgraded marks a definite answer produced by the
	// path-sensitivity tier (contradictory or infeasible guards) — a
	// verdict the guard-free test could have left at Maybe.
	GuardUpgraded bool
}

// ProofMemo shares prover verdicts across queries — and, when its
// implementation is concurrency-safe, across testers.  Prove either returns
// a memoized proof for the goal (keyed however the implementation likes;
// the engine canonicalizes symmetric goals so ⟨h.P, h.Q⟩ and ⟨h.Q, h.P⟩
// share an entry) or calls compute and remembers its result.  axiomID is
// the axiom.Set identity (see axiom.Set.ID) of the window the goal is
// judged under: proofs are never valid across different axiom sets.
type ProofMemo interface {
	Prove(axiomID uint64, form prover.Form, x, y pathexpr.Expr, compute func() *prover.Proof) *prover.Proof
}

// Tester runs dependence queries against a fixed default axiom set, reusing
// provers (and their caches) across queries.  A query carrying its own
// Axioms (e.g. a §3.4 validity window that dropped some axioms) is answered
// with a prover for that set.  Not safe for concurrent use.
type Tester struct {
	prover *prover.Prover
	axioms *axiom.Set
	axID   uint64
	opts   prover.Options
	memo   ProofMemo
	// provers caches per-window provers by axiom-set identity.
	provers map[uint64]*prover.Prover
	// VerifyProofs re-validates every prover-backed No with the independent
	// proof checker before trusting it; a derivation that fails to check
	// degrades the answer to Maybe.  Defense in depth for the one failure
	// mode a dependence test must never have.
	VerifyProofs bool
}

// NewTester builds a Tester for the axiom set.
func NewTester(axioms *axiom.Set, opts prover.Options) *Tester {
	p := prover.New(axioms, opts)
	id := axioms.ID()
	return &Tester{
		prover:  p,
		axioms:  axioms,
		axID:    id,
		opts:    opts,
		provers: map[uint64]*prover.Prover{id: p},
	}
}

// SetProofMemo routes the tester's theorem-proving calls through a
// cross-query proof memo (nil, the default, disables sharing).  Returns the
// tester for chaining.
func (t *Tester) SetProofMemo(m ProofMemo) *Tester {
	t.memo = m
	return t
}

// proverFor returns the prover for the query's axiom window together with
// the window's identity (the proof-memo namespace).
func (t *Tester) proverFor(q Query) (*prover.Prover, uint64) {
	if q.Axioms == nil {
		return t.prover, t.axID
	}
	id := q.Axioms.ID()
	if p, ok := t.provers[id]; ok {
		return p, id
	}
	p := prover.New(q.Axioms, t.opts)
	t.provers[id] = p
	return p, id
}

// Prover exposes the underlying theorem prover (for proof rendering and for
// clients like the baselines that certify structure properties).
func (t *Tester) Prover() *prover.Prover { return t.prover }

// Axioms returns the tester's axiom set.
func (t *Tester) Axioms() *axiom.Set { return t.axioms }

// DepTest answers a dependence query, following §4.1:
//
//  1. different structure types        → No
//  2. non-overlapping data fields      → No
//  3. neither access writes            → No (read-read)
//  4. identical single-vertex paths    → Yes
//  5. proveDisj succeeds               → No
//  6. otherwise                        → Maybe
func (t *Tester) DepTest(q Query) Outcome {
	tel := t.opts.Telemetry
	if !tel.Enabled() {
		return t.depTest(q)
	}
	sp := tel.Begin("core.deptest")
	out := t.depTest(q)
	tel.Counter("core.deptests").Add(1)
	tel.Counter("core.answer_" + out.Result.String()).Add(1)
	if out.GuardUpgraded {
		tel.Counter("core.guard_upgrades").Add(1)
	}
	sp.End(
		telemetry.String("s", q.S.String()),
		telemetry.String("t", q.T.String()),
		telemetry.String("result", out.Result.String()),
		telemetry.String("kind", out.Kind.String()),
		telemetry.String("reason", out.Reason))
	return out
}

func (t *Tester) depTest(q Query) Outcome {
	kind := Classify(q.S, q.T)
	out := Outcome{Kind: kind}
	prv, axID := t.proverFor(q)
	prove := func(form prover.Form, x, y pathexpr.Expr) *prover.Proof {
		if t.memo == nil {
			return prv.Prove(form, x, y)
		}
		return t.memo.Prove(axID, form, x, y, func() *prover.Proof {
			return prv.Prove(form, x, y)
		})
	}

	if kind == NoAccessConflict {
		out.Result = No
		out.Reason = "neither access writes; no data dependence possible"
		return out
	}
	if q.S.Type != "" && q.T.Type != "" && q.S.Type != q.T.Type {
		out.Result = No
		out.Reason = fmt.Sprintf("pointer types differ (%s vs %s)", q.S.Type, q.T.Type)
		return out
	}
	overlap := q.FieldsOverlap
	if overlap == nil {
		overlap = func(f, g string) bool { return f == g }
	}
	if !overlap(q.S.Field, q.T.Field) {
		out.Result = No
		out.Reason = fmt.Sprintf("fields %s and %s do not overlap", q.S.Field, q.T.Field)
		return out
	}

	verified := func(proofs ...*prover.Proof) bool {
		if !t.VerifyProofs {
			return true
		}
		for _, pf := range proofs {
			if err := prv.CheckProof(pf); err != nil {
				out.Reason = fmt.Sprintf("derivation failed independent checking (%v); degraded to Maybe", err)
				return false
			}
		}
		return true
	}

	// Path-sensitivity tier 1 (syntactic): the two guard sets contain one
	// predicate with opposite signs, so the accesses lie on mutually
	// exclusive control-flow paths — no execution performs both.  Checked
	// before the aliasing tiers because it wins even when the access paths
	// are identical.
	if rs, rt, ok := guard.Conflict(q.SGuards, q.TGuards); ok {
		out.Result = No
		out.GuardUpgraded = true
		out.Reason = fmt.Sprintf(
			"contradictory guards: S executes only under %s, T only under %s; the accesses lie on mutually exclusive paths",
			rs, rt)
		return out
	}

	// Path-sensitivity tier 2 (prover-backed): a pointer-comparison guard
	// refuted by the aliasing axioms makes its access dead code.
	for _, side := range [2]struct {
		name string
		set  guard.Set
	}{{"S", q.SGuards}, {"T", q.TGuards}} {
		ref, why, pf, ok := t.refuteGuard(side.set, prv, prove, verified)
		if !ok {
			continue
		}
		out.Result = No
		out.GuardUpgraded = true
		out.Proof = pf
		out.Reason = fmt.Sprintf("guard %s on %s is infeasible: %s; the guarded access never executes",
			ref, side.name, why)
		return out
	}

	rel := q.Relation
	if q.S.Handle == q.T.Handle && q.S.Handle != "" {
		rel = SameHandle
	}

	// Definite dependence: same handle, and the paths provably denote the
	// same single vertex (identical singleton paths, or words congruent
	// under the equality axioms).
	if rel == SameHandle && prv.DefinitelyAliased(q.S.Path, q.T.Path) {
		out.Result = Yes
		out.Reason = "access paths denote the same vertex"
		return out
	}

	switch rel {
	case SameHandle:
		proof := prove(prover.SameSrc, q.S.Path, q.T.Path)
		out.Proof = proof
		if proof.Result == prover.Proved && verified(proof) {
			out.Result = No
			out.Reason = "disjointness theorem proved (common handle)"
			return out
		}
	case DistinctHandles:
		proof := prove(prover.DiffSrc, q.S.Path, q.T.Path)
		out.Proof = proof
		if proof.Result == prover.Proved && verified(proof) {
			out.Result = No
			out.Reason = "disjointness theorem proved (distinct handles)"
			return out
		}
	case UnknownHandles:
		same := prove(prover.SameSrc, q.S.Path, q.T.Path)
		diff := prove(prover.DiffSrc, q.S.Path, q.T.Path)
		out.Proof, out.AuxProof = same, diff
		if same.Result == prover.Proved && diff.Result == prover.Proved && verified(same, diff) {
			out.Result = No
			out.Reason = "disjointness proved for both same- and distinct-handle cases"
			return out
		}
	}

	out.Result = Maybe
	if out.Reason == "" {
		out.Reason = "no proof found; dependence assumed"
	}
	return out
}

// refuteGuard looks for a guard reference in s whose pointer-comparison
// fact the prover refutes under the query's axiom window:
//
//   - a positive "x == y" whose branch-time paths are provably disjoint
//     (x and y could not have denoted the same vertex), or
//   - a negated "x == y" whose branch-time paths definitely alias (x and y
//     necessarily denoted the same vertex).
//
// Sound because the fact's paths were snapshotted when the comparison was
// evaluated, and the window's axioms are a subset of the axioms valid at
// that (quiescent) point.
func (t *Tester) refuteGuard(
	s guard.Set,
	prv *prover.Prover,
	prove func(form prover.Form, x, y pathexpr.Expr) *prover.Proof,
	verified func(...*prover.Proof) bool,
) (guard.Ref, string, *prover.Proof, bool) {
	for _, r := range s {
		eq := r.P.Eq()
		if eq == nil {
			continue
		}
		if !r.Neg {
			pf := prove(prover.SameSrc, eq.XPath, eq.YPath)
			if pf.Result == prover.Proved && verified(pf) {
				why := fmt.Sprintf("%s and %s provably denote distinct vertices (%s.%s <> %s.%s)",
					eq.X, eq.Y, eq.Handle, eq.XPath, eq.Handle, eq.YPath)
				return r, why, pf, true
			}
		} else if prv.DefinitelyAliased(eq.XPath, eq.YPath) {
			why := fmt.Sprintf("%s and %s provably denote the same vertex (%s.%s = %s.%s)",
				eq.X, eq.Y, eq.Handle, eq.XPath, eq.Handle, eq.YPath)
			return r, why, nil, true
		}
	}
	return guard.Ref{}, "", nil, false
}

// Classify reports the dependence kind of an access pair from its
// read/write pattern alone (no aliasing reasoning).
func Classify(s, t Access) DepKind {
	switch {
	case s.IsWrite && t.IsWrite:
		return Output
	case s.IsWrite:
		return Flow
	case t.IsWrite:
		return Anti
	default:
		return NoAccessConflict
	}
}

// LoopCarried builds the query for a loop-carried self-dependence of a
// statement whose per-iteration access path is body, anchored at a handle
// fixed before the loop, where the loop's induction pointer advances by inc
// each iteration (§5: iterations i < j access H.body and H.inc⁺body).
func LoopCarried(axioms *axiom.Set, handle string, inc, body pathexpr.Expr, field string, isWrite bool) Query {
	early := Access{Handle: handle, Path: body, Field: field, IsWrite: isWrite}
	late := Access{
		Handle:  handle,
		Path:    pathexpr.Cat(pathexpr.Rep1(inc), body),
		Field:   field,
		IsWrite: isWrite,
	}
	return Query{Axioms: axioms, S: early, T: late}
}
