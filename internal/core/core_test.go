package core

import (
	"strings"
	"testing"

	"repro/internal/axiom"
	"repro/internal/pathexpr"
	"repro/internal/prover"
)

func llTester() *Tester {
	return NewTester(axiom.LeafLinkedBinaryTree(), prover.Options{})
}

func access(handle, path, field string, write bool) Access {
	return Access{Handle: handle, Path: pathexpr.MustParse(path), Field: field, IsWrite: write}
}

// TestSection33EndToEnd is the paper's worked query: S writes p->d with
// p = _hroot.LLN, T reads q->d with q = _hroot.LRN; deptest must answer No.
func TestSection33EndToEnd(t *testing.T) {
	tr := llTester()
	out := tr.DepTest(Query{
		S: access("_hroot", "L.L.N", "d", true),
		T: access("_hroot", "L.R.N", "d", false),
	})
	if out.Result != No {
		t.Fatalf("§3.3 query = %v (%s), want No", out.Result, out.Reason)
	}
	if out.Kind != Flow {
		t.Errorf("kind = %v, want flow", out.Kind)
	}
	if out.Proof == nil || out.Proof.Result != prover.Proved {
		t.Error("No answer should carry a proof")
	}
}

func TestDefiniteYes(t *testing.T) {
	tr := llTester()
	out := tr.DepTest(Query{
		S: access("_h", "L.L.N", "d", true),
		T: access("_h", "L.L.N", "d", false),
	})
	if out.Result != Yes {
		t.Fatalf("identical singleton paths = %v, want Yes", out.Result)
	}
}

func TestMaybeOnConfluence(t *testing.T) {
	tr := llTester()
	out := tr.DepTest(Query{
		S: access("_h", "L.L.N.N", "d", true),
		T: access("_h", "L.R.N", "d", false),
	})
	if out.Result != Maybe {
		t.Fatalf("LLNN vs LRN = %v, want Maybe (they can collide)", out.Result)
	}
	if out.Proof == nil {
		t.Error("Maybe should carry the failed proof attempt")
	}
}

func TestTypeCheckShortCircuits(t *testing.T) {
	tr := llTester()
	s := access("_h", "L", "d", true)
	s.Type = "Tree"
	u := access("_h", "L", "d", true)
	u.Type = "List"
	out := tr.DepTest(Query{S: s, T: u})
	if out.Result != No || !strings.Contains(out.Reason, "types differ") {
		t.Fatalf("different types = %v (%s), want No", out.Result, out.Reason)
	}
	if out.Proof != nil {
		t.Error("structural No should not invoke the prover")
	}
}

func TestFieldOverlapCheck(t *testing.T) {
	tr := llTester()
	out := tr.DepTest(Query{
		S: access("_h", "L", "d1", true),
		T: access("_h", "L", "d2", true),
	})
	if out.Result != No || !strings.Contains(out.Reason, "do not overlap") {
		t.Fatalf("distinct fields = %v (%s), want No", out.Result, out.Reason)
	}

	// A union-style overlap override forces the aliasing question.
	out = tr.DepTest(Query{
		S:             access("_h", "L", "d1", true),
		T:             access("_h", "L", "d2", true),
		FieldsOverlap: func(f, g string) bool { return true },
	})
	if out.Result != Yes {
		t.Fatalf("overlapping fields on same vertex = %v, want Yes", out.Result)
	}
}

func TestReadReadIsNo(t *testing.T) {
	tr := llTester()
	out := tr.DepTest(Query{
		S: access("_h", "L.L.N", "d", false),
		T: access("_h", "L.L.N", "d", false),
	})
	if out.Result != No || out.Kind != NoAccessConflict {
		t.Fatalf("read-read = %v/%v, want No/none", out.Result, out.Kind)
	}
}

func TestKindClassification(t *testing.T) {
	tr := llTester()
	cases := []struct {
		sw, tw bool
		want   DepKind
	}{
		{true, false, Flow},
		{false, true, Anti},
		{true, true, Output},
	}
	for _, c := range cases {
		out := tr.DepTest(Query{
			S: access("_h", "L", "d", c.sw),
			T: access("_h", "R", "d", c.tw),
		})
		if out.Kind != c.want {
			t.Errorf("writes (%v,%v): kind %v, want %v", c.sw, c.tw, out.Kind, c.want)
		}
		if out.Result != No {
			t.Errorf("L vs R should be No, got %v", out.Result)
		}
	}
}

func TestDistinctHandles(t *testing.T) {
	tr := llTester()
	q := Query{
		S:        access("_hp", "N", "d", true),
		T:        access("_hq", "N", "d", true),
		Relation: DistinctHandles,
	}
	out := tr.DepTest(q)
	// ∀h<>k, h.N <> k.N is exactly A3.
	if out.Result != No {
		t.Fatalf("distinct handles N vs N = %v (%s), want No", out.Result, out.Reason)
	}
}

func TestUnknownHandlesNeedsBothProofs(t *testing.T) {
	tr := llTester()
	// L vs R: same-handle provable (A1), distinct-handle provable (A2) → No.
	out := tr.DepTest(Query{
		S:        access("_hp", "L", "d", true),
		T:        access("_hq", "R", "d", true),
		Relation: UnknownHandles,
	})
	if out.Result != No {
		t.Fatalf("unknown handles L vs R = %v, want No", out.Result)
	}
	if out.Proof == nil || out.AuxProof == nil {
		t.Error("unknown-handle No must carry both proofs")
	}

	// N vs N: distinct-handle provable (A3) but same-handle identical → Maybe.
	out = tr.DepTest(Query{
		S:        access("_hp", "N", "d", true),
		T:        access("_hq", "N", "d", true),
		Relation: UnknownHandles,
	})
	if out.Result != Maybe {
		t.Fatalf("unknown handles N vs N = %v, want Maybe", out.Result)
	}
}

// TestFigure1LoopCarried is Figure 1's right fragment: U: q->f = fun() with
// q advancing along link; the loop-carried output dependence is disproved by
// acyclic-list axioms and not disproved by circular-list axioms.
func TestFigure1LoopCarried(t *testing.T) {
	acyclic := NewTester(axiom.SinglyLinkedList("link"), prover.Options{})
	q := LoopCarried(acyclic.Axioms(), "_hq", pathexpr.MustParse("link"), pathexpr.Eps, "f", true)
	out := acyclic.DepTest(q)
	if out.Result != No {
		t.Fatalf("acyclic list loop = %v (%s), want No", out.Result, out.Reason)
	}
	if out.Kind != Output {
		t.Errorf("kind = %v, want output", out.Kind)
	}

	circular := NewTester(axiom.CircularList("link"), prover.Options{})
	q2 := LoopCarried(circular.Axioms(), "_hq", pathexpr.MustParse("link"), pathexpr.Eps, "f", true)
	out2 := circular.DepTest(q2)
	if out2.Result != Maybe {
		t.Fatalf("circular list loop = %v, want Maybe", out2.Result)
	}
}

// TestTheoremTEndToEnd is §5's loop L1 query through the deptest API.
func TestTheoremTEndToEnd(t *testing.T) {
	tr := NewTester(axiom.SparseMatrixCore(), prover.Options{})
	q := LoopCarried(tr.Axioms(), "_hr",
		pathexpr.MustParse("nrowE"),
		pathexpr.MustParse("ncolE+"),
		"val", true)
	out := tr.DepTest(q)
	if out.Result != No {
		t.Fatalf("Theorem T via deptest = %v (%s), want No\n%s",
			out.Result, out.Reason, out.Proof.Render())
	}
}

func TestRingDefiniteYesThroughEquality(t *testing.T) {
	tr := NewTester(axiom.RingOf("next", 3), prover.Options{})
	out := tr.DepTest(Query{
		S: access("_h", "next", "v", true),
		T: access("_h", "next.next.next.next", "v", false),
	})
	if out.Result != Yes {
		t.Fatalf("next vs next⁴ in 3-ring = %v, want Yes", out.Result)
	}
}

func TestAccessString(t *testing.T) {
	a := access("_h", "L.L", "d", true)
	if !strings.Contains(a.String(), "write") || !strings.Contains(a.String(), "_h") {
		t.Errorf("Access.String() = %q", a)
	}
	for _, r := range []Result{No, Yes, Maybe} {
		if r.String() == "invalid" {
			t.Errorf("missing Result string for %d", int(r))
		}
	}
}

// TestVerifyProofsMode: with VerifyProofs on, every No is backed by an
// independently checked derivation, and answers are unchanged across the
// corpus.
func TestVerifyProofsMode(t *testing.T) {
	plain := llTester()
	verified := llTester()
	verified.VerifyProofs = true
	queries := []Query{
		{S: access("_h", "L.L.N", "d", true), T: access("_h", "L.R.N", "d", false)},
		{S: access("_h", "L.L.N.N", "d", true), T: access("_h", "L.R.N", "d", false)},
		{S: access("_h", "L", "d", true), T: access("_h", "R", "d", true)},
		{S: access("_hp", "N", "d", true), T: access("_hq", "N", "d", true), Relation: UnknownHandles},
		{S: access("_hp", "L", "d", true), T: access("_hq", "R", "d", true), Relation: UnknownHandles},
	}
	for i, q := range queries {
		a, b := plain.DepTest(q), verified.DepTest(q)
		if a.Result != b.Result {
			t.Errorf("query %d: plain %v, verified %v", i, a.Result, b.Result)
		}
	}
}
