package core

import (
	"math/rand"
	"testing"

	"repro/internal/axiom"
	"repro/internal/heap"
	"repro/internal/pathexpr"
	"repro/internal/prover"
)

// randWordPath draws a random word path over the fields.
func randWordPath(rng *rand.Rand, fields []string, maxLen int) pathexpr.Expr {
	n := rng.Intn(maxLen + 1)
	w := make([]string, n)
	for i := range w {
		w[i] = fields[rng.Intn(len(fields))]
	}
	return pathexpr.FromWord(w)
}

// TestPropertyYesAndNoAreExclusive: for random queries, deptest never
// contradicts itself — a query and its mirror (S and T swapped) agree,
// since data dependence existence is symmetric in the accessed locations.
func TestPropertyMirrorConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	tester := NewTester(axiom.LeafLinkedBinaryTree(), prover.Options{})
	fields := []string{"L", "R", "N"}
	for i := 0; i < 200; i++ {
		q := Query{
			S: Access{Handle: "_h", Path: randWordPath(rng, fields, 4), Field: "d", IsWrite: true},
			T: Access{Handle: "_h", Path: randWordPath(rng, fields, 4), Field: "d", IsWrite: true},
		}
		mirror := Query{S: q.T, T: q.S}
		a, b := tester.DepTest(q).Result, tester.DepTest(mirror).Result
		if a != b {
			t.Fatalf("mirror inconsistency on %v / %v: %v vs %v", q.S.Path, q.T.Path, a, b)
		}
	}
}

// TestPropertyYesImpliesConcreteCollision: every Yes on word paths is
// confirmed by walking a concrete conforming heap where both paths exist.
func TestPropertyYesImpliesConcreteCollision(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	tester := NewTester(axiom.LeafLinkedBinaryTree(), prover.Options{})
	g, root := heap.BuildLeafLinkedTree(3)
	fields := []string{"L", "R", "N"}
	yes := 0
	for i := 0; i < 300; i++ {
		p1 := randWordPath(rng, fields, 3)
		p2 := randWordPath(rng, fields, 3)
		q := Query{
			S: Access{Handle: "_h", Path: p1, Field: "d", IsWrite: true},
			T: Access{Handle: "_h", Path: p2, Field: "d", IsWrite: true},
		}
		if tester.DepTest(q).Result != Yes {
			continue
		}
		yes++
		w1, _ := pathexpr.Word(p1)
		w2, _ := pathexpr.Word(p2)
		v1, ok1 := g.WalkWord(root, w1)
		v2, ok2 := g.WalkWord(root, w2)
		if ok1 && ok2 && v1 != v2 {
			t.Fatalf("Yes on %v vs %v but they reach %d and %d", p1, p2, v1, v2)
		}
	}
	if yes == 0 {
		t.Error("no Yes answers sampled; test has no power")
	}
}

// TestPropertyNoNeverContradictsYesScreen: a query whose paths are
// definitely aliased can never come back No.
func TestPropertyNoNeverContradictsYesScreen(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	tester := NewTester(axiom.RingOf("next", 4), prover.Options{})
	for i := 0; i < 100; i++ {
		k := rng.Intn(9)
		w := make([]string, k)
		for j := range w {
			w[j] = "next"
		}
		p1 := pathexpr.FromWord(w)
		p2 := pathexpr.FromWord(append(append([]string{}, w...), "next", "next", "next", "next"))
		q := Query{
			S: Access{Handle: "_h", Path: p1, Field: "v", IsWrite: true},
			T: Access{Handle: "_h", Path: p2, Field: "v", IsWrite: true},
		}
		if got := tester.DepTest(q).Result; got != Yes {
			t.Fatalf("next^%d vs next^%d in a 4-ring: %v, want Yes", k, k+4, got)
		}
	}
}

// TestLoopCarriedConstruction: the helper builds the §5 query shape.
func TestLoopCarriedConstruction(t *testing.T) {
	q := LoopCarried(axiom.SparseMatrixCore(), "_hr",
		pathexpr.MustParse("nrowE"), pathexpr.MustParse("ncolE+"), "val", true)
	if q.S.Handle != "_hr" || q.T.Handle != "_hr" {
		t.Error("handles must match")
	}
	if got := q.T.Path.String(); got != "nrowE+.ncolE+" {
		t.Errorf("later-iteration path = %s", got)
	}
	if !q.S.IsWrite || !q.T.IsWrite {
		t.Error("write flags lost")
	}
}

// TestPerWindowProverCaching: queries with reduced axiom windows get their
// own prover and answers change accordingly.
func TestPerWindowProverCaching(t *testing.T) {
	full := axiom.SinglyLinkedList("link")
	tester := NewTester(full, prover.Options{})
	q := Query{
		S: Access{Handle: "_h", Path: pathexpr.Eps, Field: "f", IsWrite: true},
		T: Access{Handle: "_h", Path: pathexpr.MustParse("link+"), Field: "f", IsWrite: true},
	}
	if out := tester.DepTest(q); out.Result != No {
		t.Fatalf("full axioms = %v, want No", out.Result)
	}
	q.Axioms = full.WithoutFields("link")
	if out := tester.DepTest(q); out.Result != Maybe {
		t.Fatalf("emptied window = %v, want Maybe", out.Result)
	}
	// And back: the original prover is reused.
	q.Axioms = full
	if out := tester.DepTest(q); out.Result != No {
		t.Fatalf("restored window = %v, want No", out.Result)
	}
}
