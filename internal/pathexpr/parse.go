package pathexpr

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse parses a path expression in the paper's concrete syntax.
//
// Grammar:
//
//	expr   := cat ('|' cat)*
//	cat    := rep (('.' | juxtaposition) rep)*
//	rep    := atom ('*' | '+')*
//	atom   := IDENT | 'ε' | 'eps' | '(' expr ')'
//
// Identifiers are Go-style names (ncolE, L, nrowH).  Concatenation is
// written with '.', whitespace, or juxtaposition after a postfix operator or
// closing parenthesis (e.g. nrowE+ncolE*).  "eps" and "ε" denote the empty
// path.  An identifier parses as a single field name; to parse the paper's
// compact single-letter style ("LLN" meaning L·L·N) use ParseAlphabet with a
// declared field set.
func Parse(src string) (Expr, error) {
	p := &parser{src: src}
	return p.run()
}

// MustParse is Parse, panicking on error.  For tests and package literals.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

// ParseAlphabet parses src like Parse, but splits each identifier into a
// sequence of declared field names using greedy longest-match.  With fields
// {L, R, N}, "LLN" parses as L·L·N; with {ncolE, nrowE}, "nrowE+ncolE"
// parses as nrowE+·ncolE.  An identifier that cannot be fully decomposed
// into declared fields is an error.
func ParseAlphabet(src string, fields []string) (Expr, error) {
	p := &parser{src: src, fields: fields}
	return p.run()
}

// MustParseAlphabet is ParseAlphabet, panicking on error.
func MustParseAlphabet(src string, fields []string) Expr {
	e, err := ParseAlphabet(src, fields)
	if err != nil {
		panic(err)
	}
	return e
}

type parser struct {
	src    string
	pos    int
	fields []string // non-nil enables maximal-munch identifier splitting
}

func (p *parser) run() (Expr, error) {
	p.skipSpace()
	if p.eof() {
		return nil, p.errorf("empty path expression")
	}
	e, err := p.parseAlt()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if !p.eof() {
		return nil, p.errorf("unexpected %q", p.rest())
	}
	return Simplify(e), nil
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("pathexpr: %s at offset %d in %q", fmt.Sprintf(format, args...), p.pos, p.src)
}

func (p *parser) eof() bool { return p.pos >= len(p.src) }

func (p *parser) rest() string { return p.src[p.pos:] }

func (p *parser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) skipSpace() {
	for !p.eof() && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n' || p.src[p.pos] == '\r') {
		p.pos++
	}
}

func (p *parser) parseAlt() (Expr, error) {
	first, err := p.parseCat()
	if err != nil {
		return nil, err
	}
	alts := []Expr{first}
	for {
		p.skipSpace()
		if p.peek() != '|' {
			break
		}
		p.pos++
		next, err := p.parseCat()
		if err != nil {
			return nil, err
		}
		alts = append(alts, next)
	}
	return Or(alts...), nil
}

func (p *parser) parseCat() (Expr, error) {
	var parts []Expr
	for {
		p.skipSpace()
		if p.peek() == '.' {
			p.pos++
			p.skipSpace()
		}
		if p.eof() || p.peek() == '|' || p.peek() == ')' {
			break
		}
		rep, err := p.parseRep()
		if err != nil {
			return nil, err
		}
		parts = append(parts, rep)
	}
	if len(parts) == 0 {
		return nil, p.errorf("expected path term")
	}
	return Cat(parts...), nil
}

func (p *parser) parseRep() (Expr, error) {
	atom, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek() {
		case '*':
			p.pos++
			atom = Rep(atom)
		case '+':
			p.pos++
			atom = Rep1(atom)
		default:
			return atom, nil
		}
	}
}

func (p *parser) parseAtom() (Expr, error) {
	p.skipSpace()
	switch {
	case p.eof():
		return nil, p.errorf("unexpected end of expression")
	case p.peek() == '(':
		p.pos++
		inner, err := p.parseAlt()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return nil, p.errorf("missing ')'")
		}
		p.pos++
		return inner, nil
	case strings.HasPrefix(p.rest(), "ε"):
		p.pos += len("ε")
		return Eps, nil
	}
	ident := p.scanIdent()
	if ident == "" {
		return nil, p.errorf("unexpected character %q", p.peek())
	}
	if ident == "eps" || ident == "epsilon" {
		return Eps, nil
	}
	if p.fields != nil {
		return p.splitIdent(ident)
	}
	return F(ident), nil
}

func (p *parser) scanIdent() string {
	start := p.pos
	for !p.eof() {
		r := rune(p.src[p.pos])
		if r == '_' || unicode.IsLetter(r) || (p.pos > start && unicode.IsDigit(r)) {
			p.pos++
			continue
		}
		break
	}
	return p.src[start:p.pos]
}

// splitIdent decomposes ident into declared field names by greedy
// longest-match with backtracking.
func (p *parser) splitIdent(ident string) (Expr, error) {
	if ident == "eps" || ident == "epsilon" {
		return Eps, nil
	}
	split, ok := splitFields(ident, p.fields)
	if !ok {
		return nil, p.errorf("identifier %q is not a sequence of declared fields %v", ident, p.fields)
	}
	parts := make([]Expr, len(split))
	for i, f := range split {
		parts[i] = F(f)
	}
	return Cat(parts...), nil
}

func splitFields(s string, fields []string) ([]string, bool) {
	if s == "" {
		return nil, true
	}
	// Try longer field names first so that e.g. "ncolE" is preferred over a
	// hypothetical single-letter "n".
	best := make([]string, 0, len(fields))
	for _, f := range fields {
		if f != "" && strings.HasPrefix(s, f) {
			best = append(best, f)
		}
	}
	// Longest match first, then backtrack.
	for i := 0; i < len(best); i++ {
		for j := i + 1; j < len(best); j++ {
			if len(best[j]) > len(best[i]) {
				best[i], best[j] = best[j], best[i]
			}
		}
	}
	for _, f := range best {
		if rest, ok := splitFields(s[len(f):], fields); ok {
			return append([]string{f}, rest...), true
		}
	}
	return nil, false
}
