package pathexpr

import (
	"sync"
	"sync/atomic"
)

// This file implements hash-consing for path expressions: a concurrency-safe
// interner that maps every expression to a unique *Node, so that structural
// equality — which every cache in the stack (the DFA compilation cache, the
// language-decision memo, the cross-query proof memo, the prover's goal
// cache, the serving layer's engine pool) previously decided by re-rendering
// expressions to strings on each lookup — becomes pointer/ID equality, and
// the canonical string is computed exactly once per distinct expression.
//
// The identity invariant is deliberately the same one the string keys
// enforced:
//
//	Intern(a) == Intern(b)  ⇔  a.String() == b.String()
//
// so switching a cache from string keys to node IDs preserves its equality
// classes byte-for-byte.  Two lookup structures maintain the invariant:
//
//   - byStruct: a structural-hash index (hash of the expression tree, no
//     strings touched).  Warm lookups — the cache hot path — run entirely
//     through it: one map probe plus an allocation-free tree comparison.
//   - byString: the canonical-string index.  A structure seen for the first
//     time renders its string once; if another structure already owns that
//     string (String conflates flat and nested associations of the same
//     concatenation or alternation), the new structure is aliased to the
//     existing node so both intern to one identity.
//
// Node IDs are stable for the lifetime of the interner (never reused, never
// invalidated), which is what lets downstream caches use them as map keys
// with no lifetime protocol beyond "same process".

// Node is an interned path expression: a unique representative of every
// expression sharing one canonical rendering.  Nodes are created only by an
// Interner and are immutable; comparing two nodes with == decides structural
// equality of the underlying expressions.
type Node struct {
	expr Expr
	str  string
	id   uint64
	size int
	in   *Interner
	// simp caches the interned post-Simplify normal form, computed lazily on
	// first use (see Simplified).
	simp atomic.Pointer[Node]
}

// ID returns the node's stable 64-bit identity.  IDs start at 1 and are
// never reused; 0 is free for callers to use as "no expression".
func (n *Node) ID() uint64 { return n.id }

// Expr returns the underlying expression (the first structure interned with
// this canonical string).
func (n *Node) Expr() Expr { return n.expr }

// String returns the canonical rendering, computed once at intern time.
func (n *Node) String() string { return n.str }

// Size returns the structural size of the expression (see Expr.Size),
// computed once at intern time.
func (n *Node) Size() int { return n.size }

// Simplified returns the interned post-Simplify normal form of the node's
// expression.  The result is cached on the node, so steady-state callers
// (the engine's canonical goal keys) pay one atomic load — no Simplify
// walk, no rendering, no allocation.
func (n *Node) Simplified() *Node {
	if s := n.simp.Load(); s != nil {
		return s
	}
	s := n.in.Intern(Simplify(n.expr))
	// Mark a fixpoint as its own normal form so chains of Simplified calls
	// terminate in one hop (Simplify is idempotent; see TestSimplifyIdempotent).
	if s != n {
		s.simp.CompareAndSwap(nil, s)
	}
	n.simp.Store(s)
	return s
}

// structEntry pairs one concrete structure with the node it interns to.  A
// structural-hash bucket may carry several entries: genuinely distinct
// expressions that collide in the hash, and distinct structures aliased to
// one node because they render identically.
type structEntry struct {
	expr Expr
	node *Node
}

// Interner is a concurrency-safe hash-consing table for path expressions.
// The zero value is not usable; call NewInterner, or use the package-level
// Intern/InternID helpers, which share the process-wide default interner
// (sharing one table is what makes node identity meaningful across the
// automata, prover, engine, and serving layers).
type Interner struct {
	mu       sync.RWMutex
	byStruct map[uint64][]structEntry
	byString map[string]*Node
	byID     map[uint64]*Node
	next     uint64
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{
		byStruct: make(map[uint64][]structEntry),
		byString: make(map[string]*Node),
		byID:     make(map[uint64]*Node),
	}
}

// defaultInterner is the process-wide table behind Intern/InternID.
var defaultInterner = NewInterner()

// Intern interns e in the process-wide default interner.
func Intern(e Expr) *Node { return defaultInterner.Intern(e) }

// InternID returns Intern(e).ID().
func InternID(e Expr) uint64 { return defaultInterner.Intern(e).id }

// LookupID returns the node with the given interned ID in the process-wide
// default interner, or nil when no such ID has been handed out.  It is the
// reverse of InternID: artifact writers use it to turn cache keys (bare IDs)
// back into canonical expression strings for serialization.
func LookupID(id uint64) *Node { return defaultInterner.LookupID(id) }

// LookupID returns the node with the given ID, or nil if the ID was never
// issued by this interner.
func (in *Interner) LookupID(id uint64) *Node {
	in.mu.RLock()
	n := in.byID[id]
	in.mu.RUnlock()
	return n
}

// InternedExprs reports the number of distinct expressions (by canonical
// string) held by the process-wide interner.  Long-lived servers export it:
// the interner grows with distinct expressions seen and is never evicted
// (IDs must stay stable), so this is the number to watch.
func InternedExprs() int { return defaultInterner.Len() }

// Intern returns the unique node for e.  A nil expression interns as ε,
// matching Simplify's treatment of nil.  The warm path (a structure interned
// before) takes a shared lock, one hash-bucket probe, and a tree comparison —
// no allocation, no string rendering.
func (in *Interner) Intern(e Expr) *Node {
	if e == nil {
		e = Eps
	}
	h := hashExpr(fnvOffset64, e)
	in.mu.RLock()
	for _, ent := range in.byStruct[h] {
		if structEq(ent.expr, e) {
			n := ent.node
			in.mu.RUnlock()
			return n
		}
	}
	in.mu.RUnlock()
	return in.internSlow(e, h)
}

func (in *Interner) internSlow(e Expr, h uint64) *Node {
	s := e.String()
	in.mu.Lock()
	defer in.mu.Unlock()
	// Re-check under the write lock: a racing goroutine may have interned
	// the same structure between our read unlock and here.
	for _, ent := range in.byStruct[h] {
		if structEq(ent.expr, e) {
			return ent.node
		}
	}
	n, ok := in.byString[s]
	if !ok {
		in.next++
		n = &Node{expr: e, str: s, id: in.next, size: e.Size(), in: in}
		in.byString[s] = n
		in.byID[n.id] = n
	}
	in.byStruct[h] = append(in.byStruct[h], structEntry{expr: e, node: n})
	return n
}

// Len reports the number of distinct interned expressions (unique canonical
// strings, i.e. unique nodes).
func (in *Interner) Len() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.byString)
}

// FNV-1a 64-bit parameters, shared by the structural hash and the
// integer-key mixers downstream caches build shard indices from.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Kind tags feeding the structural hash.  Composite tags also mix in the
// child count so [a b]·c and [a]·[b c] (as raw slices) cannot collide by
// concatenating child streams.
const (
	hkEmpty = iota + 1
	hkEpsilon
	hkField
	hkConcat
	hkAlt
	hkStar
	hkPlus
)

// hashExpr folds e's structure into h (FNV-1a style).  Allocation-free.
func hashExpr(h uint64, e Expr) uint64 {
	switch v := e.(type) {
	case Empty:
		h = (h ^ hkEmpty) * fnvPrime64
	case Epsilon:
		h = (h ^ hkEpsilon) * fnvPrime64
	case Field:
		h = (h ^ hkField) * fnvPrime64
		for i := 0; i < len(v.Name); i++ {
			h = (h ^ uint64(v.Name[i])) * fnvPrime64
		}
		h = (h ^ 0xff) * fnvPrime64 // name terminator
	case Concat:
		h = (h ^ hkConcat) * fnvPrime64
		h = (h ^ uint64(len(v.Parts))) * fnvPrime64
		for _, p := range v.Parts {
			h = hashExpr(h, p)
		}
	case Alt:
		h = (h ^ hkAlt) * fnvPrime64
		h = (h ^ uint64(len(v.Alts))) * fnvPrime64
		for _, p := range v.Alts {
			h = hashExpr(h, p)
		}
	case Star:
		h = (h ^ hkStar) * fnvPrime64
		h = hashExpr(h, v.Inner)
	case Plus:
		h = (h ^ hkPlus) * fnvPrime64
		h = hashExpr(h, v.Inner)
	}
	return h
}

// structEq reports structural (tree) equality of a and b.  Allocation-free.
func structEq(a, b Expr) bool {
	switch va := a.(type) {
	case Empty:
		_, ok := b.(Empty)
		return ok
	case Epsilon:
		_, ok := b.(Epsilon)
		return ok
	case Field:
		vb, ok := b.(Field)
		return ok && va.Name == vb.Name
	case Concat:
		vb, ok := b.(Concat)
		if !ok || len(va.Parts) != len(vb.Parts) {
			return false
		}
		for i := range va.Parts {
			if !structEq(va.Parts[i], vb.Parts[i]) {
				return false
			}
		}
		return true
	case Alt:
		vb, ok := b.(Alt)
		if !ok || len(va.Alts) != len(vb.Alts) {
			return false
		}
		for i := range va.Alts {
			if !structEq(va.Alts[i], vb.Alts[i]) {
				return false
			}
		}
		return true
	case Star:
		vb, ok := b.(Star)
		return ok && structEq(va.Inner, vb.Inner)
	case Plus:
		vb, ok := b.(Plus)
		return ok && structEq(va.Inner, vb.Inner)
	}
	return false
}

// Mix64 folds v into the running hash h (FNV-1a over the value's bytes,
// collapsed to one multiply).  Downstream sharded caches use it to build
// shard indices from interned-ID keys without rendering strings; exporting
// one implementation keeps their routing conventions aligned the same way
// strhash.FNV32a did for the string-keyed era.
func Mix64(h, v uint64) uint64 {
	return (h ^ v) * fnvPrime64
}

// MixInit is the seed for Mix64 chains.
const MixInit uint64 = fnvOffset64
