package pathexpr_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/automata"
	"repro/internal/pathexpr"
)

// internCorpus is a set of expression texts spanning every node kind, the
// flat/nested rendering aliases, and the shapes the prover manufactures
// (trailing closures, alternations, induction-step concatenations).
var internCorpus = []string{
	"ε",
	"L",
	"L.R",
	"L.R.N",
	"L|R",
	"R|L",
	"(L|R).N",
	"L*",
	"L+",
	"(L.R)+",
	"(L|R)*",
	"L.L*",
	"N.(L|R)+.val",
	"ncolE+",
	"nrowE+.ncolE*",
	"(a|b|c).(a|b|c)",
	"a.b.c.d.e",
	"((a.b).c)|(a.(b.c))",
}

// TestInternIdentityMatchesString pins the interner's identity invariant:
// two expressions intern to the same node exactly when their canonical
// renderings are equal.  That is the equality every downstream cache used
// to decide with string keys, so it is what makes the ID-keyed refactor
// behavior-preserving.
func TestInternIdentityMatchesString(t *testing.T) {
	for _, sa := range internCorpus {
		for _, sb := range internCorpus {
			a, b := pathexpr.MustParse(sa), pathexpr.MustParse(sb)
			na, nb := pathexpr.Intern(a), pathexpr.Intern(b)
			sameNode := na == nb
			sameStr := a.String() == b.String()
			if sameNode != sameStr {
				t.Errorf("Intern(%q)==Intern(%q) is %v, String equality is %v", sa, sb, sameNode, sameStr)
			}
			if sameNode != (na.ID() == nb.ID()) {
				t.Errorf("node identity and ID identity disagree for %q vs %q", sa, sb)
			}
		}
	}
}

// TestInternAliasesFlatAndNested: String conflates flat and nested
// associations of concatenation and alternation, so structurally distinct
// trees with one rendering must alias to one node.
func TestInternAliasesFlatAndNested(t *testing.T) {
	a, b, c := pathexpr.F("a"), pathexpr.F("b"), pathexpr.F("c")
	flat := pathexpr.Concat{Parts: []pathexpr.Expr{a, b, c}}
	nested := pathexpr.Concat{Parts: []pathexpr.Expr{a, pathexpr.Concat{Parts: []pathexpr.Expr{b, c}}}}
	if flat.String() != nested.String() {
		t.Fatalf("expected one rendering, got %q vs %q", flat, nested)
	}
	if pathexpr.Intern(flat) != pathexpr.Intern(nested) {
		t.Error("flat and nested concatenations render identically but interned to distinct nodes")
	}
	altFlat := pathexpr.Alt{Alts: []pathexpr.Expr{a, b, c}}
	altNested := pathexpr.Alt{Alts: []pathexpr.Expr{a, pathexpr.Alt{Alts: []pathexpr.Expr{b, c}}}}
	if pathexpr.Intern(altFlat) != pathexpr.Intern(altNested) {
		t.Error("flat and nested alternations render identically but interned to distinct nodes")
	}
}

// TestInternNodeMetadata: the node carries the rendering, size, and
// simplified form of its expression, computed once.
func TestInternNodeMetadata(t *testing.T) {
	for _, src := range internCorpus {
		e := pathexpr.MustParse(src)
		n := pathexpr.Intern(e)
		if n.String() != e.String() {
			t.Errorf("%q: node string %q != expr string %q", src, n.String(), e.String())
		}
		if n.Size() != e.Size() {
			t.Errorf("%q: node size %d != expr size %d", src, n.Size(), e.Size())
		}
		want := pathexpr.Simplify(e).String()
		if got := n.Simplified().String(); got != want {
			t.Errorf("%q: Simplified() = %q, want %q", src, got, want)
		}
		// Simplified is a fixpoint: one more hop must be the identity.
		if s := n.Simplified(); s.Simplified() != s {
			t.Errorf("%q: Simplified() is not a fixpoint of itself", src)
		}
	}
	if pathexpr.Intern(nil) != pathexpr.Intern(pathexpr.Eps) {
		t.Error("Intern(nil) must alias Intern(ε)")
	}
}

// FuzzIntern cross-checks the interner against the language semantics:
// same node ⇒ same language (decided by DFA equivalence), distinct nodes ⇒
// distinct canonical strings.  (Distinct nodes may still share a language —
// L|R and R|L — which is exactly why caches key on renderings, not
// languages.)
func FuzzIntern(f *testing.F) {
	for i, sa := range internCorpus {
		f.Add(sa, internCorpus[(i+1)%len(internCorpus)])
	}
	cache := automata.NewCache(0)
	f.Fuzz(func(t *testing.T, sa, sb string) {
		a, errA := pathexpr.Parse(sa)
		b, errB := pathexpr.Parse(sb)
		if errA != nil || errB != nil {
			t.Skip()
		}
		na, nb := pathexpr.Intern(a), pathexpr.Intern(b)
		if (na == nb) != (a.String() == b.String()) {
			t.Fatalf("identity invariant violated for %q vs %q", sa, sb)
		}
		if na == nb {
			alpha := automata.AlphabetOf(a, b)
			eq, err := cache.Equivalent(a, b, alpha)
			if err != nil {
				t.Skip() // state limit; no verdict to check
			}
			if !eq {
				t.Fatalf("%q and %q share a node but denote different languages", sa, sb)
			}
		} else if na.String() == nb.String() {
			t.Fatalf("distinct nodes for %q and %q share the rendering %q", sa, sb, na.String())
		}
	})
}

// TestInternRace hammers one interner from 8 goroutines with overlapping
// expression sets and checks every goroutine resolved each text to the same
// node.  Run under -race this is the interner's concurrency test.
func TestInternRace(t *testing.T) {
	const goroutines = 8
	const rounds = 200
	in := pathexpr.NewInterner()
	results := make([][]*pathexpr.Node, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			nodes := make([]*pathexpr.Node, 0, rounds*len(internCorpus))
			for r := 0; r < rounds; r++ {
				for _, src := range internCorpus {
					e := pathexpr.MustParse(src)
					n := in.Intern(e)
					nodes = append(nodes, n)
					if r == 0 && g%2 == 0 {
						n.Simplified() // race the lazy simplification too
					}
				}
			}
			results[g] = nodes
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := range results[0] {
			if results[g][i] != results[0][i] {
				t.Fatalf("goroutine %d interned item %d to a different node", g, i)
			}
		}
	}
	if got, want := in.Len(), len(internCorpus); got > want {
		t.Errorf("interner holds %d nodes for %d distinct texts", got, want)
	}
}

// TestSimplifyIdempotentAndDeterministic: Simplify is a normal form —
// applying it twice changes nothing — and is deterministic across repeated
// applications to independently parsed copies (the Or dedup by interned
// identity must preserve first-occurrence ordering).
func TestSimplifyIdempotentAndDeterministic(t *testing.T) {
	for _, src := range internCorpus {
		once := pathexpr.Simplify(pathexpr.MustParse(src))
		twice := pathexpr.Simplify(once)
		if !pathexpr.Equal(once, twice) {
			t.Errorf("%q: Simplify not idempotent: %q then %q", src, once, twice)
		}
		again := pathexpr.Simplify(pathexpr.MustParse(src))
		if once.String() != again.String() {
			t.Errorf("%q: Simplify not deterministic: %q vs %q", src, once, again)
		}
	}
}

// TestOrDedupIdentity: Or removes duplicate alternatives by interned
// identity, keeping the first occurrence of each, including duplicates that
// arrive as structurally distinct trees with one rendering.
func TestOrDedupIdentity(t *testing.T) {
	a, b := pathexpr.F("a"), pathexpr.F("b")
	got := pathexpr.Or(a, b, a, pathexpr.Or(b, a))
	if got.String() != "a|b" {
		t.Errorf("Or(a,b,a,(b|a)) = %q, want %q", got, "a|b")
	}
	// A nested concat duplicates a flat one under String; Or must see them
	// as one alternative.
	flat := pathexpr.Concat{Parts: []pathexpr.Expr{a, b}}
	nested := pathexpr.Concat{Parts: []pathexpr.Expr{pathexpr.Concat{Parts: []pathexpr.Expr{a}}, b}}
	got = pathexpr.Or(flat, nested)
	if got.String() != "a.b" {
		t.Errorf("Or(flat, nested) = %q, want single alternative %q", got, "a.b")
	}
	// More than 8 distinct alternatives exercises the seen-buffer spill.
	many := make([]pathexpr.Expr, 0, 24)
	for i := 0; i < 12; i++ {
		f := pathexpr.F(fmt.Sprintf("f%d", i))
		many = append(many, f, f)
	}
	out, ok := pathexpr.Or(many...).(pathexpr.Alt)
	if !ok || len(out.Alts) != 12 {
		t.Errorf("Or over 12 duplicated fields kept %d alternatives, want 12", len(out.Alts))
	}
}
