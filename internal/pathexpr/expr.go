// Package pathexpr implements the path-expression language of the APT
// dependence test: regular expressions whose alphabet is the set of pointer
// field names of a data structure.
//
// An access path such as root.LLN or hr.nrowE+ncolE* denotes the set of
// vertices reached from a handle vertex by traversing any edge-label word in
// the language of the expression.  Axioms and access paths are both written
// in this language (paper, §3.1).
package pathexpr

import (
	"sort"
	"strings"
)

// Expr is a path expression node.  The concrete types are Empty, Epsilon,
// Field, Concat, Alt, Star, and Plus.  Expressions are immutable after
// construction; all transformation helpers return fresh nodes.
type Expr interface {
	// String renders the expression in the paper's concrete syntax.
	String() string
	// Size is the structural size of the expression: the number of field
	// occurrences plus the number of operators.  The prover uses it as a
	// well-founded measure when applying induction hypotheses.
	Size() int
	isExpr()
}

// Empty denotes the empty language ∅ (no path at all, not even ε).
type Empty struct{}

// Epsilon denotes the empty path ε: the handle vertex itself.
type Epsilon struct{}

// Field denotes a single pointer-field traversal, e.g. L or ncolE.
type Field struct {
	Name string
}

// Concat denotes path concatenation: traverse Parts in order.
type Concat struct {
	Parts []Expr
}

// Alt denotes alternation (selection between paths).
type Alt struct {
	Alts []Expr
}

// Star denotes zero or more repetitions of Inner (Kleene star).
type Star struct {
	Inner Expr
}

// Plus denotes one or more repetitions of Inner.  The paper's axioms use +
// heavily (e.g. ∀p, p.ncolE+ <> p.nrowE+), so Plus is first-class rather
// than desugared, which keeps axiom texts and proof traces readable.
type Plus struct {
	Inner Expr
}

func (Empty) isExpr()   {}
func (Epsilon) isExpr() {}
func (Field) isExpr()   {}
func (Concat) isExpr()  {}
func (Alt) isExpr()     {}
func (Star) isExpr()    {}
func (Plus) isExpr()    {}

func (Empty) Size() int   { return 1 }
func (Epsilon) Size() int { return 1 }
func (Field) Size() int   { return 1 }

func (c Concat) Size() int {
	n := 0
	for _, p := range c.Parts {
		n += p.Size()
	}
	return n
}

func (a Alt) Size() int {
	n := 1
	for _, p := range a.Alts {
		n += p.Size()
	}
	return n
}

func (s Star) Size() int { return 1 + s.Inner.Size() }
func (p Plus) Size() int { return 1 + p.Inner.Size() }

// Eps is the shared ε expression.
var Eps Expr = Epsilon{}

// F returns a field expression for name.
func F(name string) Expr { return Field{Name: name} }

// Cat concatenates parts, flattening nested concatenations and dropping ε.
func Cat(parts ...Expr) Expr {
	flat := make([]Expr, 0, len(parts))
	for _, p := range parts {
		switch v := p.(type) {
		case nil:
			continue
		case Epsilon:
			continue
		case Empty:
			return Empty{}
		case Concat:
			flat = append(flat, v.Parts...)
		default:
			flat = append(flat, p)
		}
	}
	switch len(flat) {
	case 0:
		return Eps
	case 1:
		return flat[0]
	}
	return Concat{Parts: flat}
}

// Or builds an alternation, flattening nested alternations and removing
// exact duplicates.  Duplicate elimination is by interned identity — the
// same equality the old per-alternative String() keys decided, without
// re-rendering every alternative on every construction.  First occurrence
// wins, so the alternative ordering is deterministic in the input order.
func Or(alts ...Expr) Expr {
	flat := make([]Expr, 0, len(alts))
	var seenBuf [8]*Node
	seen := seenBuf[:0]
	add := func(x Expr) {
		n := Intern(x)
		for _, s := range seen {
			if s == n {
				return
			}
		}
		seen = append(seen, n)
		flat = append(flat, x)
	}
	for _, a := range alts {
		switch v := a.(type) {
		case nil, Empty:
			continue
		case Alt:
			for _, x := range v.Alts {
				add(x)
			}
		default:
			add(a)
		}
	}
	switch len(flat) {
	case 0:
		return Empty{}
	case 1:
		return flat[0]
	}
	return Alt{Alts: flat}
}

// Rep returns the Kleene closure of e, simplifying nested closures.
func Rep(e Expr) Expr {
	switch v := e.(type) {
	case Epsilon:
		return Eps
	case Empty:
		return Eps
	case Star:
		return v
	case Plus:
		return Star{Inner: v.Inner}
	}
	return Star{Inner: e}
}

// Rep1 returns the one-or-more closure of e, simplifying nested closures.
func Rep1(e Expr) Expr {
	switch v := e.(type) {
	case Epsilon:
		return Eps
	case Empty:
		return Empty{}
	case Star:
		return v
	case Plus:
		return v
	}
	return Plus{Inner: e}
}

func (Empty) String() string   { return "∅" }
func (Epsilon) String() string { return "ε" }
func (f Field) String() string { return f.Name }

// Concat always prints with '.' separators: the dotted form re-parses
// unambiguously under Parse (juxtaposed single letters would re-lex as one
// multi-character identifier), and String doubles as a canonical key in
// caches, where ambiguity would conflate distinct languages.  Use Compact
// for the paper's juxtaposed display style.
func (c Concat) String() string {
	var b strings.Builder
	for i, p := range c.Parts {
		if i > 0 {
			b.WriteByte('.')
		}
		b.WriteString(parenthesize(p, precConcat))
	}
	return b.String()
}

// Compact renders e in the paper's concrete style: concatenations of
// single-character fields print by juxtaposition (LLN instead of L.L.N).
// The compact form is for display; it re-parses only via ParseAlphabet with
// the field set.
func Compact(e Expr) string {
	if e == nil {
		return "ε"
	}
	for _, f := range Fields(e) {
		if len(f) > 1 {
			return e.String()
		}
	}
	return strings.ReplaceAll(e.String(), ".", "")
}

func (a Alt) String() string {
	var b strings.Builder
	for i, p := range a.Alts {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(parenthesize(p, precAlt))
	}
	return b.String()
}

func (s Star) String() string { return parenthesize(s.Inner, precRep) + "*" }
func (p Plus) String() string { return parenthesize(p.Inner, precRep) + "+" }

// Operator precedence levels for printing.
const (
	precAlt = iota
	precConcat
	precRep
)

func precOf(e Expr) int {
	switch e.(type) {
	case Alt:
		return precAlt
	case Concat:
		return precConcat
	default:
		return precRep
	}
}

func parenthesize(e Expr, ctx int) string {
	if precOf(e) < ctx {
		return "(" + e.String() + ")"
	}
	return e.String()
}

// Walk calls fn on e and every sub-expression of e, in preorder.
func Walk(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch v := e.(type) {
	case Concat:
		for _, p := range v.Parts {
			Walk(p, fn)
		}
	case Alt:
		for _, p := range v.Alts {
			Walk(p, fn)
		}
	case Star:
		Walk(v.Inner, fn)
	case Plus:
		Walk(v.Inner, fn)
	}
}

// Fields returns the sorted set of field names mentioned in the expressions.
func Fields(exprs ...Expr) []string {
	set := make(map[string]bool)
	for _, e := range exprs {
		Walk(e, func(x Expr) {
			if f, ok := x.(Field); ok {
				set[f.Name] = true
			}
		})
	}
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Equal reports structural equality of two expressions (the equality the
// canonical rendering decides).  Decided by interned identity: one pointer
// comparison once both sides are warm in the interner.
func Equal(a, b Expr) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return Intern(a) == Intern(b)
}

// Components returns the top-level concatenation components of e.  A
// non-concatenation expression is a single component.  ε components are
// dropped; ε itself has no components.
func Components(e Expr) []Expr {
	switch v := e.(type) {
	case nil:
		return nil
	case Epsilon:
		return nil
	case Concat:
		out := make([]Expr, 0, len(v.Parts))
		for _, p := range v.Parts {
			if _, ok := p.(Epsilon); ok {
				continue
			}
			out = append(out, p)
		}
		return out
	default:
		return []Expr{e}
	}
}

// FromComponents rebuilds an expression from a component sequence.
func FromComponents(comps []Expr) Expr {
	return Cat(comps...)
}

// Simplify applies local rewrites: flattening, ε and ∅ propagation, nested
// closure collapsing, and duplicate-alternative removal.  The result denotes
// the same language.
func Simplify(e Expr) Expr {
	switch v := e.(type) {
	case nil:
		return Eps
	case Empty, Epsilon, Field:
		return e
	case Concat:
		parts := make([]Expr, len(v.Parts))
		for i, p := range v.Parts {
			parts[i] = Simplify(p)
		}
		return Cat(parts...)
	case Alt:
		alts := make([]Expr, len(v.Alts))
		for i, p := range v.Alts {
			alts[i] = Simplify(p)
		}
		return Or(alts...)
	case Star:
		return Rep(Simplify(v.Inner))
	case Plus:
		return Rep1(Simplify(v.Inner))
	}
	return e
}

// Desugar rewrites every Plus node a+ into a·a*, producing an equivalent
// expression over {ε, field, concat, alt, star} only.
func Desugar(e Expr) Expr {
	switch v := e.(type) {
	case nil:
		return Eps
	case Empty, Epsilon, Field:
		return e
	case Concat:
		parts := make([]Expr, len(v.Parts))
		for i, p := range v.Parts {
			parts[i] = Desugar(p)
		}
		return Cat(parts...)
	case Alt:
		alts := make([]Expr, len(v.Alts))
		for i, p := range v.Alts {
			alts[i] = Desugar(p)
		}
		return Or(alts...)
	case Star:
		return Rep(Desugar(v.Inner))
	case Plus:
		inner := Desugar(v.Inner)
		return Cat(inner, Rep(inner))
	}
	return e
}

// Word returns the single word denoted by e if e is a concatenation of
// fields only (possibly ε), along with true; otherwise it returns nil, false.
// Words correspond to concrete traversals: because pointer fields are
// single-valued, a word reaches at most one vertex from a given handle.
func Word(e Expr) ([]string, bool) {
	switch v := e.(type) {
	case nil, Epsilon:
		return []string{}, true
	case Field:
		return []string{v.Name}, true
	case Concat:
		var w []string
		for _, p := range v.Parts {
			sub, ok := Word(p)
			if !ok {
				return nil, false
			}
			w = append(w, sub...)
		}
		return w, true
	}
	return nil, false
}

// FromWord builds a concatenation of fields from a word.
func FromWord(w []string) Expr {
	parts := make([]Expr, len(w))
	for i, s := range w {
		parts[i] = F(s)
	}
	return Cat(parts...)
}
