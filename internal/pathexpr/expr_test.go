package pathexpr

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestParseRoundTrip(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"L", "L"},
		{"ε", "ε"},
		{"eps", "ε"},
		{"L.R", "L.R"},
		{"L R", "L.R"},
		{"ncolE", "ncolE"},
		{"ncolE.nrowE", "ncolE.nrowE"},
		{"ncolE+", "ncolE+"},
		{"ncolE*", "ncolE*"},
		{"nrowE+ncolE+", "nrowE+.ncolE+"},
		{"(L|R)", "L|R"},
		{"(L|R)+N+", "(L|R)+.N+"},
		{"(L|R)*", "(L|R)*"},
		{"L|R|N", "L|R|N"},
		{"(ncolE|nrowE)+", "(ncolE|nrowE)+"},
		{"a.(b|c)*.d", "a.(b|c)*.d"},
		{"aa.(b|c)*.d", "aa.(b|c)*.d"},
		{"((L))", "L"},
		{"L**", "L*"},
		{"L+*", "L*"},
		{"L*+", "L*"},
		{"L++", "L+"},
		{"ε.L", "L"},
		{"L.ε", "L"},
		{"ε*", "ε"},
	}
	for _, c := range cases {
		e, err := Parse(c.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.src, err)
		}
		if got := e.String(); got != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.src, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{"", "(", "(L", "L)", "|L", "L|", "*", "+", "L.(", "L~R"} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseAlphabetSplitsCompactWords(t *testing.T) {
	fields := []string{"L", "R", "N"}
	e, err := ParseAlphabet("LLN", fields)
	if err != nil {
		t.Fatal(err)
	}
	w, ok := Word(e)
	if !ok || !reflect.DeepEqual(w, []string{"L", "L", "N"}) {
		t.Fatalf("LLN parsed to %v (word %v, ok=%v)", e, w, ok)
	}

	sm := []string{"ncolE", "nrowE"}
	e2, err := ParseAlphabet("nrowE+ncolE+", sm)
	if err != nil {
		t.Fatal(err)
	}
	if got := e2.String(); got != "nrowE+.ncolE+" {
		t.Fatalf("got %q", got)
	}

	if _, err := ParseAlphabet("LLX", fields); err == nil {
		t.Error("expected error for undeclared field in compact word")
	}
}

func TestParseAlphabetLongestMatchBacktracks(t *testing.T) {
	// "ab" must split as a·b even though "abc" is a longer declared prefix of
	// "abx"... here the greedy longest match "ab" must backtrack to a, b.
	fields := []string{"a", "b", "ab"}
	e, err := ParseAlphabet("abb", fields)
	if err != nil {
		t.Fatal(err)
	}
	w, ok := Word(e)
	if !ok {
		t.Fatalf("not a word: %v", e)
	}
	// Greedy: ab, b.
	if !reflect.DeepEqual(w, []string{"ab", "b"}) {
		t.Fatalf("got %v", w)
	}
}

func TestFields(t *testing.T) {
	e := MustParse("(L|R)+N*ncolE")
	got := Fields(e)
	want := []string{"L", "N", "R", "ncolE"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Fields = %v, want %v", got, want)
	}
}

func TestComponents(t *testing.T) {
	e := MustParse("nrowE+ncolE(ncolE)*")
	comps := Components(e)
	if len(comps) != 3 {
		t.Fatalf("got %d components %v, want 3", len(comps), comps)
	}
	want := []string{"nrowE+", "ncolE", "ncolE*"}
	for i, c := range comps {
		if c.String() != want[i] {
			t.Errorf("component %d = %q, want %q", i, c, want[i])
		}
	}
	if got := FromComponents(comps).String(); got != e.String() {
		t.Errorf("FromComponents round trip = %q, want %q", got, e)
	}
	if got := Components(Eps); len(got) != 0 {
		t.Errorf("Components(ε) = %v, want none", got)
	}
}

func TestWord(t *testing.T) {
	if w, ok := Word(MustParse("L.L.N")); !ok || len(w) != 3 {
		t.Errorf("LLN word = %v, %v", w, ok)
	}
	if _, ok := Word(MustParse("L*")); ok {
		t.Error("L* should not be a word")
	}
	if _, ok := Word(MustParse("L|R")); ok {
		t.Error("L|R should not be a word")
	}
	if w, ok := Word(Eps); !ok || len(w) != 0 {
		t.Errorf("ε word = %v, %v", w, ok)
	}
	e := FromWord([]string{"a", "b"})
	if e.String() != "a.b" {
		t.Errorf("FromWord = %q", e)
	}
}

func TestDesugarRemovesPlus(t *testing.T) {
	e := MustParse("(a|b)+c+")
	d := Desugar(e)
	Walk(d, func(x Expr) {
		if _, ok := x.(Plus); ok {
			t.Fatalf("Desugar left a Plus in %v", d)
		}
	})
}

func TestSizeIsPositiveAndMonotone(t *testing.T) {
	a := MustParse("L")
	b := MustParse("L.R")
	c := MustParse("(L.R)*")
	if a.Size() <= 0 || b.Size() <= a.Size() || c.Size() <= b.Size() {
		t.Fatalf("sizes not monotone: %d %d %d", a.Size(), b.Size(), c.Size())
	}
}

func TestCompact(t *testing.T) {
	cases := []struct{ src, want string }{
		{"L.R.N", "LRN"},
		{"(L|R)+N+", "(L|R)+N+"},
		{"ncolE.nrowE", "ncolE.nrowE"}, // multi-char fields stay dotted
		{"ε", "ε"},
		{"a|b.c", "a|bc"},
	}
	for _, c := range cases {
		if got := Compact(MustParse(c.src)); got != c.want {
			t.Errorf("Compact(%q) = %q, want %q", c.src, got, c.want)
		}
	}
	if Compact(nil) != "ε" {
		t.Error("Compact(nil)")
	}
}

func TestEqual(t *testing.T) {
	if !Equal(MustParse("L.R"), MustParse("L R")) {
		t.Error("L.R should equal L R")
	}
	if Equal(MustParse("L"), MustParse("R")) {
		t.Error("L should not equal R")
	}
	if !Equal(nil, nil) {
		t.Error("nil should equal nil")
	}
}

// genExpr builds a random expression with the given size budget, used by
// property tests.
func genExpr(rnd interface{ Intn(int) int }, depth int) Expr {
	fields := []string{"a", "b", "c"}
	if depth <= 0 {
		return F(fields[rnd.Intn(len(fields))])
	}
	switch rnd.Intn(6) {
	case 0:
		return F(fields[rnd.Intn(len(fields))])
	case 1:
		return Eps
	case 2:
		return Cat(genExpr(rnd, depth-1), genExpr(rnd, depth-1))
	case 3:
		return Or(genExpr(rnd, depth-1), genExpr(rnd, depth-1))
	case 4:
		return Rep(genExpr(rnd, depth-1))
	default:
		return Rep1(genExpr(rnd, depth-1))
	}
}

func TestPropertyPrintParseRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	f := func(seed int64) bool {
		rnd := newRand(seed)
		e := genExpr(rnd, 4)
		parsed, err := Parse(e.String())
		if err != nil {
			t.Logf("reparse of %q failed: %v", e, err)
			return false
		}
		// Re-printing must be a fixed point.
		return parsed.String() == Simplify(parsed).String()
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropertySimplifyIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rnd := newRand(seed)
		e := Simplify(genExpr(rnd, 5))
		return Simplify(e).String() == e.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// newRand is a tiny deterministic generator so property tests do not import
// math/rand in more than one place.
type lcg struct{ state uint64 }

func newRand(seed int64) *lcg { return &lcg{state: uint64(seed)*6364136223846793005 + 1} }

func (l *lcg) Intn(n int) int {
	l.state = l.state*6364136223846793005 + 1442695040888963407
	return int((l.state >> 33) % uint64(n))
}
