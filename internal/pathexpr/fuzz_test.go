package pathexpr

import "testing"

// FuzzParse: the parser must never panic, and accepted inputs must
// round-trip through their printed form.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"L", "L.R.N", "LLN", "(L|R)+N+", "ncolE+", "nrowE+ncolE*",
		"ε", "eps", "a(b|c)*d", "((x))", "a**", "", "(", "|", "a..b",
		"a|b|c", "a+*+*", "ab cd", "_x9.y_",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := Parse(src)
		if err != nil {
			return
		}
		printed := e.String()
		re, err := Parse(printed)
		if err != nil {
			t.Fatalf("accepted %q but rejected its own print %q: %v", src, printed, err)
		}
		if re.String() != printed {
			t.Fatalf("print not a fixed point: %q -> %q -> %q", src, printed, re.String())
		}
	})
}

// FuzzParseAlphabet: greedy field splitting must never panic or accept a
// word it cannot decompose.
func FuzzParseAlphabet(f *testing.F) {
	for _, seed := range []string{"LLN", "LRN", "NNN", "LX", "nrowE+ncolE+", ""} {
		f.Add(seed)
	}
	fields := []string{"L", "R", "N", "ncolE", "nrowE"}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := ParseAlphabet(src, fields)
		if err != nil {
			return
		}
		// Every field mentioned must be declared.
		for _, name := range Fields(e) {
			ok := false
			for _, d := range fields {
				if d == name {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("ParseAlphabet(%q) produced undeclared field %q", src, name)
			}
		}
	})
}
