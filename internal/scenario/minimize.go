package scenario

import (
	"context"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/lang"
)

// minimizeSpec greedily shrinks a diverging spec: it repeatedly tries to
// delete one statement (top-level or loop-body) and keeps any deletion that
// still reproduces the divergence.  The failing query line's labels are
// never deleted.  Returns the shrunk spec and whether any shrinking
// happened; the original spec is untouched.
func (f *Farm) minimizeSpec(fam *Family, sp *progSpec, q QueryLine, g *heap.Graph, kind string) (*progSpec, bool) {
	cur := sp.clone()
	if !f.reproduces(fam, cur, q, g, kind) {
		// The divergence does not reproduce in isolation (e.g. it needed
		// the serve side); report the program as generated.
		return nil, false
	}
	shrunk := false
	for {
		improved := false
		for _, cand := range cur.deletions(q) {
			if f.reproduces(fam, cand, q, g, kind) {
				cur = cand
				improved, shrunk = true, true
				break
			}
		}
		if !improved {
			return cur, shrunk
		}
	}
}

// clone deep-copies the spec.
func (sp *progSpec) clone() *progSpec {
	c := *sp
	c.stmts = cloneStmts(sp.stmts)
	return &c
}

func cloneStmts(stmts []specStmt) []specStmt {
	out := make([]specStmt, len(stmts))
	for i, s := range stmts {
		out[i] = s
		if s.Body != nil {
			out[i].Body = cloneStmts(s.Body)
		}
	}
	return out
}

// protects reports whether the statement carries one of the query's labels.
func (q QueryLine) protects(s specStmt) bool {
	if s.Label != "" && (s.Label == q.A || s.Label == q.B) {
		return true
	}
	for _, b := range s.Body {
		if q.protects(b) {
			return true
		}
	}
	return false
}

// deletions enumerates every spec obtained by deleting one deletable
// statement: any top-level statement or loop-body statement not carrying
// the query's labels.
func (sp *progSpec) deletions(q QueryLine) []*progSpec {
	var out []*progSpec
	for i, s := range sp.stmts {
		if !q.protects(s) {
			c := sp.clone()
			c.stmts = append(c.stmts[:i:i], c.stmts[i+1:]...)
			out = append(out, c)
		}
		if s.Kind != stLoop {
			continue
		}
		for j, b := range s.Body {
			if q.protects(b) {
				continue
			}
			c := sp.clone()
			body := c.stmts[i].Body
			c.stmts[i].Body = append(body[:j:j], body[j+1:]...)
			out = append(out, c)
		}
	}
	return out
}

// reproduces re-runs the divergence check on a candidate spec.
func (f *Farm) reproduces(fam *Family, sp *progSpec, q QueryLine, g *heap.Graph, kind string) bool {
	src := sp.Render()
	prog, err := lang.Parse(src)
	if err != nil {
		return false
	}
	if kind == KindExecError {
		_, execErr := oracleSweepAll(prog, fam, sp.nInts, g)
		return execErr != nil
	}
	res, err := analysis.Analyze(prog, "scenario", analysis.Options{})
	if err != nil {
		return false
	}
	var qs []core.Query
	switch q.Mode {
	case "between":
		qs, err = res.QueriesBetween(q.A, q.B)
	case "cross":
		qs, err = res.LoopCarriedBetween(q.A, q.B)
	default:
		qs, err = res.LoopCarriedQueries(q.A)
	}
	if err != nil || len(qs) == 0 {
		return false
	}
	if !f.cfg.ForceNo {
		outs := f.engineFor(fam).Batch(context.Background(), qs)
		if lineVerdict(outs) != "no" {
			return false
		}
	}
	runs, execErr := oracleSweepAll(prog, fam, sp.nInts, g)
	if execErr != nil {
		return false
	}
	for _, r := range runs {
		if hit, _ := lineConflict(r.Trace, q); hit {
			return true
		}
	}
	return false
}
