package scenario

import (
	"fmt"

	"repro/internal/heap"
	"repro/internal/interp"
	"repro/internal/lang"
)

// oracleRun is one concrete execution of a scenario program: the trace plus
// the inputs that produced it (kept for divergence reports).
type oracleRun struct {
	Trace *interp.Trace
	Root  heap.Vertex
	Ints  []int
	Desc  string // "concrete" or "enum"
}

// maxOracleSteps bounds each oracle execution.  Conforming heaps are tiny
// and loops walk acyclic fields, so any budget hit is a harness bug
// surfaced as an exec-error divergence.
const maxOracleSteps = 50000

// runProgram executes fn once on a clone of g with the root and int inputs.
func runProgram(prog *lang.Program, fn string, g *heap.Graph, root heap.Vertex, ints []int) (*interp.Trace, error) {
	f := prog.Func(fn)
	if f == nil {
		return nil, fmt.Errorf("scenario: function %q not found", fn)
	}
	args := make([]interp.Value, len(f.Params))
	ptrSeen := false
	k := 0
	for i, p := range f.Params {
		if p.Type.IsPointerToStruct() {
			if ptrSeen {
				return nil, fmt.Errorf("scenario: %q has more than one pointer parameter", fn)
			}
			ptrSeen = true
			args[i] = interp.Ptr(root)
			continue
		}
		v := 0
		if k < len(ints) {
			v = ints[k]
		}
		k++
		args[i] = interp.Num(float64(v))
	}
	in := interp.New(prog, g.Clone(), interp.Options{MaxSteps: maxOracleSteps})
	_, tr, err := in.Run(fn, args...)
	return tr, err
}

// intCombos enumerates every 0/1 assignment to n int parameters.
func intCombos(n int) [][]int {
	out := make([][]int, 0, 1<<n)
	for bits := 0; bits < 1<<n; bits++ {
		combo := make([]int, n)
		for i := range combo {
			combo[i] = (bits >> i) & 1
		}
		out = append(out, combo)
	}
	return out
}

// sweepHeap runs the program on one heap from the given roots under every
// int combination, appending to runs.  An execution error is returned with
// the failing inputs identified — the farm reports it as an exec-error
// divergence (generated programs must run cleanly on every conforming
// heap).
func sweepHeap(prog *lang.Program, fn string, g *heap.Graph, roots []heap.Vertex, nInts int, desc string, runs []oracleRun) ([]oracleRun, error) {
	for _, root := range roots {
		for _, ints := range intCombos(nInts) {
			tr, err := runProgram(prog, fn, g, root, ints)
			if err != nil {
				return runs, fmt.Errorf("%s heap, root %d, ints %v: %w", desc, root, ints, err)
			}
			runs = append(runs, oracleRun{Trace: tr, Root: root, Ints: ints, Desc: desc})
		}
	}
	return runs, nil
}

// allRoots returns every vertex of g.
func allRoots(g *heap.Graph) []heap.Vertex {
	out := make([]heap.Vertex, g.NumVertices())
	for i := range out {
		out[i] = heap.Vertex(i)
	}
	return out
}

// event is an interp event with its global trace position.
type event struct {
	interp.Event
	idx int
}

// eventsAt collects the label's events with trace indices.
func eventsAt(tr *interp.Trace, label string) []event {
	var out []event
	for i, e := range tr.Events {
		if e.Label == label {
			out = append(out, event{e, i})
		}
	}
	return out
}

func collide(a, b event) bool {
	return a.Vertex == b.Vertex && a.Field == b.Field && a.Field != "" &&
		(a.IsWrite || b.IsWrite)
}

// lineConflict reports whether one run exhibits a dependence covered by the
// query line's claim, under the line's pairing discipline:
//
//   - between, straight-line: any pair (a, b) with a before b in the trace
//     (a "No" claims no instance of A conflicts with a later instance of B);
//   - between, same-iteration (both labels lockstep in one loop): pairs
//     occurrence i with occurrence i — the prover anchors both paths at the
//     shared iteration handle, so its claim is per-iteration;
//   - cross: occurrence i of A against occurrence j > i of B (lockstep
//     occurrence index = iteration index);
//   - loop: two distinct occurrences of A (each iteration executes the
//     label at most once, so distinct occurrences are distinct iterations).
func lineConflict(tr *interp.Trace, q QueryLine) (bool, string) {
	ea := eventsAt(tr, q.A)
	switch q.Mode {
	case "loop":
		for i := range ea {
			for j := i + 1; j < len(ea); j++ {
				if collide(ea[i], ea[j]) {
					return true, fmt.Sprintf("occurrences %d and %d of %s touch vertex %d field %s",
						i, j, q.A, ea[i].Vertex, ea[i].Field)
				}
			}
		}
		return false, ""
	case "cross":
		eb := eventsAt(tr, q.B)
		for i := range ea {
			for j := i + 1; j < len(eb); j++ {
				if collide(ea[i], eb[j]) {
					return true, fmt.Sprintf("%s@%d and %s@%d touch vertex %d field %s",
						q.A, i, q.B, j, ea[i].Vertex, ea[i].Field)
				}
			}
		}
		return false, ""
	default: // between
		eb := eventsAt(tr, q.B)
		if q.SameIter {
			n := len(ea)
			if len(eb) < n {
				n = len(eb)
			}
			for i := 0; i < n; i++ {
				if collide(ea[i], eb[i]) {
					return true, fmt.Sprintf("iteration %d: %s and %s touch vertex %d field %s",
						i, q.A, q.B, ea[i].Vertex, ea[i].Field)
				}
			}
			return false, ""
		}
		for _, a := range ea {
			for _, b := range eb {
				if a.idx < b.idx && collide(a, b) {
					return true, fmt.Sprintf("%s then %s touch vertex %d field %s",
						q.A, q.B, a.Vertex, a.Field)
				}
			}
		}
		return false, ""
	}
}
