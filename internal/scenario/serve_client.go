package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// serveClient talks to a live aptserved endpoint's POST /v1/batch.
type serveClient struct {
	base   string
	client *http.Client
}

func newServeClient(base string) *serveClient {
	return &serveClient{
		base:   strings.TrimRight(base, "/"),
		client: &http.Client{Timeout: 30 * time.Second},
	}
}

// serveBatchRequest mirrors serve.BatchRequest (declared locally so the
// farm depends only on the wire format, exactly like an external client).
type serveBatchRequest struct {
	Program string   `json:"program"`
	Fn      string   `json:"fn,omitempty"`
	Queries []string `json:"queries"`
}

type serveQueryResult struct {
	Line   int    `json:"line"`
	Result string `json:"result"`
}

type serveBatchResponse struct {
	Results []serveQueryResult `json:"results"`
}

// batchVerdicts submits the program and query lines, returning one folded
// verdict per line ("no" only when every expanded query answered no).
func (c *serveClient) batchVerdicts(ctx context.Context, program, fn string, lines []string) ([]string, error) {
	body, err := json.Marshal(serveBatchRequest{Program: program, Fn: fn, Queries: lines})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/batch", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("serve: %s: %s", resp.Status, strings.TrimSpace(string(payload)))
	}
	var br serveBatchResponse
	if err := json.Unmarshal(payload, &br); err != nil {
		return nil, fmt.Errorf("serve: bad response: %w", err)
	}
	verdicts := make([]string, len(lines))
	seen := make([]bool, len(lines))
	for i := range verdicts {
		verdicts[i] = "no"
	}
	for _, r := range br.Results {
		if r.Line < 0 || r.Line >= len(lines) {
			return nil, fmt.Errorf("serve: result line %d out of range", r.Line)
		}
		seen[r.Line] = true
		// The daemon renders core.Result.String() — "No"/"Maybe"/"Yes".
		switch strings.ToLower(r.Result) {
		case "yes":
			verdicts[r.Line] = "yes"
		case "no":
		default:
			if verdicts[r.Line] != "yes" {
				verdicts[r.Line] = "maybe"
			}
		}
	}
	for i, ok := range seen {
		if !ok {
			// The server expanded no queries for this line; no claim made.
			verdicts[i] = "maybe"
		}
	}
	return verdicts, nil
}
