package scenario

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/automata"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/lang"
)

// TestRegressionCorpusPreloadIdentity replays every committed divergence
// artifact's query set twice — once on a cold engine, once on an engine
// preseeded from the cold engine's disk-round-tripped DFA snapshot — and
// demands byte-identical outcomes.  Preloading is a startup optimization;
// the moment it changes a verdict on the fuzz corpus it is a soundness bug.
func TestRegressionCorpusPreloadIdentity(t *testing.T) {
	files, err := ListArtifacts(regressionsDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("regression corpus is empty; expected committed artifacts under testdata/fuzz/regressions")
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			d, err := LoadArtifact(path)
			if err != nil {
				t.Fatal(err)
			}
			fam := FamilyByName(d.Family)
			prog, err := lang.Parse(d.Program)
			if err != nil {
				t.Fatal(err)
			}
			res, err := analysis.Analyze(prog, d.Fn, analysis.Options{})
			if err != nil {
				t.Fatalf("analyze: %v", err)
			}
			var qs []core.Query
			switch d.Query.Mode {
			case "between":
				qs, err = res.QueriesBetween(d.Query.A, d.Query.B)
			case "cross":
				qs, err = res.LoopCarriedBetween(d.Query.A, d.Query.B)
			case "loop":
				qs, err = res.LoopCarriedQueries(d.Query.A)
			}
			if err != nil || len(qs) == 0 {
				t.Skipf("artifact no longer expands to queries (err=%v)", err)
			}

			cold := engine.New(fam.Axioms, engine.Options{QueryTimeout: 2 * time.Second})
			want := cold.Batch(context.Background(), qs)

			aptc := filepath.Join(t.TempDir(), "corpus.aptc")
			if err := cold.DFACache().Snapshot().Save(aptc); err != nil {
				t.Fatalf("Save: %v", err)
			}
			art, err := automata.LoadArtifact(aptc)
			if err != nil {
				t.Fatalf("LoadArtifact: %v", err)
			}
			defer art.Close()

			warm := engine.New(fam.Axioms, engine.Options{QueryTimeout: 2 * time.Second, Preload: art})
			got := warm.Batch(context.Background(), qs)
			for i := range got {
				if got[i].Result != want[i].Result || got[i].Kind != want[i].Kind || got[i].Reason != want[i].Reason {
					t.Errorf("query %d: preloaded engine says %v/%v/%q, cold says %v/%v/%q",
						i, got[i].Result, got[i].Kind, got[i].Reason,
						want[i].Result, want[i].Kind, want[i].Reason)
				}
			}
		})
	}
}
