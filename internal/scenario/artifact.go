package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/lang"
)

// SaveArtifact writes one divergence as a pretty-printed JSON file under
// dir, named after the family and a content-derived suffix so repeated runs
// that find the same divergence overwrite rather than accumulate.  It
// returns the path written.
func SaveArtifact(dir string, d *Divergence) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	blob, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return "", err
	}
	blob = append(blob, '\n')
	h := uint64(1469598103934665603)
	for _, b := range blob {
		h ^= uint64(b)
		h *= 1099511628211
	}
	path := filepath.Join(dir, fmt.Sprintf("%s-%s-%08x.json", d.Family, d.Kind, uint32(h)))
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// LoadArtifact reads one divergence artifact.
func LoadArtifact(path string) (*Divergence, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d Divergence
	if err := json.Unmarshal(blob, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if d.Version != 1 {
		return nil, fmt.Errorf("%s: unsupported artifact version %d", path, d.Version)
	}
	if FamilyByName(d.Family) == nil {
		return nil, fmt.Errorf("%s: unknown family %q", path, d.Family)
	}
	return &d, nil
}

// ListArtifacts returns the artifact files under dir, sorted; a missing
// directory is an empty corpus.
func ListArtifacts(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".json" {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(out)
	return out, nil
}

// Replay re-runs an artifact's cross-check from scratch — parse the stored
// program, rebuild the stored heap, obtain fresh verdicts, and re-run both
// oracles.  It returns nil when the check is clean (the regression is
// fixed) and a fresh Divergence when it still reproduces.
func Replay(d *Divergence) (*Divergence, error) {
	fam := FamilyByName(d.Family)
	prog, err := lang.Parse(d.Program)
	if err != nil {
		return nil, fmt.Errorf("artifact program does not parse: %w", err)
	}
	g, err := d.Heap.Graph()
	if err != nil {
		return nil, err
	}

	runs, execErr := oracleSweepAll(prog, fam, d.NInts, g)
	if d.Kind == KindExecError {
		if execErr == nil {
			return nil, nil
		}
		redo := *d
		redo.Detail = execErr.Error()
		return &redo, nil
	}
	if execErr != nil {
		return nil, fmt.Errorf("artifact program no longer executes: %w", execErr)
	}

	res, err := analysis.Analyze(prog, d.Fn, analysis.Options{})
	if err != nil {
		return nil, fmt.Errorf("artifact program does not analyze: %w", err)
	}
	var qs []core.Query
	switch d.Query.Mode {
	case "between":
		qs, err = res.QueriesBetween(d.Query.A, d.Query.B)
	case "cross":
		qs, err = res.LoopCarriedBetween(d.Query.A, d.Query.B)
	case "loop":
		qs, err = res.LoopCarriedQueries(d.Query.A)
	default:
		return nil, fmt.Errorf("artifact query mode %q unknown", d.Query.Mode)
	}
	if err != nil {
		// The analysis no longer builds the query — there is no No verdict
		// left to contradict.
		return nil, nil
	}
	eng := engine.New(fam.Axioms, engine.Options{QueryTimeout: 2 * time.Second})
	if lineVerdict(eng.Batch(context.Background(), qs)) != "no" {
		return nil, nil
	}
	for _, r := range runs {
		if hit, detail := lineConflict(r.Trace, d.Query); hit {
			redo := *d
			redo.Detail = fmt.Sprintf("still reproduces: verdict No for %q, but (%s, root %d, ints %v): %s",
				d.Query.Text, r.Desc, r.Root, r.Ints, detail)
			return &redo, nil
		}
	}
	return nil, nil
}
