package scenario

import (
	"math/rand"
	"testing"

	"repro/internal/heap"
	"repro/internal/lang"
	"repro/internal/lint"
)

func TestRegistryHasFiveFamilies(t *testing.T) {
	fams := Families()
	if len(fams) != 5 {
		t.Fatalf("registry has %d families, want 5", len(fams))
	}
	want := []string{"bplustree", "deque", "hashtable", "skiplist", "unionfind"}
	for i, f := range fams {
		if f.Name != want[i] {
			t.Errorf("family %d = %q, want %q", i, f.Name, want[i])
		}
		if FamilyByName(f.Name) != f {
			t.Errorf("FamilyByName(%q) does not round-trip", f.Name)
		}
	}
}

// The rendered struct source must parse, and the parsed axiom set must be
// the library set itself — same canonical fingerprint — so the prover the
// farm drives through generated source reasons from exactly the library
// the generators conform to.
func TestStructSourceRoundTrips(t *testing.T) {
	for _, fam := range Families() {
		t.Run(fam.Name, func(t *testing.T) {
			src := fam.StructSource() + "\nvoid f(struct " + fam.StructName + " *h) {\n\tS: h->" + fam.DataField + " = 1;\n}\n"
			prog, err := lang.Parse(src)
			if err != nil {
				t.Fatalf("struct source does not parse: %v\n%s", err, src)
			}
			st := prog.Structs[0]
			if st.Axioms == nil {
				t.Fatal("parsed struct has no axioms")
			}
			if st.Axioms.Key() != fam.Axioms.Key() {
				t.Errorf("parsed axiom set differs from the library:\nparsed:  %v\nlibrary: %v", st.Axioms, fam.Axioms)
			}
			for _, pf := range fam.PointerFields {
				found := false
				for _, f := range st.PointerFields() {
					if f == pf {
						found = true
					}
				}
				if !found {
					t.Errorf("pointer field %s missing from parsed struct", pf)
				}
			}
		})
	}
}

// Every family's axiom library must pass the aptlint axiom-consistency
// gate: a library with contradictory or vacuous axioms would make the whole
// farm vacuous (no conforming heaps to test against).
func TestFamilyAxiomsPassConsistencyLint(t *testing.T) {
	driver := lint.NewDriver(nil, lint.AxiomConsistency())
	for _, fam := range Families() {
		t.Run(fam.Name, func(t *testing.T) {
			src := fam.StructSource() + "\nvoid f(struct " + fam.StructName + " *h) {\n\tS: h->" + fam.DataField + " = 1;\n}\n"
			prog, err := lang.Parse(src)
			if err != nil {
				t.Fatal(err)
			}
			diags, err := driver.Run(fam.Name+".c", prog)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range diags {
				t.Errorf("axiom-consistency diagnostic: %v", d)
			}
		})
	}
}

// Every heap the generators produce must satisfy its family's axioms, at
// every size up to MaxHeap, across many random draws.
func TestGeneratedHeapsConform(t *testing.T) {
	for _, fam := range Families() {
		t.Run(fam.Name, func(t *testing.T) {
			c := heap.NewChecker(fam.Axioms, fam.PointerFields...)
			rng := rand.New(rand.NewSource(7))
			for n := 1; n <= fam.MaxHeap; n++ {
				for trial := 0; trial < 25; trial++ {
					g, root := fam.Generate(rng, n)
					if g.NumVertices() != n {
						t.Fatalf("n=%d: generated %d vertices", n, g.NumVertices())
					}
					if int(root) < 0 || int(root) >= n {
						t.Fatalf("n=%d: root %d out of range", n, root)
					}
					if err := c.Conforms(g); err != nil {
						t.Fatalf("n=%d trial %d: generated heap violates axioms: %v", n, trial, err)
					}
				}
			}
		})
	}
}

// The conforming-heap cache must be non-empty for every family (an empty
// set would make the enumerated oracle vacuous) and every cached shape must
// itself conform.
func TestConformingHeapsCache(t *testing.T) {
	for _, fam := range Families() {
		t.Run(fam.Name, func(t *testing.T) {
			heaps := fam.ConformingHeaps()
			if len(heaps) == 0 {
				t.Fatal("no conforming shapes enumerated")
			}
			c := heap.NewChecker(fam.Axioms, fam.PointerFields...)
			for i, g := range heaps {
				if err := c.Conforms(g); err != nil {
					t.Fatalf("cached shape %d does not conform: %v", i, err)
				}
			}
			again := fam.ConformingHeaps()
			if len(again) != len(heaps) {
				t.Fatalf("cache not stable: %d then %d shapes", len(heaps), len(again))
			}
		})
	}
}
