package scenario

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/lang"
)

// Every generated program must parse, analyze, and carry at least two
// labels; generation from an equal rng state must be byte-identical (the
// -seed replay contract).
func TestGeneratedProgramsParseAndAnalyze(t *testing.T) {
	for _, fam := range Families() {
		t.Run(fam.Name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			for i := 0; i < 40; i++ {
				sp := GenerateSpec(fam, rng)
				src := sp.Render()
				prog, err := lang.Parse(src)
				if err != nil {
					t.Fatalf("spec %d does not parse: %v\n%s", i, err, src)
				}
				if _, err := analysis.Analyze(prog, "scenario", analysis.Options{}); err != nil {
					t.Fatalf("spec %d does not analyze: %v\n%s", i, err, src)
				}
				if n := len(sp.labels()); n < 2 {
					t.Fatalf("spec %d has %d labels, want >= 2", i, n)
				}
			}
		})
	}
}

func TestGenerationIsDeterministic(t *testing.T) {
	fam := FamilyByName("skiplist")
	a := rand.New(rand.NewSource(99))
	b := rand.New(rand.NewSource(99))
	for i := 0; i < 20; i++ {
		sa := GenerateSpec(fam, a).Render()
		sb := GenerateSpec(fam, b).Render()
		if sa != sb {
			t.Fatalf("spec %d differs between equal rng states:\n%s\n-- vs --\n%s", i, sa, sb)
		}
	}
}

// Query lines must respect the pairing preconditions: loop lines only for
// writes inside loops, cross lines only for lockstep same-loop pairs, and
// every between line must have at least one writing side.
func TestQueryLineDisciplines(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	checked := 0
	for i := 0; i < 100; i++ {
		fam := Families()[i%len(Families())]
		sp := GenerateSpec(fam, rng)
		byLabel := map[string]labelInfo{}
		for _, l := range sp.labels() {
			byLabel[l.Label] = l
		}
		for _, q := range sp.queryLines() {
			checked++
			a := byLabel[q.A]
			switch q.Mode {
			case "loop":
				if a.Loop < 0 || !a.IsWrite {
					t.Fatalf("loop line %q on a non-write or non-loop label", q.Text)
				}
			case "cross":
				b := byLabel[q.B]
				if a.Loop < 0 || a.Loop != b.Loop || !a.Lockstep || !b.Lockstep {
					t.Fatalf("cross line %q without lockstep same-loop labels", q.Text)
				}
			case "between":
				b := byLabel[q.B]
				if !a.IsWrite && !b.IsWrite {
					t.Fatalf("between line %q with no writing side", q.Text)
				}
				if q.SameIter != (a.Loop >= 0 && a.Loop == b.Loop) {
					t.Fatalf("between line %q has SameIter=%v for loops %d/%d", q.Text, q.SameIter, a.Loop, b.Loop)
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no query lines generated across 100 specs")
	}
}

// A hand-built spec renders to the expected shape: guards around non-
// induction dereferences, no guard on the loop variable, NULL-initialized
// locals.
func TestRenderShape(t *testing.T) {
	fam := FamilyByName("deque")
	sp := &progSpec{
		fam:     fam,
		nInts:   1,
		nLocals: 1,
		stmts: []specStmt{
			{Kind: stSetup, Src: varRef{Kind: 'h'}, Field: "next", Dst: 0, Cond: -1},
			{Kind: stWrite, Src: varRef{Kind: 't', Idx: 0}, Field: "v", Label: "S0", Cond: 0, CondNeg: true},
			{Kind: stLoop, Src: varRef{Kind: 'h'}, Walk: "next", Cond: -1, Body: []specStmt{
				{Kind: stRead, Src: varRef{Kind: 'p'}, Field: "v", Label: "S1", Cond: -1},
			}},
		},
	}
	src := sp.Render()
	for _, want := range []string{
		"t0 = NULL;",
		"if (h != NULL) {",
		"t0 = h->next;",
		"if (!c0) {",
		"if (t0 != NULL) {",
		"S0: t0->v = x;",
		"while (p != NULL) {",
		"S1: x = p->v;",
		"p = p->next;",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("rendered program missing %q:\n%s", want, src)
		}
	}
	if strings.Contains(src, "if (p != NULL)") {
		t.Errorf("loop induction variable must not be re-guarded:\n%s", src)
	}
	if _, err := lang.Parse(src); err != nil {
		t.Fatalf("hand-built spec does not parse: %v\n%s", err, src)
	}
}
