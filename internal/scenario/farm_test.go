package scenario

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/lang"
	"repro/internal/route"
	"repro/internal/serve"
)

// The fixed-seed smoke farm: every family, a few dozen programs, zero
// divergences.  This is the same check `make fuzzfarm-smoke` runs in CI.
func TestFarmSmoke(t *testing.T) {
	f, err := NewFarm(Config{Seed: 1, Programs: 50})
	if err != nil {
		t.Fatal(err)
	}
	rep, divs, err := f.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range divs {
		t.Errorf("divergence [%s] %s: %s\nprogram:\n%s", d.Kind, d.Family, d.Detail, d.Program)
	}
	if rep.Programs != 50 {
		t.Errorf("checked %d programs, want 50", rep.Programs)
	}
	if rep.Queries == 0 || rep.Verdicts["no"] == 0 {
		t.Errorf("farm proved nothing: %+v", rep)
	}
	if rep.OracleRuns == 0 {
		t.Errorf("oracle never ran: %+v", rep)
	}
	for _, fam := range Families() {
		if rep.FamilyPrograms[fam.Name] == 0 {
			t.Errorf("family %s never exercised", fam.Name)
		}
	}
}

// Teeth: with every verdict forced to No, the oracles must catch planted
// soundness violations, and the minimizer must shrink the programs.
func TestFarmDetectsPlantedUnsoundness(t *testing.T) {
	f, err := NewFarm(Config{Seed: 1, Programs: 20, ForceNo: true, Minimize: true})
	if err != nil {
		t.Fatal(err)
	}
	rep, divs, err := f.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.SoundnessViolations == 0 || len(divs) == 0 {
		t.Fatalf("forced-No farm found no violations: %+v", rep)
	}
	// Every divergence must replay against a fresh engine/oracle... except
	// that honest verdicts are not No, so a planted divergence's Replay
	// comes back clean — which is itself the property Replay guarantees
	// for regression artifacts of fixed bugs.
	for _, d := range divs[:min(3, len(divs))] {
		redo, err := Replay(d)
		if err != nil {
			t.Fatalf("replay failed: %v\nprogram:\n%s", err, d.Program)
		}
		if redo != nil {
			t.Errorf("planted divergence replays as a real one: %s", redo.Detail)
		}
	}
}

// Minimized divergences must stay diverging and must not grow.
func TestMinimizerShrinks(t *testing.T) {
	big, err := NewFarm(Config{Seed: 3, Programs: 10, ForceNo: true})
	if err != nil {
		t.Fatal(err)
	}
	_, rawDivs, err := big.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	small, err := NewFarm(Config{Seed: 3, Programs: 10, ForceNo: true, Minimize: true})
	if err != nil {
		t.Fatal(err)
	}
	_, minDivs, err := small.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rawDivs) == 0 || len(rawDivs) != len(minDivs) {
		t.Fatalf("raw %d vs minimized %d divergences", len(rawDivs), len(minDivs))
	}
	for i := range minDivs {
		if len(minDivs[i].Program) > len(rawDivs[i].Program) {
			t.Errorf("divergence %d grew under minimization: %d -> %d bytes",
				i, len(rawDivs[i].Program), len(minDivs[i].Program))
		}
	}
}

// Serve parity: the same seed run against an in-process aptserved instance
// must agree with the local engine — no mismatches, and the farm's
// reported query count doubles as a load test of /v1/batch.
func TestFarmServeParity(t *testing.T) {
	srv := httptest.NewServer(serve.New(serve.Config{}))
	defer srv.Close()

	f, err := NewFarm(Config{Seed: 2, Programs: 25, ServeURL: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	rep, divs, err := f.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range divs {
		t.Errorf("divergence [%s]: %s", d.Kind, d.Detail)
	}
	if rep.DivergencesByKind[KindServeMismatch] != 0 {
		t.Errorf("serve mismatches: %+v", rep)
	}
	// The in-process daemon answers well inside its 2s default budget, so
	// any softening here means the client misread the wire verdicts (e.g.
	// the "No"-vs-"no" casing), not a genuine timeout.
	if rep.Softenings != 0 {
		t.Errorf("%d serve verdicts softened to maybe: %+v", rep.Softenings, rep)
	}
}

// Router parity: the farm's -serve cross-check is equally valid against a
// consistent-hash router front-ending several backends — the routing tier
// must be invisible to verdicts.  The farm's many distinct programs give
// distinct fingerprints, so the requests genuinely spread across the ring.
func TestFarmServeParityThroughRouter(t *testing.T) {
	b1 := httptest.NewServer(serve.New(serve.Config{}))
	defer b1.Close()
	b2 := httptest.NewServer(serve.New(serve.Config{}))
	defer b2.Close()
	rt := route.New(route.Config{Backends: []string{b1.URL, b2.URL}})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		rt.Drain(ctx) //nolint:errcheck
	}()
	front := httptest.NewServer(rt)
	defer front.Close()

	f, err := NewFarm(Config{Seed: 2, Programs: 25, ServeURL: front.URL})
	if err != nil {
		t.Fatal(err)
	}
	rep, divs, err := f.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range divs {
		t.Errorf("divergence [%s]: %s", d.Kind, d.Detail)
	}
	if rep.DivergencesByKind[KindServeMismatch] != 0 || rep.Softenings != 0 {
		t.Errorf("router cross-check degraded verdicts: %+v", rep)
	}
	z := rt.StatzSnapshot()
	if z.Accepted == 0 || z.Accepted != z.Completed {
		t.Errorf("router accepted=%d completed=%d; farm traffic did not flow through it", z.Accepted, z.Completed)
	}
	var forwarded int64
	for _, b := range z.Backends {
		forwarded += b.Forwarded
	}
	if forwarded < z.Accepted {
		t.Errorf("backends forwarded %d < accepted %d", forwarded, z.Accepted)
	}
}

// Artifacts round-trip through disk and replay.
func TestArtifactSaveLoadReplay(t *testing.T) {
	f, err := NewFarm(Config{Seed: 1, Programs: 20, ForceNo: true, Minimize: true})
	if err != nil {
		t.Fatal(err)
	}
	_, divs, err := f.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(divs) == 0 {
		t.Fatal("no divergences to round-trip")
	}
	dir := t.TempDir()
	path, err := SaveArtifact(dir, divs[0])
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Program != divs[0].Program || loaded.Query != divs[0].Query {
		t.Fatal("artifact did not round-trip")
	}
	if redo, err := Replay(loaded); err != nil {
		t.Fatal(err)
	} else if redo != nil {
		t.Errorf("planted artifact replays as a live divergence: %s", redo.Detail)
	}

	files, err := ListArtifacts(dir)
	if err != nil || len(files) != 1 {
		t.Fatalf("ListArtifacts = %v, %v", files, err)
	}
	if files, err := ListArtifacts(filepath.Join(dir, "missing")); err != nil || files != nil {
		t.Fatalf("missing dir must be an empty corpus, got %v, %v", files, err)
	}
	if err := os.WriteFile(filepath.Join(dir, "junk.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadArtifact(filepath.Join(dir, "junk.json")); err == nil {
		t.Error("corrupt artifact loaded without error")
	}
}

// The oracle sweep must flag a program that violates the farm's null-guard
// discipline as an execution error (the farm reports it as an exec-error
// divergence rather than crashing or silently skipping the program).
func TestOracleSweepCatchesUnguardedDeref(t *testing.T) {
	fam := FamilyByName("unionfind")
	src := fam.StructSource() + `
void scenario(struct UFNode *h) {
	struct UFNode *t;
	t = h->parent;
	S0: t->v = 1;
}
`
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := oracleSweepAll(prog, fam, 0, nil); err == nil {
		t.Fatal("unguarded dereference swept without error")
	}

	// Sanity check the other direction: a renderer-built (guarded) spec
	// runs the whole farm pipeline without any divergence.
	sp := &progSpec{
		fam:     fam,
		nInts:   1,
		nLocals: 1,
		stmts: []specStmt{
			{Kind: stSetup, Src: varRef{Kind: 'h'}, Field: "parent", Dst: 0, Cond: -1},
			{Kind: stWrite, Src: varRef{Kind: 't', Idx: 0}, Field: "v", Label: "S0", Cond: -1},
			{Kind: stRead, Src: varRef{Kind: 'h'}, Field: "v", Label: "S1", Cond: -1},
		},
	}
	f, err := NewFarm(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	g, root := fam.Generate(rand.New(rand.NewSource(4)), 4)
	if err := f.checkProgram(context.Background(), fam, sp, g, root); err != nil {
		t.Fatal(err)
	}
	if f.report.Divergences != 0 {
		t.Fatalf("well-guarded spec diverged: %+v", f.report)
	}
}
