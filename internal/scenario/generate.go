package scenario

import (
	"fmt"
	"math/rand"
)

// specGen carries the running state of one random program build.
type specGen struct {
	fam    *Family
	rng    *rand.Rand
	sp     *progSpec
	labels int
	// ready lists the pointer variables known at the current top-level
	// point: h plus every local assigned so far.
	ready []varRef
}

// GenerateSpec builds a random program spec over the family.  The same
// (family, rng state) always yields the same spec — aptfuzz's -seed replay
// depends on it.
func GenerateSpec(fam *Family, rng *rand.Rand) *progSpec {
	g := &specGen{
		fam: fam,
		rng: rng,
		sp: &progSpec{
			fam:   fam,
			nInts: 1 + rng.Intn(2),
		},
		ready: []varRef{{Kind: 'h'}},
	}
	g.sp.nLocals = 1 + rng.Intn(3)

	loops := 0
	n := 3 + rng.Intn(6)
	for i := 0; i < n; i++ {
		switch k := g.rng.Intn(10); {
		case k < 3:
			g.emitSetup()
		case k < 8 || loops >= 2:
			g.emitAccess()
		default:
			g.emitLoop()
			loops++
		}
	}
	// Guarantee at least two labels so the program supports a query.
	for g.labels < 2 {
		g.emitAccess()
	}
	return g.sp
}

func (g *specGen) newLabel() string {
	g.labels++
	return fmt.Sprintf("S%d", g.labels-1)
}

func (g *specGen) pickVar() varRef { return g.ready[g.rng.Intn(len(g.ready))] }
func (g *specGen) pickField() string {
	return g.fam.PointerFields[g.rng.Intn(len(g.fam.PointerFields))]
}

// maybeCond wraps roughly a third of top-level accesses in an int-parameter
// guard, exercising the path-sensitivity tier.
func (g *specGen) maybeCond(s *specStmt) {
	if g.rng.Intn(3) == 0 {
		s.Cond = g.rng.Intn(g.sp.nInts)
		s.CondNeg = g.rng.Intn(2) == 0
	} else {
		s.Cond = -1
	}
}

// emitSetup assigns a pointer local from a ready variable, occasionally
// labeling it (a labeled pointer-field read is an access like any other).
func (g *specGen) emitSetup() {
	dst := g.rng.Intn(g.sp.nLocals)
	s := specStmt{
		Kind:  stSetup,
		Src:   g.pickVar(),
		Field: g.pickField(),
		Dst:   dst,
		Cond:  -1,
	}
	if g.rng.Intn(3) == 0 {
		s.Label = g.newLabel()
	}
	g.sp.stmts = append(g.sp.stmts, s)
	ref := varRef{Kind: 't', Idx: dst}
	for _, r := range g.ready {
		if r == ref {
			return
		}
	}
	g.ready = append(g.ready, ref)
}

// emitAccess appends one labeled top-level access: a data read, a data
// write, or (rarely) a structural truncation.
func (g *specGen) emitAccess() {
	s := specStmt{Src: g.pickVar(), Label: g.newLabel()}
	switch k := g.rng.Intn(10); {
	case k < 4:
		s.Kind, s.Field = stRead, g.fam.DataField
	case k < 8:
		s.Kind, s.Field = stWrite, g.fam.DataField
	default:
		s.Kind, s.Field = stTrunc, g.pickField()
	}
	g.maybeCond(&s)
	g.sp.stmts = append(g.sp.stmts, s)
}

// emitLoop appends a NULL-terminated walk over one of the family's safe
// walk fields, with one to three labeled body statements.
func (g *specGen) emitLoop() {
	loop := specStmt{
		Kind: stLoop,
		Src:  g.pickVar(),
		Walk: g.fam.WalkFields[g.rng.Intn(len(g.fam.WalkFields))],
		Cond: -1,
	}
	hasAux := false
	bn := 1 + g.rng.Intn(3)
	for i := 0; i < bn; i++ {
		s := specStmt{Src: varRef{Kind: 'p'}, Label: g.newLabel(), Cond: -1}
		switch k := g.rng.Intn(12); {
		case k < 4:
			s.Kind, s.Field = stRead, g.fam.DataField
		case k < 8:
			s.Kind, s.Field = stWrite, g.fam.DataField
		case k < 9:
			s.Kind, s.Field = stTrunc, g.pickField()
		case k < 11:
			// Aux chase: r = p->f, unlabeled, then a guarded access on r.
			s.Kind, s.Field, s.Dst, s.Label = stSetup, g.pickField(), -1, ""
			loop.Body = append(loop.Body, s)
			hasAux = true
			s = specStmt{Src: varRef{Kind: 'r'}, Label: g.newLabel(), Cond: -1}
			if g.rng.Intn(2) == 0 {
				s.Kind, s.Field = stRead, g.fam.DataField
			} else {
				s.Kind, s.Field = stWrite, g.fam.DataField
			}
		default:
			if !hasAux {
				s.Kind, s.Field = stRead, g.fam.DataField
			} else {
				s = specStmt{Src: varRef{Kind: 'r'}, Label: g.newLabel(), Cond: -1,
					Kind: stTrunc, Field: g.pickField()}
			}
		}
		loop.Body = append(loop.Body, s)
	}
	g.sp.stmts = append(g.sp.stmts, loop)
}
