package scenario

import (
	"fmt"
	"strings"
)

// A progSpec is the generator's intermediate form of one scenario program:
// a small list of statements over one structure family, rendered to mini-C
// by Render.  Keeping the spec around (rather than only the source text)
// is what makes shrinking cheap: the minimizer drops statements from the
// spec and re-renders.
//
// The spec is built so that every rendered program is safe to execute on
// every conforming heap of its family:
//
//   - every dereference is null-guarded, except accesses through a loop
//     induction variable directly in its loop body (the while condition is
//     the guard);
//   - loops are NULL-terminated single-field walks over WalkFields (covered
//     by the family's acyclicity axiom), and the induction variable is
//     never reassigned in the body;
//   - the only structural modification is truncation (p->f = NULL), which
//     preserves injectivity, acyclicity, and walk termination.
type progSpec struct {
	fam     *Family
	nInts   int // int parameters c0..c{nInts-1}
	nLocals int // pointer locals t0..t{nLocals-1}
	stmts   []specStmt
}

// varRef names a pointer-valued variable of the spec.
type varRef struct {
	// Kind: 'h' the root parameter, 't' local (Idx), 'p' the loop
	// induction variable, 'r' the loop-body aux local.
	Kind byte
	Idx  int
}

func (v varRef) String() string {
	switch v.Kind {
	case 'h':
		return "h"
	case 't':
		return fmt.Sprintf("t%d", v.Idx)
	case 'p':
		return "p"
	default:
		return "r"
	}
}

type stmtKind int

const (
	// stSetup: DST = SRC->Field; (pointer-field read, optionally labeled).
	stSetup stmtKind = iota
	// stRead: x = SRC->Field; (labeled data read).
	stRead
	// stWrite: SRC->Field = x; (labeled data write).
	stWrite
	// stTrunc: SRC->Field = NULL; (labeled structural truncation).
	stTrunc
	// stLoop: p = SRC; while (p != NULL) { Body; p = p->Walk; }.
	stLoop
)

type specStmt struct {
	Kind  stmtKind
	Src   varRef
	Field string
	Dst   int    // stSetup: destination local index
	Label string // "" for unlabeled setup
	// Cond wraps the statement in "if (cK)" (Cond = K) or "if (!cK)"
	// (CondNeg); -1 leaves it unconditional.  Only used at top level.
	Cond    int
	CondNeg bool
	// Loop fields.
	Walk string
	Body []specStmt
}

// labelInfo records where a label sits, for query-line generation and
// oracle pairing.
type labelInfo struct {
	Label string
	// Loop indexes the top-level loop statement containing the label, or
	// -1 at top level.
	Loop int
	// Lockstep: the statement executes unconditionally in every iteration
	// of its loop (subject is the induction variable, no wrapping guard).
	Lockstep bool
	// IsWrite reports whether the labeled access writes.
	IsWrite bool
	// Field is the accessed field.
	Field string
}

// labels returns the spec's labels in program order.
func (sp *progSpec) labels() []labelInfo {
	var out []labelInfo
	for i, s := range sp.stmts {
		if s.Kind == stLoop {
			for _, b := range s.Body {
				if b.Label == "" {
					continue
				}
				out = append(out, labelInfo{
					Label:    b.Label,
					Loop:     i,
					Lockstep: b.Src.Kind == 'p' && b.Cond < 0,
					IsWrite:  b.Kind == stWrite || b.Kind == stTrunc,
					Field:    b.Field,
				})
			}
			continue
		}
		if s.Label != "" {
			out = append(out, labelInfo{
				Label:   s.Label,
				Loop:    -1,
				IsWrite: s.Kind == stWrite || s.Kind == stTrunc,
				Field:   s.Field,
			})
		}
	}
	return out
}

// QueryLine is one aptdep -batch line the farm submits for this program,
// plus the pairing discipline its oracle check uses.
type QueryLine struct {
	// Text is the batch line ("between S T", "cross S T", "loop U").
	Text string `json:"text"`
	// Mode is "between", "cross", or "loop".
	Mode string `json:"mode"`
	// A and B are the two labels (B empty for loop lines).
	A string `json:"a"`
	B string `json:"b,omitempty"`
	// SameIter: both labels advance in lockstep through one loop, so the
	// line's between-claim is about same-iteration instances and the
	// oracle pairs occurrence i with occurrence i.
	SameIter bool `json:"same_iter,omitempty"`
}

// queryLines derives every query line the program supports: between-lines
// for label pairs with at least one write, cross/loop lines inside loops.
func (sp *progSpec) queryLines() []QueryLine {
	ls := sp.labels()
	var out []QueryLine
	for i, a := range ls {
		for _, b := range ls[i+1:] {
			if !a.IsWrite && !b.IsWrite {
				continue
			}
			sameLoop := a.Loop >= 0 && a.Loop == b.Loop
			if sameLoop && !(a.Lockstep && b.Lockstep) {
				// Conditional statements drift out of occurrence
				// alignment; neither between nor cross pairing is
				// meaningful for them.
				continue
			}
			out = append(out, QueryLine{
				Text: "between " + a.Label + " " + b.Label, Mode: "between",
				A: a.Label, B: b.Label, SameIter: sameLoop,
			})
			if sameLoop {
				out = append(out, QueryLine{
					Text: "cross " + a.Label + " " + b.Label, Mode: "cross",
					A: a.Label, B: b.Label,
				})
			}
		}
		if a.Loop >= 0 && a.IsWrite {
			out = append(out, QueryLine{Text: "loop " + a.Label, Mode: "loop", A: a.Label})
		}
	}
	return out
}

// Render emits the spec as a mini-C compilation unit: the family's struct
// declaration followed by one function over it.
func (sp *progSpec) Render() string {
	var b strings.Builder
	b.WriteString(sp.fam.StructSource())
	b.WriteString("\nvoid scenario(")
	fmt.Fprintf(&b, "struct %s *h", sp.fam.StructName)
	for i := 0; i < sp.nInts; i++ {
		fmt.Fprintf(&b, ", int c%d", i)
	}
	b.WriteString(") {\n")
	for i := 0; i < sp.nLocals; i++ {
		fmt.Fprintf(&b, "\tstruct %s *t%d;\n", sp.fam.StructName, i)
	}
	hasLoop, hasAux := false, false
	for _, s := range sp.stmts {
		if s.Kind == stLoop {
			hasLoop = true
			for _, bs := range s.Body {
				if bs.Src.Kind == 'r' || (bs.Kind == stSetup && bs.Dst < 0) {
					hasAux = true
				}
			}
		}
	}
	if hasLoop {
		fmt.Fprintf(&b, "\tstruct %s *p;\n", sp.fam.StructName)
	}
	if hasAux {
		fmt.Fprintf(&b, "\tstruct %s *r;\n", sp.fam.StructName)
	}
	b.WriteString("\tint x;\n\tx = 0;\n")
	for i := 0; i < sp.nLocals; i++ {
		fmt.Fprintf(&b, "\tt%d = NULL;\n", i)
	}
	for _, s := range sp.stmts {
		sp.renderStmt(&b, s, 1)
	}
	b.WriteString("}\n")
	return b.String()
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteByte('\t')
	}
}

// renderStmt renders one statement.  Null guards are added around every
// dereference of a non-induction variable; Cond wraps the guarded form.
func (sp *progSpec) renderStmt(b *strings.Builder, s specStmt, depth int) {
	if s.Kind == stLoop {
		indent(b, depth)
		fmt.Fprintf(b, "p = %s;\n", s.Src)
		indent(b, depth)
		b.WriteString("while (p != NULL) {\n")
		for _, bs := range s.Body {
			sp.renderStmt(b, bs, depth+1)
		}
		indent(b, depth+1)
		fmt.Fprintf(b, "p = p->%s;\n", s.Walk)
		indent(b, depth)
		b.WriteString("}\n")
		return
	}

	if s.Cond >= 0 {
		indent(b, depth)
		neg := ""
		if s.CondNeg {
			neg = "!"
		}
		fmt.Fprintf(b, "if (%sc%d) {\n", neg, s.Cond)
		depth++
	}
	guarded := s.Src.Kind != 'p'
	if guarded {
		indent(b, depth)
		fmt.Fprintf(b, "if (%s != NULL) {\n", s.Src)
		depth++
	}
	indent(b, depth)
	label := ""
	if s.Label != "" {
		label = s.Label + ": "
	}
	switch s.Kind {
	case stSetup:
		dst := "r"
		if s.Dst >= 0 {
			dst = fmt.Sprintf("t%d", s.Dst)
		}
		fmt.Fprintf(b, "%s%s = %s->%s;\n", label, dst, s.Src, s.Field)
	case stRead:
		fmt.Fprintf(b, "%sx = %s->%s;\n", label, s.Src, s.Field)
	case stWrite:
		fmt.Fprintf(b, "%s%s->%s = x;\n", label, s.Src, s.Field)
	case stTrunc:
		fmt.Fprintf(b, "%s%s->%s = NULL;\n", label, s.Src, s.Field)
	}
	if guarded {
		depth--
		indent(b, depth)
		b.WriteString("}\n")
	}
	if s.Cond >= 0 {
		depth--
		indent(b, depth)
		b.WriteString("}\n")
	}
}
