package scenario

import (
	"path/filepath"
	"testing"
)

// regressionsDir is the committed corpus of minimized divergence artifacts.
// cmd/aptfuzz writes new ones here; this test replays every artifact from
// scratch on each `go test` run, so a fixed divergence stays fixed.
const regressionsDir = "../../testdata/fuzz/regressions"

func TestRegressionCorpusReplaysClean(t *testing.T) {
	files, err := ListArtifacts(regressionsDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("regression corpus is empty; expected committed artifacts under testdata/fuzz/regressions")
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			d, err := LoadArtifact(path)
			if err != nil {
				t.Fatal(err)
			}
			redo, err := Replay(d)
			if err != nil {
				t.Fatalf("replay failed: %v\nprogram:\n%s", err, d.Program)
			}
			if redo != nil {
				t.Errorf("regression reproduces: %s\nprogram:\n%s", redo.Detail, d.Program)
			}
		})
	}
}
