package scenario

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/heap"
	"repro/internal/lang"
)

// Config drives one farm run.
type Config struct {
	// Seed seeds the generator; the same seed always produces the same
	// programs, heaps, and queries.
	Seed int64
	// Programs is how many scenario programs to generate and check.
	Programs int
	// Families restricts the run to the named families (empty = all).
	Families []string
	// Workers and QueryTimeout configure each family's engine.
	Workers      int
	QueryTimeout time.Duration
	// ServeURL, when set, additionally sends every program's batch to a
	// live aptserved endpoint (POST ServeURL/v1/batch) and cross-checks
	// the answers — doubling as a load test of the serving tier.
	ServeURL string
	// Minimize shrinks each diverging program before reporting it.
	Minimize bool
	// ForceNo is a test hook: every local verdict is overridden to No
	// before the oracle check, proving the farm detects planted unsound
	// verdicts (the teeth test).
	ForceNo bool
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

// Report is the farm's summary, serialized into BENCH_fuzzfarm.json.
type Report struct {
	Seed           int64          `json:"seed"`
	Programs       int            `json:"programs"`
	QueryLines     int            `json:"query_lines"`
	SkippedLines   int            `json:"skipped_lines"`
	Queries        int            `json:"queries"`
	Verdicts       map[string]int `json:"verdicts"`
	OracleRuns     int            `json:"oracle_runs"`
	FamilyPrograms map[string]int `json:"family_programs"`

	Divergences         int            `json:"divergences"`
	DivergencesByKind   map[string]int `json:"divergences_by_kind"`
	SoundnessViolations int            `json:"soundness_violations"`
	// Softenings counts serve answers degraded toward Maybe relative to
	// the local verdict (timeout tolerance, not a divergence).
	Softenings int `json:"softenings"`

	ElapsedMS     int64   `json:"elapsed_ms"`
	QueriesPerSec float64 `json:"queries_per_sec"`
}

// Divergence kinds.
const (
	// KindSoundness: a No verdict coexists with a concrete conflicting
	// access pair on a conforming heap — the headline contract violation.
	KindSoundness = "soundness"
	// KindExecError: a generated program failed to execute on a conforming
	// heap (null dereference or exhausted step budget) — a harness bug.
	KindExecError = "exec-error"
	// KindServeMismatch: the local engine and the aptserved endpoint gave
	// contradictory definite answers (No against Yes) for one query line.
	KindServeMismatch = "serve-mismatch"
)

// HeapEdge is one edge of a serialized heap.
type HeapEdge struct {
	From  int    `json:"from"`
	Field string `json:"field"`
	To    int    `json:"to"`
}

// HeapSnapshot serializes a concrete heap for replay.
type HeapSnapshot struct {
	N     int        `json:"n"`
	Root  int        `json:"root"`
	Edges []HeapEdge `json:"edges"`
}

// snapshotHeap serializes g.
func snapshotHeap(g *heap.Graph, root heap.Vertex) *HeapSnapshot {
	s := &HeapSnapshot{N: g.NumVertices(), Root: int(root)}
	for _, f := range g.Fields() {
		for v := 0; v < g.NumVertices(); v++ {
			if w, ok := g.Edge(heap.Vertex(v), f); ok {
				s.Edges = append(s.Edges, HeapEdge{From: v, Field: f, To: int(w)})
			}
		}
	}
	return s
}

// Graph rebuilds the serialized heap.
func (s *HeapSnapshot) Graph() (*heap.Graph, error) {
	g := heap.New(s.N)
	for _, e := range s.Edges {
		if e.From < 0 || e.From >= s.N || e.To < 0 || e.To >= s.N {
			return nil, fmt.Errorf("scenario: heap edge %d-%s->%d out of range (n=%d)", e.From, e.Field, e.To, s.N)
		}
		g.SetEdge(heap.Vertex(e.From), e.Field, heap.Vertex(e.To))
	}
	return g, nil
}

// Divergence is one cross-check failure, in the exact shape written to a
// regression artifact.
type Divergence struct {
	Version int    `json:"version"`
	Kind    string `json:"kind"`
	Family  string `json:"family"`
	// Program is the full rendered mini-C source (post-minimization when
	// the farm ran with Minimize).
	Program string `json:"program"`
	Fn      string `json:"fn"`
	// NInts is the number of int parameters (the oracle sweeps all 0/1
	// combinations).
	NInts int `json:"n_ints"`
	// Query is the diverging line; zero-valued for exec-error kinds.
	Query QueryLine `json:"query"`
	// Verdict is the definite answer under test ("no", or "no-vs-yes" for
	// serve mismatches).
	Verdict string `json:"verdict,omitempty"`
	Detail  string `json:"detail"`
	// Heap is the generated concrete instance the program ran against.
	Heap *HeapSnapshot `json:"heap"`
}

// Farm is one configured run.
type Farm struct {
	cfg     Config
	rng     *rand.Rand
	report  *Report
	engines map[string]*engine.Engine
	divs    []*Divergence
	serve   *serveClient
}

// NewFarm validates the configuration.
func NewFarm(cfg Config) (*Farm, error) {
	if cfg.Programs <= 0 {
		cfg.Programs = 100
	}
	if cfg.QueryTimeout <= 0 {
		cfg.QueryTimeout = 200 * time.Millisecond
	}
	f := &Farm{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		report: &Report{
			Seed:              cfg.Seed,
			Verdicts:          map[string]int{},
			FamilyPrograms:    map[string]int{},
			DivergencesByKind: map[string]int{},
		},
		engines: map[string]*engine.Engine{},
	}
	if cfg.ServeURL != "" {
		f.serve = newServeClient(cfg.ServeURL)
	}
	return f, nil
}

// families resolves the configured family subset.
func (f *Farm) families() ([]*Family, error) {
	if len(f.cfg.Families) == 0 {
		return Families(), nil
	}
	var out []*Family
	for _, name := range f.cfg.Families {
		fam := FamilyByName(name)
		if fam == nil {
			return nil, fmt.Errorf("scenario: unknown family %q", name)
		}
		out = append(out, fam)
	}
	return out, nil
}

func (f *Farm) logf(format string, args ...any) {
	if f.cfg.Logf != nil {
		f.cfg.Logf(format, args...)
	}
}

// engineFor returns the family's engine, building it on first use.
func (f *Farm) engineFor(fam *Family) *engine.Engine {
	if e, ok := f.engines[fam.Name]; ok {
		return e
	}
	e := engine.New(fam.Axioms, engine.Options{
		Workers:      f.cfg.Workers,
		QueryTimeout: f.cfg.QueryTimeout,
	})
	f.engines[fam.Name] = e
	return e
}

// Run generates and checks cfg.Programs scenario programs, returning the
// report and every divergence found.  A returned error means the farm
// itself failed (a malformed configuration or an unreachable serve
// endpoint), not that a divergence was found.
func (f *Farm) Run(ctx context.Context) (*Report, []*Divergence, error) {
	fams, err := f.families()
	if err != nil {
		return nil, nil, err
	}
	start := time.Now()
	for i := 0; i < f.cfg.Programs; i++ {
		if err := ctx.Err(); err != nil {
			break
		}
		fam := fams[i%len(fams)]
		sp := GenerateSpec(fam, f.rng)
		n := 1 + f.rng.Intn(fam.MaxHeap)
		g, root := fam.Generate(f.rng, n)
		if err := f.checkProgram(ctx, fam, sp, g, root); err != nil {
			return nil, nil, fmt.Errorf("program %d (family %s): %w", i, fam.Name, err)
		}
		f.report.Programs++
		f.report.FamilyPrograms[fam.Name]++
		if f.cfg.Logf != nil && (i+1)%50 == 0 {
			f.logf("checked %d/%d programs, %d queries, %d divergences",
				i+1, f.cfg.Programs, f.report.Queries, f.report.Divergences)
		}
	}
	f.report.ElapsedMS = time.Since(start).Milliseconds()
	if f.report.ElapsedMS > 0 {
		f.report.QueriesPerSec = float64(f.report.Queries) * 1000 / float64(f.report.ElapsedMS)
	}
	return f.report, f.divs, nil
}

// lineVerdict folds the outcomes of one query line: "no" only when every
// expanded query answered No, "yes" when any answered Yes, else "maybe".
func lineVerdict(outs []core.Outcome) string {
	verdict := "no"
	for _, o := range outs {
		switch o.Result {
		case core.Yes:
			return "yes"
		case core.Maybe:
			verdict = "maybe"
		}
	}
	if len(outs) == 0 {
		return "maybe"
	}
	return verdict
}

// checkProgram renders, analyzes, proves, and cross-checks one scenario.
func (f *Farm) checkProgram(ctx context.Context, fam *Family, sp *progSpec, g *heap.Graph, root heap.Vertex) error {
	src := sp.Render()
	prog, err := lang.Parse(src)
	if err != nil {
		return fmt.Errorf("generated program does not parse: %v\n%s", err, src)
	}
	res, err := analysis.Analyze(prog, "scenario", analysis.Options{})
	if err != nil {
		return fmt.Errorf("generated program does not analyze: %v\n%s", err, src)
	}

	// Expand each candidate query line; lines the analysis cannot anchor
	// (e.g. an aux access without a usable iteration handle) are skipped.
	lines := sp.queryLines()
	var (
		kept    []QueryLine
		queries []core.Query
		spans   [][2]int // query index range per kept line
	)
	for _, q := range lines {
		var (
			qs  []core.Query
			err error
		)
		switch q.Mode {
		case "between":
			qs, err = res.QueriesBetween(q.A, q.B)
		case "cross":
			qs, err = res.LoopCarriedBetween(q.A, q.B)
		default:
			qs, err = res.LoopCarriedQueries(q.A)
		}
		if err != nil || len(qs) == 0 {
			f.report.SkippedLines++
			continue
		}
		spans = append(spans, [2]int{len(queries), len(queries) + len(qs)})
		queries = append(queries, qs...)
		kept = append(kept, q)
	}
	f.report.QueryLines += len(kept)
	f.report.Queries += len(queries)
	if len(kept) == 0 {
		return nil
	}

	outs := f.engineFor(fam).Batch(ctx, queries)
	verdicts := make([]string, len(kept))
	for i, span := range spans {
		verdicts[i] = lineVerdict(outs[span[0]:span[1]])
		if f.cfg.ForceNo {
			verdicts[i] = "no"
		}
		f.report.Verdicts[verdicts[i]]++
	}

	// Serve cross-check: same program, same lines, live endpoint.
	serveVerdicts := map[int]string{}
	if f.serve != nil {
		texts := make([]string, len(kept))
		for i, q := range kept {
			texts[i] = q.Text
		}
		sv, err := f.serve.batchVerdicts(ctx, src, "scenario", texts)
		if err != nil {
			return fmt.Errorf("serve cross-check: %w", err)
		}
		for i, v := range sv {
			serveVerdicts[i] = v
			local := verdicts[i]
			if (local == "no" && v == "yes") || (local == "yes" && v == "no") {
				f.recordDivergence(fam, sp, src, kept[i], g, root, KindServeMismatch, "no-vs-yes",
					fmt.Sprintf("local verdict %q, serve verdict %q for %q", local, v, kept[i].Text))
			} else if local != v && (local == "no" || v == "no") {
				f.report.Softenings++
			}
		}
	}

	// Oracle: concrete generated instance plus the family's exhaustive
	// conforming small heaps, every root, every int-parameter combination.
	runs, execErr := f.oracleRuns(prog, sp, g)
	if execErr != nil {
		f.recordDivergence(fam, sp, src, QueryLine{}, g, root, KindExecError, "",
			execErr.Error())
		return nil
	}

	for i, q := range kept {
		claimsNo := verdicts[i] == "no" || serveVerdicts[i] == "no"
		if !claimsNo {
			continue
		}
		for _, r := range runs {
			if hit, detail := lineConflict(r.Trace, q); hit {
				d := fmt.Sprintf("verdict No for %q, but on a conforming heap (%s, root %d, ints %v): %s",
					q.Text, r.Desc, r.Root, r.Ints, detail)
				f.recordDivergence(fam, sp, src, q, g, root, KindSoundness, "no", d)
				f.report.SoundnessViolations++
				break
			}
		}
	}
	return nil
}

// oracleRuns executes the program over the concrete generated heap and the
// family's enumerated conforming heaps.
func (f *Farm) oracleRuns(prog *lang.Program, sp *progSpec, g *heap.Graph) ([]oracleRun, error) {
	runs, err := oracleSweepAll(prog, sp.fam, sp.nInts, g)
	f.report.OracleRuns += len(runs)
	return runs, err
}

// oracleSweepAll is the oracle run set for one program: the concrete
// instance (when non-nil) plus the family's exhaustive conforming small
// heaps, from every root, under every int-parameter combination.
func oracleSweepAll(prog *lang.Program, fam *Family, nInts int, g *heap.Graph) ([]oracleRun, error) {
	var (
		runs []oracleRun
		err  error
	)
	if g != nil {
		runs, err = sweepHeap(prog, "scenario", g, allRoots(g), nInts, "concrete", runs)
		if err != nil {
			return runs, err
		}
	}
	for _, eg := range fam.ConformingHeaps() {
		runs, err = sweepHeap(prog, "scenario", eg, allRoots(eg), nInts, "enum", runs)
		if err != nil {
			return runs, err
		}
	}
	return runs, nil
}

// recordDivergence minimizes (when configured) and records one divergence.
func (f *Farm) recordDivergence(fam *Family, sp *progSpec, src string, q QueryLine, g *heap.Graph, root heap.Vertex, kind, verdict, detail string) {
	// Serve mismatches are not minimized: reproduction would hammer the
	// live endpoint once per shrink attempt.
	if f.cfg.Minimize && kind != KindServeMismatch {
		if msp, ok := f.minimizeSpec(fam, sp, q, g, kind); ok {
			sp = msp
			src = msp.Render()
		}
	}
	d := &Divergence{
		Version: 1,
		Kind:    kind,
		Family:  fam.Name,
		Program: src,
		Fn:      "scenario",
		NInts:   sp.nInts,
		Query:   q,
		Verdict: verdict,
		Detail:  detail,
		Heap:    snapshotHeap(g, root),
	}
	f.divs = append(f.divs, d)
	f.report.Divergences++
	f.report.DivergencesByKind[kind]++
	f.logf("DIVERGENCE [%s] family=%s: %s", kind, fam.Name, detail)
}
