// Package scenario is the differential-fuzzing farm behind cmd/aptfuzz: a
// registry of dynamic-structure families (axiom library + random instance
// generator), a random generator of small mini-C programs over those
// structures, and a harness that cross-checks every prover verdict obtained
// through engine.Batch (or a live aptserved endpoint) against two ground-
// truth oracles — concrete execution on the generated heap, and exhaustive
// execution over every conforming small heap (internal/heap/oracle's
// bounded enumeration).
//
// The headline contract under test is the soundness direction of the paper's
// dependence test: the prover must never answer "No dependence" for an
// access pair that some conforming heap makes collide.  Divergences are
// minimized and written as replayable JSON artifacts.
package scenario

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"repro/internal/axiom"
	"repro/internal/heap"
)

// Family is one structure family the farm can draw scenarios from: the
// struct declaration (fields + axiom library) and a generator of random
// conforming instances.
type Family struct {
	// Name is the registry key (e.g. "skiplist").
	Name string
	// StructName is the rendered struct tag.
	StructName string
	// PointerFields are the recursive pointer fields, in declaration order.
	PointerFields []string
	// DataField is the scalar payload field every family carries.
	DataField string
	// Axioms is the family's aliasing-axiom library.
	Axioms *axiom.Set
	// WalkFields are the pointer fields safe to drive a NULL-terminated
	// loop over: each is covered by the library's acyclicity axiom, so a
	// walk over any conforming heap terminates.
	WalkFields []string
	// EnumVertices bounds the exhaustive small-heap oracle for this family
	// (the enumeration visits (n+1)^(n·fields) shapes per size n).
	EnumVertices int
	// MaxHeap bounds the generated concrete instance size.
	MaxHeap int
	// Generate builds a random conforming instance with at least one
	// vertex and returns it with its root (the vertex handed to the
	// generated program's pointer parameter).
	Generate func(rng *rand.Rand, n int) (*heap.Graph, heap.Vertex)

	enumOnce sync.Once
	enumHeap []*heap.Graph // conforming shapes, sizes 1..EnumVertices
}

// Families returns the registered families sorted by name.
func Families() []*Family {
	out := make([]*Family, 0, len(registry))
	for _, f := range registry {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// FamilyByName returns the named family, or nil.
func FamilyByName(name string) *Family { return registry[name] }

var registry = map[string]*Family{}

func register(f *Family) *Family {
	if _, dup := registry[f.Name]; dup {
		panic("scenario: duplicate family " + f.Name)
	}
	registry[f.Name] = f
	return f
}

// StructSource renders the family's struct declaration — pointer fields,
// the data field, and the axiom library — in the mini-C concrete syntax the
// lang parser accepts (ASCII "forall" and "eps").
func (f *Family) StructSource() string {
	var b strings.Builder
	fmt.Fprintf(&b, "struct %s {\n", f.StructName)
	for _, pf := range f.PointerFields {
		fmt.Fprintf(&b, "\tstruct %s *%s;\n", f.StructName, pf)
	}
	fmt.Fprintf(&b, "\tint %s;\n", f.DataField)
	b.WriteString("\taxioms {\n")
	for _, a := range f.Axioms.Axioms {
		fmt.Fprintf(&b, "\t\t%s\n", sourceAxiom(a))
	}
	b.WriteString("\t}\n};\n")
	return b.String()
}

// sourceAxiom renders one axiom as a parseable axioms-block line (the
// shared ASCII rendering, plus the block's ';' separator).
func sourceAxiom(a axiom.Axiom) string {
	return a.SourceLine() + ";"
}

// ConformingHeaps returns every conforming heap shape of the family on 1 to
// EnumVertices vertices, enumerated once and cached (the library is fixed,
// so the shape set never changes).  Callers must not mutate the returned
// graphs — clone before running a program against one.
func (f *Family) ConformingHeaps() []*heap.Graph {
	f.enumOnce.Do(func() {
		c := heap.NewChecker(f.Axioms, f.PointerFields...)
		for n := 1; n <= f.EnumVertices; n++ {
			heap.EnumerateConforming(n, f.PointerFields, c, func(g *heap.Graph) bool {
				f.enumHeap = append(f.enumHeap, g)
				return true
			})
		}
	})
	return f.enumHeap
}

// The five farm families.  Enumeration bounds are picked per field count so
// the exhaustive oracle stays instant: one field sweeps 4 vertices (5^4
// shapes), two fields 3 vertices (4^6), three fields 2 vertices (3^6).

// SkipListFamily: two express levels over one vertex order.
var SkipListFamily = register(&Family{
	Name:          "skiplist",
	StructName:    "SkipNode",
	PointerFields: []string{"n0", "n1"},
	DataField:     "v",
	Axioms:        axiom.SkipList("n0", "n1"),
	WalkFields:    []string{"n0", "n1"},
	EnumVertices:  3,
	MaxHeap:       8,
	Generate: func(rng *rand.Rand, n int) (*heap.Graph, heap.Vertex) {
		g := heap.New(n)
		for i := 0; i+1 < n; i++ {
			g.SetEdge(heap.Vertex(i), "n0", heap.Vertex(i+1))
		}
		// Level 1 hops over a random increasing subsequence: always
		// forward in base order, so injectivity and acyclicity hold.
		prev := 0
		for i := 1; i < n; i++ {
			if rng.Intn(2) == 0 {
				g.SetEdge(heap.Vertex(prev), "n1", heap.Vertex(i))
				prev = i
			}
		}
		return g, 0
	},
})

// BPlusTreeFamily: a fan-out-2 leaf-linked tree (B+-tree skeleton).
var BPlusTreeFamily = register(&Family{
	Name:          "bplustree",
	StructName:    "BPlusNode",
	PointerFields: []string{"c0", "c1", "next"},
	DataField:     "v",
	Axioms:        axiom.BPlusTree("next", "c0", "c1"),
	WalkFields:    []string{"c0", "c1", "next"},
	EnumVertices:  2,
	MaxHeap:       7,
	Generate: func(rng *rand.Rand, n int) (*heap.Graph, heap.Vertex) {
		g := heap.New(n)
		// Random binary tree over vertices 0..n-1 with 0 as root: each
		// vertex i > 0 becomes a free child slot of an earlier vertex.
		type slot struct {
			parent heap.Vertex
			field  string
		}
		slots := []slot{{0, "c0"}, {0, "c1"}}
		children := make(map[heap.Vertex][]heap.Vertex)
		for i := 1; i < n; i++ {
			k := rng.Intn(len(slots))
			s := slots[k]
			slots = append(slots[:k], slots[k+1:]...)
			g.SetEdge(s.parent, s.field, heap.Vertex(i))
			children[s.parent] = append(children[s.parent], heap.Vertex(i))
			slots = append(slots, slot{heap.Vertex(i), "c0"}, slot{heap.Vertex(i), "c1"})
		}
		// Thread the leaves left to right.
		var leaves []heap.Vertex
		var inorder func(v heap.Vertex)
		inorder = func(v heap.Vertex) {
			c0, ok0 := g.Edge(v, "c0")
			c1, ok1 := g.Edge(v, "c1")
			if !ok0 && !ok1 {
				leaves = append(leaves, v)
				return
			}
			if ok0 {
				inorder(c0)
			}
			if ok1 {
				inorder(c1)
			}
		}
		inorder(0)
		for i := 0; i+1 < len(leaves); i++ {
			g.SetEdge(leaves[i], "next", leaves[i+1])
		}
		return g, 0
	},
})

// HashTableFamily: a table vertex fanning out to two collision chains.
var HashTableFamily = register(&Family{
	Name:          "hashtable",
	StructName:    "HashNode",
	PointerFields: []string{"b0", "b1", "next"},
	DataField:     "v",
	Axioms:        axiom.ChainedHashTable("next", "b0", "b1"),
	WalkFields:    []string{"next"},
	EnumVertices:  2,
	MaxHeap:       7,
	Generate: func(rng *rand.Rand, n int) (*heap.Graph, heap.Vertex) {
		g := heap.New(n)
		// Vertex 0 is the table; the rest hash into one of two chains.
		var chains [2][]heap.Vertex
		for i := 1; i < n; i++ {
			k := rng.Intn(2)
			chains[k] = append(chains[k], heap.Vertex(i))
		}
		for k, chain := range chains {
			if len(chain) == 0 {
				continue
			}
			g.SetEdge(0, fmt.Sprintf("b%d", k), chain[0])
			for i := 0; i+1 < len(chain); i++ {
				g.SetEdge(chain[i], "next", chain[i+1])
			}
		}
		return g, 0
	},
})

// UnionFindFamily: a parent forest, the weakest library (acyclicity only —
// parents are deliberately shareable).
var UnionFindFamily = register(&Family{
	Name:          "unionfind",
	StructName:    "UFNode",
	PointerFields: []string{"parent"},
	DataField:     "v",
	Axioms:        axiom.UnionFindForest("parent"),
	WalkFields:    []string{"parent"},
	EnumVertices:  4,
	MaxHeap:       8,
	Generate: func(rng *rand.Rand, n int) (*heap.Graph, heap.Vertex) {
		g := heap.New(n)
		// Each vertex i > 0 picks an earlier parent or stays a root; many
		// children may share a parent.
		for i := 1; i < n; i++ {
			if p := rng.Intn(i + 1); p < i {
				g.SetEdge(heap.Vertex(i), "parent", heap.Vertex(p))
			}
		}
		// Hand the program a leaf-most vertex so parent walks are long.
		return g, heap.Vertex(n - 1)
	},
})

// DequeFamily: a doubly linked chain mutated at both ends.
var DequeFamily = register(&Family{
	Name:          "deque",
	StructName:    "DequeNode",
	PointerFields: []string{"next", "prev"},
	DataField:     "v",
	Axioms:        axiom.Deque("next", "prev"),
	WalkFields:    []string{"next", "prev"},
	EnumVertices:  3,
	MaxHeap:       8,
	Generate: func(rng *rand.Rand, n int) (*heap.Graph, heap.Vertex) {
		g := heap.New(n)
		for i := 0; i+1 < n; i++ {
			g.SetEdge(heap.Vertex(i), "next", heap.Vertex(i+1))
			g.SetEdge(heap.Vertex(i+1), "prev", heap.Vertex(i))
		}
		root := heap.Vertex(0)
		if n > 1 && rng.Intn(2) == 0 {
			root = heap.Vertex(n - 1) // enter from the tail half the time
		}
		return g, root
	},
})
