package scenario

import (
	"math/rand"
	"testing"

	"repro/internal/analysis"
	"repro/internal/lang"
)

// FuzzGeneratedProgram feeds generator output — and go-fuzz mutations of it —
// through the full front half of the pipeline: parse, then analyze every
// function found.  Neither stage may panic; malformed input must come back as
// a positioned error.  The seed corpus is one rendered program per family
// plus a few hand-written edge cases.
func FuzzGeneratedProgram(f *testing.F) {
	rng := rand.New(rand.NewSource(1))
	for _, fam := range Families() {
		for i := 0; i < 3; i++ {
			f.Add(GenerateSpec(fam, rng).Render())
		}
	}
	f.Add("")
	f.Add("struct N { struct N *next; };")
	f.Add("struct N { struct N *next; int v; axioms { A1: forall p, p.next+ <> p.eps; } };\nvoid f(struct N *h) { S: h->v = 1; }")
	f.Add("void f(struct N *h) { while (h != NULL) { h = h->next; } }")
	f.Add("struct N { struct N *n; axioms { bad syntax here } };")

	f.Fuzz(func(t *testing.T, src string) {
		prog, err := lang.Parse(src)
		if err != nil {
			return // a positioned parse error is the contract for bad input
		}
		for _, fn := range prog.Funcs {
			// Analysis of any parseable program must either succeed or
			// return an error — never panic.
			_, _ = analysis.Analyze(prog, fn.Name, analysis.Options{})
		}
	})
}
