// Package adds implements an ADDS-style data structure description language
// (Hendren, Hummel, Nicolau, PLDI 1992 — cited by the paper in §3.2 as the
// higher level of abstraction from which aliasing axioms can be generated).
//
// A declaration names the *dimensions* of a structure, assigns each pointer
// field a dimension, and states global properties; the translator compiles
// the declaration into the aliasing axioms of package axiom.
//
// Syntax:
//
//	structure LLBinaryTree {
//	    dimension down is tree;
//	    dimension leaves is chain;
//	    field L along down;
//	    field R along down;
//	    field N along leaves;
//	    acyclic;
//	}
//
// Dimension kinds:
//
//	tree   — the dimension's fields form a tree: sibling fields from one
//	         vertex are distinct, and no vertex is reachable along the
//	         dimension from two different vertices.
//	chain  — each field is injective (a linked list per field).
//	ring   — injective like chain, but cycles are permitted, so no
//	         acyclicity can be derived through this dimension.
//
// Properties:
//
//	acyclic;                  — no path over all fields returns to its origin
//	interacting D1 D2;        — the two chain dimensions interleave through
//	                            shared vertices but never wrap into each
//	                            other: ∀p, p.(F1)+ <> p.(F2)+
//
// The Figure 3 leaf-linked tree and the §5 sparse element substructure both
// translate to exactly the axiom sets the paper uses (see the tests).
package adds

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/axiom"
	"repro/internal/pathexpr"
)

// Kind classifies a dimension.
type Kind int

// Dimension kinds.
const (
	Tree Kind = iota
	Chain
	Ring
)

func (k Kind) String() string {
	switch k {
	case Tree:
		return "tree"
	case Chain:
		return "chain"
	case Ring:
		return "ring"
	}
	return "invalid"
}

// Dimension is one declared traversal dimension.
type Dimension struct {
	Name   string
	Kind   Kind
	Fields []string // in declaration order
}

// Structure is a parsed ADDS declaration.
type Structure struct {
	Name       string
	Dimensions []*Dimension
	// Acyclic states that no traversal over any fields returns to its
	// origin.
	Acyclic bool
	// Interacting lists pairs of chain dimensions that interleave without
	// wrapping.
	Interacting [][2]string
}

// Dimension returns the named dimension, or nil.
func (s *Structure) Dimension(name string) *Dimension {
	for _, d := range s.Dimensions {
		if d.Name == name {
			return d
		}
	}
	return nil
}

// Fields returns all pointer fields in declaration order.
func (s *Structure) Fields() []string {
	var out []string
	for _, d := range s.Dimensions {
		out = append(out, d.Fields...)
	}
	return out
}

// Parse parses an ADDS declaration.
func Parse(src string) (*Structure, error) {
	toks := tokenize(src)
	p := &parser{toks: toks}
	s, err := p.structure()
	if err != nil {
		return nil, err
	}
	return s, nil
}

// MustParse is Parse, panicking on error.
func MustParse(src string) *Structure {
	s, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return s
}

func tokenize(src string) []string {
	src = strings.NewReplacer("{", " { ", "}", " } ", ";", " ; ", ",", " , ").Replace(src)
	// Strip // comments line by line.
	var lines []string
	for _, line := range strings.Split(src, "\n") {
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		lines = append(lines, line)
	}
	return strings.Fields(strings.Join(lines, "\n"))
}

type parser struct {
	toks []string
	pos  int
}

func (p *parser) at() string {
	if p.pos >= len(p.toks) {
		return ""
	}
	return p.toks[p.pos]
}

func (p *parser) advance() string {
	t := p.at()
	if p.pos < len(p.toks) {
		p.pos++
	}
	return t
}

func (p *parser) expect(tok string) error {
	if p.at() != tok {
		return fmt.Errorf("adds: expected %q, found %q", tok, p.at())
	}
	p.advance()
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.at()
	if t == "" || strings.ContainsAny(t, "{};,") {
		return "", fmt.Errorf("adds: expected identifier, found %q", t)
	}
	return p.advance(), nil
}

func (p *parser) structure() (*Structure, error) {
	if err := p.expect("structure"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	s := &Structure{Name: name}
	for p.at() != "}" {
		switch p.at() {
		case "":
			return nil, fmt.Errorf("adds: unterminated structure %s", name)
		case "dimension":
			p.advance()
			dname, err := p.ident()
			if err != nil {
				return nil, err
			}
			if err := p.expect("is"); err != nil {
				return nil, err
			}
			kindName, err := p.ident()
			if err != nil {
				return nil, err
			}
			var kind Kind
			switch kindName {
			case "tree":
				kind = Tree
			case "chain":
				kind = Chain
			case "ring":
				kind = Ring
			default:
				return nil, fmt.Errorf("adds: unknown dimension kind %q (tree, chain, or ring)", kindName)
			}
			if s.Dimension(dname) != nil {
				return nil, fmt.Errorf("adds: dimension %q declared twice", dname)
			}
			s.Dimensions = append(s.Dimensions, &Dimension{Name: dname, Kind: kind})
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		case "field":
			p.advance()
			var fields []string
			for {
				f, err := p.ident()
				if err != nil {
					return nil, err
				}
				fields = append(fields, f)
				if p.at() != "," {
					break
				}
				p.advance()
			}
			if err := p.expect("along"); err != nil {
				return nil, err
			}
			dname, err := p.ident()
			if err != nil {
				return nil, err
			}
			d := s.Dimension(dname)
			if d == nil {
				return nil, fmt.Errorf("adds: field %v along undeclared dimension %q", fields, dname)
			}
			for _, f := range fields {
				for _, existing := range s.Fields() {
					if existing == f {
						return nil, fmt.Errorf("adds: field %q declared twice", f)
					}
				}
				d.Fields = append(d.Fields, f)
			}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		case "acyclic":
			p.advance()
			s.Acyclic = true
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		case "interacting":
			p.advance()
			d1, err := p.ident()
			if err != nil {
				return nil, err
			}
			d2, err := p.ident()
			if err != nil {
				return nil, err
			}
			s.Interacting = append(s.Interacting, [2]string{d1, d2})
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("adds: unexpected %q in structure body", p.at())
		}
	}
	p.advance() // "}"
	if p.at() != "" && p.at() != ";" {
		return nil, fmt.Errorf("adds: trailing input %q", p.at())
	}
	for _, pair := range s.Interacting {
		for _, dn := range pair {
			d := s.Dimension(dn)
			if d == nil {
				return nil, fmt.Errorf("adds: interacting references undeclared dimension %q", dn)
			}
			if d.Kind == Tree {
				return nil, fmt.Errorf("adds: interacting applies to chain/ring dimensions, %q is a tree", dn)
			}
		}
	}
	return s, nil
}

// Axioms compiles the declaration into aliasing axioms.
func (s *Structure) Axioms() *axiom.Set {
	set := &axiom.Set{StructName: s.Name}

	for _, d := range s.Dimensions {
		switch d.Kind {
		case Tree:
			// Sibling fields from one vertex are distinct.
			for i, f := range d.Fields {
				for _, g := range d.Fields[i+1:] {
					set.Add(axiom.Axiom{
						Form: axiom.SameSrcDisjoint,
						RE1:  pathexpr.F(f),
						RE2:  pathexpr.F(g),
					})
				}
			}
			// Unshared: distinct vertices never reach a common child along
			// the dimension.
			any := fieldAlt(d.Fields)
			set.Add(axiom.Axiom{
				Form: axiom.DiffSrcDisjoint,
				RE1:  any,
				RE2:  any,
			})
		case Chain, Ring:
			for _, f := range d.Fields {
				set.Add(axiom.Axiom{
					Form: axiom.DiffSrcDisjoint,
					RE1:  pathexpr.F(f),
					RE2:  pathexpr.F(f),
				})
			}
			// Distinct chain fields of one dimension never coincide from
			// the same vertex.
			for i, f := range d.Fields {
				for _, g := range d.Fields[i+1:] {
					set.Add(axiom.Axiom{
						Form: axiom.SameSrcDisjoint,
						RE1:  pathexpr.F(f),
						RE2:  pathexpr.F(g),
					})
				}
			}
		}
	}

	for _, pair := range s.Interacting {
		f1 := s.Dimension(pair[0]).Fields
		f2 := s.Dimension(pair[1]).Fields
		if len(f1) == 0 || len(f2) == 0 {
			continue
		}
		set.Add(axiom.Axiom{
			Form: axiom.SameSrcDisjoint,
			RE1:  pathexpr.Rep1(fieldAlt(f1)),
			RE2:  pathexpr.Rep1(fieldAlt(f2)),
		})
	}

	if s.Acyclic {
		ringFree := true
		for _, d := range s.Dimensions {
			if d.Kind == Ring {
				ringFree = false
			}
		}
		fields := s.Fields()
		if ringFree && len(fields) > 0 {
			set.Add(axiom.Axiom{
				Form: axiom.SameSrcDisjoint,
				RE1:  pathexpr.Rep1(fieldAlt(fields)),
				RE2:  pathexpr.Eps,
			})
		} else if !ringFree {
			// Acyclicity can only be asserted outside the ring dimensions.
			var nonRing []string
			for _, d := range s.Dimensions {
				if d.Kind != Ring {
					nonRing = append(nonRing, d.Fields...)
				}
			}
			if len(nonRing) > 0 {
				set.Add(axiom.Axiom{
					Form: axiom.SameSrcDisjoint,
					RE1:  pathexpr.Rep1(fieldAlt(nonRing)),
					RE2:  pathexpr.Eps,
				})
			}
		}
	}
	return set
}

func fieldAlt(fields []string) pathexpr.Expr {
	sorted := append([]string{}, fields...)
	sort.Strings(sorted)
	alts := make([]pathexpr.Expr, len(sorted))
	for i, f := range sorted {
		alts[i] = pathexpr.F(f)
	}
	return pathexpr.Or(alts...)
}

// String renders the declaration back into ADDS syntax.
func (s *Structure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "structure %s {\n", s.Name)
	for _, d := range s.Dimensions {
		fmt.Fprintf(&b, "\tdimension %s is %s;\n", d.Name, d.Kind)
	}
	for _, d := range s.Dimensions {
		for _, f := range d.Fields {
			fmt.Fprintf(&b, "\tfield %s along %s;\n", f, d.Name)
		}
	}
	for _, pair := range s.Interacting {
		fmt.Fprintf(&b, "\tinteracting %s %s;\n", pair[0], pair[1])
	}
	if s.Acyclic {
		b.WriteString("\tacyclic;\n")
	}
	b.WriteString("}\n")
	return b.String()
}
