package adds

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/axiom"
	"repro/internal/heap"
	"repro/internal/pathexpr"
	"repro/internal/prover"
)

const llTreeSrc = `
structure LLBinaryTree {
	dimension down is tree;
	dimension leaves is chain;
	field L along down;
	field R along down;
	field N along leaves;
	acyclic;
}
`

func TestParseLeafLinkedTree(t *testing.T) {
	s, err := Parse(llTreeSrc)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "LLBinaryTree" {
		t.Errorf("name = %q", s.Name)
	}
	if len(s.Dimensions) != 2 {
		t.Fatalf("dimensions = %d", len(s.Dimensions))
	}
	down := s.Dimension("down")
	if down == nil || down.Kind != Tree || len(down.Fields) != 2 {
		t.Fatalf("down = %+v", down)
	}
	if !s.Acyclic {
		t.Error("acyclic lost")
	}
	if got := s.Fields(); len(got) != 3 {
		t.Errorf("fields = %v", got)
	}
}

// TestFigure3AxiomsFromADDS: the ADDS declaration of Figure 3's structure
// compiles to a set equivalent to the paper's four hand-written axioms —
// APT proves the same §3.3 facts from it.
func TestFigure3AxiomsFromADDS(t *testing.T) {
	set := MustParse(llTreeSrc).Axioms()
	if set.Len() != 4 {
		t.Fatalf("generated %d axioms, want 4:\n%s", set.Len(), set)
	}
	p := prover.New(set, prover.Options{})
	for _, c := range []struct {
		x, y string
		want prover.Result
	}{
		{"L.L.N", "L.R.N", prover.Proved},
		{"L.L", "L.R", prover.Proved},
		{"ε", "(L|R|N)+", prover.Proved},
		{"L.L.N.N", "L.R.N", prover.NotProved},
	} {
		got := p.ProveDisjoint(pathexpr.MustParse(c.x), pathexpr.MustParse(c.y)).Result
		if got != c.want {
			t.Errorf("%s <> %s: %v, want %v", c.x, c.y, got, c.want)
		}
	}
}

// TestGeneratedAxiomsMatchHandWritten: the generated set proves exactly what
// Figure 3's hand-written set proves on a corpus of queries, and both hold
// on the same concrete structures.
func TestGeneratedAxiomsMatchHandWritten(t *testing.T) {
	gen := MustParse(llTreeSrc).Axioms()
	hand := axiom.LeafLinkedBinaryTree()

	pGen := prover.New(gen, prover.Options{})
	pHand := prover.New(hand, prover.Options{})
	queries := [][2]string{
		{"L", "R"}, {"L", "N"}, {"N", "N.N"}, {"L.N", "R.N"},
		{"(L|R)+", "ε"}, {"L.L.N", "L.R.N"}, {"N+", "ε"},
	}
	for _, q := range queries {
		x, y := pathexpr.MustParse(q[0]), pathexpr.MustParse(q[1])
		if g, h := pGen.ProveDisjoint(x, y).Result, pHand.ProveDisjoint(x, y).Result; g != h {
			t.Errorf("%s <> %s: generated %v, hand-written %v", q[0], q[1], g, h)
		}
	}

	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		g, _ := heap.RandomLeafLinkedTree(rng, 1+rng.Intn(12))
		if err := g.CheckSet(gen); err != nil {
			t.Fatalf("generated axioms fail on conforming tree: %v", err)
		}
	}
}

const sparseSrc = `
structure SparseElems {
	dimension row is chain;
	dimension col is chain;
	field ncolE along row;
	field nrowE along col;
	interacting row col;
	acyclic;
}
`

// TestTheoremTFromADDS: the ADDS description of the sparse element
// substructure generates axioms sufficient for §5's Theorem T.
func TestTheoremTFromADDS(t *testing.T) {
	set := MustParse(sparseSrc).Axioms()
	p := prover.New(set, prover.Options{})
	proof := p.ProveDisjoint(
		pathexpr.MustParse("ncolE+"),
		pathexpr.MustParse("nrowE+ncolE+"))
	if proof.Result != prover.Proved {
		t.Fatalf("Theorem T from ADDS axioms: %v\n%s\n%s", proof.Result, set, proof.Render())
	}
}

func TestRingDimension(t *testing.T) {
	set := MustParse(`
structure Ring {
	dimension around is ring;
	field next along around;
	acyclic;
}`).Axioms()
	// A ring dimension must not produce acyclicity over its own fields.
	p := prover.New(set, prover.Options{})
	if p.ProveDisjoint(pathexpr.Eps, pathexpr.MustParse("next+")).Result == prover.Proved {
		t.Fatal("ring dimension must not certify acyclicity")
	}
	// Injectivity survives.
	if p.Prove(prover.DiffSrc, pathexpr.F("next"), pathexpr.F("next")).Result != prover.Proved {
		t.Fatal("ring injectivity lost")
	}
	// A concrete ring satisfies the generated axioms.
	g, _ := heap.BuildRing(5, "next")
	if err := g.CheckSet(set); err != nil {
		t.Fatalf("ring violates generated axioms: %v", err)
	}
}

func TestMultiFieldDeclarationAndComments(t *testing.T) {
	s, err := Parse(`
structure T {
	dimension d is tree;   // children
	field a, b, c along d; // three children
	acyclic;
}`)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.Dimension("d").Fields); got != 3 {
		t.Fatalf("fields = %d", got)
	}
	set := s.Axioms()
	// Pairwise sibling distinctness: 3 axioms + unshared + acyclic = 5.
	if set.Len() != 5 {
		t.Fatalf("generated %d axioms:\n%s", set.Len(), set)
	}
}

func TestParseErrors(t *testing.T) {
	bad := map[string]string{
		"no structure":     `dimension d is tree;`,
		"unknown kind":     `structure T { dimension d is blob; }`,
		"undeclared dim":   `structure T { field a along d; }`,
		"dup dimension":    `structure T { dimension d is tree; dimension d is chain; }`,
		"dup field":        `structure T { dimension d is tree; field a along d; field a along d; }`,
		"unterminated":     `structure T { dimension d is tree;`,
		"bad interacting":  `structure T { dimension d is tree; field a along d; interacting d d; }`,
		"missing semi":     `structure T { acyclic }`,
		"undeclared inter": `structure T { dimension d is chain; interacting d e; }`,
		"trailing":         `structure T { } garbage`,
	}
	for name, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: Parse succeeded, want error", name)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	s := MustParse(llTreeSrc)
	out := s.String()
	for _, want := range []string{"structure LLBinaryTree", "dimension down is tree", "field N along leaves", "acyclic;"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
	reparsed, err := Parse(out)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if reparsed.Axioms().Key() != s.Axioms().Key() {
		t.Error("round trip changed the generated axioms")
	}
}
