package cliutil

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

func TestStatsPromWritesExposition(t *testing.T) {
	out := filepath.Join(t.TempDir(), "metrics.prom")
	var tf TelemetryFlags
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	tf.Register(fs)
	if err := fs.Parse([]string{"-stats-prom", out}); err != nil {
		t.Fatal(err)
	}
	set, err := tf.Open()
	if err != nil {
		t.Fatal(err)
	}
	if tf.Registry() == nil {
		t.Fatal("-stats-prom alone did not enable the registry")
	}
	set.Counter("prover.goals").Add(5)
	var stderr bytes.Buffer
	if err := tf.Close(&stderr, nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidatePrometheus(data); err != nil {
		t.Errorf("exposition invalid: %v\n%s", err, data)
	}
	if !strings.Contains(string(data), "apt_prover_goals_total 5") {
		t.Errorf("exposition lacks the counter:\n%s", data)
	}
	// Without -stats nothing goes to stderr.
	if stderr.Len() != 0 {
		t.Errorf("stderr not empty: %s", stderr.String())
	}
}

func TestStatsPromBadPath(t *testing.T) {
	var tf TelemetryFlags
	tf.PromPath = filepath.Join(t.TempDir(), "no", "such", "dir", "m.prom")
	if _, err := tf.Open(); err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	if err := tf.Close(&stderr, nil); err == nil {
		t.Error("Close swallowed the unwritable -stats-prom path")
	}
}
