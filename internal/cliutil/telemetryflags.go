// Package cliutil holds small helpers shared by the cmd/ front-ends.
package cliutil

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/telemetry"
)

// TelemetryFlags wires the shared observability flags (-stats, -trace-json,
// -stats-prom) into a command's flag set and owns the instruments they
// request.
//
// Lifecycle: Register the flags, Open after parsing to get the *telemetry.Set
// to thread through the pipeline, and Close at exit to flush the trace file
// and print the -stats summary.
type TelemetryFlags struct {
	Stats     bool
	TracePath string
	PromPath  string

	reg *telemetry.Registry
	tw  *telemetry.TraceWriter
	f   *os.File
}

// Register adds -stats, -trace-json, and -stats-prom to fs.
func (t *TelemetryFlags) Register(fs *flag.FlagSet) {
	fs.BoolVar(&t.Stats, "stats", false, "print a metrics summary to stderr on exit")
	fs.StringVar(&t.TracePath, "trace-json", "", "write a JSONL event trace to `file`")
	fs.StringVar(&t.PromPath, "stats-prom", "", "write the final metrics as Prometheus text exposition to `file` on exit")
}

// EnsureRegistry forces the metrics half on before Open — used by live
// endpoints (sparsebench -http) that serve snapshots regardless of -stats —
// and returns the registry.
func (t *TelemetryFlags) EnsureRegistry() *telemetry.Registry {
	if t.reg == nil {
		t.reg = telemetry.NewRegistry()
	}
	return t.reg
}

// Open materializes the instruments the parsed flags asked for and returns
// the Set to thread through the pipeline.  When neither flag was given the
// Set is disabled (nil-safe everywhere).
func (t *TelemetryFlags) Open() (*telemetry.Set, error) {
	if t.reg == nil && (t.Stats || t.TracePath != "" || t.PromPath != "") {
		t.reg = telemetry.NewRegistry()
	}
	if t.TracePath != "" {
		f, err := os.Create(t.TracePath)
		if err != nil {
			return nil, fmt.Errorf("trace-json: %w", err)
		}
		t.f = f
		t.tw = telemetry.NewTraceWriter(f)
	}
	return telemetry.New(t.reg, t.tw), nil
}

// Registry returns the metrics registry (nil when disabled).
func (t *TelemetryFlags) Registry() *telemetry.Registry { return t.reg }

// Close flushes the trace file, writes the -stats-prom exposition, and,
// under -stats, writes the summary to stderr: the phase table (when phases
// is non-nil), derived cache rates, and the full instrument snapshot.
// Returns the first write error.
func (t *TelemetryFlags) Close(stderr io.Writer, phases *telemetry.Phases) error {
	var firstErr error
	if err := t.tw.Err(); err != nil {
		firstErr = fmt.Errorf("trace-json: %w", err)
	}
	if t.f != nil {
		if err := t.f.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("trace-json: %w", err)
		}
	}
	if t.PromPath != "" && t.reg != nil {
		if err := t.writeProm(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("stats-prom: %w", err)
		}
	}
	if t.Stats && t.reg != nil {
		if phases != nil {
			fmt.Fprint(stderr, phases.Summary())
		}
		snap := t.reg.Snapshot()
		if r, ok := snap.Ratio("prover.cache_hits", "prover.goals"); ok {
			fmt.Fprintf(stderr, "prover cache hit rate: %.1f%% (%d of %d goals)\n",
				100*r, snap.Counters["prover.cache_hits"], snap.Counters["prover.goals"])
		}
		if r, ok := snap.Ratio("automata.cache_hits", "automata.lookups"); ok {
			fmt.Fprintf(stderr, "DFA language-cache hit rate: %.1f%% (%d of %d lookups)\n",
				100*r, snap.Counters["automata.cache_hits"], snap.Counters["automata.lookups"])
		}
		if c, ok := snap.Counters["automata.compiles"]; ok {
			fmt.Fprintf(stderr, "DFA compiles: %d\n", c)
		}
		snap.WriteText(stderr)
	}
	return firstErr
}

// writeProm renders the registry as Prometheus text exposition into
// PromPath — the one-shot CLI's counterpart of aptserved's /metrics, so the
// same dashboards can ingest a batch run's final counters.
func (t *TelemetryFlags) writeProm() error {
	f, err := os.Create(t.PromPath)
	if err != nil {
		return err
	}
	if err := t.reg.WritePrometheus(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
