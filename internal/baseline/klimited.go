package baseline

import (
	"math"

	"repro/internal/automata"
	"repro/internal/axiom"
	"repro/internal/core"
	"repro/internal/pathexpr"
	"repro/internal/prover"
)

// KLimited is the store-based dependence test over a k-limited naming of
// heap vertices (§2.3): the first k vertices along any path from a handle
// receive unique names; everything beyond collapses into one summary
// location.  Consequences:
//
//   - two accesses that can both reach deeper than k steps always conflict
//     (they may both touch the summary location);
//   - within k steps, distinct concrete names require the structure to be
//     tree-like — otherwise the shape graph has already merged vertices and
//     distinct paths may name the same node.
type KLimited struct {
	K      int
	axioms *axiom.Set
	prov   *prover.Prover
	dfas   *automata.Cache
}

// NewKLimited builds the baseline with the given k (a typical published
// value is 1 or 2; the paper's discussion uses an unspecified small k).
func NewKLimited(k int, axioms *axiom.Set) *KLimited {
	return &KLimited{
		K:      k,
		axioms: axioms,
		prov:   prover.New(axioms, prover.Options{}),
		dfas:   automata.NewCache(0),
	}
}

// DepTest answers a dependence query under k-limited naming.
func (k *KLimited) DepTest(q core.Query) core.Result {
	if !q.S.IsWrite && !q.T.IsWrite {
		return core.No
	}
	if q.S.Type != "" && q.T.Type != "" && q.S.Type != q.T.Type {
		return core.No
	}
	overlap := q.FieldsOverlap
	if overlap == nil {
		overlap = func(f, g string) bool { return f == g }
	}
	if !overlap(q.S.Field, q.T.Field) {
		return core.No
	}
	if q.S.Handle != q.T.Handle {
		return core.Maybe
	}

	x, y := pathexpr.Simplify(q.S.Path), pathexpr.Simplify(q.T.Path)
	alpha := alphabetFor(k.axioms, x, y)
	dx, err := k.dfas.DFA(x, alpha)
	if err != nil {
		return core.Maybe
	}
	dy, err := k.dfas.DFA(y, alpha)
	if err != nil {
		return core.Maybe
	}

	// Exact same word ⇒ same concrete or summary node either way.
	if !dx.Intersect(dy).IsEmpty() {
		if wx, okx := pathexpr.Word(x); okx {
			if wy, oky := pathexpr.Word(y); oky && wordEq(wx, wy) {
				return core.Yes
			}
		}
		return core.Maybe
	}
	// Both reach past the k-limit ⇒ both may name the summary node.
	if dx.MaxWordLen() > k.K && dy.MaxWordLen() > k.K {
		return core.Maybe
	}
	// Within the k-limit, distinct names are distinct nodes only on
	// tree-certified substructures.
	if !TreeCertified(k.prov, pathexpr.Fields(x, y)) {
		return core.Maybe
	}
	return core.No
}

// LoopIndependent analyses a loop whose induction pointer advances by inc
// per iteration from a handle fixed at loop entry, with each iteration
// accessing inc^i·body.  It returns the number of leading iterations the
// k-limited scheme can prove pairwise independent — the paper: "at best the
// dependence test will prove that only the first k iterations are
// independent" — and the overall loop-carried answer (Maybe whenever the
// iteration space can exceed that bound).
func (k *KLimited) LoopIndependent(inc, body pathexpr.Expr) (int, core.Result) {
	incLen := minWordLen(inc)
	if incLen <= 0 {
		// A non-advancing induction pointer revisits the same names.
		return 0, core.Maybe
	}
	bodyMin := minWordLen(body)
	if bodyMin < 0 {
		bodyMin = 0
	}
	// Iteration i touches names at depth ≥ i*incLen + bodyMin; once that
	// exceeds k the access lands on the summary node.
	distinct := 0
	for i := 0; ; i++ {
		if i*incLen+bodyMin > k.K {
			break
		}
		distinct = i + 1
	}
	if !TreeCertified(k.prov, pathexpr.Fields(inc, body)) {
		distinct = 0
	}
	return distinct, core.Maybe
}

// minWordLen returns the length of the shortest word of e, or -1 when the
// language is empty.
func minWordLen(e pathexpr.Expr) int {
	d, err := automata.Compile(e, automata.AlphabetOf(e))
	if err != nil {
		return math.MaxInt
	}
	w, ok := d.Witness()
	if !ok {
		return -1
	}
	return len(w)
}

// Prover exposes the baseline's internal prover (shared tree certification).
func (k *KLimited) Prover() *prover.Prover { return k.prov }
