package baseline

import (
	"repro/internal/automata"
	"repro/internal/axiom"
	"repro/internal/core"
	"repro/internal/pathexpr"
	"repro/internal/prover"
)

// HendrenNicolau models the path-matrix approach of [HN90] as the paper
// characterizes it (§2.4): "potentially less expensive than that of Larus,
// yet also precise for trees.  However, it fails to present a general
// dependence test, and does not handle cyclic data structures."
//
// Accordingly: on a certified tree substructure the test reasons exactly
// with the simple paths a path matrix stores and is precise; on anything
// else — DAG confluence, cycles, or path expressions beyond simple
// concatenations with a bounded tail — it has no answer and reports Maybe.
type HendrenNicolau struct {
	axioms    *axiom.Set
	prov      *prover.Prover
	dfas      *automata.Cache
	certified map[string]bool
}

// NewHendrenNicolau builds the baseline over the same structural knowledge
// APT receives.
func NewHendrenNicolau(axioms *axiom.Set) *HendrenNicolau {
	return &HendrenNicolau{
		axioms:    axioms,
		prov:      prover.New(axioms, prover.Options{}),
		dfas:      automata.NewCache(0),
		certified: make(map[string]bool),
	}
}

// DepTest answers a dependence query with path-matrix reasoning.
func (h *HendrenNicolau) DepTest(q core.Query) core.Result {
	if !q.S.IsWrite && !q.T.IsWrite {
		return core.No
	}
	if q.S.Type != "" && q.T.Type != "" && q.S.Type != q.T.Type {
		return core.No
	}
	overlap := q.FieldsOverlap
	if overlap == nil {
		overlap = func(f, g string) bool { return f == g }
	}
	if !overlap(q.S.Field, q.T.Field) {
		return core.No
	}
	if q.S.Handle != q.T.Handle {
		return core.Maybe
	}

	x, y := pathexpr.Simplify(q.S.Path), pathexpr.Simplify(q.T.Path)
	fields := pathexpr.Fields(x, y)
	key := ""
	for _, f := range fields {
		key += f + "\x00"
	}
	cert, ok := h.certified[key]
	if !ok {
		cert = TreeCertified(h.prov, fields)
		h.certified[key] = cert
	}
	if !cert {
		return core.Maybe // not a tree: no path matrix entry applies
	}
	if !h.pathMatrixExpressible(x) || !h.pathMatrixExpressible(y) {
		return core.Maybe // beyond the simple paths a path matrix stores
	}

	alpha := alphabetFor(h.axioms, x, y)
	dx, err := h.dfas.DFA(x, alpha)
	if err != nil {
		return core.Maybe
	}
	dy, err := h.dfas.DFA(y, alpha)
	if err != nil {
		return core.Maybe
	}
	if dx.Intersect(dy).IsEmpty() {
		return core.No
	}
	if wx, okx := pathexpr.Word(x); okx {
		if wy, oky := pathexpr.Word(y); oky && wordEq(wx, wy) {
			return core.Yes
		}
	}
	return core.Maybe
}

// pathMatrixExpressible reports whether the access path has the simple form
// a path matrix can relate two pointers by: a concrete prefix optionally
// followed by one trailing closure over a single field (the "p is k or more
// links ahead of q" relations [HN90] records for lists and trees).
func (h *HendrenNicolau) pathMatrixExpressible(e pathexpr.Expr) bool {
	comps := pathexpr.Components(e)
	for i, c := range comps {
		switch v := c.(type) {
		case pathexpr.Field:
			continue
		case pathexpr.Star:
			_, ok := v.Inner.(pathexpr.Field)
			if !ok || i != len(comps)-1 {
				return false
			}
		case pathexpr.Plus:
			_, ok := v.Inner.(pathexpr.Field)
			if !ok || i != len(comps)-1 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
