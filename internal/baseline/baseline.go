// Package baseline implements the two prior-art dependence tests the paper
// compares against (§2):
//
//   - The Larus–Hilfinger path-expression intersection test [LH88]: access
//     paths are mapped to path expressions and the test intersects their
//     languages.  For trees the mapping is exact and the test precise; for
//     DAGs the mapping must widen (the paper's example: root.LLN and
//     root.LRN both widen to (L|R)+N+), producing non-empty intersections
//     and thus Maybe for queries APT can prove independent.
//
//   - The k-limited store-based test [JM82-style]: heap vertices within k
//     steps of a handle get unique names, everything further collapses into
//     one summary node.  Any two accesses that can both reach beyond k
//     conflict, so at best the first k loop iterations can be proved
//     independent.
//
// Both baselines receive the same structural knowledge as APT, distilled
// into the only form they can consume: a tree-ness certificate derived by
// querying the APT prover itself.  This is deliberately generous to the
// baselines — it mirrors the paper's assumption that prior analyses handle
// linked lists and trees well.
package baseline

import (
	"repro/internal/automata"
	"repro/internal/axiom"
	"repro/internal/pathexpr"
	"repro/internal/prover"
)

// TreeCertified reports whether the given fields provably form a tree-like
// substructure under the axioms: distinct fields from one vertex lead to
// distinct vertices, no vertex is reachable via those fields from two
// different vertices (unshared), and no traversal returns to its origin
// (acyclic).  These are exactly the properties that make exact
// path-expression naming valid for [LH88] and distinct short names valid
// for k-limited analyses.
func TreeCertified(p *prover.Prover, fields []string) bool {
	if len(fields) == 0 {
		return true
	}
	alts := make([]pathexpr.Expr, len(fields))
	for i, f := range fields {
		alts[i] = pathexpr.F(f)
	}
	any := pathexpr.Or(alts...)
	// Distinct children from the same vertex.
	for i, f := range fields {
		for _, g := range fields[i+1:] {
			if p.Prove(prover.SameSrc, pathexpr.F(f), pathexpr.F(g)).Result != prover.Proved {
				return false
			}
		}
	}
	// Unshared: distinct vertices never reach a common child.
	if p.Prove(prover.DiffSrc, any, any).Result != prover.Proved {
		return false
	}
	// Acyclic.
	if p.Prove(prover.SameSrc, pathexpr.Eps, pathexpr.Rep1(any)).Result != prover.Proved {
		return false
	}
	return true
}

// FieldGroups partitions the axiom set's fields into the dimension groups
// used by [LH88]-style widening:
//
//   - fields that co-occur inside an alternation in a non-acyclicity axiom
//     belong to one traversal dimension (e.g. (L|R) in the tree-ness axiom
//     groups L with R, leaving N alone, so that root.LLN widens to the
//     paper's (L|R)+N+);
//   - fields appearing on opposite sides of a same-source disjointness
//     axiom whose both sides are infinite languages are merged: such axioms
//     (e.g. ∀p, p.ncolE+ <> p.nrowE+) assert disjointness of interleaving
//     chain families, which is exactly the situation where multiple paths
//     with mixed field orders reach one vertex, forcing the alias graph to
//     label vertices with mixed-field expressions.
//
// Acyclicity axioms (one side ε) describe the whole structure and carry no
// dimension information, so their alternations are ignored.
func FieldGroups(s *axiom.Set) [][]string {
	fields := s.Fields()
	index := make(map[string]int, len(fields))
	parent := make([]int, len(fields))
	for i, f := range fields {
		index[f] = i
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	isEps := func(e pathexpr.Expr) bool {
		_, ok := e.(pathexpr.Epsilon)
		return ok
	}
	hasClosure := func(e pathexpr.Expr) bool {
		found := false
		pathexpr.Walk(e, func(x pathexpr.Expr) {
			switch x.(type) {
			case pathexpr.Star, pathexpr.Plus:
				found = true
			}
		})
		return found
	}
	for _, a := range s.Axioms {
		if isEps(a.RE1) || isEps(a.RE2) {
			continue // acyclicity axiom: no dimension information
		}
		for _, re := range []pathexpr.Expr{a.RE1, a.RE2} {
			pathexpr.Walk(re, func(e pathexpr.Expr) {
				alt, ok := e.(pathexpr.Alt)
				if !ok {
					return
				}
				var members []int
				for _, choice := range alt.Alts {
					if f, ok := choice.(pathexpr.Field); ok {
						members = append(members, index[f.Name])
					}
				}
				for i := 1; i < len(members); i++ {
					union(members[0], members[i])
				}
			})
		}
		// Interleaving-chain axiom: merge fields across its two sides.
		if a.Form == axiom.SameSrcDisjoint && hasClosure(a.RE1) && hasClosure(a.RE2) {
			all := append(pathexpr.Fields(a.RE1), pathexpr.Fields(a.RE2)...)
			for i := 1; i < len(all); i++ {
				union(index[all[0]], index[all[i]])
			}
		}
	}
	groups := make(map[int][]string)
	for i, f := range fields {
		r := find(i)
		groups[r] = append(groups[r], f)
	}
	var out [][]string
	for i := range fields {
		if find(i) == i {
			out = append(out, groups[i])
		}
	}
	return out
}

// groupOf returns the index of the group containing field f, or -1.
func groupOf(groups [][]string, f string) int {
	for i, g := range groups {
		for _, x := range g {
			if x == f {
				return i
			}
		}
	}
	return -1
}

// alphabetFor builds the alphabet covering the axiom set and extra
// expressions.
func alphabetFor(s *axiom.Set, exprs ...pathexpr.Expr) *automata.Alphabet {
	return automata.NewAlphabet(append(s.Fields(), pathexpr.Fields(exprs...)...)...)
}
