package baseline

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/axiom"
	"repro/internal/core"
	"repro/internal/pathexpr"
	"repro/internal/prover"
)

func q(handle, p1, p2 string) core.Query {
	return core.Query{
		S: core.Access{Handle: handle, Path: pathexpr.MustParse(p1), Field: "d", IsWrite: true},
		T: core.Access{Handle: handle, Path: pathexpr.MustParse(p2), Field: "d", IsWrite: false},
	}
}

func TestFieldGroups(t *testing.T) {
	groups := FieldGroups(axiom.LeafLinkedBinaryTree())
	var got [][]string
	for _, g := range groups {
		s := append([]string{}, g...)
		sort.Strings(s)
		got = append(got, s)
	}
	sort.Slice(got, func(i, j int) bool { return got[i][0] < got[j][0] })
	want := [][]string{{"L", "R"}, {"N"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("groups = %v, want %v", got, want)
	}
}

func TestTreeCertified(t *testing.T) {
	llt := prover.New(axiom.LeafLinkedBinaryTree(), prover.Options{})
	if !TreeCertified(llt, []string{"L", "R"}) {
		t.Error("L/R substructure of a leaf-linked tree should certify as a tree")
	}
	if TreeCertified(llt, []string{"L", "R", "N"}) {
		t.Error("the full leaf-linked structure is a DAG, not a tree")
	}
	sm := prover.New(axiom.SparseMatrixCore(), prover.Options{})
	if TreeCertified(sm, []string{"ncolE", "nrowE"}) {
		t.Error("sparse element structure is a DAG, not a tree")
	}
	list := prover.New(axiom.SinglyLinkedList("next"), prover.Options{})
	if !TreeCertified(list, []string{"next"}) {
		t.Error("an acyclic list is a (degenerate) tree")
	}
	ring := prover.New(axiom.CircularList("next"), prover.Options{})
	if TreeCertified(ring, []string{"next"}) {
		t.Error("a possibly-circular list must not certify")
	}
}

// TestLarusSection24 reproduces §2.4's account: on the leaf-linked tree,
// LLN vs LRN must widen to (L|R)+N+ vs (L|R)+N+ and therefore report Maybe,
// even though APT proves No.  Pure-tree queries stay precise.
func TestLarusSection24(t *testing.T) {
	lh := NewLarusHilfinger(axiom.LeafLinkedBinaryTree())
	if got := lh.DepTest(q("_hroot", "L.L.N", "L.R.N")); got != core.Maybe {
		t.Errorf("LH88 on LLN vs LRN = %v, want Maybe (widened intersection non-empty)", got)
	}
	// Precise on the tree-only substructure.
	if got := lh.DepTest(q("_hroot", "L.L", "L.R")); got != core.No {
		t.Errorf("LH88 on LL vs LR = %v, want No (exact tree naming)", got)
	}
	if got := lh.DepTest(q("_hroot", "L", "R")); got != core.No {
		t.Errorf("LH88 on L vs R = %v, want No", got)
	}
	// Identical paths: definite conflict.
	if got := lh.DepTest(q("_hroot", "L.L.N", "L.L.N")); got != core.Yes {
		t.Errorf("LH88 on identical paths = %v, want Yes", got)
	}
	// APT must beat LH88 on the widened query.
	apt := core.NewTester(axiom.LeafLinkedBinaryTree(), prover.Options{})
	if out := apt.DepTest(q("_hroot", "L.L.N", "L.R.N")); out.Result != core.No {
		t.Errorf("APT on LLN vs LRN = %v, want No", out.Result)
	}
}

// TestLarusTheoremT: the paper (§5) — "T cannot be proven by simply
// intersecting the given path expressions ... resulting in a non-empty
// intersection and thus an unsuccessful proof."
func TestLarusTheoremT(t *testing.T) {
	lh := NewLarusHilfinger(axiom.SparseMatrixCore())
	got := lh.DepTest(q("_hr", "ncolE+", "nrowE+ncolE+"))
	if got != core.Maybe {
		t.Fatalf("LH88 on Theorem T = %v, want Maybe", got)
	}
	apt := core.NewTester(axiom.SparseMatrixCore(), prover.Options{})
	if out := apt.DepTest(q("_hr", "ncolE+", "nrowE+ncolE+")); out.Result != core.No {
		t.Fatalf("APT on Theorem T = %v, want No", out.Result)
	}
}

func TestLarusStructuralChecks(t *testing.T) {
	lh := NewLarusHilfinger(axiom.LeafLinkedBinaryTree())
	query := q("_h", "L", "L")
	query.S.Field, query.T.Field = "d1", "d2"
	if got := lh.DepTest(query); got != core.No {
		t.Errorf("distinct fields = %v, want No", got)
	}
	rr := q("_h", "L", "L")
	rr.S.IsWrite = false
	if got := lh.DepTest(rr); got != core.No {
		t.Errorf("read-read = %v, want No", got)
	}
	diff := q("_hp", "L", "R")
	diff.T.Handle = "_hq"
	if got := lh.DepTest(diff); got != core.Maybe {
		t.Errorf("different handles = %v, want Maybe", got)
	}
	typed := q("_h", "L", "L")
	typed.S.Type, typed.T.Type = "A", "B"
	if got := lh.DepTest(typed); got != core.No {
		t.Errorf("different types = %v, want No", got)
	}
}

// TestKLimitedLoop reproduces §2.3: "at best the dependence test will prove
// that only the first k iterations are independent".
func TestKLimitedLoop(t *testing.T) {
	for _, k := range []int{1, 2, 4} {
		kl := NewKLimited(k, axiom.SinglyLinkedList("link"))
		upTo, res := kl.LoopIndependent(pathexpr.MustParse("link"), pathexpr.Eps)
		if res != core.Maybe {
			t.Errorf("k=%d: loop result %v, want Maybe", k, res)
		}
		if upTo != k+1 {
			// Iterations 0..k touch depths 0..k, all within the k-limit.
			t.Errorf("k=%d: independent iterations = %d, want %d", k, upTo, k+1)
		}
	}
	// APT proves the whole loop independent.
	apt := core.NewTester(axiom.SinglyLinkedList("link"), prover.Options{})
	lc := core.LoopCarried(apt.Axioms(), "_h", pathexpr.MustParse("link"), pathexpr.Eps, "f", true)
	if out := apt.DepTest(lc); out.Result != core.No {
		t.Errorf("APT on list loop = %v, want No", out.Result)
	}
}

func TestKLimitedPairQueries(t *testing.T) {
	kl := NewKLimited(2, axiom.LeafLinkedBinaryTree())
	// Short distinct tree paths within k: No.
	if got := kl.DepTest(q("_h", "L.L", "L.R")); got != core.No {
		t.Errorf("k-limited LL vs LR = %v, want No", got)
	}
	// Paths leaving the k-limit on both sides: Maybe.
	if got := kl.DepTest(q("_h", "L.L.N", "L.R.N")); got != core.Maybe {
		t.Errorf("k-limited LLN vs LRN (k=2) = %v, want Maybe", got)
	}
	// Identical word: Yes.
	if got := kl.DepTest(q("_h", "L.L", "L.L")); got != core.Yes {
		t.Errorf("k-limited identical = %v, want Yes", got)
	}
	// Distinct fields: No.
	query := q("_h", "L", "L")
	query.S.Field = "other"
	if got := kl.DepTest(query); got != core.No {
		t.Errorf("k-limited distinct fields = %v, want No", got)
	}
}

func TestKLimitedTheoremT(t *testing.T) {
	kl := NewKLimited(2, axiom.SparseMatrixCore())
	if got := kl.DepTest(q("_hr", "ncolE+", "nrowE+ncolE+")); got != core.Maybe {
		t.Fatalf("k-limited on Theorem T = %v, want Maybe", got)
	}
	upTo, res := kl.LoopIndependent(pathexpr.MustParse("nrowE"), pathexpr.MustParse("ncolE+"))
	if res != core.Maybe || upTo != 0 {
		t.Fatalf("k-limited sparse loop = (%d, %v), want (0, Maybe): the element DAG defeats short names too", upTo, res)
	}
}

func TestKLimitedNonAdvancingLoop(t *testing.T) {
	kl := NewKLimited(2, axiom.SinglyLinkedList("link"))
	upTo, res := kl.LoopIndependent(pathexpr.Eps, pathexpr.MustParse("link"))
	if upTo != 0 || res != core.Maybe {
		t.Errorf("non-advancing loop = (%d, %v), want (0, Maybe)", upTo, res)
	}
}

// TestComparisonCorpus is the head-to-head table recorded in
// EXPERIMENTS.md: for each named query, APT answers No while both baselines
// answer Maybe — or all agree where prior work is already precise.
func TestComparisonCorpus(t *testing.T) {
	type row struct {
		name      string
		axioms    *axiom.Set
		p1, p2    string
		wantAPT   core.Result
		wantLarus core.Result
		wantKLim  core.Result
	}
	rows := []row{
		{"LLN-vs-LRN", axiom.LeafLinkedBinaryTree(), "L.L.N", "L.R.N", core.No, core.Maybe, core.Maybe},
		{"TheoremT", axiom.SparseMatrixCore(), "ncolE+", "nrowE+ncolE+", core.No, core.Maybe, core.Maybe},
		{"tree-LL-vs-LR", axiom.LeafLinkedBinaryTree(), "L.L", "L.R", core.No, core.No, core.No},
		// [LH88]-style path methods are precise on lists (§1, §2.4), so the
		// baseline correctly answers No here; the k-limited scheme answers
		// No for this fixed-handle pair but can never prove the whole loop
		// independent (see TestKLimitedLoop).
		{"list-loop", axiom.SinglyLinkedList("link"), "ε", "link+", core.No, core.No, core.No},
		{"identical", axiom.LeafLinkedBinaryTree(), "L.L", "L.L", core.Yes, core.Yes, core.Yes},
	}
	for _, r := range rows {
		apt := core.NewTester(r.axioms, prover.Options{})
		lh := NewLarusHilfinger(r.axioms)
		kl := NewKLimited(2, r.axioms)
		query := q("_h", r.p1, r.p2)
		if got := apt.DepTest(query).Result; got != r.wantAPT {
			t.Errorf("%s: APT = %v, want %v", r.name, got, r.wantAPT)
		}
		if got := lh.DepTest(query); got != r.wantLarus {
			t.Errorf("%s: LH88 = %v, want %v", r.name, got, r.wantLarus)
		}
		if got := kl.DepTest(query); got != r.wantKLim {
			t.Errorf("%s: k-limited = %v, want %v", r.name, got, r.wantKLim)
		}
	}
}

// prover0 returns default prover options (helper shared by baseline tests).
func prover0() prover.Options { return prover.Options{} }
