package baseline

import (
	"repro/internal/automata"
	"repro/internal/axiom"
	"repro/internal/core"
	"repro/internal/pathexpr"
	"repro/internal/prover"
)

// LarusHilfinger is the path-expression intersection dependence test of
// [LH88] (§2.4).  Memory locations are named by path expressions from a
// handle; two accesses conflict when the languages of their (possibly
// widened) path expressions intersect.
type LarusHilfinger struct {
	axioms *axiom.Set
	prov   *prover.Prover
	dfas   *automata.Cache
	groups [][]string
	// certified memoizes tree certification per field-set key.
	certified map[string]bool
}

// NewLarusHilfinger builds the baseline over the same structural knowledge
// APT receives.
func NewLarusHilfinger(axioms *axiom.Set) *LarusHilfinger {
	return &LarusHilfinger{
		axioms:    axioms,
		prov:      prover.New(axioms, prover.Options{}),
		dfas:      automata.NewCache(0),
		groups:    FieldGroups(axioms),
		certified: make(map[string]bool),
	}
}

// DepTest answers a dependence query with the intersection test.  Only the
// common-handle case is supported precisely; differing handles are
// conservatively Maybe (alias-graph construction for arbitrary handle
// relations is beyond [LH88]'s published test).
func (l *LarusHilfinger) DepTest(q core.Query) core.Result {
	if !q.S.IsWrite && !q.T.IsWrite {
		return core.No
	}
	if q.S.Type != "" && q.T.Type != "" && q.S.Type != q.T.Type {
		return core.No
	}
	overlap := q.FieldsOverlap
	if overlap == nil {
		overlap = func(f, g string) bool { return f == g }
	}
	if !overlap(q.S.Field, q.T.Field) {
		return core.No
	}
	if q.S.Handle != q.T.Handle {
		return core.Maybe
	}

	// Exact naming is only valid when every field traversed belongs to a
	// certified tree substructure; otherwise map to the conservative widened
	// expressions, as the paper describes for Figure 3.  On a structure that
	// is not even certified acyclic, a vertex's alias-graph label must admit
	// returning to it around a cycle, so every label degenerates to the
	// all-fields closure — the intersection test then decides nothing.
	x, y := pathexpr.Simplify(q.S.Path), pathexpr.Simplify(q.T.Path)
	fields := pathexpr.Fields(x, y)
	if !l.treeCertified(fields) {
		if !l.acyclicCertified(fields) {
			closure := l.allFieldsClosure(fields)
			x, y = closure, closure
		} else {
			x = l.widen(x)
			y = l.widen(y)
		}
	}

	alpha := alphabetFor(l.axioms, x, y)
	dx, err := l.dfas.DFA(x, alpha)
	if err != nil {
		return core.Maybe
	}
	dy, err := l.dfas.DFA(y, alpha)
	if err != nil {
		return core.Maybe
	}
	inter := dx.Intersect(dy)
	if inter.IsEmpty() {
		return core.No
	}
	// Identical singleton expressions denote one vertex: definite conflict.
	if wx, okx := pathexpr.Word(q.S.Path); okx {
		if wy, oky := pathexpr.Word(q.T.Path); oky && wordEq(wx, wy) {
			return core.Yes
		}
	}
	return core.Maybe
}

// acyclicCertified reports whether no traversal over the given fields can
// return to its origin, by querying the prover for ∀p, p.ε <> p.(F)+.
func (l *LarusHilfinger) acyclicCertified(fields []string) bool {
	if len(fields) == 0 {
		return true
	}
	alts := make([]pathexpr.Expr, len(fields))
	for i, f := range fields {
		alts[i] = pathexpr.F(f)
	}
	proof := l.prov.Prove(prover.SameSrc, pathexpr.Eps, pathexpr.Rep1(pathexpr.Or(alts...)))
	return proof.Result == prover.Proved
}

// allFieldsClosure returns (f1|f2|...)* over all structure and path fields.
func (l *LarusHilfinger) allFieldsClosure(extra []string) pathexpr.Expr {
	fields := append(append([]string{}, l.axioms.Fields()...), extra...)
	seen := map[string]bool{}
	var alts []pathexpr.Expr
	for _, f := range fields {
		if !seen[f] {
			seen[f] = true
			alts = append(alts, pathexpr.F(f))
		}
	}
	return pathexpr.Rep(pathexpr.Or(alts...))
}

func (l *LarusHilfinger) treeCertified(fields []string) bool {
	key := ""
	for _, f := range fields {
		key += f + "\x00"
	}
	if v, ok := l.certified[key]; ok {
		return v
	}
	v := TreeCertified(l.prov, fields)
	l.certified[key] = v
	return v
}

// widen maps an access path to the conservative path expression an [LH88]
// alias graph must use on a non-tree structure: each maximal run of fields
// from one traversal dimension becomes (group)+ (in the spirit of the
// paper's example, which widens both root.LLNN and root.LRN to (L|R)+N+).
// Keeping two dimensions as *separate* runs asserts that paths with
// different dimension sequences reach different vertices, which is only
// sound when the axioms certify that edges of the two dimensions never
// point to the same vertex; dimensions lacking that certificate are merged
// into one run (e.g. a skip list's express level can land exactly where two
// base hops do, so its levels must widen together).  Non-word paths widen
// to the concatenation of (group)+ for each dimension they mention, in
// first-use order.
func (l *LarusHilfinger) widen(e pathexpr.Expr) pathexpr.Expr {
	groups := l.effectiveGroups(pathexpr.Fields(e))
	groupExpr := func(gi int) pathexpr.Expr {
		alts := make([]pathexpr.Expr, len(groups[gi]))
		for i, f := range groups[gi] {
			alts[i] = pathexpr.F(f)
		}
		return pathexpr.Rep1(pathexpr.Or(alts...))
	}

	var runs []int
	record := func(f string) {
		gi := groupOf(groups, f)
		if len(runs) == 0 || runs[len(runs)-1] != gi {
			runs = append(runs, gi)
		}
	}

	if w, ok := pathexpr.Word(e); ok {
		for _, f := range w {
			record(f)
		}
	} else {
		// General expression: preserve only the order of first mention.
		pathexpr.Walk(e, func(x pathexpr.Expr) {
			if f, ok := x.(pathexpr.Field); ok {
				record(f.Name)
			}
		})
	}
	parts := make([]pathexpr.Expr, len(runs))
	for i, gi := range runs {
		parts[i] = groupExpr(gi)
	}
	if len(parts) == 0 {
		return pathexpr.Eps
	}
	return pathexpr.Cat(parts...)
}

// effectiveGroups refines the declared dimension groups for the given path
// fields: two dimensions stay separate only when every cross pair of their
// fields is certified non-confluent (∀p, p.f <> p.g and ∀p<>q, p.f <> q.g),
// and any path field unknown to the axioms becomes its own dimension before
// the same merging applies.
func (l *LarusHilfinger) effectiveGroups(pathFields []string) [][]string {
	groups := make([][]string, len(l.groups))
	copy(groups, l.groups)
	for _, f := range pathFields {
		if groupOf(groups, f) < 0 {
			groups = append(groups, []string{f})
		}
	}
	// Union-find over group indices.
	parent := make([]int, len(groups))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i := 0; i < len(groups); i++ {
		for j := i + 1; j < len(groups); j++ {
			if find(i) == find(j) {
				continue
			}
			if !l.dimensionsSeparated(groups[i], groups[j]) {
				parent[find(i)] = find(j)
			}
		}
	}
	merged := map[int][]string{}
	for i, g := range groups {
		r := find(i)
		merged[r] = append(merged[r], g...)
	}
	var out [][]string
	for i := range groups {
		if find(i) == i {
			out = append(out, merged[i])
		}
	}
	return out
}

// dimensionsSeparated reports whether every cross pair of fields from the
// two dimensions is certified never to reach a common vertex in one step.
func (l *LarusHilfinger) dimensionsSeparated(g1, g2 []string) bool {
	for _, f := range g1 {
		for _, g := range g2 {
			key := "sep\x00" + f + "\x00" + g
			v, ok := l.certified[key]
			if !ok {
				same := l.prov.Prove(prover.SameSrc, pathexpr.F(f), pathexpr.F(g)).Result == prover.Proved
				diff := same && l.prov.Prove(prover.DiffSrc, pathexpr.F(f), pathexpr.F(g)).Result == prover.Proved
				v = same && diff
				l.certified[key] = v
			}
			if !v {
				return false
			}
		}
	}
	return true
}

func wordEq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
