package baseline

import (
	"testing"

	"repro/internal/axiom"
	"repro/internal/core"
)

func TestHendrenNicolauPreciseOnTrees(t *testing.T) {
	hn := NewHendrenNicolau(axiom.BinaryTree("L", "R"))
	if got := hn.DepTest(q("_h", "L.L", "L.R")); got != core.No {
		t.Errorf("tree LL vs LR = %v, want No", got)
	}
	if got := hn.DepTest(q("_h", "L", "R")); got != core.No {
		t.Errorf("tree L vs R = %v, want No", got)
	}
	if got := hn.DepTest(q("_h", "L.L", "L.L")); got != core.Yes {
		t.Errorf("identical = %v, want Yes", got)
	}
}

func TestHendrenNicolauPreciseOnLists(t *testing.T) {
	hn := NewHendrenNicolau(axiom.SinglyLinkedList("next"))
	// The "k or more links ahead" relation: ε vs next+.
	if got := hn.DepTest(q("_h", "ε", "next+")); got != core.No {
		t.Errorf("list ε vs next+ = %v, want No", got)
	}
	if got := hn.DepTest(q("_h", "next", "next.next+")); got != core.No {
		t.Errorf("list next vs next.next+ = %v, want No", got)
	}
}

func TestHendrenNicolauFailsOffTrees(t *testing.T) {
	// §2.4: "does not handle cyclic data structures" and is precise for
	// trees only — the leaf-linked DAG and the sparse element structure are
	// out of reach.
	llt := NewHendrenNicolau(axiom.LeafLinkedBinaryTree())
	if got := llt.DepTest(q("_h", "L.L.N", "L.R.N")); got != core.Maybe {
		t.Errorf("leaf-linked LLN vs LRN = %v, want Maybe", got)
	}
	sm := NewHendrenNicolau(axiom.SparseMatrixCore())
	if got := sm.DepTest(q("_h", "ncolE+", "nrowE+ncolE+")); got != core.Maybe {
		t.Errorf("Theorem T = %v, want Maybe", got)
	}
	ring := NewHendrenNicolau(axiom.CircularList("next"))
	if got := ring.DepTest(q("_h", "ε", "next+")); got != core.Maybe {
		t.Errorf("circular list = %v, want Maybe", got)
	}
}

func TestHendrenNicolauExpressibility(t *testing.T) {
	// Alternations and interior closures exceed path-matrix form even on a
	// certified tree.
	hn := NewHendrenNicolau(axiom.BinaryTree("L", "R"))
	if got := hn.DepTest(q("_h", "L.(L|R)", "R")); got != core.Maybe {
		t.Errorf("alternation = %v, want Maybe (beyond path-matrix form)", got)
	}
	if got := hn.DepTest(q("_h", "L*.R", "R.R")); got != core.Maybe {
		t.Errorf("interior closure = %v, want Maybe", got)
	}
	// ... while APT handles both.
	apt := core.NewTester(axiom.BinaryTree("L", "R"), prover0())
	if out := apt.DepTest(q("_h", "L.(L|R)", "R")); out.Result != core.No {
		t.Errorf("APT on alternation = %v, want No", out.Result)
	}
}

func TestHendrenNicolauStructuralChecks(t *testing.T) {
	hn := NewHendrenNicolau(axiom.BinaryTree("L", "R"))
	rr := q("_h", "L", "L")
	rr.S.IsWrite = false
	if got := hn.DepTest(rr); got != core.No {
		t.Errorf("read-read = %v, want No", got)
	}
	fields := q("_h", "L", "L")
	fields.S.Field = "other"
	if got := hn.DepTest(fields); got != core.No {
		t.Errorf("distinct fields = %v, want No", got)
	}
	diff := q("_hp", "L", "R")
	diff.T.Handle = "_hq"
	if got := hn.DepTest(diff); got != core.Maybe {
		t.Errorf("different handles = %v, want Maybe", got)
	}
	typed := q("_h", "L", "L")
	typed.S.Type, typed.T.Type = "A", "B"
	if got := hn.DepTest(typed); got != core.No {
		t.Errorf("different types = %v, want No", got)
	}
}
