package baseline

import (
	"math/rand"
	"testing"

	"repro/internal/axiom"
	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/pathexpr"
)

// Baselines must obey the same contract as APT: a No answer may never
// contradict a collision on a conforming concrete heap.  This harness
// caught a real bug: the LH88 widening originally kept uncertified
// dimensions as separate runs, answering No for a skip list's express-hop
// vs two base hops — which land on the same vertex.

type depTester interface {
	DepTest(core.Query) core.Result
}

func randWordPath(rng *rand.Rand, fields []string, maxLen int) pathexpr.Expr {
	n := rng.Intn(maxLen + 1)
	w := make([]string, n)
	for i := range w {
		w[i] = fields[rng.Intn(len(fields))]
	}
	return pathexpr.FromWord(w)
}

func checkBaselineSoundness(t *testing.T, name string, bt depTester, graphs []*heap.Graph, fields []string, trials int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	nos := 0
	for i := 0; i < trials; i++ {
		x := randWordPath(rng, fields, 4)
		y := randWordPath(rng, fields, 4)
		q := core.Query{
			S: core.Access{Handle: "_h", Path: x, Field: "d", IsWrite: true},
			T: core.Access{Handle: "_h", Path: y, Field: "d", IsWrite: true},
		}
		if bt.DepTest(q) != core.No {
			continue
		}
		nos++
		for gi, g := range graphs {
			for v := 0; v < g.NumVertices(); v++ {
				if !g.Disjoint(heap.Vertex(v), x, heap.Vertex(v), y) {
					t.Fatalf("%s UNSOUND: No for %v vs %v but they collide at vertex %d of heap %d",
						name, x, y, v, gi)
				}
			}
		}
	}
	if nos == 0 {
		t.Logf("%s: no No answers in %d trials (fully conservative here)", name, trials)
	} else {
		t.Logf("%s: validated %d No answers", name, nos)
	}
}

func soundnessHeaps(t *testing.T) (trees, lists, skips []*heap.Graph) {
	t.Helper()
	rng := rand.New(rand.NewSource(23))
	for d := 0; d <= 3; d++ {
		g, _ := heap.BuildLeafLinkedTree(d)
		trees = append(trees, g)
	}
	for i := 0; i < 5; i++ {
		g, _ := heap.RandomLeafLinkedTree(rng, 1+rng.Intn(12))
		trees = append(trees, g)
	}
	for _, n := range []int{1, 2, 5, 9} {
		g, _ := heap.BuildList(n, "link")
		lists = append(lists, g)
	}
	for _, n := range []int{1, 4, 9, 16} {
		g, _ := heap.BuildSkipList(n, []string{"n0", "n1", "n2"})
		skips = append(skips, g)
	}
	return trees, lists, skips
}

func TestBaselineSoundnessLeafLinkedTree(t *testing.T) {
	trees, _, _ := soundnessHeaps(t)
	set := axiom.LeafLinkedBinaryTree()
	fields := []string{"L", "R", "N"}
	checkBaselineSoundness(t, "LH88", NewLarusHilfinger(set), trees, fields, 400, 29)
	checkBaselineSoundness(t, "HN90", NewHendrenNicolau(set), trees, fields, 400, 31)
	checkBaselineSoundness(t, "k-limited", NewKLimited(2, set), trees, fields, 400, 37)
}

func TestBaselineSoundnessLists(t *testing.T) {
	_, lists, _ := soundnessHeaps(t)
	set := axiom.SinglyLinkedList("link")
	fields := []string{"link"}
	checkBaselineSoundness(t, "LH88", NewLarusHilfinger(set), lists, fields, 200, 41)
	checkBaselineSoundness(t, "HN90", NewHendrenNicolau(set), lists, fields, 200, 43)
	checkBaselineSoundness(t, "k-limited", NewKLimited(2, set), lists, fields, 200, 47)
}

func TestBaselineSoundnessSkipLists(t *testing.T) {
	_, _, skips := soundnessHeaps(t)
	set := axiom.SkipList("n0", "n1", "n2")
	fields := []string{"n0", "n1", "n2"}
	checkBaselineSoundness(t, "LH88", NewLarusHilfinger(set), skips, fields, 400, 53)
	checkBaselineSoundness(t, "HN90", NewHendrenNicolau(set), skips, fields, 400, 59)
	checkBaselineSoundness(t, "k-limited", NewKLimited(2, set), skips, fields, 400, 61)
}

// TestSkipListExpressHopRegression pins the bug the harness caught: the
// express hop n1 and the double base hop n0.n0 may collide, so every test
// must answer Maybe (or Yes), never No.
func TestSkipListExpressHopRegression(t *testing.T) {
	set := axiom.SkipList("n0", "n1")
	q := core.Query{
		S: core.Access{Handle: "_h", Path: pathexpr.MustParse("n1"), Field: "d", IsWrite: true},
		T: core.Access{Handle: "_h", Path: pathexpr.MustParse("n0.n0"), Field: "d", IsWrite: true},
	}
	if got := NewLarusHilfinger(set).DepTest(q); got == core.No {
		t.Error("LH88 must not answer No for n1 vs n0.n0")
	}
	if got := NewHendrenNicolau(set).DepTest(q); got == core.No {
		t.Error("HN90 must not answer No for n1 vs n0.n0")
	}
	if got := NewKLimited(2, set).DepTest(q); got == core.No {
		t.Error("k-limited must not answer No for n1 vs n0.n0")
	}
}
