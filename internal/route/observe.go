package route

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"repro/internal/telemetry"
	"repro/internal/wire"
)

// BackendStatz is one backend's entry in the router's /statz body.
type BackendStatz struct {
	Addr      string `json:"addr"`
	Up        bool   `json:"up"`
	Forwarded int64  `json:"forwarded"`
}

// Statz is the router's /statz body.
type Statz struct {
	UptimeMS        int64          `json:"uptime_ms"`
	Draining        bool           `json:"draining"`
	Accepted        int64          `json:"accepted"`
	Completed       int64          `json:"completed"`
	Inflight        int64          `json:"inflight"`
	Shed            int64          `json:"shed"`
	RefusedDraining int64          `json:"refused_draining"`
	Panics          int64          `json:"panics"`
	HedgesWon       int64          `json:"hedges_won"`
	HedgesLost      int64          `json:"hedges_lost"`
	HedgesSpared    int64          `json:"hedges_spared"`
	RingMoves       int64          `json:"ring_moves"`
	WarmHandoffs    int64          `json:"warm_handoffs"`
	Backends        []BackendStatz `json:"backends"`
}

// StatzSnapshot assembles the /statz body (exported for the cluster soaks
// and the loadgen client).
func (rt *Router) StatzSnapshot() Statz {
	accepted, completed, shed, refused := rt.adm.Counts()
	z := Statz{
		UptimeMS:        time.Since(rt.start).Milliseconds(),
		Draining:        rt.Draining(),
		Accepted:        accepted,
		Completed:       completed,
		Inflight:        rt.adm.Gauge().Load(),
		Shed:            shed,
		RefusedDraining: refused,
		Panics:          rt.panics.Load(),
		HedgesWon:       rt.hedgeWon.Load(),
		HedgesLost:      rt.hedgeLost.Load(),
		HedgesSpared:    rt.hedgeSpared.Load(),
		RingMoves:       rt.ringMoves.Load(),
		WarmHandoffs:    rt.handoffs.Load(),
	}
	for _, b := range rt.members() {
		z.Backends = append(z.Backends, BackendStatz{Addr: b.addr, Up: b.up.Load(), Forwarded: b.forwarded.Load()})
	}
	return z
}

// members returns the known backends sorted by address.
func (rt *Router) members() []*backend {
	rt.mu.Lock()
	out := make([]*backend, 0, len(rt.backends))
	for _, b := range rt.backends {
		out = append(out, b)
	}
	rt.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].addr < out[j].addr })
	return out
}

func (rt *Router) handleStatz(w http.ResponseWriter, r *http.Request) {
	wire.WriteJSON(w, http.StatusOK, rt.StatzSnapshot())
}

// handleMetrics serves Prometheus text exposition: the telemetry registry's
// instruments plus the router-level families below.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	rt.tel.Metrics().WritePrometheus(w) //nolint:errcheck // client hangup
	rt.writePromRouter(w)
}

func (rt *Router) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	wire.WriteJSON(w, http.StatusOK, rt.tel.Metrics().Snapshot())
}

// writePromRouter renders the router families: lifecycle counters, the
// per-backend up/forwarded series, the hedge outcomes, and the ring-move
// counter the warm handoff increments.
func (rt *Router) writePromRouter(w io.Writer) {
	bw := bufio.NewWriter(w)
	counter := func(name, help string, v int64) {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	accepted, completed, shed, refused := rt.adm.Counts()
	counter("apt_router_accepted_total", "Requests admitted by the router.", accepted)
	counter("apt_router_completed_total", "Requests answered through the router.", completed)
	counter("apt_router_shed_total", "Requests shed with 429 by the router's own admission control.", shed)
	counter("apt_router_refused_draining_total", "Requests refused because the router was draining.", refused)
	counter("apt_router_panics_total", "Router handler panics isolated into 500s.", rt.panics.Load())
	counter("apt_ring_moves_total", "Shards whose owner changed across ring membership changes.", rt.ringMoves.Load())
	counter("apt_ring_warm_handoffs_total", "Ring moves whose warm state was shipped to the gaining backend.", rt.handoffs.Load())

	fmt.Fprintf(bw, "# HELP apt_router_inflight Requests admitted and not yet answered.\n# TYPE apt_router_inflight gauge\napt_router_inflight %d\n",
		rt.adm.Gauge().Load())

	fmt.Fprintf(bw, "# HELP apt_hedge_total Hedging outcomes: won (hedge answered first), lost (primary answered after the hedge fired), spared (no hedge needed).\n# TYPE apt_hedge_total counter\n")
	for _, o := range []struct {
		outcome string
		v       int64
	}{
		{"won", rt.hedgeWon.Load()},
		{"lost", rt.hedgeLost.Load()},
		{"spared", rt.hedgeSpared.Load()},
	} {
		fmt.Fprintf(bw, "apt_hedge_total{outcome=%q} %d\n", o.outcome, o.v)
	}

	members := rt.members()
	fmt.Fprintf(bw, "# HELP apt_backend_up Whether the backend's last health probe answered 200.\n# TYPE apt_backend_up gauge\n")
	for _, b := range members {
		up := 0
		if b.up.Load() {
			up = 1
		}
		fmt.Fprintf(bw, "apt_backend_up{backend=\"%s\"} %d\n", telemetry.PromEscapeLabel(b.addr), up)
	}
	fmt.Fprintf(bw, "# HELP apt_backend_forwarded_total Requests forwarded to the backend (hedges and failovers included).\n# TYPE apt_backend_forwarded_total counter\n")
	for _, b := range members {
		fmt.Fprintf(bw, "apt_backend_forwarded_total{backend=\"%s\"} %d\n", telemetry.PromEscapeLabel(b.addr), b.forwarded.Load())
	}
	bw.Flush() //nolint:errcheck // client hangup
}
