package route

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/axiom"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/serve"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// newBackendTS boots one real single-node server — the router composes the
// very servers the rest of the suite tests.
func newBackendTS(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(serve.New(serve.Config{Workers: 2, MaxConcurrent: 8, QueueDepth: 64}))
	t.Cleanup(ts.Close)
	return ts
}

func newRouter(t *testing.T, cfg Config) *Router {
	t.Helper()
	rt := New(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		rt.Drain(ctx) //nolint:errcheck
	})
	return rt
}

func postBatch(t *testing.T, url string, req wire.BatchRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/batch: %v", err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	return resp, out
}

// rawTreeReq is a small raw-mode request over the leaf-linked binary tree
// (two provably independent pairs).
func rawTreeReq() wire.BatchRequest {
	tree := axiom.LeafLinkedBinaryTree()
	return wire.BatchRequest{
		AxiomSet:     tree.Source(),
		AxiomSetName: tree.StructName,
		Raw: []wire.RawQuery{
			{SHandle: "h", SPath: "L", SField: "val", SWrite: true,
				THandle: "h", TPath: "R", TField: "val"},
			{SHandle: "h", SPath: "", SField: "val", SWrite: true,
				THandle: "k", TPath: "", TField: "val", Relation: "distinct"},
		},
	}
}

// reqFingerprint computes a request's placement key exactly the way the
// router does (the raw-mode path touches no router state).
func reqFingerprint(req *wire.BatchRequest) uint64 {
	return (&Router{}).fingerprint(req)
}

// rawFromQuery converts one engine workload query to its wire form.  The
// conversion is lossless: workload queries carry only axioms, accesses, and
// the handle relation — exactly the raw-mode vocabulary.
func rawFromQuery(q core.Query) wire.RawQuery {
	rel := "same"
	switch q.Relation {
	case core.DistinctHandles:
		rel = "distinct"
	case core.UnknownHandles:
		rel = "unknown"
	}
	if q.S.Handle == q.T.Handle {
		rel = "same"
	}
	return wire.RawQuery{
		SHandle: q.S.Handle, SPath: q.S.Path.String(), SField: q.S.Field, SWrite: q.S.IsWrite,
		THandle: q.T.Handle, TPath: q.T.Path.String(), TField: q.T.Field, TWrite: q.T.IsWrite,
		Relation: rel,
	}
}

// TestRouterByteIdenticalVerdicts is the cluster's correctness anchor: the
// full 228-query engine differential workload, grouped by validity window
// into raw-mode batches, must answer byte-identically whether it runs
// against one directly-addressed server or through the consistent-hash
// router over four backends.  It also pins placement: each window's batch
// must land on exactly the backend the ring owns it to.
func TestRouterByteIdenticalVerdicts(t *testing.T) {
	queries := engine.Workload(1, 0)
	if len(queries) != 228 {
		t.Fatalf("workload = %d queries, want 228", len(queries))
	}

	// Group by window, preserving first-sighting order.
	type group struct {
		set  *axiom.Set
		raws []wire.RawQuery
	}
	var order []*group
	bySet := map[*axiom.Set]*group{}
	for _, q := range queries {
		g := bySet[q.Axioms]
		if g == nil {
			g = &group{set: q.Axioms}
			bySet[q.Axioms] = g
			order = append(order, g)
		}
		g.raws = append(g.raws, rawFromQuery(q))
	}

	direct := newBackendTS(t)
	var addrs []string
	for i := 0; i < 4; i++ {
		addrs = append(addrs, newBackendTS(t).URL)
	}
	rt := newRouter(t, Config{Backends: addrs})
	rts := httptest.NewServer(rt)
	defer rts.Close()

	total := 0
	expected := map[string]int64{} // ring-owner addr → batches owed
	for _, g := range order {
		req := wire.BatchRequest{AxiomSet: g.set.Source(), AxiomSetName: g.set.StructName, Raw: g.raws}
		expected[rt.currentRing().Owner(reqFingerprint(&req))]++

		dResp, dBody := postBatch(t, direct.URL, req)
		rResp, rBody := postBatch(t, rts.URL, req)
		if dResp.StatusCode != http.StatusOK || rResp.StatusCode != http.StatusOK {
			t.Fatalf("window %s: direct=%d routed=%d, want 200/200\ndirect: %s\nrouted: %s",
				g.set.StructName, dResp.StatusCode, rResp.StatusCode, dBody, rBody)
		}
		var dr, rr wire.BatchResponse
		if err := json.Unmarshal(dBody, &dr); err != nil {
			t.Fatalf("window %s: direct response: %v", g.set.StructName, err)
		}
		if err := json.Unmarshal(rBody, &rr); err != nil {
			t.Fatalf("window %s: routed response: %v", g.set.StructName, err)
		}
		dj, _ := json.Marshal(dr.Results)
		rj, _ := json.Marshal(rr.Results)
		if !bytes.Equal(dj, rj) {
			t.Fatalf("window %s: verdicts differ between direct and routed:\ndirect: %s\nrouted: %s",
				g.set.StructName, dj, rj)
		}
		if dr.Dependent != rr.Dependent {
			t.Fatalf("window %s: Dependent differs: direct=%v routed=%v", g.set.StructName, dr.Dependent, rr.Dependent)
		}
		total += len(rr.Results)
	}
	if total != 228 {
		t.Fatalf("answered %d queries through the router, want 228", total)
	}

	// Placement check: forwarded counts must equal the ring's ownership —
	// every batch went to its owner, no failover, no strays.
	z := rt.StatzSnapshot()
	for _, b := range z.Backends {
		if b.Forwarded != expected[b.Addr] {
			t.Errorf("backend %s forwarded %d batches, ring owes it %d", b.Addr, b.Forwarded, expected[b.Addr])
		}
	}
	if z.Accepted != z.Completed || z.Accepted != int64(len(order)) {
		t.Errorf("accepted=%d completed=%d, want both %d", z.Accepted, z.Completed, len(order))
	}
}

// TestRouterPropagatesRetryAfter: a backend's 429 is the shard owner's
// considered backpressure estimate — the router must deliver status, body,
// and the Retry-After header verbatim, not re-derive its own.
func TestRouterPropagatesRetryAfter(t *testing.T) {
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			fmt.Fprintln(w, "ok")
			return
		}
		w.Header().Set("Retry-After", "17")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":"server busy; retry"}`)
	}))
	defer fake.Close()

	rt := newRouter(t, Config{Backends: []string{fake.URL}})
	rts := httptest.NewServer(rt)
	defer rts.Close()

	resp, body := postBatch(t, rts.URL, rawTreeReq())
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (body %s)", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "17" {
		t.Errorf("Retry-After = %q, want the backend's own %q", got, "17")
	}
	var er wire.ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Error != "server busy; retry" {
		t.Errorf("body = %s, want the backend's error verbatim", body)
	}
	if got := resp.Header.Get("X-Apt-Backend"); got != fake.URL {
		t.Errorf("X-Apt-Backend = %q, want %q", got, fake.URL)
	}
}

// hedgePair is a two-backend harness: two scriptable fake backends plus a
// request steered (by content hash) so backend a owns its shard and backend
// b is the hedge target.  Handlers are fixed at construction, so there is
// no handler mutation to race with the serving goroutines.
type hedgePair struct {
	a, b      *httptest.Server
	aCanceled chan struct{}
	bGotReq   chan struct{}
	bGotOnce  *sync.Once
	req       wire.BatchRequest
}

// newHedgePair builds the harness.  aH and bH handle /v1/batch on the owner
// and the hedge backend; both may use the pair's channels (created before
// the servers start, so channel operations are the only cross-goroutine
// communication).
func newHedgePair(t *testing.T, aH, bH func(p *hedgePair, w http.ResponseWriter, r *http.Request)) *hedgePair {
	t.Helper()
	p := &hedgePair{aCanceled: make(chan struct{}, 1), bGotReq: make(chan struct{}), bGotOnce: new(sync.Once)}
	mk := func(h func(p *hedgePair, w http.ResponseWriter, r *http.Request)) *httptest.Server {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/healthz" {
				fmt.Fprintln(w, "ok")
				return
			}
			h(p, w, r)
		}))
		t.Cleanup(ts.Close)
		return ts
	}
	p.a, p.b = mk(aH), mk(bH)

	// Steer: an unparsable axiom-set body fingerprints as a pure content
	// hash, so scanning a few variants always finds one owned by a.
	ring := NewRing([]string{p.a.URL, p.b.URL})
	for i := 0; ; i++ {
		if i == 1000 {
			t.Fatal("no steering fingerprint found in 1000 variants")
		}
		req := wire.BatchRequest{
			AxiomSet: fmt.Sprintf("?steer variant %d?", i),
			Raw:      []wire.RawQuery{{SHandle: "h", THandle: "h", SField: "v", TField: "v"}},
		}
		if _, err := axiom.ParseSet("", req.AxiomSet); err == nil {
			continue // must stay on the content-hash path
		}
		if ring.Owner(reqFingerprint(&req)) == p.a.URL {
			p.req = req
			break
		}
	}
	return p
}

func (p *hedgePair) noteBGotReq() { p.bGotOnce.Do(func() { close(p.bGotReq) }) }

func okBody(who string) string {
	return fmt.Sprintf(`{"results":[],"dependent":false,"stats":{"axiom_set":%q}}`, who)
}

// TestHedgeWins: the owner hangs, the hedge answers — the client gets the
// hedge's verdict, the outcome counts as exactly one won hedge and one
// completion, and the owner's in-flight request is canceled.
func TestHedgeWins(t *testing.T) {
	p := newHedgePair(t,
		func(p *hedgePair, w http.ResponseWriter, r *http.Request) {
			// Drain the body so the server watches the connection: an
			// HTTP/1.1 server only cancels r.Context() on client disconnect
			// once the request body has been consumed.
			io.Copy(io.Discard, r.Body) //nolint:errcheck
			select {                    // hang until the router cancels the losing attempt
			case <-r.Context().Done():
				select {
				case p.aCanceled <- struct{}{}:
				default:
				}
			case <-time.After(10 * time.Second):
			}
		},
		func(p *hedgePair, w http.ResponseWriter, r *http.Request) {
			p.noteBGotReq()
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprint(w, okBody("hedge"))
		})

	rt := newRouter(t, Config{Backends: []string{p.a.URL, p.b.URL}, HedgeDelay: 5 * time.Millisecond})
	rts := httptest.NewServer(rt)
	defer rts.Close()

	resp, body := postBatch(t, rts.URL, p.req)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "hedge") {
		t.Fatalf("status=%d body=%s, want the hedge's 200", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Apt-Backend"); got != p.b.URL {
		t.Errorf("X-Apt-Backend = %q, want hedge backend %q", got, p.b.URL)
	}
	select {
	case <-p.aCanceled:
	case <-time.After(5 * time.Second):
		t.Error("losing attempt was never canceled")
	}
	z := rt.StatzSnapshot()
	if z.HedgesWon != 1 || z.HedgesLost != 0 || z.HedgesSpared != 0 {
		t.Errorf("hedge outcomes won=%d lost=%d spared=%d, want exactly one won", z.HedgesWon, z.HedgesLost, z.HedgesSpared)
	}
	if z.Accepted != 1 || z.Completed != 1 {
		t.Errorf("accepted=%d completed=%d, want 1/1 — a hedge must not double-count the completion", z.Accepted, z.Completed)
	}
}

// TestHedgeLoses: the hedge fires but the owner answers first — the owner's
// verdict is delivered, the hedge attempt is canceled, one lost hedge and
// one completion are counted.
func TestHedgeLoses(t *testing.T) {
	p := newHedgePair(t,
		func(p *hedgePair, w http.ResponseWriter, r *http.Request) {
			<-p.bGotReq // deterministically wait until the hedge is in flight
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprint(w, okBody("owner"))
		},
		func(p *hedgePair, w http.ResponseWriter, r *http.Request) {
			io.Copy(io.Discard, r.Body) //nolint:errcheck // enable disconnect detection
			p.noteBGotReq()
			select { // lose: hang until canceled
			case <-r.Context().Done():
			case <-time.After(10 * time.Second):
			}
		})

	rt := newRouter(t, Config{Backends: []string{p.a.URL, p.b.URL}, HedgeDelay: 5 * time.Millisecond})
	rts := httptest.NewServer(rt)
	defer rts.Close()

	resp, body := postBatch(t, rts.URL, p.req)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "owner") {
		t.Fatalf("status=%d body=%s, want the owner's 200", resp.StatusCode, body)
	}
	z := rt.StatzSnapshot()
	if z.HedgesWon != 0 || z.HedgesLost != 1 || z.HedgesSpared != 0 {
		t.Errorf("hedge outcomes won=%d lost=%d spared=%d, want exactly one lost", z.HedgesWon, z.HedgesLost, z.HedgesSpared)
	}
	if z.Accepted != 1 || z.Completed != 1 {
		t.Errorf("accepted=%d completed=%d, want 1/1", z.Accepted, z.Completed)
	}
}

// TestHedgeSpared: the owner answers well within the hedge delay — no hedge
// fires, the spared outcome is counted, the hedge backend never sees the
// request.
func TestHedgeSpared(t *testing.T) {
	p := newHedgePair(t,
		func(p *hedgePair, w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprint(w, okBody("owner"))
		},
		func(p *hedgePair, w http.ResponseWriter, r *http.Request) {
			p.noteBGotReq()
			fmt.Fprint(w, okBody("hedge"))
		})

	rt := newRouter(t, Config{Backends: []string{p.a.URL, p.b.URL}, HedgeDelay: 10 * time.Second})
	rts := httptest.NewServer(rt)
	defer rts.Close()

	resp, body := postBatch(t, rts.URL, p.req)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "owner") {
		t.Fatalf("status=%d body=%s, want the owner's 200", resp.StatusCode, body)
	}
	select {
	case <-p.bGotReq:
		t.Error("hedge backend saw a request despite the owner answering in time")
	default:
	}
	z := rt.StatzSnapshot()
	if z.HedgesWon != 0 || z.HedgesLost != 0 || z.HedgesSpared != 1 {
		t.Errorf("hedge outcomes won=%d lost=%d spared=%d, want exactly one spared", z.HedgesWon, z.HedgesLost, z.HedgesSpared)
	}
}

// TestHedgeVersusDrain: the owner starts draining (503) while a hedge is in
// flight.  Exactly one verdict — the hedge's 200 — reaches the client; the
// 503 is swallowed as a failover, not surfaced alongside.
func TestHedgeVersusDrain(t *testing.T) {
	p := newHedgePair(t,
		func(p *hedgePair, w http.ResponseWriter, r *http.Request) {
			<-p.bGotReq // drain verdict lands while the hedge is in flight
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"shutting down; not accepting requests"}`)
		},
		func(p *hedgePair, w http.ResponseWriter, r *http.Request) {
			p.noteBGotReq()
			time.Sleep(20 * time.Millisecond) // answer after the owner's 503
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprint(w, okBody("hedge"))
		})

	rt := newRouter(t, Config{Backends: []string{p.a.URL, p.b.URL}, HedgeDelay: 5 * time.Millisecond})
	rts := httptest.NewServer(rt)
	defer rts.Close()

	resp, body := postBatch(t, rts.URL, p.req)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "hedge") {
		t.Fatalf("status=%d body=%s, want exactly the hedge's 200 verdict", resp.StatusCode, body)
	}
	z := rt.StatzSnapshot()
	if z.Accepted != 1 || z.Completed != 1 {
		t.Errorf("accepted=%d completed=%d, want 1/1 — one request, one verdict", z.Accepted, z.Completed)
	}
	if z.HedgesWon != 1 {
		t.Errorf("hedges won = %d, want 1 (the hedge delivered while the owner drained)", z.HedgesWon)
	}
}

// TestAllBackendsDraining: when every member answers 503 the router
// propagates the drain answer rather than inventing its own — and still
// counts exactly one completion.
func TestAllBackendsDraining(t *testing.T) {
	drain := func(p *hedgePair, w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":"shutting down; not accepting requests"}`)
	}
	p := newHedgePair(t, drain, drain)

	rt := newRouter(t, Config{Backends: []string{p.a.URL, p.b.URL}})
	rts := httptest.NewServer(rt)
	defer rts.Close()

	resp, body := postBatch(t, rts.URL, p.req)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d (body %s), want the backends' 503 propagated", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "shutting down") {
		t.Errorf("body = %s, want the backend's drain error", body)
	}
	z := rt.StatzSnapshot()
	if z.Accepted != 1 || z.Completed != 1 {
		t.Errorf("accepted=%d completed=%d, want 1/1", z.Accepted, z.Completed)
	}
}

// TestFailoverOnDownBackend: the shard owner's listener is gone — the
// router fails over to the next ring member and marks the owner down.  The
// owner is chosen deterministically: whichever of the two servers the ring
// places the request on is the one that gets killed.
func TestFailoverOnDownBackend(t *testing.T) {
	s1, s2 := newBackendTS(t), newBackendTS(t)
	req := rawTreeReq()
	owner := NewRing([]string{s1.URL, s2.URL}).Owner(reqFingerprint(&req))
	live := s1
	dead := s2
	if owner == s1.URL {
		live, dead = s2, s1
	}
	deadURL := dead.URL
	dead.Close() // nothing listens on the owner's address anymore

	rt := newRouter(t, Config{Backends: []string{live.URL, deadURL}})
	rts := httptest.NewServer(rt)
	defer rts.Close()

	resp, body := postBatch(t, rts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (body %s), want 200 via failover", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Apt-Backend"); got != live.URL {
		t.Errorf("X-Apt-Backend = %q, want the live backend %q", got, live.URL)
	}
	z := rt.StatzSnapshot()
	for _, b := range z.Backends {
		if b.Addr == deadURL && b.Up {
			t.Error("dead backend still marked up after a failed forward")
		}
	}
}

// TestWarmHandoffOnRingChange is deterministic by construction: with two
// live servers we let the ring decide which one owns the tree shard under
// the two-member ring, start the router with only the OTHER member, warm the
// shard there, then add the owner.  The shard must move, the warm state must
// ship, and the gaining backend's first request must run engine-warm.
func TestWarmHandoffOnRingChange(t *testing.T) {
	s1, s2 := newBackendTS(t), newBackendTS(t)
	req := rawTreeReq()

	gaining := NewRing([]string{s1.URL, s2.URL}).Owner(reqFingerprint(&req))
	losing := s1.URL
	if gaining == s1.URL {
		losing = s2.URL
	}

	rt := newRouter(t, Config{Backends: []string{losing}})
	rts := httptest.NewServer(rt)
	defer rts.Close()

	// Warm the shard on the losing member (cold build there).
	resp, body := postBatch(t, rts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup status = %d (body %s)", resp.StatusCode, body)
	}
	var br wire.BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatalf("warmup response: %v", err)
	}
	if !br.Stats.ColdEngine {
		t.Fatal("warmup request should have built the engine cold")
	}

	// Ring change: the owner joins; the tree shard moves to it warm.
	rt.SetBackends([]string{losing, gaining})
	z := rt.StatzSnapshot()
	if z.RingMoves < 1 {
		t.Fatalf("ring moves = %d, want ≥1 — the tree shard's owner changed", z.RingMoves)
	}
	if z.WarmHandoffs != 1 {
		t.Fatalf("warm handoffs = %d, want exactly 1", z.WarmHandoffs)
	}

	// The moved shard's first request on the gaining backend rides the
	// shipped artifact: warm engine, not a cold build.
	resp, body = postBatch(t, rts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-move status = %d (body %s)", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Apt-Backend"); got != gaining {
		t.Fatalf("post-move request went to %q, want the gaining owner %q", got, gaining)
	}
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatalf("post-move response: %v", err)
	}
	if br.Stats.ColdEngine {
		t.Error("gaining backend built cold despite the warm handoff")
	}
}

// TestRingChangeUnderLoad: concurrent traffic across several shards while
// members join and leave.  Every request must get exactly one 200 verdict —
// accepted == completed, nothing shed, nothing lost, nothing in flight at
// the end.
func TestRingChangeUnderLoad(t *testing.T) {
	a, b, c := newBackendTS(t), newBackendTS(t), newBackendTS(t)
	rt := newRouter(t, Config{Backends: []string{a.URL, b.URL}})
	rts := httptest.NewServer(rt)
	defer rts.Close()

	// A handful of distinct shards: the workload windows all fingerprint
	// differently.
	var reqs []wire.BatchRequest
	for _, set := range engine.WorkloadWindows() {
		reqs = append(reqs, wire.BatchRequest{
			AxiomSet:     set.Source(),
			AxiomSetName: set.StructName,
			Raw: []wire.RawQuery{
				{SHandle: "h", SPath: "L", SField: "val", SWrite: true, THandle: "h", TPath: "R", TField: "val"},
			},
		})
	}

	const workers, perWorker = 6, 10
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				req := reqs[(w+i)%len(reqs)]
				body, _ := json.Marshal(req)
				resp, err := http.Post(rts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- fmt.Errorf("worker %d req %d: %v", w, i, err)
					continue
				}
				out, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("worker %d req %d: status %d (%s)", w, i, resp.StatusCode, out)
				}
			}
		}(w)
	}

	// Membership churn while the burst is in flight: grow, shrink, regrow.
	rt.SetBackends([]string{a.URL, b.URL, c.URL})
	rt.SetBackends([]string{a.URL, c.URL})
	rt.SetBackends([]string{a.URL, b.URL, c.URL})
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	z := rt.StatzSnapshot()
	total := int64(workers * perWorker)
	if z.Accepted != total || z.Completed != total {
		t.Errorf("accepted=%d completed=%d, want both %d — no request may be lost across ring changes", z.Accepted, z.Completed, total)
	}
	if z.Inflight != 0 {
		t.Errorf("inflight = %d after the burst, want 0", z.Inflight)
	}
	if z.Shed != 0 || z.RefusedDraining != 0 {
		t.Errorf("shed=%d refused=%d, want 0/0", z.Shed, z.RefusedDraining)
	}
}

// TestRouterMetrics: the /metrics exposition parses under the registry's
// own validator and carries the cluster families the ISSUE names.
func TestRouterMetrics(t *testing.T) {
	backend := newBackendTS(t)
	tel := telemetry.New(telemetry.NewRegistry(), nil)
	rt := newRouter(t, Config{Backends: []string{backend.URL}, Telemetry: tel})
	rts := httptest.NewServer(rt)
	defer rts.Close()

	if resp, body := postBatch(t, rts.URL, rawTreeReq()); resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d (%s)", resp.StatusCode, body)
	}

	resp, err := http.Get(rts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read /metrics: %v", err)
	}
	if err := telemetry.ValidatePrometheus(body); err != nil {
		t.Fatalf("metrics do not validate: %v\n%s", err, body)
	}
	for _, want := range []string{
		"apt_backend_up{backend=",
		"apt_backend_forwarded_total{backend=",
		`apt_hedge_total{outcome="won"}`,
		`apt_hedge_total{outcome="lost"}`,
		`apt_hedge_total{outcome="spared"}`,
		"apt_ring_moves_total",
		"apt_ring_warm_handoffs_total",
		"apt_router_accepted_total",
		"apt_router_inflight",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
