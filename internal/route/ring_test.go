package route

import (
	"testing"
)

func fps(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(i)*2654435761 + 12345
	}
	return out
}

// TestRingPlacementIsDeterministic: ownership is a pure function of the
// membership set — construction order must not matter, and repeated lookups
// agree.
func TestRingPlacementIsDeterministic(t *testing.T) {
	a := NewRing([]string{"http://x:1", "http://y:2", "http://z:3"})
	b := NewRing([]string{"http://z:3", "http://x:1", "http://y:2", "http://x:1"})
	for _, fp := range fps(500) {
		if a.Owner(fp) != b.Owner(fp) {
			t.Fatalf("fp %#x: owner differs across construction orders: %s vs %s", fp, a.Owner(fp), b.Owner(fp))
		}
	}
}

// TestRingSequenceCoversAllBackends: the failover walk starts at the owner
// and visits every member exactly once.
func TestRingSequenceCoversAllBackends(t *testing.T) {
	r := NewRing([]string{"http://x:1", "http://y:2", "http://z:3", "http://w:4"})
	for _, fp := range fps(100) {
		seq := r.Sequence(fp)
		if len(seq) != 4 {
			t.Fatalf("fp %#x: sequence %v, want all 4 members", fp, seq)
		}
		if seq[0] != r.Owner(fp) {
			t.Fatalf("fp %#x: sequence starts at %s, owner is %s", fp, seq[0], r.Owner(fp))
		}
		seen := map[string]bool{}
		for _, a := range seq {
			if seen[a] {
				t.Fatalf("fp %#x: duplicate %s in sequence %v", fp, a, seq)
			}
			seen[a] = true
		}
	}
}

// TestRingBalance: with vnodes, no backend of four owns a wildly outsized
// share of a large fingerprint population.
func TestRingBalance(t *testing.T) {
	addrs := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}
	r := NewRing(addrs)
	counts := map[string]int{}
	population := fps(4000)
	for _, fp := range population {
		counts[r.Owner(fp)]++
	}
	for _, a := range addrs {
		share := float64(counts[a]) / float64(len(population))
		if share < 0.10 || share > 0.45 {
			t.Errorf("%s owns %.1f%% of the keyspace; want a roughly even split (counts %v)", a, share*100, counts)
		}
	}
}

// TestRingMinimalDisruption is consistent hashing's defining property: a
// membership change moves only the shards whose owner actually changed —
// roughly 1/n of the keyspace when one of n backends joins — and every
// other fingerprint keeps its owner.
func TestRingMinimalDisruption(t *testing.T) {
	old := NewRing([]string{"http://a:1", "http://b:2", "http://c:3"})
	grown := NewRing([]string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"})
	population := fps(4000)
	moves := Moved(old, grown, population)
	if len(moves) == 0 {
		t.Fatal("growing the ring moved nothing; the new backend owns no shards")
	}
	// Every move must target the new backend — a join never shuffles shards
	// among the existing members.
	for _, mv := range moves {
		if mv.To != "http://d:4" {
			t.Errorf("fp %#x moved %s → %s on a join of d; only moves to d are justified", mv.FP, mv.From, mv.To)
		}
	}
	// And the disruption is bounded: ~1/4 of the keyspace, generously < 1/2.
	if frac := float64(len(moves)) / float64(len(population)); frac > 0.5 {
		t.Errorf("join moved %.1f%% of the keyspace; consistent hashing should move ~25%%", frac*100)
	}

	// Removing d again restores the original placement exactly.
	back := NewRing([]string{"http://b:2", "http://a:1", "http://c:3"})
	for _, fp := range population {
		if old.Owner(fp) != back.Owner(fp) {
			t.Fatalf("fp %#x: owner not restored after leave: %s vs %s", fp, old.Owner(fp), back.Owner(fp))
		}
	}
}

// TestEmptyRing: no members means no owner — the router answers 502, it
// does not panic.
func TestEmptyRing(t *testing.T) {
	r := NewRing(nil)
	if got := r.Owner(42); got != "" {
		t.Errorf("empty ring owner = %q, want \"\"", got)
	}
	if got := r.Sequence(42); got != nil {
		t.Errorf("empty ring sequence = %v, want nil", got)
	}
}
