package route

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admit"
	"repro/internal/analysis"
	"repro/internal/axiom"
	"repro/internal/lang"
	"repro/internal/strhash"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// Router defaults.  The router's own admission exists to bound memory (it
// buffers request and response bodies), not to pace the backends — the
// backends shed for themselves and the router propagates their 429s — so
// its capacities default much wider than a backend's.
const (
	DefaultMaxConcurrent  = 128
	DefaultQueueDepth     = 256
	DefaultHedgeDelay     = 0 // hedging off unless asked for
	DefaultHealthInterval = 500 * time.Millisecond
	DefaultProbeTimeout   = 2 * time.Second
	DefaultMaxBodyBytes   = 1 << 20
	// fpCacheCap bounds the program→fingerprint cache; seenFPCap bounds the
	// set of fingerprints tracked for warm handoff.
	fpCacheCap = 1024
	seenFPCap  = 4096
)

// Config sizes a Router.
type Config struct {
	// Backends are the initial backend addresses ("host:port" or full
	// "http://host:port" URLs).
	Backends []string
	// HedgeDelay, when positive, fires a hedged duplicate of a request to
	// the shard's next backend if the owner has not answered within the
	// delay; first answer wins, the loser is canceled.  Zero disables.
	HedgeDelay time.Duration
	// HealthInterval is the /healthz probe period (DefaultHealthInterval
	// when zero); ProbeTimeout bounds one probe.
	HealthInterval time.Duration
	ProbeTimeout   time.Duration
	// MaxConcurrent and QueueDepth size the router's admission control.
	MaxConcurrent int
	QueueDepth    int
	// MaxBodyBytes bounds one buffered request body.
	MaxBodyBytes int64
	// Telemetry receives the router's counters (nil disables).
	Telemetry *telemetry.Set
	// AccessLog, when non-nil, receives one JSONL "http_access" line per
	// routed request.
	AccessLog *telemetry.TraceWriter
}

func (c Config) withDefaults() Config {
	if c.HealthInterval <= 0 {
		c.HealthInterval = DefaultHealthInterval
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = DefaultProbeTimeout
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = DefaultMaxConcurrent
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	return c
}

// backend is one member's health state.
type backend struct {
	addr      string // normalized base URL, e.g. "http://127.0.0.1:8080"
	up        atomic.Bool
	forwarded atomic.Int64
}

// Router shards /v1/batch traffic across aptserved backends by axiom-set
// fingerprint.  It implements http.Handler and composes the same admission
// tier the single-node server uses — the routing layer is the other
// composition of the query plane's tiers.
type Router struct {
	cfg    Config
	tel    *telemetry.Set
	adm    *admit.Controller
	mux    *http.ServeMux
	client *http.Client
	access *telemetry.TraceWriter
	start  time.Time

	mu       sync.Mutex
	ring     *Ring
	backends map[string]*backend // by normalized addr; survives ring changes
	seenFPs  map[uint64]struct{}
	fpCache  map[uint64]uint64 // FNV(program+fn) → axiom-set fingerprint

	probeCtx    context.Context
	probeCancel context.CancelFunc
	probeDone   chan struct{}

	hedgeWon    atomic.Int64
	hedgeLost   atomic.Int64
	hedgeSpared atomic.Int64
	ringMoves   atomic.Int64
	handoffs    atomic.Int64 // successful warm handoffs (≤ ringMoves)
	panics      atomic.Int64

	cRequests *telemetry.Counter
	cShed     *telemetry.Counter
	cHedges   *telemetry.Counter
	hRequest  *telemetry.Histogram
}

// NormalizeAddr turns "host:port" into "http://host:port" (full URLs pass
// through, trailing slashes are trimmed).
func NormalizeAddr(addr string) string {
	for len(addr) > 0 && addr[len(addr)-1] == '/' {
		addr = addr[:len(addr)-1]
	}
	if addr == "" {
		return addr
	}
	if !bytes.Contains([]byte(addr), []byte("://")) {
		return "http://" + addr
	}
	return addr
}

// New builds a Router over the configured backends and starts its health
// prober.  Stop it with Drain.
func New(cfg Config) *Router {
	cfg = cfg.withDefaults()
	tel := cfg.Telemetry
	rt := &Router{
		cfg: cfg,
		tel: tel,
		adm: admit.New(cfg.MaxConcurrent, cfg.QueueDepth),
		mux: http.NewServeMux(),
		client: &http.Client{
			// No overall client timeout: the batch deadline belongs to the
			// backend (it caps at MaxDeadline); per-attempt cancellation comes
			// from the request context.
			Transport: &http.Transport{MaxIdleConnsPerHost: cfg.MaxConcurrent},
		},
		access:    cfg.AccessLog,
		start:     time.Now(),
		backends:  make(map[string]*backend),
		seenFPs:   make(map[uint64]struct{}),
		fpCache:   make(map[uint64]uint64),
		cRequests: tel.Counter("route.requests"),
		cShed:     tel.Counter("route.shed"),
		cHedges:   tel.Counter("route.hedges"),
		hRequest:  tel.Histogram("route.request_ns"),
	}
	var addrs []string
	for _, a := range cfg.Backends {
		if n := NormalizeAddr(a); n != "" {
			addrs = append(addrs, n)
			if _, ok := rt.backends[n]; !ok {
				b := &backend{addr: n}
				b.up.Store(true) // optimistic until the first probe says otherwise
				rt.backends[n] = b
			}
		}
	}
	rt.ring = NewRing(addrs)
	rt.mux.HandleFunc("/v1/batch", rt.handleBatch)
	rt.mux.HandleFunc("/healthz", rt.handleHealthz)
	rt.mux.HandleFunc("/metrics", rt.handleMetrics)
	rt.mux.HandleFunc("/metrics.json", rt.handleMetricsJSON)
	rt.mux.HandleFunc("/statz", rt.handleStatz)
	rt.probeCtx, rt.probeCancel = context.WithCancel(context.Background())
	rt.probeDone = make(chan struct{})
	go rt.probeLoop()
	return rt
}

// ServeHTTP dispatches with the same panic isolation the backend server
// uses.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if rec := recover(); rec != nil {
			rt.panics.Add(1)
			wire.WriteJSONError(w, http.StatusInternalServerError, "internal error")
		}
	}()
	rt.mux.ServeHTTP(w, r)
}

// Drain stops admissions, waits for in-flight forwards, and stops the
// health prober.
func (rt *Router) Drain(ctx context.Context) error {
	rt.probeCancel()
	err := rt.adm.Drain(ctx)
	select {
	case <-rt.probeDone:
	case <-ctx.Done():
	}
	return err
}

// Draining reports whether Drain has begun.
func (rt *Router) Draining() bool { return rt.adm.Draining() }

// currentRing returns the ring under the lock.
func (rt *Router) currentRing() *Ring {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.ring
}

// SetBackends replaces the ring membership and performs the warm handoff:
// for every fingerprint this router has routed whose owner changes, it
// snapshots the old owner's warm engine state and preloads it into the new
// owner, so the moved shard's first request there is engine-warm instead of
// cold.  Handoff is best-effort — an unreachable old owner just means the
// gaining backend builds cold, which is the pre-handoff behavior.
func (rt *Router) SetBackends(addrs []string) {
	var normalized []string
	for _, a := range addrs {
		if n := NormalizeAddr(a); n != "" {
			normalized = append(normalized, n)
		}
	}
	next := NewRing(normalized)

	rt.mu.Lock()
	old := rt.ring
	rt.ring = next
	for _, a := range next.Addrs() {
		if _, ok := rt.backends[a]; !ok {
			b := &backend{addr: a}
			b.up.Store(true)
			rt.backends[a] = b
		}
	}
	fps := make([]uint64, 0, len(rt.seenFPs))
	for fp := range rt.seenFPs {
		fps = append(fps, fp)
	}
	rt.mu.Unlock()

	for _, mv := range Moved(old, next, fps) {
		rt.ringMoves.Add(1)
		if mv.From == "" || mv.To == "" {
			continue
		}
		if rt.handoff(mv) {
			rt.handoffs.Add(1)
		}
	}
}

// handoff ships one moved shard's warm state from its old owner to its new
// one; false means the move proceeds cold.
func (rt *Router) handoff(mv Move) bool {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/v1/snapshot?fp=%016x", mv.From, mv.FP), nil)
	if err != nil {
		return false
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return false
	}
	art, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK || len(art) == 0 {
		return false
	}
	preq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		mv.To+"/v1/preload", bytes.NewReader(art))
	if err != nil {
		return false
	}
	preq.Header.Set("Content-Type", "application/octet-stream")
	presp, err := rt.client.Do(preq)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, presp.Body) //nolint:errcheck
	presp.Body.Close()
	return presp.StatusCode == http.StatusOK
}

// probeLoop polls every backend's /healthz, flipping its up flag.  A
// backend marked down by a failed forward is revived here as soon as it
// answers again.
func (rt *Router) probeLoop() {
	defer close(rt.probeDone)
	tick := time.NewTicker(rt.cfg.HealthInterval)
	defer tick.Stop()
	for {
		select {
		case <-rt.probeCtx.Done():
			return
		case <-tick.C:
		}
		rt.mu.Lock()
		members := make([]*backend, 0, len(rt.backends))
		for _, b := range rt.backends {
			members = append(members, b)
		}
		rt.mu.Unlock()
		for _, b := range members {
			b.up.Store(rt.probe(b.addr))
		}
	}
}

// probe reports whether the backend answers /healthz with 200.
func (rt *Router) probe(addr string) bool {
	ctx, cancel := context.WithTimeout(rt.probeCtx, rt.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// ProbeNow runs one synchronous probe pass (exported for tests and the
// cluster smoke, which must not wait out the ticker).
func (rt *Router) ProbeNow() {
	rt.mu.Lock()
	members := make([]*backend, 0, len(rt.backends))
	for _, b := range rt.backends {
		members = append(members, b)
	}
	rt.mu.Unlock()
	for _, b := range members {
		b.up.Store(rt.probe(b.addr))
	}
}

// fingerprint computes the request's axiom-set fingerprint — the ring
// placement key.  Raw mode parses the shipped axiom text; program mode
// parses the program and collects its merged axiom set exactly as the
// backend's analyzer will (analysis.CollectAxioms), memoized by program
// hash so repeat programs skip the parse.  Malformed requests fall back to
// a content hash: they still place deterministically, and the owning
// backend answers the 400.
func (rt *Router) fingerprint(req *wire.BatchRequest) uint64 {
	if len(req.Raw) > 0 || req.AxiomSet != "" {
		if set, err := axiom.ParseSet(req.AxiomSetName, req.AxiomSet); err == nil {
			return set.Fingerprint64()
		}
		return strhash.FNV64a(req.AxiomSet)
	}
	h := strhash.FNV64a(req.Program + "\x00" + req.Fn)
	rt.mu.Lock()
	fp, ok := rt.fpCache[h]
	rt.mu.Unlock()
	if ok {
		return fp
	}
	fp = h
	if prog, err := lang.Parse(req.Program); err == nil {
		fn := req.Fn
		if fn == "" && len(prog.Funcs) == 1 {
			fn = prog.Funcs[0].Name
		}
		fp = analysis.CollectAxioms(prog, fn, true).Fingerprint64()
	}
	rt.mu.Lock()
	if len(rt.fpCache) >= fpCacheCap {
		rt.fpCache = make(map[uint64]uint64) // cheap full reset beats tracking LRU here
	}
	rt.fpCache[h] = fp
	rt.mu.Unlock()
	return fp
}

// noteFP tracks a routed fingerprint for future warm handoffs (bounded;
// beyond the cap new shards just move cold).
func (rt *Router) noteFP(fp uint64) {
	rt.mu.Lock()
	if len(rt.seenFPs) < seenFPCap {
		rt.seenFPs[fp] = struct{}{}
	}
	rt.mu.Unlock()
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if rt.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		wire.WriteJSONError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	start := time.Now()
	if !rt.adm.TryAcquire() {
		rt.cShed.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(rt.adm.RetryAfterSeconds()))
		wire.WriteJSONError(w, http.StatusTooManyRequests, "router admission queue full; retry")
		return
	}
	defer rt.adm.Release()
	if !rt.adm.Begin() {
		wire.WriteJSONError(w, http.StatusServiceUnavailable, "router draining")
		return
	}
	defer func() {
		rt.adm.Finish()
		rt.hRequest.Observe(time.Since(start).Nanoseconds())
	}()
	rt.cRequests.Add(1)

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes))
	if err != nil {
		wire.WriteJSONError(w, http.StatusBadRequest, fmt.Sprintf("read body: %v", err))
		return
	}
	var req wire.BatchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		wire.WriteJSONError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	fp := rt.fingerprint(&req)
	rt.noteFP(fp)
	res := rt.forward(r.Context(), fp, body, r.Header.Get("traceparent"))
	if res == nil {
		wire.WriteJSONError(w, http.StatusBadGateway, "no backend available")
		return
	}
	// Verbatim passthrough: the backend's verdicts, stats, trace ids, and —
	// critically for shed answers — its Retry-After estimate reach the
	// client untouched.  The router adds routing, never opinions.
	for _, h := range []string{"Content-Type", "Retry-After", "traceparent"} {
		if v := res.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set("X-Apt-Backend", res.addr)
	w.WriteHeader(res.status)
	w.Write(res.body) //nolint:errcheck // client hangup
	rt.logAccess(r, res, time.Since(start))
}

func (rt *Router) logAccess(r *http.Request, res *forwardResult, dur time.Duration) {
	if rt.access == nil {
		return
	}
	rt.access.Emit("http_access",
		telemetry.String("method", r.Method),
		telemetry.String("path", r.URL.Path),
		telemetry.Int("status", res.status),
		telemetry.Int64("bytes", int64(len(res.body))),
		telemetry.DurUS("dur_us", dur),
		telemetry.String("remote", r.RemoteAddr),
		telemetry.String("backend", res.addr),
	)
}

// forwardResult is one backend's buffered answer.
type forwardResult struct {
	status int
	header http.Header
	body   []byte
	addr   string
}

// forward sends the request to the fingerprint's owner, hedging to the
// next backend after HedgeDelay and failing over on connection errors and
// 503s.  The first delivered answer wins and every other attempt is
// canceled; nil means no backend could be reached.
func (rt *Router) forward(ctx context.Context, fp uint64, body []byte, traceparent string) *forwardResult {
	seq := rt.candidates(fp)
	if len(seq) == 0 {
		return nil
	}
	actx, cancel := context.WithCancel(ctx)
	defer cancel() // cancels the losing attempt's in-flight HTTP request

	type attemptOut struct {
		res *forwardResult // nil: connection-level failure
		err error
	}
	results := make(chan attemptOut, len(seq))
	launch := func(b *backend) {
		go func() {
			res, err := rt.attempt(actx, b, body, traceparent)
			results <- attemptOut{res: res, err: err}
		}()
	}

	hedging := rt.cfg.HedgeDelay > 0 && len(seq) > 1
	var hedgeC <-chan time.Time
	if hedging {
		timer := time.NewTimer(rt.cfg.HedgeDelay)
		defer timer.Stop()
		hedgeC = timer.C
	}

	launch(seq[0])
	launched, pending := 1, 1
	hedgeAddr := ""         // the hedged attempt's backend, "" until the hedge fires
	var last *forwardResult // kept 503 to propagate if every backend drains
	for pending > 0 {
		select {
		case out := <-results:
			// A 503 is a draining backend: fail over like a connection error
			// (another member can answer) and only propagate it when nobody
			// else can.  Every other status — 429 + Retry-After included — is
			// the shard owner's answer and is delivered verbatim.
			if out.res != nil && out.res.status != http.StatusServiceUnavailable {
				// Delivered.  Hedge accounting: exactly one of won/lost/spared
				// per hedging-eligible request, counted at delivery so the
				// completion itself is never double-counted.
				if hedging {
					switch {
					case hedgeAddr == "":
						rt.hedgeSpared.Add(1)
					case out.res.addr == hedgeAddr:
						rt.hedgeWon.Add(1)
					default:
						rt.hedgeLost.Add(1)
					}
				}
				return out.res
			}
			if out.res != nil {
				last = out.res
			}
			pending--
			if launched < len(seq) {
				launch(seq[launched])
				launched++
				pending++
			}
		case <-hedgeC:
			hedgeC = nil
			if launched < len(seq) {
				hedgeAddr = seq[launched].addr
				rt.cHedges.Add(1)
				launch(seq[launched])
				launched++
				pending++
			}
		case <-ctx.Done():
			return nil
		}
	}
	return last
}

// candidates returns the shard's backends in ring order with the healthy
// ones first (stable within each class), so the owner serves when up and
// the walk order still decides failover when it is not.
func (rt *Router) candidates(fp uint64) []*backend {
	seq := rt.currentRing().Sequence(fp)
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var up, down []*backend
	for _, addr := range seq {
		b := rt.backends[addr]
		if b == nil {
			continue
		}
		if b.up.Load() {
			up = append(up, b)
		} else {
			down = append(down, b)
		}
	}
	return append(up, down...)
}

// attempt forwards the buffered body to one backend and buffers its
// answer.  A connection-level error marks the backend down (the prober
// revives it) and returns nil.
func (rt *Router) attempt(ctx context.Context, b *backend, body []byte, traceparent string) (*forwardResult, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.addr+"/v1/batch", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if traceparent != "" {
		req.Header.Set("traceparent", traceparent)
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			b.up.Store(false)
		}
		return nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	b.forwarded.Add(1)
	return &forwardResult{status: resp.StatusCode, header: resp.Header, body: respBody, addr: b.addr}, nil
}
