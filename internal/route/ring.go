// Package route is the routing tier of the query plane: a consistent-hash
// ring that shards axiom sets across aptserved backends, health-checked
// forwarding with hedged retries for tail latency, and the ring-change warm
// handoff that ships a gaining backend the old owner's warm engine state.
//
// Sharding works because the paper's dependence test is a pure function of
// (axiom set, goal): any backend computes the same verdicts, so placement
// is free to optimize purely for cache warmth.  Routing every request for
// one axiom set to one backend keeps that backend's DFA cache and proof
// memo hot for its shard — the "compile-server at scale" architecture the
// ROADMAP names — and the consistent ring keeps placement stable as
// backends join and leave (only the moved shards change owners).
//
// Identity on the ring is axiom.Set.Fingerprint64, never Set.ID: the
// router and its backends are separate processes, and the fingerprint is
// the only identity they agree on.
package route

import (
	"sort"
	"strconv"

	"repro/internal/strhash"
)

// vnodesPerBackend is the virtual-node count per backend address.  64
// vnodes keep the load split across a handful of backends within a few
// percent of even while keeping ring rebuilds trivially cheap.
const vnodesPerBackend = 64

// Ring is an immutable consistent-hash ring over backend addresses.
// Lookups binary-search the sorted vnode ring; rebuilds construct a new
// Ring (the router swaps them atomically).
type Ring struct {
	vnodes []vnode
	addrs  []string // sorted, deduplicated
}

type vnode struct {
	hash uint64
	addr string
}

// NewRing builds a ring over the addresses (deduplicated; order does not
// matter — placement depends only on the membership set).
func NewRing(addrs []string) *Ring {
	seen := make(map[string]bool, len(addrs))
	r := &Ring{}
	for _, a := range addrs {
		if a == "" || seen[a] {
			continue
		}
		seen[a] = true
		r.addrs = append(r.addrs, a)
		for i := 0; i < vnodesPerBackend; i++ {
			r.vnodes = append(r.vnodes, vnode{hash: strhash.FNV64a(a + "#" + strconv.Itoa(i)), addr: a})
		}
	}
	sort.Strings(r.addrs)
	sort.Slice(r.vnodes, func(i, j int) bool {
		if r.vnodes[i].hash != r.vnodes[j].hash {
			return r.vnodes[i].hash < r.vnodes[j].hash
		}
		return r.vnodes[i].addr < r.vnodes[j].addr
	})
	return r
}

// Addrs returns the member addresses, sorted.
func (r *Ring) Addrs() []string { return r.addrs }

// Len returns the member count.
func (r *Ring) Len() int { return len(r.addrs) }

// Owner returns the backend owning the fingerprint (the first vnode at or
// after the mixed fingerprint, wrapping), or "" on an empty ring.
func (r *Ring) Owner(fp uint64) string {
	if len(r.vnodes) == 0 {
		return ""
	}
	return r.vnodes[r.search(fp)].addr
}

// Sequence returns the distinct backends in ring-walk order starting at
// the fingerprint's owner.  Element 0 is the owner; the rest are the
// hedge/failover order for that shard.
func (r *Ring) Sequence(fp uint64) []string {
	if len(r.vnodes) == 0 {
		return nil
	}
	out := make([]string, 0, len(r.addrs))
	seen := make(map[string]bool, len(r.addrs))
	for i, n := r.search(fp), 0; n < len(r.vnodes); i, n = (i+1)%len(r.vnodes), n+1 {
		if a := r.vnodes[i].addr; !seen[a] {
			seen[a] = true
			out = append(out, a)
			if len(out) == len(r.addrs) {
				break
			}
		}
	}
	return out
}

// search returns the index of the first vnode at or after the mixed
// fingerprint, wrapping to 0.
func (r *Ring) search(fp uint64) int {
	h := mix64(fp)
	i := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= h })
	if i == len(r.vnodes) {
		i = 0
	}
	return i
}

// mix64 is the splitmix64 finalizer: ring position must not correlate with
// the structure of the FNV fingerprint (nearby keys hash to nearby FNV
// values more often than ideal), so lookups pass through a full-avalanche
// mix first.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Moved returns the fingerprints (among fps) whose owner differs between
// the two rings, with their old and new owners — the shards a ring change
// actually moves, which is what the warm handoff iterates.
func Moved(old, next *Ring, fps []uint64) []Move {
	var out []Move
	for _, fp := range fps {
		from, to := old.Owner(fp), next.Owner(fp)
		if from != to {
			out = append(out, Move{FP: fp, From: from, To: to})
		}
	}
	return out
}

// Move is one shard changing owners across a ring change.
type Move struct {
	FP       uint64
	From, To string
}
