package lang

import (
	"fmt"
	"strings"
)

// This file renders declarations to a canonical, position-free text form —
// the input to the incremental driver's per-function analysis fingerprints.
// Two declarations render identically iff they are structurally identical
// (same statements, expressions, labels, and types); moving a function to a
// different line, reordering its neighbors, or editing an unrelated
// declaration leaves its rendering byte-for-byte unchanged.  Positions are
// deliberately excluded; labels are included because query anchoring and
// diagnostics depend on them.

// CanonFunc renders a function canonically.
func CanonFunc(fn *FuncDecl) string {
	var b strings.Builder
	b.WriteString("func ")
	b.WriteString(fn.Result.String())
	b.WriteByte(' ')
	b.WriteString(fn.Name)
	b.WriteByte('(')
	for i, p := range fn.Params {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.Type.String())
		b.WriteByte(' ')
		b.WriteString(p.Name)
	}
	b.WriteByte(')')
	canonBlock(&b, fn.Body)
	return b.String()
}

// CanonStruct renders a struct declaration canonically, including its
// axiom block (the axioms feed every prover window, so an axiom edit must
// change the fingerprint of everything analyzed under it).
func CanonStruct(s *StructDecl) string {
	var b strings.Builder
	b.WriteString("struct ")
	b.WriteString(s.Name)
	b.WriteByte('{')
	for _, f := range s.Fields {
		b.WriteString(f.Type.String())
		b.WriteByte(' ')
		b.WriteString(f.Name)
		b.WriteByte(';')
	}
	b.WriteByte('}')
	if s.Axioms != nil {
		b.WriteString(s.Axioms.String())
	}
	return b.String()
}

func canonBlock(b *strings.Builder, blk *Block) {
	b.WriteByte('{')
	if blk != nil {
		for _, st := range blk.Stmts {
			canonStmt(b, st)
		}
	}
	b.WriteByte('}')
}

func canonStmt(b *strings.Builder, st Stmt) {
	if l := st.Label(); l != "" {
		b.WriteString(l)
		b.WriteByte(':')
	}
	switch v := st.(type) {
	case *DeclStmt:
		b.WriteString("decl ")
		for i, it := range v.Items {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(it.Type.String())
			b.WriteByte(' ')
			b.WriteString(it.Name)
		}
		b.WriteByte(';')
	case *AssignStmt:
		canonExpr(b, v.LHS)
		b.WriteByte('=')
		canonExpr(b, v.RHS)
		b.WriteByte(';')
	case *ExprStmt:
		canonExpr(b, v.X)
		b.WriteByte(';')
	case *WhileStmt:
		b.WriteString("while(")
		canonExpr(b, v.Cond)
		b.WriteByte(')')
		canonBlock(b, v.Body)
	case *IfStmt:
		b.WriteString("if(")
		canonExpr(b, v.Cond)
		b.WriteByte(')')
		canonBlock(b, v.Then)
		if v.Else != nil {
			b.WriteString("else")
			canonBlock(b, v.Else)
		}
	case *ReturnStmt:
		b.WriteString("return")
		if v.Value != nil {
			b.WriteByte(' ')
			canonExpr(b, v.Value)
		}
		b.WriteByte(';')
	case *BlockStmt:
		canonBlock(b, v.Body)
	default:
		fmt.Fprintf(b, "<%T>;", st)
	}
}

func canonExpr(b *strings.Builder, e Expr) {
	switch v := e.(type) {
	case nil:
		b.WriteString("<nil>")
	case *Ident:
		b.WriteString(v.Name)
	case *FieldAccess:
		b.WriteString(v.Base)
		b.WriteString("->")
		b.WriteString(v.Field)
	case *NumLit:
		b.WriteString(v.Text)
	case *NullLit:
		b.WriteString("NULL")
	case *MallocExpr:
		b.WriteString("malloc(")
		b.WriteString(v.Of)
		b.WriteByte(')')
	case *CallExpr:
		b.WriteString(v.Name)
		b.WriteByte('(')
		for i, a := range v.Args {
			if i > 0 {
				b.WriteByte(',')
			}
			canonExpr(b, a)
		}
		b.WriteByte(')')
	case *BinaryExpr:
		b.WriteByte('(')
		canonExpr(b, v.L)
		b.WriteString(v.Op)
		canonExpr(b, v.R)
		b.WriteByte(')')
	case *UnaryExpr:
		b.WriteString(v.Op)
		b.WriteByte('(')
		canonExpr(b, v.X)
		b.WriteByte(')')
	case *AddrExpr:
		b.WriteByte('&')
		b.WriteString(v.Name)
	case *DerefExpr:
		b.WriteByte('*')
		b.WriteString(v.Name)
	default:
		fmt.Fprintf(b, "<%T>", e)
	}
}
