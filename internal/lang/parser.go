package lang

import (
	"strings"

	"repro/internal/axiom"
)

// Parse parses a mini-C translation unit.
func Parse(src string) (*Program, error) {
	toks, err := NewLexer(src).Tokens()
	if err != nil {
		return nil, err
	}
	p := &parser{src: []rune(src), toks: toks}
	return p.program()
}

// MustParse is Parse, panicking on error.  For tests and examples.
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

type parser struct {
	src   []rune
	toks  []Token
	pos   int
	depth int
}

// enter guards recursive descent against stack exhaustion on pathological
// nesting; every call must be paired with leave.
func (p *parser) enter() error {
	p.depth++
	if p.depth > maxNestingDepth {
		return p.errorf("nesting deeper than %d levels", maxNestingDepth)
	}
	return nil
}

func (p *parser) leave() { p.depth-- }

func (p *parser) at() Token   { return p.toks[p.pos] }
func (p *parser) peek() Token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func (p *parser) advance() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) expect(k Kind) (Token, error) {
	if p.at().Kind != k {
		return Token{}, p.errorf("expected %v, found %v %q", k, p.at().Kind, p.at().Text)
	}
	return p.advance(), nil
}

func (p *parser) errorf(format string, args ...any) error {
	return parseErrorf(p.at().Pos, format, args...)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (p *parser) program() (*Program, error) {
	prog := &Program{}
	for p.at().Kind != EOF {
		if p.at().Kind == KwStruct && p.peek().Kind == IDENT && p.toks[min(p.pos+2, len(p.toks)-1)].Kind == LBrace {
			s, err := p.structDecl()
			if err != nil {
				return nil, err
			}
			prog.Structs = append(prog.Structs, s)
			continue
		}
		f, err := p.funcDecl()
		if err != nil {
			return nil, err
		}
		prog.Funcs = append(prog.Funcs, f)
	}
	return prog, nil
}

// baseTypeSpec parses "int" | "float" | "double" | "void" | "struct NAME"
// without pointer stars (stars belong to declarators).
func (p *parser) baseTypeSpec() (Type, error) {
	var t Type
	switch p.at().Kind {
	case KwInt, KwFloat, KwDouble, KwVoid:
		t.Base = p.advance().Text
	case KwStruct:
		p.advance()
		name, err := p.expect(IDENT)
		if err != nil {
			return t, err
		}
		t.Base = name.Text
		t.IsStruct = true
	default:
		return t, p.errorf("expected a type, found %v %q", p.at().Kind, p.at().Text)
	}
	return t, nil
}

// typeSpec parses a base type followed by pointer stars (single-declarator
// positions: parameters, return types).
func (p *parser) typeSpec() (Type, error) {
	t, err := p.baseTypeSpec()
	if err != nil {
		return t, err
	}
	t.Ptr = p.stars()
	return t, nil
}

// stars counts and consumes leading '*'.
func (p *parser) stars() int {
	n := 0
	for p.at().Kind == Star {
		p.advance()
		n++
	}
	return n
}

func (p *parser) structDecl() (*StructDecl, error) {
	pos := p.at().Pos
	if _, err := p.expect(KwStruct); err != nil {
		return nil, err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LBrace); err != nil {
		return nil, err
	}
	decl := &StructDecl{Name: name.Text, Pos: pos}
	var axiomText string
	for p.at().Kind != RBrace {
		if p.at().Kind == KwAxioms {
			text, err := p.rawAxiomBlock()
			if err != nil {
				return nil, err
			}
			axiomText = text
			continue
		}
		base, err := p.baseTypeSpec()
		if err != nil {
			return nil, err
		}
		for {
			ft := base
			ft.Ptr = p.stars()
			fname, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			decl.Fields = append(decl.Fields, FieldDecl{Name: fname.Text, Type: ft, Pos: fname.Pos})
			if p.at().Kind != Comma {
				break
			}
			p.advance()
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(RBrace); err != nil {
		return nil, err
	}
	if p.at().Kind == Semi {
		p.advance()
	}
	if axiomText != "" {
		fields := decl.PointerFields()
		set, err := axiom.ParseSetWithFields(decl.Name, axiomText, fields)
		if err != nil {
			return nil, parseErrorf(pos, "in axioms of struct %s: %v", decl.Name, err)
		}
		decl.Axioms = set
	}
	return decl, nil
}

// rawAxiomBlock consumes "axioms { RAW }" where the lexer has already
// packaged the block body as a single raw STRING token (the axiom
// sub-language has its own grammar).
func (p *parser) rawAxiomBlock() (string, error) {
	if _, err := p.expect(KwAxioms); err != nil {
		return "", err
	}
	if _, err := p.expect(LBrace); err != nil {
		return "", err
	}
	raw, err := p.expect(STRING)
	if err != nil {
		return "", err
	}
	if _, err := p.expect(RBrace); err != nil {
		return "", err
	}
	return strings.TrimSpace(raw.Text), nil
}

func (p *parser) funcDecl() (*FuncDecl, error) {
	pos := p.at().Pos
	result, err := p.typeSpec()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	fn := &FuncDecl{Name: name.Text, Result: result, Pos: pos}
	if p.at().Kind == KwVoid && p.peek().Kind == RParen {
		p.advance()
	}
	for p.at().Kind != RParen {
		pt, err := p.typeSpec()
		if err != nil {
			return nil, err
		}
		pn, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		fn.Params = append(fn.Params, Param{Name: pn.Text, Type: pt})
		if p.at().Kind == Comma {
			p.advance()
		}
	}
	p.advance() // ')'
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *parser) block() (*Block, error) {
	open, err := p.expect(LBrace)
	if err != nil {
		return nil, err
	}
	b := &Block{Pos: open.Pos}
	for p.at().Kind != RBrace {
		if p.at().Kind == EOF {
			return nil, p.errorf("unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.advance() // '}'
	return b, nil
}

func (p *parser) stmt() (Stmt, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	// Optional label: IDENT ':' not followed by something that makes it an
	// expression (mini-C has no ternary, so IDENT ':' is always a label).
	label := ""
	if p.at().Kind == IDENT && p.peek().Kind == Colon {
		label = p.advance().Text
		p.advance() // ':'
	}
	pos := p.at().Pos
	base := stmtBase{Lbl: label, Pos: pos}

	switch p.at().Kind {
	case KwInt, KwFloat, KwDouble, KwStruct:
		bt, err := p.baseTypeSpec()
		if err != nil {
			return nil, err
		}
		d := &DeclStmt{stmtBase: base}
		for {
			t := bt
			t.Ptr = p.stars()
			n, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			d.Items = append(d.Items, DeclItem{Name: n.Text, Type: t})
			if p.at().Kind != Comma {
				break
			}
			p.advance()
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return d, nil

	case KwWhile:
		p.advance()
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		body, err := p.stmtAsBlock()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{stmtBase: base, Cond: cond, Body: body}, nil

	case KwIf:
		p.advance()
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		then, err := p.stmtAsBlock()
		if err != nil {
			return nil, err
		}
		ifs := &IfStmt{stmtBase: base, Cond: cond, Then: then}
		if p.at().Kind == KwElse {
			p.advance()
			els, err := p.stmtAsBlock()
			if err != nil {
				return nil, err
			}
			ifs.Else = els
		}
		return ifs, nil

	case KwReturn:
		p.advance()
		r := &ReturnStmt{stmtBase: base}
		if p.at().Kind != Semi {
			v, err := p.expr()
			if err != nil {
				return nil, err
			}
			r.Value = v
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return r, nil

	case LBrace:
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &BlockStmt{stmtBase: base, Body: body}, nil
	}

	// Assignment or expression statement.
	lhs, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.at().Kind == Assign {
		p.advance()
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		switch lhs.(type) {
		case *Ident, *FieldAccess, *DerefExpr:
		default:
			return nil, parseErrorf(pos, "assignment target must be a variable, var->field, or *var")
		}
		return &AssignStmt{stmtBase: base, LHS: lhs, RHS: rhs}, nil
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	return &ExprStmt{stmtBase: base, X: lhs}, nil
}

func (p *parser) stmtAsBlock() (*Block, error) {
	if p.at().Kind == LBrace {
		return p.block()
	}
	s, err := p.stmt()
	if err != nil {
		return nil, err
	}
	return &Block{Stmts: []Stmt{s}, Pos: s.StmtPos()}, nil
}

// expr parses with precedence: || over && over comparisons over +,- over
// *,/ over unary over primary.
func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	return p.binary(p.andExpr, PipePipe)
}

func (p *parser) andExpr() (Expr, error) {
	return p.binary(p.cmpExpr, AmpAmp)
}

func (p *parser) cmpExpr() (Expr, error) {
	return p.binary(p.addExpr, EqEq, NotEq, Lt, Gt, Le, Ge)
}

func (p *parser) addExpr() (Expr, error) {
	return p.binary(p.mulExpr, Plus, Minus)
}

func (p *parser) mulExpr() (Expr, error) {
	return p.binary(p.unaryExpr, Star, Slash)
}

func (p *parser) binary(sub func() (Expr, error), ops ...Kind) (Expr, error) {
	left, err := sub()
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range ops {
			if p.at().Kind == op {
				opTok := p.advance()
				right, err := sub()
				if err != nil {
					return nil, err
				}
				left = &BinaryExpr{exprBase: exprBase{Pos: opTok.Pos}, Op: opTok.Text, L: left, R: right}
				matched = true
				break
			}
		}
		if !matched {
			return left, nil
		}
	}
}

func (p *parser) unaryExpr() (Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	switch p.at().Kind {
	case Bang, Minus:
		op := p.advance()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{exprBase: exprBase{Pos: op.Pos}, Op: op.Text, X: x}, nil
	case Amp:
		// Address-of a named variable: the PTDP side of Figure 1.
		op := p.advance()
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		return &AddrExpr{exprBase: exprBase{Pos: op.Pos}, Name: name.Text}, nil
	case Star:
		// Pointer dereference of a named variable.
		op := p.advance()
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		return &DerefExpr{exprBase: exprBase{Pos: op.Pos}, Name: name.Text}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	tok := p.at()
	switch tok.Kind {
	case NUMBER:
		p.advance()
		if tok.Text == "0" {
			// 0 doubles as the null pointer in pointer contexts; the
			// analysis treats NumLit("0") and NullLit alike.
			return &NumLit{exprBase: exprBase{Pos: tok.Pos}, Text: tok.Text}, nil
		}
		return &NumLit{exprBase: exprBase{Pos: tok.Pos}, Text: tok.Text}, nil
	case KwNull:
		p.advance()
		return &NullLit{exprBase: exprBase{Pos: tok.Pos}}, nil
	case KwMalloc:
		p.advance()
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		m := &MallocExpr{exprBase: exprBase{Pos: tok.Pos}}
		if p.at().Kind == KwStruct {
			p.advance()
			n, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			m.Of = n.Text
		} else {
			// Skip an arbitrary size expression.
			depth := 1
			for depth > 0 {
				switch p.at().Kind {
				case LParen:
					depth++
				case RParen:
					depth--
				case EOF:
					return nil, p.errorf("unterminated malloc arguments")
				}
				if depth > 0 {
					p.advance()
				}
			}
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		return m, nil
	case LParen:
		p.advance()
		inner, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		return inner, nil
	case IDENT:
		p.advance()
		switch p.at().Kind {
		case Arrow:
			p.advance()
			f, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			if p.at().Kind == Arrow {
				return nil, parseErrorf(tok.Pos, "chained dereference %s->%s->...: rewrite with a temporary (one field per statement)", tok.Text, f.Text)
			}
			return &FieldAccess{exprBase: exprBase{Pos: tok.Pos}, Base: tok.Text, Field: f.Text}, nil
		case LParen:
			p.advance()
			call := &CallExpr{exprBase: exprBase{Pos: tok.Pos}, Name: tok.Text}
			for p.at().Kind != RParen {
				arg, err := p.expr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
				if p.at().Kind == Comma {
					p.advance()
				}
			}
			p.advance() // ')'
			return call, nil
		}
		return &Ident{exprBase: exprBase{Pos: tok.Pos}, Name: tok.Text}, nil
	}
	return nil, p.errorf("unexpected %v %q in expression", tok.Kind, tok.Text)
}
