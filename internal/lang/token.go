// Package lang implements the frontend for the mini-C language the paper's
// examples are written in: struct declarations annotated with aliasing
// axioms (in the spirit of the ADDS description language [HHN92] the paper
// cites in §3.2), and a structured statement language rich enough for the
// code fragments of Figures 1 and 3 and the sparse-matrix kernels of §5.
//
// The frontend is deliberately one-field-per-dereference: expressions like
// a->f->g must be written with an explicit temporary, which is the
// simplified intermediate form the paper assumes its dependence test
// receives [HDE+93].
package lang

import "fmt"

// Kind enumerates token kinds.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	IDENT
	NUMBER
	STRING

	// Keywords.
	KwStruct
	KwAxioms
	KwWhile
	KwIf
	KwElse
	KwReturn
	KwInt
	KwFloat
	KwDouble
	KwVoid
	KwMalloc
	KwNull

	// Punctuation and operators.
	LBrace   // {
	RBrace   // }
	LParen   // (
	RParen   // )
	Semi     // ;
	Comma    // ,
	Star     // *
	Assign   // =
	Arrow    // ->
	Colon    // :
	Lt       // <
	Gt       // >
	Le       // <=
	Ge       // >=
	EqEq     // ==
	NotEq    // !=
	Plus     // +
	Minus    // -
	Slash    // /
	Bang     // !
	AmpAmp   // &&
	PipePipe // ||
	Amp      // & (address-of)
)

var kindNames = map[Kind]string{
	EOF: "end of file", IDENT: "identifier", NUMBER: "number", STRING: "string",
	KwStruct: "'struct'", KwAxioms: "'axioms'", KwWhile: "'while'", KwIf: "'if'",
	KwElse: "'else'", KwReturn: "'return'", KwInt: "'int'", KwFloat: "'float'",
	KwDouble: "'double'", KwVoid: "'void'", KwMalloc: "'malloc'", KwNull: "'NULL'",
	LBrace: "'{'", RBrace: "'}'", LParen: "'('", RParen: "')'", Semi: "';'",
	Comma: "','", Star: "'*'", Assign: "'='", Arrow: "'->'", Colon: "':'",
	Lt: "'<'", Gt: "'>'", Le: "'<='", Ge: "'>='", EqEq: "'=='", NotEq: "'!='",
	Plus: "'+'", Minus: "'-'", Slash: "'/'", Bang: "'!'", AmpAmp: "'&&'",
	PipePipe: "'||'", Amp: "'&'",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind Kind
	Text string
	Pos  Pos
	// Off is the rune offset of the token start in the source, used to
	// re-scan raw spans (the axioms block has its own sub-language).
	Off int
}

var keywords = map[string]Kind{
	"struct": KwStruct,
	"axioms": KwAxioms,
	"while":  KwWhile,
	"if":     KwIf,
	"else":   KwElse,
	"return": KwReturn,
	"int":    KwInt,
	"float":  KwFloat,
	"double": KwDouble,
	"void":   KwVoid,
	"malloc": KwMalloc,
	"NULL":   KwNull,
}
