package lang

import (
	"strings"
	"testing"
)

func TestKindAndPosStrings(t *testing.T) {
	for k := EOF; k <= Amp; k++ {
		if k.String() == "" {
			t.Errorf("empty string for kind %d", int(k))
		}
	}
	if Kind(9999).String() != "token(9999)" {
		t.Errorf("unknown kind string = %q", Kind(9999).String())
	}
	if (Pos{Line: 3, Col: 7}).String() != "3:7" {
		t.Errorf("pos string = %q", Pos{Line: 3, Col: 7})
	}
}

func TestParserErrorPaths(t *testing.T) {
	bad := []string{
		// struct declaration errors
		`struct { }`,
		`struct T struct`,
		`struct T { int; };`,
		`struct T { int v };`,
		`struct T { axioms( ) };`,
		// function declaration errors
		`void (struct T *x) { }`,
		`void f(struct *x) { }`,
		`123 f() { }`,
		// statement errors
		`void f() { while 1 { } }`,
		`void f() { while (1 { } }`,
		`void f() { if (1 { } }`,
		`void f() { return 1 }`,
		`void f() { x = ; }`,
		`void f() { x->1 = 2; }`,
		`void f() { x = y->; }`,
		`void f() { x = (1; }`,
		`void f() { x = malloc(; }`,
		`void f() { x = malloc(struct ); }`,
		`void f() { x = f(1; }`,
		`void f() { x = &1; }`,
		`void f() { x = *2; }`,
		`void f() { struct T *; }`,
		// expression statement without semicolon
		`void f() { g() }`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestLexerErrorPaths(t *testing.T) {
	bad := []string{
		"/* unterminated",
		`"unterminated`,
		"void f() { x = y @ z; }",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestStringLiteralsAndMultiDecl(t *testing.T) {
	src := `
struct T { struct T *a, *b; int v, w; };
void f(struct T *x, struct T *y) {
	struct T *p, *q;
	p = x;
	q = y;
	p->v = 1;
	q->w = 2;
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	s := prog.Struct("T")
	if len(s.Fields) != 4 {
		t.Fatalf("fields = %d, want 4", len(s.Fields))
	}
	if !s.Fields[1].Type.IsPointerToStruct() {
		t.Error("second declarator lost its pointer type")
	}
	if s.Fields[2].Type.IsPointerToStruct() {
		t.Error("int field became a pointer")
	}
}

func TestAddrAndDerefParsing(t *testing.T) {
	src := `
void f() {
	int i;
	int *p;
	p = &i;
	*p = 10;
	i = *p;
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	fn := prog.Func("f")
	asg := fn.Body.Stmts[2].(*AssignStmt)
	if addr, ok := asg.RHS.(*AddrExpr); !ok || addr.Name != "i" {
		t.Fatalf("rhs = %#v, want &i", asg.RHS)
	}
	asg = fn.Body.Stmts[3].(*AssignStmt)
	if deref, ok := asg.LHS.(*DerefExpr); !ok || deref.Name != "p" {
		t.Fatalf("lhs = %#v, want *p", asg.LHS)
	}
	asg = fn.Body.Stmts[4].(*AssignStmt)
	if _, ok := asg.RHS.(*DerefExpr); !ok {
		t.Fatalf("rhs = %#v, want *p", asg.RHS)
	}
}

func TestWalkExprsCoversAllShapes(t *testing.T) {
	src := `
struct T { struct T *n; int v; };
int f(struct T *x, int k) {
	return g(x->v + -k, !k) * 2;
}
`
	prog := MustParse(src)
	ret := prog.Func("f").Body.Stmts[0].(*ReturnStmt)
	var kinds []string
	WalkExprs(ret.Value, func(e Expr) {
		kinds = append(kinds, strings.TrimPrefix(strings.TrimPrefix(
			strings.Split(strings.TrimPrefix(
				sprintfType(e), "*lang."), "{")[0], "&"), "*"))
	})
	want := map[string]bool{"BinaryExpr": true, "CallExpr": true, "FieldAccess": true, "UnaryExpr": true, "NumLit": true, "Ident": true}
	seen := map[string]bool{}
	for _, k := range kinds {
		seen[k] = true
	}
	for k := range want {
		if !seen[k] {
			t.Errorf("WalkExprs missed %s (saw %v)", k, kinds)
		}
	}
}

func sprintfType(e Expr) string {
	switch e.(type) {
	case *BinaryExpr:
		return "BinaryExpr"
	case *UnaryExpr:
		return "UnaryExpr"
	case *CallExpr:
		return "CallExpr"
	case *FieldAccess:
		return "FieldAccess"
	case *NumLit:
		return "NumLit"
	case *Ident:
		return "Ident"
	case *AddrExpr:
		return "AddrExpr"
	case *DerefExpr:
		return "DerefExpr"
	case *NullLit:
		return "NullLit"
	case *MallocExpr:
		return "MallocExpr"
	}
	return "?"
}

func TestVoidParamListAndEmptyArgs(t *testing.T) {
	prog, err := Parse(`void f(void) { g(); }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Func("f").Params) != 0 {
		t.Error("void parameter list should be empty")
	}
}
