package lang

import "fmt"

// ParseError is the error type every lexer and parser failure resolves to: a
// source position plus a message.  Tools that report diagnostics (aptlint)
// anchor parse failures at Pos instead of re-parsing the "line:col:" prefix
// out of the error text.
type ParseError struct {
	Pos Pos
	Msg string
}

func (e *ParseError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// parseErrorf builds a positioned parse error.
func parseErrorf(pos Pos, format string, args ...any) *ParseError {
	return &ParseError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// ErrPos extracts the source position from a Parse error, reporting ok=false
// when err carries none (e.g. an os.ReadFile error wrapped by a caller).
func ErrPos(err error) (Pos, bool) {
	for e := err; e != nil; {
		if pe, ok := e.(*ParseError); ok {
			return pe.Pos, true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			break
		}
		e = u.Unwrap()
	}
	return Pos{}, false
}

// maxNestingDepth bounds recursive descent in the parser.  Pathological
// inputs like 10⁵ opening parentheses or braces would otherwise recurse past
// the goroutine stack and crash instead of returning a positioned error.
const maxNestingDepth = 200
