package lang

import (
	"unicode"
)

// Lexer tokenizes mini-C source.
type Lexer struct {
	src  []rune
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: []rune(src), line: 1, col: 1}
}

// Tokens lexes the whole input, ending with an EOF token.  The contents of
// an "axioms { ... }" block form a different sub-language ('.', '|', '<>',
// postfix '+'/'*'), so the block body is emitted as a single raw STRING
// token between the braces and re-parsed by package axiom.
func (l *Lexer) Tokens() ([]Token, error) {
	var out []Token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == EOF {
			return out, nil
		}
		if t.Kind == KwAxioms {
			open, err := l.next()
			if err != nil {
				return nil, err
			}
			if open.Kind != LBrace {
				return nil, parseErrorf(open.Pos, "expected '{' after axioms")
			}
			out = append(out, open)
			raw, closing, err := l.rawUntilBrace()
			if err != nil {
				return nil, err
			}
			out = append(out, raw, closing)
		}
	}
}

// rawUntilBrace consumes source text up to the matching '}' and returns it
// as a STRING token followed by the RBrace token.
func (l *Lexer) rawUntilBrace() (Token, Token, error) {
	start := l.here()
	off := l.pos
	depth := 1
	for {
		switch l.at() {
		case 0:
			return Token{}, Token{}, parseErrorf(start, "unterminated axioms block")
		case '{':
			depth++
		case '}':
			depth--
			if depth == 0 {
				raw := Token{Kind: STRING, Text: string(l.src[off:l.pos]), Pos: start, Off: off}
				closePos := l.here()
				closeOff := l.pos
				l.advance()
				return raw, Token{Kind: RBrace, Text: "}", Pos: closePos, Off: closeOff}, nil
			}
		}
		l.advance()
	}
}

func (l *Lexer) at() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peek(k int) rune {
	if l.pos+k >= len(l.src) {
		return 0
	}
	return l.src[l.pos+k]
}

func (l *Lexer) advance() {
	if l.pos < len(l.src) {
		if l.src[l.pos] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.pos++
	}
}

func (l *Lexer) skipSpaceAndComments() error {
	for {
		switch {
		case unicode.IsSpace(l.at()):
			l.advance()
		case l.at() == '/' && l.peek(1) == '/':
			for l.at() != '\n' && l.at() != 0 {
				l.advance()
			}
		case l.at() == '/' && l.peek(1) == '*':
			start := l.here()
			l.advance()
			l.advance()
			for !(l.at() == '*' && l.peek(1) == '/') {
				if l.at() == 0 {
					return parseErrorf(start, "unterminated block comment")
				}
				l.advance()
			}
			l.advance()
			l.advance()
		default:
			return nil
		}
	}
}

func (l *Lexer) here() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *Lexer) next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := l.here()
	off := l.pos
	c := l.at()
	switch {
	case c == 0:
		return Token{Kind: EOF, Pos: pos, Off: off}, nil
	case unicode.IsLetter(c) || c == '_':
		start := l.pos
		for unicode.IsLetter(l.at()) || unicode.IsDigit(l.at()) || l.at() == '_' {
			l.advance()
		}
		text := string(l.src[start:l.pos])
		if k, ok := keywords[text]; ok {
			return Token{Kind: k, Text: text, Pos: pos, Off: off}, nil
		}
		return Token{Kind: IDENT, Text: text, Pos: pos, Off: off}, nil
	case unicode.IsDigit(c):
		start := l.pos
		for unicode.IsDigit(l.at()) || l.at() == '.' {
			l.advance()
		}
		return Token{Kind: NUMBER, Text: string(l.src[start:l.pos]), Pos: pos, Off: off}, nil
	case c == '"':
		l.advance()
		start := l.pos
		for l.at() != '"' {
			if l.at() == 0 {
				return Token{}, parseErrorf(pos, "unterminated string")
			}
			l.advance()
		}
		text := string(l.src[start:l.pos])
		l.advance()
		return Token{Kind: STRING, Text: text, Pos: pos, Off: off}, nil
	}

	two := func(k Kind, text string) (Token, error) {
		l.advance()
		l.advance()
		return Token{Kind: k, Text: text, Pos: pos, Off: off}, nil
	}
	one := func(k Kind) (Token, error) {
		l.advance()
		return Token{Kind: k, Text: string(c), Pos: pos, Off: off}, nil
	}
	switch c {
	case '{':
		return one(LBrace)
	case '}':
		return one(RBrace)
	case '(':
		return one(LParen)
	case ')':
		return one(RParen)
	case ';':
		return one(Semi)
	case ',':
		return one(Comma)
	case '*':
		return one(Star)
	case ':':
		return one(Colon)
	case '+':
		return one(Plus)
	case '/':
		return one(Slash)
	case '-':
		if l.peek(1) == '>' {
			return two(Arrow, "->")
		}
		return one(Minus)
	case '=':
		if l.peek(1) == '=' {
			return two(EqEq, "==")
		}
		return one(Assign)
	case '<':
		if l.peek(1) == '=' {
			return two(Le, "<=")
		}
		return one(Lt)
	case '>':
		if l.peek(1) == '=' {
			return two(Ge, ">=")
		}
		return one(Gt)
	case '!':
		if l.peek(1) == '=' {
			return two(NotEq, "!=")
		}
		return one(Bang)
	case '&':
		if l.peek(1) == '&' {
			return two(AmpAmp, "&&")
		}
		return one(Amp)
	case '|':
		if l.peek(1) == '|' {
			return two(PipePipe, "||")
		}
	}
	return Token{}, parseErrorf(pos, "unexpected character %q", string(c))
}
