package lang

import (
	"strings"
	"testing"
)

const canonSrc = `
struct Node {
	struct Node *next;
	int v;
	axioms {
		A1: forall p, p.next+ <> p.eps;
	}
};

void touch(struct Node *p) {
	p->v = 1;
}

void f(struct Node *h, int mode) {
	struct Node *p;
	p = h;
	while (p != NULL) {
		if (mode) {
			A: p->v = 1;
		} else {
			touch(p);
		}
		p = p->next;
	}
}
`

func TestCanonPositionFree(t *testing.T) {
	p1, err := Parse(canonSrc)
	if err != nil {
		t.Fatal(err)
	}
	// The same declarations shifted down by blank lines and re-indented
	// must render identically.
	shifted := "\n\n\n" + strings.ReplaceAll(canonSrc, "\t", "    ")
	p2, err := Parse(shifted)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1.Funcs {
		c1, c2 := CanonFunc(p1.Funcs[i]), CanonFunc(p2.Funcs[i])
		if c1 != c2 {
			t.Errorf("func %s: shifted rendering differs:\n%s\n%s", p1.Funcs[i].Name, c1, c2)
		}
	}
	for i := range p1.Structs {
		c1, c2 := CanonStruct(p1.Structs[i]), CanonStruct(p2.Structs[i])
		if c1 != c2 {
			t.Errorf("struct %s: shifted rendering differs:\n%s\n%s", p1.Structs[i].Name, c1, c2)
		}
	}
}

func TestCanonSeparatesEdits(t *testing.T) {
	p1, err := Parse(canonSrc)
	if err != nil {
		t.Fatal(err)
	}
	edited, err := Parse(strings.Replace(canonSrc, "p->v = 1;\n\t\t} else", "p->v = 2;\n\t\t} else", 1))
	if err != nil {
		t.Fatal(err)
	}
	if CanonFunc(p1.Func("f")) == CanonFunc(edited.Func("f")) {
		t.Errorf("edit to f not reflected in rendering")
	}
	if CanonFunc(p1.Func("touch")) != CanonFunc(edited.Func("touch")) {
		t.Errorf("edit to f changed touch's rendering")
	}

	// Label changes are semantic (they anchor queries): must change the
	// rendering.
	relabeled, err := Parse(strings.Replace(canonSrc, "A: p->v", "B: p->v", 1))
	if err != nil {
		t.Fatal(err)
	}
	if CanonFunc(p1.Func("f")) == CanonFunc(relabeled.Func("f")) {
		t.Errorf("label change not reflected in rendering")
	}

	// Axiom edits must change the struct rendering (they feed every
	// prover window).
	axEdited, err := Parse(strings.Replace(canonSrc, "p.next+ <> p.eps", "p.next <> p.eps", 1))
	if err != nil {
		t.Fatal(err)
	}
	if CanonStruct(p1.Structs[0]) == CanonStruct(axEdited.Structs[0]) {
		t.Errorf("axiom edit not reflected in struct rendering")
	}
}
