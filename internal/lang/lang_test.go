package lang

import (
	"strings"
	"testing"

	"repro/internal/axiom"
)

// section33Src is the paper's §3.3 subroutine together with Figure 3's
// axiom-annotated type declaration.
const section33Src = `
struct LLBinaryTree {
	struct LLBinaryTree *L;
	struct LLBinaryTree *R;
	struct LLBinaryTree *N;
	int d;
	axioms {
		A1: forall p, p.L <> p.R;
		A2: forall p <> q, p.(L|R) <> q.(L|R);
		A3: forall p <> q, p.N <> q.N;
		A4: forall p, p.(L|R|N)+ <> p.eps;
	}
};

int subr(struct LLBinaryTree *root) {
	struct LLBinaryTree *p;
	struct LLBinaryTree *q;
	root = root->L;
	p = root->L;
	p = p->N;
S:	p->d = 100;
	p = root;
I:	q = root->R;
	q = q->N;
T:	return q->d;
}
`

func TestParseSection33(t *testing.T) {
	prog, err := Parse(section33Src)
	if err != nil {
		t.Fatal(err)
	}
	s := prog.Struct("LLBinaryTree")
	if s == nil {
		t.Fatal("struct LLBinaryTree not found")
	}
	if got := s.PointerFields(); len(got) != 3 {
		t.Fatalf("pointer fields = %v, want [L R N]", got)
	}
	if s.Field("d") == nil || s.Field("d").Type.IsPointerToStruct() {
		t.Error("field d should be a non-pointer data field")
	}
	if s.Axioms == nil || s.Axioms.Len() != 4 {
		t.Fatalf("axioms = %v, want 4", s.Axioms)
	}
	if s.Axioms.Axioms[0].Name != "A1" {
		t.Errorf("first axiom name = %q", s.Axioms.Axioms[0].Name)
	}
	if s.Axioms.Axioms[3].Form != axiom.SameSrcDisjoint {
		t.Errorf("A4 form = %v", s.Axioms.Axioms[3].Form)
	}

	fn := prog.Func("subr")
	if fn == nil {
		t.Fatal("subr not found")
	}
	if len(fn.Params) != 1 || fn.Params[0].Name != "root" || !fn.Params[0].Type.IsPointerToStruct() {
		t.Fatalf("params = %+v", fn.Params)
	}
	// Two decls + 7 statements S..T.
	if len(fn.Body.Stmts) != 10 {
		t.Fatalf("subr has %d statements, want 10", len(fn.Body.Stmts))
	}
	// Labels attach to the right statements.
	if got := fn.Body.Stmts[5].Label(); got != "S" {
		t.Errorf("statement 5 label = %q, want S", got)
	}
	if got := fn.Body.Stmts[7].Label(); got != "I" {
		t.Errorf("statement 7 label = %q, want I", got)
	}
	ret, ok := fn.Body.Stmts[9].(*ReturnStmt)
	if !ok || ret.Label() != "T" {
		t.Fatalf("statement 9 = %T label %q, want labeled return", fn.Body.Stmts[9], fn.Body.Stmts[9].Label())
	}
	fa, ok := ret.Value.(*FieldAccess)
	if !ok || fa.Base != "q" || fa.Field != "d" {
		t.Fatalf("return value = %#v", ret.Value)
	}
}

func TestParseFigure1Loop(t *testing.T) {
	src := `
struct Node {
	struct Node *link;
	int f;
	axioms {
		forall p <> q, p.link <> q.link;
		forall p, p.link+ <> p.eps;
	}
};

void update(struct Node *head) {
	struct Node *q;
	q = head;
	while (q != NULL) {
		q = malloc(struct Node);
		insert(head, q);
U:		q->f = fun();
		q = q->link;
	}
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	fn := prog.Func("update")
	if fn == nil {
		t.Fatal("update not found")
	}
	w, ok := fn.Body.Stmts[2].(*WhileStmt)
	if !ok {
		t.Fatalf("statement 2 = %T, want while", fn.Body.Stmts[2])
	}
	if len(w.Body.Stmts) != 4 {
		t.Fatalf("loop body has %d statements, want 4", len(w.Body.Stmts))
	}
	if w.Body.Stmts[2].Label() != "U" {
		t.Errorf("label = %q, want U", w.Body.Stmts[2].Label())
	}
	if _, ok := w.Body.Stmts[1].(*ExprStmt); !ok {
		t.Errorf("insert call = %T, want ExprStmt", w.Body.Stmts[1])
	}
	asg, ok := w.Body.Stmts[0].(*AssignStmt)
	if !ok {
		t.Fatalf("malloc assign = %T", w.Body.Stmts[0])
	}
	m, ok := asg.RHS.(*MallocExpr)
	if !ok || m.Of != "Node" {
		t.Fatalf("rhs = %#v", asg.RHS)
	}
}

func TestParseIfElseAndNesting(t *testing.T) {
	src := `
struct T { struct T *n; int v; };
void f(struct T *x) {
	if (x->v < 10) {
		x = x->n;
	} else {
		x->v = 0;
	}
	if (x != NULL) x = x->n;
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	fn := prog.Func("f")
	ifs, ok := fn.Body.Stmts[0].(*IfStmt)
	if !ok || ifs.Else == nil {
		t.Fatalf("expected if/else, got %T", fn.Body.Stmts[0])
	}
	ifs2, ok := fn.Body.Stmts[1].(*IfStmt)
	if !ok || ifs2.Else != nil || len(ifs2.Then.Stmts) != 1 {
		t.Fatalf("expected braceless if, got %#v", fn.Body.Stmts[1])
	}
}

func TestParseErrors(t *testing.T) {
	bad := map[string]string{
		"chained deref": `struct T { struct T *n; }; void f(struct T *x) { x = x->n->n; }`,
		"assign target": `struct T { int v; }; void f(struct T *x) { 1 = 2; }`,
		"unterminated":  `void f(struct T *x) {`,
		"bad axioms":    `struct T { struct T *n; axioms { forall z, z.n <> z.n; } };`,
		"bad field ref": `struct T { struct T *n; axioms { forall p, p.zz <> p.n; } };`,
		"bad char":      `void f() { x = $; }`,
	}
	for name, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: Parse succeeded, want error", name)
		}
	}
}

func TestParseCommentsAndOperators(t *testing.T) {
	src := `
// line comment
struct T { struct T *n; int v; }; /* block
comment */
int g(struct T *x, int k) {
	int acc;
	acc = 0;
	while (k > 0 && x != NULL) {
		acc = acc + x->v * 2 - 1 / 1;
		x = x->n;
		k = k - 1;
	}
	return acc;
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Func("g") == nil {
		t.Fatal("g not found")
	}
}

func TestTypeString(t *testing.T) {
	tt := Type{Base: "LLBinaryTree", IsStruct: true, Ptr: 1}
	if got := tt.String(); got != "struct LLBinaryTree*" {
		t.Errorf("Type.String() = %q", got)
	}
	if !tt.IsPointerToStruct() {
		t.Error("should be pointer to struct")
	}
	if (Type{Base: "int"}).IsPointerToStruct() {
		t.Error("int is not a pointer to struct")
	}
}

func TestMallocWithSizeExpression(t *testing.T) {
	src := `
struct T { struct T *n; };
void f(struct T *x) {
	x = malloc(sizeof(10) + 4);
	x = x->n;
}
`
	if _, err := Parse(src); err != nil {
		t.Fatalf("malloc with size expr: %v", err)
	}
}

func TestProgramLookups(t *testing.T) {
	prog := MustParse(`struct A { struct A *x; }; void f(struct A *a) { a = a->x; }`)
	if prog.Struct("nope") != nil || prog.Func("nope") != nil {
		t.Error("lookups should return nil for missing names")
	}
	if prog.Struct("A") == nil || prog.Func("f") == nil {
		t.Error("lookups should find declared names")
	}
}

func TestAxiomBlockRawScanStopsAtBrace(t *testing.T) {
	src := `
struct T {
	struct T *a;
	struct T *b;
	axioms { forall p, p.a <> p.b; }
	int v;
};
void g(struct T *t) { t->v = 1; }
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	s := prog.Struct("T")
	if s.Axioms == nil || s.Axioms.Len() != 1 {
		t.Fatalf("axioms = %v", s.Axioms)
	}
	if s.Field("v") == nil {
		t.Error("field after axioms block lost")
	}
	if !strings.Contains(s.Axioms.Axioms[0].String(), "a") {
		t.Errorf("axiom = %v", s.Axioms.Axioms[0])
	}
}
