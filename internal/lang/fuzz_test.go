package lang

import "testing"

// FuzzParse: the mini-C parser must never panic; accepted programs must
// have well-formed ASTs (every function has a body).
func FuzzParse(f *testing.F) {
	seeds := []string{
		`struct T { struct T *n; int v; }; void f(struct T *x) { x = x->n; }`,
		`struct T { struct T *n; axioms { forall p, p.n <> p.n; } };`,
		section33Src,
		`void g() { int i; int *p; p = &i; *p = 1; }`,
		`void w(struct T *x) { while (x != NULL) { L: x = x->n; } }`,
		`struct A { struct B *x; }; struct B { struct A *y; };`,
		`void f() { if (1 > 2) { } else { } return; }`,
		``, `struct`, `void f( {`, `axioms`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		for _, fn := range prog.Funcs {
			if fn.Body == nil {
				t.Fatalf("accepted function %q without a body", fn.Name)
			}
		}
		for _, sd := range prog.Structs {
			if sd.Name == "" {
				t.Fatal("accepted unnamed struct")
			}
		}
	})
}
