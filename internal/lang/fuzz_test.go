package lang

import (
	"errors"
	"strings"
	"testing"
)

// FuzzParse: the mini-C parser must never panic; accepted programs must have
// well-formed ASTs (every function has a body); rejected programs must fail
// with a positioned *ParseError so tools can report the failure as a
// source-anchored diagnostic instead of crashing.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`struct T { struct T *n; int v; }; void f(struct T *x) { x = x->n; }`,
		`struct T { struct T *n; axioms { forall p, p.n <> p.n; } };`,
		section33Src,
		`void g() { int i; int *p; p = &i; *p = 1; }`,
		`void w(struct T *x) { while (x != NULL) { L: x = x->n; } }`,
		`struct A { struct B *x; }; struct B { struct A *y; };`,
		`void f() { if (1 > 2) { } else { } return; }`,
		``, `struct`, `void f( {`, `axioms`,
		// Hardening corpus: inputs that historically stress recursive descent
		// and the raw-axioms re-lexing path.
		`void f() { x = ((((((1)))))); }`,
		`void f() { x = !!!!!-!-1; }`,
		`void f() { { { { return; } } } }`,
		`void f() { while (1) while (1) while (1) ; }`,
		`struct T { axioms { forall p, p.((((n)))) <> p.eps; } };`,
		`struct T { axioms { {nested braces} } };`,
		"struct T { axioms { forall p, p.n <> p.eps; } ", // unterminated
		`void f() { x = malloc(sizeof(struct T)); }`,
		`void f() { x = y @ z; }`,
		"/* unterminated", `"dangling`,
		`void f() { x->a->b = 1; }`,
		strings.Repeat("(", 64) + strings.Repeat(")", 64),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("Parse error is not a *ParseError: %T %v", err, err)
			}
			if pe.Pos.Line < 1 || pe.Pos.Col < 1 {
				t.Fatalf("ParseError without a source position: %+v", pe)
			}
			if pos, ok := ErrPos(err); !ok || pos != pe.Pos {
				t.Fatalf("ErrPos(%v) = %v, %v", err, pos, ok)
			}
			return
		}
		for _, fn := range prog.Funcs {
			if fn.Body == nil {
				t.Fatalf("accepted function %q without a body", fn.Name)
			}
		}
		for _, sd := range prog.Structs {
			if sd.Name == "" {
				t.Fatal("accepted unnamed struct")
			}
		}
	})
}

// TestDeepNestingIsAnErrorNotACrash: pathological nesting must be rejected
// with a positioned error instead of exhausting the goroutine stack.
func TestDeepNestingIsAnErrorNotACrash(t *testing.T) {
	cases := []string{
		"void f() { x = " + strings.Repeat("(", 200000) + "1;",
		"void f() { x = " + strings.Repeat("!", 200000) + "1; }",
		"void f() " + strings.Repeat("{ ", 200000),
		"void f() { " + strings.Repeat("while (1) ", 200000) + "; }",
	}
	for i, src := range cases {
		_, err := Parse(src)
		if err == nil {
			t.Fatalf("case %d: deeply nested input accepted", i)
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Fatalf("case %d: error is %T, want *ParseError", i, err)
		}
	}
}
