package lang

import (
	"repro/internal/axiom"
)

// Program is a parsed translation unit.
type Program struct {
	Structs []*StructDecl
	Funcs   []*FuncDecl
}

// Struct returns the struct declaration with the given name, or nil.
func (p *Program) Struct(name string) *StructDecl {
	for _, s := range p.Structs {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Func returns the function with the given name, or nil.
func (p *Program) Func(name string) *FuncDecl {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Type describes a declared type: a base name ("int", "float", "double", or
// a struct name) plus pointer depth.
type Type struct {
	Base     string
	Ptr      int
	IsStruct bool
}

// IsPointerToStruct reports whether the type is a single-level pointer to a
// struct — the only pointers the analysis tracks as heap references.
func (t Type) IsPointerToStruct() bool { return t.IsStruct && t.Ptr == 1 }

func (t Type) String() string {
	s := t.Base
	if t.IsStruct {
		s = "struct " + s
	}
	for i := 0; i < t.Ptr; i++ {
		s += "*"
	}
	return s
}

// FieldDecl is one field of a struct.
type FieldDecl struct {
	Name string
	Type Type
	Pos  Pos
}

// StructDecl is a struct type with optional aliasing axioms.
type StructDecl struct {
	Name   string
	Fields []FieldDecl
	// Axioms holds the axiom block, if declared; nil otherwise.
	Axioms *axiom.Set
	Pos    Pos
}

// Field returns the named field declaration, or nil.
func (s *StructDecl) Field(name string) *FieldDecl {
	for i := range s.Fields {
		if s.Fields[i].Name == name {
			return &s.Fields[i]
		}
	}
	return nil
}

// PointerFields returns the names of fields that are pointers to structs —
// the edges of the data structure graph.
func (s *StructDecl) PointerFields() []string {
	var out []string
	for _, f := range s.Fields {
		if f.Type.IsPointerToStruct() {
			out = append(out, f.Name)
		}
	}
	return out
}

// Param is one function parameter.
type Param struct {
	Name string
	Type Type
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Name   string
	Result Type
	Params []Param
	Body   *Block
	Pos    Pos
}

// Block is a brace-delimited statement list.
type Block struct {
	Stmts []Stmt
	Pos   Pos
}

// Stmt is a statement node.
type Stmt interface {
	// Label returns the statement's label ("" if unlabeled).
	Label() string
	StmtPos() Pos
	isStmt()
}

type stmtBase struct {
	Lbl string
	Pos Pos
}

func (s stmtBase) Label() string { return s.Lbl }
func (s stmtBase) StmtPos() Pos  { return s.Pos }
func (stmtBase) isStmt()         {}

// DeclItem is one declarator of a declaration statement: its own name and
// full type (C attaches '*' to declarators, not to the base type).
type DeclItem struct {
	Name string
	Type Type
}

// DeclStmt declares local variables.
type DeclStmt struct {
	stmtBase
	Items []DeclItem
}

// AssignStmt is lhs = rhs.  LHS is an Ident or a FieldAccess.
type AssignStmt struct {
	stmtBase
	LHS Expr
	RHS Expr
}

// ExprStmt is a bare expression (a call) used for effect.
type ExprStmt struct {
	stmtBase
	X Expr
}

// WhileStmt is a while loop.
type WhileStmt struct {
	stmtBase
	Cond Expr
	Body *Block
}

// IfStmt is a conditional with optional else.
type IfStmt struct {
	stmtBase
	Cond Expr
	Then *Block
	Else *Block // nil when absent
}

// ReturnStmt returns from the function.
type ReturnStmt struct {
	stmtBase
	Value Expr // nil for bare return
}

// BlockStmt wraps a nested block.
type BlockStmt struct {
	stmtBase
	Body *Block
}

// Expr is an expression node.
type Expr interface {
	ExprPos() Pos
	isExpr()
}

type exprBase struct{ Pos Pos }

func (e exprBase) ExprPos() Pos { return e.Pos }
func (exprBase) isExpr()        {}

// Ident is a variable reference.
type Ident struct {
	exprBase
	Name string
}

// FieldAccess is base->field (one level, per the simplified form).
type FieldAccess struct {
	exprBase
	Base  string
	Field string
}

// NumLit is a numeric literal.
type NumLit struct {
	exprBase
	Text string
}

// NullLit is NULL or 0 used as a pointer.
type NullLit struct {
	exprBase
}

// MallocExpr is a heap allocation.
type MallocExpr struct {
	exprBase
	// Of optionally names the struct allocated (from "malloc(struct T)" or
	// assignment context); may be empty.
	Of string
}

// CallExpr is a function call with opaque semantics.
type CallExpr struct {
	exprBase
	Name string
	Args []Expr
}

// BinaryExpr is a binary operation over data values or a comparison.
type BinaryExpr struct {
	exprBase
	Op   string
	L, R Expr
}

// UnaryExpr is !x or -x.
type UnaryExpr struct {
	exprBase
	Op string
	X  Expr
}

// AddrExpr is &x: the address of a named variable (the PTDP side of
// Figure 1; see internal/ptdp).
type AddrExpr struct {
	exprBase
	Name string
}

// DerefExpr is *p: dereference of a pointer to a named memory location.
type DerefExpr struct {
	exprBase
	Name string
}

// WalkStmts calls fn on every statement of the block, recursing into nested
// blocks, loop bodies, and both branches of conditionals.
func WalkStmts(b *Block, fn func(Stmt)) {
	if b == nil {
		return
	}
	for _, st := range b.Stmts {
		fn(st)
		switch v := st.(type) {
		case *WhileStmt:
			WalkStmts(v.Body, fn)
		case *IfStmt:
			WalkStmts(v.Then, fn)
			WalkStmts(v.Else, fn)
		case *BlockStmt:
			WalkStmts(v.Body, fn)
		}
	}
}

// WalkExprs calls fn on e and all sub-expressions.
func WalkExprs(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch v := e.(type) {
	case *BinaryExpr:
		WalkExprs(v.L, fn)
		WalkExprs(v.R, fn)
	case *UnaryExpr:
		WalkExprs(v.X, fn)
	case *CallExpr:
		for _, a := range v.Args {
			WalkExprs(a, fn)
		}
	}
}
