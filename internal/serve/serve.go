// Package serve is the long-lived dependence-query service behind cmd/
// aptserved.  One process keeps the expensive analysis state — compiled
// DFAs in an automata.SharedCache, prover verdicts in an engine.Memo —
// warm across every request, which is the amortization the paper's §5
// evaluation argues makes APT practical at compile-server scale: the first
// request over an axiom set pays the subset constructions, every later one
// rides the caches.
//
// Robustness is the other half of the design:
//
//   - admission control: a bounded queue in front of a bounded set of run
//     slots; a full queue sheds load with 429 + Retry-After instead of
//     queueing unboundedly;
//   - deadlines: every request runs under a server-capped deadline that
//     propagates into the engine's interrupt guard, so a slow proof search
//     degrades that query to Maybe instead of wedging a worker;
//   - per-axiom-set engines with LRU reclamation: unfamiliar axiom sets
//     get their own warm engine, and the population is bounded;
//   - bounded caches: the per-shard caps on the DFA cache, the decision
//     memo, and the proof memo keep a long-lived process's memory flat;
//   - graceful drain: SIGTERM stops admissions while every in-flight batch
//     finishes and is answered;
//   - panic isolation: a worker panic (re-raised by parallel.Pool as
//     *parallel.WorkerPanic) becomes one 500, not a dead process.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/automata"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/lang"
	"repro/internal/parallel"
	"repro/internal/pathexpr"
	"repro/internal/telemetry"
)

// Default limits; every one of them exists to keep a long-lived process
// bounded, so "0 = unlimited" is deliberately not offered where a limit
// guards memory.
const (
	DefaultQueryTimeout = 2 * time.Second
	DefaultMaxDeadline  = 30 * time.Second
	DefaultQueueDepth   = 64
	DefaultMaxEngines   = 8
	DefaultShardCap     = 512
	DefaultMaxQueries   = 4096
	DefaultMaxBodyBytes = 1 << 20
)

// Config sizes a Server.  The zero value selects the defaults above, one
// run slot per GOMAXPROCS, and a single-worker engine pool per axiom set.
type Config struct {
	// Workers is each engine's pool width (minimum 1).
	Workers int
	// QueryTimeout is the default per-query proof-search bound; a request
	// may lower or raise it up to MaxDeadline via timeout_ms.
	QueryTimeout time.Duration
	// MaxDeadline caps (and defaults) the whole-request deadline.
	MaxDeadline time.Duration
	// MaxConcurrent is the number of requests answered at once (default
	// GOMAXPROCS); QueueDepth is how many admitted requests may wait for a
	// run slot before the server sheds with 429.
	MaxConcurrent int
	QueueDepth    int
	// MaxEngines bounds the per-axiom-set engine population (LRU beyond).
	MaxEngines int
	// DFAShardCap and MemoShardCap bound the shared caches' shards (see
	// automata.SharedCache and engine.Memo).
	DFAShardCap  int
	MemoShardCap int
	// MaxQueries bounds the expanded query count of one request;
	// MaxBodyBytes bounds the request body.
	MaxQueries   int
	MaxBodyBytes int64
	// VerifyProofs re-checks every prover-backed No independently.
	VerifyProofs bool
	// Telemetry receives every layer's counters and feeds /metrics (nil
	// disables; /metrics then serves only the server-level families).
	Telemetry *telemetry.Set
	// FlightK and FlightRing size the flight recorder: the K slowest
	// requests plus a ring of the last FlightRing degraded requests, served
	// at /debug/flightrecorder (zero selects telemetry.DefaultFlightK and
	// DefaultFlightRing).
	FlightK    int
	FlightRing int
	// AccessLog, when non-nil, receives one JSONL "http_access" line per
	// HTTP request (method, path, status, bytes, latency, traceparent).
	AccessLog *telemetry.TraceWriter
	// Preload, when non-nil, preseeds every engine the pool builds with a
	// compiled automata artifact (see cmd/aptc), so even a cold engine's
	// first batch rides warm DFA tables and memoized decisions.
	Preload *automata.Artifact
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = DefaultQueryTimeout
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = DefaultMaxDeadline
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = defaultConcurrency()
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.MaxEngines <= 0 {
		c.MaxEngines = DefaultMaxEngines
	}
	if c.DFAShardCap <= 0 {
		c.DFAShardCap = DefaultShardCap
	}
	if c.MemoShardCap <= 0 {
		c.MemoShardCap = DefaultShardCap
	}
	if c.MaxQueries <= 0 {
		c.MaxQueries = DefaultMaxQueries
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	return c
}

// Server answers dependence-query batches over warm per-axiom-set engines.
// It implements http.Handler; cmd/aptserved wires it into an http.Server
// and the signal lifecycle.
type Server struct {
	cfg  Config
	tel  *telemetry.Set
	pool *enginePool
	mux  *http.ServeMux

	slots chan struct{} // admission tokens: run slots + bounded queue
	run   chan struct{} // run slots

	mu       sync.Mutex // guards draining vs. inflight.Add
	draining bool
	inflight sync.WaitGroup

	flight *telemetry.FlightRecorder
	access *telemetry.TraceWriter

	// completions feeds the Retry-After estimator: one observation per
	// completed request.  Server-owned (not drawn from cfg.Telemetry, which
	// may be nil) because shedding must be able to estimate drain rate even
	// on an uninstrumented server.
	completions *telemetry.WindowHistogram

	start        time.Time
	accepted     atomic.Int64
	completed    atomic.Int64
	shed         atomic.Int64
	refused      atomic.Int64 // rejected because draining
	panics       atomic.Int64
	gauge        atomic.Int64 // requests admitted and not yet completed
	degradedReqs atomic.Int64 // requests with ≥1 degraded query

	cRequests  *telemetry.Counter
	cShed      *telemetry.Counter
	cPanics    *telemetry.Counter
	hRequestNS *telemetry.Histogram
	hQueueNS   *telemetry.Histogram
	wRequestNS *telemetry.WindowHistogram
}

// New builds a Server from the config.
func New(cfg Config) *Server {
	warmProcess()
	return newServer(cfg)
}

// newServer is New without the process warmup, so warmup itself can build
// a throwaway instance without re-entering the warmup once.
func newServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	tel := cfg.Telemetry
	s := &Server{
		cfg:         cfg,
		tel:         tel,
		pool:        newEnginePool(cfg, tel),
		mux:         http.NewServeMux(),
		slots:       make(chan struct{}, cfg.MaxConcurrent+cfg.QueueDepth),
		run:         make(chan struct{}, cfg.MaxConcurrent),
		flight:      telemetry.NewFlightRecorder(cfg.FlightK, cfg.FlightRing),
		access:      cfg.AccessLog,
		completions: telemetry.NewWindowHistogram(),
		start:       time.Now(),
		cRequests:   tel.Counter("serve.requests"),
		cShed:       tel.Counter("serve.shed"),
		cPanics:     tel.Counter("serve.panics"),
		hRequestNS:  tel.Histogram("serve.request_ns"),
		hQueueNS:    tel.Histogram("serve.queue_wait_ns"),
		wRequestNS:  tel.Window("serve.request_ns"),
	}
	s.mux.HandleFunc("/v1/batch", s.handleBatch)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/metrics.json", s.handleMetricsJSON)
	s.mux.HandleFunc("/debug/flightrecorder", s.handleFlightRecorder)
	s.mux.HandleFunc("/statz", s.handleStatz)
	// Boot-time engine prewarm: the artifact carries the full axiom sets it
	// was compiled under, so the engines requests will ask for can be built
	// now — artifact-preseeded DFA cache and proof memo included — instead
	// of on the first request per set.  With this, a -preload server's first
	// request is already engine-warm (Stats.ColdEngine false), which is the
	// artifact's whole point: warm-equivalent behavior from boot.
	if cfg.Preload != nil {
		for _, set := range engine.ArtifactAxiomSets(cfg.Preload) {
			s.pool.get(set)
		}
		s.replayWarm(cfg.Preload.Replays)
		// Boot prewarm allocates heavily (engine construction, first parses);
		// collect now so the first real request inherits a quiet heap instead
		// of boot's GC debt.
		runtime.GC()
	}
	return s
}

// replayWarm drives the artifact's recorded replay workloads through the
// server's own request path, round-robin, until a time budget is spent.
// The engine prewarm above removes engine construction from the first
// request, but a long tail of one-time costs remains — first parse of that
// exact program text, first query expansion and its interning, the
// prewarmed engine's first batch — and the only way to pay them all is to
// serve the workload.  The budget is wall time rather than a pass count
// because request latency keeps improving long after logical first-touch is
// done: sustained busy CPU is what ramps a host's frequency governor and
// settles the allocator, and a ~tenth of a second of it at boot is what
// makes the first client request perform like a steady-state one.  Errors
// are ignored (a malformed recorded workload degrades warmth, nothing
// else); the warmup requests show up in the request counters and /statz
// like any request.
func (s *Server) replayWarm(replays []automata.ArtifactReplay) {
	const (
		budget    = 120 * time.Millisecond
		maxPasses = 4096 // bound the counter pollution when passes are very cheap
	)
	var bodies [][]byte
	for _, rp := range replays {
		body, err := json.Marshal(BatchRequest{Program: rp.Program, Fn: rp.Fn, Queries: rp.Queries})
		if err != nil {
			continue
		}
		bodies = append(bodies, body)
	}
	if len(bodies) == 0 {
		return
	}
	start := time.Now()
	for pass := 0; pass < maxPasses && time.Since(start) < budget; pass++ {
		body := bodies[pass%len(bodies)]
		req, err := http.NewRequest(http.MethodPost, "/v1/batch", bytes.NewReader(body))
		if err != nil {
			return
		}
		req.Header.Set("Content-Type", "application/json")
		s.ServeHTTP(&discardResponseWriter{h: make(http.Header)}, req)
	}
}

// ServeHTTP dispatches with panic isolation: a panic below (including a
// *parallel.WorkerPanic re-raised out of an engine pool) answers 500 and
// the server keeps serving.  Every request — panicking ones included —
// gets one access-log line on the way out.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	sw := &statusWriter{ResponseWriter: w}
	start := time.Now()
	defer func() {
		if rec := recover(); rec != nil {
			s.panics.Add(1)
			s.cPanics.Add(1)
			msg := "internal error"
			if wp, ok := rec.(*parallel.WorkerPanic); ok {
				msg = fmt.Sprintf("worker panic: %v", wp.Value)
			}
			// Best effort: if the handler already wrote a partial body this
			// write fails silently, which is all HTTP offers.
			writeJSONError(sw, http.StatusInternalServerError, msg)
		}
		s.logAccess(sw, r, time.Since(start))
	}()
	s.mux.ServeHTTP(sw, r)
}

// Drain stops admitting requests and waits for every in-flight one to be
// answered, or for ctx to expire.  Safe to call more than once.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("drain interrupted with %d requests in flight: %w", s.gauge.Load(), ctx.Err())
	}
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// retryAfterWindow is the completion-rate lookback, and retryAfterMax the
// ceiling: a Retry-After beyond a minute stops being backpressure and
// starts being an outage announcement.
const (
	retryAfterWindow = 10 * time.Second
	retryAfterMax    = 60
)

// retryAfterSeconds estimates how long a shed client should wait before the
// backlog it just bounced off has drained: backlog / recent completion
// rate, rounded up, clamped to [1, retryAfterMax].  With no completions in
// the window there is no rate to extrapolate (an idle server that just got
// burst-filled), so it answers the 1-second floor.
func (s *Server) retryAfterSeconds() int {
	backlog := len(s.slots)
	done := s.completions.Summary(retryAfterWindow).Count
	if backlog == 0 || done == 0 {
		return 1
	}
	windowSec := int64(retryAfterWindow / time.Second)
	secs := (int64(backlog)*windowSec + done - 1) / done
	if secs < 1 {
		secs = 1
	}
	if secs > retryAfterMax {
		secs = retryAfterMax
	}
	return int(secs)
}

// admit registers one in-flight request unless the server is draining.
func (s *Server) admit() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.inflight.Add(1)
	return true
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSONError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	// Join the caller's trace (W3C traceparent) or mint a fresh one, and
	// answer with the trace id plus this request's root span so the caller
	// can correlate — the header goes out even on shed/refused answers.
	tc, joined := telemetry.ParseTraceparent(r.Header.Get("traceparent"))
	if !joined {
		tc = telemetry.NewTraceContext()
	}
	rt := telemetry.NewRequestTrace(tc)
	root := rt.StartSpan("serve.request", tc.SpanID)
	w.Header().Set("traceparent",
		telemetry.TraceContext{TraceID: tc.TraceID, SpanID: root.ID(), Flags: tc.Flags}.Traceparent())
	// Admission: a token covers both the run slot and the bounded queue in
	// front of it.  No token free means MaxConcurrent+QueueDepth requests
	// are already in the building — shed immediately rather than letting
	// the queue (and every client's latency) grow without bound.
	select {
	case s.slots <- struct{}{}:
	default:
		s.shed.Add(1)
		s.cShed.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeJSONError(w, http.StatusTooManyRequests, "admission queue full; retry")
		return
	}
	defer func() { <-s.slots }()
	if !s.admit() {
		s.refused.Add(1)
		writeJSONError(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	s.gauge.Add(1)
	s.accepted.Add(1)
	s.cRequests.Add(1)
	startWait := time.Now()
	var meta *flightMeta
	defer func() {
		dur := time.Since(startWait)
		s.gauge.Add(-1)
		s.completed.Add(1)
		s.completions.Observe(1)
		s.inflight.Done()
		s.hRequestNS.Observe(dur.Nanoseconds())
		s.wRequestNS.Observe(dur.Nanoseconds())
		root.End()
		s.recordFlight(w, rt, startWait, dur, meta)
	}()

	// Wait for a run slot.  Admitted requests finish even during a drain;
	// only the client hanging up aborts the wait.
	adm := rt.StartSpan("serve.admission", root.ID())
	select {
	case s.run <- struct{}{}:
	case <-r.Context().Done():
		writeJSONError(w, http.StatusServiceUnavailable, "client canceled while queued")
		return
	}
	defer func() { <-s.run }()
	s.hQueueNS.Observe(time.Since(startWait).Nanoseconds())
	adm.End()

	var req BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	resp, m, code, err := s.answer(r.Context(), &req, rt, root.ID())
	meta = m
	if err != nil {
		writeJSONError(w, code, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// answer runs one decoded batch request; it returns the flight-recorder
// metadata (nil on error) and an HTTP status code alongside any error.
// Spans it opens parent under parent; the engine and prover pick up the
// trace through the batch context's trace scope.
func (s *Server) answer(ctx context.Context, req *BatchRequest, rt *telemetry.RequestTrace, parent telemetry.SpanID) (*BatchResponse, *flightMeta, int, error) {
	if len(req.Queries) == 0 {
		return nil, nil, http.StatusBadRequest, fmt.Errorf("no queries")
	}
	svc0 := time.Now()
	asp := rt.StartSpan("serve.analyze", parent)
	prog, err := lang.Parse(req.Program)
	if err != nil {
		return nil, nil, http.StatusBadRequest, fmt.Errorf("program: %v", err)
	}
	fn := req.Fn
	if fn == "" {
		if len(prog.Funcs) != 1 {
			return nil, nil, http.StatusBadRequest, fmt.Errorf("program has %d functions; set fn", len(prog.Funcs))
		}
		fn = prog.Funcs[0].Name
	}
	res, err := analysis.Analyze(prog, fn, analysis.Options{
		InferTypeAxioms:      true,
		AssumeLoopInvariants: req.AssumeInvariants,
		Telemetry:            s.tel,
	})
	if err != nil {
		return nil, nil, http.StatusBadRequest, fmt.Errorf("analyze: %v", err)
	}
	queries, origins, err := expandQueryLines(req.Queries, res)
	if err != nil {
		return nil, nil, http.StatusBadRequest, err
	}
	if len(queries) > s.cfg.MaxQueries {
		return nil, nil, http.StatusRequestEntityTooLarge,
			fmt.Errorf("%d expanded queries exceed the per-request limit of %d", len(queries), s.cfg.MaxQueries)
	}
	asp.End(telemetry.String("fn", fn), telemetry.Int("queries", len(queries)))

	eng, cold := s.pool.get(res.Axioms)
	deadline := clampMS(req.DeadlineMS, s.cfg.MaxDeadline)
	perQuery := s.cfg.QueryTimeout
	if req.TimeoutMS > 0 {
		perQuery = clampMS(req.TimeoutMS, s.cfg.MaxDeadline)
	}
	bctx, cancel := context.WithTimeout(ctx, deadline)
	defer cancel()
	bsp := rt.StartSpan("serve.batch", parent)
	bctx = telemetry.WithTraceScope(bctx, rt, bsp.ID())

	st0 := eng.Stats()
	start := time.Now()
	outs := eng.BatchTimeout(bctx, queries, perQuery)
	elapsed := time.Since(start)
	st := eng.Stats()
	bsp.End(
		telemetry.String("axiom_set", res.Axioms.StructName),
		telemetry.Bool("cold_engine", cold),
		telemetry.Int("queries", len(outs)),
	)

	resp := &BatchResponse{Results: make([]QueryResult, len(outs))}
	for i, out := range outs {
		q := queries[i]
		resp.Results[i] = QueryResult{
			Line:   origins[i],
			Query:  req.Queries[origins[i]],
			S:      q.S.String(),
			T:      q.T.String(),
			Result: out.Result.String(),
			Kind:   out.Kind.String(),
			Reason: out.Reason,
		}
		if out.Result != core.No {
			resp.Dependent = true
		}
	}
	deg := rt.DegradedCounts()
	resp.Stats = BatchStats{
		Queries:         len(outs),
		ElapsedUS:       elapsed.Microseconds(),
		ServiceUS:       time.Since(svc0).Microseconds(),
		ColdEngine:      cold,
		AxiomSet:        res.Axioms.StructName,
		MemoHits:        st.Memo.Hits,
		MemoLookups:     st.Memo.Lookups,
		DFAHits:         int64(st.DFA.Hits),
		DFALookups:      int64(st.DFA.Lookups),
		Timeouts:        st.Timeouts,
		TraceID:         rt.TraceIDString(),
		DegradedQueries: rt.DegradedTotal(),
		DeadlineExpired: deg[telemetry.DegradeRequestDeadline],
	}
	// The flight-recorder metadata wants this request's cache economics,
	// not the engine's lifetime totals, so report the deltas (best-effort:
	// concurrent requests on the same engine blur them).
	meta := &flightMeta{
		AxiomSet:    res.Axioms.StructName,
		Queries:     len(outs),
		ColdEngine:  cold,
		ElapsedUS:   elapsed.Microseconds(),
		MemoHits:    st.Memo.Hits - st0.Memo.Hits,
		MemoLookups: st.Memo.Lookups - st0.Memo.Lookups,
		DFAHits:     int64(st.DFA.Hits - st0.DFA.Hits),
		DFALookups:  int64(st.DFA.Lookups - st0.DFA.Lookups),
	}
	return resp, meta, http.StatusOK, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// EngineStatz is one warm engine's /statz entry.
type EngineStatz struct {
	AxiomSet string `json:"axiom_set"`
	Uses     int64  `json:"uses"`
	Batches  int64  `json:"batches"`
	Queries  int64  `json:"queries"`
	// The degraded-query counters, split by reason like engine.Stats.
	Timeouts        int64 `json:"timeouts"`
	DeadlineExpired int64 `json:"deadline_expired"`
	Canceled        int64 `json:"canceled"`

	MemoLookups   int64   `json:"memo_lookups"`
	MemoHits      int64   `json:"memo_hits"`
	MemoHitRate   float64 `json:"memo_hit_rate"`
	MemoEntries   int     `json:"memo_entries"`
	MemoEvictions int64   `json:"memo_evictions"`

	DFALookups   int     `json:"dfa_lookups"`
	DFAHits      int     `json:"dfa_hits"`
	DFAHitRate   float64 `json:"dfa_hit_rate"`
	DFACompiles  int     `json:"dfa_compiles"`
	DFALen       int     `json:"dfa_len"`
	OpsLen       int     `json:"ops_len"`
	DFAEvictions int64   `json:"dfa_evictions"`
	OpsEvictions int64   `json:"ops_evictions"`
}

// Statz is the /statz body: server-level admission and lifecycle counters
// plus every warm engine's cache state.
type Statz struct {
	UptimeMS        int64 `json:"uptime_ms"`
	Draining        bool  `json:"draining"`
	Accepted        int64 `json:"accepted"`
	Completed       int64 `json:"completed"`
	Inflight        int64 `json:"inflight"`
	Shed            int64 `json:"shed"`
	RefusedDraining int64 `json:"refused_draining"`
	Panics          int64 `json:"panics"`
	// DegradedRequests counts requests with at least one query degraded
	// toward Maybe (each such request is also in the flight recorder).
	DegradedRequests int64 `json:"degraded_requests"`
	EnginesResident  int   `json:"engines_resident"`
	EnginesEvicted   int64 `json:"engines_evicted"`
	// InternedExprs is the process-wide count of distinct interned path
	// expressions.  The interner underlies every cache key in the stack and
	// is never evicted (node IDs must stay stable), so this is the one
	// monotone number to watch for expression-churn growth.
	InternedExprs int           `json:"interned_exprs"`
	Engines       []EngineStatz `json:"engines"`
}

// StatzSnapshot assembles the /statz body (exported for the soak tests and
// the loadgen client).
func (s *Server) StatzSnapshot() Statz {
	z := Statz{
		UptimeMS:         time.Since(s.start).Milliseconds(),
		Draining:         s.Draining(),
		Accepted:         s.accepted.Load(),
		Completed:        s.completed.Load(),
		Inflight:         s.gauge.Load(),
		Shed:             s.shed.Load(),
		RefusedDraining:  s.refused.Load(),
		Panics:           s.panics.Load(),
		DegradedRequests: s.degradedReqs.Load(),
		EnginesResident:  s.pool.len(),
		EnginesEvicted:   s.pool.evicted.Load(),
		InternedExprs:    pathexpr.InternedExprs(),
	}
	for _, e := range s.pool.snapshot() {
		z.Engines = append(z.Engines, engineStatz(e))
	}
	return z
}

func engineStatz(v engineView) EngineStatz {
	st := v.eng.Stats()
	dfas := v.eng.DFACache()
	out := EngineStatz{
		AxiomSet:        v.name,
		Uses:            v.uses,
		Batches:         st.Batches,
		Queries:         st.Queries,
		Timeouts:        st.Timeouts,
		DeadlineExpired: st.DeadlineExpired,
		Canceled:        st.Canceled,

		MemoLookups:   st.Memo.Lookups,
		MemoHits:      st.Memo.Hits,
		MemoHitRate:   st.Memo.HitRate(),
		MemoEntries:   st.Memo.Entries,
		MemoEvictions: st.Memo.Evictions,

		DFALookups:   st.DFA.Lookups,
		DFAHits:      st.DFA.Hits,
		DFACompiles:  st.DFA.Compiles,
		DFALen:       dfas.Len(),
		OpsLen:       dfas.OpsLen(),
		DFAEvictions: dfas.DFAEvictions(),
		OpsEvictions: dfas.OpsEvictions(),
	}
	if st.DFA.Lookups > 0 {
		out.DFAHitRate = float64(st.DFA.Hits) / float64(st.DFA.Lookups)
	}
	return out
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.StatzSnapshot())
}

// clampMS converts a client-supplied millisecond budget to a duration in
// (0, max]; non-positive selects max.
func clampMS(ms int64, max time.Duration) time.Duration {
	if ms <= 0 {
		return max
	}
	d := time.Duration(ms) * time.Millisecond
	if d > max {
		return max
	}
	return d
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the client hanging up is its problem
}

func writeJSONError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorResponse{Error: msg})
}

func defaultConcurrency() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	return n
}
