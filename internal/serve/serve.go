// Package serve is the long-lived dependence-query service behind cmd/
// aptserved.  One process keeps the expensive analysis state — compiled
// DFAs in an automata.SharedCache, prover verdicts in an engine.Memo —
// warm across every request, which is the amortization the paper's §5
// evaluation argues makes APT practical at compile-server scale: the first
// request over an axiom set pays the subset constructions, every later one
// rides the caches.
//
// Since the layering refactor the package is a thin composition of the
// query plane's tiers rather than their home:
//
//   - internal/wire — the request/response vocabulary and JSON helpers,
//     shared with clients and the cluster router;
//   - internal/admit — the two-channel slots/queue/429 admission machinery
//     and the drain lifecycle;
//   - internal/exec — the bounded pool of warm per-axiom-set engines, the
//     raw-query builder, and warm-state snapshot/preload.
//
// What remains here is the composition itself: HTTP endpoint wiring, the
// program-mode analysis pipeline, tracing/flight-recorder/access-log
// plumbing, and process warmup.  The cluster router (internal/route) is the
// other composition of the same tiers — admission in front of forwarding
// instead of execution.
//
// Robustness is the other half of the design:
//
//   - admission control: a bounded queue in front of a bounded set of run
//     slots; a full queue sheds load with 429 + Retry-After instead of
//     queueing unboundedly;
//   - deadlines: every request runs under a server-capped deadline that
//     propagates into the engine's interrupt guard, so a slow proof search
//     degrades that query to Maybe instead of wedging a worker;
//   - per-axiom-set engines with LRU reclamation: unfamiliar axiom sets
//     get their own warm engine, and the population is bounded;
//   - bounded caches: the per-shard caps on the DFA cache, the decision
//     memo, and the proof memo keep a long-lived process's memory flat;
//   - graceful drain: SIGTERM stops admissions while every in-flight batch
//     finishes and is answered;
//   - panic isolation: a worker panic (re-raised by parallel.Pool as
//     *parallel.WorkerPanic) becomes one 500, not a dead process.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/admit"
	"repro/internal/analysis"
	"repro/internal/automata"
	"repro/internal/axiom"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/lang"
	"repro/internal/parallel"
	"repro/internal/pathexpr"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// Default limits; every one of them exists to keep a long-lived process
// bounded, so "0 = unlimited" is deliberately not offered where a limit
// guards memory.
const (
	DefaultQueryTimeout = 2 * time.Second
	DefaultMaxDeadline  = 30 * time.Second
	DefaultQueueDepth   = 64
	DefaultMaxEngines   = 8
	DefaultShardCap     = 512
	DefaultMaxQueries   = 4096
	DefaultMaxBodyBytes = 1 << 20
)

// Config sizes a Server.  The zero value selects the defaults above, one
// run slot per GOMAXPROCS, and a single-worker engine pool per axiom set.
type Config struct {
	// Workers is each engine's pool width (minimum 1).
	Workers int
	// QueryTimeout is the default per-query proof-search bound; a request
	// may lower or raise it up to MaxDeadline via timeout_ms.
	QueryTimeout time.Duration
	// MaxDeadline caps (and defaults) the whole-request deadline.
	MaxDeadline time.Duration
	// MaxConcurrent is the number of requests answered at once (default
	// GOMAXPROCS); QueueDepth is how many admitted requests may wait for a
	// run slot before the server sheds with 429.
	MaxConcurrent int
	QueueDepth    int
	// MaxEngines bounds the per-axiom-set engine population (LRU beyond).
	MaxEngines int
	// DFAShardCap and MemoShardCap bound the shared caches' shards (see
	// automata.SharedCache and engine.Memo).
	DFAShardCap  int
	MemoShardCap int
	// MaxQueries bounds the expanded query count of one request;
	// MaxBodyBytes bounds the request body.
	MaxQueries   int
	MaxBodyBytes int64
	// VerifyProofs re-checks every prover-backed No independently.
	VerifyProofs bool
	// Telemetry receives every layer's counters and feeds /metrics (nil
	// disables; /metrics then serves only the server-level families).
	Telemetry *telemetry.Set
	// FlightK and FlightRing size the flight recorder: the K slowest
	// requests plus a ring of the last FlightRing degraded requests, served
	// at /debug/flightrecorder (zero selects telemetry.DefaultFlightK and
	// DefaultFlightRing).
	FlightK    int
	FlightRing int
	// AccessLog, when non-nil, receives one JSONL "http_access" line per
	// HTTP request (method, path, status, bytes, latency, traceparent).
	AccessLog *telemetry.TraceWriter
	// Preload, when non-nil, preseeds every engine the pool builds with a
	// compiled automata artifact (see cmd/aptc), so even a cold engine's
	// first batch rides warm DFA tables and memoized decisions.
	Preload *automata.Artifact
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = DefaultQueryTimeout
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = DefaultMaxDeadline
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = defaultConcurrency()
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.MaxEngines <= 0 {
		c.MaxEngines = DefaultMaxEngines
	}
	if c.DFAShardCap <= 0 {
		c.DFAShardCap = DefaultShardCap
	}
	if c.MemoShardCap <= 0 {
		c.MemoShardCap = DefaultShardCap
	}
	if c.MaxQueries <= 0 {
		c.MaxQueries = DefaultMaxQueries
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	return c
}

// poolConfig projects the server config onto the execution tier's.
func (c Config) poolConfig() exec.PoolConfig {
	return exec.PoolConfig{
		Workers:      c.Workers,
		QueryTimeout: c.QueryTimeout,
		MaxEngines:   c.MaxEngines,
		DFAShardCap:  c.DFAShardCap,
		MemoShardCap: c.MemoShardCap,
		VerifyProofs: c.VerifyProofs,
		Preload:      c.Preload,
	}
}

// enginePool adapts exec.Pool to the package-local names the server (and
// its white-box tests) grew up with.
type enginePool struct{ *exec.Pool }

func (p enginePool) get(ax *axiom.Set) (*engine.Engine, bool) { return p.Get(ax) }
func (p enginePool) len() int                                 { return p.Len() }
func (p enginePool) snapshot() []exec.View                    { return p.Snapshot() }

// Server answers dependence-query batches over warm per-axiom-set engines.
// It implements http.Handler; cmd/aptserved wires it into an http.Server
// and the signal lifecycle.
type Server struct {
	cfg  Config
	tel  *telemetry.Set
	adm  *admit.Controller
	pool enginePool
	mux  *http.ServeMux

	// White-box views into the admission controller — the same channel,
	// gauge, and completion-window objects adm owns, not copies.  The
	// package's tests jam the queue and seed the Retry-After estimator
	// through them.
	slots       chan struct{} // admission tokens: run slots + bounded queue
	run         chan struct{} // run slots
	gauge       *atomic.Int64 // requests admitted and not yet completed
	completions *telemetry.WindowHistogram

	flight *telemetry.FlightRecorder
	access *telemetry.TraceWriter

	start        time.Time
	panics       atomic.Int64
	degradedReqs atomic.Int64 // requests with ≥1 degraded query

	cRequests  *telemetry.Counter
	cShed      *telemetry.Counter
	cPanics    *telemetry.Counter
	hRequestNS *telemetry.Histogram
	hQueueNS   *telemetry.Histogram
	wRequestNS *telemetry.WindowHistogram
}

// New builds a Server from the config.
func New(cfg Config) *Server {
	warmProcess()
	return newServer(cfg)
}

// newServer is New without the process warmup, so warmup itself can build
// a throwaway instance without re-entering the warmup once.
func newServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	tel := cfg.Telemetry
	adm := admit.New(cfg.MaxConcurrent, cfg.QueueDepth)
	s := &Server{
		cfg:         cfg,
		tel:         tel,
		adm:         adm,
		pool:        enginePool{exec.NewPool(cfg.poolConfig(), tel)},
		mux:         http.NewServeMux(),
		slots:       adm.Slots(),
		run:         adm.Run(),
		gauge:       adm.Gauge(),
		completions: adm.Completions(),
		flight:      telemetry.NewFlightRecorder(cfg.FlightK, cfg.FlightRing),
		access:      cfg.AccessLog,
		start:       time.Now(),
		cRequests:   tel.Counter("serve.requests"),
		cShed:       tel.Counter("serve.shed"),
		cPanics:     tel.Counter("serve.panics"),
		hRequestNS:  tel.Histogram("serve.request_ns"),
		hQueueNS:    tel.Histogram("serve.queue_wait_ns"),
		wRequestNS:  tel.Window("serve.request_ns"),
	}
	s.mux.HandleFunc("/v1/batch", s.handleBatch)
	s.mux.HandleFunc("/v1/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("/v1/preload", s.handlePreload)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/metrics.json", s.handleMetricsJSON)
	s.mux.HandleFunc("/debug/flightrecorder", s.handleFlightRecorder)
	s.mux.HandleFunc("/statz", s.handleStatz)
	// Boot-time engine prewarm: the artifact carries the full axiom sets it
	// was compiled under, so the engines requests will ask for can be built
	// now — artifact-preseeded DFA cache and proof memo included — instead
	// of on the first request per set.  With this, a -preload server's first
	// request is already engine-warm (Stats.ColdEngine false), which is the
	// artifact's whole point: warm-equivalent behavior from boot.
	if cfg.Preload != nil {
		s.pool.PreloadArtifact(cfg.Preload)
		s.replayWarm(cfg.Preload.Replays)
		// Boot prewarm allocates heavily (engine construction, first parses);
		// collect now so the first real request inherits a quiet heap instead
		// of boot's GC debt.
		runtime.GC()
	}
	return s
}

// replayWarm drives the artifact's recorded replay workloads through the
// server's own request path, round-robin, until a time budget is spent.
// The engine prewarm above removes engine construction from the first
// request, but a long tail of one-time costs remains — first parse of that
// exact program text, first query expansion and its interning, the
// prewarmed engine's first batch — and the only way to pay them all is to
// serve the workload.  The budget is wall time rather than a pass count
// because request latency keeps improving long after logical first-touch is
// done: sustained busy CPU is what ramps a host's frequency governor and
// settles the allocator, and a ~tenth of a second of it at boot is what
// makes the first client request perform like a steady-state one.  Errors
// are ignored (a malformed recorded workload degrades warmth, nothing
// else); the warmup requests show up in the request counters and /statz
// like any request.
func (s *Server) replayWarm(replays []automata.ArtifactReplay) {
	const (
		budget    = 120 * time.Millisecond
		maxPasses = 4096 // bound the counter pollution when passes are very cheap
	)
	var bodies [][]byte
	for _, rp := range replays {
		body, err := json.Marshal(BatchRequest{Program: rp.Program, Fn: rp.Fn, Queries: rp.Queries})
		if err != nil {
			continue
		}
		bodies = append(bodies, body)
	}
	if len(bodies) == 0 {
		return
	}
	start := time.Now()
	for pass := 0; pass < maxPasses && time.Since(start) < budget; pass++ {
		body := bodies[pass%len(bodies)]
		req, err := http.NewRequest(http.MethodPost, "/v1/batch", bytes.NewReader(body))
		if err != nil {
			return
		}
		req.Header.Set("Content-Type", "application/json")
		s.ServeHTTP(&discardResponseWriter{h: make(http.Header)}, req)
	}
}

// ServeHTTP dispatches with panic isolation: a panic below (including a
// *parallel.WorkerPanic re-raised out of an engine pool) answers 500 and
// the server keeps serving.  Every request — panicking ones included —
// gets one access-log line on the way out.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	sw := &statusWriter{ResponseWriter: w}
	start := time.Now()
	defer func() {
		if rec := recover(); rec != nil {
			s.panics.Add(1)
			s.cPanics.Add(1)
			msg := "internal error"
			if wp, ok := rec.(*parallel.WorkerPanic); ok {
				msg = fmt.Sprintf("worker panic: %v", wp.Value)
			}
			// Best effort: if the handler already wrote a partial body this
			// write fails silently, which is all HTTP offers.
			writeJSONError(sw, http.StatusInternalServerError, msg)
		}
		s.logAccess(sw, r, time.Since(start))
	}()
	s.mux.ServeHTTP(sw, r)
}

// Drain stops admitting requests and waits for every in-flight one to be
// answered, or for ctx to expire.  Safe to call more than once.
func (s *Server) Drain(ctx context.Context) error { return s.adm.Drain(ctx) }

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool { return s.adm.Draining() }

// retryAfterSeconds is the admission controller's backlog-over-drain-rate
// estimate; see admit.Controller.RetryAfterSeconds.
func (s *Server) retryAfterSeconds() int { return s.adm.RetryAfterSeconds() }

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSONError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	// Join the caller's trace (W3C traceparent) or mint a fresh one, and
	// answer with the trace id plus this request's root span so the caller
	// can correlate — the header goes out even on shed/refused answers.
	tc, joined := telemetry.ParseTraceparent(r.Header.Get("traceparent"))
	if !joined {
		tc = telemetry.NewTraceContext()
	}
	rt := telemetry.NewRequestTrace(tc)
	root := rt.StartSpan("serve.request", tc.SpanID)
	w.Header().Set("traceparent",
		telemetry.TraceContext{TraceID: tc.TraceID, SpanID: root.ID(), Flags: tc.Flags}.Traceparent())
	// Admission: a token covers both the run slot and the bounded queue in
	// front of it.  No token free means MaxConcurrent+QueueDepth requests
	// are already in the building — shed immediately rather than letting
	// the queue (and every client's latency) grow without bound.
	if !s.adm.TryAcquire() {
		s.cShed.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeJSONError(w, http.StatusTooManyRequests, "admission queue full; retry")
		return
	}
	defer s.adm.Release()
	if !s.adm.Begin() {
		writeJSONError(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	s.cRequests.Add(1)
	startWait := time.Now()
	var meta *flightMeta
	defer func() {
		dur := time.Since(startWait)
		s.adm.Finish()
		s.hRequestNS.Observe(dur.Nanoseconds())
		s.wRequestNS.Observe(dur.Nanoseconds())
		root.End()
		s.recordFlight(w, rt, startWait, dur, meta)
	}()

	// Wait for a run slot.  Admitted requests finish even during a drain;
	// only the client hanging up aborts the wait.
	qsp := rt.StartSpan("serve.admission", root.ID())
	if !s.adm.AcquireRun(r.Context()) {
		writeJSONError(w, http.StatusServiceUnavailable, "client canceled while queued")
		return
	}
	defer s.adm.ReleaseRun()
	s.hQueueNS.Observe(time.Since(startWait).Nanoseconds())
	qsp.End()

	var req BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	resp, m, code, err := s.answer(r.Context(), &req, rt, root.ID())
	meta = m
	if err != nil {
		writeJSONError(w, code, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// answer runs one decoded batch request; it returns the flight-recorder
// metadata (nil on error) and an HTTP status code alongside any error.
// Spans it opens parent under parent; the engine and prover pick up the
// trace through the batch context's trace scope.
func (s *Server) answer(ctx context.Context, req *BatchRequest, rt *telemetry.RequestTrace, parent telemetry.SpanID) (*BatchResponse, *flightMeta, int, error) {
	if len(req.Raw) > 0 {
		return s.answerRaw(ctx, req, rt, parent)
	}
	if len(req.Queries) == 0 {
		return nil, nil, http.StatusBadRequest, fmt.Errorf("no queries")
	}
	svc0 := time.Now()
	asp := rt.StartSpan("serve.analyze", parent)
	prog, err := lang.Parse(req.Program)
	if err != nil {
		return nil, nil, http.StatusBadRequest, fmt.Errorf("program: %v", err)
	}
	fn := req.Fn
	if fn == "" {
		if len(prog.Funcs) != 1 {
			return nil, nil, http.StatusBadRequest, fmt.Errorf("program has %d functions; set fn", len(prog.Funcs))
		}
		fn = prog.Funcs[0].Name
	}
	res, err := analysis.Analyze(prog, fn, analysis.Options{
		InferTypeAxioms:      true,
		AssumeLoopInvariants: req.AssumeInvariants,
		Telemetry:            s.tel,
	})
	if err != nil {
		return nil, nil, http.StatusBadRequest, fmt.Errorf("analyze: %v", err)
	}
	queries, origins, err := expandQueryLines(req.Queries, res)
	if err != nil {
		return nil, nil, http.StatusBadRequest, err
	}
	if len(queries) > s.cfg.MaxQueries {
		return nil, nil, http.StatusRequestEntityTooLarge,
			fmt.Errorf("%d expanded queries exceed the per-request limit of %d", len(queries), s.cfg.MaxQueries)
	}
	asp.End(telemetry.String("fn", fn), telemetry.Int("queries", len(queries)))

	echo := func(i int) (int, string) { return origins[i], req.Queries[origins[i]] }
	return s.runBatch(ctx, req, rt, parent, res.Axioms, queries, echo, svc0)
}

// answerRaw runs a raw-mode request: the axiom set arrives as text and the
// queries fully specified, so analysis is skipped entirely.  This is the
// path routed cluster traffic takes when the client already holds analysis
// results (and the differential suite's way of replaying engine workloads
// through HTTP byte-identically).
func (s *Server) answerRaw(ctx context.Context, req *BatchRequest, rt *telemetry.RequestTrace, parent telemetry.SpanID) (*BatchResponse, *flightMeta, int, error) {
	if len(req.Queries) > 0 || req.Program != "" {
		return nil, nil, http.StatusBadRequest, fmt.Errorf("raw queries exclude program/queries fields")
	}
	if len(req.Raw) > s.cfg.MaxQueries {
		return nil, nil, http.StatusRequestEntityTooLarge,
			fmt.Errorf("%d raw queries exceed the per-request limit of %d", len(req.Raw), s.cfg.MaxQueries)
	}
	svc0 := time.Now()
	asp := rt.StartSpan("serve.rawparse", parent)
	name := req.AxiomSetName
	if name == "" {
		name = "raw"
	}
	ax, err := axiom.ParseSet(name, req.AxiomSet)
	if err != nil {
		return nil, nil, http.StatusBadRequest, fmt.Errorf("axiom_set: %v", err)
	}
	queries, err := exec.BuildRawQueries(ax, req.Raw)
	if err != nil {
		return nil, nil, http.StatusBadRequest, err
	}
	asp.End(telemetry.String("axiom_set", name), telemetry.Int("queries", len(queries)))

	echo := func(i int) (int, string) { return i, exec.RenderRawQuery(req.Raw[i]) }
	return s.runBatch(ctx, req, rt, parent, ax, queries, echo, svc0)
}

// runBatch is the shared tail of both request modes: acquire the warm
// engine, run the batch under the request deadline, and assemble the
// response and flight metadata.  echo maps a result index to the line/echo
// pair the response reports.
func (s *Server) runBatch(ctx context.Context, req *BatchRequest, rt *telemetry.RequestTrace, parent telemetry.SpanID,
	ax *axiom.Set, queries []core.Query, echo func(int) (int, string), svc0 time.Time) (*BatchResponse, *flightMeta, int, error) {

	eng, cold := s.pool.get(ax)
	deadline := clampMS(req.DeadlineMS, s.cfg.MaxDeadline)
	perQuery := s.cfg.QueryTimeout
	if req.TimeoutMS > 0 {
		perQuery = clampMS(req.TimeoutMS, s.cfg.MaxDeadline)
	}
	bctx, cancel := context.WithTimeout(ctx, deadline)
	defer cancel()
	bsp := rt.StartSpan("serve.batch", parent)
	bctx = telemetry.WithTraceScope(bctx, rt, bsp.ID())

	st0 := eng.Stats()
	start := time.Now()
	outs := eng.BatchTimeout(bctx, queries, perQuery)
	elapsed := time.Since(start)
	st := eng.Stats()
	bsp.End(
		telemetry.String("axiom_set", ax.StructName),
		telemetry.Bool("cold_engine", cold),
		telemetry.Int("queries", len(outs)),
	)

	resp := &BatchResponse{Results: make([]QueryResult, len(outs))}
	for i, out := range outs {
		q := queries[i]
		line, src := echo(i)
		resp.Results[i] = QueryResult{
			Line:   line,
			Query:  src,
			S:      q.S.String(),
			T:      q.T.String(),
			Result: out.Result.String(),
			Kind:   out.Kind.String(),
			Reason: out.Reason,
		}
		if out.Result != core.No {
			resp.Dependent = true
		}
	}
	deg := rt.DegradedCounts()
	resp.Stats = BatchStats{
		Queries:         len(outs),
		ElapsedUS:       elapsed.Microseconds(),
		ServiceUS:       time.Since(svc0).Microseconds(),
		ColdEngine:      cold,
		AxiomSet:        ax.StructName,
		MemoHits:        st.Memo.Hits,
		MemoLookups:     st.Memo.Lookups,
		DFAHits:         int64(st.DFA.Hits),
		DFALookups:      int64(st.DFA.Lookups),
		Timeouts:        st.Timeouts,
		TraceID:         rt.TraceIDString(),
		DegradedQueries: rt.DegradedTotal(),
		DeadlineExpired: deg[telemetry.DegradeRequestDeadline],
	}
	// The flight-recorder metadata wants this request's cache economics,
	// not the engine's lifetime totals, so report the deltas (best-effort:
	// concurrent requests on the same engine blur them).
	meta := &flightMeta{
		AxiomSet:    ax.StructName,
		Queries:     len(outs),
		ColdEngine:  cold,
		ElapsedUS:   elapsed.Microseconds(),
		MemoHits:    st.Memo.Hits - st0.Memo.Hits,
		MemoLookups: st.Memo.Lookups - st0.Memo.Lookups,
		DFAHits:     int64(st.DFA.Hits - st0.DFA.Hits),
		DFALookups:  int64(st.DFA.Lookups - st0.DFA.Lookups),
	}
	return resp, meta, http.StatusOK, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// EngineStatz is one warm engine's /statz entry.
type EngineStatz struct {
	AxiomSet string `json:"axiom_set"`
	Uses     int64  `json:"uses"`
	Batches  int64  `json:"batches"`
	Queries  int64  `json:"queries"`
	// The degraded-query counters, split by reason like engine.Stats.
	Timeouts        int64 `json:"timeouts"`
	DeadlineExpired int64 `json:"deadline_expired"`
	Canceled        int64 `json:"canceled"`

	MemoLookups   int64   `json:"memo_lookups"`
	MemoHits      int64   `json:"memo_hits"`
	MemoHitRate   float64 `json:"memo_hit_rate"`
	MemoEntries   int     `json:"memo_entries"`
	MemoEvictions int64   `json:"memo_evictions"`

	DFALookups   int     `json:"dfa_lookups"`
	DFAHits      int     `json:"dfa_hits"`
	DFAHitRate   float64 `json:"dfa_hit_rate"`
	DFACompiles  int     `json:"dfa_compiles"`
	DFALen       int     `json:"dfa_len"`
	OpsLen       int     `json:"ops_len"`
	DFAEvictions int64   `json:"dfa_evictions"`
	OpsEvictions int64   `json:"ops_evictions"`
}

// Statz is the /statz body: server-level admission and lifecycle counters
// plus every warm engine's cache state.
type Statz struct {
	UptimeMS        int64 `json:"uptime_ms"`
	Draining        bool  `json:"draining"`
	Accepted        int64 `json:"accepted"`
	Completed       int64 `json:"completed"`
	Inflight        int64 `json:"inflight"`
	Shed            int64 `json:"shed"`
	RefusedDraining int64 `json:"refused_draining"`
	Panics          int64 `json:"panics"`
	// DegradedRequests counts requests with at least one query degraded
	// toward Maybe (each such request is also in the flight recorder).
	DegradedRequests int64 `json:"degraded_requests"`
	EnginesResident  int   `json:"engines_resident"`
	EnginesEvicted   int64 `json:"engines_evicted"`
	// InternedExprs is the process-wide count of distinct interned path
	// expressions.  The interner underlies every cache key in the stack and
	// is never evicted (node IDs must stay stable), so this is the one
	// monotone number to watch for expression-churn growth.
	InternedExprs int           `json:"interned_exprs"`
	Engines       []EngineStatz `json:"engines"`
}

// StatzSnapshot assembles the /statz body (exported for the soak tests and
// the loadgen client).
func (s *Server) StatzSnapshot() Statz {
	accepted, completed, shed, refused := s.adm.Counts()
	z := Statz{
		UptimeMS:         time.Since(s.start).Milliseconds(),
		Draining:         s.Draining(),
		Accepted:         accepted,
		Completed:        completed,
		Inflight:         s.gauge.Load(),
		Shed:             shed,
		RefusedDraining:  refused,
		Panics:           s.panics.Load(),
		DegradedRequests: s.degradedReqs.Load(),
		EnginesResident:  s.pool.len(),
		EnginesEvicted:   s.pool.Evicted(),
		InternedExprs:    pathexpr.InternedExprs(),
	}
	for _, e := range s.pool.snapshot() {
		z.Engines = append(z.Engines, engineStatz(e))
	}
	return z
}

func engineStatz(v exec.View) EngineStatz {
	st := v.Eng.Stats()
	dfas := v.Eng.DFACache()
	out := EngineStatz{
		AxiomSet:        v.Name,
		Uses:            v.Uses,
		Batches:         st.Batches,
		Queries:         st.Queries,
		Timeouts:        st.Timeouts,
		DeadlineExpired: st.DeadlineExpired,
		Canceled:        st.Canceled,

		MemoLookups:   st.Memo.Lookups,
		MemoHits:      st.Memo.Hits,
		MemoHitRate:   st.Memo.HitRate(),
		MemoEntries:   st.Memo.Entries,
		MemoEvictions: st.Memo.Evictions,

		DFALookups:   st.DFA.Lookups,
		DFAHits:      st.DFA.Hits,
		DFACompiles:  st.DFA.Compiles,
		DFALen:       dfas.Len(),
		OpsLen:       dfas.OpsLen(),
		DFAEvictions: dfas.DFAEvictions(),
		OpsEvictions: dfas.OpsEvictions(),
	}
	if st.DFA.Lookups > 0 {
		out.DFAHitRate = float64(st.DFA.Hits) / float64(st.DFA.Lookups)
	}
	return out
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.StatzSnapshot())
}

// The JSON/clamp helpers live in the wire layer now; these bindings keep
// the package-local call sites (and the handlers' shape) unchanged.
func writeJSON(w http.ResponseWriter, code int, v any) { wire.WriteJSON(w, code, v) }

func writeJSONError(w http.ResponseWriter, code int, msg string) {
	wire.WriteJSONError(w, code, msg)
}

func clampMS(ms int64, max time.Duration) time.Duration { return wire.ClampMS(ms, max) }

func defaultConcurrency() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	return n
}
