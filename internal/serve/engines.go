package serve

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/axiom"
	"repro/internal/engine"
	"repro/internal/prover"
	"repro/internal/telemetry"
)

// enginePool keeps one warm engine.Engine — and therefore one shared DFA
// cache and one proof memo — per axiom-set fingerprint, reclaiming the
// least-recently-used engine when the population exceeds its cap.  Eviction
// only unlinks the engine from the pool: an in-flight batch still running
// on it finishes normally and the garbage collector reclaims the caches
// afterwards, so no request ever observes a half-dead engine.
type enginePool struct {
	cfg Config
	tel *telemetry.Set

	mu      sync.Mutex
	seq     int64
	entries map[uint64]*poolEntry

	evicted atomic.Int64
	cCold   *telemetry.Counter
	cWarm   *telemetry.Counter
}

// poolEntry is one resident engine plus its bookkeeping.
type poolEntry struct {
	id      uint64 // axiom.Set.ID() identity (the pool's map key)
	key     string // axiom.Set.Key() fingerprint, kept for /statz ordering
	name    string // human-readable axiom-set name
	eng     *engine.Engine
	lastUse int64 // pool sequence number of the most recent get
	uses    int64
}

func newEnginePool(cfg Config, tel *telemetry.Set) *enginePool {
	return &enginePool{
		cfg:     cfg,
		tel:     tel,
		entries: make(map[uint64]*poolEntry),
		cCold:   tel.Counter("serve.engine_cold"),
		cWarm:   tel.Counter("serve.engine_warm"),
	}
}

// get returns the warm engine for the axiom set, building one on a cold
// miss.  cold reports whether this call built it.
func (p *enginePool) get(ax *axiom.Set) (eng *engine.Engine, cold bool) {
	id := ax.ID()
	p.mu.Lock()
	defer p.mu.Unlock()
	p.seq++
	if e, ok := p.entries[id]; ok {
		e.lastUse = p.seq
		e.uses++
		p.cWarm.Add(1)
		return e.eng, false
	}
	e := &poolEntry{
		id:   id,
		key:  ax.Key(),
		name: ax.StructName,
		eng: engine.New(ax, engine.Options{
			Workers:      p.cfg.Workers,
			QueryTimeout: p.cfg.QueryTimeout,
			Prover:       prover.Options{Telemetry: p.tel},
			VerifyProofs: p.cfg.VerifyProofs,
			Telemetry:    p.tel,
			DFAShardCap:  p.cfg.DFAShardCap,
			MemoShardCap: p.cfg.MemoShardCap,
			Preload:      p.cfg.Preload,
		}),
		lastUse: p.seq,
		uses:    1,
	}
	p.entries[id] = e
	p.cCold.Add(1)
	for p.cfg.MaxEngines > 0 && len(p.entries) > p.cfg.MaxEngines {
		var lru *poolEntry
		for _, cand := range p.entries {
			if cand != e && (lru == nil || cand.lastUse < lru.lastUse) {
				lru = cand
			}
		}
		if lru == nil {
			break
		}
		delete(p.entries, lru.id)
		p.evicted.Add(1)
	}
	return e.eng, true
}

// engineView is a read-only copy of one resident engine's bookkeeping,
// taken under the pool lock (the mutable lastUse/uses fields must not be
// read while another get mutates them).
type engineView struct {
	key  string
	name string
	eng  *engine.Engine
	uses int64
}

// snapshot returns the resident entries sorted by name then key, for the
// /statz report.
func (p *enginePool) snapshot() []engineView {
	p.mu.Lock()
	out := make([]engineView, 0, len(p.entries))
	for _, e := range p.entries {
		out = append(out, engineView{key: e.key, name: e.name, eng: e.eng, uses: e.uses})
	}
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].key < out[j].key
	})
	return out
}

// len reports the resident engine count.
func (p *enginePool) len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.entries)
}
