package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/axiom"
)

// rawTreeRequest builds a raw-mode request over the paper's leaf-linked
// binary tree: left and right subtrees of one vertex are provably disjoint.
func rawTreeRequest() BatchRequest {
	tree := axiom.LeafLinkedBinaryTree()
	return BatchRequest{
		AxiomSet:     tree.Source(),
		AxiomSetName: tree.StructName,
		Raw: []RawQuery{
			{SHandle: "h", SPath: "L", SField: "val", SWrite: true,
				THandle: "h", TPath: "R", TField: "val"},
			{SHandle: "h", SPath: "", SField: "val", SWrite: true,
				THandle: "k", TPath: "", TField: "val", Relation: "distinct"},
		},
	}
}

// TestRawBatchMode: raw-mode requests skip program analysis entirely — the
// axiom set travels as text, the queries fully specified — and answer with
// the same response shape program mode uses.  This is the wire mode routed
// cluster traffic rides.
func TestRawBatchMode(t *testing.T) {
	srv := New(Config{Workers: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, br := postBatch(t, ts.URL, rawTreeRequest())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (%s)", resp.StatusCode, br.Stats.AxiomSet)
	}
	if len(br.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(br.Results))
	}
	for i, r := range br.Results {
		if r.Result != "No" {
			t.Errorf("results[%d] = %q (%s), want No", i, r.Result, r.Reason)
		}
		if r.Line != i {
			t.Errorf("results[%d].Line = %d, want %d", i, r.Line, i)
		}
	}
	if br.Dependent {
		t.Error("Dependent = true for provably independent pairs")
	}
	if !br.Stats.ColdEngine {
		t.Error("first raw request should report a cold engine")
	}

	// Same set again: the engine (keyed by the set's content, not by how
	// the request spelled it) must be warm.
	_, br2 := postBatch(t, ts.URL, rawTreeRequest())
	if br2.Stats.ColdEngine {
		t.Error("second raw request rebuilt the engine")
	}
	if br2.Stats.MemoHits == 0 {
		t.Error("second raw request hit the proof memo 0 times")
	}
}

// TestRawBatchRejectsBadRequests: malformed raw requests answer 400 with a
// JSON error, and mixing modes is refused.
func TestRawBatchRejectsBadRequests(t *testing.T) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()

	tree := axiom.LeafLinkedBinaryTree()
	for name, req := range map[string]BatchRequest{
		"mixed modes": {Program: "void f() { int x; x = 1; }", AxiomSet: tree.Source(),
			Raw: []RawQuery{{SHandle: "h", SField: "val", THandle: "h", TField: "val"}}},
		"bad axiom set": {AxiomSet: "forall nonsense",
			Raw: []RawQuery{{SHandle: "h", SField: "val", THandle: "h", TField: "val"}}},
		"bad path": {AxiomSet: tree.Source(),
			Raw: []RawQuery{{SHandle: "h", SPath: "((", SField: "val", THandle: "h", TField: "val"}}},
		"bad relation": {AxiomSet: tree.Source(),
			Raw: []RawQuery{{SHandle: "h", SField: "val", THandle: "h", TField: "val", Relation: "sideways"}}},
	} {
		body, _ := json.Marshal(req)
		resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var e errorResponse
		json.NewDecoder(resp.Body).Decode(&e) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (%s)", name, resp.StatusCode, e.Error)
		}
		if e.Error == "" {
			t.Errorf("%s: empty error body", name)
		}
	}
}

// TestSnapshotPreloadHandoff is the warm-handoff round trip the router's
// ring-change path performs: snapshot a warm engine off one server by
// fingerprint, preload it into a second, and observe the second server
// answer its first request over that set without a cold build.
func TestSnapshotPreloadHandoff(t *testing.T) {
	a := New(Config{Workers: 1})
	tsA := httptest.NewServer(a)
	defer tsA.Close()

	// Warm server A on the tree set via raw mode.
	if resp, br := postBatch(t, tsA.URL, rawTreeRequest()); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm request: status = %d (%s)", resp.StatusCode, br.Stats.AxiomSet)
	}

	fp := axiom.LeafLinkedBinaryTree().Fingerprint64()
	snap, err := http.Get(fmt.Sprintf("%s/v1/snapshot?fp=%016x", tsA.URL, fp))
	if err != nil {
		t.Fatal(err)
	}
	art, err := io.ReadAll(snap.Body)
	snap.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if snap.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: status = %d (%s)", snap.StatusCode, art)
	}
	if len(art) == 0 {
		t.Fatal("snapshot: empty artifact")
	}

	// Unknown fingerprints answer 404, not an empty artifact.
	if resp, err := http.Get(tsA.URL + "/v1/snapshot?fp=00000000deadbeef"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown fingerprint: status = %d, want 404", resp.StatusCode)
		}
	}

	b := New(Config{Workers: 1})
	tsB := httptest.NewServer(b)
	defer tsB.Close()

	pre, err := http.Post(tsB.URL+"/v1/preload", "application/octet-stream", bytes.NewReader(art))
	if err != nil {
		t.Fatal(err)
	}
	var report PreloadReport
	if err := json.NewDecoder(pre.Body).Decode(&report); err != nil {
		t.Fatal(err)
	}
	pre.Body.Close()
	if pre.StatusCode != http.StatusOK {
		t.Fatalf("preload: status = %d", pre.StatusCode)
	}
	if report.Built != 1 || report.Resident != 1 {
		t.Errorf("preload report = %+v, want built 1 resident 1", report)
	}

	// The handoff's whole point: B's first request over the set rides the
	// shipped engine instead of building cold.
	resp, br := postBatch(t, tsB.URL, rawTreeRequest())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-preload request: status = %d (%s)", resp.StatusCode, br.Stats.AxiomSet)
	}
	if br.Stats.ColdEngine {
		t.Error("first request after preload still built the engine cold")
	}
	for i, r := range br.Results {
		if r.Result != "No" {
			t.Errorf("results[%d] = %q (%s), want No", i, r.Result, r.Reason)
		}
	}
}
