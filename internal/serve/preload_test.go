package serve

import (
	"context"
	"net/http/httptest"
	"testing"

	"repro/internal/analysis"
	"repro/internal/automata"
	"repro/internal/engine"
	"repro/internal/lang"
)

// replayArtifact builds an artifact exactly as aptc -program mode does:
// analyze the program, replay the queries through an engine, snapshot, and
// record the workload for boot replay.
func replayArtifact(t *testing.T, source, fn string, queryLines []string) *automata.Artifact {
	t.Helper()
	prog, err := lang.Parse(source)
	if err != nil {
		t.Fatal(err)
	}
	res, err := analysis.Analyze(prog, fn, analysis.Options{InferTypeAxioms: true})
	if err != nil {
		t.Fatal(err)
	}
	queries, err := res.QueriesBetween("S", "T")
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(res.Axioms, engine.Options{Workers: 1})
	eng.Batch(context.Background(), queries)
	art := eng.SnapshotArtifact()
	art.Replays = append(art.Replays, automata.ArtifactReplay{
		Program: source, Fn: fn, Queries: queryLines,
	})
	return art
}

// TestPreloadBootPrewarm checks the whole boot-warm chain: the artifact's
// persisted axiom set must reconstruct to the same pool identity the
// request's own analysis produces, so a -preload server's very first
// request finds its engine already resident (ColdEngine false) and answers
// identically to an unpreloaded server.
func TestPreloadBootPrewarm(t *testing.T) {
	source := treeProgram(t)
	queryLines := []string{"between S T"}
	art := replayArtifact(t, source, "subr", queryLines)
	if len(art.AxiomSets) == 0 || len(art.Replays) == 0 {
		t.Fatalf("artifact lacks axiom sets (%d) or replays (%d)", len(art.AxiomSets), len(art.Replays))
	}

	srv := New(Config{Workers: 1, Preload: art})
	if n := srv.pool.len(); n != 1 {
		t.Fatalf("boot prewarm left %d resident engines, want 1", n)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	req := BatchRequest{Program: source, Fn: "subr", Queries: queryLines}
	resp, br := postBatch(t, ts.URL, req)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d (%s)", resp.StatusCode, br.Stats.AxiomSet)
	}
	if br.Stats.ColdEngine {
		t.Error("first request against a preloaded server built its engine; boot prewarm did not take")
	}

	bare := New(Config{Workers: 1})
	ts2 := httptest.NewServer(bare)
	defer ts2.Close()
	_, want := postBatch(t, ts2.URL, req)
	if len(br.Results) != len(want.Results) || len(br.Results) == 0 {
		t.Fatalf("preloaded server returned %d results, unpreloaded %d", len(br.Results), len(want.Results))
	}
	for i := range br.Results {
		if br.Results[i] != want.Results[i] {
			t.Errorf("results[%d]: preloaded %+v, unpreloaded %+v", i, br.Results[i], want.Results[i])
		}
	}
}
