package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
)

// Process warmup: the first execution of the request pipeline in a fresh
// process — HTTP dispatch, JSON decode, parse, analysis, engine build,
// proof search, response encode — is several times slower than steady
// state: lazily grown interner tables, first-touch heap pages, branch-cold
// code.  Without this, that one-time cost lands on whichever request
// arrives first and masquerades as engine cold-start in the cold/warm
// latency split.  New drives a tiny synthetic request through a throwaway
// server once per process, so boot time (not the first request) pays it.
//
// The synthetic program's struct, fields, and axioms are deliberately
// unlike any real workload: warmup must heat the code paths, never a real
// axiom set's engine, DFA entries, or proof-memo namespace.  The throwaway
// server keeps every per-instance side effect (engine pool residency,
// flight-recorder entries, request counters) away from real servers.
const warmupProgram = `
struct ServeWarmup {
	struct ServeWarmup *wa;
	struct ServeWarmup *wb;
	int d;
	axioms {
		W1: forall p, p.wa <> p.wb;
		W2: forall p <> q, p.(wa|wb) <> q.(wa|wb);
	}
};

int warm(struct ServeWarmup *root) {
	struct ServeWarmup *p;
	struct ServeWarmup *q;
	p = root->wa;
S:	p->d = 1;
	q = root->wb;
T:	return q->d;
}
`

var warmupOnce sync.Once

// discardResponseWriter satisfies http.ResponseWriter for warmup requests;
// everything written is dropped.
type discardResponseWriter struct{ h http.Header }

func (w *discardResponseWriter) Header() http.Header         { return w.h }
func (w *discardResponseWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w *discardResponseWriter) WriteHeader(int)             {}

// warmProcess runs the synthetic request end to end through a throwaway
// server.  Errors are ignored: warmup is purely an optimization and the
// synthetic program is fixed.
func warmProcess() {
	warmupOnce.Do(func() {
		srv := newServer(Config{Workers: 1})
		body, err := json.Marshal(BatchRequest{
			Program: warmupProgram,
			Fn:      "warm",
			Queries: []string{"between S T"},
		})
		if err != nil {
			return
		}
		// Twice: the second pass exercises the warm-engine path (memo and
		// DFA-cache hits), which real warm requests take.
		for i := 0; i < 2; i++ {
			req, err := http.NewRequest(http.MethodPost, "/v1/batch", bytes.NewReader(body))
			if err != nil {
				return
			}
			req.Header.Set("Content-Type", "application/json")
			srv.ServeHTTP(&discardResponseWriter{h: make(http.Header)}, req)
		}
	})
}
